package sparksql

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type testUser struct {
	Name   string
	Age    int32
	DeptID int32
}

func testUsers(t *testing.T, ctx *Context) *DataFrame {
	t.Helper()
	df, err := ctx.CreateDataFrameFromStructs([]testUser{
		{"Alice", 22, 1},
		{"Bob", 19, 2},
		{"Carol", 35, 1},
		{"Dan", 40, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestDSLWhereCount(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	young, err := users.Where(users.MustCol("Age").Lt(21))
	if err != nil {
		t.Fatal(err)
	}
	n, err := young.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}

func TestEagerAnalysisError(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	// Both the column lookup and a Where over a bogus column must fail
	// immediately, before any action (paper §3.4).
	if _, err := users.Col("nope"); err == nil {
		t.Fatal("expected error for missing column")
	}
	if _, err := users.Where(Col("nope").Lt(21)); err == nil {
		t.Fatal("expected eager analysis error")
	}
}

func TestSQLOverTempTable(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	users.RegisterTempTable("users")

	df, err := ctx.SQL("SELECT count(*), avg(Age) FROM users WHERE Age < 30")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(2) || rows[0][1] != 20.5 {
		t.Fatalf("got %v, want [[2 20.5]]", rows)
	}
}

func TestSQLGroupByHavingOrderBy(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	users.RegisterTempTable("users")

	df, err := ctx.SQL(`
		SELECT DeptID, count(*) AS n, max(Age) AS oldest
		FROM users
		GROUP BY DeptID
		HAVING count(*) >= 2
		ORDER BY DeptID DESC`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows: %v", len(rows), rows)
	}
	if rows[0][0] != int32(2) || rows[0][1] != int64(2) || rows[0][2] != int32(40) {
		t.Fatalf("row0 = %v", rows[0])
	}
	if rows[1][0] != int32(1) || rows[1][2] != int32(35) {
		t.Fatalf("row1 = %v", rows[1])
	}
}

func TestSQLJoin(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	users.RegisterTempTable("employees")
	depts, err := ctx.CreateDataFrame(
		StructType{}.Add("id", IntType, false).Add("dept", StringType, false),
		[]Row{{int32(1), "eng"}, {int32(2), "sales"}})
	if err != nil {
		t.Fatal(err)
	}
	depts.RegisterTempTable("dept")

	df, err := ctx.SQL(`
		SELECT dept.dept, count(*) AS n
		FROM employees JOIN dept ON employees.DeptID = dept.id
		WHERE employees.Age > 20
		GROUP BY dept.dept
		ORDER BY dept.dept`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "eng" || rows[0][1] != int64(2) ||
		rows[1][0] != "sales" || rows[1][1] != int64(1) {
		t.Fatalf("got %v", rows)
	}
}

func TestPaperExampleEmployeesJoin(t *testing.T) {
	// The paper's §3.3 example: female employees per department.
	ctx := NewContext()
	employees, err := ctx.CreateDataFrame(
		StructType{}.
			Add("name", StringType, false).
			Add("gender", StringType, false).
			Add("deptId", IntType, false),
		[]Row{
			{"Alice", "female", int32(1)},
			{"Bob", "male", int32(1)},
			{"Carol", "female", int32(2)},
			{"Dora", "female", int32(1)},
		})
	if err != nil {
		t.Fatal(err)
	}
	dept, err := ctx.CreateDataFrame(
		StructType{}.Add("id", IntType, false).Add("name", StringType, false),
		[]Row{{int32(1), "eng"}, {int32(2), "sales"}})
	if err != nil {
		t.Fatal(err)
	}

	joined, err := employees.Join(dept, employees.MustCol("deptId").EQ(dept.MustCol("id")))
	if err != nil {
		t.Fatal(err)
	}
	females, err := joined.Where(employees.MustCol("gender").EQ("female"))
	if err != nil {
		t.Fatal(err)
	}
	result, err := females.GroupBy(dept.MustCol("id"), dept.MustCol("name")).
		Agg(Count(dept.MustCol("name")).As("count"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := result.Collect()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, r := range rows {
		counts[r[1].(string)] = r[2].(int64)
	}
	if counts["eng"] != 2 || counts["sales"] != 1 {
		t.Fatalf("got %v", rows)
	}
}

func TestUDFInSQLAndDSL(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	users.RegisterTempTable("users")
	// The paper's §3.7 inline UDF registration.
	if err := ctx.RegisterUDF("ageBand", func(age int32) string {
		if age < 21 {
			return "minor"
		}
		return "adult"
	}); err != nil {
		t.Fatal(err)
	}

	df, err := ctx.SQL("SELECT Name, ageBand(Age) AS band FROM users ORDER BY Name")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1] != "adult" || rows[1][1] != "minor" {
		t.Fatalf("got %v", rows)
	}

	// Same UDF through the DSL.
	df2, err := users.Select(ctx.CallUDF("ageBand", users.MustCol("Age")).As("b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df2.Collect(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterTempTableComposesAcrossSQLAndDSL(t *testing.T) {
	// Paper §3.3: registered DataFrames are unmaterialized views; SQL over
	// them optimizes across the original DataFrame expressions.
	ctx := NewContext()
	users := testUsers(t, ctx)
	young, err := users.Where(users.MustCol("Age").Lt(30))
	if err != nil {
		t.Fatal(err)
	}
	young.RegisterTempTable("young")
	df, err := ctx.SQL("SELECT count(*) FROM young")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != int64(2) {
		t.Fatalf("got %v", rows)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "people.csv")
	data := "name,age\nAlice,22\nBob,19\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	df, err := ctx.Read().CSV(path)
	if err != nil {
		t.Fatal(err)
	}
	schema := df.Schema()
	if !schema.Fields[1].Type.Equals(IntType) {
		t.Fatalf("inferred age type = %s, want INT", schema.Fields[1].Type.Name())
	}
	n, err := df.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d", n)
	}
}

func TestJSONSchemaInferenceTweets(t *testing.T) {
	// The paper's Figure 5/6 tweets.
	dir := t.TempDir()
	path := filepath.Join(dir, "tweets.json")
	data := `
{"text": "This is a tweet about #Spark", "tags": ["#Spark"], "loc": {"lat": 45.1, "long": 90}}
{"text": "This is another tweet", "tags": [], "loc": {"lat": 39, "long": 88.5}}
{"text": "A #tweet without #location", "tags": ["#tweet", "#location"]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	df, err := ctx.Read().JSON(path)
	if err != nil {
		t.Fatal(err)
	}
	schema := df.Schema()
	// text STRING NOT NULL
	i := schema.FieldIndex("text")
	if i < 0 || !schema.Fields[i].Type.Equals(StringType) || schema.Fields[i].Nullable {
		t.Fatalf("text field wrong: %+v", schema.Fields[i])
	}
	// loc STRUCT<lat DOUBLE, long DOUBLE>, nullable (absent in record 3).
	j := schema.FieldIndex("loc")
	if j < 0 || !schema.Fields[j].Nullable {
		t.Fatalf("loc should be nullable: %+v", schema.Fields)
	}

	df.RegisterTempTable("tweets")
	res, err := ctx.SQL(`SELECT loc.lat, loc.long FROM tweets WHERE text LIKE '%Spark%' AND tags IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != 45.1 {
		t.Fatalf("got %v", rows)
	}
}

func TestColFileRoundTripWithPushdown(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	dir := t.TempDir()
	path := filepath.Join(dir, "users.gcf")
	if err := users.Write().RowGroupSize(2).ColFile(path); err != nil {
		t.Fatal(err)
	}

	df, err := ctx.Read().ColFile(path)
	if err != nil {
		t.Fatal(err)
	}
	older, err := df.Where(Col("Age").Gt(30))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := older.Select("Name")
	if err != nil {
		t.Fatal(err)
	}
	explain, err := sel.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "pushed=") {
		t.Fatalf("expected filter pushdown in plan:\n%s", explain)
	}
	rows, err := sel.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %v", rows)
	}
}

func TestCreateTempTableUsingSQL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "msgs.csv")
	os.WriteFile(path, []byte("id,msg\n1,hello\n2,world\n"), 0o644)
	ctx := NewContext()
	// The paper's §4.4.1 USING statement.
	if _, err := ctx.SQL("CREATE TEMPORARY TABLE messages USING csv OPTIONS (path '" + path + "')"); err != nil {
		t.Fatal(err)
	}
	df, err := ctx.SQL("SELECT msg FROM messages WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "world" {
		t.Fatalf("got %v", rows)
	}
}

func TestCacheColumnar(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	info, err := users.Cache()
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 4 {
		t.Fatalf("cached %d rows", info.Rows)
	}
	if info.ColumnarBytes >= info.ObjectBytes {
		t.Fatalf("columnar bytes %d should be well under object bytes %d",
			info.ColumnarBytes, info.ObjectBytes)
	}
	n, err := users.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("count after cache = %d", n)
	}
}

func TestSelfJoinViaSQLAliases(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	users.RegisterTempTable("u")
	df, err := ctx.SQL(`
		SELECT a.Name, b.Name
		FROM u a JOIN u b ON a.DeptID = b.DeptID
		WHERE a.Name != b.Name`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := df.Count()
	if err != nil {
		t.Fatal(err)
	}
	// Each dept has 2 members -> 2 ordered pairs each.
	if n != 4 {
		t.Fatalf("self-join rows = %d, want 4", n)
	}
}

func TestOrderByLimitDistinctUnion(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	users.RegisterTempTable("users")
	df, err := ctx.SQL(`
		SELECT Age FROM users
		UNION ALL
		SELECT Age FROM users
		ORDER BY Age
		LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != int32(19) || rows[1][0] != int32(19) || rows[2][0] != int32(22) {
		t.Fatalf("got %v", rows)
	}

	d, err := ctx.SQL("SELECT DISTINCT DeptID FROM users")
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("distinct depts = %d", n)
	}
}

func TestShowFormatting(t *testing.T) {
	ctx := NewContext()
	users := testUsers(t, ctx)
	out, err := users.Show(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Alice") || !strings.Contains(out, "| Name") {
		t.Fatalf("unexpected Show output:\n%s", out)
	}
}

func TestCountDistinctAndDateFunctions(t *testing.T) {
	ctx := NewContext()
	schema := StructType{}.
		Add("k", IntType, false).
		Add("v", IntType, true).
		Add("d", DateType, false)
	df, err := ctx.CreateDataFrame(schema, []Row{
		{int32(1), int32(10), int32(16436)}, // 2015-01-01
		{int32(1), int32(10), int32(16436)},
		{int32(1), int32(20), int32(16467)}, // 2015-02-01
		{int32(2), nil, int32(16071)},       // 2014-01-01
	})
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("t")

	res, err := ctx.SQL("SELECT k, count(DISTINCT v), count(v) FROM t GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1] != int64(2) || rows[0][2] != int64(3) {
		t.Fatalf("k=1 distinct/count = %v", rows[0])
	}
	if rows[1][1] != int64(0) { // only NULLs
		t.Fatalf("k=2 distinct = %v", rows[1])
	}

	res, err = ctx.SQL("SELECT year(d), month(d), count(*) FROM t GROUP BY year(d), month(d) ORDER BY year(d), month(d)")
	if err != nil {
		t.Fatal(err)
	}
	rows, err = res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != int32(2014) || rows[1][1] != int32(1) || rows[2][1] != int32(2) {
		t.Fatalf("date grouping = %v", rows)
	}

	// DISTINCT on other aggregates is a clear error.
	if _, err := ctx.SQL("SELECT sum(DISTINCT v) FROM t"); err == nil {
		t.Fatal("sum(DISTINCT) unsupported and must error")
	}
}

func TestCreateDataFrameFromMaps(t *testing.T) {
	// The §3.5 Python path: dynamically typed records, schema inferred by
	// sampling with the §5.1 merge.
	ctx := NewContext()
	df, err := ctx.CreateDataFrameFromMaps([]map[string]any{
		{"name": "Alice", "age": 22},
		{"name": "Bob", "age": 19.5},        // fractional -> DOUBLE
		{"name": "Carol"},                   // missing age -> nullable
		{"name": "Dan", "tags": []any{"x"}}, // array field
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := df.Schema()
	ai := schema.FieldIndex("age")
	if ai < 0 || !schema.Fields[ai].Type.Equals(DoubleType) || !schema.Fields[ai].Nullable {
		t.Fatalf("age field = %+v", schema.Fields)
	}
	df.RegisterTempTable("dyn")
	res, err := ctx.SQL("SELECT avg(age) FROM dyn")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0][0].(float64); got < 20.7 || got > 20.8 { // (22+19.5)/2
		t.Fatalf("avg = %v", got)
	}
}
