// Benchmarks regenerating every figure of the paper's evaluation. Absolute
// numbers differ from the paper (different substrate, different scale); the
// *shape* — which system wins and by roughly what factor — is what these
// reproduce. See EXPERIMENTS.md for paper-vs-measured notes.
//
// Run: go test -bench=. -benchmem
package sparksql_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	sparksql "repro"
	"repro/internal/experiments"
)

// ---------------------------------------------------------------------------
// Figure 4: expression evaluation — interpreted vs codegen vs hand-written.

func BenchmarkFig4(b *testing.B) {
	f := experiments.NewFig4()
	var sink int64
	b.Run("Interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.Interpreted(int64(i))
		}
	})
	b.Run("Generated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.Generated(int64(i))
		}
	})
	b.Run("GeneratedUnboxed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.GeneratedUnboxed(int64(i))
		}
	})
	b.Run("HandWritten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.HandWritten(int64(i))
		}
	})
	_ = sink
}

// ---------------------------------------------------------------------------
// Figure 8: AMPLab big data benchmark — Shark vs Spark SQL vs native.

const (
	fig8Rankings = 20_000
	fig8Visits   = 60_000
)

var (
	fig8Once  sync.Once
	fig8Data  *experiments.AMPLab
	fig8Shark *sparksql.Context
	fig8Spark *sparksql.Context
	fig8Err   error
)

func fig8Setup(b *testing.B) (*experiments.AMPLab, *sparksql.Context, *sparksql.Context) {
	b.Helper()
	fig8Once.Do(func() {
		dir, err := os.MkdirTemp("", "amplab")
		if err != nil {
			fig8Err = err
			return
		}
		fig8Data, fig8Err = experiments.NewAMPLab(dir, fig8Rankings, fig8Visits)
		if fig8Err != nil {
			return
		}
		fig8Shark, fig8Err = fig8Data.NewContext(true)
		if fig8Err != nil {
			return
		}
		fig8Spark, fig8Err = fig8Data.NewContext(false)
	})
	if fig8Err != nil {
		b.Fatal(fig8Err)
	}
	return fig8Data, fig8Shark, fig8Spark
}

func benchSQL(b *testing.B, ctx *sparksql.Context, query string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSQL(ctx, query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	data, shark, spark := fig8Setup(b)

	for qi, x := range experiments.Q1Params {
		name := fmt.Sprintf("Q1%c", 'a'+qi)
		q := experiments.Q1(x)
		x := x
		b.Run(name+"/Shark", func(b *testing.B) { benchSQL(b, shark, q) })
		b.Run(name+"/SparkSQL", func(b *testing.B) { benchSQL(b, spark, q) })
		b.Run(name+"/Native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				data.NativeQ1(x)
			}
		})
	}
	for qi, p := range experiments.Q2Params {
		name := fmt.Sprintf("Q2%c", 'a'+qi)
		q := experiments.Q2(p)
		p := p
		b.Run(name+"/Shark", func(b *testing.B) { benchSQL(b, shark, q) })
		b.Run(name+"/SparkSQL", func(b *testing.B) { benchSQL(b, spark, q) })
		b.Run(name+"/Native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				data.NativeQ2(p)
			}
		})
	}
	for qi, cutoff := range experiments.Q3Params {
		name := fmt.Sprintf("Q3%c", 'a'+qi)
		q := experiments.Q3(cutoff)
		days := experiments.Q3Cutoffs[qi]
		b.Run(name+"/Shark", func(b *testing.B) { benchSQL(b, shark, q) })
		b.Run(name+"/SparkSQL", func(b *testing.B) { benchSQL(b, spark, q) })
		b.Run(name+"/Native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				data.NativeQ3(days)
			}
		})
	}
	b.Run("Q4/Shark", func(b *testing.B) { benchSQL(b, shark, experiments.Q4Query) })
	b.Run("Q4/SparkSQL", func(b *testing.B) { benchSQL(b, spark, experiments.Q4Query) })
	b.Run("Q4/Native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data.NativeQ4()
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 9: aggregation — Python-style vs Scala-style vs DataFrame.

const (
	fig9N    = 300_000
	fig9Keys = 10_000
)

func BenchmarkFig9(b *testing.B) {
	f := experiments.NewFig9(fig9N, fig9Keys)
	b.Run("PythonRDD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.RunPython()
		}
	})
	b.Run("ScalaRDD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.RunScala()
		}
	})
	b.Run("DataFrame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.RunDataFrame(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 10: two-stage pipeline — separate engines vs integrated DataFrame.

const fig10Messages = 30_000

func BenchmarkFig10(b *testing.B) {
	f := experiments.NewFig10(fig10Messages)
	b.Run("SeparateSQLThenSpark", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.RunSeparate(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("IntegratedDataFrame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.RunIntegrated(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md).

// Codegen on/off over the same plan (beyond Fig 4's micro view: a whole
// query).
func BenchmarkAblationCodegen(b *testing.B) {
	_, shark, spark := fig8Setup(b)
	q := experiments.Q2(8)
	b.Run("CodegenOff", func(b *testing.B) { benchSQL(b, shark, q) })
	b.Run("CodegenOn", func(b *testing.B) { benchSQL(b, spark, q) })
}

// Filter pushdown into the columnar file on/off.
func BenchmarkAblationPushdown(b *testing.B) {
	data, _, _ := fig8Setup(b)
	q := experiments.Q1(1000) // selective: pushdown skips row groups

	mk := func(pushdown bool) *sparksql.Context {
		cfg := sparksql.DefaultConfig()
		cfg.SourcePushdown = pushdown
		ctx := sparksql.NewContextWithConfig(cfg)
		df, err := ctx.Read().ColFile(data.RankingsPath)
		if err != nil {
			b.Fatal(err)
		}
		df.RegisterTempTable("rankings")
		return ctx
	}
	off := mk(false)
	on := mk(true)
	b.Run("PushdownOff", func(b *testing.B) { benchSQL(b, off, q) })
	b.Run("PushdownOn", func(b *testing.B) { benchSQL(b, on, q) })
}

// Broadcast vs shuffled hash join for the Q3 join.
func BenchmarkAblationJoin(b *testing.B) {
	data, _, _ := fig8Setup(b)
	q := experiments.Q3(experiments.Q3Params[0])

	mk := func(threshold int64) *sparksql.Context {
		cfg := sparksql.DefaultConfig()
		cfg.BroadcastThreshold = threshold
		ctx := sparksql.NewContextWithConfig(cfg)
		for name, path := range map[string]string{
			"rankings": data.RankingsPath, "uservisits": data.VisitsPath,
		} {
			df, err := ctx.Read().ColFile(path)
			if err != nil {
				b.Fatal(err)
			}
			df.RegisterTempTable(name)
		}
		return ctx
	}
	shuffled := mk(1) // nothing broadcasts
	broadcast := mk(1 << 30)
	// Warm both engines so a single cold iteration can't skew the ratio.
	if _, err := experiments.RunSQL(shuffled, q); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.RunSQL(broadcast, q); err != nil {
		b.Fatal(err)
	}
	b.Run("ShuffledHashJoin", func(b *testing.B) { benchSQL(b, shuffled, q) })
	b.Run("BroadcastHashJoin", func(b *testing.B) { benchSQL(b, broadcast, q) })
}

// Columnar cache vs re-running the scan, plus the footprint ratio.
func BenchmarkAblationCache(b *testing.B) {
	study, err := experiments.NewCacheStudy(50_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("cache footprint: columnar=%dB objects=%dB ratio=%.1fx",
		study.Info.ColumnarBytes, study.Info.ObjectBytes,
		float64(study.Info.ObjectBytes)/float64(study.Info.ColumnarBytes))
	b.Run("ObjectCacheScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := study.ScanAggregateObjectCache(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CachedColumnarScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := study.ScanAggregate(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Vectorized vs row-at-a-time vs hand-written native over the cached
// Figure 8 Q1 shape (filter + project on the columnar cache).
func BenchmarkAblationVectorized(b *testing.B) {
	study, err := experiments.NewVectorizedStudy(200_000)
	if err != nil {
		b.Fatal(err)
	}
	x := experiments.Q1Params[0] // pageRank > 1000, the selective Q1a shape
	b.Run("RowAtATime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := study.RunRow(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Vectorized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := study.RunVec(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Native", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink = study.RunNative(x)
		}
		_ = sink
	})
}

// Whole-stage fusion: the cached Q1 pipeline feeding a grouped aggregate,
// with the sink running row-at-a-time, above an (unfused) vectorized
// pipeline, and fused into the batch loop with type-specialized group
// tables. The native subbenchmark is the hand-written ceiling.
func BenchmarkFusedAggregate(b *testing.B) {
	study, err := experiments.NewFusionStudy(200_000)
	if err != nil {
		b.Fatal(err)
	}
	q := experiments.FusedAggQuery()
	for _, bc := range []struct {
		name string
		run  func(string) (int64, error)
	}{
		{"RowAtATime", study.RunRow},
		{"Vectorized", study.RunVec},
		{"Fused", study.RunFused},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bc.run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("Native", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink = study.NativeAgg()
		}
		_ = sink
	})
}

// Whole-stage fusion of the broadcast-join probe: the same pipeline probing
// a sparse broadcast dimension, where the fused probe reads keys off the
// column vectors and only materializes matching rows.
func BenchmarkFusedJoinProbe(b *testing.B) {
	study, err := experiments.NewFusionStudy(200_000)
	if err != nil {
		b.Fatal(err)
	}
	q := experiments.FusedJoinQuery()
	for _, bc := range []struct {
		name string
		run  func(string) (int64, error)
	}{
		{"RowAtATime", study.RunRow},
		{"Vectorized", study.RunVec},
		{"Fused", study.RunFused},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bc.run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Instrumentation overhead: the same cached Q1 scan with per-operator
// metrics on (the default) and off, on both execution paths. The on/off
// pairs should be indistinguishable — that is what justifies leaving
// metrics enabled by default.
func BenchmarkMetricsOverhead(b *testing.B) {
	study, err := experiments.NewMetricsOverheadStudy(200_000)
	if err != nil {
		b.Fatal(err)
	}
	x := experiments.Q1Params[0]
	for _, bc := range []struct {
		name string
		ctx  *sparksql.Context
	}{
		{"Row/MetricsOn", study.OnRow},
		{"Row/MetricsOff", study.OffRow},
		{"Vectorized/MetricsOn", study.OnVec},
		{"Vectorized/MetricsOff", study.OffVec},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := study.Run(bc.ctx, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Federation pushdown: time plus bytes over the simulated link.
func BenchmarkAblationFederation(b *testing.B) {
	fed, err := experiments.NewFederation(5_000, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("PushdownOff", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			_, bytes, err = fed.Run(false)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(bytes), "link-bytes")
	})
	b.Run("PushdownOn", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			_, bytes, err = fed.Run(true)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(bytes), "link-bytes")
	})
}

// ---------------------------------------------------------------------------
// Cost-based join reordering: star-schema query with a selective dimension
// filter, reorder on vs off. With statistics the optimizer joins the fact
// table against the filtered (tiny) dimension first, shrinking the
// intermediate result; without reordering the plan follows query order and
// pays for a full fact-times-dim1 intermediate.

func joinReorderContext(b *testing.B, reorder bool) *sparksql.Context {
	b.Helper()
	cfg := sparksql.DefaultConfig()
	cfg.JoinReorder = reorder
	ctx := sparksql.NewContextWithConfig(cfg)

	fact := sparksql.StructType{}.
		Add("f_id", sparksql.LongType, false).
		Add("d1_k", sparksql.LongType, false).
		Add("d2_k", sparksql.LongType, false).
		Add("amount", sparksql.DoubleType, false)
	factRows := make([]sparksql.Row, 0, 100000)
	for i := int64(0); i < 100000; i++ {
		factRows = append(factRows, sparksql.Row{i, i % 50, i % 5000, float64(i%97) / 2})
	}
	dim1 := sparksql.StructType{}.
		Add("d1_k", sparksql.LongType, false).
		Add("d1_name", sparksql.StringType, false)
	dim1Rows := make([]sparksql.Row, 0, 50)
	for i := int64(0); i < 50; i++ {
		dim1Rows = append(dim1Rows, sparksql.Row{i, fmt.Sprintf("d1-%d", i)})
	}
	dim2 := sparksql.StructType{}.
		Add("d2_k", sparksql.LongType, false).
		Add("d2_name", sparksql.StringType, false)
	dim2Rows := make([]sparksql.Row, 0, 5000)
	for i := int64(0); i < 5000; i++ {
		// 50 distinct names: an equality filter keeps ~2% of the dimension.
		dim2Rows = append(dim2Rows, sparksql.Row{i, fmt.Sprintf("d2-%d", i%50)})
	}
	for name, in := range map[string]struct {
		schema sparksql.StructType
		rows   []sparksql.Row
	}{
		"fact": {fact, factRows}, "dim1": {dim1, dim1Rows}, "dim2": {dim2, dim2Rows},
	} {
		df, err := ctx.CreateDataFrame(in.schema, in.rows)
		if err != nil {
			b.Fatal(err)
		}
		df.RegisterTempTable(name)
		if _, err := ctx.SQL("ANALYZE TABLE " + name + " COMPUTE STATISTICS"); err != nil {
			b.Fatal(err)
		}
	}
	return ctx
}

func BenchmarkJoinReorder(b *testing.B) {
	q := `SELECT d1_name, SUM(amount) AS total
	      FROM fact
	      JOIN dim1 ON fact.d1_k = dim1.d1_k
	      JOIN dim2 ON fact.d2_k = dim2.d2_k
	      WHERE d2_name = 'd2-7'
	      GROUP BY d1_name`
	off := joinReorderContext(b, false)
	on := joinReorderContext(b, true)
	// Warm both engines so a cold first iteration can't skew the ratio.
	if _, err := experiments.RunSQL(off, q); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.RunSQL(on, q); err != nil {
		b.Fatal(err)
	}
	b.Run("ReorderOff", func(b *testing.B) { benchSQL(b, off, q) })
	b.Run("ReorderOn", func(b *testing.B) { benchSQL(b, on, q) })
}

// Spill benchmarks: the same sort and aggregation with and without a
// memory budget. The budgeted runs pay encoding plus simulated spill-disk
// I/O; the gap is the price of bounded memory (Spark's external sort /
// spillable hash aggregation trade-off).

func spillBenchContexts(b *testing.B) (unlimited, budgeted *sparksql.Context) {
	b.Helper()
	s, err := experiments.NewSpillStudy(20_000)
	if err != nil {
		b.Fatal(err)
	}
	if unlimited, err = s.Context(0); err != nil {
		b.Fatal(err)
	}
	// 1% of the data size: every blocking operator spills heavily.
	if budgeted, err = s.Context(s.DataBytes / 100); err != nil {
		b.Fatal(err)
	}
	return unlimited, budgeted
}

func BenchmarkExternalSort(b *testing.B) {
	q := "SELECT pageURL, pageRank FROM rankings ORDER BY pageRank, pageURL"
	unlimited, budgeted := spillBenchContexts(b)
	b.Run("InMemory", func(b *testing.B) { benchSQL(b, unlimited, q) })
	b.Run("Spilling", func(b *testing.B) { benchSQL(b, budgeted, q) })
}

func BenchmarkSpillAggregate(b *testing.B) {
	q := "SELECT pageRank, COUNT(*), SUM(avgDuration), AVG(avgDuration) FROM rankings GROUP BY pageRank"
	unlimited, budgeted := spillBenchContexts(b)
	b.Run("InMemory", func(b *testing.B) { benchSQL(b, unlimited, q) })
	b.Run("Spilling", func(b *testing.B) { benchSQL(b, budgeted, q) })
}
