// DML execution: CREATE TABLE, DROP TABLE, INSERT, UPDATE, DELETE, SHOW
// TABLES and DESCRIBE against the persistent table store. Statements parse
// in internal/sqlparser; this file evaluates their expressions through the
// ordinary analysis machinery (so casts, functions and UDFs all work in
// VALUES and SET clauses) and commits the row changes through the store's
// write-ahead log.
package sparksql

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/row"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// affectedFrame reports a DML statement's result as one (rows_affected)
// row, the feedback INSERT/UPDATE/DELETE give the shell.
func (c *Context) affectedFrame(n int64) (*DataFrame, error) {
	schema := types.NewStruct(
		types.StructField{Name: "rows_affected", Type: types.Long, Nullable: false},
	)
	return c.CreateDataFrame(schema, []Row{{n}})
}

func (c *Context) execCreateTable(s *sqlparser.CreateTable) (*DataFrame, error) {
	if s.AsSelect != nil {
		// CREATE TABLE ... AS SELECT: run the query, then create and load.
		df, err := c.newDataFrame(s.AsSelect)
		if err != nil {
			return nil, err
		}
		rows, err := df.Collect()
		if err != nil {
			return nil, err
		}
		if err := c.store.CreateTable(s.Name, df.Schema(), s.IfNotExists); err != nil {
			return nil, err
		}
		if _, err := c.store.Insert(s.Name, rows); err != nil {
			return nil, err
		}
		return c.emptyFrame(), nil
	}
	fields := make([]types.StructField, 0, len(s.Cols))
	for _, col := range s.Cols {
		fields = append(fields, types.StructField{
			Name: col.Name, Type: col.Type, Nullable: !col.NotNull,
		})
	}
	if err := c.store.CreateTable(s.Name, types.StructType{Fields: fields}, s.IfNotExists); err != nil {
		return nil, err
	}
	return c.emptyFrame(), nil
}

// insertColumns resolves an INSERT's column list (or the full schema when
// absent) to schema ordinals.
func insertColumns(schema types.StructType, names []string) ([]int, error) {
	if len(names) == 0 {
		ordinals := make([]int, len(schema.Fields))
		for i := range ordinals {
			ordinals[i] = i
		}
		return ordinals, nil
	}
	ordinals := make([]int, 0, len(names))
	for _, name := range names {
		found := -1
		for i, f := range schema.Fields {
			if strings.EqualFold(f.Name, name) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("sparksql: INSERT: unknown column %q", name)
		}
		ordinals = append(ordinals, found)
	}
	return ordinals, nil
}

func (c *Context) execInsert(s *sqlparser.InsertStatement) (*DataFrame, error) {
	info, ok := c.store.Info(s.Table)
	if !ok {
		return nil, fmt.Errorf("sparksql: INSERT: unknown table %q", s.Table)
	}
	ordinals, err := insertColumns(info.Schema, s.Columns)
	if err != nil {
		return nil, err
	}

	var data []Row
	if s.Query != nil {
		df, err := c.newDataFrame(s.Query)
		if err != nil {
			return nil, err
		}
		src := df.Schema()
		if len(src.Fields) != len(ordinals) {
			return nil, fmt.Errorf("sparksql: INSERT into %q: query produces %d columns, expected %d",
				s.Table, len(src.Fields), len(ordinals))
		}
		// Cast the query's output by position onto the target columns.
		attrs := df.analyzed.Output()
		casts := make([]expr.Expression, len(attrs))
		for i, a := range attrs {
			target := info.Schema.Fields[ordinals[i]]
			casts[i] = expr.NewAlias(expr.NewCast(a, target.Type), target.Name)
		}
		cdf, err := c.newDataFrame(&plan.Project{List: casts, Child: df.analyzed})
		if err != nil {
			return nil, err
		}
		rows, err := cdf.Collect()
		if err != nil {
			return nil, err
		}
		data = reshapeInsertRows(info.Schema, ordinals, rows)
	} else {
		// Evaluate every VALUES tuple through one wide projection over a
		// one-row relation: each expression is cast to its target column's
		// type and the single result row is cut back into tuples. One
		// analysis pass covers every tuple.
		var wide []expr.Expression
		for ti, tuple := range s.Values {
			if len(tuple) != len(ordinals) {
				return nil, fmt.Errorf("sparksql: INSERT into %q: tuple %d has %d values, expected %d",
					s.Table, ti+1, len(tuple), len(ordinals))
			}
			for vi, e := range tuple {
				target := info.Schema.Fields[ordinals[vi]]
				wide = append(wide, expr.NewAlias(
					expr.NewCast(e, target.Type),
					fmt.Sprintf("_v%d_%d", ti, vi)))
			}
		}
		df, err := c.newDataFrame(&plan.Project{List: wide, Child: &plan.OneRowRelation{}})
		if err != nil {
			return nil, err
		}
		rows, err := df.Collect()
		if err != nil {
			return nil, err
		}
		if len(rows) != 1 {
			return nil, fmt.Errorf("sparksql: INSERT: VALUES evaluation produced %d rows", len(rows))
		}
		flat := rows[0]
		width := len(ordinals)
		tuples := make([]Row, len(s.Values))
		for ti := range s.Values {
			tuples[ti] = flat[ti*width : (ti+1)*width]
		}
		data = reshapeInsertRows(info.Schema, ordinals, tuples)
	}

	n, err := c.store.Insert(s.Table, data)
	if err != nil {
		return nil, err
	}
	return c.affectedFrame(n)
}

// reshapeInsertRows spreads tuple values (one per target ordinal) into
// full-width schema rows, leaving unlisted columns NULL.
func reshapeInsertRows(schema types.StructType, ordinals []int, tuples []Row) []Row {
	out := make([]Row, len(tuples))
	for i, t := range tuples {
		r := make(Row, len(schema.Fields))
		for j, ord := range ordinals {
			r[ord] = t[j]
		}
		out[i] = r
	}
	return out
}

// compilePredicate analyzes a WHERE clause against the pinned relation and
// returns a row predicate bound to the table's column order. A nil cond
// matches every row.
func (c *Context) compilePredicate(rel *plan.InMemoryRelation, cond expr.Expression) (func(row.Row) (bool, error), error) {
	if cond == nil {
		return func(row.Row) (bool, error) { return true, nil }, nil
	}
	analyzed, err := c.engine.Analyze(&plan.Filter{Cond: cond, Child: rel})
	if err != nil {
		return nil, err
	}
	filter, ok := analyzed.(*plan.Filter)
	if !ok {
		return nil, fmt.Errorf("sparksql: WHERE clause resolved to %T", analyzed)
	}
	bound, err := expr.Bind(filter.Cond, rel.Output())
	if err != nil {
		return nil, err
	}
	return func(r row.Row) (hit bool, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("sparksql: evaluating WHERE: %v", p)
			}
		}()
		return bound.Eval(r) == true, nil
	}, nil
}

func (c *Context) execDelete(s *sqlparser.DeleteStatement) (*DataFrame, error) {
	rel := c.store.Snapshot(s.Table)
	if rel == nil {
		return nil, fmt.Errorf("sparksql: DELETE: unknown table %q", s.Table)
	}
	pred, err := c.compilePredicate(rel, s.Where)
	if err != nil {
		return nil, err
	}
	n, err := c.store.Delete(s.Table, pred)
	if err != nil {
		return nil, err
	}
	return c.affectedFrame(n)
}

func (c *Context) execUpdate(s *sqlparser.UpdateStatement) (*DataFrame, error) {
	rel := c.store.Snapshot(s.Table)
	if rel == nil {
		return nil, fmt.Errorf("sparksql: UPDATE: unknown table %q", s.Table)
	}
	info, _ := c.store.Info(s.Table)
	schema := info.Schema

	// One projection expression per column: the SET value (cast to the
	// column type) where assigned, the column itself otherwise. Analyzing
	// the projection against the pinned relation resolves names in SET
	// expressions ("a = a + 1" reads the old row).
	assigned := map[int]expr.Expression{}
	for _, set := range s.Set {
		found := -1
		for i, f := range schema.Fields {
			if strings.EqualFold(f.Name, set.Column) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("sparksql: UPDATE %q: unknown column %q", s.Table, set.Column)
		}
		if _, dup := assigned[found]; dup {
			return nil, fmt.Errorf("sparksql: UPDATE %q: column %q assigned twice", s.Table, set.Column)
		}
		assigned[found] = set.Value
	}
	projList := make([]expr.Expression, len(schema.Fields))
	for i, f := range schema.Fields {
		if e, ok := assigned[i]; ok {
			projList[i] = expr.NewAlias(expr.NewCast(e, f.Type), f.Name)
		} else {
			projList[i] = expr.UnresolvedAttr(f.Name)
		}
	}
	analyzed, err := c.engine.Analyze(&plan.Project{List: projList, Child: rel})
	if err != nil {
		return nil, err
	}
	proj, ok := analyzed.(*plan.Project)
	if !ok {
		return nil, fmt.Errorf("sparksql: UPDATE projection resolved to %T", analyzed)
	}
	bound, err := expr.BindAll(proj.List, rel.Output())
	if err != nil {
		return nil, err
	}
	pred, err := c.compilePredicate(rel, s.Where)
	if err != nil {
		return nil, err
	}

	n, err := c.store.Update(s.Table, func(r row.Row) (out row.Row, hit bool, err error) {
		defer func() {
			if p := recover(); p != nil {
				out, hit, err = nil, false, fmt.Errorf("sparksql: evaluating SET: %v", p)
			}
		}()
		hit, err = pred(r)
		if err != nil || !hit {
			return nil, false, err
		}
		next := make(row.Row, len(bound))
		for i, e := range bound {
			next[i] = e.Eval(r)
		}
		return next, true, nil
	})
	if err != nil {
		return nil, err
	}
	return c.affectedFrame(n)
}

// showTablesFrame is SHOW TABLES: persistent tables with live row counts,
// on-disk size and MVCC version, then temp tables (catalog views) with
// NULL metrics.
func (c *Context) showTablesFrame() (*DataFrame, error) {
	schema := types.NewStruct(
		types.StructField{Name: "name", Type: types.String, Nullable: false},
		types.StructField{Name: "kind", Type: types.String, Nullable: false},
		types.StructField{Name: "rows", Type: types.Long, Nullable: true},
		types.StructField{Name: "bytes", Type: types.Long, Nullable: true},
		types.StructField{Name: "version", Type: types.Long, Nullable: true},
	)
	var rows []Row
	persistent := map[string]bool{}
	for _, info := range c.store.Tables() {
		persistent[info.Name] = true
		rows = append(rows, Row{info.Name, "table", info.Rows, info.Bytes, info.Version})
	}
	for _, name := range c.engine.Catalog.TableNames() {
		if !persistent[name] {
			rows = append(rows, Row{name, "temp", nil, nil, nil})
		}
	}
	return c.CreateDataFrame(schema, rows)
}

// describeFrame is DESCRIBE <table>: one row per column plus a trailing
// version row for persistent tables.
func (c *Context) describeFrame(name string) (*DataFrame, error) {
	schema := types.NewStruct(
		types.StructField{Name: "column", Type: types.String, Nullable: false},
		types.StructField{Name: "type", Type: types.String, Nullable: false},
		types.StructField{Name: "nullable", Type: types.String, Nullable: false},
	)
	var rows []Row
	if info, ok := c.store.Info(name); ok {
		for _, f := range info.Schema.Fields {
			rows = append(rows, Row{f.Name, f.Type.Name(), fmt.Sprint(f.Nullable)})
		}
		rows = append(rows, Row{"# version", fmt.Sprint(info.Version), ""})
		return c.CreateDataFrame(schema, rows)
	}
	lp, ok := c.engine.Catalog.LookupTable(name)
	if !ok {
		return nil, fmt.Errorf("sparksql: DESCRIBE: unknown table %q", name)
	}
	df, err := c.newDataFrame(lp)
	if err != nil {
		return nil, err
	}
	for _, f := range df.Schema().Fields {
		rows = append(rows, Row{f.Name, f.Type.Name(), fmt.Sprint(f.Nullable)})
	}
	return c.CreateDataFrame(schema, rows)
}
