package sparksql

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/physical"
	"repro/internal/rdd"
)

// Adaptive query execution tests: each re-planning rule (partition
// coalescing, shuffled->broadcast promotion, broadcast->sort-merge
// demotion, skew splitting) must both fire — visible as an `adapted:`
// line in EXPLAIN ANALYZE — and leave query results byte-identical to
// the static plan.

// adaptiveConfig pins the knobs the ablations depend on. Counts are
// fixed so decisions (and row emission order) do not depend on the
// host's core count, and pipeline collapse is off because fused
// pipelines are opaque to the re-planner: adaptation happens at the
// exchange barriers of the row-operator tree.
func adaptiveConfig() Config {
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	cfg.ShufflePartitions = 8
	cfg.PipelineCollapse = false
	cfg.Vectorized = false
	cfg.Fusion = false
	return cfg
}

// registerRDDTable registers rows as an RDD-backed temp view: the
// planner sees no size estimates for it, which is exactly the regime
// adaptive execution exists for.
func registerRDDTable(t testing.TB, ctx *Context, name string, rows []Row, parts int) {
	t.Helper()
	schema := StructType{}.
		Add("k", LongType, false).
		Add("v", LongType, false)
	r := rdd.Parallelize(ctx.RDDContext(), rows, parts)
	df, err := ctx.CreateDataFrameFromRDD(schema, r)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable(name)
}

// registerLocalTable registers rows as a LocalRelation temp view, whose
// row count the planner knows exactly (sizes are still estimated).
func registerLocalTable(t testing.TB, ctx *Context, name string, rows []Row) {
	t.Helper()
	schema := StructType{}.
		Add("k", LongType, false).
		Add("v", LongType, false)
	df, err := ctx.CreateDataFrame(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable(name)
}

func kvRows(n int, key func(i int) int64) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{key(i), int64(i)}
	}
	return rows
}

// explainAnalyze runs EXPLAIN ANALYZE and fails the test on error.
func explainAnalyze(t *testing.T, ctx *Context, query string) string {
	t.Helper()
	df, err := ctx.SQL(query)
	if err != nil {
		t.Fatalf("%q: %v", query, err)
	}
	out, err := df.ExplainAnalyze()
	if err != nil {
		t.Fatalf("%q: %v", query, err)
	}
	return out
}

// checkAblation runs query under cfg twice — adaptive on and off — and
// demands byte-identical results, then asserts the adaptive run's
// EXPLAIN ANALYZE carries the expected `adapted:` marker.
func checkAblation(t *testing.T, cfg Config, setup func(testing.TB, *Context), query, marker string) {
	t.Helper()
	on := cfg
	on.Adaptive = true
	off := cfg
	off.Adaptive = false

	ctxOn := NewContextWithConfig(on)
	setup(t, ctxOn)
	ctxOff := NewContextWithConfig(off)
	setup(t, ctxOff)

	gotOn := rowsText(spillCollect(t, ctxOn, query))
	gotOff := rowsText(spillCollect(t, ctxOff, query))
	if gotOn != gotOff {
		t.Fatalf("adaptive on/off results diverge for %q:\n-- on --\n%s\n-- off --\n%s",
			query, gotOn, gotOff)
	}
	if len(gotOn) == 0 {
		t.Fatalf("%q returned no rows; ablation is vacuous", query)
	}

	// A fresh context so the EXPLAIN ANALYZE run adapts from scratch.
	ctxEA := NewContextWithConfig(on)
	setup(t, ctxEA)
	ea := explainAnalyze(t, ctxEA, query)
	if !strings.Contains(ea, marker) {
		t.Fatalf("EXPLAIN ANALYZE for %q missing %q:\n%s", query, marker, ea)
	}
	offEA := explainAnalyze(t, ctxOff, query)
	if strings.Contains(offEA, "adapted:") {
		t.Fatalf("EXPLAIN ANALYZE with Adaptive off shows an adaptation:\n%s", offEA)
	}
}

// TestAdaptiveCoalesce: an exchange statically sized to 8 reducers (the
// input size is unknown) observes a few hundred KB and coalesces.
func TestAdaptiveCoalesce(t *testing.T) {
	setup := func(t testing.TB, ctx *Context) {
		registerRDDTable(t, ctx, "t", kvRows(2000, func(i int) int64 { return int64(i % 50) }), 4)
	}
	checkAblation(t, adaptiveConfig(), setup,
		"SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k ORDER BY k",
		"adapted: shuffle exchange ->")
}

// TestAdaptivePromote: a shuffled join over estimate-free inputs whose
// build side turns out tiny is promoted to a broadcast join.
func TestAdaptivePromote(t *testing.T) {
	setup := func(t testing.TB, ctx *Context) {
		registerRDDTable(t, ctx, "a", kvRows(2000, func(i int) int64 { return int64(i % 50) }), 4)
		registerRDDTable(t, ctx, "b", kvRows(50, func(i int) int64 { return int64(i) }), 2)
	}
	checkAblation(t, adaptiveConfig(), setup,
		"SELECT a.k, a.v, b.v FROM a JOIN b ON a.k = b.k ORDER BY a.v",
		"ShuffledHashJoin -> BroadcastHashJoin (build side")
}

// TestAdaptiveDemote: the optimizer underestimates a filter (default
// selectivity on `v >= 0`, which actually keeps every row), plans a
// broadcast join under the threshold, and the observed build side blows
// past it — the join demotes to sort-merge.
func TestAdaptiveDemote(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.BroadcastThreshold = 8000
	setup := func(t testing.TB, ctx *Context) {
		registerLocalTable(t, ctx, "a", kvRows(1000, func(i int) int64 { return int64(i % 50) }))
		registerLocalTable(t, ctx, "b", kvRows(1000, func(i int) int64 { return int64(i % 50) }))
	}
	checkAblation(t, cfg, setup,
		"SELECT a.k, a.v, b.v FROM a JOIN (SELECT k, v FROM b WHERE v >= 0) b ON a.k = b.k ORDER BY a.v, b.v",
		"BroadcastHashJoin -> SortMergeJoin (build side")
}

// skewConfig shapes the skew ablations: a broadcast threshold of one
// byte keeps the dominated join shuffled (no promotion), and a small
// partition target keeps the observed exchange at 8 reducers so one hot
// bucket can exceed the skew factor.
func skewConfig() Config {
	cfg := adaptiveConfig()
	cfg.BroadcastThreshold = 1
	cfg.TargetPartitionBytes = 32 << 10
	return cfg
}

// setupSkewTables registers a Zipf(2)-keyed fact table (the majority of
// rows land on key 0) and a uniform dim side.
func setupSkewTables(t testing.TB, ctx *Context) {
	t.Helper()
	const factRows, keys = 6000, 64
	rows := make([]Row, factRows)
	for i := range rows {
		rows[i] = datagen.SkewedPairRow(0xADA9, int64(i), keys, 2.0)
	}
	r := rdd.Parallelize(ctx.RDDContext(), rows, 4)
	df, err := ctx.CreateDataFrameFromRDD(datagen.PairSchema(), r)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("fact")

	dim := make([]Row, keys)
	for i := range dim {
		dim[i] = Row{int32(i), int32(i * 10)}
	}
	dr := rdd.Parallelize(ctx.RDDContext(), dim, 2)
	ddf, err := ctx.CreateDataFrameFromRDD(datagen.PairSchema(), dr)
	if err != nil {
		t.Fatal(err)
	}
	ddf.RegisterTempTable("dim")
}

const skewJoinQuery = "SELECT f.a, f.b, d.b FROM fact f JOIN dim d ON f.a = d.a ORDER BY f.a, f.b, d.b"

// TestAdaptiveSkewSplit: the hot reduce bucket exceeds SkewFactor x the
// mean bucket size and is split, visibly and without changing results.
func TestAdaptiveSkewSplit(t *testing.T) {
	checkAblation(t, skewConfig(), func(t testing.TB, ctx *Context) { setupSkewTables(t, ctx) },
		skewJoinQuery,
		"uniform reduce -> skew-split buckets")
}

// TestAdaptiveSkewProperty is the satellite property test: over the
// Zipf-keyed workload, every combination of {adaptive on, off} x
// {unbounded, 1-byte memory budget} must produce byte-identical results
// — the ORDER BY covers every selected column, so any correct execution
// has exactly one rendering.
func TestAdaptiveSkewProperty(t *testing.T) {
	queries := []string{
		skewJoinQuery,
		"SELECT f.a, COUNT(*), SUM(f.b) FROM fact f JOIN dim d ON f.a = d.a GROUP BY f.a ORDER BY f.a",
	}
	type variant struct {
		name     string
		adaptive bool
		budget   int64
	}
	variants := []variant{
		{"static", false, 0},
		{"adaptive", true, 0},
		{"static-1B", false, 1},
		{"adaptive-1B", true, 1},
	}
	for _, q := range queries {
		var golden string
		for _, v := range variants {
			cfg := skewConfig()
			cfg.Adaptive = v.adaptive
			cfg.MemoryBudget = v.budget
			ctx := NewContextWithConfig(cfg)
			setupSkewTables(t, ctx)
			got := rowsText(spillCollect(t, ctx, q))
			if v.name == "static" {
				golden = got
				continue
			}
			if got != golden {
				t.Fatalf("%s diverges from static for %q", v.name, q)
			}
		}
	}
	// The property must actually exercise the skew path: the unbounded
	// adaptive run splits the hot bucket.
	ctx := NewContextWithConfig(skewConfig())
	setupSkewTables(t, ctx)
	if ea := explainAnalyze(t, ctx, skewJoinQuery); !strings.Contains(ea, "skew-split") {
		t.Fatalf("skew property never hit a skew split:\n%s", ea)
	}
}

// TestPlanHashStripsAdaptedAnnotations is the regression test for plan
// fingerprint parity: the coordinator hashes its adapted plan (which
// carries `(adapted: ...)` annotations, including the skew note with a
// second embedded `adapted:` segment), a worker hashes its replayed
// plan (which need not carry any note), and the two must agree.
func TestPlanHashStripsAdaptedAnnotations(t *testing.T) {
	cfg := skewConfig()
	ctx := NewContextWithConfig(cfg)
	setupSkewTables(t, ctx)
	df, err := ctx.SQL(skewJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	qe, err := df.queryExecution()
	if err != nil {
		t.Fatal(err)
	}
	q := qe.q.(*core.QueryExecution)
	if _, err := q.Collect(); err != nil {
		t.Fatal(err)
	}
	if q.Executed == nil || len(q.Decisions) == 0 {
		t.Fatal("adaptive run recorded no decisions")
	}
	annotated := q.Executed.String()
	if !strings.Contains(annotated, "(adapted:") {
		t.Fatalf("executed plan carries no adapted annotation:\n%s", annotated)
	}
	h := q.PlanHash()

	// Worker-style replay: adaptive off, same decisions but with the
	// notes wiped, so the replayed plan has zero annotations. Only the
	// normalization in PlanHash can make the fingerprints agree.
	wcfg := cfg
	wcfg.Adaptive = false
	wctx := NewContextWithConfig(wcfg)
	setupSkewTables(t, wctx)
	wdf, err := wctx.SQL(skewJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	wqe, err := wdf.queryExecution()
	if err != nil {
		t.Fatal(err)
	}
	wq := wqe.q.(*core.QueryExecution)
	bare := make([]physical.Decision, len(q.Decisions))
	copy(bare, q.Decisions)
	for i := range bare {
		bare[i].Note = ""
	}
	if err := wq.ApplyDecisions(bare); err != nil {
		t.Fatal(err)
	}
	if s := wq.Executed.String(); strings.Contains(s, "(adapted:") {
		t.Fatalf("note-free replay still renders an annotation:\n%s", s)
	}
	if wh := wq.PlanHash(); wh != h {
		t.Fatalf("plan hash %x (annotated) != %x (note-free replay):\n%s\n-- vs --\n%s",
			h, wh, annotated, wq.Executed.String())
	}
}

// TestAdaptiveOffMatchesDefaultPlans: with Adaptive off, plans and plan
// hashes are exactly the static planner's — no stage barriers, no
// decisions, no annotations.
func TestAdaptiveOffMatchesDefaultPlans(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.Adaptive = false
	ctx := NewContextWithConfig(cfg)
	registerRDDTable(t, ctx, "t", kvRows(500, func(i int) int64 { return int64(i % 10) }), 4)
	df, err := ctx.SQL("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	qe, err := df.queryExecution()
	if err != nil {
		t.Fatal(err)
	}
	q := qe.q.(*core.QueryExecution)
	before := q.PlanHash()
	if _, err := q.Collect(); err != nil {
		t.Fatal(err)
	}
	if q.Executed != nil || len(q.Decisions) != 0 {
		t.Fatalf("Adaptive off still adapted: %d decisions", len(q.Decisions))
	}
	if after := q.PlanHash(); after != before {
		t.Fatalf("plan hash changed across execution with Adaptive off: %x -> %x", before, after)
	}
}
