package sparksql

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/row"
)

// Spill property tests: under any MemoryBudget — including one byte, where
// every blocking operator holds at most one row before spilling — query
// results must be byte-identical to the unbounded in-memory path, and no
// spill file may survive a query, whether it completes or is cancelled.

const spillRows = 4000

func spillConfig(budget int64) Config {
	cfg := DefaultConfig()
	// Fixed fan-out so partitioning (and thus row emission order) is
	// identical across host core counts and between golden/budgeted runs.
	cfg.Parallelism = 4
	cfg.ShufflePartitions = 4
	cfg.MemoryBudget = budget
	return cfg
}

// setupSpillTables registers `events` (spillRows rows, ~100 B of object
// state each — hundreds of KB total, ≥10× the largest budget under test)
// and a small `dim` side for joins.
func setupSpillTables(t testing.TB, ctx *Context) {
	t.Helper()
	events := StructType{}.
		Add("id", IntType, false).
		Add("grp", IntType, false).
		Add("name", StringType, false).
		Add("val", DoubleType, false)
	rows := make([]Row, spillRows)
	for i := range rows {
		// Scrambled names so ORDER BY does real work; 80 groups of ~50
		// rows each so sorts see heavy duplicate keys.
		rows[i] = Row{
			int32(i),
			int32(i % 80),
			fmt.Sprintf("n%05d", (i*7919)%spillRows),
			float64(i%997) * 1.5,
		}
	}
	df, err := ctx.CreateDataFrame(events, rows)
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("events")

	dim := StructType{}.
		Add("grp", IntType, false).
		Add("label", StringType, false)
	var drows []Row
	for g := 0; g < 80; g += 2 {
		drows = append(drows, Row{int32(g), fmt.Sprintf("label%02d", g)})
	}
	ddf, err := ctx.CreateDataFrame(dim, drows)
	if err != nil {
		t.Fatal(err)
	}
	ddf.RegisterTempTable("dim")
}

// spillExactQueries must match the golden run row for row, in order —
// including the relative order of ORDER BY ties, which only survives
// spilling because the external sort is stable end to end.
var spillExactQueries = []string{
	"SELECT name, grp, val FROM events ORDER BY grp, name",
	"SELECT grp, val FROM events ORDER BY grp", // tie-heavy: stability must survive spilling
}

// spillCanonQueries are compared as sorted row sets. Aggregation and
// DISTINCT emission order is nondeterministic even fully in memory (the
// partial-aggregation phase iterates a Go map), and the budget switches the
// join's physical plan to a sort-merge join — so for these the contract is
// set equality plus deterministic values. first(name) still checks
// order-sensitivity: its per-group VALUE depends on merge order, which the
// spill path must reproduce exactly.
var spillCanonQueries = []string{
	"SELECT grp, count(*), sum(val), avg(val), min(name), max(name) FROM events GROUP BY grp",
	"SELECT grp, first(name) FROM events GROUP BY grp",
	"SELECT DISTINCT grp FROM events",
	"SELECT e.name, e.grp, d.label FROM events e JOIN dim d ON e.grp = d.grp",
	"SELECT e.name, d.label FROM events e LEFT JOIN dim d ON e.grp = d.grp WHERE e.id < 500",
}

func spillCollect(t *testing.T, ctx *Context, query string) []Row {
	t.Helper()
	df, err := ctx.SQL(query)
	if err != nil {
		t.Fatalf("%q: %v", query, err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatalf("%q: %v", query, err)
	}
	return rows
}

func rowsText(rows []Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = row.FormatValue(v)
		}
		lines[i] = strings.Join(parts, "\t")
	}
	return strings.Join(lines, "\n")
}

func canonText(rows []Row) string {
	lines := strings.Split(rowsText(rows), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestSpillPropertyRandomBudgets runs the workload at fixed and seeded
// random budgets — from one byte to 16 KB against hundreds of KB of data —
// and checks every result against an unbudgeted golden run, that spilling
// actually occurred, and that no spill file survives any query.
func TestSpillPropertyRandomBudgets(t *testing.T) {
	golden := NewContextWithConfig(spillConfig(0))
	setupSpillTables(t, golden)
	wantExact := make(map[string]string, len(spillExactQueries))
	for _, q := range spillExactQueries {
		wantExact[q] = rowsText(spillCollect(t, golden, q))
	}
	wantCanon := make(map[string]string, len(spillCanonQueries))
	for _, q := range spillCanonQueries {
		wantCanon[q] = canonText(spillCollect(t, golden, q))
	}

	budgets := []int64{1, 127, 1 << 10, 16 << 10}
	rng := rand.New(rand.NewSource(0x5B111))
	for i := 0; i < 3; i++ {
		budgets = append(budgets, 1+rng.Int63n(16<<10))
	}

	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			if budget == 1 && testing.Short() {
				t.Skip("one-byte budget spills per row; skipped in -short")
			}
			ctx := NewContextWithConfig(spillConfig(budget))
			setupSpillTables(t, ctx)
			ctx.SpillFS().WriteNanosPerByte = 0
			ctx.SpillFS().ReadNanosPerByte = 0
			for _, q := range spillExactQueries {
				if got := rowsText(spillCollect(t, ctx, q)); got != wantExact[q] {
					t.Errorf("%q diverged from in-memory run at budget %d", q, budget)
				}
				if nf := ctx.SpillFS().NumFiles(); nf != 0 {
					t.Fatalf("%q left %d spill files at budget %d", q, nf, budget)
				}
			}
			for _, q := range spillCanonQueries {
				if got := canonText(spillCollect(t, ctx, q)); got != wantCanon[q] {
					t.Errorf("%q diverged from in-memory run at budget %d", q, budget)
				}
				if nf := ctx.SpillFS().NumFiles(); nf != 0 {
					t.Fatalf("%q left %d spill files at budget %d", q, nf, budget)
				}
			}
			if n := ctx.Metrics().Counter("memory.spill.count").Load(); n == 0 {
				t.Fatalf("budget %d forced no spills over %d-row inputs", budget, spillRows)
			}
		})
	}
}

// TestSpillExplainAnalyze checks the observability contract: a budgeted run
// annotates spilling operators with `spilled: N B, R runs`, and the analyze
// run itself leaves no spill files behind.
func TestSpillExplainAnalyze(t *testing.T) {
	ctx := NewContextWithConfig(spillConfig(2 << 10))
	setupSpillTables(t, ctx)
	ctx.SpillFS().WriteNanosPerByte = 0
	ctx.SpillFS().ReadNanosPerByte = 0
	df, err := ctx.SQL("SELECT grp, count(*), sum(val) FROM events GROUP BY grp ORDER BY grp")
	if err != nil {
		t.Fatal(err)
	}
	out, err := df.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "spilled:") {
		t.Fatalf("EXPLAIN ANALYZE missing spill annotation:\n%s", out)
	}
	if nf := ctx.SpillFS().NumFiles(); nf != 0 {
		t.Fatalf("EXPLAIN ANALYZE left %d spill files", nf)
	}
	// An unbudgeted run must not mention spilling.
	g := NewContextWithConfig(spillConfig(0))
	setupSpillTables(t, g)
	gdf, err := g.SQL("SELECT grp, count(*), sum(val) FROM events GROUP BY grp ORDER BY grp")
	if err != nil {
		t.Fatal(err)
	}
	gout, err := gdf.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(gout, "spilled:") {
		t.Fatalf("unbudgeted EXPLAIN ANALYZE mentions spilling:\n%s", gout)
	}
}

// TestSpillCleanupOnCancel cancels a query mid-spill (slow simulated spill
// writes guarantee it cannot finish in time) and checks that every spill
// file is deleted on the cancellation path too.
func TestSpillCleanupOnCancel(t *testing.T) {
	ctx := NewContextWithConfig(spillConfig(512))
	setupSpillTables(t, ctx)
	ctx.SpillFS().WriteNanosPerByte = 2000 // ~0.5 MB/s: spilling dominates the query
	ctx.SpillFS().ReadNanosPerByte = 0
	df, err := ctx.SQL("SELECT name, grp, val FROM events ORDER BY grp, name")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if _, err := df.CollectContext(cctx); err == nil {
		t.Fatal("query with a 15ms deadline over ~1s of simulated spill I/O should have been cancelled")
	}
	if nf := ctx.SpillFS().NumFiles(); nf != 0 {
		t.Fatalf("cancelled query left %d spill files", nf)
	}
}
