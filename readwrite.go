package sparksql

import (
	"encoding/csv"
	"fmt"
	"os"

	"repro/internal/datasource"
	"repro/internal/datasource/colfile"
	"repro/internal/plan"
	"repro/internal/row"
)

// Reader builds data source reads (ctx.Read().Option(...).CSV(path)).
type Reader struct {
	ctx     *Context
	options map[string]string
}

// Option sets a provider option (paper §4.4.1's key-value parameters).
func (r *Reader) Option(key, value string) *Reader {
	r.options[key] = value
	return r
}

// Schema declares a schema string ("name STRING, age INT") for sources
// that accept one.
func (r *Reader) Schema(s string) *Reader { return r.Option("schema", s) }

// Load opens a relation through the named provider.
func (r *Reader) Load(source string) (*DataFrame, error) {
	p, err := r.ctx.sources.Lookup(source)
	if err != nil {
		return nil, err
	}
	rel, err := p.CreateRelation(r.options)
	if err != nil {
		return nil, err
	}
	return r.ctx.frameForRelation(source, rel)
}

// CSV reads a CSV file.
func (r *Reader) CSV(path string) (*DataFrame, error) {
	return r.Option("path", path).Load("csv")
}

// JSON reads a file of JSON records, inferring the schema (paper §5.1).
func (r *Reader) JSON(path string) (*DataFrame, error) {
	return r.Option("path", path).Load("json")
}

// ColFile reads this repo's columnar file format (the Parquet stand-in).
func (r *Reader) ColFile(path string) (*DataFrame, error) {
	return r.Option("path", path).Load("colfile")
}

// Write begins building an output operation.
func (df *DataFrame) Write() *Writer { return &Writer{df: df} }

// Writer persists DataFrames to files.
type Writer struct {
	df           *DataFrame
	rowGroupSize int
}

// RowGroupSize sets the columnar writer's rows-per-group.
func (w *Writer) RowGroupSize(n int) *Writer {
	w.rowGroupSize = n
	return w
}

// ColFile writes the DataFrame to the columnar format with row-group
// statistics for later filter skipping.
func (w *Writer) ColFile(path string) error {
	rows, err := w.df.Collect()
	if err != nil {
		return err
	}
	return colfile.Write(path, w.df.Schema(), rows, w.rowGroupSize)
}

// InsertInto appends the DataFrame's rows to a registered table backed by
// a data source implementing datasource.InsertableRelation (paper §4.4.1's
// write-side interface: "Spark SQL just provides an RDD of Row objects to
// be written"). Column count must match; values are written positionally.
func (w *Writer) InsertInto(table string) error {
	lp, ok := w.df.ctx.engine.Catalog.LookupTable(table)
	if !ok {
		return fmt.Errorf("sparksql: no such table %q", table)
	}
	src, ok := lp.(*plan.DataSourceRelation)
	if !ok {
		return fmt.Errorf("sparksql: table %q is not a data source relation", table)
	}
	ins, ok := src.Rel.(datasource.InsertableRelation)
	if !ok {
		return fmt.Errorf("sparksql: data source %q does not support writes", table)
	}
	if got, want := len(w.df.Columns()), len(src.Attrs); got != want {
		return fmt.Errorf("sparksql: cannot insert %d columns into %q (%d columns)", got, table, want)
	}
	r, err := w.df.ToRDD()
	if err != nil {
		return err
	}
	parts := make([][]row.Row, r.NumPartitions())
	var collectErr error
	func() {
		defer func() {
			if p := recover(); p != nil {
				collectErr = fmt.Errorf("sparksql: insert failed: %v", p)
			}
		}()
		r.ForeachPartition(func(p int, data []row.Row) { parts[p] = data })
	}()
	if collectErr != nil {
		return collectErr
	}
	return ins.Insert(parts)
}

// CSV writes the DataFrame as a CSV file with a header row.
func (w *Writer) CSV(path string) error {
	rows, err := w.df.Collect()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sparksql: %w", err)
	}
	cw := csv.NewWriter(f)
	if err := cw.Write(w.df.Columns()); err != nil {
		f.Close()
		return err
	}
	rec := make([]string, len(w.df.Columns()))
	for _, r := range rows {
		for i := range rec {
			if r[i] == nil {
				rec[i] = ""
			} else {
				rec[i] = row.FormatValue(r[i])
			}
		}
		if err := cw.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
