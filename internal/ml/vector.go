// Package ml reproduces the DataFrame-based ML pipeline API of paper §5.2:
// Transformer/Estimator stages exchanging DataFrames, a Tokenizer, a
// HashingTF term-frequency featurizer, logistic regression trained by
// gradient descent, and the vector user-defined type MLlib registered with
// Spark SQL — "a boolean for the type (dense or sparse), a size for the
// vector, an array of indices, and an array of double values".
package ml

import (
	"fmt"
	"math"

	"repro/internal/row"
	"repro/internal/types"
)

// Vector is a dense or sparse numeric vector.
type Vector struct {
	Dense   bool
	Size    int32
	Indices []int32   // sparse coordinates (nil when dense)
	Values  []float64 // all coordinates (dense) or non-zero values (sparse)
}

// NewDense builds a dense vector.
func NewDense(values ...float64) Vector {
	return Vector{Dense: true, Size: int32(len(values)), Values: values}
}

// NewSparse builds a sparse vector.
func NewSparse(size int32, indices []int32, values []float64) Vector {
	return Vector{Dense: false, Size: size, Indices: indices, Values: values}
}

// At returns coordinate i.
func (v Vector) At(i int32) float64 {
	if v.Dense {
		return v.Values[i]
	}
	for k, idx := range v.Indices {
		if idx == i {
			return v.Values[k]
		}
	}
	return 0
}

// Dot computes the inner product with a dense weight slice.
func (v Vector) Dot(w []float64) float64 {
	var s float64
	if v.Dense {
		for i, x := range v.Values {
			s += x * w[i]
		}
		return s
	}
	for k, idx := range v.Indices {
		s += v.Values[k] * w[idx]
	}
	return s
}

// AddScaledInto accumulates alpha*v into acc (gradient updates).
func (v Vector) AddScaledInto(acc []float64, alpha float64) {
	if v.Dense {
		for i, x := range v.Values {
			acc[i] += alpha * x
		}
		return
	}
	for k, idx := range v.Indices {
		acc[idx] += alpha * v.Values[k]
	}
}

func (v Vector) String() string {
	if v.Dense {
		return fmt.Sprintf("dense%v", v.Values)
	}
	return fmt.Sprintf("sparse(%d)%v@%v", v.Size, v.Values, v.Indices)
}

// VectorUDT maps Vector onto built-in Catalyst types (paper §4.4.2, §5.2):
// STRUCT<dense BOOLEAN, size INT, indices ARRAY<INT>, values ARRAY<DOUBLE>>.
type VectorUDT struct{}

var _ types.UserDefinedType = VectorUDT{}

// TypeName implements types.UserDefinedType; the name matches the Go type
// so reflection-based schema inference recognizes Vector fields.
func (VectorUDT) TypeName() string { return "Vector" }

// SQLType implements types.UserDefinedType.
func (VectorUDT) SQLType() types.DataType {
	return types.StructType{}.
		Add("dense", types.Boolean, false).
		Add("size", types.Int, false).
		Add("indices", types.ArrayType{Elem: types.Int, ContainsNull: false}, true).
		Add("values", types.ArrayType{Elem: types.Double, ContainsNull: false}, false)
}

// Serialize implements types.UserDefinedType.
func (VectorUDT) Serialize(obj any) (any, error) {
	v, ok := obj.(Vector)
	if !ok {
		return nil, fmt.Errorf("ml: expected Vector, got %T", obj)
	}
	return SerializeVector(v), nil
}

// Deserialize implements types.UserDefinedType.
func (VectorUDT) Deserialize(v any) (any, error) {
	r, ok := v.(row.Row)
	if !ok {
		return nil, fmt.Errorf("ml: expected struct row, got %T", v)
	}
	return DeserializeVector(r), nil
}

// SerializeVector converts to the SQL struct representation.
func SerializeVector(v Vector) row.Row {
	var indices []any
	if !v.Dense {
		indices = make([]any, len(v.Indices))
		for i, x := range v.Indices {
			indices[i] = x
		}
	}
	values := make([]any, len(v.Values))
	for i, x := range v.Values {
		values[i] = x
	}
	return row.Row{v.Dense, v.Size, indices, values}
}

// DeserializeVector converts the SQL struct representation back.
func DeserializeVector(r row.Row) Vector {
	v := Vector{Dense: r[0].(bool), Size: r[1].(int32)}
	if r[2] != nil {
		arr := r[2].([]any)
		v.Indices = make([]int32, len(arr))
		for i, x := range arr {
			v.Indices[i] = x.(int32)
		}
	}
	arr := r[3].([]any)
	v.Values = make([]float64, len(arr))
	for i, x := range arr {
		v.Values[i] = x.(float64)
	}
	return v
}

// Sigmoid is the logistic function.
func Sigmoid(z float64) float64 { return 1.0 / (1.0 + math.Exp(-z)) }
