package ml

import (
	"fmt"

	sparksql "repro"
	"repro/internal/row"
)

// LogisticRegression trains a binary classifier with batch gradient
// descent over (features Vector, label DOUBLE) columns — the final stage
// of the paper's Figure 7 pipeline.
type LogisticRegression struct {
	FeaturesCol, LabelCol string
	// MaxIter is the number of gradient steps (default 50); StepSize the
	// learning rate (default 1.0); RegParam an L2 penalty (default 0).
	MaxIter  int
	StepSize float64
	RegParam float64
}

// Fit implements Estimator.
func (lr *LogisticRegression) Fit(df *sparksql.DataFrame) (Transformer, error) {
	maxIter := lr.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	step := lr.StepSize
	if step <= 0 {
		step = 1.0
	}
	sel, err := df.Select(sparksql.Col(lr.FeaturesCol), sparksql.Col(lr.LabelCol))
	if err != nil {
		return nil, err
	}
	rows, err := sel.Collect()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("ml: LogisticRegression.Fit on empty dataset")
	}
	examples := make([]Vector, 0, len(rows))
	labels := make([]float64, 0, len(rows))
	var dim int32
	for _, r := range rows {
		if r[0] == nil || r[1] == nil {
			continue
		}
		v := DeserializeVector(r[0].(row.Row))
		if v.Size > dim {
			dim = v.Size
		}
		examples = append(examples, v)
		labels = append(labels, asFloat(r[1]))
	}
	weights := make([]float64, dim)
	intercept := 0.0
	n := float64(len(examples))
	grad := make([]float64, dim)
	for iter := 0; iter < maxIter; iter++ {
		for i := range grad {
			grad[i] = 0
		}
		gradB := 0.0
		for i, x := range examples {
			p := Sigmoid(x.Dot(weights) + intercept)
			e := p - labels[i]
			x.AddScaledInto(grad, e)
			gradB += e
		}
		lrate := step / (1.0 + float64(iter)/10.0)
		for i := range weights {
			weights[i] -= lrate * (grad[i]/n + lr.RegParam*weights[i])
		}
		intercept -= lrate * gradB / n
	}
	return &LogisticRegressionModel{
		Weights:       weights,
		Intercept:     intercept,
		FeaturesCol:   lr.FeaturesCol,
		PredictionCol: "prediction",
	}, nil
}

func asFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	}
	return 0
}

// LogisticRegressionModel is the fitted classifier.
type LogisticRegressionModel struct {
	Weights       []float64
	Intercept     float64
	FeaturesCol   string
	PredictionCol string
}

// Predict scores one feature vector (usable directly or registered as a
// UDF, the paper's §3.7 model-as-UDF example).
func (m *LogisticRegressionModel) Predict(v Vector) float64 {
	if Sigmoid(v.Dot(m.Weights)+m.Intercept) >= 0.5 {
		return 1
	}
	return 0
}

// PredictProb returns the positive-class probability.
func (m *LogisticRegressionModel) PredictProb(v Vector) float64 {
	return Sigmoid(v.Dot(m.Weights) + m.Intercept)
}

// Transform implements Transformer: appends the prediction column.
func (m *LogisticRegressionModel) Transform(df *sparksql.DataFrame) (*sparksql.DataFrame, error) {
	in, err := df.Col(m.FeaturesCol)
	if err != nil {
		return nil, err
	}
	udt := VectorUDT{}
	out := sparksql.UDFColumn("predict",
		func(args []any) any {
			if args[0] == nil {
				return nil
			}
			return m.Predict(DeserializeVector(args[0].(row.Row)))
		},
		[]sparksql.DataType{udt.SQLType()},
		sparksql.DoubleType,
		in)
	return df.WithColumn(m.PredictionCol, out)
}
