package ml

import (
	"fmt"
	"strings"

	sparksql "repro"
)

// Transformer is a pipeline stage mapping a DataFrame to a DataFrame
// (feature extraction, model application).
type Transformer interface {
	Transform(df *sparksql.DataFrame) (*sparksql.DataFrame, error)
}

// Estimator is a stage that learns a Transformer from data (model
// training).
type Estimator interface {
	Fit(df *sparksql.DataFrame) (Transformer, error)
}

// Pipeline is a sequence of stages, each a Transformer or an Estimator
// (paper §5.2: "a pipeline is a graph of transformations on data ... each
// of which exchange datasets"). Fit threads the DataFrame through the
// stages, fitting estimators on the data produced so far.
type Pipeline struct {
	Stages []any
}

// PipelineModel is a fitted pipeline: all stages are transformers.
type PipelineModel struct {
	Stages []Transformer
}

// Fit fits the pipeline on a training DataFrame.
func (p *Pipeline) Fit(df *sparksql.DataFrame) (*PipelineModel, error) {
	model := &PipelineModel{}
	cur := df
	for i, stage := range p.Stages {
		switch s := stage.(type) {
		case Transformer:
			next, err := s.Transform(cur)
			if err != nil {
				return nil, fmt.Errorf("ml: pipeline stage %d: %w", i, err)
			}
			model.Stages = append(model.Stages, s)
			cur = next
		case Estimator:
			fitted, err := s.Fit(cur)
			if err != nil {
				return nil, fmt.Errorf("ml: fitting stage %d: %w", i, err)
			}
			next, err := fitted.Transform(cur)
			if err != nil {
				return nil, fmt.Errorf("ml: pipeline stage %d: %w", i, err)
			}
			model.Stages = append(model.Stages, fitted)
			cur = next
		default:
			return nil, fmt.Errorf("ml: stage %d (%T) is neither Transformer nor Estimator", i, stage)
		}
	}
	return model, nil
}

// Transform runs the fitted pipeline on new data.
func (m *PipelineModel) Transform(df *sparksql.DataFrame) (*sparksql.DataFrame, error) {
	cur := df
	for i, s := range m.Stages {
		next, err := s.Transform(cur)
		if err != nil {
			return nil, fmt.Errorf("ml: model stage %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// Tokenizer splits a string column into lowercase words.
type Tokenizer struct {
	InputCol, OutputCol string
}

// Transform implements Transformer.
func (t *Tokenizer) Transform(df *sparksql.DataFrame) (*sparksql.DataFrame, error) {
	in, err := df.Col(t.InputCol)
	if err != nil {
		return nil, err
	}
	out := sparksql.UDFColumn("tokenize",
		func(args []any) any {
			if args[0] == nil {
				return nil
			}
			words := strings.Fields(strings.ToLower(args[0].(string)))
			arr := make([]any, len(words))
			for i, w := range words {
				arr[i] = w
			}
			return arr
		},
		[]sparksql.DataType{sparksql.StringType},
		sparksql.ArrayType(sparksql.StringType, false),
		in)
	return df.WithColumn(t.OutputCol, out)
}

// HashingTF maps a word array to a sparse term-frequency vector of
// NumFeatures dimensions (the paper Figure 7 featurizer).
type HashingTF struct {
	InputCol, OutputCol string
	NumFeatures         int32
}

// Transform implements Transformer.
func (h *HashingTF) Transform(df *sparksql.DataFrame) (*sparksql.DataFrame, error) {
	n := h.NumFeatures
	if n <= 0 {
		n = 1 << 10
	}
	in, err := df.Col(h.InputCol)
	if err != nil {
		return nil, err
	}
	udt := VectorUDT{}
	out := sparksql.UDFColumn("hashingTF",
		func(args []any) any {
			if args[0] == nil {
				return nil
			}
			words := args[0].([]any)
			counts := map[int32]float64{}
			for _, w := range words {
				counts[hashWord(w.(string), n)]++
			}
			indices := make([]int32, 0, len(counts))
			for idx := range counts {
				indices = append(indices, idx)
			}
			sortInt32(indices)
			values := make([]float64, len(indices))
			for i, idx := range indices {
				values[i] = counts[idx]
			}
			return SerializeVector(NewSparse(n, indices, values))
		},
		[]sparksql.DataType{sparksql.ArrayType(sparksql.StringType, false)},
		udt.SQLType(),
		in)
	return df.WithColumn(h.OutputCol, out)
}

func hashWord(w string, n int32) int32 {
	var h uint32 = 2166136261
	for i := 0; i < len(w); i++ {
		h ^= uint32(w[i])
		h *= 16777619
	}
	return int32(h % uint32(n))
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
