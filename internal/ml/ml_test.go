package ml

import (
	"math/rand"
	"testing"
	"testing/quick"

	sparksql "repro"
	"repro/internal/row"
)

func TestVectorOps(t *testing.T) {
	d := NewDense(1, 2, 3)
	if d.At(1) != 2 || d.Size != 3 {
		t.Fatalf("dense = %+v", d)
	}
	s := NewSparse(5, []int32{1, 4}, []float64{10, 20})
	if s.At(1) != 10 || s.At(2) != 0 || s.At(4) != 20 {
		t.Fatalf("sparse access wrong")
	}
	w := []float64{1, 1, 1, 1, 1}
	if s.Dot(w) != 30 {
		t.Fatalf("sparse dot = %f", s.Dot(w))
	}
	if d.Dot([]float64{1, 0, 1}) != 4 {
		t.Fatalf("dense dot = %f", d.Dot([]float64{1, 0, 1}))
	}
	acc := make([]float64, 5)
	s.AddScaledInto(acc, 2)
	if acc[1] != 20 || acc[4] != 40 || acc[0] != 0 {
		t.Fatalf("acc = %v", acc)
	}
}

// Property: UDT serialize/deserialize round-trips both dense and sparse
// vectors (paper §4.4.2's mapping contract).
func TestVectorUDTRoundTrip(t *testing.T) {
	udt := VectorUDT{}
	f := func(vals []float64, sparse bool) bool {
		if len(vals) == 0 {
			vals = []float64{0}
		}
		var v Vector
		if sparse {
			idx := make([]int32, len(vals))
			for i := range idx {
				idx[i] = int32(i * 2)
			}
			v = NewSparse(int32(len(vals)*2), idx, vals)
		} else {
			v = NewDense(vals...)
		}
		ser, err := udt.Serialize(v)
		if err != nil {
			return false
		}
		back, err := udt.Deserialize(ser)
		if err != nil {
			return false
		}
		got := back.(Vector)
		if got.Dense != v.Dense || got.Size != v.Size || len(got.Values) != len(v.Values) {
			return false
		}
		for i := range v.Values {
			if got.Values[i] != v.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVectorUDTSQLShape(t *testing.T) {
	// The paper's four-field representation: dense flag, size, indices,
	// values.
	st := VectorUDT{}.SQLType()
	s := st.Name()
	for _, field := range []string{"dense", "size", "indices", "values"} {
		if !contains(s, field) {
			t.Errorf("SQL type missing %q: %s", field, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func textFrame(t *testing.T, rows []sparksql.Row) *sparksql.DataFrame {
	t.Helper()
	ctx := sparksql.NewContext()
	schema := sparksql.StructType{}.
		Add("text", sparksql.StringType, false).
		Add("label", sparksql.DoubleType, false)
	df, err := ctx.CreateDataFrame(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestTokenizer(t *testing.T) {
	df := textFrame(t, []sparksql.Row{{"Hello World hello", 1.0}})
	tok := &Tokenizer{InputCol: "text", OutputCol: "words"}
	out, err := tok.Transform(df)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	words := rows[0][2].([]any)
	if len(words) != 3 || words[0] != "hello" || words[1] != "world" {
		t.Fatalf("words = %v", words)
	}
}

func TestHashingTFDeterministicAndSized(t *testing.T) {
	df := textFrame(t, []sparksql.Row{{"a b a c a", 1.0}})
	pipe := &Pipeline{Stages: []any{
		&Tokenizer{InputCol: "text", OutputCol: "words"},
		&HashingTF{InputCol: "words", OutputCol: "features", NumFeatures: 64},
	}}
	model, err := pipe.Fit(df)
	if err != nil {
		t.Fatal(err)
	}
	out, err := model.Transform(df)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := out.Collect()
	if err != nil {
		t.Fatal(err)
	}
	vec := DeserializeVector(rows[0][3].(row.Row))
	if vec.Size != 64 || vec.Dense {
		t.Fatalf("vector = %+v", vec)
	}
	var total float64
	maxCount := 0.0
	for _, v := range vec.Values {
		total += v
		if v > maxCount {
			maxCount = v
		}
	}
	if total != 5 || maxCount != 3 { // 5 words, "a" appears 3 times
		t.Fatalf("term frequencies wrong: %+v", vec)
	}
}

func TestLogisticRegressionLearnsSeparableData(t *testing.T) {
	// Positive docs mention "spark"; negatives don't. The Figure 7
	// pipeline must classify held-out docs correctly.
	rng := rand.New(rand.NewSource(4))
	pos := []string{"spark", "sql", "catalyst", "plan"}
	neg := []string{"dog", "cat", "fox", "cow"}
	var train []sparksql.Row
	for i := 0; i < 60; i++ {
		var words string
		var label float64
		if i%2 == 0 {
			words = pos[rng.Intn(4)] + " " + pos[rng.Intn(4)] + " spark"
			label = 1
		} else {
			words = neg[rng.Intn(4)] + " " + neg[rng.Intn(4)] + " dog"
			label = 0
		}
		train = append(train, sparksql.Row{words, label})
	}
	df := textFrame(t, train)
	pipeline := &Pipeline{Stages: []any{
		&Tokenizer{InputCol: "text", OutputCol: "words"},
		&HashingTF{InputCol: "words", OutputCol: "features", NumFeatures: 128},
		&LogisticRegression{FeaturesCol: "features", LabelCol: "label", MaxIter: 100},
	}}
	model, err := pipeline.Fit(df)
	if err != nil {
		t.Fatal(err)
	}
	test := textFrame(t, []sparksql.Row{
		{"spark catalyst sql", 1.0},
		{"dog cat cow", 0.0},
		{"spark spark", 1.0},
		{"fox fox fox", 0.0},
	})
	scored, err := model.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := scored.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		label := r[1].(float64)
		pred := r[len(r)-1].(float64)
		if label != pred {
			t.Errorf("misclassified %q: label=%v pred=%v", r[0], label, pred)
		}
	}
}

func TestPipelineRejectsBadStage(t *testing.T) {
	df := textFrame(t, []sparksql.Row{{"x", 0.0}})
	p := &Pipeline{Stages: []any{42}}
	if _, err := p.Fit(df); err == nil {
		t.Fatal("non-stage values must be rejected")
	}
	tok := &Tokenizer{InputCol: "missing", OutputCol: "w"}
	if _, err := (&Pipeline{Stages: []any{tok}}).Fit(df); err == nil {
		t.Fatal("missing input column must fail (eager analysis)")
	}
}

func TestLogisticRegressionEmptyDataFails(t *testing.T) {
	ctx := sparksql.NewContext()
	schema := sparksql.StructType{}.
		Add("features", VectorUDT{}.SQLType(), true).
		Add("label", sparksql.DoubleType, false)
	df, err := ctx.CreateDataFrame(schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	lr := &LogisticRegression{FeaturesCol: "features", LabelCol: "label"}
	if _, err := lr.Fit(df); err == nil {
		t.Fatal("empty training set must fail")
	}
}
