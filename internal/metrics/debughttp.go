package metrics

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// RegisterDebugHandlers mounts the net/http/pprof and expvar handlers on
// mux — shared by the SQL server, worker and coordinator observability
// muxes so every process in the cluster profiles the same way: a CPU or
// heap profile of any of them is one curl to /debug/pprof/ away.
func RegisterDebugHandlers(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}
