// Package metrics is the engine's stdlib-only observability substrate: a
// shared registry of named counters, gauges and low-overhead histograms
// (all lock-free atomics on the hot path), labeled scopes for grouping,
// plus a structured in-memory trace buffer with a JSONL event-log exporter
// (trace.go) — the reproduction's stand-in for the Spark metrics system and
// event log behind the web UI's SQL tab.
//
// Design constraints: instrumentation stays on by default, so every
// recording operation must be a handful of atomic ops at most; rendering
// (Snapshot, WriteText) is the only place that takes locks over the whole
// registry. All recording methods tolerate a nil receiver so call sites can
// stay unconditional when a subsystem runs with metrics disabled.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value. Nil-safe (returns 0).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can move in both directions, with a helper to track
// a running maximum (peak build-side size, high-water marks).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value (a peak
// tracker). Nil-safe.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value. Nil-safe (returns 0).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of the power-of-two histogram: bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0 and
// v == 1 lands in bucket 1). 64 buckets cover the whole int64 range, so no
// observation is ever dropped.
const histBuckets = 64

// Histogram is a low-overhead power-of-two histogram: one atomic add into a
// bucket plus count/sum/min/max updates per observation, no locks.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count.Add(1) == 1 {
		// First observation seeds min; racy seeding is tolerable — a
		// concurrent smaller value still wins via the CAS loop below.
		h.min.Store(v)
	}
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// bucketOf maps v to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	// Buckets holds the non-zero buckets as (upper-bound, count) pairs in
	// ascending bound order; bound is exclusive (v < bound).
	Buckets []HistogramBucket
}

// HistogramBucket is one non-empty histogram bucket.
type HistogramBucket struct {
	UpperBound int64 // exclusive; 1<<i for bucket i
	Count      int64
}

// Mean returns the arithmetic mean (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts,
// interpolating linearly inside the winning bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	rank := q * float64(s.Count)
	var seen float64
	for _, b := range s.Buckets {
		if seen+float64(b.Count) >= rank {
			lo := float64(b.UpperBound) / 2
			hi := float64(b.UpperBound)
			if b.UpperBound <= 1 {
				lo = 0
				hi = 1
			}
			frac := (rank - seen) / float64(b.Count)
			v := lo + frac*(hi-lo)
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		seen += float64(b.Count)
	}
	return float64(s.Max)
}

// Snapshot copies the histogram state. Nil-safe (returns the zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: 1 << i, Count: n})
		}
	}
	return s
}

// Kind tags a metric's type in snapshots.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Metric is one named metric in a registry snapshot.
type Metric struct {
	Name  string
	Kind  Kind
	Value int64             // counters and gauges
	Hist  HistogramSnapshot // histograms
}

// Registry is a concurrent map of named metrics. Lookup (get-or-create) is
// a read-locked map hit in the steady state; recording through the returned
// handles takes no registry locks at all, so hot paths resolve their
// handles once and hold them.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe
// (returns nil, whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Scope is a registry view that prefixes every metric name — the labeled
// scope mechanism ("rdd.", "query.", "server.") keeping one registry per
// engine while letting subsystems name metrics locally.
type Scope struct {
	r      *Registry
	prefix string
}

// Scoped returns a scope prefixing names with "<prefix>.". Nil-safe.
func (r *Registry) Scoped(prefix string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, prefix: prefix + "."}
}

// Counter returns the scoped counter. Nil-safe.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.r.Counter(s.prefix + name)
}

// Gauge returns the scoped gauge. Nil-safe.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.Gauge(s.prefix + name)
}

// Histogram returns the scoped histogram. Nil-safe.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.r.Histogram(s.prefix + name)
}

// Labels renders a deterministic {k=v,...} suffix for metric names built
// from key-value pairs: Labels("table", "fact", "op", "scan") →
// `{op=scan,table=fact}`. Keys are sorted so equal label sets produce equal
// names.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, kv[i]+"="+kv[i+1])
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// Snapshot returns all metrics sorted by name. Nil-safe (empty).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: c.Load()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: g.Load()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Kind: KindHistogram, Hist: h.Snapshot()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MatchGlob reports whether name matches pattern. The empty pattern matches
// everything; a pattern without '*' is a prefix match (so `SHOW METRICS LIKE
// 'rdd.'` works without wildcards); a pattern with '*' is an anchored glob
// where each '*' matches any run of characters.
func MatchGlob(pattern, name string) bool {
	if pattern == "" {
		return true
	}
	if !strings.Contains(pattern, "*") {
		return strings.HasPrefix(name, pattern)
	}
	parts := strings.Split(pattern, "*")
	// Anchored at the front unless the pattern starts with '*'.
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		if part == "" {
			continue
		}
		i := strings.Index(name, part)
		if i < 0 {
			return false
		}
		name = name[i+len(part):]
	}
	// Anchored at the back unless the pattern ends with '*'.
	return strings.HasSuffix(name, parts[len(parts)-1])
}

// WriteText renders the registry in an expfmt-style plain-text form — one
// metric per line, histograms expanded into _count/_sum/_min/_max/_p50/_p99
// pseudo-series — served by the SQL server's /metrics endpoint and the
// SHOW METRICS statement.
func (r *Registry) WriteText(w io.Writer) error {
	return r.WriteTextFiltered(w, "")
}

// WriteTextFiltered is WriteText restricted to metrics whose name matches
// pattern (MatchGlob semantics; "" = all). Histogram pseudo-series match on
// the base histogram name.
func (r *Registry) WriteTextFiltered(w io.Writer, pattern string) error {
	for _, m := range r.Snapshot() {
		if !MatchGlob(pattern, m.Name) {
			continue
		}
		switch m.Kind {
		case KindHistogram:
			s := m.Hist
			if _, err := fmt.Fprintf(w,
				"%s_count %d\n%s_sum %d\n%s_min %d\n%s_max %d\n%s_p50 %.0f\n%s_p99 %.0f\n",
				m.Name, s.Count, m.Name, s.Sum, m.Name, s.Min, m.Name, s.Max,
				m.Name, s.Quantile(0.50), m.Name, s.Quantile(0.99)); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
