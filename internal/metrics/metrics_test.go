package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a").Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("same name must return the same counter")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5)
	if got := g.Load(); got != 7 {
		t.Fatalf("SetMax(5) lowered the gauge to %d", got)
	}
	g.SetMax(42)
	if got := g.Load(); got != 42 {
		t.Fatalf("SetMax(42) = %d, want 42", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every recording path must be a no-op on nil, not a panic.
	r.Counter("x").Inc()
	r.Gauge("x").SetMax(3)
	r.Histogram("x").Observe(9)
	r.Scoped("p").Counter("y").Add(2)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v", got)
	}
	var tb *TraceBuffer
	tb.Append(Span{Kind: SpanTask})
	if tb.Len() != 0 || tb.Total() != 0 || tb.Snapshot() != nil {
		t.Fatal("nil trace buffer must be inert")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1106 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if m := s.Mean(); m != 1106.0/5 {
		t.Fatalf("mean = %v", m)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v, want min", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("q1 = %v, want max", q)
	}
	if q := s.Quantile(0.5); q < 1 || q > 100 {
		t.Fatalf("median = %v out of plausible range", q)
	}
	// Bucket invariant: every observation v < its bucket's upper bound.
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{-5: 0, 0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, want)
		}
		if v > 0 {
			if bound := int64(1) << bucketOf(v); v >= bound {
				t.Fatalf("value %d not below its bucket bound %d", v, bound)
			}
		}
	}
}

func TestLabels(t *testing.T) {
	if got := Labels("b", "2", "a", "1"); got != "{a=1,b=2}" {
		t.Fatalf("Labels = %q", got)
	}
	if got := Labels(); got != "" {
		t.Fatalf("empty Labels = %q", got)
	}
}

func TestSnapshotSortedAndWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(3)
	r.Gauge("a.peak").Set(7)
	r.Histogram("m.lat").Observe(10)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"z.count 3\n", "a.peak 7\n", "m.lat_count 1\n", "m.lat_sum 10\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, text)
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines — the
// satellite -race test: concurrent get-or-create on colliding names plus
// concurrent recording and snapshotting must be race-free and lose no
// increments.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter(fmt.Sprintf("per.%d", w%4)).Inc()
				r.Gauge("shared.peak").SetMax(int64(w*iters + i))
				r.Histogram("shared.hist").Observe(int64(i))
				if i%128 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("shared.counter").Load(); got != workers*iters {
		t.Fatalf("shared counter = %d, want %d", got, workers*iters)
	}
	var per int64
	for i := 0; i < 4; i++ {
		per += r.Counter(fmt.Sprintf("per.%d", i)).Load()
	}
	if per != workers*iters {
		t.Fatalf("per-worker counters sum to %d, want %d", per, workers*iters)
	}
	if got := r.Gauge("shared.peak").Load(); got != (workers-1)*iters+iters-1 {
		t.Fatalf("peak gauge = %d, want %d", got, (workers-1)*iters+iters-1)
	}
	h := r.Histogram("shared.hist").Snapshot()
	if h.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	if h.Min != 0 || h.Max != iters-1 {
		t.Fatalf("histogram min/max = %d/%d", h.Min, h.Max)
	}
}

func TestTraceBufferRingAndJSONL(t *testing.T) {
	tb := NewTraceBuffer(4)
	for i := 0; i < 6; i++ {
		tb.Append(Span{Kind: SpanTask, Name: fmt.Sprintf("s%d", i), Partition: i})
	}
	if tb.Len() != 4 || tb.Total() != 6 {
		t.Fatalf("len=%d total=%d", tb.Len(), tb.Total())
	}
	snap := tb.Snapshot()
	// Oldest two evicted; remaining spans in order s2..s5.
	for i, s := range snap {
		if want := fmt.Sprintf("s%d", i+2); s.Name != want {
			t.Fatalf("snap[%d] = %q, want %q", i, s.Name, want)
		}
	}

	var buf bytes.Buffer
	if err := tb.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if s.Kind != SpanTask {
			t.Fatalf("kind round-trip = %q", s.Kind)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("exported %d lines, want 4", lines)
	}
}

func TestTraceBufferConcurrency(t *testing.T) {
	tb := NewTraceBuffer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tb.Append(Span{Kind: SpanTask, Partition: i})
				if i%64 == 0 {
					tb.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if tb.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", tb.Total(), 8*500)
	}
	if tb.Len() != 64 {
		t.Fatalf("len = %d, want 64", tb.Len())
	}
}
