package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanKind classifies trace spans.
type SpanKind string

const (
	SpanJob     SpanKind = "job"     // one action (collect/count) over an RDD lineage
	SpanStage   SpanKind = "stage"   // the fan-out of all partitions of one RDD
	SpanTask    SpanKind = "task"    // one attempt at one partition
	SpanShuffle SpanKind = "shuffle" // the map side of one shuffle exchange
	SpanQuery   SpanKind = "query"   // one SQL statement end to end
	SpanWAL     SpanKind = "wal"     // a table-store WAL commit, checkpoint or recovery
)

// Span is one structured trace event — the unit of the JSONL event log,
// mirroring the per-task and per-stage records of the Spark event log that
// feed its web UI.
type Span struct {
	Kind        SpanKind `json:"kind"`
	Name        string   `json:"name"`
	Job         int64    `json:"job,omitempty"`
	Partition   int      `json:"partition,omitempty"`
	Attempt     int      `json:"attempt,omitempty"`
	Speculative bool     `json:"speculative,omitempty"`
	Worker      string   `json:"worker,omitempty"` // remote worker id; "" = local
	// Trace is the query/trace id propagated Dapper-style across process
	// boundaries: every span of one distributed query — coordinator- and
	// worker-side — carries the same id. Parent is the id of the
	// coordinator-side dispatch span a remote span executed under; "" for
	// spans that originated in this process.
	Trace    string `json:"trace,omitempty"`
	Parent   string `json:"parent,omitempty"`
	Start    int64  `json:"start_us"`            // microseconds since process-start reference (origin process's clock for merged spans)
	QueuedNS int64  `json:"queued_ns,omitempty"` // time waiting for an executor slot
	DurNS    int64  `json:"dur_ns"`
	Records  int64  `json:"records,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	Err      string `json:"err,omitempty"`
}

// traceEpoch anchors Span.Start so timestamps are monotonic within a
// process without embedding wall-clock times in every span.
var traceEpoch = time.Now()

// Since returns the span timestamp (microseconds since the trace epoch) for
// a start time captured with time.Now().
func Since(start time.Time) int64 { return start.Sub(traceEpoch).Microseconds() }

// TraceBuffer is a fixed-capacity ring of recent spans. Appends are
// mutex-guarded but O(1) with no allocation once the ring is warm, which is
// cheap relative to the per-partition work each span represents (spans are
// per task/stage, never per row).
type TraceBuffer struct {
	mu      sync.Mutex
	buf     []Span
	next    int      // ring cursor
	total   int64    // spans ever appended (>= len(buf) once wrapped)
	dropped *Counter // incremented when the ring overwrites an unexported span
}

// DefaultTraceCapacity bounds the in-memory event log; at ~200 bytes a span
// this caps the buffer near 1 MB.
const DefaultTraceCapacity = 4096

// NewTraceBuffer builds a ring holding up to capacity spans (the default
// when capacity <= 0).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceBuffer{buf: make([]Span, 0, capacity)}
}

// SetDropCounter registers a counter incremented each time Append evicts a
// retained span, making ring truncation observable (`trace.dropped`).
// Nil-safe on both sides.
func (t *TraceBuffer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropped = c
	t.mu.Unlock()
}

// Append records a span, evicting the oldest when full. Nil-safe.
func (t *TraceBuffer) Append(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % len(t.buf)
		t.dropped.Add(1)
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of retained spans. Nil-safe.
func (t *TraceBuffer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total returns the number of spans ever appended, including evicted ones.
// Nil-safe.
func (t *TraceBuffer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans oldest-first. Nil-safe (nil slice).
func (t *TraceBuffer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// ExportJSONL writes the retained spans oldest-first as one JSON object per
// line — the event-log file format. Nil-safe (writes nothing).
func (t *TraceBuffer) ExportJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
