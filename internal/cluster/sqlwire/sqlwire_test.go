package sqlwire

import (
	"testing"

	"repro/internal/types"
)

func TestSessionRoundTrip(t *testing.T) {
	spec := &SessionSpec{
		ID:                "s1",
		Epoch:             3,
		Codegen:           true,
		Vectorized:        true,
		ShufflePartitions: 4,
		Parallelism:       4,
		BackoffBaseNS:     1000,
		BackoffSeed:       42,
		Chaos:             ChaosSpec{Enabled: true, Seed: 7, FailureRate: 0.1, FailedAttempts: 2},
		Tables: []TableSpec{{
			Name:       "rankings",
			Cached:     true,
			Fields:     []FieldSpec{{Name: "pageURL", Type: "STRING"}, {Name: "pageRank", Type: "INT", Nullable: true}},
			Partitions: [][]byte{{1, 2}, {3}},
		}},
	}
	b, err := EncodeSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSession(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "s1" || got.Epoch != 3 || len(got.Tables) != 1 || got.Tables[0].Name != "rankings" ||
		!got.Tables[0].Cached || len(got.Tables[0].Partitions) != 2 ||
		string(got.Tables[0].Partitions[0]) != string([]byte{1, 2}) ||
		!got.Chaos.Enabled || got.Chaos.FailedAttempts != 2 {
		t.Fatalf("round trip mangled spec: %+v", got)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	b, err := EncodeQuery(&QueryTask{SessionID: "s", Epoch: 1, SQL: "SELECT 1", Partition: 2, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeQuery(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.SQL != "SELECT 1" || q.Partition != 2 || q.NumPartitions != 4 {
		t.Fatalf("got %+v", q)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("{"), []byte(`{"id":1}`), []byte(`{"id":"x"} extra`)} {
		if _, err := DecodeSession(b); err == nil {
			t.Fatalf("DecodeSession(%q) accepted garbage", b)
		}
		if _, err := DecodeQuery([]byte(`{"sql":3}`)); err == nil {
			t.Fatal("DecodeQuery accepted type-mismatched payload")
		}
	}
}

func TestTypeNameRoundTrip(t *testing.T) {
	all := []types.DataType{
		types.Null, types.Boolean, types.Int, types.Long, types.Float,
		types.Double, types.String, types.Binary, types.Date, types.Timestamp,
		types.DecimalType{Precision: 10, Scale: 2},
	}
	for _, dt := range all {
		name, ok := TypeName(dt)
		if !ok {
			t.Fatalf("TypeName(%v) not shippable", dt)
		}
		back, err := TypeFromName(name)
		if err != nil {
			t.Fatal(err)
		}
		if back != dt {
			t.Fatalf("%v round-tripped to %v", dt, back)
		}
	}
	if _, ok := TypeName(types.ArrayType{Elem: types.Int}); ok {
		t.Fatal("array type should not be shippable")
	}
	if _, err := TypeFromName("WIBBLE"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestSchemaConversion(t *testing.T) {
	schema := types.NewStruct(
		types.StructField{Name: "a", Type: types.Int, Nullable: true},
		types.StructField{Name: "b", Type: types.String},
	)
	fields, ok := Fields(schema)
	if !ok {
		t.Fatal("schema should be shippable")
	}
	back, err := Schema(fields)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Fields) != 2 || back.Fields[0].Name != "a" || back.Fields[0].Type != types.Int ||
		!back.Fields[0].Nullable || back.Fields[1].Type != types.String {
		t.Fatalf("schema mangled: %+v", back)
	}
	if _, ok := Fields(types.NewStruct(types.StructField{Name: "x", Type: types.ArrayType{Elem: types.Int}})); ok {
		t.Fatal("array column should make schema unshippable")
	}
}
