// Package sqlwire defines the payloads the distributed SQL layer ships
// between coordinator and workers. Go cannot serialize the closures an RDD
// lineage is made of, so distribution works the way the SQL front end
// already does: the coordinator ships the *session* (table schemas and
// rows, engine configuration knobs, fault-injection schedule) once per
// epoch, and then one tiny QueryTask (SQL text + partition number) per
// task. Each worker rebuilds a deterministic, bit-identical context from
// the spec and plans the query itself; the planner being deterministic is
// what makes partition numbers and shuffle ids line up across processes.
//
// Payloads are JSON: they ride inside CRC-checked frames (so integrity is
// handled a layer down), table rows are pre-encoded with the internal/row
// codec into opaque byte blocks (so JSON never touches row values), and
// encoding/json rejects malformed input without panicking, which is the
// decode-hardening contract this package owes its callers.
package sqlwire

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/types"
)

// FieldSpec is one column of a shipped table schema. Type is the SQL type
// name as types.DataType.Name() renders it ("INT", "BIGINT", "DOUBLE",
// "DECIMAL(10,2)", ...).
type FieldSpec struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Nullable bool   `json:"nullable"`
}

// TableSpec ships one catalog table: its schema and its rows as
// internal/row encoded blocks. Uncached tables ship one block (the worker
// re-partitions them exactly like the coordinator did, since both run the
// same deterministic split); cached tables ship one block per cached
// partition, preserving the coordinator's partition boundaries so every
// process scans identical partitions.
type TableSpec struct {
	Name       string      `json:"name"`
	Cached     bool        `json:"cached"`
	Fields     []FieldSpec `json:"fields"`
	Partitions [][]byte    `json:"partitions"`
}

// ChaosSpec forwards the coordinator's deterministic fault-injection
// schedule so workers fail the same task attempts an in-process run would.
type ChaosSpec struct {
	Enabled        bool    `json:"enabled"`
	Seed           uint64  `json:"seed"`
	FailureRate    float64 `json:"failureRate"`
	FailedAttempts int     `json:"failedAttempts"`
}

// SessionSpec is everything a worker needs to rebuild the coordinator's
// SQL context. Epoch increments whenever the catalog contents change; a
// worker holding an older epoch is re-initialized before the next task.
type SessionSpec struct {
	ID    string `json:"id"`
	Epoch uint64 `json:"epoch"`

	// Engine knobs, mirroring sparksql.Config: plans must come out
	// identical on every process or partition numbering diverges.
	Codegen             bool  `json:"codegen"`
	LogicalOptimization bool  `json:"logicalOptimization"`
	SourcePushdown      bool  `json:"sourcePushdown"`
	JoinReorder         bool  `json:"joinReorder"`
	PipelineCollapse    bool  `json:"pipelineCollapse"`
	Vectorized          bool  `json:"vectorized"`
	Fusion              bool  `json:"fusion"`
	BroadcastThreshold  int64 `json:"broadcastThreshold"`
	// TargetPartitionBytes feeds static exchange sizing, so it must match
	// the coordinator's value for plan-hash parity.
	TargetPartitionBytes int64 `json:"targetPartitionBytes,omitempty"`
	ShufflePartitions    int   `json:"shufflePartitions"`
	Parallelism          int   `json:"parallelism"`
	MemoryBudget         int64 `json:"memoryBudget"`

	// Retry shaping, so worker-side internal retries are as deterministic
	// as the coordinator's.
	BackoffBaseNS int64  `json:"backoffBaseNS"`
	BackoffMaxNS  int64  `json:"backoffMaxNS"`
	BackoffSeed   uint64 `json:"backoffSeed"`

	Chaos  ChaosSpec   `json:"chaos"`
	Tables []TableSpec `json:"tables"`
}

// QueryTask asks a worker to execute one partition of one query. The
// worker plans SQL itself; PlanHash is the coordinator's normalized
// physical-plan fingerprint and NumPartitions its partition count, and a
// worker whose own plan disagrees on either must refuse the task
// (fallback) rather than return rows from a different plan — mixing
// partitions of two different plans in one result would be silently
// wrong, while falling back is merely slower.
type QueryTask struct {
	SessionID     string `json:"sessionID"`
	Epoch         uint64 `json:"epoch"`
	SQL           string `json:"sql"`
	Partition     int    `json:"partition"`
	NumPartitions int    `json:"numPartitions"`
	PlanHash      uint64 `json:"planHash"`
	// Decisions is the coordinator's adaptive re-planning decision list:
	// the worker replans SQL statically (adaptation off) and replays these
	// rewrites, so both processes execute the identical adapted plan
	// without the worker re-materializing stages. Empty = static plan.
	Decisions []DecisionSpec `json:"decisions,omitempty"`
	// TraceID propagates the coordinator's query/trace id (Dapper-style):
	// when set, the worker tags every span it emits for this task with it,
	// and returns those spans (plus a bounded counter snapshot) wrapped in
	// a TaskReply instead of raw row blocks. Empty = observability off —
	// the task encodes and the reply flows byte-identically to before this
	// field existed.
	TraceID string `json:"traceID,omitempty"`
	// ParentSpan is the id of the coordinator-side dispatch span this task
	// executes under, so merged worker spans parent correctly.
	ParentSpan string `json:"parentSpan,omitempty"`
}

// DecisionSpec mirrors physical.Decision on the wire: one pure rewrite of
// the statically planned tree, addressed by child-index path.
type DecisionSpec struct {
	Path       []int  `json:"path,omitempty"`
	Kind       string `json:"kind"`
	Parts      int    `json:"parts,omitempty"`
	BuildRight bool   `json:"buildRight,omitempty"`
	Splits     []int  `json:"splits,omitempty"`
	Note       string `json:"note,omitempty"`
}

// UninitializedMarker appears in the retryable error a worker returns for
// a query task naming a session (or epoch) it does not hold — the one
// legal reason after a worker respawn, since a fresh process under an old
// id has empty state. The coordinator-side runtime matches on it to clear
// its init cache so the retry re-ships the session first.
const UninitializedMarker = "uninitialized session"

// EncodeSession marshals a session spec.
func EncodeSession(s *SessionSpec) ([]byte, error) { return json.Marshal(s) }

// DecodeSession unmarshals a session spec, rejecting trailing garbage.
func DecodeSession(b []byte) (*SessionSpec, error) {
	var s SessionSpec
	if err := strictUnmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("sqlwire: session spec: %w", err)
	}
	return &s, nil
}

// EncodeQuery marshals a query task.
func EncodeQuery(q *QueryTask) ([]byte, error) { return json.Marshal(q) }

// DecodeQuery unmarshals a query task, rejecting trailing garbage.
func DecodeQuery(b []byte) (*QueryTask, error) {
	var q QueryTask
	if err := strictUnmarshal(b, &q); err != nil {
		return nil, fmt.Errorf("sqlwire: query task: %w", err)
	}
	return &q, nil
}

// TaskReply is the observability-enabled result of one query task: the row
// block the worker computed, plus the spans its execution emitted (tagged
// with the task's trace id) and a bounded snapshot of its metrics counters,
// piggybacked so the coordinator merges worker-side observability without
// extra round trips. Only sent when the QueryTask carried a TraceID; with
// observability off the worker returns the raw row block, byte-identical
// to the pre-observability wire format.
type TaskReply struct {
	Worker   string          `json:"worker"`
	Rows     []byte          `json:"-"` // framed raw, not JSON — see EncodeTaskReply
	Spans    []metrics.Span  `json:"spans,omitempty"`
	Counters []CounterSample `json:"counters,omitempty"`
}

// CounterSample is one harvested counter: an absolute value, not a delta —
// the coordinator keeps the latest sample per (worker, name), so concurrent
// tasks from one worker never double-count.
type CounterSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// ObsRequest asks a worker for a full observability snapshot — the
// federation pull. Pattern filters metric names (metrics.MatchGlob
// semantics; "" = all); MaxSpans bounds the trace snapshot (0 = none, so
// periodic harvests can skip spans that already piggybacked on replies).
type ObsRequest struct {
	Pattern  string `json:"pattern,omitempty"`
	MaxSpans int    `json:"maxSpans,omitempty"`
}

// ObsReply is a worker's observability snapshot: every counter and gauge in
// its registry (histograms ship their expfmt pseudo-series) plus up to
// MaxSpans recent spans.
type ObsReply struct {
	Worker   string          `json:"worker"`
	Counters []CounterSample `json:"counters,omitempty"`
	Spans    []metrics.Span  `json:"spans,omitempty"`
}

// EncodeTaskReply marshals a task reply as a 4-byte big-endian row-block
// length, the raw row block, then the JSON observability trailer. The row
// block stays raw bytes — running it through JSON would base64-inflate the
// result payload by a third, which is exactly the kind of observability tax
// the ≤5% overhead gate exists to forbid.
func EncodeTaskReply(r *TaskReply) ([]byte, error) {
	meta, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 4+len(r.Rows)+len(meta))
	out = append(out,
		byte(len(r.Rows)>>24), byte(len(r.Rows)>>16), byte(len(r.Rows)>>8), byte(len(r.Rows)))
	out = append(out, r.Rows...)
	return append(out, meta...), nil
}

// DecodeTaskReply is the inverse of EncodeTaskReply, rejecting trailing
// garbage after the JSON trailer.
func DecodeTaskReply(b []byte) (*TaskReply, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("sqlwire: task reply: truncated length prefix")
	}
	n := int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	if n < 0 || len(b)-4 < n {
		return nil, fmt.Errorf("sqlwire: task reply: row block length %d exceeds frame", n)
	}
	var r TaskReply
	if err := strictUnmarshal(b[4+n:], &r); err != nil {
		return nil, fmt.Errorf("sqlwire: task reply: %w", err)
	}
	if n > 0 {
		r.Rows = b[4 : 4+n]
	}
	return &r, nil
}

// EncodeObsRequest marshals an observability fetch request.
func EncodeObsRequest(r *ObsRequest) ([]byte, error) { return json.Marshal(r) }

// DecodeObsRequest unmarshals an observability fetch request.
func DecodeObsRequest(b []byte) (*ObsRequest, error) {
	var r ObsRequest
	if err := strictUnmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("sqlwire: obs request: %w", err)
	}
	return &r, nil
}

// EncodeObsReply marshals an observability snapshot.
func EncodeObsReply(r *ObsReply) ([]byte, error) { return json.Marshal(r) }

// DecodeObsReply unmarshals an observability snapshot.
func DecodeObsReply(b []byte) (*ObsReply, error) {
	var r ObsReply
	if err := strictUnmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("sqlwire: obs reply: %w", err)
	}
	return &r, nil
}

func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after payload")
	}
	return nil
}

// TypeName renders a data type for a FieldSpec, returning false for types
// the wire format cannot ship (arrays, structs, UDTs); a table with any
// unshippable column simply stays coordinator-local.
func TypeName(t types.DataType) (string, bool) {
	switch t {
	case nil:
		return "", false
	case types.Null, types.Boolean, types.Int, types.Long, types.Float,
		types.Double, types.String, types.Binary, types.Date, types.Timestamp:
		return t.Name(), true
	}
	if _, ok := t.(types.DecimalType); ok {
		return t.Name(), true
	}
	return "", false
}

// TypeFromName is the inverse of TypeName.
func TypeFromName(name string) (types.DataType, error) {
	switch name {
	case "NULL":
		return types.Null, nil
	case "BOOLEAN":
		return types.Boolean, nil
	case "INT":
		return types.Int, nil
	case "BIGINT":
		return types.Long, nil
	case "FLOAT":
		return types.Float, nil
	case "DOUBLE":
		return types.Double, nil
	case "STRING":
		return types.String, nil
	case "BINARY":
		return types.Binary, nil
	case "DATE":
		return types.Date, nil
	case "TIMESTAMP":
		return types.Timestamp, nil
	}
	var p, s int
	if n, err := fmt.Sscanf(name, "DECIMAL(%d,%d)", &p, &s); err == nil && n == 2 {
		return types.DecimalType{Precision: p, Scale: s}, nil
	}
	return nil, fmt.Errorf("sqlwire: unsupported type name %q", name)
}

// Schema converts shipped field specs back into a schema.
func Schema(fields []FieldSpec) (types.StructType, error) {
	out := make([]types.StructField, len(fields))
	for i, f := range fields {
		t, err := TypeFromName(f.Type)
		if err != nil {
			return types.StructType{}, err
		}
		out[i] = types.StructField{Name: f.Name, Type: t, Nullable: f.Nullable}
	}
	return types.NewStruct(out...), nil
}

// Fields converts a schema into shippable field specs; ok is false when
// any column's type cannot be shipped.
func Fields(schema types.StructType) ([]FieldSpec, bool) {
	out := make([]FieldSpec, len(schema.Fields))
	for i, f := range schema.Fields {
		name, ok := TypeName(f.Type)
		if !ok {
			return nil, false
		}
		out[i] = FieldSpec{Name: f.Name, Type: name, Nullable: f.Nullable}
	}
	return out, true
}
