package sqlwire

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
)

// TestQueryTaskWireShape pins the observability-off wire format: a task
// without a trace id must encode byte-identically to the pre-observability
// QueryTask — no traceID/parentSpan keys may appear. With a trace id both
// fields ship and round-trip.
func TestQueryTaskWireShape(t *testing.T) {
	task := &QueryTask{
		SessionID:     "s1",
		Epoch:         3,
		SQL:           "SELECT 1",
		Partition:     2,
		NumPartitions: 4,
		PlanHash:      0xBEEF,
	}
	off, err := EncodeQuery(task)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"traceID", "parentSpan"} {
		if bytes.Contains(off, []byte(key)) {
			t.Fatalf("untraced task encoding leaks %q: %s", key, off)
		}
	}

	task.TraceID = "q-1-7"
	task.ParentSpan = "q-1-7/p2"
	on, err := EncodeQuery(task)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeQuery(on)
	if err != nil {
		t.Fatal(err)
	}
	if back.TraceID != "q-1-7" || back.ParentSpan != "q-1-7/p2" {
		t.Fatalf("trace fields mangled in round-trip: %+v", back)
	}
}

func TestTaskReplyRoundTrip(t *testing.T) {
	reply := &TaskReply{
		Worker: "w1",
		Rows:   []byte{1, 2, 3},
		Spans: []metrics.Span{
			{Kind: metrics.SpanTask, Name: "scan", Partition: 2, Trace: "q-1-7", Parent: "q-1-7/p2", Worker: "w1", Records: 10},
		},
		Counters: []CounterSample{{Name: "rdd.tasks.run", Value: 5}},
	}
	b, err := EncodeTaskReply(reply)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTaskReply(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Worker != "w1" || !bytes.Equal(back.Rows, reply.Rows) {
		t.Fatalf("reply mangled: %+v", back)
	}
	if len(back.Spans) != 1 || back.Spans[0].Trace != "q-1-7" || back.Spans[0].Parent != "q-1-7/p2" {
		t.Fatalf("spans mangled: %+v", back.Spans)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 5 {
		t.Fatalf("counters mangled: %+v", back.Counters)
	}
}

func TestObsRequestReplyRoundTrip(t *testing.T) {
	req, err := EncodeObsRequest(&ObsRequest{Pattern: "rdd.*", MaxSpans: 16})
	if err != nil {
		t.Fatal(err)
	}
	gotReq, err := DecodeObsRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if gotReq.Pattern != "rdd.*" || gotReq.MaxSpans != 16 {
		t.Fatalf("request mangled: %+v", gotReq)
	}
	rep, err := EncodeObsReply(&ObsReply{
		Worker:   "w2",
		Counters: []CounterSample{{Name: "rdd.shuffle.bytes", Value: 1024}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gotRep, err := DecodeObsReply(rep)
	if err != nil {
		t.Fatal(err)
	}
	if gotRep.Worker != "w2" || len(gotRep.Counters) != 1 || gotRep.Counters[0].Value != 1024 {
		t.Fatalf("reply mangled: %+v", gotRep)
	}
}
