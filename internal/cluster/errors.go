package cluster

import (
	"errors"
	"fmt"
)

// ErrNoWorkers reports that no healthy (registered, non-blacklisted)
// worker is available; callers degrade to local execution.
var ErrNoWorkers = errors.New("cluster: no workers available")

// ErrClosed reports an operation against a closed coordinator or worker.
var ErrClosed = errors.New("cluster: closed")

// WorkerLostError is the failure of a task whose worker died (connection
// loss, missed heartbeats, or a corrupt frame that forced eviction) while
// the task was in flight. It is retryable: the dispatcher will place the
// retried task on a different worker, and the lineage machinery recomputes
// whatever intermediate state died with the process.
type WorkerLostError struct {
	Worker string
	Reason string
}

func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("cluster: worker %s lost (%s)", e.Worker, e.Reason)
}

// RemoteError is a task failure reported by the worker that executed it.
// Code CodeRetryable means the attempt failed but another (or another
// worker) may succeed; CodeFallback means the worker cannot execute this
// task at all and the caller should run it locally.
type RemoteError struct {
	Worker  string
	Code    byte
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: worker %s: %s", e.Worker, e.Message)
}

// IsFallback reports whether err asks the dispatching side to execute the
// task locally instead (the worker cannot run it: unknown task kind,
// un-plannable query, mismatched plan shape).
func IsFallback(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == CodeFallback
}
