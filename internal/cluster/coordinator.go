package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// CoordinatorConfig tunes membership and placement.
type CoordinatorConfig struct {
	// HeartbeatTimeout evicts a worker whose last heartbeat (or any other
	// frame) is older than this. 0 = 5s.
	HeartbeatTimeout time.Duration
	// TaskTimeout bounds one dispatched task's execution; a worker that
	// holds a task longer is treated as lost (hung process). 0 = 2m.
	TaskTimeout time.Duration
	// BlacklistThreshold is the consecutive-failure count after which a
	// worker stops receiving tasks for BlacklistCooldown. 0 = 3.
	BlacklistThreshold int
	// BlacklistCooldown is how long a blacklisted worker sits out. 0 = 5s.
	BlacklistCooldown time.Duration
	// Registry receives cluster metrics under the "cluster." scope (nil =
	// private registry).
	Registry *metrics.Registry
}

// FrameFault is a chaos-injection decision about one inbound frame.
type FrameFault int

const (
	// FramePass delivers the frame unchanged.
	FramePass FrameFault = iota
	// FrameDrop silently discards the frame (a lossy network).
	FrameDrop
	// FrameCorrupt models a checksum failure (a bit flip in transit, caught
	// by the frame CRC): the frame never reaches the decoder and the
	// connection is treated as compromised — the worker is evicted and its
	// in-flight tasks fail as worker-lost.
	FrameCorrupt
)

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id        string
	blockAddr string
	pid       int64
	conn      net.Conn
	writeMu   sync.Mutex

	mu        sync.Mutex
	lastSeen  time.Time
	inflight  map[uint64]chan taskOutcome
	failures  int       // consecutive task failures (blacklisting input)
	banUntil  time.Time // blacklisted while now < banUntil
	evicted   bool
	evictedAt string // reason, for diagnostics
}

type taskOutcome struct {
	payload []byte
	err     error
}

func (w *workerState) send(frameType byte, payload []byte) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	return WriteFrame(w.conn, frameType, payload)
}

// WorkerInfo is a snapshot row of cluster membership.
type WorkerInfo struct {
	ID        string
	BlockAddr string
	PID       int64
	Inflight  int
	Failures  int
	Banned    bool
}

// Coordinator accepts worker registrations, tracks membership via
// heartbeats, dispatches tasks with blacklisting-aware placement, and
// maintains the shuffle-block location registry. It is the cluster-mode
// DAGScheduler backend: RunTask failures caused by dying workers surface
// as retryable errors that the rdd executor's existing retry machinery
// absorbs.
type Coordinator struct {
	cfg CoordinatorConfig

	ln      net.Listener
	mu      sync.Mutex
	workers map[string]*workerState
	// shuffles maps a shuffle id to the worker ids that advertised its
	// blocks; evicting a worker removes its advertisements.
	shuffles map[string]map[string]bool
	closed   bool
	wg       sync.WaitGroup

	taskSeq   atomic.Uint64
	workerSeq atomic.Int64

	faultMu   sync.Mutex
	faultHook func(workerID string, frameType byte) FrameFault

	// metrics
	mRegistered *metrics.Counter
	mEvicted    *metrics.Counter
	mHeartbeats *metrics.Counter
	mDispatched *metrics.Counter
	mCompleted  *metrics.Counter
	mFailed     *metrics.Counter
	mLost       *metrics.Counter
	mBlacklists *metrics.Counter
	mDropped    *metrics.Counter
	mCorrupted  *metrics.Counter
	mAdvertised *metrics.Counter
	scope       *metrics.Scope
}

// NewCoordinator builds a coordinator; call Start to listen.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.TaskTimeout <= 0 {
		cfg.TaskTimeout = 2 * time.Minute
	}
	if cfg.BlacklistThreshold <= 0 {
		cfg.BlacklistThreshold = 3
	}
	if cfg.BlacklistCooldown <= 0 {
		cfg.BlacklistCooldown = 5 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := reg.Scoped("cluster")
	return &Coordinator{
		cfg:         cfg,
		workers:     make(map[string]*workerState),
		shuffles:    make(map[string]map[string]bool),
		mRegistered: s.Counter("workers.registered"),
		mEvicted:    s.Counter("workers.evicted"),
		mHeartbeats: s.Counter("heartbeats"),
		mDispatched: s.Counter("tasks.dispatched"),
		mCompleted:  s.Counter("tasks.completed"),
		mFailed:     s.Counter("tasks.failed"),
		mLost:       s.Counter("tasks.worker_lost"),
		mBlacklists: s.Counter("workers.blacklisted"),
		mDropped:    s.Counter("frames.dropped"),
		mCorrupted:  s.Counter("frames.corrupt"),
		mAdvertised: s.Counter("shuffle.advertised"),
		scope:       s,
	}
}

// SetFrameFaultHook installs (or clears, with nil) the chaos hook consulted
// for every inbound worker frame.
func (c *Coordinator) SetFrameFaultHook(hook func(workerID string, frameType byte) FrameFault) {
	c.faultMu.Lock()
	c.faultHook = hook
	c.faultMu.Unlock()
}

func (c *Coordinator) frameFault(workerID string, frameType byte) FrameFault {
	c.faultMu.Lock()
	hook := c.faultHook
	c.faultMu.Unlock()
	if hook == nil {
		return FramePass
	}
	return hook(workerID, frameType)
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// worker registrations; it returns the bound address.
func (c *Coordinator) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return nil, ErrClosed
	}
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(2)
	go c.acceptLoop(ln)
	go c.janitor()
	return ln.Addr(), nil
}

// Addr returns the listen address ("" before Start).
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close stops the coordinator: the listener closes, every worker gets a
// goodbye frame, and all in-flight tasks fail with worker-lost errors.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	var ws []*workerState
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, w := range ws {
		w.send(fGoodbye, encodeString("coordinator shutting down"))
		c.evict(w, "coordinator shutdown")
	}
	c.wg.Wait()
	return nil
}

func (c *Coordinator) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

// janitor evicts workers whose last frame is older than the heartbeat
// timeout — the deadline-driven membership the protocol's liveness rests
// on when a peer hangs without closing its connection.
func (c *Coordinator) janitor() {
	defer c.wg.Done()
	interval := c.cfg.HeartbeatTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		var stale []*workerState
		now := time.Now()
		for _, w := range c.workers {
			w.mu.Lock()
			if now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
				stale = append(stale, w)
			}
			w.mu.Unlock()
		}
		c.mu.Unlock()
		for _, w := range stale {
			c.evict(w, "heartbeat timeout")
		}
	}
}

// handleConn serves one worker connection: registration, then the frame
// loop. Any read error, protocol violation or corrupt frame evicts the
// worker — in-flight tasks fail as worker-lost and retry elsewhere.
func (c *Coordinator) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	ft, payload, err := ReadFrame(conn)
	if err != nil || ft != fRegister {
		conn.Close()
		return
	}
	reg, err := decodeRegister(payload)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	id := reg.ID
	if id == "" {
		id = fmt.Sprintf("worker-%d", c.workerSeq.Add(1))
	}
	w := &workerState{
		id:        id,
		blockAddr: reg.BlockAddr,
		pid:       reg.PID,
		conn:      conn,
		lastSeen:  time.Now(),
		inflight:  make(map[uint64]chan taskOutcome),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if old, ok := c.workers[id]; ok {
		// Replacement registration under the same id (a restarted worker):
		// the old incarnation is dead by definition.
		c.mu.Unlock()
		c.evict(old, "replaced by new registration")
		c.mu.Lock()
	}
	c.workers[id] = w
	c.mu.Unlock()
	c.mRegistered.Inc()
	if err := w.send(fRegisterOK, encodeString(id)); err != nil {
		c.evict(w, "registration ack failed")
		return
	}
	c.readLoop(w)
}

func (c *Coordinator) readLoop(w *workerState) {
	for {
		ft, payload, err := ReadFrame(w.conn)
		if err != nil {
			c.evict(w, fmt.Sprintf("connection lost: %v", err))
			return
		}
		switch c.frameFault(w.id, ft) {
		case FrameDrop:
			c.mDropped.Inc()
			continue
		case FrameCorrupt:
			c.mCorrupted.Inc()
			c.evict(w, "corrupt frame")
			return
		}
		w.mu.Lock()
		w.lastSeen = time.Now()
		w.mu.Unlock()
		switch ft {
		case fHeartbeat:
			if _, err := decodeUvarint(payload); err != nil {
				c.evict(w, "corrupt heartbeat")
				return
			}
			c.mHeartbeats.Inc()
		case fTaskResult:
			m, err := decodeTaskResult(payload)
			if err != nil {
				c.evict(w, "corrupt task result")
				return
			}
			c.deliver(w, m.TaskID, taskOutcome{payload: m.Payload})
		case fTaskError:
			m, err := decodeTaskError(payload)
			if err != nil {
				c.evict(w, "corrupt task error")
				return
			}
			c.deliver(w, m.TaskID, taskOutcome{err: &RemoteError{Worker: w.id, Code: m.Code, Message: m.Message}})
		case fAdvertise:
			key, err := decodeString(payload)
			if err != nil {
				c.evict(w, "corrupt advertisement")
				return
			}
			c.mu.Lock()
			set := c.shuffles[key]
			if set == nil {
				set = make(map[string]bool)
				c.shuffles[key] = set
			}
			set[w.id] = true
			c.mu.Unlock()
			c.mAdvertised.Inc()
		case fLocate:
			m, err := decodeLocate(payload)
			if err != nil {
				c.evict(w, "corrupt locate")
				return
			}
			addrs := c.locate(m.Key, w.id)
			if err := w.send(fLocated, encodeLocated(locatedMsg{ReqID: m.ReqID, Addrs: addrs})); err != nil {
				c.evict(w, "locate reply failed")
				return
			}
		case fGoodbye:
			reason, _ := decodeString(payload)
			c.evict(w, "worker said goodbye: "+reason)
			return
		default:
			c.evict(w, fmt.Sprintf("unexpected frame type %d", ft))
			return
		}
	}
}

// locate returns the block addresses of live workers advertising key,
// excluding the asking worker (it would have served itself locally).
func (c *Coordinator) locate(key, askerID string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var addrs []string
	for id := range c.shuffles[key] {
		if id == askerID {
			continue
		}
		if w, ok := c.workers[id]; ok && w.blockAddr != "" {
			addrs = append(addrs, w.blockAddr)
		}
	}
	sort.Strings(addrs)
	return addrs
}

// deliver routes a task outcome to its waiter and updates the worker's
// consecutive-failure count (the blacklisting input).
func (c *Coordinator) deliver(w *workerState, taskID uint64, out taskOutcome) {
	w.mu.Lock()
	ch := w.inflight[taskID]
	delete(w.inflight, taskID)
	if ch != nil {
		if out.err != nil {
			w.failures++
			if w.failures >= c.cfg.BlacklistThreshold {
				w.banUntil = time.Now().Add(c.cfg.BlacklistCooldown)
				w.failures = 0
				c.mBlacklists.Inc()
			}
		} else {
			w.failures = 0
		}
	}
	w.mu.Unlock()
	if ch != nil {
		ch <- out
	}
}

// evict removes a worker: closes its connection, fails every in-flight
// task with a WorkerLostError (retryable — the rdd executor re-runs them
// elsewhere), and drops its shuffle advertisements so reduce-side fetches
// stop being routed to a dead block server.
func (c *Coordinator) evict(w *workerState, reason string) {
	w.mu.Lock()
	if w.evicted {
		w.mu.Unlock()
		return
	}
	w.evicted = true
	w.evictedAt = reason
	pending := w.inflight
	w.inflight = make(map[uint64]chan taskOutcome)
	w.mu.Unlock()

	w.conn.Close()
	c.mu.Lock()
	if cur, ok := c.workers[w.id]; ok && cur == w {
		delete(c.workers, w.id)
	}
	for key, set := range c.shuffles {
		if set[w.id] {
			delete(set, w.id)
			if len(set) == 0 {
				delete(c.shuffles, key)
			}
		}
	}
	c.mu.Unlock()
	c.mEvicted.Inc()
	lost := &WorkerLostError{Worker: w.id, Reason: reason}
	for _, ch := range pending {
		c.mLost.Inc()
		ch <- taskOutcome{err: lost}
	}
}

// NumWorkers returns the live worker count.
func (c *Coordinator) NumWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Workers returns a membership snapshot sorted by id.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	ws := make([]*workerState, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(ws))
	for _, w := range ws {
		w.mu.Lock()
		out = append(out, WorkerInfo{
			ID:        w.id,
			BlockAddr: w.blockAddr,
			PID:       w.pid,
			Inflight:  len(w.inflight),
			Failures:  w.failures,
			Banned:    now.Before(w.banUntil),
		})
		w.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Available reports whether at least one healthy, non-blacklisted worker
// is registered.
func (c *Coordinator) Available() bool {
	_, err := c.pick(0)
	return err == nil
}

// pick chooses a worker for a task: healthy workers sorted by id, with a
// partition-affinity preference (hint modulo the healthy count) so
// repeated queries place the same partition on the same worker and reuse
// its memoized shuffle state; ties and unavailable preferences fall back
// to the least-loaded worker.
func (c *Coordinator) pick(hint int) (*workerState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	now := time.Now()
	healthy := make([]*workerState, 0, len(c.workers))
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		w.mu.Lock()
		ok := !w.evicted && !now.Before(w.banUntil)
		w.mu.Unlock()
		if ok {
			healthy = append(healthy, w)
		}
	}
	if len(healthy) == 0 {
		return nil, ErrNoWorkers
	}
	if hint >= 0 {
		return healthy[hint%len(healthy)], nil
	}
	best := healthy[0]
	bestLoad := best.load()
	for _, w := range healthy[1:] {
		if l := w.load(); l < bestLoad {
			best, bestLoad = w, l
		}
	}
	return best, nil
}

func (w *workerState) load() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.inflight)
}

// RunTask dispatches one task to a placement-chosen worker and waits for
// its outcome. hint ≥ 0 requests partition affinity; pass -1 for
// least-loaded placement. The returned worker id identifies where the
// task ran (or died) for error reporting and trace spans. Worker loss
// mid-task returns a *WorkerLostError; handler failures return a
// *RemoteError; no workers returns ErrNoWorkers.
func (c *Coordinator) RunTask(ctx context.Context, kind string, hint int, payload []byte) ([]byte, string, error) {
	w, err := c.pick(hint)
	if err != nil {
		return nil, "", err
	}
	res, err := c.runOn(ctx, w, kind, payload)
	return res, w.id, err
}

// Pick returns the id of the worker the coordinator would place a task
// with the given affinity hint on (hint < 0 = least-loaded). Callers that
// must run setup on a worker before dispatching to it (session init) pick
// first, prepare, then RunOnWorker.
func (c *Coordinator) Pick(hint int) (string, error) {
	w, err := c.pick(hint)
	if err != nil {
		return "", err
	}
	return w.id, nil
}

// RunOnWorker dispatches a task to a specific live worker by id — the
// session-sync path uses it to initialize exactly the worker about to
// receive query tasks.
func (c *Coordinator) RunOnWorker(ctx context.Context, workerID, kind string, payload []byte) ([]byte, error) {
	c.mu.Lock()
	w, ok := c.workers[workerID]
	c.mu.Unlock()
	if !ok {
		return nil, &WorkerLostError{Worker: workerID, Reason: "not registered"}
	}
	return c.runOn(ctx, w, kind, payload)
}

func (c *Coordinator) runOn(ctx context.Context, w *workerState, kind string, payload []byte) ([]byte, error) {
	taskID := c.taskSeq.Add(1)
	ch := make(chan taskOutcome, 1)
	w.mu.Lock()
	if w.evicted {
		w.mu.Unlock()
		return nil, &WorkerLostError{Worker: w.id, Reason: w.evictedAt}
	}
	w.inflight[taskID] = ch
	w.mu.Unlock()

	c.mDispatched.Inc()
	c.scope.Counter("tasks.worker." + w.id).Inc()
	if err := w.send(fTask, encodeTask(taskMsg{TaskID: taskID, Kind: kind, Payload: payload})); err != nil {
		c.evict(w, fmt.Sprintf("task send failed: %v", err))
		// evict delivered (or will deliver) the worker-lost outcome; make
		// sure we don't leave the entry behind if send raced eviction.
		w.mu.Lock()
		delete(w.inflight, taskID)
		w.mu.Unlock()
		return nil, &WorkerLostError{Worker: w.id, Reason: "task send failed"}
	}

	timer := time.NewTimer(c.cfg.TaskTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		if out.err != nil {
			c.mFailed.Inc()
			return nil, out.err
		}
		c.mCompleted.Inc()
		return out.payload, nil
	case <-ctx.Done():
		w.mu.Lock()
		delete(w.inflight, taskID)
		w.mu.Unlock()
		w.send(fCancel, encodeUvarint(taskID)) // best effort
		return nil, ctx.Err()
	case <-timer.C:
		// A worker that sits on a task past the deadline is as good as
		// dead: evict it so its other tasks re-run elsewhere too.
		c.evict(w, "task timeout (hung worker)")
		return nil, &WorkerLostError{Worker: w.id, Reason: "task timeout"}
	}
}
