package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// startCluster spins up a coordinator plus n in-process workers whose
// handlers come from mkHandlers (called once per worker with its index).
// In-process workers over real TCP exercise the full wire path; the
// multi-process harness in internal/experiments covers actual SIGKILL.
func startCluster(t *testing.T, n int, mkHandlers func(i int, w *Worker)) (*Coordinator, []*Worker, context.CancelFunc) {
	t.Helper()
	coord := NewCoordinator(CoordinatorConfig{
		HeartbeatTimeout:   500 * time.Millisecond,
		TaskTimeout:        10 * time.Second,
		BlacklistThreshold: 3,
		BlacklistCooldown:  200 * time.Millisecond,
	})
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("coordinator start: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{
			ID:                fmt.Sprintf("w%d", i),
			CoordinatorAddr:   addr.String(),
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if mkHandlers != nil {
			mkHandlers(i, w)
		}
		workers[i] = w
		go w.Run(ctx)
	}
	waitFor(t, 5*time.Second, func() bool { return coord.NumWorkers() == n })
	t.Cleanup(func() {
		cancel()
		coord.Close()
	})
	return coord, workers, cancel
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", timeout)
}

func echoHandler(i int, w *Worker) {
	w.Register("echo", func(ctx context.Context, task *Task) ([]byte, error) {
		return append([]byte(fmt.Sprintf("w%d:", i)), task.Payload...), nil
	})
}

func TestDispatchAndResult(t *testing.T) {
	coord, _, _ := startCluster(t, 3, echoHandler)
	for p := 0; p < 9; p++ {
		res, worker, err := coord.RunTask(context.Background(), "echo", p, []byte("hi"))
		if err != nil {
			t.Fatalf("task %d: %v", p, err)
		}
		if !strings.HasSuffix(string(res), ":hi") {
			t.Fatalf("task %d: result %q", p, res)
		}
		if worker == "" {
			t.Fatalf("task %d: empty worker id", p)
		}
	}
	if !coord.Available() {
		t.Fatal("cluster should be available")
	}
}

func TestPartitionAffinity(t *testing.T) {
	coord, _, _ := startCluster(t, 3, echoHandler)
	// The same hint must land on the same worker while membership is stable.
	_, first, err := coord.RunTask(context.Background(), "echo", 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, again, err := coord.RunTask(context.Background(), "echo", 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("hint 5 moved from %s to %s with stable membership", first, again)
		}
	}
}

func TestNoWorkers(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{})
	if _, err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if coord.Available() {
		t.Fatal("empty cluster should not be available")
	}
	_, _, err := coord.RunTask(context.Background(), "echo", 0, nil)
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestWorkerLossFailsInflightAndEvicts(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	coord, workers, _ := startCluster(t, 2, func(i int, w *Worker) {
		w.Register("stall", func(ctx context.Context, task *Task) ([]byte, error) {
			<-block
			return nil, nil
		})
	})
	done := make(chan error, 1)
	go func() {
		// Hint 0 with 2 sorted healthy workers ("w0","w1") → w0.
		_, _, err := coord.RunTask(context.Background(), "stall", 0, nil)
		done <- err
	}()
	waitFor(t, 2*time.Second, func() bool {
		for _, w := range coord.Workers() {
			if w.Inflight > 0 {
				return true
			}
		}
		return false
	})
	workers[0].Close() // simulate process death: connection drops
	err := <-done
	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want WorkerLostError", err)
	}
	if lost.Worker != "w0" {
		t.Fatalf("lost worker = %q, want w0", lost.Worker)
	}
	waitFor(t, 2*time.Second, func() bool { return coord.NumWorkers() == 1 })
	once.Do(func() { close(block) })
}

func TestHeartbeatEviction(t *testing.T) {
	coord, workers, _ := startCluster(t, 2, echoHandler)
	// Kill a worker's connection without a goodbye: eviction must come from
	// the read-error path or, with a silent hang, the heartbeat janitor.
	workers[1].Close()
	waitFor(t, 3*time.Second, func() bool { return coord.NumWorkers() == 1 })
	infos := coord.Workers()
	if len(infos) != 1 || infos[0].ID != "w0" {
		t.Fatalf("surviving membership = %+v", infos)
	}
	// Work keeps flowing on the survivor.
	_, worker, err := coord.RunTask(context.Background(), "echo", 0, []byte("x"))
	if err != nil || worker != "w0" {
		t.Fatalf("post-eviction task: worker=%q err=%v", worker, err)
	}
}

func TestBlacklisting(t *testing.T) {
	coord, _, _ := startCluster(t, 2, func(i int, w *Worker) {
		w.Register("flaky", func(ctx context.Context, task *Task) ([]byte, error) {
			if i == 0 {
				return nil, fmt.Errorf("induced failure")
			}
			return []byte("ok"), nil
		})
	})
	// Hammer w0 (hint 0 → "w0" in sorted membership) until it blacklists.
	for i := 0; i < 3; i++ {
		coord.RunTask(context.Background(), "flaky", 0, nil)
	}
	waitFor(t, 2*time.Second, func() bool {
		for _, w := range coord.Workers() {
			if w.ID == "w0" && w.Banned {
				return true
			}
		}
		return false
	})
	// While banned, hint 0 re-routes to the remaining healthy worker.
	res, worker, err := coord.RunTask(context.Background(), "flaky", 0, nil)
	if err != nil || string(res) != "ok" || worker != "w1" {
		t.Fatalf("banned re-route: res=%q worker=%q err=%v", res, worker, err)
	}
	// After the cooldown the worker returns to rotation.
	waitFor(t, 2*time.Second, func() bool {
		for _, w := range coord.Workers() {
			if w.ID == "w0" && !w.Banned {
				return true
			}
		}
		return false
	})
}

func TestFallbackError(t *testing.T) {
	coord, _, _ := startCluster(t, 1, func(i int, w *Worker) {
		w.Register("nope", func(ctx context.Context, task *Task) ([]byte, error) {
			return nil, Fallback(fmt.Errorf("cannot run this"))
		})
	})
	_, _, err := coord.RunTask(context.Background(), "nope", 0, nil)
	if !IsFallback(err) {
		t.Fatalf("err = %v, want fallback", err)
	}
	// Unknown kinds are also fallback, not retryable.
	_, _, err = coord.RunTask(context.Background(), "no-such-kind", 0, nil)
	if !IsFallback(err) {
		t.Fatalf("unknown kind err = %v, want fallback", err)
	}
}

func TestHandlerPanicIsRetryableError(t *testing.T) {
	coord, _, _ := startCluster(t, 1, func(i int, w *Worker) {
		w.Register("boom", func(ctx context.Context, task *Task) ([]byte, error) {
			panic("kaboom")
		})
	})
	_, _, err := coord.RunTask(context.Background(), "boom", 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeRetryable {
		t.Fatalf("err = %v, want retryable RemoteError", err)
	}
	if !strings.Contains(re.Message, "kaboom") {
		t.Fatalf("panic message lost: %q", re.Message)
	}
	// The worker survived the panic.
	if coord.NumWorkers() != 1 {
		t.Fatal("worker died on handler panic")
	}
}

func TestShuffleBlocksAcrossWorkers(t *testing.T) {
	_, workers, _ := startCluster(t, 3, echoHandler)
	ctx := context.Background()
	// w0 publishes a shuffle; w2 fetches a bucket it does not hold locally.
	if err := workers[0].Shuffle().Publish(ctx, "q1/shuffle-0", [][]byte{[]byte("b0"), []byte("b1")}); err != nil {
		t.Fatalf("publish: %v", err)
	}
	var data []byte
	var ok bool
	waitFor(t, 2*time.Second, func() bool {
		var err error
		data, ok, err = workers[2].Shuffle().FetchBucket(ctx, "q1/shuffle-0", 1)
		return err == nil && ok
	})
	if string(data) != "b1" {
		t.Fatalf("fetched %q, want b1", data)
	}
	// A bucket nobody advertises reports not-found, not an error.
	_, ok, err := workers[2].Shuffle().FetchBucket(ctx, "no-such-shuffle", 0)
	if err != nil || ok {
		t.Fatalf("missing shuffle: ok=%v err=%v", ok, err)
	}
}

func TestShuffleFetchAfterOwnerDeath(t *testing.T) {
	coord, workers, _ := startCluster(t, 3, echoHandler)
	ctx := context.Background()
	if err := workers[1].Shuffle().Publish(ctx, "q2/shuffle-0", [][]byte{[]byte("only")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		addrs, err := workers[0].Locate(ctx, "q2/shuffle-0")
		return err == nil && len(addrs) == 1
	})
	workers[1].Close()
	waitFor(t, 2*time.Second, func() bool { return coord.NumWorkers() == 2 })
	// The advertisement died with the worker: fetch reports not-found so
	// the shuffle layer recomputes from lineage instead of hanging.
	_, ok, err := workers[0].Shuffle().FetchBucket(ctx, "q2/shuffle-0", 0)
	if err != nil || ok {
		t.Fatalf("dead owner fetch: ok=%v err=%v", ok, err)
	}
}

func TestFrameFaultDropAndCorrupt(t *testing.T) {
	coord, _, _ := startCluster(t, 2, echoHandler)
	// Drop every heartbeat from w1: the janitor must evict it even though
	// the TCP connection stays open.
	coord.SetFrameFaultHook(func(workerID string, frameType byte) FrameFault {
		if workerID == "w1" && frameType == fHeartbeat {
			return FrameDrop
		}
		return FramePass
	})
	waitFor(t, 3*time.Second, func() bool { return coord.NumWorkers() == 1 })
	coord.SetFrameFaultHook(nil)
	// Corrupt w0's next task result: the decode fails, w0 is evicted, and
	// the in-flight task fails as worker-lost (retryable upstream).
	coord.SetFrameFaultHook(func(workerID string, frameType byte) FrameFault {
		if frameType == fTaskResult {
			return FrameCorrupt
		}
		return FramePass
	})
	_, _, err := coord.RunTask(context.Background(), "echo", 0, []byte("x"))
	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatalf("corrupt-result err = %v, want WorkerLostError", err)
	}
}

func TestWorkerReplacementRegistration(t *testing.T) {
	coord, _, cancel := startCluster(t, 1, echoHandler)
	cancel() // kill the first incarnation's ctx
	waitFor(t, 2*time.Second, func() bool { return coord.NumWorkers() == 0 })
	// A restarted worker reuses its id; the coordinator replaces the entry.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	w := NewWorker(WorkerConfig{ID: "w0", CoordinatorAddr: coord.Addr(), HeartbeatInterval: 100 * time.Millisecond})
	echoHandler(0, w)
	go w.Run(ctx2)
	waitFor(t, 2*time.Second, func() bool { return coord.NumWorkers() == 1 })
	res, worker, err := coord.RunTask(context.Background(), "echo", 0, []byte("back"))
	if err != nil || worker != "w0" || !strings.HasSuffix(string(res), ":back") {
		t.Fatalf("replacement: res=%q worker=%q err=%v", res, worker, err)
	}
}

func TestBlockStoreEviction(t *testing.T) {
	s := NewBlockStore(100)
	s.Put("a/0", make([]byte, 60))
	s.Put("b/0", make([]byte, 60)) // pushes past 100: group a evicts
	if _, ok := s.Get("a/0"); ok {
		t.Fatal("group a should have been evicted")
	}
	if _, ok := s.Get("b/0"); !ok {
		t.Fatal("group b (being written) must survive")
	}
	if s.Bytes() != 60 {
		t.Fatalf("bytes = %d, want 60", s.Bytes())
	}
	// Overwrites replace, not accumulate.
	s.Put("b/0", make([]byte, 10))
	if s.Bytes() != 10 {
		t.Fatalf("bytes after overwrite = %d, want 10", s.Bytes())
	}
	s.DropGroup("b")
	if s.NumBlocks() != 0 || s.Bytes() != 0 {
		t.Fatalf("after drop: blocks=%d bytes=%d", s.NumBlocks(), s.Bytes())
	}
}

func TestCoordinatorCloseFailsTasks(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	coord, _, _ := startCluster(t, 1, func(i int, w *Worker) {
		w.Register("stall", func(ctx context.Context, task *Task) ([]byte, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		})
	})
	done := make(chan error, 1)
	go func() {
		_, _, err := coord.RunTask(context.Background(), "stall", 0, nil)
		done <- err
	}()
	waitFor(t, 2*time.Second, func() bool {
		ws := coord.Workers()
		return len(ws) == 1 && ws[0].Inflight > 0
	})
	coord.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("task survived coordinator close")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("task hung across coordinator close")
	}
}
