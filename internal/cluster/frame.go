// Package cluster promotes the in-process mini-Spark to a real
// coordinator/worker cluster: worker processes register with a coordinator
// over TCP, exchange heartbeats, execute dispatched tasks, and serve
// shuffle blocks to their peers. Failure is a first-class input — a worker
// that dies (connection loss or missed heartbeats) is evicted and every
// task in flight on it fails with a *WorkerLostError, which the rdd
// executor's retry/backoff/lineage-recompute machinery absorbs exactly as
// it absorbs an in-process task failure. With no workers registered the
// engine degrades to local execution.
//
// The wire protocol is length-prefixed binary framing (the same shape the
// row codec's spill blocks use): every frame is
//
//	[1 byte type][4 bytes big-endian payload length][4 bytes CRC32][payload]
//
// The CRC covers the payload, so a corrupt frame (bit flips in transit, a
// half-written block from a dying worker) is detected and rejected at the
// framing layer rather than decoded into garbage.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types. Worker→coordinator and coordinator→worker frames share one
// numbering; peers' block servers speak the fBlockGet/fBlockData subset.
const (
	fRegister   byte = 1  // worker → coordinator: {id, blockAddr, pid}
	fRegisterOK byte = 2  // coordinator → worker: {assigned id}
	fHeartbeat  byte = 3  // worker → coordinator: {seq}
	fTask       byte = 4  // coordinator → worker: {taskID, kind, payload}
	fTaskResult byte = 5  // worker → coordinator: {taskID, payload}
	fTaskError  byte = 6  // worker → coordinator: {taskID, code, message}
	fCancel     byte = 7  // coordinator → worker: {taskID}
	fAdvertise  byte = 8  // worker → coordinator: {shuffleID}
	fLocate     byte = 9  // worker → coordinator: {reqID, shuffleID}
	fLocated    byte = 10 // coordinator → worker: {reqID, blockAddrs}
	fBlockGet   byte = 11 // peer → worker block server: {key}
	fBlockData  byte = 12 // worker block server → peer: {ok, data|message}
	fGoodbye    byte = 13 // either direction: {reason}, then close
)

// Exported frame-type identifiers so chaos harnesses outside this package
// can target specific traffic classes with SetFrameFaultHook.
const (
	FrameTypeHeartbeat  = fHeartbeat
	FrameTypeTaskResult = fTaskResult
)

// MaxFrameSize bounds a single frame's payload so a corrupt or hostile
// length prefix cannot make the receiver allocate unboundedly.
const MaxFrameSize = 64 << 20

const frameHeaderSize = 9

// ErrFrameTooLarge reports a frame whose declared payload exceeds
// MaxFrameSize.
var ErrFrameTooLarge = errors.New("cluster: frame exceeds size limit")

// ErrFrameCorrupt reports a frame whose payload failed its checksum.
var ErrFrameCorrupt = errors.New("cluster: frame checksum mismatch")

// WriteFrame writes one frame. It performs a single Write call so
// concurrent writers serialized by a mutex never interleave partial
// frames.
func WriteFrame(w io.Writer, frameType byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	buf[0] = frameType
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[5:9], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, validating the length bound and checksum. A
// truncated stream returns an io error; an oversized length returns
// ErrFrameTooLarge before any payload allocation; a checksum mismatch
// returns ErrFrameCorrupt.
func ReadFrame(r io.Reader) (frameType byte, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	sum := binary.BigEndian.Uint32(hdr[5:9])
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, ErrFrameCorrupt
	}
	return hdr[0], payload, nil
}
