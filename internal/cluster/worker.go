package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Handler executes one task kind on a worker. The returned bytes travel
// back to the coordinator as the task result. Returning a *FallbackError
// tells the dispatching side to run the task locally instead; any other
// error is retryable.
type Handler func(ctx context.Context, task *Task) ([]byte, error)

// Task is one unit of dispatched work as seen by a worker handler.
type Task struct {
	ID      uint64
	Kind    string
	Payload []byte
}

// FallbackError wraps a cause that makes a task un-executable on this
// worker (unknown kind, un-plannable query, mismatched plan shape); the
// coordinator side degrades to local execution instead of retrying.
type FallbackError struct{ Cause error }

func (e *FallbackError) Error() string { return e.Cause.Error() }
func (e *FallbackError) Unwrap() error { return e.Cause }

// Fallback marks err as non-retryable-but-recoverable: run locally.
func Fallback(err error) error { return &FallbackError{Cause: err} }

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// ID identifies the worker; "" lets the coordinator assign one.
	ID string
	// CoordinatorAddr is the coordinator's listen address.
	CoordinatorAddr string
	// HeartbeatInterval paces liveness frames. 0 = 1s. Keep it well under
	// the coordinator's HeartbeatTimeout.
	HeartbeatInterval time.Duration
	// MaxConcurrent bounds simultaneously executing handlers. 0 = 4.
	MaxConcurrent int
	// BlockStoreBytes bounds the shuffle block store. 0 = 256 MB.
	BlockStoreBytes int64
}

// Worker is one executor process: it registers with the coordinator,
// heartbeats, runs dispatched tasks through registered handlers, stores
// its shuffle map outputs in a BlockStore, and serves them to peers over
// its own block listener.
type Worker struct {
	cfg      WorkerConfig
	handlers map[string]Handler
	store    *BlockStore

	mu      sync.Mutex
	conn    net.Conn
	writeMu sync.Mutex
	blockLn net.Listener
	id      string
	closed  bool
	running map[uint64]context.CancelFunc
	locates map[uint64]chan []string
	wg      sync.WaitGroup

	reqSeq  atomic.Uint64
	beatSeq atomic.Uint64
}

// NewWorker builds a worker; register handlers, then call Run.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	return &Worker{
		cfg:      cfg,
		handlers: make(map[string]Handler),
		store:    NewBlockStore(cfg.BlockStoreBytes),
		running:  make(map[uint64]context.CancelFunc),
		locates:  make(map[uint64]chan []string),
	}
}

// Register installs the handler for one task kind (before Run).
func (w *Worker) Register(kind string, h Handler) {
	w.handlers[kind] = h
}

// Blocks returns the worker's shuffle block store.
func (w *Worker) Blocks() *BlockStore { return w.store }

// ID returns the coordinator-confirmed worker id ("" before Run).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

func (w *Worker) send(frameType byte, payload []byte) error {
	w.mu.Lock()
	conn := w.conn
	w.mu.Unlock()
	if conn == nil {
		return ErrClosed
	}
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	return WriteFrame(conn, frameType, payload)
}

// Run connects to the coordinator, registers, and serves until ctx is
// cancelled or the coordinator connection dies. It blocks; run it in a
// goroutine (or as a process main). Returning nil means a clean shutdown.
func (w *Worker) Run(ctx context.Context) error {
	blockLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("cluster: worker block listener: %w", err)
	}
	defer blockLn.Close()
	go func() {
		for {
			conn, err := blockLn.Accept()
			if err != nil {
				return
			}
			go serveBlocks(conn, w.store)
		}
	}()

	conn, err := net.DialTimeout("tcp", w.cfg.CoordinatorAddr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("cluster: worker dial: %w", err)
	}
	defer conn.Close()

	regPayload := encodeRegister(registerMsg{
		ID:        w.cfg.ID,
		BlockAddr: blockLn.Addr().String(),
		PID:       int64(os.Getpid()),
	})
	if err := WriteFrame(conn, fRegister, regPayload); err != nil {
		return fmt.Errorf("cluster: worker register: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	ft, payload, err := ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("cluster: worker register ack: %w", err)
	}
	if ft != fRegisterOK {
		return fmt.Errorf("cluster: worker register: unexpected frame type %d", ft)
	}
	id, err := decodeString(payload)
	if err != nil {
		return fmt.Errorf("cluster: worker register ack: %w", err)
	}
	conn.SetReadDeadline(time.Time{})

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.conn = conn
	w.blockLn = blockLn
	w.id = id
	w.mu.Unlock()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeats: liveness to the coordinator, and the ctx watchdog that
	// closes the connection (unblocking the read loop) on cancellation.
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				w.send(fGoodbye, encodeString("context cancelled"))
				conn.Close()
				return
			case <-t.C:
				if err := w.send(fHeartbeat, encodeUvarint(w.beatSeq.Add(1))); err != nil {
					return
				}
			}
		}
	}()

	sem := make(chan struct{}, w.cfg.MaxConcurrent)
	readErr := w.readLoop(runCtx, conn, sem)
	cancel()
	w.wg.Wait()
	if ctx.Err() != nil {
		return nil
	}
	return readErr
}

func (w *Worker) readLoop(ctx context.Context, conn net.Conn, sem chan struct{}) error {
	for {
		ft, payload, err := ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("cluster: worker connection lost: %w", err)
		}
		switch ft {
		case fTask:
			m, err := decodeTask(payload)
			if err != nil {
				return fmt.Errorf("cluster: worker: corrupt task frame: %w", err)
			}
			taskCtx, cancel := context.WithCancel(ctx)
			w.mu.Lock()
			w.running[m.TaskID] = cancel
			w.mu.Unlock()
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				defer func() {
					cancel()
					w.mu.Lock()
					delete(w.running, m.TaskID)
					w.mu.Unlock()
				}()
				sem <- struct{}{}
				defer func() { <-sem }()
				w.execute(taskCtx, m)
			}()
		case fCancel:
			taskID, err := decodeUvarint(payload)
			if err != nil {
				return fmt.Errorf("cluster: worker: corrupt cancel frame: %w", err)
			}
			w.mu.Lock()
			cancel := w.running[taskID]
			w.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		case fLocated:
			m, err := decodeLocated(payload)
			if err != nil {
				return fmt.Errorf("cluster: worker: corrupt located frame: %w", err)
			}
			w.mu.Lock()
			ch := w.locates[m.ReqID]
			delete(w.locates, m.ReqID)
			w.mu.Unlock()
			if ch != nil {
				ch <- m.Addrs
			}
		case fGoodbye:
			return nil
		default:
			return fmt.Errorf("cluster: worker: unexpected frame type %d", ft)
		}
	}
}

// execute runs one task through its handler, converting panics and errors
// into task-error frames. A panicking handler must not kill the worker:
// the panic becomes a retryable remote error, mirroring the in-process
// executor's recover behavior.
func (w *Worker) execute(ctx context.Context, m taskMsg) {
	var result []byte
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("task panic: %v", r)
			}
		}()
		h, ok := w.handlers[m.Kind]
		if !ok {
			err = Fallback(fmt.Errorf("unknown task kind %q", m.Kind))
			return
		}
		result, err = h(ctx, &Task{ID: m.TaskID, Kind: m.Kind, Payload: m.Payload})
	}()
	if ctx.Err() != nil && err != nil {
		// Cancelled (coordinator gave up or shutdown): no one is waiting.
		return
	}
	if err != nil {
		code := CodeRetryable
		var fe *FallbackError
		if errors.As(err, &fe) {
			code = CodeFallback
		}
		w.send(fTaskError, encodeTaskError(taskErrorMsg{TaskID: m.TaskID, Code: code, Message: err.Error()}))
		return
	}
	w.send(fTaskResult, encodeTaskResult(taskResultMsg{TaskID: m.TaskID, Payload: result}))
}

// Advertise tells the coordinator this worker's block store holds blocks
// under key (a shuffle id); peers' Locate calls will then return this
// worker's block address.
func (w *Worker) Advertise(key string) error {
	return w.send(fAdvertise, encodeString(key))
}

// Locate asks the coordinator which peer block servers hold key. The
// returned addresses exclude this worker. An empty slice means no live
// peer advertises the key.
func (w *Worker) Locate(ctx context.Context, key string) ([]string, error) {
	reqID := w.reqSeq.Add(1)
	ch := make(chan []string, 1)
	w.mu.Lock()
	w.locates[reqID] = ch
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.locates, reqID)
		w.mu.Unlock()
	}()
	if err := w.send(fLocate, encodeLocate(locateMsg{ReqID: reqID, Key: key})); err != nil {
		return nil, err
	}
	timer := time.NewTimer(5 * time.Second)
	defer timer.Stop()
	select {
	case addrs := <-ch:
		return addrs, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
		return nil, fmt.Errorf("cluster: locate %q: timeout", key)
	}
}

// Close shuts the worker down (also triggered by cancelling Run's ctx).
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conn := w.conn
	ln := w.blockLn
	w.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if ln != nil {
		ln.Close()
	}
	return nil
}

// ShuffleService adapts a worker's block store + peer fetch path to the
// rdd layer's shuffle hooks: map tasks Publish their encoded buckets,
// reduce tasks FetchBucket from whichever worker produced them. A failed
// fetch (dead peer, evicted block) reports not-found, and the shuffle
// layer falls back to map-side recompute — worker loss costs recompute
// time, never correctness.
type ShuffleService struct {
	w *Worker
}

// Shuffle returns the worker's shuffle service.
func (w *Worker) Shuffle() *ShuffleService { return &ShuffleService{w: w} }

// Publish stores the encoded buckets of one shuffle's map output locally
// and advertises the shuffle to the coordinator.
func (s *ShuffleService) Publish(ctx context.Context, shuffleID string, buckets [][]byte) error {
	for i, b := range buckets {
		s.w.store.Put(fmt.Sprintf("%s/%d", shuffleID, i), b)
	}
	return s.w.Advertise(shuffleID)
}

// FetchBucket retrieves one bucket of a shuffle: local store first, then
// every advertised peer. ok=false (with nil error) means the bucket is
// nowhere to be found and the caller should recompute it from lineage.
func (s *ShuffleService) FetchBucket(ctx context.Context, shuffleID string, bucket int) ([]byte, bool, error) {
	key := fmt.Sprintf("%s/%d", shuffleID, bucket)
	if b, ok := s.w.store.Get(key); ok {
		return b, true, nil
	}
	addrs, err := s.w.Locate(ctx, shuffleID)
	if err != nil {
		return nil, false, err
	}
	for _, addr := range addrs {
		if b, err := FetchBlock(addr, key, 5*time.Second); err == nil {
			return b, true, nil
		}
	}
	return nil, false, nil
}
