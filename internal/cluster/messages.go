package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Message payload encoding: a tiny cursor codec over uvarint-prefixed
// fields, hardened the same way the row codec is — every length is checked
// against the remaining bytes before allocation, so truncated or bit-flipped
// payloads (those that slip past the frame CRC in tests that bypass it)
// return errors instead of panicking or over-allocating.

type enc struct{ b []byte }

func (e *enc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(p []byte) {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
}
func (e *enc) strs(ss []string) {
	e.u64(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

type dec struct {
	b   []byte
	off int
}

func (d *dec) u64() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("cluster: decode: bad uvarint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) i64() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("cluster: decode: bad varint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *dec) take(n uint64) ([]byte, error) {
	if n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("cluster: decode: %d bytes claimed, %d remain", n, len(d.b)-d.off)
	}
	s := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return s, nil
}

func (d *dec) str() (string, error) {
	n, err := d.u64()
	if err != nil {
		return "", err
	}
	s, err := d.take(n)
	return string(s), err
}

func (d *dec) bytes() ([]byte, error) {
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	s, err := d.take(n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), s...), nil
}

func (d *dec) strs() ([]string, error) {
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	// Each string costs at least one length byte.
	if n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("cluster: decode: %d strings claimed, %d bytes remain", n, len(d.b)-d.off)
	}
	out := make([]string, n)
	for i := range out {
		var err error
		if out[i], err = d.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *dec) done() error {
	if d.off != len(d.b) {
		return fmt.Errorf("cluster: decode: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// --- registration ---

type registerMsg struct {
	ID        string
	BlockAddr string
	PID       int64
}

func encodeRegister(m registerMsg) []byte {
	var e enc
	e.str(m.ID)
	e.str(m.BlockAddr)
	e.i64(m.PID)
	return e.b
}

func decodeRegister(b []byte) (m registerMsg, err error) {
	d := &dec{b: b}
	if m.ID, err = d.str(); err != nil {
		return m, err
	}
	if m.BlockAddr, err = d.str(); err != nil {
		return m, err
	}
	if m.PID, err = d.i64(); err != nil {
		return m, err
	}
	return m, d.done()
}

// --- tasks ---

type taskMsg struct {
	TaskID  uint64
	Kind    string
	Payload []byte
}

func encodeTask(m taskMsg) []byte {
	var e enc
	e.u64(m.TaskID)
	e.str(m.Kind)
	e.bytes(m.Payload)
	return e.b
}

func decodeTask(b []byte) (m taskMsg, err error) {
	d := &dec{b: b}
	if m.TaskID, err = d.u64(); err != nil {
		return m, err
	}
	if m.Kind, err = d.str(); err != nil {
		return m, err
	}
	if m.Payload, err = d.bytes(); err != nil {
		return m, err
	}
	return m, d.done()
}

type taskResultMsg struct {
	TaskID  uint64
	Payload []byte
}

func encodeTaskResult(m taskResultMsg) []byte {
	var e enc
	e.u64(m.TaskID)
	e.bytes(m.Payload)
	return e.b
}

func decodeTaskResult(b []byte) (m taskResultMsg, err error) {
	d := &dec{b: b}
	if m.TaskID, err = d.u64(); err != nil {
		return m, err
	}
	if m.Payload, err = d.bytes(); err != nil {
		return m, err
	}
	return m, d.done()
}

// Remote task error codes: retryable errors flow through the rdd retry
// loop; fallback errors mean the worker cannot execute this task at all
// (unknown kind, un-plannable query) and the caller should run it locally.
const (
	CodeRetryable byte = 1
	CodeFallback  byte = 2
)

type taskErrorMsg struct {
	TaskID  uint64
	Code    byte
	Message string
}

func encodeTaskError(m taskErrorMsg) []byte {
	var e enc
	e.u64(m.TaskID)
	e.b = append(e.b, m.Code)
	e.str(m.Message)
	return e.b
}

func decodeTaskError(b []byte) (m taskErrorMsg, err error) {
	d := &dec{b: b}
	if m.TaskID, err = d.u64(); err != nil {
		return m, err
	}
	code, err := d.take(1)
	if err != nil {
		return m, err
	}
	m.Code = code[0]
	if m.Message, err = d.str(); err != nil {
		return m, err
	}
	return m, d.done()
}

// --- shuffle block location ---

type locateMsg struct {
	ReqID uint64
	Key   string
}

func encodeLocate(m locateMsg) []byte {
	var e enc
	e.u64(m.ReqID)
	e.str(m.Key)
	return e.b
}

func decodeLocate(b []byte) (m locateMsg, err error) {
	d := &dec{b: b}
	if m.ReqID, err = d.u64(); err != nil {
		return m, err
	}
	if m.Key, err = d.str(); err != nil {
		return m, err
	}
	return m, d.done()
}

type locatedMsg struct {
	ReqID uint64
	Addrs []string
}

func encodeLocated(m locatedMsg) []byte {
	var e enc
	e.u64(m.ReqID)
	e.strs(m.Addrs)
	return e.b
}

func decodeLocated(b []byte) (m locatedMsg, err error) {
	d := &dec{b: b}
	if m.ReqID, err = d.u64(); err != nil {
		return m, err
	}
	if m.Addrs, err = d.strs(); err != nil {
		return m, err
	}
	return m, d.done()
}

// --- block fetch (peer block servers) ---

type blockDataMsg struct {
	OK      bool
	Data    []byte
	Message string
}

func encodeBlockData(m blockDataMsg) []byte {
	var e enc
	if m.OK {
		e.b = append(e.b, 1)
		e.bytes(m.Data)
	} else {
		e.b = append(e.b, 0)
		e.str(m.Message)
	}
	return e.b
}

func decodeBlockData(b []byte) (m blockDataMsg, err error) {
	d := &dec{b: b}
	ok, err := d.take(1)
	if err != nil {
		return m, err
	}
	m.OK = ok[0] == 1
	if m.OK {
		if m.Data, err = d.bytes(); err != nil {
			return m, err
		}
	} else {
		if m.Message, err = d.str(); err != nil {
			return m, err
		}
	}
	return m, d.done()
}

func encodeString(s string) []byte {
	var e enc
	e.str(s)
	return e.b
}

func decodeString(b []byte) (string, error) {
	d := &dec{b: b}
	s, err := d.str()
	if err != nil {
		return "", err
	}
	return s, d.done()
}

func encodeUvarint(v uint64) []byte {
	var e enc
	e.u64(v)
	return e.b
}

func decodeUvarint(b []byte) (uint64, error) {
	d := &dec{b: b}
	v, err := d.u64()
	if err != nil {
		return 0, err
	}
	return v, d.done()
}
