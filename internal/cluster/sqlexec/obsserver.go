package sqlexec

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"repro/internal/metrics"
)

// ObsHandler returns the worker-process observability mux: /metrics renders
// the merged counter/gauge view across every session this worker holds
// (filterable with ?prefix=, metrics.MatchGlob semantics) and /trace dumps
// the merged span buffers as JSONL. With pprof enabled the standard
// net/http/pprof and expvar handlers mount under /debug/ so a CPU or heap
// profile of any worker is one curl away.
func (e *Executor) ObsHandler(enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, s := range e.mergedSamples(r.URL.Query().Get("prefix")) {
			fmt.Fprintf(w, "%s %d\n", s.Name, s.Value)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, s := range e.sessionList() {
			for _, span := range s.ctx.RDDContext().Trace().Snapshot() {
				if err := enc.Encode(span); err != nil {
					return
				}
			}
		}
	})
	if enablePprof {
		metrics.RegisterDebugHandlers(mux)
	}
	return mux
}

// ListenAndServeObs serves the observability endpoints on addr in a
// background goroutine, returning the listener (close it to stop).
func (e *Executor) ListenAndServeObs(addr string, enablePprof bool) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: e.ObsHandler(enablePprof)}
	go srv.Serve(ln)
	return ln, nil
}
