// Package sqlexec is the worker-process side of distributed SQL: it
// registers the "sql.init" and "sql.partition" task handlers on a cluster
// worker. Init rebuilds the coordinator's SQL context from a shipped
// sqlwire.SessionSpec (tables, config knobs, chaos schedule); partition
// plans the task's SQL text locally — the planner is deterministic, so
// every process derives the same physical plan, partition numbering and
// shuffle ids — and computes exactly one partition of the result, serving
// shuffle buckets to and fetching them from peer workers along the way.
package sqlexec

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	sparksql "repro"
	"repro/internal/cluster"
	"repro/internal/cluster/sqlwire"
	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
)

// builtQuery caches one planned query's result RDD. Partitions of the
// same query reuse it, which is what makes worker-local shuffle state
// (memoized map sides, published buckets) shared across that query's
// tasks instead of rebuilt per partition.
type builtQuery struct {
	rdd      *rdd.RDD[row.Row]
	numPart  int
	planHash uint64
}

type session struct {
	epoch uint64
	ctx   *sparksql.Context
	mu    sync.Mutex // serializes query planning (shuffle-scope setup)
	built map[string]*builtQuery
}

// Executor holds the sessions a worker has been initialized with and
// serves query-partition tasks against them.
type Executor struct {
	mu       sync.Mutex
	sessions map[string]*session
}

// NewExecutor builds an empty executor.
func NewExecutor() *Executor {
	return &Executor{sessions: make(map[string]*session)}
}

// Register installs the SQL task handlers on a worker.
func (e *Executor) Register(w *cluster.Worker) {
	w.Register("sql.init", func(ctx context.Context, t *cluster.Task) ([]byte, error) {
		return e.handleInit(w, t.Payload)
	})
	w.Register("sql.partition", func(ctx context.Context, t *cluster.Task) ([]byte, error) {
		return e.handlePartition(ctx, w, t.Payload)
	})
	w.Register("obs.fetch", func(ctx context.Context, t *cluster.Task) ([]byte, error) {
		return e.handleObsFetch(w, t.Payload)
	})
}

// handleInit (re)builds the session named by the spec. Init failures are
// fallback errors: a worker that cannot hold the session should not be
// retried against — the coordinator computes locally instead.
func (e *Executor) handleInit(w *cluster.Worker, payload []byte) ([]byte, error) {
	spec, err := sqlwire.DecodeSession(payload)
	if err != nil {
		return nil, cluster.Fallback(err)
	}
	e.mu.Lock()
	if s := e.sessions[spec.ID]; s != nil && s.epoch == spec.Epoch {
		e.mu.Unlock()
		return nil, nil // already at this epoch
	}
	e.mu.Unlock()

	ctx, err := buildContext(w, spec)
	if err != nil {
		return nil, cluster.Fallback(fmt.Errorf("sqlexec: init session %s epoch %d: %w", spec.ID, spec.Epoch, err))
	}
	e.mu.Lock()
	e.sessions[spec.ID] = &session{epoch: spec.Epoch, ctx: ctx, built: make(map[string]*builtQuery)}
	e.mu.Unlock()
	return nil, nil
}

// buildContext materializes a SQL context from a session spec — the same
// constructor path the coordinator used, fed the same inputs.
func buildContext(w *cluster.Worker, spec *sqlwire.SessionSpec) (*sparksql.Context, error) {
	cfg := sparksql.DefaultConfig()
	cfg.Codegen = spec.Codegen
	cfg.LogicalOptimization = spec.LogicalOptimization
	cfg.SourcePushdown = spec.SourcePushdown
	cfg.JoinReorder = spec.JoinReorder
	cfg.PipelineCollapse = spec.PipelineCollapse
	cfg.Vectorized = spec.Vectorized
	cfg.Fusion = spec.Fusion
	if spec.BroadcastThreshold > 0 {
		cfg.BroadcastThreshold = spec.BroadcastThreshold
	}
	if spec.TargetPartitionBytes > 0 {
		cfg.TargetPartitionBytes = spec.TargetPartitionBytes
	}
	cfg.ShufflePartitions = spec.ShufflePartitions
	cfg.Parallelism = spec.Parallelism
	cfg.MemoryBudget = spec.MemoryBudget
	// Workers never adapt: the coordinator materializes stages, takes every
	// adaptive decision once, and ships the decision list in each task —
	// this worker replays the rewrites over its statically planned tree. A
	// worker re-adapting from its own observations could diverge and fail
	// the plan-hash parity check.
	cfg.Adaptive = false
	ctx := sparksql.NewContextWithConfig(cfg)

	rc := ctx.RDDContext()
	if spec.BackoffBaseNS > 0 || spec.BackoffMaxNS > 0 {
		rc.SetBackoff(time.Duration(spec.BackoffBaseNS), time.Duration(spec.BackoffMaxNS))
	}
	rc.SetBackoffSeed(spec.BackoffSeed)
	if spec.Chaos.Enabled {
		// The same deterministic failure schedule the coordinator would run
		// in-process: afflicted task attempts fail here too, and recover
		// through this worker's own retry loop.
		cc := experiments.ChaosConfig{
			Seed:           spec.Chaos.Seed,
			FailureRate:    spec.Chaos.FailureRate,
			FailedAttempts: spec.Chaos.FailedAttempts,
		}
		rc.SetFailureHook(cc.Hook())
	}
	rc.SetShuffleService(w.Shuffle())

	for _, t := range spec.Tables {
		if err := loadTable(ctx, t); err != nil {
			return nil, fmt.Errorf("table %s: %w", t.Name, err)
		}
	}
	return ctx, nil
}

// loadTable registers one shipped table. Uncached tables go through
// CreateDataFrame (the worker's deterministic split of the identical row
// slice reproduces the coordinator's partitioning); cached tables rebuild
// the columnar cache from the shipped per-partition blocks, preserving
// the coordinator's partition boundaries exactly.
func loadTable(ctx *sparksql.Context, t sqlwire.TableSpec) error {
	schema, err := sqlwire.Schema(t.Fields)
	if err != nil {
		return err
	}
	if !t.Cached {
		var rows []row.Row
		for _, blk := range t.Partitions {
			part, err := row.DecodeRows(blk)
			if err != nil {
				return err
			}
			rows = append(rows, part...)
		}
		df, err := ctx.CreateDataFrame(schema, rows)
		if err != nil {
			return err
		}
		df.RegisterTempTable(t.Name)
		return nil
	}
	parts := make([][]row.Row, len(t.Partitions))
	for i, blk := range t.Partitions {
		if parts[i], err = row.DecodeRows(blk); err != nil {
			return err
		}
	}
	table := columnar.BuildTable(schema, parts, columnar.DefaultBatchSize)
	attrs := make([]*expr.AttributeReference, len(schema.Fields))
	for i, f := range schema.Fields {
		attrs[i] = expr.NewAttribute(f.Name, f.Type, f.Nullable)
	}
	ctx.Catalog().RegisterTable(t.Name, &plan.InMemoryRelation{
		Attrs:       attrs,
		Table:       table,
		SizeInBytes: table.SizeBytes(),
		RowCount:    table.RowCount(),
		TableStats:  table.Stats,
	})
	return nil
}

// handlePartition executes one partition of one query. Unknown sessions
// are retryable with the uninitialized marker (the coordinator re-ships
// the session and retries); plan-shape disagreements are fallback errors;
// execution failures are plain retryable errors.
func (e *Executor) handlePartition(jc context.Context, w *cluster.Worker, payload []byte) ([]byte, error) {
	q, err := sqlwire.DecodeQuery(payload)
	if err != nil {
		return nil, cluster.Fallback(err)
	}
	e.mu.Lock()
	s := e.sessions[q.SessionID]
	e.mu.Unlock()
	if s == nil || s.epoch != q.Epoch {
		return nil, fmt.Errorf("sqlexec: %s %s epoch %d", sqlwire.UninitializedMarker, q.SessionID, q.Epoch)
	}
	bq, err := s.query(q.SessionID, q.SQL, q.Decisions)
	if err != nil {
		// Parse/analysis/planning failures are not transient: this worker
		// (and every other) cannot run the query; compute it locally.
		return nil, cluster.Fallback(err)
	}
	if bq.numPart != q.NumPartitions || bq.planHash != q.PlanHash {
		return nil, cluster.Fallback(fmt.Errorf(
			"sqlexec: plan for %q diverges (%d partitions / hash %x here, %d / %x at coordinator)",
			q.SQL, bq.numPart, bq.planHash, q.NumPartitions, q.PlanHash))
	}
	// With a trace id on the task, capture this task's spans in a bounded
	// sink so they ship back with the rows; without one, execute and reply
	// byte-identically to the pre-observability protocol.
	var sink *metrics.TraceBuffer
	if q.TraceID != "" {
		sink = metrics.NewTraceBuffer(taskSpanCap)
		jc = rdd.WithTraceContext(jc, q.TraceID, q.ParentSpan, sink)
	}
	rows, err := bq.rdd.PartitionContext(jc, q.Partition)
	if err != nil {
		return nil, err
	}
	block, err := row.EncodeRows(rows)
	if err != nil || q.TraceID == "" {
		return block, err
	}
	reply := &sqlwire.TaskReply{
		Worker:   w.ID(),
		Rows:     block,
		Spans:    stampWorker(sink.Snapshot(), w.ID()),
		Counters: counterSamples(s.ctx.RDDContext().Metrics(), taskCounterAllowlist),
	}
	return sqlwire.EncodeTaskReply(reply)
}

// taskSpanCap bounds the spans piggybacked on one task reply: a partition's
// own task/stage/shuffle spans are a handful; retries and nested stages fit
// comfortably, and a pathological lineage truncates (observable through the
// worker's trace.dropped) instead of bloating the reply.
const taskSpanCap = 256

// taskCounterAllowlist names the worker counters piggybacked on every
// traced task reply — absolute values the coordinator keeps per-worker,
// last sample wins. Deliberately small: the full registry ships on harvest
// (obs.fetch), not per task.
var taskCounterAllowlist = []string{
	"rdd.tasks.run",
	"rdd.tasks.retries",
	"rdd.shuffle.records",
	"rdd.shuffle.bytes",
	"rdd.cache.recomputes",
	"trace.dropped",
}

// stampWorker fills the worker id into spans that executed locally (empty
// Worker field) so merged traces attribute them correctly.
func stampWorker(spans []metrics.Span, id string) []metrics.Span {
	for i := range spans {
		if spans[i].Worker == "" {
			spans[i].Worker = id
		}
	}
	return spans
}

// counterSamples snapshots the named counters/gauges from a registry. With
// a nil allowlist every counter and gauge ships (harvest mode).
func counterSamples(reg *metrics.Registry, allow []string) []sqlwire.CounterSample {
	var allowed map[string]bool
	if allow != nil {
		allowed = make(map[string]bool, len(allow))
		for _, n := range allow {
			allowed[n] = true
		}
	}
	var out []sqlwire.CounterSample
	for _, m := range reg.Snapshot() {
		if m.Kind == metrics.KindHistogram {
			continue
		}
		if allowed != nil && !allowed[m.Name] {
			continue
		}
		out = append(out, sqlwire.CounterSample{Name: m.Name, Value: m.Value})
	}
	return out
}

// handleObsFetch serves the federation pull: a merged snapshot of every
// session's registry (same-name samples summed across sessions — counters
// in different sessions are disjoint increments of one worker-level total)
// plus up to MaxSpans recent spans.
func (e *Executor) handleObsFetch(w *cluster.Worker, payload []byte) ([]byte, error) {
	req, err := sqlwire.DecodeObsRequest(payload)
	if err != nil {
		return nil, cluster.Fallback(err)
	}
	reply := &sqlwire.ObsReply{Worker: w.ID()}
	reply.Counters = e.mergedSamples(req.Pattern)
	if req.MaxSpans > 0 {
		var spans []metrics.Span
		for _, s := range e.sessionList() {
			spans = append(spans, s.ctx.RDDContext().Trace().Snapshot()...)
		}
		if len(spans) > req.MaxSpans {
			spans = spans[len(spans)-req.MaxSpans:]
		}
		reply.Spans = stampWorker(spans, w.ID())
	}
	return sqlwire.EncodeObsReply(reply)
}

func (e *Executor) sessionList() []*session {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*session, 0, len(e.sessions))
	for _, s := range e.sessions {
		out = append(out, s)
	}
	return out
}

// mergedSamples merges counter/gauge snapshots across all sessions of this
// worker, filtered by pattern, sorted by name.
func (e *Executor) mergedSamples(pattern string) []sqlwire.CounterSample {
	merged := make(map[string]int64)
	for _, s := range e.sessionList() {
		for _, m := range s.ctx.RDDContext().Metrics().Snapshot() {
			if m.Kind == metrics.KindHistogram {
				continue
			}
			if !metrics.MatchGlob(pattern, m.Name) {
				continue
			}
			merged[m.Name] += m.Value
		}
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]sqlwire.CounterSample, len(names))
	for i, n := range names {
		out[i] = sqlwire.CounterSample{Name: n, Value: merged[n]}
	}
	return out
}

// query plans (or returns the cached plan of) one SQL text plus adaptive
// decision list under the session's shuffle scope. The scope string is
// derived from session, epoch, query text and decisions only — every
// worker planning the same adapted query lands on identical shuffle ids,
// so reduce tasks can fetch map output that a peer already published. The
// cache is keyed the same way: the static and adapted builds of one SQL
// text are different plans with different shuffle graphs.
func (s *session) query(sessionID, sql string, decisions []sqlwire.DecisionSpec) (*builtQuery, error) {
	dfp := decisionFingerprint(decisions)
	key := fmt.Sprintf("%s\x00%016x", sql, dfp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if bq, ok := s.built[key]; ok {
		return bq, nil
	}
	df, err := s.ctx.SQL(sql)
	if err != nil {
		return nil, err
	}
	// Shuffle ids are allocated while the RDD graph is built, so the scope
	// must be set for the duration of AdaptedQuery and nothing else;
	// planning is serialized by s.mu.
	rc := s.ctx.RDDContext()
	rc.SetShuffleScope(fmt.Sprintf("%s/e%d/q%016x/d%016x", sessionID, s.epoch, fnv64(sql), dfp))
	r, hash, err := df.AdaptedQuery(core.DecisionsFromSpecs(decisions))
	rc.SetShuffleScope("")
	if err != nil {
		return nil, err
	}
	bq := &builtQuery{rdd: r, numPart: r.NumPartitions(), planHash: hash}
	s.built[key] = bq
	return bq, nil
}

// decisionFingerprint hashes a decision list's wire encoding; zero for the
// static plan (no decisions).
func decisionFingerprint(ds []sqlwire.DecisionSpec) uint64 {
	if len(ds) == 0 {
		return 0
	}
	b, err := json.Marshal(ds)
	if err != nil {
		return 0
	}
	return fnv64(string(b))
}

func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// RunIfWorker turns the current process into a cluster worker when the
// REPRO_WORKER_ADDR environment variable is set, and never returns in
// that case. Test binaries call it from TestMain so the multi-process
// harness can respawn *itself* as workers (the standard re-exec pattern);
// cmd/sqlworker calls it unconditionally via its own flag parsing.
func RunIfWorker() {
	addr := os.Getenv("REPRO_WORKER_ADDR")
	if addr == "" {
		return
	}
	os.Exit(RunWorker(addr, os.Getenv("REPRO_WORKER_ID")))
}

// RunWorker runs one SQL worker process against the coordinator at addr
// until the connection ends, returning a process exit code. When
// REPRO_WORKER_METRICS_ADDR is set the worker also serves its observability
// HTTP endpoints (/metrics, /trace, and — with REPRO_WORKER_PPROF=1 —
// pprof/expvar) on that address.
func RunWorker(addr, id string) int {
	if id == "" {
		id = fmt.Sprintf("w-%d", os.Getpid())
	}
	cfg := cluster.WorkerConfig{ID: id, CoordinatorAddr: addr}
	if ms, err := strconv.Atoi(os.Getenv("REPRO_WORKER_HEARTBEAT_MS")); err == nil && ms > 0 {
		cfg.HeartbeatInterval = time.Duration(ms) * time.Millisecond
	}
	w := cluster.NewWorker(cfg)
	e := NewExecutor()
	e.Register(w)
	if maddr := os.Getenv("REPRO_WORKER_METRICS_ADDR"); maddr != "" {
		ln, err := e.ListenAndServeObs(maddr, os.Getenv("REPRO_WORKER_PPROF") == "1")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqlworker %s: metrics server: %v\n", id, err)
		} else {
			defer ln.Close()
		}
	}
	if err := w.Run(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "sqlworker %s: %v\n", id, err)
		return 1
	}
	return 0
}
