package sqlexec_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	sparksql "repro"
	"repro/internal/cluster"
	"repro/internal/cluster/sqlexec"
	"repro/internal/cluster/sqlwire"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/row"
)

// The in-process end-to-end: a coordinator context plus N workers over
// real TCP, all inside one test binary. Multi-process coverage (SIGKILL,
// respawn) lives in internal/experiments' multiproc harness.

func formatRows(rows []row.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = row.FormatValue(v)
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func loadRankings(t *testing.T, ctx *sparksql.Context, n int64, cached bool) {
	t.Helper()
	rows := make([]row.Row, n)
	for i := int64(0); i < n; i++ {
		rows[i] = datagen.RankingRow(42, i)
	}
	df, err := ctx.CreateDataFrame(datagen.RankingsSchema(), rows)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		if _, err := df.Cache(); err != nil {
			t.Fatal(err)
		}
	}
	df.RegisterTempTable("rankings")
}

func clusterConfig() sparksql.Config {
	cfg := sparksql.DefaultConfig()
	cfg.Parallelism = 4
	cfg.ShufflePartitions = 4
	cfg.Cluster = &sparksql.ClusterOptions{
		HeartbeatTimeout: 500 * time.Millisecond,
		TaskTimeout:      30 * time.Second,
	}
	return cfg
}

func localConfig() sparksql.Config {
	cfg := sparksql.DefaultConfig()
	cfg.Parallelism = 4
	cfg.ShufflePartitions = 4
	return cfg
}

// startWorkers runs n in-process workers against the context's
// coordinator and waits for registration.
func startWorkers(t *testing.T, ctx *sparksql.Context, n int) []*cluster.Worker {
	t.Helper()
	ws := make([]*cluster.Worker, n)
	for i := 0; i < n; i++ {
		w := cluster.NewWorker(cluster.WorkerConfig{
			ID:                fmt.Sprintf("w%d", i),
			CoordinatorAddr:   ctx.ClusterAddr(),
			HeartbeatInterval: 100 * time.Millisecond,
		})
		sqlexec.NewExecutor().Register(w)
		go w.Run(context.Background())
		ws[i] = w
		t.Cleanup(func() { w.Close() })
	}
	deadline := time.Now().Add(5 * time.Second)
	for ctx.Cluster().Coordinator().NumWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers registered", ctx.Cluster().Coordinator().NumWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return ws
}

var queries = []string{
	"SELECT pageURL, pageRank FROM rankings WHERE pageRank > 30",
	"SELECT pageRank, COUNT(*), SUM(avgDuration) FROM rankings GROUP BY pageRank",
	"SELECT COUNT(*) FROM rankings WHERE pageRank > 50",
	"SELECT a.pageURL, a.pageRank, b.avgDuration FROM rankings a JOIN rankings b ON a.pageURL = b.pageURL",
	"SELECT DISTINCT pageRank FROM rankings ORDER BY pageRank",
}

func collect(t *testing.T, ctx *sparksql.Context, q string) []row.Row {
	t.Helper()
	df, err := ctx.SQL(q)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	return rows
}

func TestDistributedMatchesLocal(t *testing.T) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			dist := sparksql.NewContextWithConfig(clusterConfig())
			defer dist.Close()
			loadRankings(t, dist, 600, cached)
			startWorkers(t, dist, 3)

			golden := sparksql.NewContextWithConfig(localConfig())
			loadRankings(t, golden, 600, cached)

			for _, q := range queries {
				want := formatRows(collect(t, golden, q))
				got := formatRows(collect(t, dist, q))
				if got != want {
					t.Fatalf("%q diverged distributed vs local", q)
				}
			}
			// The work must actually have gone remote...
			if n := dist.Metrics().Counter("cluster.tasks.completed").Load(); n == 0 {
				t.Fatal("no task completed remotely")
			}
			// ...and task spans carry worker identity.
			workers := map[string]bool{}
			for _, sp := range dist.Trace().Snapshot() {
				if sp.Kind == metrics.SpanTask && sp.Worker != "" {
					workers[sp.Worker] = true
				}
			}
			if len(workers) < 2 {
				t.Fatalf("task spans name %d workers, want >= 2 (affinity spread): %v", len(workers), workers)
			}
		})
	}
}

func TestZeroWorkersFallsBackLocal(t *testing.T) {
	dist := sparksql.NewContextWithConfig(clusterConfig())
	defer dist.Close()
	loadRankings(t, dist, 300, false)

	golden := sparksql.NewContextWithConfig(localConfig())
	loadRankings(t, golden, 300, false)

	for _, q := range queries[:3] {
		want := formatRows(collect(t, golden, q))
		got := formatRows(collect(t, dist, q))
		if got != want {
			t.Fatalf("%q diverged with zero workers", q)
		}
	}
	if n := dist.Metrics().Counter("cluster.tasks.dispatched").Load(); n != 0 {
		t.Fatalf("%d tasks dispatched with no workers", n)
	}
}

func TestWorkerLossMidStreamRecovers(t *testing.T) {
	dist := sparksql.NewContextWithConfig(clusterConfig())
	defer dist.Close()
	loadRankings(t, dist, 600, false)
	ws := startWorkers(t, dist, 3)

	golden := sparksql.NewContextWithConfig(localConfig())
	loadRankings(t, golden, 600, false)

	q := queries[1]
	want := formatRows(collect(t, golden, q))
	if got := formatRows(collect(t, dist, q)); got != want {
		t.Fatalf("%q diverged before worker loss", q)
	}
	// Kill one worker; its shuffle advertisements and session state die
	// with it. Queries must keep producing identical answers.
	ws[0].Close()
	for _, q := range queries {
		wantQ := formatRows(collect(t, golden, q))
		if got := formatRows(collect(t, dist, q)); got != wantQ {
			t.Fatalf("%q diverged after worker loss", q)
		}
	}
}

func TestCountDistributed(t *testing.T) {
	dist := sparksql.NewContextWithConfig(clusterConfig())
	defer dist.Close()
	loadRankings(t, dist, 500, false)
	startWorkers(t, dist, 2)

	df, err := dist.SQL("SELECT pageURL FROM rankings WHERE pageRank > 10")
	if err != nil {
		t.Fatal(err)
	}
	n, err := df.Count()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != n {
		t.Fatalf("Count = %d but Collect returned %d rows", n, len(rows))
	}
}

func TestExplainAnalyzeShowsCluster(t *testing.T) {
	dist := sparksql.NewContextWithConfig(clusterConfig())
	defer dist.Close()
	loadRankings(t, dist, 200, false)
	startWorkers(t, dist, 2)
	// Run one distributed query so per-worker counters are non-zero.
	collect(t, dist, queries[0])

	df, err := dist.SQL("EXPLAIN ANALYZE " + queries[0])
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, r := range rows {
		fmt.Fprintln(&text, r[0])
	}
	out := text.String()
	if !strings.Contains(out, "== Cluster ==") || !strings.Contains(out, "w0") {
		t.Fatalf("EXPLAIN ANALYZE lacks cluster membership:\n%s", out)
	}
}

func TestChaosScheduleShipsToWorkers(t *testing.T) {
	dist := sparksql.NewContextWithConfig(clusterConfig())
	defer dist.Close()
	loadRankings(t, dist, 400, false)
	dist.Cluster().SetChaos(sqlwire.ChaosSpec{
		Enabled: true, Seed: 0xC4A05, FailureRate: 0.2, FailedAttempts: 2,
	})
	dist.Cluster().SetWorkerBackoff(time.Microsecond, 50*time.Microsecond, 7)
	startWorkers(t, dist, 3)

	golden := sparksql.NewContextWithConfig(localConfig())
	loadRankings(t, golden, 400, false)

	for _, q := range queries {
		want := formatRows(collect(t, golden, q))
		if got := formatRows(collect(t, dist, q)); got != want {
			t.Fatalf("%q diverged under worker-side chaos", q)
		}
	}
	if n := dist.Metrics().Counter("cluster.tasks.completed").Load(); n == 0 {
		t.Fatal("chaos run never completed a remote task")
	}
}
