package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fTask, p); err != nil {
			t.Fatalf("write: %v", err)
		}
		ft, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if ft != fTask {
			t.Fatalf("frame type = %d, want %d", ft, fTask)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, fTask, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:n]))
		if err == nil {
			t.Fatalf("truncated frame at %d bytes decoded without error", n)
		}
	}
}

func TestFrameBitFlips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, fTask, []byte("the quick brown fox")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := frameHeaderSize; i < len(full); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), full...)
			flipped[i] ^= 1 << bit
			_, _, err := ReadFrame(bytes.NewReader(flipped))
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("payload bit flip at byte %d bit %d: err = %v, want ErrFrameCorrupt", i, bit, err)
			}
		}
	}
}

func TestFrameOversizedLength(t *testing.T) {
	hdr := make([]byte, frameHeaderSize)
	hdr[0] = fTask
	binary.BigEndian.PutUint32(hdr[1:5], MaxFrameSize+1)
	_, _, err := ReadFrame(bytes.NewReader(hdr))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// The bound must trip before allocation: a claimed 4GB-ish payload on a
	// 9-byte stream must not OOM.
	binary.BigEndian.PutUint32(hdr[1:5], 0xFFFFFFFF)
	_, _, err = ReadFrame(bytes.NewReader(hdr))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	err := WriteFrame(io.Discard, fTask, make([]byte, MaxFrameSize+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// FuzzReadFrame asserts the frame decoder never panics and never
// over-allocates on arbitrary input.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, fTask, []byte("seed payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{fHeartbeat, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{fTask, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxFrameSize {
			t.Fatalf("decoded payload of %d bytes exceeds MaxFrameSize", len(payload))
		}
		// Round-trip what we decoded; it must read back identically.
		var out bytes.Buffer
		if err := WriteFrame(&out, ft, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		ft2, payload2, err := ReadFrame(&out)
		if err != nil || ft2 != ft || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}

// FuzzDecodeMessages asserts every message decoder errors cleanly (no
// panic, no unbounded allocation) on arbitrary bytes.
func FuzzDecodeMessages(f *testing.F) {
	f.Add(encodeRegister(registerMsg{ID: "w1", BlockAddr: "127.0.0.1:9", PID: 42}))
	f.Add(encodeTask(taskMsg{TaskID: 7, Kind: "sql.partition", Payload: []byte("p")}))
	f.Add(encodeTaskResult(taskResultMsg{TaskID: 7, Payload: []byte("r")}))
	f.Add(encodeTaskError(taskErrorMsg{TaskID: 7, Code: CodeRetryable, Message: "boom"}))
	f.Add(encodeLocate(locateMsg{ReqID: 3, Key: "shuffle/1"}))
	f.Add(encodeLocated(locatedMsg{ReqID: 3, Addrs: []string{"a", "b"}}))
	f.Add(encodeBlockData(blockDataMsg{OK: true, Data: []byte("d")}))
	f.Add(encodeBlockData(blockDataMsg{Message: "missing"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeRegister(data)
		decodeTask(data)
		decodeTaskResult(data)
		decodeTaskError(data)
		decodeLocate(data)
		decodeLocated(data)
		decodeBlockData(data)
		decodeString(data)
		decodeUvarint(data)
	})
}

func TestMessageDecodersRejectTruncation(t *testing.T) {
	full := encodeTask(taskMsg{TaskID: 99, Kind: "sql.partition", Payload: bytes.Repeat([]byte("x"), 64)})
	for n := 0; n < len(full); n++ {
		if _, err := decodeTask(full[:n]); err == nil {
			t.Fatalf("truncated task message at %d bytes decoded without error", n)
		}
	}
	// A length claim far beyond the buffer must error, not allocate.
	var e enc
	e.u64(3)
	e.str("k")
	e.u64(1 << 40)
	if _, err := decodeTask(e.b); err == nil || !strings.Contains(err.Error(), "claimed") {
		t.Fatalf("oversized payload claim: err = %v", err)
	}
}
