package cluster

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// BlockStore is a worker's in-memory shuffle-block storage: map outputs
// are published here under "<shuffleID>/<bucket>" keys and served to peer
// workers over the block server. Groups (one per shuffle) are evicted
// least-recently-used once the store exceeds its byte budget — a stale
// advertisement then fails the peer's fetch, which falls back to lineage
// recompute, so eviction is always safe.
type BlockStore struct {
	mu       sync.Mutex
	blocks   map[string][]byte
	groups   map[string]*blockGroup // prefix → group
	order    []string               // prefixes, LRU order (front = oldest)
	bytes    int64
	maxBytes int64
}

type blockGroup struct {
	keys  []string
	bytes int64
}

// NewBlockStore builds a store bounded at maxBytes (0 = 256 MB default).
func NewBlockStore(maxBytes int64) *BlockStore {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &BlockStore{
		blocks:   make(map[string][]byte),
		groups:   make(map[string]*blockGroup),
		maxBytes: maxBytes,
	}
}

// groupOf returns the group prefix of a key ("<shuffleID>/<bucket>" →
// "<shuffleID>"); keys without a slash form their own group.
func groupOf(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[:i]
	}
	return key
}

// Put stores one block, evicting old groups if needed.
func (s *BlockStore) Put(key string, data []byte) {
	g := groupOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.blocks[key]; ok {
		s.bytes -= int64(len(old))
		if grp := s.groups[g]; grp != nil {
			grp.bytes -= int64(len(old))
		}
	}
	cp := append([]byte(nil), data...)
	s.blocks[key] = cp
	s.bytes += int64(len(cp))
	grp := s.groups[g]
	if grp == nil {
		grp = &blockGroup{}
		s.groups[g] = grp
		s.order = append(s.order, g)
	}
	grp.keys = append(grp.keys, key)
	grp.bytes += int64(len(cp))
	for s.bytes > s.maxBytes && len(s.order) > 1 {
		oldest := s.order[0]
		if oldest == g {
			break // never evict the group being written
		}
		s.dropGroupLocked(oldest)
	}
}

// Get returns a copy of a stored block.
func (s *BlockStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// DropGroup removes every block of one shuffle.
func (s *BlockStore) DropGroup(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropGroupLocked(prefix)
}

func (s *BlockStore) dropGroupLocked(prefix string) {
	grp, ok := s.groups[prefix]
	if !ok {
		return
	}
	for _, k := range grp.keys {
		if b, ok := s.blocks[k]; ok {
			s.bytes -= int64(len(b))
			delete(s.blocks, k)
		}
	}
	delete(s.groups, prefix)
	for i, g := range s.order {
		if g == prefix {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// NumBlocks returns the number of stored blocks.
func (s *BlockStore) NumBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// Bytes returns the stored byte total.
func (s *BlockStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// FetchBlock retrieves one block from a peer worker's block server: one
// short-lived connection, one request/response round trip, CRC-checked by
// the framing layer. The timeout bounds dial + read so a dead peer cannot
// wedge the fetching task.
func FetchBlock(addr, key string, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %q from %s: %w", key, addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteFrame(conn, fBlockGet, encodeString(key)); err != nil {
		return nil, fmt.Errorf("cluster: fetch %q from %s: %w", key, addr, err)
	}
	ft, payload, err := ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %q from %s: %w", key, addr, err)
	}
	if ft != fBlockData {
		return nil, fmt.Errorf("cluster: fetch %q from %s: unexpected frame type %d", key, addr, ft)
	}
	m, err := decodeBlockData(payload)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %q from %s: %w", key, addr, err)
	}
	if !m.OK {
		return nil, fmt.Errorf("cluster: fetch %q from %s: %s", key, addr, m.Message)
	}
	return m.Data, nil
}

// serveBlocks answers fBlockGet requests on one peer connection until it
// closes or errors.
func serveBlocks(conn net.Conn, store *BlockStore) {
	defer conn.Close()
	for {
		ft, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if ft != fBlockGet {
			return
		}
		key, err := decodeString(payload)
		if err != nil {
			return
		}
		var reply blockDataMsg
		if data, ok := store.Get(key); ok {
			reply = blockDataMsg{OK: true, Data: data}
		} else {
			reply = blockDataMsg{Message: fmt.Sprintf("no such block %q", key)}
		}
		if err := WriteFrame(conn, fBlockData, encodeBlockData(reply)); err != nil {
			return
		}
	}
}
