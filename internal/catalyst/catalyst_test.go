package catalyst

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// node is a minimal TreeNode for exercising the framework: an arithmetic
// tree of adds and literals, like the paper's §4.2 examples.
type node struct {
	op   string // "lit", "add", "attr"
	val  int
	name string
	kids []*node
}

func lit(v int) *node             { return &node{op: "lit", val: v} }
func attr(name string) *node      { return &node{op: "attr", name: name} }
func add(l, r *node) *node        { return &node{op: "add", kids: []*node{l, r}} }
func (n *node) Children() []*node { return n.kids }
func (n *node) WithNewChildren(children []*node) *node {
	c := *n
	c.kids = children
	return &c
}
func (n *node) String() string {
	switch n.op {
	case "lit":
		return fmt.Sprint(n.val)
	case "attr":
		return n.name
	default:
		return "(" + n.kids[0].String() + "+" + n.kids[1].String() + ")"
	}
}

// constFold is the paper's Add(Literal(c1), Literal(c2)) => Literal(c1+c2).
func constFold(n *node) (*node, bool) {
	if n.op == "add" && n.kids[0].op == "lit" && n.kids[1].op == "lit" {
		return lit(n.kids[0].val + n.kids[1].val), true
	}
	return nil, false
}

// dropZero is the paper's Add(left, Literal(0)) => left (both sides).
func dropZero(n *node) (*node, bool) {
	if n.op != "add" {
		return nil, false
	}
	if n.kids[1].op == "lit" && n.kids[1].val == 0 {
		return n.kids[0], true
	}
	if n.kids[0].op == "lit" && n.kids[0].val == 0 {
		return n.kids[1], true
	}
	return nil, false
}

func TestTransformUpFoldsPaperExample(t *testing.T) {
	// x+(1+2) from Figure 2.
	tree := add(attr("x"), add(lit(1), lit(2)))
	got := TransformUp[*node](tree, constFold)
	if got.String() != "(x+3)" {
		t.Fatalf("got %s, want (x+3)", got)
	}
}

func TestTransformUpReachesFixedShapeInOnePass(t *testing.T) {
	// (1+2)+(3+4): bottom-up folding collapses everything in one pass.
	tree := add(add(lit(1), lit(2)), add(lit(3), lit(4)))
	got := TransformUp[*node](tree, constFold)
	if got.String() != "10" {
		t.Fatalf("got %s, want 10", got)
	}
}

func TestTransformDownVisitsReplacementChildren(t *testing.T) {
	// Top-down: rewriting a node continues into the REPLACEMENT's
	// children, but (like Scala Catalyst's transformDown) does not
	// re-match the replacement node itself — reaching a fixed point is
	// the rule executor's job.
	tree := add(lit(0), add(lit(0), attr("y")))
	got := TransformDown[*node](tree, dropZero)
	if got.String() != "(0+y)" {
		t.Fatalf("got %s, want (0+y)", got)
	}
	// A second application finishes the job.
	if got = TransformDown[*node](got, dropZero); got.String() != "y" {
		t.Fatalf("got %s, want y", got)
	}
}

func TestTransformSkipsNonMatchingSubtrees(t *testing.T) {
	// Unchanged subtrees are reused (pointer identity), the paper's
	// "automatically skipping over ... subtrees that do not match".
	left := add(attr("a"), attr("b"))
	tree := add(left, add(lit(1), lit(2)))
	got := TransformUp[*node](tree, constFold)
	if got.kids[0] != left {
		t.Error("untouched subtree should be reused, not copied")
	}
}

func TestCollectFindExists(t *testing.T) {
	tree := add(attr("x"), add(lit(1), attr("y")))
	attrs := Collect[*node](tree, func(n *node) bool { return n.op == "attr" })
	if len(attrs) != 2 || attrs[0].name != "x" || attrs[1].name != "y" {
		t.Fatalf("Collect = %v", attrs)
	}
	if n, ok := Find[*node](tree, func(n *node) bool { return n.op == "lit" }); !ok || n.val != 1 {
		t.Fatalf("Find = %v, %v", n, ok)
	}
	if Exists[*node](tree, func(n *node) bool { return n.op == "nope" }) {
		t.Error("Exists on absent predicate")
	}
	count := 0
	Foreach[*node](tree, func(*node) { count++ })
	if count != 5 {
		t.Errorf("Foreach visited %d nodes, want 5", count)
	}
}

func TestRuleExecutorFixedPoint(t *testing.T) {
	// (x+0)+(3+3): needs multiple iterations of the batch — the paper's
	// exact example of fixed-point execution.
	tree := add(add(attr("x"), lit(0)), add(lit(3), lit(3)))
	exec := &RuleExecutor[*node]{
		Batches: []Batch[*node]{{
			Name: "fold",
			Rules: []Rule[*node]{
				{Name: "constFold", Apply: func(n *node) *node { return TransformUp[*node](n, constFold) }},
				{Name: "dropZero", Apply: func(n *node) *node { return TransformUp[*node](n, dropZero) }},
			},
		}},
	}
	got, err := exec.Execute(tree)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "(x+6)" {
		t.Fatalf("got %s, want (x+6)", got)
	}
}

func TestRuleExecutorOnceBatch(t *testing.T) {
	// A Once batch applies a single time even if another application
	// would change the tree again.
	wrap := Rule[*node]{Name: "wrap", Apply: func(n *node) *node { return add(n, lit(0)) }}
	exec := &RuleExecutor[*node]{
		Batches: []Batch[*node]{{Name: "once", Once: true, Rules: []Rule[*node]{wrap}}},
	}
	got, err := exec.Execute(lit(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "(1+0)" {
		t.Fatalf("got %s", got)
	}
}

func TestRuleExecutorMaxIterations(t *testing.T) {
	// A rule that never converges triggers the OnMaxIterations hook.
	grow := Rule[*node]{Name: "grow", Apply: func(n *node) *node { return add(n, lit(1)) }}
	hit := false
	exec := &RuleExecutor[*node]{
		Batches:         []Batch[*node]{{Name: "diverge", MaxIterations: 5, Rules: []Rule[*node]{grow}}},
		OnMaxIterations: func(batch string, iters int) { hit = true },
	}
	if _, err := exec.Execute(lit(0)); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("expected OnMaxIterations")
	}
}

func TestRuleExecutorTraceAndCheck(t *testing.T) {
	var traced []string
	exec := &RuleExecutor[*node]{
		Batches: []Batch[*node]{{
			Name:  "fold",
			Rules: []Rule[*node]{{Name: "constFold", Apply: func(n *node) *node { return TransformUp[*node](n, constFold) }}},
		}},
		Trace: func(batch, rule string, before, after *node) {
			traced = append(traced, fmt.Sprintf("%s/%s: %s -> %s", batch, rule, before, after))
		},
	}
	if _, err := exec.Execute(add(lit(1), lit(2))); err != nil {
		t.Fatal(err)
	}
	if len(traced) == 0 || !strings.Contains(traced[0], "constFold") {
		t.Errorf("trace = %v", traced)
	}

	// A failing sanity check surfaces as an error (the paper's per-batch
	// sanity checks).
	failing := &RuleExecutor[*node]{
		Batches: []Batch[*node]{{Name: "noop", Once: true, Rules: []Rule[*node]{{Name: "id", Apply: func(n *node) *node { return n }}}}},
		Check:   func(*node) error { return errors.New("boom") },
	}
	if _, err := failing.Execute(lit(1)); err == nil {
		t.Error("expected check error")
	}
}
