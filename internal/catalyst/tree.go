// Package catalyst implements the core of the Catalyst optimizer framework
// (paper §4.1–4.2): a general library for representing immutable trees and
// applying rules to manipulate them. Expression trees, logical plans and
// physical plans all instantiate this framework.
//
// Where Scala Catalyst rules use pattern matching with partial functions,
// Go rules are functions containing type switches; the Transform helpers
// provide the same "applies recursively to all nodes, skipping subtrees
// that do not match" behaviour, so a rule only reasons about the shapes it
// rewrites.
package catalyst

// TreeNode is the interface every Catalyst tree node satisfies. The type
// parameter T is the node family (e.g. expr.Expression, plan.LogicalPlan):
// Go's substitute for Scala's F-bounded TreeNode[BaseType <: TreeNode[...]].
//
// Nodes are immutable: WithNewChildren returns a rebuilt copy. All
// implementations must be pointer types so that node identity comparisons
// used by the transform machinery are cheap and meaningful.
type TreeNode[T any] interface {
	// Children returns the node's direct children in order.
	Children() []T
	// WithNewChildren returns a copy of the node with the given children.
	// len(children) must equal len(Children()).
	WithNewChildren(children []T) T
	// String renders the whole subtree; the rule executor uses it to
	// detect the fixed point of a rule batch.
	String() string
}

// PartialFunc is a rule body: it returns the replacement node and true when
// it matches, or the zero value and false to leave the node unchanged —
// Go's rendering of the Scala partial function passed to transform.
type PartialFunc[T any] func(T) (T, bool)

// TransformUp applies f to every node of the tree, children first (the
// default post-order traversal of Catalyst's transform method). Subtrees
// that f does not match are reused as-is.
func TransformUp[T TreeNode[T]](node T, f PartialFunc[T]) T {
	node = mapChildren(node, func(c T) T { return TransformUp(c, f) })
	if replaced, ok := f(node); ok {
		return replaced
	}
	return node
}

// TransformDown applies f to every node of the tree, parents first
// (pre-order). When f rewrites a node, the traversal continues into the
// replacement's children.
func TransformDown[T TreeNode[T]](node T, f PartialFunc[T]) T {
	if replaced, ok := f(node); ok {
		node = replaced
	}
	return mapChildren(node, func(c T) T { return TransformDown(c, f) })
}

// mapChildren rebuilds node with g applied to each child, reusing the node
// when no child changed.
func mapChildren[T TreeNode[T]](node T, g func(T) T) T {
	children := node.Children()
	if len(children) == 0 {
		return node
	}
	newChildren := make([]T, len(children))
	changed := false
	for i, c := range children {
		nc := g(c)
		newChildren[i] = nc
		if any(nc) != any(c) {
			changed = true
		}
	}
	if !changed {
		return node
	}
	return node.WithNewChildren(newChildren)
}

// Foreach runs visit on every node of the tree, parents first.
func Foreach[T TreeNode[T]](node T, visit func(T)) {
	visit(node)
	for _, c := range node.Children() {
		Foreach(c, visit)
	}
}

// Collect gathers the nodes for which pred returns true, in pre-order.
func Collect[T TreeNode[T]](node T, pred func(T) bool) []T {
	var out []T
	Foreach(node, func(n T) {
		if pred(n) {
			out = append(out, n)
		}
	})
	return out
}

// Find returns the first node (pre-order) satisfying pred.
func Find[T TreeNode[T]](node T, pred func(T) bool) (T, bool) {
	if pred(node) {
		return node, true
	}
	for _, c := range node.Children() {
		if n, ok := Find(c, pred); ok {
			return n, true
		}
	}
	var zero T
	return zero, false
}

// Exists reports whether any node satisfies pred.
func Exists[T TreeNode[T]](node T, pred func(T) bool) bool {
	_, ok := Find(node, pred)
	return ok
}
