package catalyst

import "fmt"

// Rule is a named tree-to-tree function (paper §4.2). The function may run
// arbitrary code, but most rules are built from TransformUp/TransformDown
// with a type-switch body.
type Rule[T TreeNode[T]] struct {
	Name  string
	Apply func(T) T
}

// FixedPoint and Once are batch execution strategies: a Once batch applies
// its rules a single time (e.g. physical preparation), while a FixedPoint
// batch re-runs until the tree stops changing or MaxIterations is reached
// (paper §4.2: "Catalyst groups rules into batches, and executes each batch
// until it reaches a fixed point").
const (
	defaultMaxIterations = 100
)

// Batch groups rules that run together to a fixed point.
type Batch[T TreeNode[T]] struct {
	Name string
	// Once, when true, applies the rules exactly one time.
	Once bool
	// MaxIterations bounds fixed-point execution; 0 means the default
	// (100). Exceeding the bound is reported through the executor's
	// OnMaxIterations hook (a development-time sanity check).
	MaxIterations int
	Rules         []Rule[T]
}

// RuleExecutor runs batches of rules over a tree (paper Figure 3: the
// analyzer, optimizer and physical preparation are each a RuleExecutor with
// different batches).
type RuleExecutor[T TreeNode[T]] struct {
	Batches []Batch[T]
	// Trace, if non-nil, is called after every rule application that
	// changed the tree — handy for debugging optimizations.
	Trace func(batch, rule string, before, after T)
	// OnMaxIterations, if non-nil, is called when a fixed-point batch hits
	// its iteration bound without converging.
	OnMaxIterations func(batch string, iterations int)
	// Check, if non-nil, runs after each batch as a sanity check (paper
	// §4.2: "after each batch, developers can also run sanity checks").
	// A non-nil error panics in development; production engines surface
	// it via Execute's error return.
	Check func(T) error
}

// Execute runs all batches in order and returns the transformed tree.
func (e *RuleExecutor[T]) Execute(tree T) (T, error) {
	for _, batch := range e.Batches {
		maxIter := batch.MaxIterations
		if batch.Once {
			maxIter = 1
		} else if maxIter <= 0 {
			maxIter = defaultMaxIterations
		}
		prev := tree.String()
		for i := 0; i < maxIter; i++ {
			for _, rule := range batch.Rules {
				next := rule.Apply(tree)
				if e.Trace != nil && next.String() != tree.String() {
					e.Trace(batch.Name, rule.Name, tree, next)
				}
				tree = next
			}
			cur := tree.String()
			if cur == prev {
				break // fixed point reached
			}
			prev = cur
			if i == maxIter-1 && !batch.Once && e.OnMaxIterations != nil {
				e.OnMaxIterations(batch.Name, maxIter)
			}
		}
		if e.Check != nil {
			if err := e.Check(tree); err != nil {
				return tree, fmt.Errorf("catalyst: batch %q sanity check: %w", batch.Name, err)
			}
		}
	}
	return tree, nil
}
