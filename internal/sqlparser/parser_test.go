package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

func parseQuery(t *testing.T, sql string) plan.LogicalPlan {
	t.Helper()
	lp, err := ParseQuery(sql)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", sql, err)
	}
	return lp
}

func TestSelectBasicShape(t *testing.T) {
	lp := parseQuery(t, "SELECT a, b AS bee FROM t WHERE a > 1")
	proj, ok := lp.(*plan.Project)
	if !ok {
		t.Fatalf("top = %T", lp)
	}
	if len(proj.List) != 2 {
		t.Fatalf("list = %v", proj.List)
	}
	if alias, ok := proj.List[1].(*expr.Alias); !ok || alias.Name != "bee" {
		t.Fatalf("alias = %v", proj.List[1])
	}
	f, ok := proj.Child.(*plan.Filter)
	if !ok {
		t.Fatalf("expected filter below project, got %T", proj.Child)
	}
	if _, ok := f.Child.(*plan.UnresolvedRelation); !ok {
		t.Fatalf("expected unresolved relation, got %T", f.Child)
	}
}

func TestImplicitAlias(t *testing.T) {
	lp := parseQuery(t, "SELECT a + 1 total FROM t")
	proj := lp.(*plan.Project)
	if alias, ok := proj.List[0].(*expr.Alias); !ok || alias.Name != "total" {
		t.Fatalf("implicit alias = %v", proj.List[0])
	}
}

func TestStarVariants(t *testing.T) {
	lp := parseQuery(t, "SELECT *, t.* FROM t")
	proj := lp.(*plan.Project)
	if _, ok := proj.List[0].(*expr.Star); !ok {
		t.Fatal("bare star")
	}
	if s, ok := proj.List[1].(*expr.Star); !ok || s.Qualifier != "t" {
		t.Fatalf("qualified star = %v", proj.List[1])
	}
}

func TestOperatorPrecedence(t *testing.T) {
	lp := parseQuery(t, "SELECT 1 + 2 * 3 FROM t")
	proj := lp.(*plan.Project)
	add, ok := proj.List[0].(*expr.BinaryArith)
	if !ok || add.Op != expr.OpAdd {
		t.Fatalf("top op = %v", proj.List[0])
	}
	if mul, ok := add.Right.(*expr.BinaryArith); !ok || mul.Op != expr.OpMul {
		t.Fatalf("* must bind tighter: %v", proj.List[0])
	}
	// AND binds tighter than OR; NOT tighter than AND.
	lp = parseQuery(t, "SELECT * FROM t WHERE NOT a AND b OR c")
	cond := lp.(*plan.Project).Child.(*plan.Filter).Cond
	or, ok := cond.(*expr.Or)
	if !ok {
		t.Fatalf("top = %v", cond)
	}
	and, ok := or.Left.(*expr.And)
	if !ok {
		t.Fatalf("left of OR = %v", or.Left)
	}
	if _, ok := and.Left.(*expr.Not); !ok {
		t.Fatalf("NOT a = %v", and.Left)
	}
}

func TestPredicateForms(t *testing.T) {
	cond := func(sql string) expr.Expression {
		lp := parseQuery(t, "SELECT * FROM t WHERE "+sql)
		return lp.(*plan.Project).Child.(*plan.Filter).Cond
	}
	if _, ok := cond("a IS NULL").(*expr.IsNull); !ok {
		t.Error("IS NULL")
	}
	if _, ok := cond("a IS NOT NULL").(*expr.IsNotNull); !ok {
		t.Error("IS NOT NULL")
	}
	if _, ok := cond("a LIKE '%x%'").(*expr.Like); !ok {
		t.Error("LIKE")
	}
	if n, ok := cond("a NOT LIKE '%x%'").(*expr.Not); !ok {
		t.Error("NOT LIKE")
	} else if _, ok := n.Child.(*expr.Like); !ok {
		t.Error("NOT LIKE child")
	}
	if in, ok := cond("a IN (1, 2, 3)").(*expr.In); !ok || len(in.List) != 3 {
		t.Error("IN")
	}
	if _, ok := cond("a NOT IN (1)").(*expr.Not); !ok {
		t.Error("NOT IN")
	}
	between := cond("a BETWEEN 1 AND 5")
	if and, ok := between.(*expr.And); !ok {
		t.Errorf("BETWEEN = %v", between)
	} else {
		if ge, ok := and.Left.(*expr.Comparison); !ok || ge.Op != expr.OpGE {
			t.Errorf("BETWEEN lower = %v", and.Left)
		}
	}
}

func TestCaseAndCast(t *testing.T) {
	lp := parseQuery(t, "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
	cw, ok := lp.(*plan.Project).List[0].(*expr.CaseWhen)
	if !ok || len(cw.Branches()) != 1 || cw.ElseValue() == nil {
		t.Fatalf("case = %v", lp.(*plan.Project).List[0])
	}
	lp = parseQuery(t, "SELECT CAST(a AS BIGINT), CAST(b AS DECIMAL(10,2)) FROM t")
	c1 := lp.(*plan.Project).List[0].(*expr.Cast)
	if !c1.To.Equals(types.Long) {
		t.Errorf("cast 1 = %s", c1.To.Name())
	}
	c2 := lp.(*plan.Project).List[1].(*expr.Cast)
	if !c2.To.Equals(types.DecimalType{Precision: 10, Scale: 2}) {
		t.Errorf("cast 2 = %s", c2.To.Name())
	}
}

func TestJoinVariants(t *testing.T) {
	shapes := []struct {
		sql  string
		want plan.JoinType
	}{
		{"SELECT * FROM a JOIN b ON a.x = b.x", plan.InnerJoin},
		{"SELECT * FROM a INNER JOIN b ON a.x = b.x", plan.InnerJoin},
		{"SELECT * FROM a LEFT JOIN b ON a.x = b.x", plan.LeftOuterJoin},
		{"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x", plan.LeftOuterJoin},
		{"SELECT * FROM a RIGHT JOIN b ON a.x = b.x", plan.RightOuterJoin},
		{"SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x", plan.FullOuterJoin},
		{"SELECT * FROM a LEFT SEMI JOIN b ON a.x = b.x", plan.LeftSemiJoin},
		{"SELECT * FROM a CROSS JOIN b", plan.CrossJoin},
	}
	for _, s := range shapes {
		lp := parseQuery(t, s.sql)
		j, ok := lp.(*plan.Project).Child.(*plan.Join)
		if !ok {
			t.Fatalf("%q: no join", s.sql)
		}
		if j.Type != s.want {
			t.Errorf("%q: type = %s, want %s", s.sql, j.Type, s.want)
		}
	}
	// Comma-separated FROM is a cross join (condition in WHERE).
	lp := parseQuery(t, "SELECT * FROM a, b WHERE a.x = b.x")
	if _, ok := lp.(*plan.Project).Child.(*plan.Filter).Child.(*plan.Join); !ok {
		t.Fatal("comma join shape")
	}
}

func TestGroupByHavingOrderLimit(t *testing.T) {
	lp := parseQuery(t, `
		SELECT dept, count(*) AS n FROM emp
		WHERE age > 18
		GROUP BY dept
		HAVING count(*) > 2
		ORDER BY n DESC
		LIMIT 5`)
	l, ok := lp.(*plan.Limit)
	if !ok || l.N != 5 {
		t.Fatalf("limit = %v", lp)
	}
	s, ok := l.Child.(*plan.Sort)
	if !ok || !s.Orders[0].Descending {
		t.Fatalf("sort = %v", l.Child)
	}
	f, ok := s.Child.(*plan.Filter) // HAVING
	if !ok {
		t.Fatalf("having = %T", s.Child)
	}
	agg, ok := f.Child.(*plan.Aggregate)
	if !ok || len(agg.Grouping) != 1 {
		t.Fatalf("aggregate = %T", f.Child)
	}
	if _, ok := agg.Child.(*plan.Filter); !ok { // WHERE
		t.Fatalf("where = %T", agg.Child)
	}
}

func TestUnionForms(t *testing.T) {
	lp := parseQuery(t, "SELECT a FROM t UNION ALL SELECT a FROM u")
	if u, ok := lp.(*plan.Union); !ok || len(u.Kids) != 2 {
		t.Fatalf("union all = %v", lp)
	}
	lp = parseQuery(t, "SELECT a FROM t UNION SELECT a FROM u")
	if _, ok := lp.(*plan.Distinct); !ok {
		t.Fatalf("bare UNION dedupes: %T", lp)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	lp := parseQuery(t, "SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 0")
	f := lp.(*plan.Project).Child.(*plan.Filter)
	sq, ok := f.Child.(*plan.SubqueryAlias)
	if !ok || sq.Name != "sub" {
		t.Fatalf("subquery = %v", f.Child)
	}
	if _, err := ParseQuery("SELECT x FROM (SELECT a FROM t)"); err == nil {
		t.Fatal("subquery without alias must fail")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	lp := parseQuery(t, "SELECT 1 + 1")
	proj := lp.(*plan.Project)
	if _, ok := proj.Child.(*plan.OneRowRelation); !ok {
		t.Fatalf("child = %T", proj.Child)
	}
}

func TestNumericLiterals(t *testing.T) {
	lp := parseQuery(t, "SELECT 1, 3000000000, 2.5, 1e3, -7 FROM t")
	list := lp.(*plan.Project).List
	if list[0].(*expr.Literal).Value != int32(1) {
		t.Error("small ints are INT")
	}
	if list[1].(*expr.Literal).Value != int64(3000000000) {
		t.Error("big ints are BIGINT")
	}
	if list[2].(*expr.Literal).Value != 2.5 {
		t.Error("decimals are DOUBLE")
	}
	if list[3].(*expr.Literal).Value != 1000.0 {
		t.Error("scientific notation")
	}
	if list[4].(*expr.Literal).Value != int32(-7) {
		t.Error("negative literals fold")
	}
}

func TestStringEscapes(t *testing.T) {
	lp := parseQuery(t, `SELECT 'it''s', "dq", 'a\nb' FROM t`)
	list := lp.(*plan.Project).List
	if list[0].(*expr.Literal).Value != "it's" {
		t.Errorf("doubled quote = %q", list[0].(*expr.Literal).Value)
	}
	if list[1].(*expr.Literal).Value != "dq" {
		t.Error("double-quoted strings")
	}
	if list[2].(*expr.Literal).Value != "a\nb" {
		t.Error("backslash escapes")
	}
}

func TestNonReservedWordsAsNames(t *testing.T) {
	// The paper's own queries use columns named long, end, date...
	lp := parseQuery(t, "SELECT loc.long, a.end FROM a")
	list := lp.(*plan.Project).List
	if u := list[0].(*expr.UnresolvedAttribute); u.Parts[1] != "long" {
		t.Errorf("loc.long = %v", u.Parts)
	}
	if u := list[1].(*expr.UnresolvedAttribute); u.Parts[1] != "end" {
		t.Errorf("a.end = %v", u.Parts)
	}
	// END still terminates CASE.
	parseQuery(t, "SELECT CASE WHEN a THEN end END FROM t")
}

func TestCreateTempTable(t *testing.T) {
	stmt, err := Parse(`CREATE TEMPORARY TABLE messages USING com.databricks.spark.avro OPTIONS (path "messages.avro")`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTempTable)
	if !ok {
		t.Fatalf("stmt = %T", stmt)
	}
	if ct.Name != "messages" || ct.Provider != "com.databricks.spark.avro" {
		t.Fatalf("ct = %+v", ct)
	}
	if ct.Options["path"] != "messages.avro" {
		t.Fatalf("options = %v", ct.Options)
	}

	stmt, err = Parse("CREATE TEMPORARY TABLE t2 AS SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := stmt.(*CreateTempTable); ct.AsSelect == nil {
		t.Fatal("CTAS should carry a plan")
	}
}

func TestParseExpressionStandalone(t *testing.T) {
	e, err := ParseExpression("a + b * 2 AS total")
	if err != nil {
		t.Fatal(err)
	}
	alias, ok := e.(*expr.Alias)
	if !ok || alias.Name != "total" {
		t.Fatalf("e = %v", e)
	}
	if _, err := ParseExpression("a +"); err == nil {
		t.Fatal("dangling operator must fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"FROM t SELECT a",
		"SELECT a FROM t; DROP TABLE t", // no multi-statement
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t JOIN",
		"CREATE TEMPORARY t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	lp := parseQuery(t, `
		-- leading comment
		SELECT a -- trailing comment
		FROM t -- another`)
	if _, ok := lp.(*plan.Project); !ok {
		t.Fatal("comments should be skipped")
	}
}

func TestConcatOperator(t *testing.T) {
	lp := parseQuery(t, "SELECT a || 'x' FROM t")
	if _, ok := lp.(*plan.Project).List[0].(*expr.Concat); !ok {
		t.Fatalf("|| = %v", lp.(*plan.Project).List[0])
	}
}

func TestErrorsMentionOffset(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE %")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseAnalyzeTable(t *testing.T) {
	for _, sql := range []string{
		"ANALYZE TABLE t",
		"ANALYZE TABLE t COMPUTE STATISTICS",
		"analyze table t compute statistics",
	} {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		at, ok := stmt.(*AnalyzeTable)
		if !ok {
			t.Fatalf("Parse(%q) = %T, want *AnalyzeTable", sql, stmt)
		}
		if at.Name != "t" {
			t.Fatalf("Parse(%q).Name = %q", sql, at.Name)
		}
	}
	for _, sql := range []string{
		"ANALYZE t",
		"ANALYZE TABLE t COMPUTE",
		"ANALYZE TABLE",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStatement)
	if !ok {
		t.Fatalf("stmt = %T, want *ExplainStatement", stmt)
	}
	if _, ok := ex.Plan.(*plan.Project); !ok {
		t.Fatalf("explained plan = %T", ex.Plan)
	}
	if _, err := Parse("EXPLAIN"); err == nil {
		t.Error("bare EXPLAIN should fail")
	}
	if ex.Analyze {
		t.Error("plain EXPLAIN must not set Analyze")
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse("EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStatement)
	if !ok {
		t.Fatalf("stmt = %T, want *ExplainStatement", stmt)
	}
	if !ex.Analyze {
		t.Error("EXPLAIN ANALYZE must set Analyze")
	}
	if _, ok := ex.Plan.(*plan.Project); !ok {
		t.Fatalf("explained plan = %T", ex.Plan)
	}
	if _, err := Parse("EXPLAIN ANALYZE"); err == nil {
		t.Error("EXPLAIN ANALYZE without a query should fail")
	}
}

func TestParseShowMetrics(t *testing.T) {
	stmt, err := Parse("SHOW METRICS")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*ShowMetrics); !ok {
		t.Fatalf("stmt = %T, want *ShowMetrics", stmt)
	}
	if _, err := Parse("SHOW"); err == nil {
		t.Error("bare SHOW should fail")
	}
	if _, err := Parse("SHOW METRICS extra"); err == nil {
		t.Error("trailing input after SHOW METRICS should fail")
	}
}

// COMPUTE and STATISTICS stay usable as column names.
func TestAnalyzeKeywordsNonReserved(t *testing.T) {
	lp := parseQuery(t, "SELECT compute, statistics FROM t")
	if len(lp.(*plan.Project).List) != 2 {
		t.Fatalf("plan = %v", lp)
	}
}

// SHOW and METRICS stay usable as column names.
func TestShowMetricsKeywordsNonReserved(t *testing.T) {
	lp := parseQuery(t, "SELECT show, metrics FROM t")
	if len(lp.(*plan.Project).List) != 2 {
		t.Fatalf("plan = %v", lp)
	}
}
