package sqlparser

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE users (id BIGINT NOT NULL, name STRING, score DOUBLE)")
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "users" || ct.IfNotExists || len(ct.Cols) != 3 {
		t.Fatalf("stmt = %+v", ct)
	}
	if ct.Cols[0].Name != "id" || ct.Cols[0].Type != types.Long || !ct.Cols[0].NotNull {
		t.Fatalf("col 0 = %+v", ct.Cols[0])
	}
	if ct.Cols[1].Name != "name" || ct.Cols[1].Type != types.String || ct.Cols[1].NotNull {
		t.Fatalf("col 1 = %+v", ct.Cols[1])
	}

	stmt, err = Parse("CREATE TABLE IF NOT EXISTS t (x INT)")
	if err != nil {
		t.Fatal(err)
	}
	if ct = stmt.(*CreateTable); !ct.IfNotExists {
		t.Fatal("IF NOT EXISTS not parsed")
	}

	stmt, err = Parse("CREATE TABLE copy AS SELECT a, b FROM src WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if ct = stmt.(*CreateTable); ct.AsSelect == nil || ct.Name != "copy" {
		t.Fatalf("CTAS = %+v", ct)
	}

	// Still the temp-table path when TEMPORARY is present.
	stmt, err = Parse("CREATE TEMPORARY TABLE v USING json OPTIONS(path 'x')")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*CreateTempTable); !ok {
		t.Fatalf("got %T", stmt)
	}
}

func TestParseDropTable(t *testing.T) {
	stmt, err := Parse("DROP TABLE users")
	if err != nil {
		t.Fatal(err)
	}
	if dt := stmt.(*DropTable); dt.Name != "users" || dt.IfExists {
		t.Fatalf("stmt = %+v", dt)
	}
	stmt, err = Parse("DROP TABLE IF EXISTS users")
	if err != nil {
		t.Fatal(err)
	}
	if dt := stmt.(*DropTable); !dt.IfExists {
		t.Fatal("IF EXISTS not parsed")
	}
}

func TestParseInsertValues(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 'a'), (2, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStatement)
	if ins.Table != "t" || len(ins.Columns) != 0 || len(ins.Values) != 2 || ins.Query != nil {
		t.Fatalf("stmt = %+v", ins)
	}
	if len(ins.Values[0]) != 2 || len(ins.Values[1]) != 2 {
		t.Fatalf("tuples = %+v", ins.Values)
	}

	stmt, err = Parse("INSERT INTO t (b, a) VALUES ('x', 1 + 2)")
	if err != nil {
		t.Fatal(err)
	}
	ins = stmt.(*InsertStatement)
	if len(ins.Columns) != 2 || ins.Columns[0] != "b" || ins.Columns[1] != "a" {
		t.Fatalf("columns = %v", ins.Columns)
	}
}

func TestParseInsertSelect(t *testing.T) {
	stmt, err := Parse("INSERT INTO dst SELECT a, b FROM src WHERE a > 10")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStatement)
	if ins.Table != "dst" || ins.Query == nil || ins.Values != nil {
		t.Fatalf("stmt = %+v", ins)
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := Parse("UPDATE t SET a = a + 1, b = 'done' WHERE a < 5")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*UpdateStatement)
	if up.Table != "t" || len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("stmt = %+v", up)
	}
	if up.Set[0].Column != "a" || up.Set[1].Column != "b" {
		t.Fatalf("set = %+v", up.Set)
	}
	stmt, err = Parse("UPDATE t SET a = 0")
	if err != nil {
		t.Fatal(err)
	}
	if up = stmt.(*UpdateStatement); up.Where != nil {
		t.Fatal("unexpected WHERE")
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := Parse("DELETE FROM t WHERE b IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStatement)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("stmt = %+v", del)
	}
	stmt, err = Parse("DELETE FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if del = stmt.(*DeleteStatement); del.Where != nil {
		t.Fatal("unexpected WHERE")
	}
}

func TestParseShowTablesAndDescribe(t *testing.T) {
	stmt, err := Parse("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*ShowTables); !ok {
		t.Fatalf("got %T", stmt)
	}
	for _, sql := range []string{"DESCRIBE t", "DESC t", "DESCRIBE TABLE t"} {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if d, ok := stmt.(*DescribeTable); !ok || d.Name != "t" {
			t.Fatalf("%s: got %T %+v", sql, stmt, stmt)
		}
	}
}

// TestDMLKeywordsStayUsableAsNames: the new keywords must not break
// queries that use them as column or table names.
func TestDMLKeywordsStayUsableAsNames(t *testing.T) {
	for _, sql := range []string{
		"SELECT insert, delete FROM t WHERE update = 1",
		"SELECT t.values FROM tables t",
		"SELECT a FROM t WHERE exists = TRUE",
	} {
		if _, err := Parse(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	e, err := ParseExpression("set + 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*expr.BinaryArith); !ok {
		t.Fatalf("got %T", e)
	}
}
