// DML and persistent-DDL statements: CREATE TABLE, DROP TABLE, INSERT,
// UPDATE, DELETE, SHOW TABLES and DESCRIBE. These drive the table store —
// the writable, durable side of the catalog — while the SELECT grammar in
// parser.go remains the read side.
package sqlparser

import (
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// ColumnDef is one column of a CREATE TABLE definition.
type ColumnDef struct {
	Name    string
	Type    types.DataType
	NotNull bool
}

// CreateTable is CREATE TABLE name (col type [NOT NULL], ...) or
// CREATE TABLE name AS SELECT ... — a persistent table, unlike the
// session-scoped CREATE TEMPORARY TABLE.
type CreateTable struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnDef
	AsSelect    plan.LogicalPlan
}

func (*CreateTable) isStatement() {}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) isStatement() {}

// InsertStatement is INSERT INTO name [(cols)] VALUES (...), ... or
// INSERT INTO name [(cols)] SELECT .... Exactly one of Values and Query
// is set.
type InsertStatement struct {
	Table   string
	Columns []string // empty = positional, all columns
	Values  [][]expr.Expression
	Query   plan.LogicalPlan
}

func (*InsertStatement) isStatement() {}

// SetClause is one col = expr assignment of an UPDATE.
type SetClause struct {
	Column string
	Value  expr.Expression
}

// UpdateStatement is UPDATE name SET col = expr, ... [WHERE cond].
type UpdateStatement struct {
	Table string
	Set   []SetClause
	Where expr.Expression // nil = all rows
}

func (*UpdateStatement) isStatement() {}

// DeleteStatement is DELETE FROM name [WHERE cond].
type DeleteStatement struct {
	Table string
	Where expr.Expression // nil = all rows
}

func (*DeleteStatement) isStatement() {}

// ShowTables is SHOW TABLES: one row per table — persistent and temporary
// — with row counts, on-disk size and version.
type ShowTables struct{}

func (*ShowTables) isStatement() {}

// DescribeTable is DESCRIBE (or DESC) [TABLE] name: the table's schema,
// one row per column, plus its current MVCC version.
type DescribeTable struct {
	Name string
}

func (*DescribeTable) isStatement() {}

// ---------------------------------------------------------------------------
// Parsing

func (p *parser) parseCreateTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTable{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if p.accept(tokOp, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			dt, err := p.parseDataType()
			if err != nil {
				return nil, err
			}
			def := ColumnDef{Name: col, Type: dt}
			if p.acceptKeyword("NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				def.NotNull = true
			}
			stmt.Cols = append(stmt.Cols, def)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return stmt, nil
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, p.errorf("CREATE TABLE needs a column list or AS SELECT")
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.AsSelect = sel
	return stmt, nil
}

func (p *parser) parseDropTable() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTable{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	return stmt, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	stmt := &InsertStatement{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if p.accept(tokOp, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("VALUES") {
		for {
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			var tuple []expr.Expression
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				tuple = append(tuple, e)
				if !p.accept(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			stmt.Values = append(stmt.Values, tuple)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		return stmt, nil
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Query = sel
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	stmt := &UpdateStatement{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, SetClause{Column: col, Value: val})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = cond
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	stmt := &DeleteStatement{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if p.acceptKeyword("WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = cond
	}
	return stmt, nil
}

func (p *parser) parseDescribe() (Statement, error) {
	if !p.acceptKeyword("DESCRIBE") {
		if err := p.expectKeyword("DESC"); err != nil {
			return nil, err
		}
	}
	p.acceptKeyword("TABLE")
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DescribeTable{Name: name}, nil
}
