package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// Statement is a parsed SQL statement.
type Statement interface{ isStatement() }

// SelectStatement is a query producing a logical plan.
type SelectStatement struct {
	Plan plan.LogicalPlan
}

func (*SelectStatement) isStatement() {}

// CreateTempTable is CREATE TEMPORARY TABLE name USING provider
// OPTIONS(...) — the data source registration statement of §4.4.1.
type CreateTempTable struct {
	Name     string
	Provider string
	Options  map[string]string
	// AsSelect, when non-nil, registers the query result instead of a
	// data source (CREATE TEMPORARY TABLE t AS SELECT ...).
	AsSelect plan.LogicalPlan
}

func (*CreateTempTable) isStatement() {}

// AnalyzeTable is ANALYZE TABLE name [COMPUTE STATISTICS]: it scans the
// table once and attaches collected statistics to its catalog entry, the
// input of cost-based optimization.
type AnalyzeTable struct {
	Name string
}

func (*AnalyzeTable) isStatement() {}

// ExplainStatement is EXPLAIN <query>: instead of running the query it
// returns the annotated plan phases as rows. With Analyze set (EXPLAIN
// ANALYZE <query>) the query *does* run, instrumented, and every physical
// node is additionally annotated with the actual rows and wall time it
// produced next to the optimizer's estimate.
type ExplainStatement struct {
	Plan    plan.LogicalPlan
	Analyze bool
}

func (*ExplainStatement) isStatement() {}

// ShowMetrics is SHOW METRICS [LIKE '<glob>']: it returns the engine's
// metrics registry — every counter, gauge and histogram accumulated since
// the context was built — as (metric, value) rows. Like filters names
// (empty = all; no '*' = prefix match; '*' = anchored glob).
type ShowMetrics struct {
	Like string
}

func (*ShowMetrics) isStatement() {}

// ShowCluster is SHOW CLUSTER: one row per registered worker — liveness,
// blacklist state, task and failure counts, and federated shuffle bytes.
type ShowCluster struct{}

func (*ShowCluster) isStatement() {}

// ShowHistory is SHOW HISTORY: the query event log replayed as rows,
// oldest first — the history-server view.
type ShowHistory struct{}

func (*ShowHistory) isStatement() {}

// Parse parses a single SQL statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: sql}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

// ParseExpression parses a standalone SQL expression (used by
// DataFrame.SelectExpr and filter strings).
func ParseExpression(s string) (expr.Expression, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: s}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// Allow a trailing alias: "a+b AS total".
	if p.acceptKeyword("AS") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		e = expr.NewAlias(e, name)
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.cur().text)
	}
	return e, nil
}

// ParseQuery parses a query and returns its logical plan.
func ParseQuery(sql string) (plan.LogicalPlan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStatement)
	if !ok {
		return nil, fmt.Errorf("sql: expected a query, got a DDL statement")
	}
	return sel.Plan, nil
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) advance()    { p.pos++ }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKeyword(kw string) bool { return p.at(tokKeyword, kw) }

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(tokKeyword, kw) }

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		return t, p.errorf("expected %q, found %q", text, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	_, err := p.expect(tokKeyword, kw)
	return err
}

// nonReserved keywords may double as identifiers (column/table names) —
// notably the type names, since the paper's own example queries use a
// column called `long`.
var nonReserved = map[string]bool{
	"INT": true, "INTEGER": true, "BIGINT": true, "LONG": true,
	"DOUBLE": true, "FLOAT": true, "STRING": true, "BOOLEAN": true,
	"DATE": true, "TIMESTAMP": true, "DECIMAL": true, "OPTIONS": true,
	"TABLE": true, "ALL": true, "COMPUTE": true, "STATISTICS": true,
	"METRICS": true, "SHOW": true, "CLUSTER": true, "HISTORY": true,
	// DML words stay usable as column/table names (the paper-era datasets
	// have columns like `values` and `set`).
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "DROP": true, "DESCRIBE": true,
	"TABLES": true, "IF": true, "EXISTS": true,
	// END doubles as a column name (the paper's §7.2 range join uses
	// a.end); CASE expressions still terminate correctly because END is
	// only read as a name where an expression may start or after a dot.
	"END": true,
}

func (p *parser) peekIsName() bool {
	t := p.peek()
	return t.kind == tokIdent || (t.kind == tokKeyword && nonReserved[t.text])
}

func (p *parser) atName() bool {
	t := p.cur()
	return t.kind == tokIdent || (t.kind == tokKeyword && nonReserved[t.text])
}

// ident accepts an identifier or a non-reserved keyword used as a name.
func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	if t.kind == tokKeyword && nonReserved[t.text] {
		p.advance()
		return strings.ToLower(t.text), nil
	}
	return "", p.errorf("expected identifier, found %q", t.text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStatement() (Statement, error) {
	if p.atKeyword("CREATE") {
		if p.peek().kind == tokKeyword && p.peek().text == "TEMPORARY" {
			return p.parseCreateTempTable()
		}
		return p.parseCreateTable()
	}
	if p.atKeyword("DROP") {
		return p.parseDropTable()
	}
	if p.atKeyword("INSERT") {
		return p.parseInsert()
	}
	if p.atKeyword("UPDATE") {
		return p.parseUpdate()
	}
	if p.atKeyword("DELETE") {
		return p.parseDelete()
	}
	if p.atKeyword("DESCRIBE") || p.atKeyword("DESC") {
		return p.parseDescribe()
	}
	if p.atKeyword("ANALYZE") {
		return p.parseAnalyzeTable()
	}
	if p.acceptKeyword("EXPLAIN") {
		analyze := p.acceptKeyword("ANALYZE")
		lp, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStatement{Plan: lp, Analyze: analyze}, nil
	}
	if p.atKeyword("SHOW") {
		p.advance()
		switch {
		case p.acceptKeyword("METRICS"):
			if p.acceptKeyword("LIKE") {
				t, err := p.expect(tokString, "")
				if err != nil {
					return nil, err
				}
				return &ShowMetrics{Like: t.text}, nil
			}
			return &ShowMetrics{}, nil
		case p.acceptKeyword("CLUSTER"):
			return &ShowCluster{}, nil
		case p.acceptKeyword("HISTORY"):
			return &ShowHistory{}, nil
		case p.acceptKeyword("TABLES"):
			return &ShowTables{}, nil
		}
		return nil, p.errorf("expected METRICS, CLUSTER, HISTORY or TABLES after SHOW, found %q", p.cur().text)
	}
	lp, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &SelectStatement{Plan: lp}, nil
}

func (p *parser) parseAnalyzeTable() (Statement, error) {
	if err := p.expectKeyword("ANALYZE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// The Spark-compatible long form; the suffix is optional here.
	if p.acceptKeyword("COMPUTE") {
		if err := p.expectKeyword("STATISTICS"); err != nil {
			return nil, err
		}
	}
	return &AnalyzeTable{Name: name}, nil
}

func (p *parser) parseCreateTempTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TEMPORARY"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateTempTable{Name: name, AsSelect: sel}, nil
	}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	// Provider names may be dotted package names (com.databricks.spark.avro).
	provider, err := p.ident()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, ".") {
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		provider += "." + part
	}
	options := map[string]string{}
	if p.acceptKeyword("OPTIONS") {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		for {
			key := p.cur()
			if key.kind != tokIdent && key.kind != tokString && key.kind != tokKeyword {
				return nil, p.errorf("expected option key, found %q", key.text)
			}
			p.advance()
			val := p.cur()
			if val.kind != tokString {
				return nil, p.errorf("expected quoted option value, found %q", val.text)
			}
			p.advance()
			options[strings.ToLower(key.text)] = val.text
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	return &CreateTempTable{Name: name, Provider: provider, Options: options}, nil
}

// ---------------------------------------------------------------------------
// Queries

// parseSelect handles UNION ALL chains plus trailing ORDER BY / LIMIT.
func (p *parser) parseSelect() (plan.LogicalPlan, error) {
	lp, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("UNION") {
		p.advance()
		// UNION ALL keeps duplicates; bare UNION (or UNION DISTINCT)
		// dedupes, per SQL.
		distinct := !p.acceptKeyword("ALL")
		if distinct {
			p.acceptKeyword("DISTINCT")
		}
		next, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		var u plan.LogicalPlan = &plan.Union{Kids: []plan.LogicalPlan{lp, next}}
		if distinct {
			u = &plan.Distinct{Child: u}
		}
		lp = u
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		orders, err := p.parseSortOrders()
		if err != nil {
			return nil, err
		}
		lp = &plan.Sort{Orders: orders, Global: true, Child: lp}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT, found %q", t.text)
		}
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		lp = &plan.Limit{N: n, Child: lp}
	}
	return lp, nil
}

// parseQueryTerm parses one SELECT ... [FROM ...] block.
func (p *parser) parseQueryTerm() (plan.LogicalPlan, error) {
	if p.accept(tokOp, "(") {
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	distinct := p.acceptKeyword("DISTINCT")

	list, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}

	var child plan.LogicalPlan = &plan.OneRowRelation{}
	if p.acceptKeyword("FROM") {
		child, err = p.parseFromClause()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		child = &plan.Filter{Cond: cond, Child: child}
	}

	var out plan.LogicalPlan
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		var grouping []expr.Expression
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			grouping = append(grouping, g)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		out = &plan.Aggregate{Grouping: grouping, Aggs: list, Child: child}
	} else {
		out = &plan.Project{List: list, Child: child}
	}

	if p.acceptKeyword("HAVING") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = &plan.Filter{Cond: cond, Child: out}
	}
	if distinct {
		out = &plan.Distinct{Child: out}
	}
	return out, nil
}

func (p *parser) parseSelectList() ([]expr.Expression, error) {
	var list []expr.Expression
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		list = append(list, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return list, nil
}

func (p *parser) parseSelectItem() (expr.Expression, error) {
	// `*` and `t.*`
	if p.at(tokOp, "*") {
		p.advance()
		return &expr.Star{}, nil
	}
	if p.atName() && p.peek().kind == tokOp && p.peek().text == "." {
		// Lookahead for t.* without consuming on failure.
		save := p.pos
		q, _ := p.ident()
		p.advance() // '.'
		if p.at(tokOp, "*") {
			p.advance()
			return &expr.Star{Qualifier: q}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("AS") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return expr.NewAlias(e, name), nil
	}
	if p.cur().kind == tokIdent {
		name, _ := p.ident()
		return expr.NewAlias(e, name), nil
	}
	return e, nil
}

func (p *parser) parseSortOrders() ([]*expr.SortOrder, error) {
	var orders []*expr.SortOrder
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		desc := false
		if p.acceptKeyword("DESC") {
			desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		if desc {
			orders = append(orders, expr.Desc(e))
		} else {
			orders = append(orders, expr.Asc(e))
		}
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return orders, nil
}

// ---------------------------------------------------------------------------
// FROM clause

func (p *parser) parseFromClause() (plan.LogicalPlan, error) {
	left, err := p.parseTableFactor()
	if err != nil {
		return nil, err
	}
	for {
		var jt plan.JoinType
		switch {
		case p.atKeyword("JOIN") || p.atKeyword("INNER"):
			p.acceptKeyword("INNER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = plan.InnerJoin
		case p.atKeyword("LEFT"):
			p.advance()
			if p.acceptKeyword("SEMI") {
				jt = plan.LeftSemiJoin
			} else {
				p.acceptKeyword("OUTER")
				jt = plan.LeftOuterJoin
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		case p.atKeyword("RIGHT"):
			p.advance()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = plan.RightOuterJoin
		case p.atKeyword("FULL"):
			p.advance()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = plan.FullOuterJoin
		case p.atKeyword("CROSS"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = plan.CrossJoin
		case p.at(tokOp, ","): // comma join = cross join (filtered by WHERE)
			p.advance()
			jt = plan.CrossJoin
			right, err := p.parseTableFactor()
			if err != nil {
				return nil, err
			}
			// Comma-joined relations historically rely on WHERE for the
			// condition; keep Inner so predicate pushdown forms the join.
			left = &plan.Join{Left: left, Right: right, Type: jt, Cond: nil}
			continue
		default:
			return left, nil
		}
		right, err := p.parseTableFactor()
		if err != nil {
			return nil, err
		}
		var cond expr.Expression
		if p.acceptKeyword("ON") {
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		left = &plan.Join{Left: left, Right: right, Type: jt, Cond: cond}
	}
}

func (p *parser) parseTableFactor() (plan.LogicalPlan, error) {
	if p.accept(tokOp, "(") {
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		alias, err := p.ident()
		if err != nil {
			return nil, p.errorf("subquery in FROM requires an alias")
		}
		return &plan.SubqueryAlias{Name: strings.ToLower(alias), Child: inner}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var rel plan.LogicalPlan = &plan.UnresolvedRelation{Name: name}
	// Table-valued function: name(table1, table2, ...) in FROM (§3.7).
	if p.at(tokOp, "(") {
		p.advance()
		var args []string
		if !p.at(tokOp, ")") {
			for {
				arg, err := p.ident()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if !p.accept(tokOp, ",") {
					break
				}
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		rel = &plan.UnresolvedTableFunction{Name: name, Args: args}
	}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &plan.SubqueryAlias{Name: strings.ToLower(alias), Child: rel}, nil
	}
	if p.cur().kind == tokIdent {
		alias, _ := p.ident()
		return &plan.SubqueryAlias{Name: strings.ToLower(alias), Child: rel}, nil
	}
	return rel, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() (expr.Expression, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expression, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &expr.Or{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expression, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &expr.And{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expression, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{Child: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (expr.Expression, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atKeyword("IS"):
			p.advance()
			negate := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			if negate {
				left = &expr.IsNotNull{Child: left}
			} else {
				left = &expr.IsNull{Child: left}
			}
		case p.atKeyword("LIKE"):
			p.advance()
			pattern, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			left = &expr.Like{Left: left, Pattern: pattern}
		case p.atKeyword("BETWEEN"):
			p.advance()
			lo, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			left = &expr.And{Left: expr.GE(left, lo), Right: expr.LE(left, hi)}
		case p.atKeyword("IN"):
			p.advance()
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			var list []expr.Expression
			for {
				item, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, item)
				if !p.accept(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			left = &expr.In{Value: left, List: list}
		case p.atKeyword("NOT"):
			// NOT LIKE / NOT IN / NOT BETWEEN
			save := p.pos
			p.advance()
			switch {
			case p.atKeyword("LIKE"), p.atKeyword("IN"), p.atKeyword("BETWEEN"):
				p.pos = save
				p.advance() // consume NOT
				inner, err := p.parsePredicateSuffix(left)
				if err != nil {
					return nil, err
				}
				left = &expr.Not{Child: inner}
			default:
				p.pos = save
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

// parsePredicateSuffix parses exactly one LIKE/IN/BETWEEN suffix for the
// NOT-prefixed forms.
func (p *parser) parsePredicateSuffix(left expr.Expression) (expr.Expression, error) {
	switch {
	case p.acceptKeyword("LIKE"):
		pattern, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		return &expr.Like{Left: left, Pattern: pattern}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		return &expr.And{Left: expr.GE(left, lo), Right: expr.LE(left, hi)}, nil
	case p.acceptKeyword("IN"):
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var list []expr.Expression
		for {
			item, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &expr.In{Value: left, List: list}, nil
	}
	return nil, p.errorf("expected LIKE, IN or BETWEEN after NOT")
}

func (p *parser) parseComparison() (expr.Expression, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp {
		var op expr.CmpOp
		matched := true
		switch p.cur().text {
		case "=", "==":
			op = expr.OpEQ
		case "!=", "<>":
			op = expr.OpNEQ
		case "<":
			op = expr.OpLT
		case "<=":
			op = expr.OpLE
		case ">":
			op = expr.OpGT
		case ">=":
			op = expr.OpGE
		default:
			matched = false
		}
		if matched {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &expr.Comparison{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (expr.Expression, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokOp, "+"):
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.Add(left, right)
		case p.at(tokOp, "-"):
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.Sub(left, right)
		case p.at(tokOp, "||"):
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &expr.Concat{Args: []expr.Expression{left, right}}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Expression, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokOp, "*"):
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.Mul(left, right)
		case p.at(tokOp, "/"):
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.Div(left, right)
		case p.at(tokOp, "%"):
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.Mod(left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expression, error) {
	if p.accept(tokOp, "-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*expr.Literal); ok {
			switch v := lit.Value.(type) {
			case int32:
				return expr.Lit(-v), nil
			case int64:
				return expr.Lit(-v), nil
			case float64:
				return expr.Lit(-v), nil
			}
		}
		return &expr.Negate{Child: inner}, nil
	}
	p.accept(tokOp, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expression, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return parseNumber(t.text)

	case t.kind == tokString:
		p.advance()
		return expr.Lit(t.text), nil

	case p.atKeyword("NULL"):
		p.advance()
		return expr.Lit(nil), nil

	case p.atKeyword("TRUE"):
		p.advance()
		return expr.Lit(true), nil

	case p.atKeyword("FALSE"):
		p.advance()
		return expr.Lit(false), nil

	case p.atKeyword("CASE"):
		return p.parseCase()

	case p.atKeyword("CAST"):
		return p.parseCast()

	case p.at(tokOp, "("):
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return inner, nil

	case p.atName():
		return p.parseIdentExpr()

	// Aggregate keywords used as function names (e.g. COUNT is not in our
	// keyword set, so this arm is for future-proofing).
	default:
		return nil, p.errorf("unexpected token %q in expression", t.text)
	}
}

// parseIdentExpr handles function calls and (qualified) column references.
func (p *parser) parseIdentExpr() (expr.Expression, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.at(tokOp, "(") {
		p.advance()
		if p.accept(tokOp, "*") {
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &expr.UnresolvedFunction{Name: name, Star: true}, nil
		}
		distinct := p.acceptKeyword("DISTINCT")
		var args []expr.Expression
		if !p.at(tokOp, ")") {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if !p.accept(tokOp, ",") {
					break
				}
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &expr.UnresolvedFunction{Name: name, Args: args, Distinct: distinct}, nil
	}
	parts := []string{name}
	for p.at(tokOp, ".") && p.peekIsName() {
		p.advance()
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	return expr.UnresolvedAttr(parts...), nil
}

func (p *parser) parseCase() (expr.Expression, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	var branches [][2]expr.Expression
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		branches = append(branches, [2]expr.Expression{cond, val})
	}
	if len(branches) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN branch")
	}
	var elseVal expr.Expression
	if p.acceptKeyword("ELSE") {
		var err error
		elseVal, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return expr.NewCaseWhen(branches, elseVal), nil
}

func (p *parser) parseCast() (expr.Expression, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	inner, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	to, err := p.parseDataType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return expr.NewCast(inner, to), nil
}

func (p *parser) parseDataType() (types.DataType, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected a type name, found %q", t.text)
	}
	p.advance()
	switch t.text {
	case "INT", "INTEGER":
		return types.Int, nil
	case "BIGINT", "LONG":
		return types.Long, nil
	case "DOUBLE":
		return types.Double, nil
	case "FLOAT":
		return types.Float, nil
	case "STRING":
		return types.String, nil
	case "BOOLEAN":
		return types.Boolean, nil
	case "DATE":
		return types.Date, nil
	case "TIMESTAMP":
		return types.Timestamp, nil
	case "DECIMAL":
		prec, scale := 10, 0
		if p.accept(tokOp, "(") {
			pt, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, err
			}
			prec, _ = strconv.Atoi(pt.text)
			if p.accept(tokOp, ",") {
				st, err := p.expect(tokNumber, "")
				if err != nil {
					return nil, err
				}
				scale, _ = strconv.Atoi(st.text)
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
		}
		return types.DecimalType{Precision: prec, Scale: scale}, nil
	}
	return nil, p.errorf("unknown type %q", t.text)
}

func parseNumber(text string) (expr.Expression, error) {
	if !strings.ContainsAny(text, ".eE") {
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: invalid number %q", text)
		}
		if n >= -2147483648 && n <= 2147483647 {
			return expr.Lit(int32(n)), nil
		}
		return expr.Lit(n), nil
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, fmt.Errorf("sql: invalid number %q", text)
	}
	return expr.Lit(f), nil
}
