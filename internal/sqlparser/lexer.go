// Package sqlparser implements a hand-written lexer and recursive-descent
// parser for the SQL subset Spark SQL's evaluation exercises: SELECT with
// joins, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, UNION ALL, subqueries in
// FROM, CASE, IN, LIKE, BETWEEN, IS NULL, CAST, function calls (built-ins
// and UDFs), and CREATE TEMPORARY TABLE ... USING ... OPTIONS(...) for the
// data source API (paper §4.4.1). The parser produces unresolved logical
// plans; all name and type resolution happens in the analyzer.
package sqlparser

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

// keywords recognized by the lexer (subset; unlisted words are identifiers).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "JOIN": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true,
	"CROSS": true, "SEMI": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "LIKE": true, "BETWEEN": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "CAST": true, "UNION": true,
	"ALL": true, "DISTINCT": true, "ASC": true, "DESC": true, "CREATE": true,
	"TEMPORARY": true, "TABLE": true, "USING": true, "OPTIONS": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "LONG": true,
	"DOUBLE": true, "FLOAT": true, "STRING": true, "BOOLEAN": true,
	"DATE": true, "TIMESTAMP": true, "DECIMAL": true,
	"ANALYZE": true, "EXPLAIN": true, "COMPUTE": true, "STATISTICS": true,
	"SHOW": true, "METRICS": true, "CLUSTER": true, "HISTORY": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "DROP": true, "DESCRIBE": true,
	"TABLES": true, "IF": true, "EXISTS": true,
}

type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("sql: at offset %d: %s", e.pos, e.msg) }

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n && (input[i] >= '0' && input[i] <= '9' || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				i++
				if i < n && (input[i] == '+' || input[i] == '-') {
					i++
				}
				for i < n && input[i] >= '0' && input[i] <= '9' {
					i++
				}
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'' || c == '"':
			quote := c
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == quote {
					if i+1 < n && input[i+1] == quote { // doubled-quote escape
						sb.WriteByte(quote)
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				if input[i] == '\\' && i+1 < n { // backslash escapes
					i++
					switch input[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(input[i])
					}
					i++
					continue
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &lexError{pos: i, msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
		case c == '`': // quoted identifier
			i++
			start := i
			for i < n && input[i] != '`' {
				i++
			}
			if i >= n {
				return nil, &lexError{pos: i, msg: "unterminated quoted identifier"}
			}
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
			i++
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "!=", "<>", "==", "||":
				toks = append(toks, token{kind: tokOp, text: two, pos: i})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.':
				toks = append(toks, token{kind: tokOp, text: string(c), pos: i})
				i++
			default:
				return nil, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
