// Package stats implements table- and column-level statistics for
// cost-based optimization (paper §4.3.3: "costs can be estimated
// recursively for a whole tree"; Spark's later CBO work and Calcite's
// metadata layer are the models). Statistics are collected in one of two
// ways: cheaply as a side effect of columnar cache materialization, or on
// demand by ANALYZE TABLE scanning any data source. The planner consumes
// them through plan.Stats to derive predicate selectivities, join
// cardinalities and shuffle partition counts.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/row"
	"repro/internal/types"
)

// Column holds per-column statistics.
type Column struct {
	// Min and Max are the extreme non-NULL values (nil = unknown/empty).
	Min, Max any
	// NullCount counts NULL values.
	NullCount int64
	// NDV estimates the number of distinct non-NULL values (0 = unknown).
	NDV int64
	// AvgWidth is the average flat width of a value in bytes (0 = unknown).
	AvgWidth float64
}

// Table holds statistics for one relation, columns keyed by lower-cased
// column name.
type Table struct {
	RowCount    int64
	SizeInBytes int64
	Columns     map[string]*Column
}

// String renders the table stats deterministically (for tests and the
// sqlshell).
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rows=%d size=%dB", t.RowCount, t.SizeInBytes)
	names := make([]string, 0, len(t.Columns))
	for n := range t.Columns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := t.Columns[n]
		fmt.Fprintf(&sb, "\n  %s: ndv=%d nulls=%d min=%s max=%s avgWidth=%.1f",
			n, c.NDV, c.NullCount, row.FormatValue(c.Min), row.FormatValue(c.Max), c.AvgWidth)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Distinct-value sketch

// distinctSketch estimates NDV with Wegman's adaptive sampling: it keeps a
// bounded set of value hashes; when the set overflows, the sampling level
// rises (only hashes whose low `level` bits are zero are retained) and the
// estimate becomes len(set) << level. Exact up to maxSketchSize distinct
// values, ~2-4% error beyond.
type distinctSketch struct {
	level uint
	set   map[uint64]struct{}
}

const maxSketchSize = 1 << 12

func newDistinctSketch() *distinctSketch {
	return &distinctSketch{set: make(map[uint64]struct{})}
}

func (d *distinctSketch) Add(h uint64) {
	if h&((1<<d.level)-1) != 0 {
		return
	}
	d.set[h] = struct{}{}
	for len(d.set) > maxSketchSize {
		d.level++
		mask := uint64(1<<d.level) - 1
		for k := range d.set {
			if k&mask != 0 {
				delete(d.set, k)
			}
		}
	}
}

func (d *distinctSketch) Estimate() int64 {
	return int64(len(d.set)) << d.level
}

// ---------------------------------------------------------------------------
// Collector

// colAcc accumulates one column's statistics.
type colAcc struct {
	min, max   any
	nullCount  int64
	totalWidth int64
	nonNull    int64
	distinct   *distinctSketch
}

func (c *colAcc) add(v any) {
	if v == nil {
		c.nullCount++
		return
	}
	c.nonNull++
	c.totalWidth += row.FlatSize(v)
	if c.min == nil || row.Compare(v, c.min) < 0 {
		c.min = v
	}
	if c.max == nil || row.Compare(v, c.max) > 0 {
		c.max = v
	}
	c.distinct.Add(row.HashValue(v))
}

func (c *colAcc) finish() *Column {
	col := &Column{
		Min:       c.min,
		Max:       c.max,
		NullCount: c.nullCount,
		NDV:       c.distinct.Estimate(),
	}
	if c.nonNull > 0 {
		col.AvgWidth = float64(c.totalWidth) / float64(c.nonNull)
	}
	return col
}

// Collector accumulates statistics for a fixed schema, fed either row by
// row (ANALYZE TABLE scans) or a column of values at a time (columnar
// cache builds). Not safe for concurrent use.
type Collector struct {
	names []string
	cols  []*colAcc
	rows  int64
}

// NewCollector builds a collector for a schema.
func NewCollector(schema types.StructType) *Collector {
	c := &Collector{
		names: make([]string, len(schema.Fields)),
		cols:  make([]*colAcc, len(schema.Fields)),
	}
	for i, f := range schema.Fields {
		c.names[i] = strings.ToLower(f.Name)
		c.cols[i] = &colAcc{distinct: newDistinctSketch()}
	}
	return c
}

// AddRow folds one row into every column accumulator.
func (c *Collector) AddRow(r row.Row) {
	c.rows++
	for i := range c.cols {
		if i < len(r) {
			c.cols[i].add(r[i])
		}
	}
}

// AddValues folds a slice of values into column i's accumulator without
// advancing the row count (the caller tracks rows once per batch via
// AddRowCount — columnar builds visit each column of a batch separately).
func (c *Collector) AddValues(i int, values []any) {
	for _, v := range values {
		c.cols[i].add(v)
	}
}

// AddRowCount advances the row count by n (used with AddValues).
func (c *Collector) AddRowCount(n int64) { c.rows += n }

// Finish produces the table statistics. sizeInBytes ≤ 0 derives the size
// from the accumulated value widths.
func (c *Collector) Finish(sizeInBytes int64) *Table {
	t := &Table{
		RowCount: c.rows,
		Columns:  make(map[string]*Column, len(c.cols)),
	}
	var width int64
	for i, a := range c.cols {
		col := a.finish()
		t.Columns[c.names[i]] = col
		width += a.totalWidth
	}
	if sizeInBytes > 0 {
		t.SizeInBytes = sizeInBytes
	} else {
		t.SizeInBytes = width
	}
	return t
}

// FromRows computes full statistics for a materialized row set — the
// ANALYZE TABLE path over arbitrary data sources.
func FromRows(schema types.StructType, rows []row.Row) *Table {
	c := NewCollector(schema)
	var size int64
	for _, r := range rows {
		c.AddRow(r)
		size += r.FlatSize()
	}
	return c.Finish(size)
}
