package stats

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/row"
	"repro/internal/types"
)

func testSchema() types.StructType {
	return types.StructType{Fields: []types.StructField{
		{Name: "id", Type: types.Long},
		{Name: "name", Type: types.String, Nullable: true},
	}}
}

func TestFromRows(t *testing.T) {
	var rows []row.Row
	for i := 0; i < 1000; i++ {
		var name any
		if i%10 == 0 {
			name = nil
		} else {
			name = fmt.Sprintf("name-%d", i%50)
		}
		rows = append(rows, row.Row{int64(i), name})
	}
	tab := FromRows(testSchema(), rows)
	if tab.RowCount != 1000 {
		t.Fatalf("RowCount = %d", tab.RowCount)
	}
	if tab.SizeInBytes <= 0 {
		t.Fatalf("SizeInBytes = %d", tab.SizeInBytes)
	}
	id := tab.Columns["id"]
	if id.Min != int64(0) || id.Max != int64(999) {
		t.Fatalf("id min/max = %v/%v", id.Min, id.Max)
	}
	if id.NDV != 1000 {
		t.Fatalf("id NDV = %d (exact expected below sketch bound)", id.NDV)
	}
	if id.NullCount != 0 {
		t.Fatalf("id nulls = %d", id.NullCount)
	}
	if id.AvgWidth != 8 {
		t.Fatalf("id avgWidth = %v", id.AvgWidth)
	}
	name := tab.Columns["name"]
	if name.NullCount != 100 {
		t.Fatalf("name nulls = %d", name.NullCount)
	}
	// 45 distinct non-null name values survive (name-0 only at multiples
	// of 10, which are all NULL... actually i%10==0 implies i%50 in
	// {0,10,20,30,40}; those remainders also occur at non-multiples of 10).
	if name.NDV < 45 || name.NDV > 50 {
		t.Fatalf("name NDV = %d", name.NDV)
	}
}

func TestSketchAccuracy(t *testing.T) {
	for _, n := range []int64{100, 10_000, 200_000} {
		d := newDistinctSketch()
		for i := int64(0); i < n; i++ {
			d.Add(row.HashValue(i))
		}
		est := d.Estimate()
		relErr := math.Abs(float64(est-n)) / float64(n)
		if n <= maxSketchSize {
			if est != n {
				t.Fatalf("n=%d est=%d (should be exact)", n, est)
			}
		} else if relErr > 0.10 {
			t.Fatalf("n=%d est=%d relErr=%.3f", n, est, relErr)
		}
	}
}

func TestCollectorColumnar(t *testing.T) {
	c := NewCollector(testSchema())
	c.AddValues(0, []any{int64(5), int64(1), nil})
	c.AddValues(1, []any{"b", "a", "b"})
	c.AddRowCount(3)
	tab := c.Finish(0)
	if tab.RowCount != 3 {
		t.Fatalf("RowCount = %d", tab.RowCount)
	}
	id := tab.Columns["id"]
	if id.Min != int64(1) || id.Max != int64(5) || id.NullCount != 1 || id.NDV != 2 {
		t.Fatalf("id stats = %+v", id)
	}
	name := tab.Columns["name"]
	if name.Min != "a" || name.Max != "b" || name.NDV != 2 {
		t.Fatalf("name stats = %+v", name)
	}
}
