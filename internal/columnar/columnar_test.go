package columnar

import (
	"math/rand"
	"testing"

	"repro/internal/row"
	"repro/internal/types"
)

func schemaAll() types.StructType {
	return types.StructType{}.
		Add("b", types.Boolean, true).
		Add("i", types.Int, true).
		Add("l", types.Long, true).
		Add("d", types.Double, true).
		Add("s", types.String, true)
}

func randomRows(rng *rand.Rand, n int) []row.Row {
	words := []string{"alpha", "beta", "gamma", "delta"}
	out := make([]row.Row, n)
	for i := range out {
		r := row.Row{
			rng.Intn(2) == 0,
			int32(rng.Intn(100)),
			int64(rng.Intn(1000)),
			rng.Float64(),
			words[rng.Intn(len(words))],
		}
		// Sprinkle NULLs.
		if rng.Intn(5) == 0 {
			r[rng.Intn(5)] = nil
		}
		out[i] = r
	}
	return out
}

// Property: building a table and scanning it back returns the input
// exactly, for random data, any batch size, and any pruning.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows := randomRows(rng, 1+rng.Intn(500))
		batch := 1 + rng.Intn(64)
		table := BuildTable(schemaAll(), [][]row.Row{rows}, batch)
		got := table.ScanPartition(0, nil, nil)
		if len(got) != len(rows) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(rows))
		}
		for i := range rows {
			for j := range rows[i] {
				if !row.Equal(got[i][j], rows[i][j]) {
					t.Fatalf("trial %d row %d col %d: %v != %v",
						trial, i, j, got[i][j], rows[i][j])
				}
			}
		}
		// Column pruning returns just the projected columns.
		pruned := table.ScanPartition(0, []int{4, 1}, nil)
		for i := range rows {
			if !row.Equal(pruned[i][0], rows[i][4]) || !row.Equal(pruned[i][1], rows[i][1]) {
				t.Fatalf("pruned scan wrong at %d: %v", i, pruned[i])
			}
		}
	}
}

func TestEncodingSelection(t *testing.T) {
	// Constant column -> RLE.
	constant := make([]row.Row, 1000)
	for i := range constant {
		constant[i] = row.Row{int32(7)}
	}
	table := BuildTable(types.StructType{}.Add("x", types.Int, false), [][]row.Row{constant}, 0)
	if enc := table.Encodings()[0]; enc != "RLE" {
		t.Errorf("constant column encoding = %s, want RLE", enc)
	}

	// Low-cardinality strings -> DICT.
	lowCard := make([]row.Row, 1000)
	for i := range lowCard {
		lowCard[i] = row.Row{[]string{"USA", "FRA", "DEU"}[i%3] + "-with-some-padding"}
	}
	table = BuildTable(types.StructType{}.Add("c", types.String, false), [][]row.Row{lowCard}, 0)
	if enc := table.Encodings()[0]; enc != "DICT" && enc != "RLE" {
		t.Errorf("low-cardinality encoding = %s", enc)
	}

	// Unique strings -> PLAIN.
	unique := make([]row.Row, 1000)
	for i := range unique {
		unique[i] = row.Row{string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i%7))}
	}
	table = BuildTable(types.StructType{}.Add("u", types.String, false), [][]row.Row{unique}, 0)
	_ = table.Encodings() // any encoding is fine; must round-trip
	got := table.ScanPartition(0, nil, nil)
	for i := range unique {
		if got[i][0] != unique[i][0] {
			t.Fatalf("unique strings mismatch at %d", i)
		}
	}

	// Booleans bit-pack.
	bools := make([]row.Row, 1000)
	for i := range bools {
		bools[i] = row.Row{i%3 == 0}
	}
	table = BuildTable(types.StructType{}.Add("f", types.Boolean, false), [][]row.Row{bools}, 0)
	if enc := table.Encodings()[0]; enc != "BITPACK" {
		t.Errorf("boolean encoding = %s", enc)
	}
}

func TestCompressionShrinksRepetitiveData(t *testing.T) {
	rows := make([]row.Row, 10_000)
	for i := range rows {
		rows[i] = row.Row{int32(i / 1000), "country-" + string(rune('A'+i%5))}
	}
	schema := types.StructType{}.Add("run", types.Int, false).Add("cc", types.String, false)
	table := BuildTable(schema, [][]row.Row{rows}, 0)
	var raw int64
	for _, r := range rows {
		raw += r.FlatSize()
	}
	if table.SizeBytes() >= raw/3 {
		t.Errorf("compressed %d bytes vs raw %d; want >3x", table.SizeBytes(), raw)
	}
	var boxed int64
	for _, r := range rows {
		boxed += r.ObjectSize()
	}
	if table.SizeBytes()*8 > boxed {
		t.Errorf("columnar %d vs boxed %d: want order-of-magnitude (paper §3.6)",
			table.SizeBytes(), boxed)
	}
}

func TestStatsAndBatchSkipping(t *testing.T) {
	// Two batches with disjoint ranges; a predicate on the second range
	// must skip the first batch.
	rows := make([]row.Row, 200)
	for i := range rows {
		rows[i] = row.Row{int32(i)}
	}
	schema := types.StructType{}.Add("x", types.Int, false)
	table := BuildTable(schema, [][]row.Row{rows}, 100)
	if len(table.Partitions[0]) != 2 {
		t.Fatalf("batches = %d", len(table.Partitions[0]))
	}
	b0 := table.Partitions[0][0].Stats[0]
	if b0.Min != int32(0) || b0.Max != int32(99) {
		t.Fatalf("batch0 stats = %+v", b0)
	}
	visited := 0
	keep := func(stats []ColStats) bool {
		visited++
		return row.Compare(stats[0].Max, int32(150)) >= 0
	}
	got := table.ScanPartition(0, nil, keep)
	if visited != 2 {
		t.Fatalf("predicate consulted %d times", visited)
	}
	if len(got) != 100 || got[0][0] != int32(100) {
		t.Fatalf("skipping wrong: %d rows, first %v", len(got), got[0])
	}
}

func TestNullCounts(t *testing.T) {
	rows := []row.Row{{int32(1)}, {nil}, {nil}, {int32(2)}}
	table := BuildTable(types.StructType{}.Add("x", types.Int, true), [][]row.Row{rows}, 0)
	s := table.Partitions[0][0].Stats[0]
	if s.NullCount != 2 || s.Min != int32(1) || s.Max != int32(2) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowCountAndSize(t *testing.T) {
	rows := randomRows(rand.New(rand.NewSource(1)), 123)
	table := BuildTable(schemaAll(), [][]row.Row{rows[:60], rows[60:]}, 50)
	if table.RowCount() != 123 {
		t.Fatalf("rowcount = %d", table.RowCount())
	}
	if table.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}
