// Package columnar implements the in-memory columnar cache (paper §3.6):
// cached DataFrames are stored column-wise with lightweight compression —
// dictionary encoding, run-length encoding and boolean bit-packing — which
// cuts the footprint by an order of magnitude versus boxed row objects, and
// keeps per-batch min/max statistics so scans can skip batches.
package columnar

import (
	"fmt"

	"repro/internal/row"
	"repro/internal/types"
)

// Column is an immutable encoded column of one batch.
type Column interface {
	// Len returns the number of values (including NULLs).
	Len() int
	// Get decodes the value at i (nil for NULL).
	Get(i int) any
	// SizeBytes is the encoded in-memory footprint.
	SizeBytes() int64
	// Encoding names the chosen encoding, for EXPLAIN and tests.
	Encoding() string
}

// validity is a null bitmap; nil means "no nulls".
type validity []uint64

func newValidity(n int) validity { return make(validity, (n+63)/64) }

func (v validity) set(i int)      { v[i/64] |= 1 << (uint(i) % 64) }
func (v validity) get(i int) bool { return v == nil || v[i/64]&(1<<(uint(i)%64)) != 0 }
func (v validity) sizeBytes() int64 {
	return int64(len(v)) * 8
}

// ---------------------------------------------------------------------------
// Plain typed columns

type longColumn struct {
	data  []int64
	valid validity
	width int // 4 for INT/DATE, 8 for BIGINT/TIMESTAMP
	out   func(int64) any
}

func (c *longColumn) Len() int { return len(c.data) }
func (c *longColumn) Get(i int) any {
	if !c.valid.get(i) {
		return nil
	}
	return c.out(c.data[i])
}
func (c *longColumn) SizeBytes() int64 {
	return int64(len(c.data)*c.width) + c.valid.sizeBytes()
}
func (c *longColumn) Encoding() string { return "PLAIN" }

type doubleColumn struct {
	data  []float64
	valid validity
}

func (c *doubleColumn) Len() int { return len(c.data) }
func (c *doubleColumn) Get(i int) any {
	if !c.valid.get(i) {
		return nil
	}
	return c.data[i]
}
func (c *doubleColumn) SizeBytes() int64 { return int64(len(c.data)*8) + c.valid.sizeBytes() }
func (c *doubleColumn) Encoding() string { return "PLAIN" }

type boolColumn struct {
	bits  []uint64
	valid validity
	n     int
}

func (c *boolColumn) Len() int { return c.n }
func (c *boolColumn) Get(i int) any {
	if !c.valid.get(i) {
		return nil
	}
	return c.bits[i/64]&(1<<(uint(i)%64)) != 0
}
func (c *boolColumn) SizeBytes() int64 { return int64(len(c.bits))*8 + c.valid.sizeBytes() }
func (c *boolColumn) Encoding() string { return "BITPACK" }

type stringColumn struct {
	offsets []int32
	bytes   []byte
	valid   validity
}

func (c *stringColumn) Len() int { return len(c.offsets) - 1 }
func (c *stringColumn) Get(i int) any {
	if !c.valid.get(i) {
		return nil
	}
	return string(c.bytes[c.offsets[i]:c.offsets[i+1]])
}
func (c *stringColumn) SizeBytes() int64 {
	return int64(len(c.bytes)) + int64(len(c.offsets)*4) + c.valid.sizeBytes()
}
func (c *stringColumn) Encoding() string { return "PLAIN" }

// ---------------------------------------------------------------------------
// Dictionary encoding (paper §3.6 names dictionary encoding explicitly)

type dictColumn struct {
	dict  []any   // distinct values
	codes []int32 // -1 for NULL
	// dictBytes is the footprint of the dictionary values.
	dictBytes int64
}

func (c *dictColumn) Len() int { return len(c.codes) }
func (c *dictColumn) Get(i int) any {
	code := c.codes[i]
	if code < 0 {
		return nil
	}
	return c.dict[code]
}
func (c *dictColumn) SizeBytes() int64 {
	codeWidth := int64(4)
	if len(c.dict) <= 1<<8 {
		codeWidth = 1
	} else if len(c.dict) <= 1<<16 {
		codeWidth = 2
	}
	return c.dictBytes + int64(len(c.codes))*codeWidth
}
func (c *dictColumn) Encoding() string { return "DICT" }

// ---------------------------------------------------------------------------
// Run-length encoding (paper §3.6 names run-length encoding explicitly)

type rleColumn struct {
	values []any // run value, nil for NULL runs
	ends   []int32
	bytes  int64 // footprint of run values
}

func (c *rleColumn) Len() int {
	if len(c.ends) == 0 {
		return 0
	}
	return int(c.ends[len(c.ends)-1])
}
func (c *rleColumn) Get(i int) any {
	// Binary search for the run containing i.
	lo, hi := 0, len(c.ends)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int32(i) < c.ends[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return c.values[lo]
}
func (c *rleColumn) SizeBytes() int64 { return c.bytes + int64(len(c.ends))*4 }
func (c *rleColumn) Encoding() string { return "RLE" }

// ---------------------------------------------------------------------------
// Boxed fallback for nested/user types

type boxedColumn struct {
	data []any
}

func (c *boxedColumn) Len() int      { return len(c.data) }
func (c *boxedColumn) Get(i int) any { return c.data[i] }
func (c *boxedColumn) SizeBytes() int64 {
	var s int64
	for _, v := range c.data {
		s += row.FlatSize(v) + 8
	}
	return s
}
func (c *boxedColumn) Encoding() string { return "BOXED" }

// ColStats are per-batch, per-column statistics used to skip batches whose
// value range cannot satisfy a predicate.
type ColStats struct {
	Min, Max  any // nil when untracked (non-ordered types) or all-NULL
	NullCount int
}

// typeWidth returns the packed width for fixed-width types.
func typeWidth(t types.DataType) int {
	switch {
	case t.Equals(types.Int), t.Equals(types.Date):
		return 4
	default:
		return 8
	}
}

func outConv(t types.DataType) func(int64) any {
	switch {
	case t.Equals(types.Int), t.Equals(types.Date):
		return func(v int64) any { return int32(v) }
	default:
		return func(v int64) any { return v }
	}
}

func fmtEncodingError(t types.DataType, v any) string {
	return fmt.Sprintf("columnar: value %T does not match column type %s", v, t.Name())
}
