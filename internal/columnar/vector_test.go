package columnar

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/row"
	"repro/internal/stats"
	"repro/internal/types"
)

// decodeCheck decodes every batch of a one-column table and asserts each
// vector agrees exactly with the row-at-a-time Get(i) path. It returns the
// set of encodings exercised, so tests can assert the intended encoding was
// actually chosen.
func decodeCheck(t *testing.T, dt types.DataType, rows []row.Row, batchSize int) map[string]bool {
	t.Helper()
	schema := types.StructType{}.Add("c", dt, true)
	table := BuildTable(schema, [][]row.Row{rows}, batchSize)
	encodings := map[string]bool{}
	base := 0
	for _, b := range table.Partitions[0] {
		col := b.Cols[0]
		encodings[col.Encoding()] = true
		v := DecodeColumn(col, dt)
		if v.Len() != b.NumRows {
			t.Fatalf("%s %s: vector len %d, want %d", dt, col.Encoding(), v.Len(), b.NumRows)
		}
		for i := 0; i < b.NumRows; i++ {
			want := col.Get(i)
			got := v.Get(i)
			if !row.Equal(got, want) {
				t.Fatalf("%s %s row %d: vector %v (%T), Get %v (%T)",
					dt, col.Encoding(), base+i, got, got, want, want)
			}
			if (want == nil) != v.IsNull(i) {
				t.Fatalf("%s %s row %d: IsNull=%v, Get=%v", dt, col.Encoding(), base+i, v.IsNull(i), want)
			}
		}
		base += b.NumRows
	}
	return encodings
}

func withNulls(rows []row.Row, every int) []row.Row {
	out := make([]row.Row, len(rows))
	for i, r := range rows {
		if i%every == 0 {
			out[i] = row.Row{nil}
		} else {
			out[i] = r
		}
	}
	return out
}

func TestDecodePlainLong(t *testing.T) {
	rows := make([]row.Row, 500)
	for i := range rows {
		rows[i] = row.Row{int64(i*7919 - 250)}
	}
	enc := decodeCheck(t, types.Long, rows, 128)
	if !enc["PLAIN"] {
		t.Fatalf("expected PLAIN, got %v", enc)
	}
	decodeCheck(t, types.Long, withNulls(rows, 5), 128)
}

func TestDecodePlainIntNarrow(t *testing.T) {
	rows := make([]row.Row, 300)
	for i := range rows {
		rows[i] = row.Row{int32(i * 31)}
	}
	decodeCheck(t, types.Int, rows, 64)
	decodeCheck(t, types.Int, withNulls(rows, 3), 64)
}

func TestDecodePlainDouble(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([]row.Row, 400)
	for i := range rows {
		rows[i] = row.Row{rng.NormFloat64()}
	}
	enc := decodeCheck(t, types.Double, rows, 100)
	if !enc["PLAIN"] {
		t.Fatalf("expected PLAIN, got %v", enc)
	}
	decodeCheck(t, types.Double, withNulls(rows, 4), 100)
}

func TestDecodeBitpackBool(t *testing.T) {
	rows := make([]row.Row, 333)
	for i := range rows {
		rows[i] = row.Row{i%3 == 0}
	}
	enc := decodeCheck(t, types.Boolean, rows, 70)
	if !enc["BITPACK"] {
		t.Fatalf("expected BITPACK, got %v", enc)
	}
	decodeCheck(t, types.Boolean, withNulls(rows, 7), 70)
}

func TestDecodeDictString(t *testing.T) {
	words := []string{"USA-padded-out", "FRA-padded-out", "DEU-padded-out", "JPN-padded-out"}
	rows := make([]row.Row, 1000)
	for i := range rows {
		rows[i] = row.Row{words[(i*13)%len(words)]}
	}
	enc := decodeCheck(t, types.String, rows, 0)
	if !enc["DICT"] {
		t.Fatalf("expected DICT, got %v", enc)
	}
	decodeCheck(t, types.String, withNulls(rows, 9), 0)
}

func TestDecodeDictLong(t *testing.T) {
	rows := make([]row.Row, 1000)
	for i := range rows {
		rows[i] = row.Row{int64((i * 7) % 5)}
	}
	enc := decodeCheck(t, types.Long, rows, 0)
	if !enc["DICT"] && !enc["RLE"] {
		t.Fatalf("expected compressed encoding, got %v", enc)
	}
	decodeCheck(t, types.Long, withNulls(rows, 6), 0)
}

func TestDecodeRLE(t *testing.T) {
	rows := make([]row.Row, 1000)
	for i := range rows {
		rows[i] = row.Row{int32(i / 200)} // long runs
	}
	enc := decodeCheck(t, types.Int, rows, 0)
	if !enc["RLE"] {
		t.Fatalf("expected RLE, got %v", enc)
	}
	// Runs of strings too.
	srows := make([]row.Row, 1000)
	for i := range srows {
		srows[i] = row.Row{"run-" + string(rune('A'+i/250))}
	}
	enc = decodeCheck(t, types.String, srows, 0)
	if !enc["RLE"] {
		t.Fatalf("expected string RLE, got %v", enc)
	}
}

func TestDecodeBoxedDecimal(t *testing.T) {
	dt := types.DecimalType{Precision: 10, Scale: 2}
	rows := make([]row.Row, 200)
	for i := range rows {
		rows[i] = row.Row{types.NewDecimal(int64(i*101), 2)}
	}
	enc := decodeCheck(t, dt, rows, 64)
	if !enc["BOXED"] && !enc["RLE"] && !enc["DICT"] {
		t.Fatalf("unexpected encodings %v", enc)
	}
	decodeCheck(t, dt, withNulls(rows, 4), 64)
}

func TestDecodeAllNullColumn(t *testing.T) {
	rows := make([]row.Row, 150)
	for i := range rows {
		rows[i] = row.Row{nil}
	}
	decodeCheck(t, types.Long, rows, 40)
	decodeCheck(t, types.String, rows, 40)
	decodeCheck(t, types.Boolean, rows, 40)
}

func TestDecodeEmptyBatch(t *testing.T) {
	schema := types.StructType{}.Add("c", types.Long, true)
	b := buildBatch(schema, nil, stats.NewCollector(schema))
	v := DecodeColumn(b.Cols[0], types.Long)
	if v.Len() != 0 {
		t.Fatalf("empty batch decoded to %d rows", v.Len())
	}
	vs := b.DecodeBatch([]types.DataType{types.Long}, []int{0})
	if len(vs) != 1 || vs[0].Len() != 0 {
		t.Fatalf("DecodeBatch on empty batch: %+v", vs)
	}
}

func TestDecodeBatchSkipsNegativeOrdinals(t *testing.T) {
	schema := types.StructType{}.
		Add("a", types.Int, true).
		Add("b", types.String, true)
	rows := []row.Row{{int32(1), "x"}, {int32(2), "y"}}
	b := buildBatch(schema, rows, stats.NewCollector(schema))
	vs := b.DecodeBatch([]types.DataType{types.Int, types.String}, []int{-1, 1})
	if vs[0] != nil {
		t.Fatal("ordinal -1 must not be decoded")
	}
	if vs[1] == nil || vs[1].Get(1) != "y" {
		t.Fatalf("ordinal 1 decoded wrong: %+v", vs[1])
	}
}

// Property test: random typed data through whatever encodings the builder
// picks must round-trip through the vector path identically.
func TestDecodeRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dts := []types.DataType{types.Int, types.Long, types.Double, types.String, types.Boolean, types.Date, types.Timestamp}
	gen := func(dt types.DataType) any {
		switch {
		case dt.Equals(types.Int), dt.Equals(types.Date):
			return int32(rng.Intn(50) - 25)
		case dt.Equals(types.Long), dt.Equals(types.Timestamp):
			return int64(rng.Intn(1000))
		case dt.Equals(types.Double):
			return rng.Float64()
		case dt.Equals(types.String):
			return "s" + string(rune('a'+rng.Intn(26)))
		default:
			return rng.Intn(2) == 0
		}
	}
	for trial := 0; trial < 30; trial++ {
		dt := dts[rng.Intn(len(dts))]
		n := rng.Intn(700)
		rows := make([]row.Row, n)
		for i := range rows {
			if rng.Intn(6) == 0 {
				rows[i] = row.Row{nil}
			} else {
				rows[i] = row.Row{gen(dt)}
			}
		}
		decodeCheck(t, dt, rows, 1+rng.Intn(300))
	}
}

// String vectors must round-trip every encoding with empty strings treated
// as real values, distinct from NULL.
func TestDecodeStringRoundTripEmptyAndNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows := make([]row.Row, 900)
	for i := range rows {
		switch rng.Intn(5) {
		case 0:
			rows[i] = row.Row{nil}
		case 1:
			rows[i] = row.Row{""} // empty string is NOT null
		default:
			rows[i] = row.Row{fmt.Sprintf("v%06d", rng.Intn(1<<16))}
		}
	}
	decodeCheck(t, types.String, rows, 128)
	// High-cardinality forces the uncompressed path; verify it too.
	plain := make([]row.Row, 600)
	for i := range plain {
		plain[i] = row.Row{fmt.Sprintf("unique-%09d", i*7919)}
	}
	enc := decodeCheck(t, types.String, plain, 200)
	if len(enc) == 0 {
		t.Fatal("no encodings exercised")
	}
	// All-empty column: every value present, none null.
	empties := make([]row.Row, 200)
	for i := range empties {
		empties[i] = row.Row{""}
	}
	decodeCheck(t, types.String, empties, 64)
}

// Date vectors round-trip as int32 days-since-epoch, including pre-epoch
// (negative) dates and NULLs, across plain and compressed encodings.
func TestDecodeDateRoundTrip(t *testing.T) {
	rows := make([]row.Row, 800)
	for i := range rows {
		rows[i] = row.Row{int32(i*37 - 12000)} // spans pre- and post-epoch
	}
	enc := decodeCheck(t, types.Date, rows, 100)
	if !enc["PLAIN"] {
		t.Fatalf("expected PLAIN dates, got %v", enc)
	}
	decodeCheck(t, types.Date, withNulls(rows, 4), 100)

	// Long runs of repeated dates compress; the vector path must agree.
	runs := make([]row.Row, 1000)
	for i := range runs {
		runs[i] = row.Row{int32(18000 + i/250)}
	}
	enc = decodeCheck(t, types.Date, runs, 0)
	if !enc["RLE"] && !enc["DICT"] {
		t.Fatalf("expected compressed dates, got %v", enc)
	}
	decodeCheck(t, types.Date, withNulls(runs, 6), 0)
}
