package columnar

import (
	"repro/internal/row"
	"repro/internal/types"
)

// buildColumn encodes one column of a batch, choosing the cheapest of the
// candidate encodings for the column's type and value distribution —
// adaptive per batch, like Spark SQL's in-memory columnar builders.
func buildColumn(t types.DataType, values []any) (Column, ColStats) {
	stats := computeStats(t, values)

	switch {
	case t.Equals(types.Boolean):
		return buildBool(values), stats

	case t.Equals(types.Int), t.Equals(types.Long), t.Equals(types.Date), t.Equals(types.Timestamp):
		plain := buildLong(t, values)
		if rle := tryRLE(values); rle != nil && rle.SizeBytes() < plain.SizeBytes() {
			return rle, stats
		}
		if dict := tryDict(values); dict != nil && dict.SizeBytes() < plain.SizeBytes() {
			return dict, stats
		}
		return plain, stats

	case t.Equals(types.Double), t.Equals(types.Float):
		return buildDouble(values), stats

	case t.Equals(types.String):
		plain := buildString(values)
		if rle := tryRLE(values); rle != nil && rle.SizeBytes() < plain.SizeBytes() {
			return rle, stats
		}
		if dict := tryDict(values); dict != nil && dict.SizeBytes() < plain.SizeBytes() {
			return dict, stats
		}
		return plain, stats

	default:
		// Decimals, nested and user types fall back to boxed storage.
		return &boxedColumn{data: values}, stats
	}
}

func computeStats(t types.DataType, values []any) ColStats {
	var s ColStats
	if !types.IsOrdered(t) {
		for _, v := range values {
			if v == nil {
				s.NullCount++
			}
		}
		return s
	}
	for _, v := range values {
		if v == nil {
			s.NullCount++
			continue
		}
		if s.Min == nil || row.Compare(v, s.Min) < 0 {
			s.Min = v
		}
		if s.Max == nil || row.Compare(v, s.Max) > 0 {
			s.Max = v
		}
	}
	return s
}

func buildValidity(values []any) validity {
	var v validity
	for i, x := range values {
		if x == nil {
			if v == nil {
				v = newValidity(len(values))
				for j := 0; j < i; j++ {
					v.set(j)
				}
			}
			continue
		}
		if v != nil {
			v.set(i)
		}
	}
	return v
}

func buildBool(values []any) Column {
	c := &boolColumn{bits: make([]uint64, (len(values)+63)/64), n: len(values), valid: buildValidity(values)}
	for i, v := range values {
		if v == true {
			c.bits[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return c
}

func buildLong(t types.DataType, values []any) Column {
	c := &longColumn{
		data:  make([]int64, len(values)),
		valid: buildValidity(values),
		width: typeWidth(t),
		out:   outConv(t),
	}
	for i, v := range values {
		switch x := v.(type) {
		case int32:
			c.data[i] = int64(x)
		case int64:
			c.data[i] = x
		case nil:
		default:
			panic(fmtEncodingError(t, v))
		}
	}
	return c
}

func buildDouble(values []any) Column {
	c := &doubleColumn{data: make([]float64, len(values)), valid: buildValidity(values)}
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			c.data[i] = x
		case float32:
			c.data[i] = float64(x)
		case nil:
		default:
			panic(fmtEncodingError(types.Double, v))
		}
	}
	return c
}

func buildString(values []any) Column {
	c := &stringColumn{offsets: make([]int32, 1, len(values)+1), valid: buildValidity(values)}
	for _, v := range values {
		if s, ok := v.(string); ok {
			c.bytes = append(c.bytes, s...)
		}
		c.offsets = append(c.offsets, int32(len(c.bytes)))
	}
	return c
}

// tryRLE builds a run-length column; it returns nil when runs don't
// compress (more than half as many runs as rows).
func tryRLE(values []any) Column {
	if len(values) == 0 {
		return nil
	}
	c := &rleColumn{}
	for i, v := range values {
		if i > 0 && row.Equal(v, c.values[len(c.values)-1]) {
			c.ends[len(c.ends)-1] = int32(i + 1)
			continue
		}
		c.values = append(c.values, v)
		c.ends = append(c.ends, int32(i+1))
		c.bytes += row.FlatSize(v)
	}
	if len(c.values)*2 > len(values) {
		return nil
	}
	return c
}

// tryDict builds a dictionary column; it returns nil when the column has
// too many distinct values to benefit.
func tryDict(values []any) Column {
	if len(values) == 0 {
		return nil
	}
	maxDict := len(values)/2 + 1
	index := make(map[string]int32, 64)
	c := &dictColumn{codes: make([]int32, len(values))}
	for i, v := range values {
		if v == nil {
			c.codes[i] = -1
			continue
		}
		key := row.GroupKey(row.New(v), []int{0})
		code, ok := index[key]
		if !ok {
			if len(c.dict) >= maxDict {
				return nil
			}
			code = int32(len(c.dict))
			c.dict = append(c.dict, v)
			c.dictBytes += row.FlatSize(v)
			index[key] = code
		}
		c.codes[i] = code
	}
	return c
}
