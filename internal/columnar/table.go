package columnar

import (
	"repro/internal/row"
	"repro/internal/stats"
	"repro/internal/types"
)

// DefaultBatchSize is the rows-per-batch granularity of the cache (and of
// batch-skipping statistics).
const DefaultBatchSize = 4096

// Batch is a horizontal slice of a cached partition stored column-wise.
type Batch struct {
	NumRows int
	Cols    []Column
	Stats   []ColStats
}

// SizeBytes is the batch's encoded footprint.
func (b *Batch) SizeBytes() int64 {
	var s int64
	for _, c := range b.Cols {
		s += c.SizeBytes()
	}
	return s
}

// Row materializes row i of the batch (all columns).
func (b *Batch) Row(i int) row.Row {
	r := make(row.Row, len(b.Cols))
	for j, c := range b.Cols {
		r[j] = c.Get(i)
	}
	return r
}

// RowPruned materializes row i restricted to the given column ordinals —
// the columnar win: untouched columns are never decoded.
func (b *Batch) RowPruned(i int, ordinals []int) row.Row {
	r := make(row.Row, len(ordinals))
	for j, ord := range ordinals {
		r[j] = b.Cols[ord].Get(i)
	}
	return r
}

// CachedTable is a cached DataFrame: per-partition batch lists.
type CachedTable struct {
	Schema     types.StructType
	Partitions [][]*Batch
	// Stats are table-level statistics (row count, size, per-column
	// min/max/NDV/null counts/widths) collected as a side effect of the
	// build — the cheap collection path of the cost-based optimizer.
	Stats *stats.Table
}

// BuildTable encodes partitioned rows into a cached table, collecting
// per-column statistics along the way (the column values are already in
// hand for encoding, so collection costs one extra pass per batch column).
func BuildTable(schema types.StructType, partitions [][]row.Row, batchSize int) *CachedTable {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	t := &CachedTable{Schema: schema, Partitions: make([][]*Batch, len(partitions))}
	acc := stats.NewCollector(schema)
	for p, rows := range partitions {
		for lo := 0; lo < len(rows); lo += batchSize {
			hi := min(lo+batchSize, len(rows))
			t.Partitions[p] = append(t.Partitions[p], buildBatch(schema, rows[lo:hi], acc))
		}
		if len(rows) == 0 {
			t.Partitions[p] = nil
		}
	}
	t.Stats = acc.Finish(t.SizeBytes())
	return t
}

func buildBatch(schema types.StructType, rows []row.Row, acc *stats.Collector) *Batch {
	b := &Batch{
		NumRows: len(rows),
		Cols:    make([]Column, len(schema.Fields)),
		Stats:   make([]ColStats, len(schema.Fields)),
	}
	acc.AddRowCount(int64(len(rows)))
	col := make([]any, len(rows))
	for j, f := range schema.Fields {
		for i, r := range rows {
			col[i] = r[j]
		}
		acc.AddValues(j, col)
		b.Cols[j], b.Stats[j] = buildColumn(f.Type, col)
	}
	return b
}

// SizeBytes is the whole table's encoded footprint.
func (t *CachedTable) SizeBytes() int64 {
	var s int64
	for _, part := range t.Partitions {
		for _, b := range part {
			s += b.SizeBytes()
		}
	}
	return s
}

// RowCount is the total number of cached rows.
func (t *CachedTable) RowCount() int64 {
	var n int64
	for _, part := range t.Partitions {
		for _, b := range part {
			n += int64(b.NumRows)
		}
	}
	return n
}

// BatchPredicate decides from column statistics whether a batch may contain
// matching rows; physical scans use it to skip batches.
type BatchPredicate func(stats []ColStats) bool

// ScanPartition materializes the rows of partition p, restricted to the
// given ordinals (nil = all columns) and skipping batches rejected by keep
// (nil = keep all).
func (t *CachedTable) ScanPartition(p int, ordinals []int, keep BatchPredicate) []row.Row {
	var out []row.Row
	for _, b := range t.Partitions[p] {
		if keep != nil && !keep(b.Stats) {
			continue
		}
		for i := 0; i < b.NumRows; i++ {
			if ordinals == nil {
				out = append(out, b.Row(i))
			} else {
				out = append(out, b.RowPruned(i, ordinals))
			}
		}
	}
	return out
}

// Encodings reports the encoding of each column in the first batch of the
// first non-empty partition — used by EXPLAIN output and tests.
func (t *CachedTable) Encodings() []string {
	for _, part := range t.Partitions {
		if len(part) > 0 {
			out := make([]string, len(part[0].Cols))
			for i, c := range part[0].Cols {
				out[i] = c.Encoding()
			}
			return out
		}
	}
	return nil
}
