package columnar

import (
	"fmt"

	"repro/internal/types"
)

// This file adds the batch-at-a-time side of the cache: a Vector is one
// column of a batch decoded ONCE into a typed Go slice (plus a null
// bitmap), so downstream kernels can run tight unboxed loops instead of
// calling Get(i) any per value. Decoding happens per batch, per referenced
// column; untouched columns are never decoded, preserving the columnar
// pruning win.

// VecKind is the physical representation of a Vector.
type VecKind uint8

const (
	// KindInt64 holds INT, BIGINT, DATE and TIMESTAMP values widened to
	// int64 (the same widening the scalar compiler uses for comparisons).
	KindInt64 VecKind = iota
	// KindFloat64 holds DOUBLE (and FLOAT, which the cache already stores
	// as float64).
	KindFloat64
	// KindString holds STRING values.
	KindString
	// KindBool holds BOOLEAN values.
	KindBool
	// KindAny is the boxed fallback for decimals, nested and user types.
	KindAny
)

// KindOf maps a SQL type to its vector representation.
func KindOf(t types.DataType) VecKind {
	switch {
	case t.Equals(types.Int), t.Equals(types.Long), t.Equals(types.Date), t.Equals(types.Timestamp):
		return KindInt64
	case t.Equals(types.Double), t.Equals(types.Float):
		return KindFloat64
	case t.Equals(types.String):
		return KindString
	case t.Equals(types.Boolean):
		return KindBool
	default:
		return KindAny
	}
}

// Vector is a typed, decoded column of one batch. Exactly one of the data
// slices (selected by Kind) is populated. Indexing is absolute within the
// batch: selection vectors skip rows without repacking the data.
type Vector struct {
	Kind VecKind
	// Type is the logical SQL type, needed to re-box values faithfully at
	// the pipeline boundary (INT and DATE box as int32, BIGINT as int64).
	Type types.DataType

	I64  []int64
	F64  []float64
	Str  []string
	Bool []bool
	Any  []any

	// nulls has a bit SET for NULL positions; nil means no nulls.
	nulls []uint64
	n     int
	// constant vectors hold one value at index 0 valid for every row.
	isConst bool
}

// NewVector allocates a mutable vector of n rows for the given type.
func NewVector(t types.DataType, n int) *Vector {
	v := &Vector{Kind: KindOf(t), Type: t, n: n}
	switch v.Kind {
	case KindInt64:
		v.I64 = make([]int64, n)
	case KindFloat64:
		v.F64 = make([]float64, n)
	case KindString:
		v.Str = make([]string, n)
	case KindBool:
		v.Bool = make([]bool, n)
	default:
		v.Any = make([]any, n)
	}
	return v
}

// NewAnyVector allocates a boxed vector of n rows regardless of the type's
// natural representation — the scalar-fallback path uses it to store the
// interpreter's values verbatim.
func NewAnyVector(t types.DataType, n int) *Vector {
	return &Vector{Kind: KindAny, Type: t, n: n, Any: make([]any, n)}
}

// NewConstVector builds a constant vector: one value (nil = NULL) repeated
// over n rows. Kernels read index i&Mask() so constants need no expansion.
func NewConstVector(t types.DataType, value any, n int) *Vector {
	v := &Vector{Kind: KindOf(t), Type: t, n: n, isConst: true}
	switch v.Kind {
	case KindInt64:
		v.I64 = make([]int64, 1)
	case KindFloat64:
		v.F64 = make([]float64, 1)
	case KindString:
		v.Str = make([]string, 1)
	case KindBool:
		v.Bool = make([]bool, 1)
	default:
		v.Any = make([]any, 1)
	}
	v.Set(0, value)
	if value == nil {
		// All rows are NULL: SetNull(0) marked position 0, and IsNull masks
		// every lookup to position 0 via the const flag.
		v.nulls = []uint64{1}
	}
	return v
}

// Len returns the row count.
func (v *Vector) Len() int { return v.n }

// IsConst reports whether the vector is a broadcast constant.
func (v *Vector) IsConst() bool { return v.isConst }

// Mask returns -1 for ordinary vectors and 0 for constants, so kernels can
// index data[i&Mask()] branch-free.
func (v *Vector) Mask() int {
	if v.isConst {
		return 0
	}
	return -1
}

// HasNulls reports whether any position is NULL.
func (v *Vector) HasNulls() bool { return v.nulls != nil }

// IsNull reports whether position i is NULL.
func (v *Vector) IsNull(i int) bool {
	if v.nulls == nil {
		return false
	}
	if v.isConst {
		i = 0
	}
	return v.nulls[i/64]&(1<<(uint(i)%64)) != 0
}

// SetNull marks position i NULL.
func (v *Vector) SetNull(i int) {
	if v.nulls == nil {
		size := v.n
		if v.isConst {
			size = 1
		}
		v.nulls = make([]uint64, (size+63)/64)
	}
	v.nulls[i/64] |= 1 << (uint(i) % 64)
}

// Set stores a boxed value (nil = NULL) at position i, converting to the
// vector's physical representation.
func (v *Vector) Set(i int, value any) {
	if value == nil {
		v.SetNull(i)
		return
	}
	switch v.Kind {
	case KindInt64:
		v.I64[i] = asInt64(value)
	case KindFloat64:
		v.F64[i] = asFloat64(value)
	case KindString:
		v.Str[i] = value.(string)
	case KindBool:
		v.Bool[i] = value.(bool)
	default:
		v.Any[i] = value
	}
}

// Get re-boxes the value at position i (nil for NULL), producing exactly
// the representation the row-at-a-time cache scan produces.
func (v *Vector) Get(i int) any {
	if v.IsNull(i) {
		return nil
	}
	if v.isConst {
		i = 0
	}
	switch v.Kind {
	case KindInt64:
		if narrowInt(v.Type) {
			return int32(v.I64[i])
		}
		return v.I64[i]
	case KindFloat64:
		return v.F64[i]
	case KindString:
		return v.Str[i]
	case KindBool:
		return v.Bool[i]
	default:
		return v.Any[i]
	}
}

// narrowInt reports whether the type boxes as int32.
func narrowInt(t types.DataType) bool {
	return t.Equals(types.Int) || t.Equals(types.Date)
}

func asInt64(v any) int64 {
	switch x := v.(type) {
	case int32:
		return int64(x)
	case int64:
		return x
	}
	panic(fmt.Sprintf("columnar: value %T is not an integer", v))
}

func asFloat64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	}
	panic(fmt.Sprintf("columnar: value %T is not a float", v))
}

// ---------------------------------------------------------------------------
// Typed batch accessors: decode a Column once into a Vector.

// DecodeColumn decodes an encoded column into a typed vector, with a fast
// path per encoding (plain slices are shared, dictionaries decode the
// dictionary once, runs expand linearly) and a generic Get(i) loop for
// anything else.
func DecodeColumn(c Column, t types.DataType) *Vector {
	kind := KindOf(t)
	switch col := c.(type) {
	case *longColumn:
		if kind == KindInt64 {
			v := &Vector{Kind: KindInt64, Type: t, I64: col.data, n: len(col.data)}
			v.nulls = invertValidity(col.valid)
			return v
		}
	case *doubleColumn:
		if kind == KindFloat64 {
			v := &Vector{Kind: KindFloat64, Type: t, F64: col.data, n: len(col.data)}
			v.nulls = invertValidity(col.valid)
			return v
		}
	case *stringColumn:
		if kind == KindString {
			n := col.Len()
			v := &Vector{Kind: KindString, Type: t, Str: make([]string, n), n: n}
			v.nulls = invertValidity(col.valid)
			for i := 0; i < n; i++ {
				if !v.IsNull(i) {
					v.Str[i] = string(col.bytes[col.offsets[i]:col.offsets[i+1]])
				}
			}
			return v
		}
	case *boolColumn:
		if kind == KindBool {
			v := &Vector{Kind: KindBool, Type: t, Bool: make([]bool, col.n), n: col.n}
			v.nulls = invertValidity(col.valid)
			for i := 0; i < col.n; i++ {
				v.Bool[i] = col.bits[i/64]&(1<<(uint(i)%64)) != 0
			}
			return v
		}
	case *dictColumn:
		return decodeDict(col, t, kind)
	case *rleColumn:
		return decodeRLE(col, t)
	}
	return decodeGeneric(c, t)
}

// decodeDict decodes the (small) dictionary once, then fills by code.
func decodeDict(c *dictColumn, t types.DataType, kind VecKind) *Vector {
	n := len(c.codes)
	v := NewVector(t, n)
	switch kind {
	case KindInt64:
		dict := make([]int64, len(c.dict))
		for i, d := range c.dict {
			dict[i] = asInt64(d)
		}
		for i, code := range c.codes {
			if code < 0 {
				v.SetNull(i)
				continue
			}
			v.I64[i] = dict[code]
		}
	case KindFloat64:
		dict := make([]float64, len(c.dict))
		for i, d := range c.dict {
			dict[i] = asFloat64(d)
		}
		for i, code := range c.codes {
			if code < 0 {
				v.SetNull(i)
				continue
			}
			v.F64[i] = dict[code]
		}
	case KindString:
		dict := make([]string, len(c.dict))
		for i, d := range c.dict {
			dict[i] = d.(string)
		}
		for i, code := range c.codes {
			if code < 0 {
				v.SetNull(i)
				continue
			}
			v.Str[i] = dict[code]
		}
	default:
		for i, code := range c.codes {
			if code < 0 {
				v.SetNull(i)
				continue
			}
			v.Set(i, c.dict[code])
		}
	}
	return v
}

// decodeRLE expands runs linearly — no per-row binary search.
func decodeRLE(c *rleColumn, t types.DataType) *Vector {
	v := NewVector(t, c.Len())
	start := 0
	for ri, end := range c.ends {
		val := c.values[ri]
		for i := start; i < int(end); i++ {
			v.Set(i, val)
		}
		start = int(end)
	}
	return v
}

// decodeGeneric is the catch-all: one Get per value (boxed columns, or any
// future Column implementation).
func decodeGeneric(c Column, t types.DataType) *Vector {
	n := c.Len()
	v := NewVector(t, n)
	for i := 0; i < n; i++ {
		v.Set(i, c.Get(i))
	}
	return v
}

// invertValidity converts a validity bitmap (bit set = valid, nil = no
// nulls) into a null bitmap (bit set = NULL, nil = no nulls). Trailing bits
// beyond the row count are garbage; accessors never index past Len.
func invertValidity(valid validity) []uint64 {
	if valid == nil {
		return nil
	}
	nulls := make([]uint64, len(valid))
	for i, w := range valid {
		nulls[i] = ^w
	}
	return nulls
}

// DecodeBatch decodes the given batch columns (by ordinal) into vectors.
// Ordinals with a negative value are skipped (nil vector) — callers pass
// -1 for columns no kernel references so they are never decoded.
func (b *Batch) DecodeBatch(schema []types.DataType, ordinals []int) []*Vector {
	out := make([]*Vector, len(ordinals))
	for j, ord := range ordinals {
		if ord < 0 {
			continue
		}
		out[j] = DecodeColumn(b.Cols[ord], schema[j])
	}
	return out
}
