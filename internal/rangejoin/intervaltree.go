// Package rangejoin reproduces the paper's §7.2 computational-genomics
// extension: a planner strategy that recognizes inequality joins describing
// interval overlap (a.start < b.start AND b.start < a.end) and executes
// them with a centered interval tree instead of the quadratic nested-loop
// fallback. The paper reports the ADAM project built this in ~100 lines of
// planner-rule code; this package is the equivalent Strategy plus the
// interval-tree substrate.
package rangejoin

import "sort"

// Interval carries a [Start, End) range and an opaque payload index.
type Interval struct {
	Start, End int64
	Payload    int
}

// Tree is a static centered interval tree supporting stabbing queries
// (all intervals containing a point) in O(log n + k).
type Tree struct {
	root *node
}

type node struct {
	center      int64
	left, right *node
	// Intervals crossing center, sorted by start asc and by end desc.
	byStart []Interval
	byEnd   []Interval
}

// Build constructs a tree from intervals.
func Build(intervals []Interval) *Tree {
	items := make([]Interval, len(intervals))
	copy(items, intervals)
	return &Tree{root: build(items)}
}

func build(items []Interval) *node {
	if len(items) == 0 {
		return nil
	}
	// Median of endpoints as center.
	points := make([]int64, 0, len(items)*2)
	for _, iv := range items {
		points = append(points, iv.Start, iv.End)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	center := points[len(points)/2]

	var lefts, rights, crossing []Interval
	for _, iv := range items {
		switch {
		case iv.End <= center:
			lefts = append(lefts, iv)
		case iv.Start > center:
			rights = append(rights, iv)
		default:
			crossing = append(crossing, iv)
		}
	}
	// Degenerate split (all on one side after choosing center): fall back
	// to holding everything at this node to guarantee termination.
	if len(crossing) == 0 && (len(lefts) == 0 || len(rights) == 0) {
		crossing = append(crossing, lefts...)
		crossing = append(crossing, rights...)
		lefts, rights = nil, nil
	}
	n := &node{center: center}
	n.byStart = append([]Interval(nil), crossing...)
	sort.Slice(n.byStart, func(i, j int) bool { return n.byStart[i].Start < n.byStart[j].Start })
	n.byEnd = append([]Interval(nil), crossing...)
	sort.Slice(n.byEnd, func(i, j int) bool { return n.byEnd[i].End > n.byEnd[j].End })
	n.left = build(lefts)
	n.right = build(rights)
	return n
}

// Stab appends to out all intervals iv with iv.Start <= p < iv.End
// (half-open containment) and returns the result.
func (t *Tree) Stab(p int64, out []Interval) []Interval {
	n := t.root
	for n != nil {
		if p <= n.center {
			// Crossing intervals with Start <= p match (their End > center >= p).
			for _, iv := range n.byStart {
				if iv.Start > p {
					break
				}
				if p < iv.End {
					out = append(out, iv)
				}
			}
			n = n.left
		} else {
			// Crossing intervals with End > p match (their Start <= center < p).
			for _, iv := range n.byEnd {
				if iv.End <= p {
					break
				}
				out = append(out, iv)
			}
			n = n.right
		}
	}
	return out
}

// StabStrict appends intervals with iv.Start < p < iv.End (strict
// containment, matching the paper's `a.start < b.start AND b.start <
// a.end` predicate).
func (t *Tree) StabStrict(p int64, out []Interval) []Interval {
	n := t.root
	for n != nil {
		if p <= n.center {
			for _, iv := range n.byStart {
				if iv.Start >= p {
					break
				}
				if p < iv.End {
					out = append(out, iv)
				}
			}
			n = n.left
		} else {
			for _, iv := range n.byEnd {
				if iv.End <= p {
					break
				}
				if iv.Start < p {
					out = append(out, iv)
				}
			}
			n = n.right
		}
	}
	return out
}
