package rangejoin

import (
	"math/rand"
	"testing"

	sparksql "repro"
)

// bruteStab is the oracle for interval tree queries.
func bruteStab(intervals []Interval, p int64, strict bool) map[int]bool {
	out := map[int]bool{}
	for _, iv := range intervals {
		if strict {
			if iv.Start < p && p < iv.End {
				out[iv.Payload] = true
			}
		} else {
			if iv.Start <= p && p < iv.End {
				out[iv.Payload] = true
			}
		}
	}
	return out
}

// Property: tree stabbing equals brute force for random intervals and
// probes, both strict and half-open.
func TestIntervalTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		intervals := make([]Interval, n)
		for i := range intervals {
			start := int64(rng.Intn(1000))
			intervals[i] = Interval{Start: start, End: start + 1 + int64(rng.Intn(100)), Payload: i}
		}
		tree := Build(intervals)
		for probe := 0; probe < 50; probe++ {
			p := int64(rng.Intn(1200)) - 50
			got := map[int]bool{}
			for _, iv := range tree.Stab(p, nil) {
				got[iv.Payload] = true
			}
			want := bruteStab(intervals, p, false)
			if len(got) != len(want) {
				t.Fatalf("trial %d p=%d: got %d hits, want %d", trial, p, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("trial %d p=%d: missing interval %d", trial, p, k)
				}
			}
			gotStrict := map[int]bool{}
			for _, iv := range tree.StabStrict(p, nil) {
				gotStrict[iv.Payload] = true
			}
			wantStrict := bruteStab(intervals, p, true)
			if len(gotStrict) != len(wantStrict) {
				t.Fatalf("trial %d p=%d strict: got %d, want %d", trial, p, len(gotStrict), len(wantStrict))
			}
		}
	}
}

func TestEmptyAndDegenerateTrees(t *testing.T) {
	if got := Build(nil).Stab(5, nil); len(got) != 0 {
		t.Fatal("empty tree")
	}
	// All-identical intervals (degenerate split path).
	same := make([]Interval, 50)
	for i := range same {
		same[i] = Interval{Start: 10, End: 20, Payload: i}
	}
	tree := Build(same)
	if got := tree.Stab(15, nil); len(got) != 50 {
		t.Fatalf("identical intervals: %d hits", len(got))
	}
	if got := tree.Stab(25, nil); len(got) != 0 {
		t.Fatal("out of range")
	}
}

func setupJoin(t *testing.T, withStrategy bool) *sparksql.DataFrame {
	t.Helper()
	ctx := sparksql.NewContext()
	if withStrategy {
		ctx.Engine().AddStrategy(Strategy())
	}
	type Gene struct {
		Start, End int64
		Name       string
	}
	type Pos struct {
		Start, End int64
		ID         int64
	}
	genes := []Gene{{0, 100, "g1"}, {50, 150, "g2"}, {200, 300, "g3"}}
	reads := []Pos{{10, 20, 1}, {60, 70, 2}, {120, 130, 3}, {500, 510, 4}}
	a, err := ctx.CreateDataFrameFromStructs(genes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.CreateDataFrameFromStructs(reads)
	if err != nil {
		t.Fatal(err)
	}
	a.RegisterTempTable("a")
	b.RegisterTempTable("b")
	// The paper's §7.2 range join.
	df, err := ctx.SQL(`
		SELECT * FROM a JOIN b
		ON a.Start < b.Start AND b.Start < a.End
		WHERE a.Start < a.End AND b.Start < b.End`)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestStrategyMatchesNestedLoop(t *testing.T) {
	nested, err := setupJoin(t, false).Collect()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := setupJoin(t, true).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(nested) != len(tree) {
		t.Fatalf("nested=%d tree=%d", len(nested), len(tree))
	}
	// Expected overlaps: g1∋(10,60), g2∋(60,120), g3: none strict... check count.
	if len(tree) != 4 { // (g1,1),(g1,2),(g2,2),(g2,3)
		t.Fatalf("overlaps = %d: %v", len(tree), tree)
	}
}

func TestStrategyClaimsPlan(t *testing.T) {
	df := setupJoin(t, true)
	explain, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(explain, "IntervalTreeJoin") {
		t.Fatalf("strategy did not claim the join:\n%s", explain)
	}
	// Without the strategy, the fallback is a nested loop.
	explain, err = setupJoin(t, false).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(explain, "NestedLoopJoin") {
		t.Fatalf("fallback should be nested loop:\n%s", explain)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
