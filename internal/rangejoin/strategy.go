package rangejoin

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
)

// Strategy returns a physical-planner strategy recognizing the interval
// overlap join shape:
//
//	SELECT * FROM a JOIN b
//	WHERE a.start < b.start AND b.start < a.end
//
// (the single-relation validity predicates a.start < a.end, b.start < b.end
// are pushed below the join by the optimizer before planning). Install it
// with engine.AddStrategy(rangejoin.Strategy()) — the paper's extension
// point: "researchers ... were able to build a special planning rule ...
// approximately 100 lines of code".
func Strategy() physical.Strategy {
	return func(pl *physical.Planner, lp plan.LogicalPlan) (physical.SparkPlan, bool, error) {
		j, ok := lp.(*plan.Join)
		if !ok || j.Type != plan.InnerJoin || j.Cond == nil {
			return nil, false, nil
		}
		m, ok := matchIntervalJoin(j)
		if !ok {
			return nil, false, nil
		}
		left, err := pl.Plan(j.Left)
		if err != nil {
			return nil, false, err
		}
		right, err := pl.Plan(j.Right)
		if err != nil {
			return nil, false, err
		}
		return &IntervalJoinExec{
			Left: left, Right: right,
			LeftStart: m.leftStart, LeftEnd: m.leftEnd, RightPoint: m.rightPoint,
			Residual: m.residual,
		}, true, nil
	}
}

// match captures the recognized pattern: left interval attrs and the right
// probe attribute.
type match struct {
	leftStart, leftEnd, rightPoint *expr.AttributeReference
	residual                       expr.Expression
}

// matchIntervalJoin looks for conjuncts {L.s < R.p, R.p < L.e} with L.s,
// L.e from the left side and R.p from the right (or the mirrored layout).
func matchIntervalJoin(j *plan.Join) (match, bool) {
	leftSet := plan.OutputSet(j.Left)
	rightSet := plan.OutputSet(j.Right)

	// Only strict < conjuncts participate in the recognized pattern (the
	// interval tree's StabStrict implements strict containment); anything
	// else stays in the residual.
	type ltPair struct{ lo, hi *expr.AttributeReference }
	var pairs []ltPair
	var rest []expr.Expression
	for _, c := range expr.SplitConjuncts(j.Cond) {
		cmp, ok := c.(*expr.Comparison)
		if !ok || cmp.Op != expr.OpLT {
			rest = append(rest, c)
			continue
		}
		lo, okL := cmp.Left.(*expr.AttributeReference)
		hi, okR := cmp.Right.(*expr.AttributeReference)
		if !okL || !okR {
			rest = append(rest, c)
			continue
		}
		pairs = append(pairs, ltPair{lo, hi})
	}
	side := func(a *expr.AttributeReference) int {
		switch {
		case leftSet.Contains(a.ID_):
			return 0
		case rightSet.Contains(a.ID_):
			return 1
		}
		return -1
	}
	// Find i, j such that pairs[i] = (L.s < R.p) and pairs[j] = (R.p < L.e).
	for i, p1 := range pairs {
		if side(p1.lo) != 0 || side(p1.hi) != 1 {
			continue
		}
		for k, p2 := range pairs {
			if k == i || side(p2.lo) != 1 || side(p2.hi) != 0 {
				continue
			}
			if p2.lo.ID_ != p1.hi.ID_ {
				continue
			}
			// Remaining pairs join the residual.
			residual := rest
			for q, p := range pairs {
				if q != i && q != k {
					residual = append(residual, expr.LT(p.lo, p.hi))
				}
			}
			return match{
				leftStart:  p1.lo,
				leftEnd:    p2.hi,
				rightPoint: p1.hi,
				residual:   expr.JoinConjuncts(residual),
			}, true
		}
	}
	return match{}, false
}

// IntervalJoinExec builds an interval tree over the left (interval) side
// and stabs it with each right (point) row.
type IntervalJoinExec struct {
	physical.PlanEstimate
	Left, Right                    physical.SparkPlan
	LeftStart, LeftEnd, RightPoint *expr.AttributeReference
	Residual                       expr.Expression
}

// Children implements physical.SparkPlan.
func (e *IntervalJoinExec) Children() []physical.SparkPlan {
	return []physical.SparkPlan{e.Left, e.Right}
}

// WithNewChildren implements physical.SparkPlan.
func (e *IntervalJoinExec) WithNewChildren(children []physical.SparkPlan) physical.SparkPlan {
	c := *e
	c.Left, c.Right = children[0], children[1]
	return &c
}

// Output implements physical.SparkPlan (inner join: left ++ right).
func (e *IntervalJoinExec) Output() []*expr.AttributeReference {
	out := append([]*expr.AttributeReference{}, e.Left.Output()...)
	return append(out, e.Right.Output()...)
}

// SimpleString implements physical.SparkPlan.
func (e *IntervalJoinExec) SimpleString() string {
	return fmt.Sprintf("IntervalTreeJoin [%s,%s) contains %s", e.LeftStart, e.LeftEnd, e.RightPoint)
}

// String implements physical.SparkPlan.
func (e *IntervalJoinExec) String() string { return physical.Format(e) }

// Execute implements physical.SparkPlan.
func (e *IntervalJoinExec) Execute(ctx *physical.ExecContext) *rdd.RDD[row.Row] {
	leftOut := e.Left.Output()
	startEval := expr.MustBind(e.LeftStart, leftOut)
	endEval := expr.MustBind(e.LeftEnd, leftOut)
	pointEval := expr.MustBind(e.RightPoint, e.Right.Output())

	// The build side materializes lazily, as a nested job inside the first
	// probe task, so build failures and cancellation propagate through the
	// task path instead of panicking at plan-build time.
	buildSide := e.Left.Execute(ctx)
	type builtTree struct {
		tree *Tree
		rows []row.Row
	}
	var buildOnce sync.Once
	var built builtTree
	var buildErr error
	load := func(jc context.Context) (builtTree, error) {
		buildOnce.Do(func() {
			leftRows, err := buildSide.CollectContext(jc)
			if err != nil {
				buildErr = err
				return
			}
			intervals := make([]Interval, 0, len(leftRows))
			for i, r := range leftRows {
				s, en := startEval.Eval(r), endEval.Eval(r)
				if s == nil || en == nil {
					continue
				}
				intervals = append(intervals, Interval{Start: asLong(s), End: asLong(en), Payload: i})
			}
			built = builtTree{tree: Build(intervals), rows: leftRows}
		})
		return built, buildErr
	}

	var residual func(l, r row.Row) bool
	if e.Residual != nil {
		input := append(append([]*expr.AttributeReference{}, leftOut...), e.Right.Output()...)
		pred := expr.MustBind(e.Residual, input)
		nl := len(leftOut)
		residual = func(l, r row.Row) bool {
			joined := make(row.Row, nl+len(r))
			copy(joined, l)
			copy(joined[nl:], r)
			return pred.Eval(joined) == true
		}
	}

	return rdd.MapPartitionsCtx(e.Right.Execute(ctx), func(jc context.Context, _ int, in []row.Row) ([]row.Row, error) {
		b, err := load(jc)
		if err != nil {
			return nil, err
		}
		var out []row.Row
		var hits []Interval
		for _, r := range in {
			p := pointEval.Eval(r)
			if p == nil {
				continue
			}
			hits = b.tree.StabStrict(asLong(p), hits[:0])
			for _, h := range hits {
				l := b.rows[h.Payload]
				if residual != nil && !residual(l, r) {
					continue
				}
				joined := make(row.Row, len(l)+len(r))
				copy(joined, l)
				copy(joined[len(l):], r)
				out = append(out, joined)
			}
		}
		return out, nil
	})
}

func asLong(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int32:
		return int64(x)
	}
	panic(fmt.Sprintf("rangejoin: interval bounds must be integers, got %T", v))
}
