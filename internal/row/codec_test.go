package row

import (
	"math"
	"testing"

	"repro/internal/types"
)

func TestCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{nil, true, false, int32(-7), int64(1 << 40), float32(1.5), 2.25, "héllo\x00world", types.Decimal{Unscaled: -12345, Scale: 2}},
		{[]byte{0, 1, 2}, Row{int32(1), nil, "nested"}, []any{int64(9), "x", nil}},
		{math.NaN(), math.Inf(1), float32(math.Inf(-1)), ""},
		{},
	}
	b, err := EncodeRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRows(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if len(got[i]) != len(rows[i]) {
			t.Fatalf("row %d: %d fields, want %d", i, len(got[i]), len(rows[i]))
		}
		for j := range rows[i] {
			if !Equal(got[i][j], rows[i][j]) {
				t.Fatalf("row %d field %d: %v (%T) != %v (%T)",
					i, j, got[i][j], got[i][j], rows[i][j], rows[i][j])
			}
		}
	}
	// Dynamic types must survive exactly (int32 stays int32, etc.).
	if _, ok := got[0][3].(int32); !ok {
		t.Fatalf("int32 decoded as %T", got[0][3])
	}
	if _, ok := got[0][5].(float32); !ok {
		t.Fatalf("float32 decoded as %T", got[0][5])
	}
	if !math.IsNaN(got[2][0].(float64)) {
		t.Fatal("NaN did not survive the round trip")
	}
}

func TestCodecRejectsUnsupported(t *testing.T) {
	if _, err := EncodeRows([]Row{{map[any]any{}}}); err == nil {
		t.Fatal("expected error for map value")
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	b, err := EncodeRows([]Row{{int64(1), "abc"}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeRows(b[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodeRows(append(b, 0xFF)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
}
