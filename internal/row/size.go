package row

import "repro/internal/types"

// This file models the in-memory footprint of data under the two storage
// regimes the paper contrasts in §3.6: "JVM objects" (Spark's native cache,
// one boxed object per value plus per-record object headers) versus the
// columnar cache (packed primitives with compression). The object model is
// deliberately JVM-like — 16-byte object headers, 8-byte references — so the
// "order of magnitude" footprint comparison has the same shape as the
// paper's claim.

const (
	objectHeader = 16 // JVM object header bytes
	reference    = 8  // pointer/reference size
	arrayHeader  = 20 // array object header + length
)

// ObjectSize estimates the bytes a value occupies when stored as a boxed
// object graph (the "native Spark cache" model).
func ObjectSize(v any) int64 {
	switch x := v.(type) {
	case nil:
		return reference
	case bool:
		return objectHeader + 1
	case int32:
		return objectHeader + 4
	case int64:
		return objectHeader + 8
	case float32:
		return objectHeader + 4
	case float64:
		return objectHeader + 8
	case string:
		// String object + char array (JVM chars are 2 bytes pre-compact-strings).
		return objectHeader + reference + arrayHeader + 2*int64(len(x))
	case types.Decimal:
		return objectHeader + 12
	case []byte:
		return arrayHeader + int64(len(x))
	case Row:
		return x.ObjectSize()
	case []any:
		s := int64(arrayHeader)
		for _, e := range x {
			s += reference + ObjectSize(e)
		}
		return s
	default:
		return objectHeader + 8
	}
}

// ObjectSize estimates the boxed footprint of a whole row: an object array
// of references to boxed field values.
func (r Row) ObjectSize() int64 {
	s := int64(objectHeader + arrayHeader)
	for _, v := range r {
		s += reference + ObjectSize(v)
	}
	return s
}

// FlatSize estimates the bytes of raw data in the row — what a packed
// columnar layout stores before compression. Used for table statistics
// (sizeInBytes) feeding the cost-based broadcast join choice (§4.3.3).
func FlatSize(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 1
	case bool:
		return 1
	case int32:
		return 4
	case int64:
		return 8
	case float32:
		return 4
	case float64:
		return 8
	case string:
		return 4 + int64(len(x))
	case types.Decimal:
		return 12
	case []byte:
		return 4 + int64(len(x))
	case Row:
		var s int64
		for _, e := range x {
			s += FlatSize(e)
		}
		return s
	case []any:
		s := int64(4)
		for _, e := range x {
			s += FlatSize(e)
		}
		return s
	default:
		return 8
	}
}

// FlatSize of a whole row.
func (r Row) FlatSize() int64 {
	var s int64
	for _, v := range r {
		s += FlatSize(v)
	}
	return s
}
