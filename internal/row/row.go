// Package row implements the Row value representation flowing through the
// engine: a positional tuple of Go values whose dynamic types correspond to
// the Spark SQL data model (paper §3.1 footnote 2 — Rows are a view; the
// storage format underneath may be columnar).
//
// Value mapping: BOOLEAN→bool, INT→int32, BIGINT→int64, FLOAT→float32,
// DOUBLE→float64, STRING→string, DECIMAL→types.Decimal, DATE→int32 (days
// since epoch), TIMESTAMP→int64 (µs since epoch), BINARY→[]byte,
// ARRAY→[]any, MAP→map[any]any, STRUCT→Row. SQL NULL is Go nil.
package row

import (
	"bytes"
	"fmt"
	"hash/maphash"
	"math"
	"strings"

	"repro/internal/types"
)

// Row is a positional tuple. The zero value is an empty row.
type Row []any

// New builds a row from values.
func New(values ...any) Row { return Row(values) }

// Copy returns a fresh row sharing no backing array with r.
func (r Row) Copy() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// IsNullAt reports whether field i is SQL NULL.
func (r Row) IsNullAt(i int) bool { return r[i] == nil }

// Bool returns field i as a bool; it panics if the field is NULL or not a
// BOOLEAN, like Spark's typed Row accessors.
func (r Row) Bool(i int) bool { return r[i].(bool) }

// Int returns field i as an int32.
func (r Row) Int(i int) int32 { return r[i].(int32) }

// Long returns field i as an int64.
func (r Row) Long(i int) int64 { return r[i].(int64) }

// Double returns field i as a float64.
func (r Row) Double(i int) float64 { return r[i].(float64) }

// Str returns field i as a string.
func (r Row) Str(i int) string { return r[i].(string) }

// Decimal returns field i as a types.Decimal.
func (r Row) Decimal(i int) types.Decimal { return r[i].(types.Decimal) }

// Struct returns field i as a nested Row.
func (r Row) Struct(i int) Row { return r[i].(Row) }

// Array returns field i as a []any.
func (r Row) Array(i int) []any { return r[i].([]any) }

func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = FormatValue(v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// FormatValue renders a single SQL value for display.
func FormatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case Row:
		return x.String()
	case []any:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = FormatValue(e)
		}
		return "[" + strings.Join(parts, ",") + "]"
	default:
		return fmt.Sprint(v)
	}
}

// Equal reports deep equality of two SQL values (NULL equals NULL here;
// expression-level three-valued logic is handled in the expression layer).
func Equal(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case Row:
		y, ok := b.(Row)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case types.Decimal:
		y, ok := b.(types.Decimal)
		return ok && x.Cmp(y) == 0
	case []byte:
		y, ok := b.([]byte)
		return ok && bytes.Equal(x, y)
	case float64:
		// Spark SQL semantics: NaN equals NaN.
		y, ok := b.(float64)
		return ok && (x == y || (math.IsNaN(x) && math.IsNaN(y)))
	case float32:
		y, ok := b.(float32)
		return ok && (x == y || (math.IsNaN(float64(x)) && math.IsNaN(float64(y))))
	default:
		return a == b
	}
}

// Compare orders two non-NULL SQL values of the same type: -1, 0 or 1.
// NULLs sort first (SQL default NULLS FIRST for ascending order).
func Compare(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch x := a.(type) {
	case bool:
		y := b.(bool)
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	case int32:
		return cmpOrdered(x, b.(int32))
	case int64:
		return cmpOrdered(x, b.(int64))
	case float32:
		return cmpFloatNaN(float64(x), float64(b.(float32)))
	case float64:
		return cmpFloatNaN(x, b.(float64))
	case string:
		return strings.Compare(x, b.(string))
	case types.Decimal:
		return x.Cmp(b.(types.Decimal))
	case Row:
		y := b.(Row)
		for i := 0; i < len(x) && i < len(y); i++ {
			if c := Compare(x[i], y[i]); c != 0 {
				return c
			}
		}
		return cmpOrdered(len(x), len(y))
	default:
		panic(fmt.Sprintf("row: unorderable value of type %T", a))
	}
}

// cmpFloatNaN orders doubles with Spark SQL's convention: NaN is greater
// than every other value and equal to itself.
func cmpFloatNaN(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpOrdered[T int | int32 | int64 | float32 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

var hashSeed = maphash.MakeSeed()

// Hash computes a hash of a projection of the row (the fields at ordinals),
// consistent with Equal: used by hash aggregation, hash joins and the
// shuffle partitioner.
func Hash(r Row, ordinals []int) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	for _, i := range ordinals {
		hashValue(&h, r[i])
	}
	return h.Sum64()
}

// HashValue hashes a single SQL value.
func HashValue(v any) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	hashValue(&h, v)
	return h.Sum64()
}

func hashValue(h *maphash.Hash, v any) {
	switch x := v.(type) {
	case nil:
		h.WriteByte(0)
	case bool:
		if x {
			h.WriteByte(2)
		} else {
			h.WriteByte(1)
		}
	case int32:
		writeU64(h, 3, uint64(int64(x)))
	case int64:
		writeU64(h, 3, uint64(x)) // int32/int64 of equal value hash alike
	case float32:
		writeU64(h, 4, math.Float64bits(float64(x)))
	case float64:
		writeU64(h, 4, math.Float64bits(x))
	case string:
		h.WriteByte(5)
		h.WriteString(x)
	case types.Decimal:
		n := x.Rescale(x.Scale) // normalize? scale is identity; hash fields
		writeU64(h, 6, uint64(n.Unscaled))
		writeU64(h, 6, uint64(int64(n.Scale)))
	case []byte:
		h.WriteByte(7)
		h.Write(x)
	case Row:
		h.WriteByte(8)
		for _, e := range x {
			hashValue(h, e)
		}
	case []any:
		h.WriteByte(9)
		for _, e := range x {
			hashValue(h, e)
		}
	default:
		panic(fmt.Sprintf("row: unhashable value of type %T", v))
	}
}

func writeU64(h *maphash.Hash, tag byte, u uint64) {
	var buf [9]byte
	buf[0] = tag
	for i := 0; i < 8; i++ {
		buf[i+1] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// GroupKey renders the projected fields as a comparable key string for use
// in Go maps (composite grouping keys). It is injective for the supported
// atomic types.
func GroupKey(r Row, ordinals []int) string {
	var sb strings.Builder
	for _, i := range ordinals {
		appendKeyValue(&sb, r[i])
	}
	return sb.String()
}

func appendKeyValue(sb *strings.Builder, v any) {
	switch x := v.(type) {
	case nil:
		sb.WriteByte(0)
	case bool:
		if x {
			sb.WriteString("\x01t")
		} else {
			sb.WriteString("\x01f")
		}
	case int32:
		appendU64(sb, 2, uint64(int64(x)))
	case int64:
		appendU64(sb, 2, uint64(x))
	case float32:
		appendU64(sb, 3, math.Float64bits(float64(x)))
	case float64:
		appendU64(sb, 3, math.Float64bits(x))
	case string:
		sb.WriteByte(4)
		appendU64(sb, 4, uint64(len(x)))
		sb.WriteString(x)
	case types.Decimal:
		appendU64(sb, 5, uint64(x.Unscaled))
		appendU64(sb, 5, uint64(int64(x.Scale)))
	case Row:
		sb.WriteByte(6)
		for _, e := range x {
			appendKeyValue(sb, e)
		}
		sb.WriteByte(7)
	case []any:
		sb.WriteByte(8)
		for _, e := range x {
			appendKeyValue(sb, e)
		}
		sb.WriteByte(9)
	default:
		panic(fmt.Sprintf("row: ungroupable value of type %T", v))
	}
}

func appendU64(sb *strings.Builder, tag byte, u uint64) {
	sb.WriteByte(tag)
	for i := 0; i < 8; i++ {
		sb.WriteByte(byte(u >> (8 * i)))
	}
}
