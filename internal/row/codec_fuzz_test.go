package row

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/types"
)

func mustEncode(t *testing.T, rows []Row) []byte {
	t.Helper()
	b, err := EncodeRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func corpusRows() []Row {
	return []Row{
		{int64(1), "alpha", 3.25, true, nil},
		{int32(-7), types.Decimal{Unscaled: 12345, Scale: 2}, []byte{0xde, 0xad}},
		{[]any{int64(1), "nested", nil}, Row{int64(2), false}},
		{},
	}
}

// Every truncation of a valid block must error, never panic.
func TestDecodeRowsTruncation(t *testing.T) {
	full := mustEncode(t, corpusRows())
	for n := 0; n < len(full); n++ {
		if _, err := DecodeRows(full[:n]); err == nil {
			t.Fatalf("truncated block at %d/%d bytes decoded without error", n, len(full))
		}
	}
}

// Oversized length claims must error before allocating: a block whose
// header claims 2^40 rows (or a string of 2^40 bytes) on a tiny buffer
// must be rejected by the remaining-bytes guard, not trigger a giant make.
func TestDecodeRowsOversizedClaims(t *testing.T) {
	cases := map[string][]byte{
		"row count":    binary.AppendUvarint(nil, 1<<40),
		"string len":   append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), uint64(tagRow))[:1], append([]byte{tagRow, 1, tagString}, binary.AppendUvarint(nil, 1<<40)...)...),
		"bytes len":    append([]byte{1, tagRow, 1, tagBytes}, binary.AppendUvarint(nil, 1<<40)...),
		"row elems":    append([]byte{1, tagRow}, binary.AppendUvarint(nil, 1<<40)...),
		"list elems":   append([]byte{1, tagRow, 1, tagList}, binary.AppendUvarint(nil, 1<<40)...),
		"negative int": append([]byte{1, tagRow, 1, tagString}, binary.AppendUvarint(nil, 1<<63)...),
	}
	for name, blk := range cases {
		if _, err := DecodeRows(blk); err == nil {
			t.Fatalf("%s: oversized claim decoded without error", name)
		} else if !strings.Contains(err.Error(), "decode") {
			t.Fatalf("%s: unexpected error %v", name, err)
		}
	}
}

// Single-bit flips anywhere in a block must decode to an error or to a
// well-formed (if wrong) value — never panic. (On the wire the frame CRC
// rejects flips before decoding; this covers blocks read from spill files
// or a buggy peer that bypass framing.)
func TestDecodeRowsBitFlips(t *testing.T) {
	full := mustEncode(t, corpusRows())
	for i := range full {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), full...)
			flipped[i] ^= 1 << bit
			DecodeRows(flipped) // must not panic; error or garbage both fine
		}
	}
}

// FuzzDecodeRows: arbitrary bytes must never panic the decoder, and
// anything that decodes must re-encode and decode to the same shape.
func FuzzDecodeRows(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	var t0 testing.T
	f.Add(mustEncode(&t0, corpusRows()))
	f.Add(binary.AppendUvarint(nil, 1<<40))
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeRows(data)
		if err != nil {
			return
		}
		re, err := EncodeRows(rows)
		if err != nil {
			t.Fatalf("decoded rows failed to re-encode: %v", err)
		}
		again, err := DecodeRows(re)
		if err != nil {
			t.Fatalf("re-encoded block failed to decode: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("row count changed across round trip: %d vs %d", len(rows), len(again))
		}
	})
}
