package row

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestAccessors(t *testing.T) {
	r := New("s", int32(1), int64(2), 3.5, true, types.NewDecimal(150, 2))
	if r.Str(0) != "s" || r.Int(1) != 1 || r.Long(2) != 2 || r.Double(3) != 3.5 || !r.Bool(4) {
		t.Errorf("accessors wrong: %v", r)
	}
	if r.Decimal(5).String() != "1.50" {
		t.Errorf("decimal accessor: %v", r.Decimal(5))
	}
	if r.IsNullAt(0) {
		t.Error("non-null field")
	}
	r2 := New(nil)
	if !r2.IsNullAt(0) {
		t.Error("nil is NULL")
	}
}

func TestCopyIndependence(t *testing.T) {
	r := New(int32(1), "x")
	c := r.Copy()
	c[0] = int32(99)
	if r.Int(0) != 1 {
		t.Error("Copy must not share storage")
	}
}

func TestEqualDeep(t *testing.T) {
	cases := []struct {
		a, b any
		want bool
	}{
		{nil, nil, true},
		{nil, int32(0), false},
		{int32(1), int32(1), true},
		{int32(1), int64(1), false}, // different types never equal
		{"a", "a", true},
		{Row{int32(1), "x"}, Row{int32(1), "x"}, true},
		{Row{int32(1)}, Row{int32(2)}, false},
		{[]any{int32(1), nil}, []any{int32(1), nil}, true},
		{[]any{int32(1)}, []any{int32(1), int32(2)}, false},
		{types.NewDecimal(10, 1), types.NewDecimal(100, 2), true}, // 1.0 == 1.00
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{int32(1), int32(2), -1},
		{int64(5), int64(5), 0},
		{2.5, 1.0, 1},
		{"a", "b", -1},
		{false, true, -1},
		{nil, int32(1), -1}, // NULLs first
		{int32(1), nil, 1},
		{types.NewDecimal(99, 2), types.NewDecimal(1, 0), -1},
		{Row{int32(1), "a"}, Row{int32(1), "b"}, -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		return (Compare(a, b) == 0) == Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: equal rows hash equal and produce equal group keys; int32 and
// int64 of the same value hash alike (cross-width join keys).
func TestHashGroupKeyConsistency(t *testing.T) {
	f := func(a int64, s string, b bool) bool {
		r1 := Row{a, s, b}
		r2 := Row{a, s, b}
		ords := []int{0, 1, 2}
		return Hash(r1, ords) == Hash(r2, ords) && GroupKey(r1, ords) == GroupKey(r2, ords)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if HashValue(int32(42)) != HashValue(int64(42)) {
		t.Error("int32/int64 of equal value must hash alike")
	}
}

// Property: GroupKey is injective on sampled random rows (collisions would
// corrupt aggregation).
func TestGroupKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[string]Row{}
	ords := []int{0, 1, 2}
	for i := 0; i < 5000; i++ {
		r := Row{
			int32(rng.Intn(50)),
			string(rune('a' + rng.Intn(26))),
			[]any{int64(rng.Intn(10))},
		}
		k := GroupKey(r, ords)
		if prev, ok := seen[k]; ok {
			if !Equal(prev[0], r[0]) || !Equal(prev[1], r[1]) || !Equal(prev[2], r[2]) {
				t.Fatalf("GroupKey collision: %v vs %v", prev, r)
			}
		}
		seen[k] = r
	}
}

func TestGroupKeyStringBoundaries(t *testing.T) {
	// Adjacent strings must not produce the same key through length
	// ambiguity: ("ab","c") vs ("a","bc").
	a := GroupKey(Row{"ab", "c"}, []int{0, 1})
	b := GroupKey(Row{"a", "bc"}, []int{0, 1})
	if a == b {
		t.Error("group keys must encode string boundaries")
	}
}

func TestSizes(t *testing.T) {
	r := Row{int32(1), "hello", nil, 2.5}
	if r.FlatSize() <= 0 || r.ObjectSize() <= 0 {
		t.Error("sizes must be positive")
	}
	if r.ObjectSize() <= r.FlatSize() {
		t.Error("boxed object model must cost more than flat data")
	}
	// Strings dominate flat size.
	long := Row{string(make([]byte, 1000))}
	if long.FlatSize() < 1000 {
		t.Error("flat size must include string bytes")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    any
		want string
	}{
		{nil, "NULL"},
		{int32(5), "5"},
		{"x", "x"},
		{Row{int32(1), "a"}, "[1,a]"},
		{[]any{int32(1), nil}, "[1,NULL]"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
