package row

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// Spill codec: a compact tagged binary encoding of rows, used by the
// external-sort and spillable-aggregation operators to write sorted runs
// and hash partitions to the simulated DFS and read them back unchanged.
// Round-tripping is exact for every value the Row data model produces
// (see the package comment's value mapping), which is what keeps spilled
// execution byte-identical to the in-memory path.

const (
	tagNil = iota
	tagFalse
	tagTrue
	tagInt32
	tagInt64
	tagFloat32
	tagFloat64
	tagString
	tagDecimal
	tagBytes
	tagRow
	tagList
)

// AppendValue appends the encoding of a single SQL value to b.
func AppendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	case int32:
		return binary.AppendVarint(append(b, tagInt32), int64(x)), nil
	case int64:
		return binary.AppendVarint(append(b, tagInt64), x), nil
	case float32:
		return binary.LittleEndian.AppendUint32(append(b, tagFloat32), math.Float32bits(x)), nil
	case float64:
		return binary.LittleEndian.AppendUint64(append(b, tagFloat64), math.Float64bits(x)), nil
	case string:
		b = binary.AppendUvarint(append(b, tagString), uint64(len(x)))
		return append(b, x...), nil
	case types.Decimal:
		b = binary.AppendVarint(append(b, tagDecimal), x.Unscaled)
		return binary.AppendVarint(b, int64(x.Scale)), nil
	case []byte:
		b = binary.AppendUvarint(append(b, tagBytes), uint64(len(x)))
		return append(b, x...), nil
	case Row:
		return appendSeq(b, tagRow, x)
	case []any:
		return appendSeq(b, tagList, x)
	default:
		return nil, fmt.Errorf("row: cannot spill value of type %T", v)
	}
}

func appendSeq(b []byte, tag byte, vals []any) ([]byte, error) {
	b = binary.AppendUvarint(append(b, tag), uint64(len(vals)))
	var err error
	for _, e := range vals {
		if b, err = AppendValue(b, e); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// AppendRow appends the encoding of one row to b.
func AppendRow(b []byte, r Row) ([]byte, error) {
	return appendSeq(b, tagRow, r)
}

// EncodeRows encodes a slice of rows as one block.
func EncodeRows(rows []Row) ([]byte, error) {
	b := binary.AppendUvarint(nil, uint64(len(rows)))
	var err error
	for _, r := range rows {
		if b, err = AppendRow(b, r); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeRows decodes a block produced by EncodeRows.
func DecodeRows(b []byte) ([]Row, error) {
	d := &decoder{b: b}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if err := d.claim(n); err != nil {
		return nil, err
	}
	rows := make([]Row, n)
	for i := range rows {
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		r, ok := v.(Row)
		if !ok {
			return nil, fmt.Errorf("row: decode: block record is %T, not a row", v)
		}
		rows[i] = r
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("row: decode: %d trailing bytes", len(d.b)-d.off)
	}
	return rows, nil
}

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("row: decode: bad uvarint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("row: decode: bad varint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.b) || d.off+n < 0 {
		return nil, fmt.Errorf("row: decode: truncated at %d", d.off)
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s, nil
}

// claim validates a decoded element count or byte length against the
// remaining input before any allocation sized by it: every element costs
// at least one byte, so a claim beyond the remaining bytes is corrupt by
// construction. This is what keeps a bit-flipped length prefix from
// turning into a multi-gigabyte make().
func (d *decoder) claim(n uint64) error {
	if n > uint64(len(d.b)-d.off) {
		return fmt.Errorf("row: decode: %d claimed at %d, %d bytes remain", n, d.off, len(d.b)-d.off)
	}
	return nil
}

func (d *decoder) value() (any, error) {
	tag, err := d.take(1)
	if err != nil {
		return nil, err
	}
	switch tag[0] {
	case tagNil:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt32:
		v, err := d.varint()
		return int32(v), err
	case tagInt64:
		return d.varint()
	case tagFloat32:
		s, err := d.take(4)
		if err != nil {
			return nil, err
		}
		return math.Float32frombits(binary.LittleEndian.Uint32(s)), nil
	case tagFloat64:
		s, err := d.take(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(s)), nil
	case tagString:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if err := d.claim(n); err != nil {
			return nil, err
		}
		s, err := d.take(int(n))
		return string(s), err
	case tagDecimal:
		u, err := d.varint()
		if err != nil {
			return nil, err
		}
		sc, err := d.varint()
		if err != nil {
			return nil, err
		}
		return types.Decimal{Unscaled: u, Scale: int(sc)}, nil
	case tagBytes:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if err := d.claim(n); err != nil {
			return nil, err
		}
		s, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), s...), nil
	case tagRow:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if err := d.claim(n); err != nil {
			return nil, err
		}
		r := make(Row, n)
		for i := range r {
			if r[i], err = d.value(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case tagList:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if err := d.claim(n); err != nil {
			return nil, err
		}
		l := make([]any, n)
		for i := range l {
			if l[i], err = d.value(); err != nil {
				return nil, err
			}
		}
		return l, nil
	default:
		return nil, fmt.Errorf("row: decode: unknown tag %d at %d", tag[0], d.off-1)
	}
}
