package rdd

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// TaskError describes one failed attempt of one task: which RDD's compute
// failed, on which partition, on which attempt, and why. Recovered compute
// panics and fault-injection errors both surface as TaskErrors; the
// executor retries them with backoff up to maxTaskAttempts.
type TaskError struct {
	RDDName   string
	Partition int
	Attempt   int
	// Worker identifies the remote worker the attempt ran on; "" for local
	// execution.
	Worker string
	Cause  error
}

func (e *TaskError) Error() string {
	if e.Worker != "" {
		return fmt.Sprintf("task %s[%d] attempt %d on %s: %v", e.RDDName, e.Partition, e.Attempt, e.Worker, e.Cause)
	}
	return fmt.Sprintf("task %s[%d] attempt %d: %v", e.RDDName, e.Partition, e.Attempt, e.Cause)
}

func (e *TaskError) Unwrap() error { return e.Cause }

// JobError is the terminal failure of a job: a task exhausted its retry
// budget (or hit a non-retryable error). It carries the failing RDD's name,
// partition, the number of attempts spent, and the last attempt's error,
// so callers can identify the lineage stage that failed. No panic crosses
// the rdd package boundary — actions return JobErrors instead.
type JobError struct {
	RDDName   string
	Partition int
	Attempts  int
	// Worker identifies the remote worker of the last failing attempt; ""
	// for local execution.
	Worker string
	Cause  error
}

func (e *JobError) Error() string {
	if e.Worker != "" {
		return fmt.Sprintf("rdd: job failed: %s[%d] after %d attempt(s), last on %s: %v",
			e.RDDName, e.Partition, e.Attempts, e.Worker, e.Cause)
	}
	return fmt.Sprintf("rdd: job failed: %s[%d] after %d attempt(s): %v",
		e.RDDName, e.Partition, e.Attempts, e.Cause)
}

func (e *JobError) Unwrap() error { return e.Cause }

// terminalErr reports whether err must not be retried by an enclosing
// task: context cancellation propagates unchanged (the job is being torn
// down), and a JobError from a nested job (a shuffle map stage or a
// broadcast build collected inside a task) has already exhausted its own
// retry budget — retrying the outer task would multiply attempts without
// new information.
func terminalErr(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var je *JobError
	return errors.As(err, &je)
}

// sleepCtx waits d or until ctx is cancelled, returning the cancellation
// error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
