package rdd

import (
	"context"

	"repro/internal/metrics"
)

// Distributed trace context. A coordinator opens one trace per query and
// threads its id through job contexts; worker processes executing shipped
// partitions install the same id (plus the dispatching span's id as parent)
// so every span of one distributed query — on any process — carries the
// same trace id, Dapper-style. The optional sink captures the spans a
// single task emitted so the worker can ship them back piggybacked on the
// task reply.

// traceCtx is the value carried through job contexts.
type traceCtx struct {
	id     string
	parent string
	sink   *metrics.TraceBuffer // bounded per-task capture; nil = none
}

type traceCtxKey struct{}

// WithTraceContext tags jc with a trace id, a parent span id, and an
// optional bounded sink that additionally captures every span emitted under
// jc. Empty id and parent leave spans untagged; a nil sink disables capture.
func WithTraceContext(jc context.Context, id, parent string, sink *metrics.TraceBuffer) context.Context {
	if jc == nil {
		jc = context.Background()
	}
	return context.WithValue(jc, traceCtxKey{}, traceCtx{id: id, parent: parent, sink: sink})
}

func traceFrom(jc context.Context) (traceCtx, bool) {
	if jc == nil {
		return traceCtx{}, false
	}
	tc, ok := jc.Value(traceCtxKey{}).(traceCtx)
	return tc, ok
}

// traceSink returns the capture sink installed on jc, if any — used by span
// emission sites to decide whether building a span is worthwhile even when
// the context-wide trace buffer is disabled.
func traceSink(jc context.Context) *metrics.TraceBuffer {
	tc, _ := traceFrom(jc)
	return tc.sink
}

// emitSpan decorates s with the job context's trace id and parent span (when
// present and not already set) and appends it to the context trace buffer
// and the per-task capture sink. Nil-safe on both destinations.
func (c *Context) emitSpan(jc context.Context, s metrics.Span) {
	tc, ok := traceFrom(jc)
	if ok {
		if s.Trace == "" {
			s.Trace = tc.id
		}
		if s.Parent == "" {
			s.Parent = tc.parent
		}
	}
	c.Trace().Append(s)
	if ok {
		tc.sink.Append(s)
	}
}
