package rdd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Wide (shuffle) dependencies. A shuffle materializes the map side once —
// bucketing every parent partition's records by hash of key — and then
// serves reduce-side partitions from the buckets, the same two-stage
// structure as Spark's shuffle. Map-side task failures are retried by the
// map tasks' own runTask loops; a terminal map-stage failure surfaces to
// every reduce task as the map stage's JobError.

// Pair is a key-value record for the byKey operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// hashKey spreads comparable keys across reducers: integer and string keys
// hash directly, everything else hashes its formatted representation with
// FNV-1a so exotic key types still spread instead of collapsing onto one
// reducer.
func hashKey[K comparable](k K, buckets int) int {
	switch v := any(k).(type) {
	case int:
		return int(uint64(v) % uint64(buckets))
	case int32:
		return int(uint64(uint32(v)) % uint64(buckets))
	case int64:
		return int(uint64(v) % uint64(buckets))
	case uint64:
		return int(v % uint64(buckets))
	case string:
		return int(fnvHash(v) % uint64(buckets))
	default:
		return int(fnvHash(fmt.Sprintf("%v", v)) % uint64(buckets))
	}
}

// fnvHash is FNV-1a over the bytes of s.
func fnvHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// bucketize runs the shuffle map side in parallel: each map partition is
// bucketed by its own goroutine (bounded by the context's parallelism) into
// per-partition local buckets, which are then concatenated per reducer in
// partition order, so output order is identical to a sequential pass. A
// panicking bucket function fails the stage with an error (fail-fast, like
// computeAll).
func bucketize[T any](jc context.Context, ctx *Context, parts [][]T, numPartitions int, bucket func(T) int) ([][]T, error) {
	if jc == nil {
		jc = context.Background()
	}
	runCtx, cancel := context.WithCancel(jc)
	defer cancel()

	locals := make([][][]T, len(parts))
	sem := make(chan struct{}, ctx.parallelism)
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		failMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		failMu.Unlock()
		cancel()
	}
	for pi := range parts {
		if runCtx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		case <-runCtx.Done():
		}
		if runCtx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if rec := recover(); rec != nil {
					fail(fmt.Errorf("rdd: panic in shuffle map side: %v", rec))
				}
			}()
			local := make([][]T, numPartitions)
			for _, v := range parts[pi] {
				b := bucket(v)
				local[b] = append(local[b], v)
			}
			locals[pi] = local
			ctx.shuffleRecords.Add(int64(len(parts[pi])))
		}(pi)
	}
	wg.Wait()
	failMu.Lock()
	err := firstErr
	failMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := jc.Err(); err != nil {
		return nil, err
	}

	buckets := make([][]T, numPartitions)
	for b := 0; b < numPartitions; b++ {
		n := 0
		for _, local := range locals {
			n += len(local[b])
		}
		merged := make([]T, 0, n)
		for _, local := range locals {
			merged = append(merged, local[b]...)
		}
		buckets[b] = merged
	}
	return buckets, nil
}

// shuffleState materializes the map-side buckets exactly once per shuffle.
// Terminal failures are memoized (the stage is dead for this job run), but
// context-cancellation errors are NOT: a query that timed out must not
// poison a later run of the same shuffle.
type shuffleState[T any] struct {
	mu      sync.Mutex
	done    bool
	buckets [][]T
	err     error
}

// materialize runs build under the mutex on first use and serves the
// memoized result afterwards.
func (st *shuffleState[T]) materialize(jc context.Context, build func(context.Context) ([][]T, error)) ([][]T, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return st.buckets, st.err
	}
	buckets, err := build(jc)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nil, err // retryable on the next job run
	}
	st.done = true
	st.buckets, st.err = buckets, err
	return st.buckets, st.err
}

// objectSized is implemented by record types that can report an
// approximate in-memory size (row.Row does); shuffle byte accounting
// samples it rather than sizing every record.
type objectSized interface{ ObjectSize() int64 }

// sampledSize estimates the total bytes of parts by sizing up to 32 records
// per partition and extrapolating linearly; it returns 0 when the record
// type cannot report sizes.
func sampledSize[T any](parts [][]T) int64 {
	var total int64
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		k := len(part)
		if k > 32 {
			k = 32
		}
		var s int64
		for i := 0; i < k; i++ {
			sz, ok := any(part[i]).(objectSized)
			if !ok {
				return 0
			}
			s += sz.ObjectSize()
		}
		total += s * int64(len(part)) / int64(k)
	}
	return total
}

// Codec encodes and decodes record slices for cross-worker transport.
// Shuffles constructed with a codec publish their map-side buckets to the
// context's ShuffleService (when one is installed) and try fetching
// buckets from peer workers before recomputing them locally.
type Codec[T any] struct {
	Encode func([]T) ([]byte, error)
	Decode func([]byte) ([]T, error)
}

// shuffled builds the reduce-side RDD over a lazily materialized map side.
func shuffled[T any](parent *RDD[T], name string, numPartitions int, bucket func(T) int) *RDD[T] {
	return shuffledPrep(parent, name, numPartitions, func([][]T) func(T) int { return bucket })
}

// shuffledPrep is shuffled with a late-bound bucket function: prep sees the
// fully materialized map-side partitions (in partition order) and returns
// the bucket function — the hook range partitioning uses to sample key
// boundaries from the actual data before bucketing, Spark's
// RangePartitioner two-pass shape collapsed onto one materialization.
func shuffledPrep[T any](parent *RDD[T], name string, numPartitions int, prep func(parts [][]T) func(T) int) *RDD[T] {
	return shuffledPrepCodec(parent, name, numPartitions, prep, nil)
}

// shuffledPrepCodec is shuffledPrep with optional cross-worker bucket
// exchange. With a codec and an installed ShuffleService, a reduce task
// first tries to fetch its bucket from a peer that already ran this
// shuffle's map side; a miss (nobody ran it, the owner died, the block was
// evicted, the bytes do not decode) falls back to the local materialize
// path — exactly the lineage-recompute story, so a lost shuffle output
// costs recompute time, never correctness. After a local materialization
// the buckets are published (best effort) for peers working other
// partitions of the same query.
func shuffledPrepCodec[T any](parent *RDD[T], name string, numPartitions int, prep func(parts [][]T) func(T) int, codec *Codec[T]) *RDD[T] {
	st := &shuffleState[T]{}
	shuffleID := ""
	var svc ShuffleService
	if codec != nil {
		if svc = parent.ctx.shuffleService(); svc != nil {
			shuffleID = parent.ctx.nextShuffleID()
		}
	}
	var publishOnce sync.Once
	return newRDD(parent.ctx, name, numPartitions, func(jc context.Context, p int) ([]T, error) {
		if shuffleID != "" {
			if data, ok, ferr := svc.FetchBucket(jc, shuffleID, p); ferr == nil && ok {
				if vals, derr := codec.Decode(data); derr == nil {
					return vals, nil
				}
			}
		}
		buckets, err := st.materialize(jc, func(jc context.Context) ([][]T, error) {
			parts, err := parent.computeAll(jc)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			bucket := prep(parts)
			buckets, berr := bucketize(jc, parent.ctx, parts, numPartitions, bucket)
			if parent.ctx.Trace() != nil || traceSink(jc) != nil {
				span := metrics.Span{
					Kind:  metrics.SpanShuffle,
					Name:  name,
					Start: metrics.Since(start),
					DurNS: time.Since(start).Nanoseconds(),
					Bytes: sampledSize(parts),
				}
				span.Job, _ = jobIDFrom(jc)
				for _, part := range parts {
					span.Records += int64(len(part))
				}
				parent.ctx.shuffleBytes.Add(span.Bytes)
				if berr != nil {
					span.Err = berr.Error()
				}
				parent.ctx.emitSpan(jc, span)
			}
			return buckets, berr
		})
		if err != nil {
			return nil, err
		}
		if shuffleID != "" {
			publishOnce.Do(func() {
				enc := make([][]byte, len(buckets))
				for i, b := range buckets {
					data, eerr := codec.Encode(b)
					if eerr != nil {
						return // unencodable records: peers recompute instead
					}
					enc[i] = data
				}
				svc.Publish(jc, shuffleID, enc)
			})
		}
		return buckets[p], nil
	})
}

// PartitionByKey hash-partitions a pair RDD into numPartitions partitions
// (a wide dependency). Records with equal keys land in the same output
// partition.
func PartitionByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, V]] {
	if numPartitions < 1 {
		numPartitions = r.ctx.parallelism
	}
	return shuffled(r, r.name+".shuffle", numPartitions, func(kv Pair[K, V]) int {
		return hashKey(kv.Key, numPartitions)
	})
}

// ReduceByKey merges values per key with f, combining map-side first
// (Spark's combiner) so the shuffle moves one record per key per partition.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], f func(V, V) V, numPartitions int) *RDD[Pair[K, V]] {
	combined := MapPartitions(r, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		m := make(map[K]V, len(in))
		for _, kv := range in {
			if cur, ok := m[kv.Key]; ok {
				m[kv.Key] = f(cur, kv.Value)
			} else {
				m[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{Key: k, Value: v})
		}
		return out
	})
	shuffledKV := PartitionByKey(combined, numPartitions)
	return MapPartitions(shuffledKV, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		m := make(map[K]V, len(in))
		for _, kv := range in {
			if cur, ok := m[kv.Key]; ok {
				m[kv.Key] = f(cur, kv.Value)
			} else {
				m[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{Key: k, Value: v})
		}
		return out
	})
}

// GroupByKey gathers all values per key (no combiner — the expensive
// operation Spark documentation warns about; provided for completeness).
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, []V]] {
	shuffledKV := PartitionByKey(r, numPartitions)
	return MapPartitions(shuffledKV, func(_ int, in []Pair[K, V]) []Pair[K, []V] {
		m := make(map[K][]V, len(in))
		for _, kv := range in {
			m[kv.Key] = append(m[kv.Key], kv.Value)
		}
		out := make([]Pair[K, []V], 0, len(m))
		for k, vs := range m {
			out = append(out, Pair[K, []V]{Key: k, Value: vs})
		}
		return out
	})
}

// PartitionByHash hash-partitions arbitrary records by a caller-supplied
// hash — the physical layer's Exchange operator uses this with row hashes.
func PartitionByHash[T any](r *RDD[T], numPartitions int, hash func(T) uint64) *RDD[T] {
	return PartitionByHashCodec(r, numPartitions, hash, nil)
}

// PartitionByHashCodec is PartitionByHash with cross-worker bucket
// exchange for codec-capable record types (the physical layer passes the
// row codec so workers fetch each other's map outputs instead of
// recomputing the map side per reduce partition).
func PartitionByHashCodec[T any](r *RDD[T], numPartitions int, hash func(T) uint64, codec *Codec[T]) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = r.ctx.parallelism
	}
	return shuffledPrepCodec(r, r.name+".exchange", numPartitions, func([][]T) func(T) int {
		return func(v T) int {
			return int(hash(v) % uint64(numPartitions))
		}
	}, codec)
}

// PartitionByFunc partitions records by a bucket function derived from the
// materialized map side: prep receives every parent partition (in order)
// and returns the bucket assignment. The physical layer's range exchange
// uses it to sample sort-key boundaries before bucketing, so a global sort
// parallelizes instead of coalescing onto one partition. Bucket values are
// clamped into [0, numPartitions).
func PartitionByFunc[T any](r *RDD[T], numPartitions int, prep func(parts [][]T) func(T) int) *RDD[T] {
	return PartitionByFuncCodec(r, numPartitions, prep, nil)
}

// PartitionByFuncCodec is PartitionByFunc with cross-worker bucket
// exchange (see PartitionByHashCodec).
func PartitionByFuncCodec[T any](r *RDD[T], numPartitions int, prep func(parts [][]T) func(T) int, codec *Codec[T]) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = r.ctx.parallelism
	}
	return shuffledPrepCodec(r, r.name+".rangeExchange", numPartitions, func(parts [][]T) func(T) int {
		bucket := prep(parts)
		return func(v T) int {
			b := bucket(v)
			if b < 0 {
				b = 0
			}
			if b >= numPartitions {
				b = numPartitions - 1
			}
			return b
		}
	}, codec)
}
