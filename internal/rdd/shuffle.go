package rdd

import (
	"fmt"
	"sync"
)

// Wide (shuffle) dependencies. A shuffle materializes the map side once —
// bucketing every parent partition's records by hash of key — and then
// serves reduce-side partitions from the buckets, the same two-stage
// structure as Spark's shuffle.

// Pair is a key-value record for the byKey operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// hashKey spreads comparable keys across reducers: integer and string keys
// hash directly, everything else hashes its formatted representation with
// FNV-1a so exotic key types still spread instead of collapsing onto one
// reducer.
func hashKey[K comparable](k K, buckets int) int {
	switch v := any(k).(type) {
	case int:
		return int(uint64(v) % uint64(buckets))
	case int32:
		return int(uint64(uint32(v)) % uint64(buckets))
	case int64:
		return int(uint64(v) % uint64(buckets))
	case uint64:
		return int(v % uint64(buckets))
	case string:
		return int(fnvHash(v) % uint64(buckets))
	default:
		return int(fnvHash(fmt.Sprintf("%v", v)) % uint64(buckets))
	}
}

// fnvHash is FNV-1a over the bytes of s.
func fnvHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// bucketize runs the shuffle map side in parallel: each map partition is
// bucketed by its own goroutine (bounded by the context's parallelism) into
// per-partition local buckets, which are then concatenated per reducer in
// partition order, so output order is identical to a sequential pass. Task
// panics propagate to the caller like computeAll's.
func bucketize[T any](ctx *Context, parts [][]T, numPartitions int, bucket func(T) int) [][]T {
	locals := make([][][]T, len(parts))
	sem := make(chan struct{}, ctx.parallelism)
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failure any
	for pi := range parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(pi int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if rec := recover(); rec != nil {
					failMu.Lock()
					if failure == nil {
						failure = rec
					}
					failMu.Unlock()
				}
			}()
			local := make([][]T, numPartitions)
			for _, v := range parts[pi] {
				b := bucket(v)
				local[b] = append(local[b], v)
			}
			locals[pi] = local
			ctx.shuffleRecords.Add(int64(len(parts[pi])))
		}(pi)
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
	buckets := make([][]T, numPartitions)
	for b := 0; b < numPartitions; b++ {
		n := 0
		for _, local := range locals {
			n += len(local[b])
		}
		merged := make([]T, 0, n)
		for _, local := range locals {
			merged = append(merged, local[b]...)
		}
		buckets[b] = merged
	}
	return buckets
}

// shuffleState lazily materializes the map-side buckets exactly once.
type shuffleState[K comparable, V any] struct {
	once    sync.Once
	buckets [][]Pair[K, V]
}

// PartitionByKey hash-partitions a pair RDD into numPartitions partitions
// (a wide dependency). Records with equal keys land in the same output
// partition.
func PartitionByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, V]] {
	if numPartitions < 1 {
		numPartitions = r.ctx.parallelism
	}
	st := &shuffleState[K, V]{}
	parent := r
	return newRDD(r.ctx, r.name+".shuffle", numPartitions, func(p int) []Pair[K, V] {
		st.once.Do(func() {
			parts := parent.computeAll()
			st.buckets = bucketize(parent.ctx, parts, numPartitions, func(kv Pair[K, V]) int {
				return hashKey(kv.Key, numPartitions)
			})
		})
		return st.buckets[p]
	})
}

// ReduceByKey merges values per key with f, combining map-side first
// (Spark's combiner) so the shuffle moves one record per key per partition.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], f func(V, V) V, numPartitions int) *RDD[Pair[K, V]] {
	combined := MapPartitions(r, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		m := make(map[K]V, len(in))
		for _, kv := range in {
			if cur, ok := m[kv.Key]; ok {
				m[kv.Key] = f(cur, kv.Value)
			} else {
				m[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{Key: k, Value: v})
		}
		return out
	})
	shuffled := PartitionByKey(combined, numPartitions)
	return MapPartitions(shuffled, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		m := make(map[K]V, len(in))
		for _, kv := range in {
			if cur, ok := m[kv.Key]; ok {
				m[kv.Key] = f(cur, kv.Value)
			} else {
				m[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{Key: k, Value: v})
		}
		return out
	})
}

// GroupByKey gathers all values per key (no combiner — the expensive
// operation Spark documentation warns about; provided for completeness).
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, []V]] {
	shuffled := PartitionByKey(r, numPartitions)
	return MapPartitions(shuffled, func(_ int, in []Pair[K, V]) []Pair[K, []V] {
		m := make(map[K][]V, len(in))
		for _, kv := range in {
			m[kv.Key] = append(m[kv.Key], kv.Value)
		}
		out := make([]Pair[K, []V], 0, len(m))
		for k, vs := range m {
			out = append(out, Pair[K, []V]{Key: k, Value: vs})
		}
		return out
	})
}

// PartitionByHash hash-partitions arbitrary records by a caller-supplied
// hash — the physical layer's Exchange operator uses this with row hashes.
func PartitionByHash[T any](r *RDD[T], numPartitions int, hash func(T) uint64) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = r.ctx.parallelism
	}
	var once sync.Once
	var buckets [][]T
	parent := r
	return newRDD(r.ctx, r.name+".exchange", numPartitions, func(p int) []T {
		once.Do(func() {
			parts := parent.computeAll()
			buckets = bucketize(parent.ctx, parts, numPartitions, func(v T) int {
				return int(hash(v) % uint64(numPartitions))
			})
		})
		return buckets[p]
	})
}
