package rdd

import "sync"

// Wide (shuffle) dependencies. A shuffle materializes the map side once —
// bucketing every parent partition's records by hash of key — and then
// serves reduce-side partitions from the buckets, the same two-stage
// structure as Spark's shuffle.

// Pair is a key-value record for the byKey operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// hashKey spreads comparable keys across reducers via Go's map hash
// (fallback: FNV on the formatted key for non-hashable edge cases is not
// needed since K is comparable).
func hashKey[K comparable](k K, buckets int) int {
	// A tiny one-entry map would be slow; use a cheap polynomial over the
	// bytes of fmt-free conversions where possible.
	switch v := any(k).(type) {
	case int:
		return int(uint64(v) % uint64(buckets))
	case int32:
		return int(uint64(uint32(v)) % uint64(buckets))
	case int64:
		return int(uint64(v) % uint64(buckets))
	case uint64:
		return int(v % uint64(buckets))
	case string:
		var h uint64 = 14695981039346656037
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= 1099511628211
		}
		return int(h % uint64(buckets))
	default:
		// Generic fallback: route everything to bucket 0 is wrong; use a
		// map-based spreader seeded per call (rare path).
		return 0
	}
}

// shuffleState lazily materializes the map-side buckets exactly once.
type shuffleState[K comparable, V any] struct {
	once    sync.Once
	buckets [][]Pair[K, V]
}

// PartitionByKey hash-partitions a pair RDD into numPartitions partitions
// (a wide dependency). Records with equal keys land in the same output
// partition.
func PartitionByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, V]] {
	if numPartitions < 1 {
		numPartitions = r.ctx.parallelism
	}
	st := &shuffleState[K, V]{}
	parent := r
	return newRDD(r.ctx, r.name+".shuffle", numPartitions, func(p int) []Pair[K, V] {
		st.once.Do(func() {
			st.buckets = make([][]Pair[K, V], numPartitions)
			parts := parent.computeAll()
			for _, part := range parts {
				for _, kv := range part {
					b := hashKey(kv.Key, numPartitions)
					st.buckets[b] = append(st.buckets[b], kv)
				}
				parent.ctx.shuffleRecords.Add(int64(len(part)))
			}
		})
		return st.buckets[p]
	})
}

// ReduceByKey merges values per key with f, combining map-side first
// (Spark's combiner) so the shuffle moves one record per key per partition.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], f func(V, V) V, numPartitions int) *RDD[Pair[K, V]] {
	combined := MapPartitions(r, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		m := make(map[K]V, len(in))
		for _, kv := range in {
			if cur, ok := m[kv.Key]; ok {
				m[kv.Key] = f(cur, kv.Value)
			} else {
				m[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{Key: k, Value: v})
		}
		return out
	})
	shuffled := PartitionByKey(combined, numPartitions)
	return MapPartitions(shuffled, func(_ int, in []Pair[K, V]) []Pair[K, V] {
		m := make(map[K]V, len(in))
		for _, kv := range in {
			if cur, ok := m[kv.Key]; ok {
				m[kv.Key] = f(cur, kv.Value)
			} else {
				m[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(m))
		for k, v := range m {
			out = append(out, Pair[K, V]{Key: k, Value: v})
		}
		return out
	})
}

// GroupByKey gathers all values per key (no combiner — the expensive
// operation Spark documentation warns about; provided for completeness).
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, []V]] {
	shuffled := PartitionByKey(r, numPartitions)
	return MapPartitions(shuffled, func(_ int, in []Pair[K, V]) []Pair[K, []V] {
		m := make(map[K][]V, len(in))
		for _, kv := range in {
			m[kv.Key] = append(m[kv.Key], kv.Value)
		}
		out := make([]Pair[K, []V], 0, len(m))
		for k, vs := range m {
			out = append(out, Pair[K, []V]{Key: k, Value: vs})
		}
		return out
	})
}

// PartitionByHash hash-partitions arbitrary records by a caller-supplied
// hash — the physical layer's Exchange operator uses this with row hashes.
func PartitionByHash[T any](r *RDD[T], numPartitions int, hash func(T) uint64) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = r.ctx.parallelism
	}
	var once sync.Once
	var buckets [][]T
	parent := r
	return newRDD(r.ctx, r.name+".exchange", numPartitions, func(p int) []T {
		once.Do(func() {
			buckets = make([][]T, numPartitions)
			parts := parent.computeAll()
			for _, part := range parts {
				for _, v := range part {
					b := int(hash(v) % uint64(numPartitions))
					buckets[b] = append(buckets[b], v)
				}
				parent.ctx.shuffleRecords.Add(int64(len(part)))
			}
		})
		return buckets[p]
	})
}
