package rdd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func spansByKind(spans []metrics.Span) map[metrics.SpanKind][]metrics.Span {
	out := map[metrics.SpanKind][]metrics.Span{}
	for _, s := range spans {
		out[s.Kind] = append(out[s.Kind], s)
	}
	return out
}

// A simple collect emits one job span, one stage span, and one task span
// per partition — and the record counts agree at every level: each task
// reports its partition's rows, the stage and job report the total.
func TestTraceSpansForCollect(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, intsUpTo(100), 4)
	out, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("collect returned %d rows", len(out))
	}

	byKind := spansByKind(ctx.Trace().Snapshot())
	if n := len(byKind[metrics.SpanJob]); n != 1 {
		t.Fatalf("want 1 job span, got %d", n)
	}
	job := byKind[metrics.SpanJob][0]
	if job.Records != 100 || !strings.HasPrefix(job.Name, "collect:") {
		t.Fatalf("job span = %+v", job)
	}
	if n := len(byKind[metrics.SpanStage]); n != 1 {
		t.Fatalf("want 1 stage span, got %d", n)
	}
	if stage := byKind[metrics.SpanStage][0]; stage.Records != 100 || stage.Job != job.Job {
		t.Fatalf("stage span = %+v", stage)
	}
	tasks := byKind[metrics.SpanTask]
	if len(tasks) != 4 {
		t.Fatalf("want 4 task spans, got %d", len(tasks))
	}
	var taskRecords int64
	seen := map[int]bool{}
	for _, task := range tasks {
		if task.Job != job.Job {
			t.Fatalf("task span outside the job: %+v", task)
		}
		if task.Speculative {
			t.Fatalf("unexpected speculative task: %+v", task)
		}
		taskRecords += task.Records
		seen[task.Partition] = true
	}
	if taskRecords != 100 || len(seen) != 4 {
		t.Fatalf("task spans cover %d records over %d partitions", taskRecords, len(seen))
	}
}

// A shuffle job (ReduceByKey) nests its map-side stage under the same job
// id as the reduce side, and emits a shuffle span carrying the map-side
// record count — so the trace reads as one job, not two.
func TestTraceSpansForShuffle(t *testing.T) {
	ctx := NewContext(4)
	var pairs []Pair[int, int]
	for i := 0; i < 60; i++ {
		pairs = append(pairs, Pair[int, int]{Key: i % 6, Value: 1})
	}
	r := Parallelize(ctx, pairs, 5)
	reduced, err := ReduceByKey(r, func(a, b int) int { return a + b }, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced) != 6 {
		t.Fatalf("got %d keys", len(reduced))
	}

	byKind := spansByKind(ctx.Trace().Snapshot())
	if n := len(byKind[metrics.SpanJob]); n != 1 {
		t.Fatalf("want exactly 1 job span for the whole shuffle job, got %d", n)
	}
	job := byKind[metrics.SpanJob][0]
	shuffles := byKind[metrics.SpanShuffle]
	if len(shuffles) != 1 {
		t.Fatalf("want 1 shuffle span, got %d", len(shuffles))
	}
	// Map-side combining folds each partition's 12 pairs down to its 6
	// distinct keys before the exchange: 5 partitions × 6 keys = 30 records.
	// Bytes stays 0 for pairs of plain ints — size sampling only engages for
	// ObjectSize-carrying rows.
	if sh := shuffles[0]; sh.Records != 30 || sh.Job != job.Job {
		t.Fatalf("shuffle span = %+v", sh)
	}
	// Map side (5 partitions) and reduce side (3 partitions) both ran as
	// stages of the same job.
	if n := len(byKind[metrics.SpanStage]); n != 2 {
		t.Fatalf("want 2 stage spans, got %d", n)
	}
	for _, st := range byKind[metrics.SpanStage] {
		if st.Job != job.Job {
			t.Fatalf("stage span outside the job: %+v", st)
		}
	}
	// Task spans are per lineage level: parallelize (5) feeds the map-side
	// combine (5), whose shuffle output is read by 3 reduce partitions that
	// each run the exchange read plus the final merge — 5+5+3+3 = 16.
	perLevel := map[string]int{}
	for _, task := range byKind[metrics.SpanTask] {
		perLevel[task.Name]++
	}
	want := map[string]int{
		"parallelize":                                     5,
		"parallelize.mapPartitions":                       5,
		"parallelize.mapPartitions.shuffle":               3,
		"parallelize.mapPartitions.shuffle.mapPartitions": 3,
	}
	for name, n := range want {
		if perLevel[name] != n {
			t.Fatalf("want %d task spans for %q, got %d (all: %v)", n, name, perLevel[name], perLevel)
		}
	}
}

// Failed attempts leave error-annotated task spans behind, so the trace
// shows the retry history that the JobError summarizes.
func TestTraceSpansRecordFailures(t *testing.T) {
	ctx := NewContext(1)
	ctx.SetBackoff(0, 0)
	r := Map(Parallelize(ctx, intsUpTo(4), 1), func(int) int {
		panic("always fails")
	})
	_, err := r.Collect()
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want JobError, got %v", err)
	}

	var failed int
	for _, s := range ctx.Trace().Snapshot() {
		if s.Kind == metrics.SpanTask && s.Err != "" {
			failed++
			if !strings.Contains(s.Err, "always fails") {
				t.Fatalf("task span error = %q", s.Err)
			}
		}
	}
	if failed != je.Attempts {
		t.Fatalf("want %d failed task spans, got %d", je.Attempts, failed)
	}
}

// SetTracing(false) turns the buffer off (nil, nothing recorded, no
// crashes); re-enabling starts from an empty buffer.
func TestSetTracingToggle(t *testing.T) {
	ctx := NewContext(2)
	ctx.SetTracing(false)
	if ctx.Trace() != nil {
		t.Fatal("tracing still on after SetTracing(false)")
	}
	if _, err := Parallelize(ctx, intsUpTo(10), 2).Collect(); err != nil {
		t.Fatal(err)
	}
	ctx.SetTracing(true)
	if got := ctx.Trace().Len(); got != 0 {
		t.Fatalf("re-enabled trace buffer not empty: %d spans", got)
	}
	if _, err := Parallelize(ctx, intsUpTo(10), 2).Collect(); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Trace().Len(); got == 0 {
		t.Fatal("no spans recorded after re-enabling tracing")
	}
}

// The exported JSONL event log round-trips: one JSON object per line whose
// kinds and record counts match the in-memory snapshot.
func TestTraceExportJSONL(t *testing.T) {
	ctx := NewContext(2)
	if _, err := Parallelize(ctx, intsUpTo(30), 3).Collect(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctx.Trace().ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := ctx.Trace().Snapshot()
	var got []metrics.Span
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var s metrics.Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, s)
	}
	if len(got) != len(want) {
		t.Fatalf("JSONL has %d spans, snapshot has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Kind != want[i].Kind || got[i].Records != want[i].Records {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}
