package rdd

import (
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func intsUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	ctx := NewContext(4)
	data := intsUpTo(101)
	r := Parallelize(ctx, data, 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	got := r.Collect()
	if len(got) != 101 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order not preserved at %d: %d", i, v)
		}
	}
	if r.Count() != 101 {
		t.Fatalf("count = %d", r.Count())
	}
}

func TestMapFilterFlatMapLazy(t *testing.T) {
	ctx := NewContext(2)
	var evals atomic.Int64
	src := Generate(ctx, "src", 3, func(p int) []int {
		evals.Add(1)
		return []int{p * 10, p*10 + 1}
	})
	mapped := Map(src, func(x int) int { return x * 2 })
	filtered := Filter(mapped, func(x int) bool { return x%4 == 0 })
	flat := FlatMap(filtered, func(x int) []int { return []int{x, x} })
	if evals.Load() != 0 {
		t.Fatal("transformations must be lazy")
	}
	got := flat.Collect()
	if evals.Load() != 3 {
		t.Fatalf("each partition computed once, got %d", evals.Load())
	}
	want := []int{0, 0, 20, 20, 40, 40} // 0,2→0; 20,22→20; 40,42→40 doubled
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestUnionCoalesceTake(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3, 4}, 2)
	u := Union(a, b)
	if u.Count() != 4 || u.NumPartitions() != 4 {
		t.Fatalf("union wrong: %d rows, %d parts", u.Count(), u.NumPartitions())
	}
	c := Coalesce(u, 2)
	if c.NumPartitions() != 2 || c.Count() != 4 {
		t.Fatal("coalesce wrong")
	}
	taken := Take(u, 3)
	if len(taken) != 3 || taken[0] != 1 {
		t.Fatalf("take = %v", taken)
	}
	if got := Take(u, 100); len(got) != 4 {
		t.Fatalf("take beyond size = %v", got)
	}
}

func TestReduce(t *testing.T) {
	ctx := NewContext(3)
	r := Parallelize(ctx, intsUpTo(10), 3)
	sum, ok := Reduce(r, func(a, b int) int { return a + b })
	if !ok || sum != 45 {
		t.Fatalf("reduce = %d, %v", sum, ok)
	}
	empty := Parallelize(ctx, []int{}, 2)
	if _, ok := Reduce(empty, func(a, b int) int { return a + b }); ok {
		t.Fatal("empty reduce should report !ok")
	}
}

func TestReduceByKeyCorrectness(t *testing.T) {
	ctx := NewContext(4)
	var pairs []Pair[string, int]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair[string, int]{Key: string(rune('a' + i%5)), Value: 1})
	}
	r := Parallelize(ctx, pairs, 8)
	reduced := ReduceByKey(r, func(a, b int) int { return a + b }, 3)
	got := map[string]int{}
	for _, kv := range reduced.Collect() {
		if _, dup := got[kv.Key]; dup {
			t.Fatalf("key %q appeared in two partitions", kv.Key)
		}
		got[kv.Key] = kv.Value
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for k, v := range got {
		if v != 20 {
			t.Fatalf("count for %q = %d, want 20", k, v)
		}
	}
	if ctx.ShuffleRecords() == 0 {
		t.Fatal("shuffle metering should record movement")
	}
}

// Property: ReduceByKey with addition equals a sequential map-reduce, for
// any input and partitioning.
func TestReduceByKeyProperty(t *testing.T) {
	f := func(keys []uint8, parts uint8) bool {
		ctx := NewContext(4)
		pairs := make([]Pair[int, int], len(keys))
		want := map[int]int{}
		for i, k := range keys {
			key := int(k % 16)
			pairs[i] = Pair[int, int]{Key: key, Value: i}
			want[key] += i
		}
		r := Parallelize(ctx, pairs, int(parts%6)+1)
		got := map[int]int{}
		for _, kv := range ReduceByKey(r, func(a, b int) int { return a + b }, int(parts%4)+1).Collect() {
			got[kv.Key] = kv.Value
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, []Pair[string, int]{
		{"a", 1}, {"b", 2}, {"a", 3},
	}, 2)
	grouped := GroupByKey(r, 2).Collect()
	byKey := map[string][]int{}
	for _, kv := range grouped {
		sort.Ints(kv.Value)
		byKey[kv.Key] = kv.Value
	}
	if len(byKey["a"]) != 2 || byKey["a"][0] != 1 || byKey["a"][1] != 3 {
		t.Fatalf("grouped = %v", byKey)
	}
}

func TestZipPartitions(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2, 3, 4}, 2)
	b := Parallelize(ctx, []string{"a", "b", "c", "d"}, 2)
	zipped := ZipPartitions(a, b, func(p int, xs []int, ys []string) []string {
		out := make([]string, len(xs))
		for i := range xs {
			out[i] = ys[i]
		}
		return out
	})
	if got := zipped.Collect(); len(got) != 4 || got[0] != "a" {
		t.Fatalf("zip = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched partition counts must panic")
		}
	}()
	ZipPartitions(a, Parallelize(ctx, []int{1}, 1), func(int, []int, []int) []int { return nil })
}

func TestCacheAndLineageRecovery(t *testing.T) {
	ctx := NewContext(2)
	var computes atomic.Int64
	src := Generate(ctx, "src", 4, func(p int) []int {
		computes.Add(1)
		return []int{p}
	})
	cached := Map(src, func(x int) int { return x * 10 }).Cache()
	if cached.Collect(); computes.Load() != 4 {
		t.Fatalf("first pass computes all: %d", computes.Load())
	}
	if cached.Collect(); computes.Load() != 4 {
		t.Fatalf("second pass must hit the cache: %d", computes.Load())
	}
	// Simulate losing a cached partition: the engine recomputes it from
	// lineage (the paper's §2.1 fault-tolerance property).
	cached.DropCachedPartition(2)
	got := cached.Collect()
	if computes.Load() != 5 {
		t.Fatalf("exactly the lost partition recomputes: %d", computes.Load())
	}
	if ctx.Recomputes() != 1 {
		t.Fatalf("recompute metric = %d", ctx.Recomputes())
	}
	if len(got) != 4 || got[2] != 20 {
		t.Fatalf("recovered data wrong: %v", got)
	}
	cached.Unpersist()
	cached.Collect()
	if computes.Load() != 9 {
		t.Fatalf("unpersist drops all cached partitions: %d", computes.Load())
	}
}

func TestTaskRetryOnInjectedFailure(t *testing.T) {
	ctx := NewContext(2)
	r := Generate(ctx, "flaky", 2, func(p int) []int { return []int{p} })
	var failures atomic.Int64
	ctx.SetFailureHook(func(name string, partition, attempt int) error {
		// Fail the first two attempts of partition 1.
		if partition == 1 && attempt <= 2 {
			failures.Add(1)
			return errors.New("injected")
		}
		return nil
	})
	got := r.Collect()
	if len(got) != 2 {
		t.Fatalf("collect after retries = %v", got)
	}
	if failures.Load() != 2 || ctx.TaskRetries() != 2 {
		t.Fatalf("failures=%d retries=%d", failures.Load(), ctx.TaskRetries())
	}
}

func TestTaskFailsAfterMaxAttempts(t *testing.T) {
	ctx := NewContext(1)
	r := Generate(ctx, "doomed", 1, func(p int) []int { return nil })
	ctx.SetFailureHook(func(string, int, int) error { return errors.New("always") })
	defer func() {
		if recover() == nil {
			t.Fatal("permanently failing task must panic")
		}
	}()
	r.Collect()
}

func TestBroadcast(t *testing.T) {
	b := NewBroadcast(map[string]int{"x": 1})
	if b.Value()["x"] != 1 {
		t.Fatal("broadcast value")
	}
}

func TestPartitionByHashCoLocation(t *testing.T) {
	ctx := NewContext(4)
	data := intsUpTo(200)
	r := Parallelize(ctx, data, 8)
	hashed := PartitionByHash(r, 4, func(x int) uint64 { return uint64(x % 10) })
	// Values with equal hash must land in the same partition.
	partOf := map[int]int{}
	hashed.ForeachPartition(func(p int, xs []int) {
		for _, x := range xs {
			partOf[x] = p
		}
	})
	for _, x := range data {
		if partOf[x] != partOf[x%10] {
			t.Fatalf("co-location violated for %d", x)
		}
	}
	if hashed.Count() != 200 {
		t.Fatal("shuffle must preserve all records")
	}
}

// Regression: the generic hashKey fallback used to send every non-int,
// non-string key to bucket 0, collapsing such shuffles onto one reducer.
func TestHashKeySpreadForGenericKeys(t *testing.T) {
	type point struct{ X, Y int }
	const buckets = 8
	seen := map[int]int{}
	for i := 0; i < 400; i++ {
		seen[hashKey(point{X: i, Y: i * 31}, buckets)]++
	}
	if len(seen) < buckets/2 {
		t.Fatalf("generic keys hit only %d/%d buckets: %v", len(seen), buckets, seen)
	}
	if seen[0] == 400 {
		t.Fatal("all generic keys collapsed onto bucket 0")
	}
	for b := range seen {
		if b < 0 || b >= buckets {
			t.Fatalf("bucket %d out of range", b)
		}
	}
}

func TestPartitionByKeyGenericKeysSpread(t *testing.T) {
	type point struct{ X, Y int }
	ctx := NewContext(4)
	pairs := make([]Pair[point, int], 300)
	for i := range pairs {
		pairs[i] = Pair[point, int]{Key: point{X: i, Y: -i}, Value: i}
	}
	shuffled := PartitionByKey(Parallelize(ctx, pairs, 6), 4)
	nonEmpty := 0
	total := 0
	shuffled.ForeachPartition(func(p int, kvs []Pair[point, int]) {
		if len(kvs) > 0 {
			nonEmpty++
		}
		total += len(kvs)
	})
	if total != len(pairs) {
		t.Fatalf("shuffle lost records: %d of %d", total, len(pairs))
	}
	if nonEmpty < 2 {
		t.Fatalf("struct keys landed on %d reducer(s); want spread", nonEmpty)
	}
}

// The parallel map side must produce exactly the ordering of a sequential
// pass: per reducer, records appear in map-partition order, then input order.
func TestParallelBucketingDeterministicOrder(t *testing.T) {
	ctx := NewContext(8)
	const n, reducers = 1000, 5
	pairs := make([]Pair[string, int], n)
	for i := range pairs {
		pairs[i] = Pair[string, int]{Key: "k" + string(rune('a'+i%26)), Value: i}
	}
	parent := Parallelize(ctx, pairs, 7)

	// Reference: sequential bucketing over the same partition split.
	want := make([][]Pair[string, int], reducers)
	for p := 0; p < 7; p++ {
		lo, hi := n*p/7, n*(p+1)/7
		for _, kv := range pairs[lo:hi] {
			b := hashKey(kv.Key, reducers)
			want[b] = append(want[b], kv)
		}
	}

	shuffled := PartitionByKey(parent, reducers)
	shuffled.ForeachPartition(func(p int, got []Pair[string, int]) {
		if len(got) != len(want[p]) {
			t.Fatalf("reducer %d: %d records, want %d", p, len(got), len(want[p]))
		}
		for i := range got {
			if got[i] != want[p][i] {
				t.Fatalf("reducer %d record %d: %v, want %v (order must be deterministic)",
					p, i, got[i], want[p][i])
			}
		}
	})
}

// A panic inside the map side must propagate to the caller, like computeAll.
func TestParallelBucketingPanicPropagates(t *testing.T) {
	ctx := NewContext(4)
	r := Map(Parallelize(ctx, intsUpTo(100), 4), func(x int) Pair[int, int] {
		if x == 57 {
			panic("boom in map side")
		}
		return Pair[int, int]{Key: x, Value: x}
	})
	defer func() {
		if rec := recover(); rec == nil {
			t.Fatal("expected panic to propagate through shuffle")
		}
	}()
	PartitionByKey(r, 3).Collect()
}
