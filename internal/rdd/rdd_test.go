package rdd

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func intsUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// collect is a test helper that fails the test on job error.
func collect[T any](t *testing.T, r *RDD[T]) []T {
	t.Helper()
	got, err := r.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return got
}

func count[T any](t *testing.T, r *RDD[T]) int64 {
	t.Helper()
	n, err := r.Count()
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return n
}

func foreachPartition[T any](t *testing.T, r *RDD[T], f func(p int, data []T)) {
	t.Helper()
	if err := r.ForeachPartition(f); err != nil {
		t.Fatalf("ForeachPartition: %v", err)
	}
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	ctx := NewContext(4)
	data := intsUpTo(101)
	r := Parallelize(ctx, data, 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	got := collect(t, r)
	if len(got) != 101 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order not preserved at %d: %d", i, v)
		}
	}
	if count(t, r) != 101 {
		t.Fatalf("count = %d", count(t, r))
	}
}

func TestMapFilterFlatMapLazy(t *testing.T) {
	ctx := NewContext(2)
	var evals atomic.Int64
	src := Generate(ctx, "src", 3, func(p int) []int {
		evals.Add(1)
		return []int{p * 10, p*10 + 1}
	})
	mapped := Map(src, func(x int) int { return x * 2 })
	filtered := Filter(mapped, func(x int) bool { return x%4 == 0 })
	flat := FlatMap(filtered, func(x int) []int { return []int{x, x} })
	if evals.Load() != 0 {
		t.Fatal("transformations must be lazy")
	}
	got := collect(t, flat)
	if evals.Load() != 3 {
		t.Fatalf("each partition computed once, got %d", evals.Load())
	}
	want := []int{0, 0, 20, 20, 40, 40} // 0,2→0; 20,22→20; 40,42→40 doubled
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestUnionCoalesceTake(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3, 4}, 2)
	u := Union(a, b)
	if count(t, u) != 4 || u.NumPartitions() != 4 {
		t.Fatalf("union wrong: %d rows, %d parts", count(t, u), u.NumPartitions())
	}
	c := Coalesce(u, 2)
	if c.NumPartitions() != 2 || count(t, c) != 4 {
		t.Fatal("coalesce wrong")
	}
	taken, err := Take(u, 3)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	if len(taken) != 3 || taken[0] != 1 {
		t.Fatalf("take = %v", taken)
	}
	if got, err := Take(u, 100); err != nil || len(got) != 4 {
		t.Fatalf("take beyond size = %v, %v", got, err)
	}
}

func TestReduce(t *testing.T) {
	ctx := NewContext(3)
	r := Parallelize(ctx, intsUpTo(10), 3)
	sum, ok, err := Reduce(r, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatalf("reduce: %v", err)
	}
	if !ok || sum != 45 {
		t.Fatalf("reduce = %d, %v", sum, ok)
	}
	empty := Parallelize(ctx, []int{}, 2)
	if _, ok, err := Reduce(empty, func(a, b int) int { return a + b }); err != nil || ok {
		t.Fatalf("empty reduce should report !ok without error, got ok=%v err=%v", ok, err)
	}
}

func TestReduceByKeyCorrectness(t *testing.T) {
	ctx := NewContext(4)
	var pairs []Pair[string, int]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair[string, int]{Key: string(rune('a' + i%5)), Value: 1})
	}
	r := Parallelize(ctx, pairs, 8)
	reduced := ReduceByKey(r, func(a, b int) int { return a + b }, 3)
	got := map[string]int{}
	for _, kv := range collect(t, reduced) {
		if _, dup := got[kv.Key]; dup {
			t.Fatalf("key %q appeared in two partitions", kv.Key)
		}
		got[kv.Key] = kv.Value
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for k, v := range got {
		if v != 20 {
			t.Fatalf("count for %q = %d, want 20", k, v)
		}
	}
	if ctx.ShuffleRecords() == 0 {
		t.Fatal("shuffle metering should record movement")
	}
}

// Property: ReduceByKey with addition equals a sequential map-reduce, for
// any input and partitioning.
func TestReduceByKeyProperty(t *testing.T) {
	f := func(keys []uint8, parts uint8) bool {
		ctx := NewContext(4)
		pairs := make([]Pair[int, int], len(keys))
		want := map[int]int{}
		for i, k := range keys {
			key := int(k % 16)
			pairs[i] = Pair[int, int]{Key: key, Value: i}
			want[key] += i
		}
		r := Parallelize(ctx, pairs, int(parts%6)+1)
		reduced, err := ReduceByKey(r, func(a, b int) int { return a + b }, int(parts%4)+1).Collect()
		if err != nil {
			return false
		}
		got := map[int]int{}
		for _, kv := range reduced {
			got[kv.Key] = kv.Value
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, []Pair[string, int]{
		{"a", 1}, {"b", 2}, {"a", 3},
	}, 2)
	grouped := collect(t, GroupByKey(r, 2))
	byKey := map[string][]int{}
	for _, kv := range grouped {
		sort.Ints(kv.Value)
		byKey[kv.Key] = kv.Value
	}
	if len(byKey["a"]) != 2 || byKey["a"][0] != 1 || byKey["a"][1] != 3 {
		t.Fatalf("grouped = %v", byKey)
	}
}

func TestZipPartitions(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2, 3, 4}, 2)
	b := Parallelize(ctx, []string{"a", "b", "c", "d"}, 2)
	zipped, err := ZipPartitions(a, b, func(p int, xs []int, ys []string) []string {
		out := make([]string, len(xs))
		for i := range xs {
			out[i] = ys[i]
		}
		return out
	})
	if err != nil {
		t.Fatalf("zip: %v", err)
	}
	if got := collect(t, zipped); len(got) != 4 || got[0] != "a" {
		t.Fatalf("zip = %v", got)
	}
}

// Satellite: mismatched partition counts are a constructor error, not a
// panic at execution time.
func TestZipPartitionsMismatchedCounts(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2, 3, 4}, 2)
	_, err := ZipPartitions(a, Parallelize(ctx, []int{1}, 1), func(int, []int, []int) []int { return nil })
	if err == nil {
		t.Fatal("mismatched partition counts must return an error")
	}
	if !strings.Contains(err.Error(), "equal partition counts") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestCacheAndLineageRecovery(t *testing.T) {
	ctx := NewContext(2)
	var computes atomic.Int64
	src := Generate(ctx, "src", 4, func(p int) []int {
		computes.Add(1)
		return []int{p}
	})
	cached := Map(src, func(x int) int { return x * 10 }).Cache()
	if collect(t, cached); computes.Load() != 4 {
		t.Fatalf("first pass computes all: %d", computes.Load())
	}
	if collect(t, cached); computes.Load() != 4 {
		t.Fatalf("second pass must hit the cache: %d", computes.Load())
	}
	// Simulate losing a cached partition: the engine recomputes it from
	// lineage (the paper's §2.1 fault-tolerance property).
	cached.DropCachedPartition(2)
	got := collect(t, cached)
	if computes.Load() != 5 {
		t.Fatalf("exactly the lost partition recomputes: %d", computes.Load())
	}
	if ctx.Recomputes() != 1 {
		t.Fatalf("recompute metric = %d", ctx.Recomputes())
	}
	if len(got) != 4 || got[2] != 20 {
		t.Fatalf("recovered data wrong: %v", got)
	}
	cached.Unpersist()
	collect(t, cached)
	if computes.Load() != 9 {
		t.Fatalf("unpersist drops all cached partitions: %d", computes.Load())
	}
}

func TestTaskRetryOnInjectedFailure(t *testing.T) {
	ctx := NewContext(2)
	ctx.SetBackoff(time.Microsecond, 10*time.Microsecond)
	r := Generate(ctx, "flaky", 2, func(p int) []int { return []int{p} })
	var failures atomic.Int64
	ctx.SetFailureHook(func(name string, partition, attempt int) error {
		// Fail the first two attempts of partition 1.
		if partition == 1 && attempt <= 2 {
			failures.Add(1)
			return errors.New("injected")
		}
		return nil
	})
	got := collect(t, r)
	if len(got) != 2 {
		t.Fatalf("collect after retries = %v", got)
	}
	if failures.Load() != 2 || ctx.TaskRetries() != 2 {
		t.Fatalf("failures=%d retries=%d", failures.Load(), ctx.TaskRetries())
	}
}

// Tentpole: a permanently failing task surfaces as a typed *JobError
// carrying the failing RDD, partition and attempt count — no panic.
func TestTaskFailsAfterMaxAttemptsWithJobError(t *testing.T) {
	ctx := NewContext(1)
	ctx.SetBackoff(time.Microsecond, 10*time.Microsecond)
	r := Generate(ctx, "doomed", 1, func(p int) []int { return nil })
	ctx.SetFailureHook(func(string, int, int) error { return errors.New("always") })
	_, err := r.Collect()
	if err == nil {
		t.Fatal("permanently failing task must return an error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError via errors.As, got %T: %v", err, err)
	}
	if je.RDDName != "doomed" || je.Partition != 0 || je.Attempts != maxTaskAttempts {
		t.Fatalf("JobError fields wrong: %+v", je)
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("cause chain should contain the last *TaskError: %v", err)
	}
	if !strings.Contains(err.Error(), "always") {
		t.Fatalf("root cause lost: %v", err)
	}
}

// Satellite: a panic inside the compute function counts as one failed
// attempt and is retried, not propagated as a panic.
func TestPanicInComputeIsRetried(t *testing.T) {
	ctx := NewContext(2)
	ctx.SetBackoff(time.Microsecond, 10*time.Microsecond)
	var calls atomic.Int64
	r := Generate(ctx, "panicky", 2, func(p int) []int {
		if p == 1 && calls.Add(1) == 1 {
			panic("transient kaboom")
		}
		return []int{p}
	})
	got := collect(t, r)
	if len(got) != 2 || got[1] != 1 {
		t.Fatalf("collect after panic retry = %v", got)
	}
	if ctx.TaskRetries() != 1 {
		t.Fatalf("retries = %d, want 1", ctx.TaskRetries())
	}
}

// A permanently panicking compute becomes a JobError whose cause names the
// panic.
func TestPermanentPanicBecomesJobError(t *testing.T) {
	ctx := NewContext(1)
	ctx.SetBackoff(time.Microsecond, 10*time.Microsecond)
	r := Generate(ctx, "kaboom", 1, func(p int) []int { panic("kaboom") })
	_, err := r.Collect()
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %v", err)
	}
	if !strings.Contains(err.Error(), "panic in compute: kaboom") {
		t.Fatalf("panic cause lost: %v", err)
	}
}

// Tentpole: cancelling the job context returns promptly with the context
// error and leaves no task goroutines computing.
func TestCancellationStopsBlockedTasks(t *testing.T) {
	ctx := NewContext(4)
	var active atomic.Int64
	r := GenerateCtx(ctx, "blocker", 4, func(jc context.Context, p int) ([]int, error) {
		if p == 0 {
			return []int{0}, nil
		}
		active.Add(1)
		defer active.Add(-1)
		<-jc.Done() // blocks until the job is cancelled
		return nil, jc.Err()
	})
	jc, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.CollectContext(jc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	// All blocked task goroutines must unwind once cancelled.
	deadline := time.Now().Add(2 * time.Second)
	for active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d task goroutines still computing after cancel", active.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// An already-expired deadline fails the job before any task runs.
func TestDeadlineExceeded(t *testing.T) {
	ctx := NewContext(2)
	var computes atomic.Int64
	r := Generate(ctx, "slow", 2, func(p int) []int {
		computes.Add(1)
		return []int{p}
	})
	jc, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	_, err := r.CollectContext(jc)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if computes.Load() != 0 {
		t.Fatalf("no task should run under an expired deadline, ran %d", computes.Load())
	}
}

// Backoff schedule is deterministic, exponentially bounded and capped,
// with seeded per-task jitter inside [d/2, d].
func TestBackoffSchedule(t *testing.T) {
	ctx := NewContext(1)
	ctx.SetBackoff(time.Millisecond, 5*time.Millisecond)
	bounds := []time.Duration{
		1 * time.Millisecond, // retry 1
		2 * time.Millisecond, // retry 2
		4 * time.Millisecond, // retry 3
		5 * time.Millisecond, // retry 4, capped
		5 * time.Millisecond, // retry 5, capped
	}
	for i, d := range bounds {
		got := ctx.backoffFor("r", 0, i+1)
		if got < d/2 || got > d {
			t.Fatalf("backoffFor(retry %d) = %v, want within [%v, %v]", i+1, got, d/2, d)
		}
		if again := ctx.backoffFor("r", 0, i+1); again != got {
			t.Fatalf("backoffFor(retry %d) not deterministic: %v then %v", i+1, got, again)
		}
	}
}

// Jitter decorrelates tasks that fail simultaneously, and a fixed seed
// reproduces the exact schedule.
func TestBackoffJitterSeeded(t *testing.T) {
	ctx := NewContext(1)
	ctx.SetBackoff(time.Millisecond, 64*time.Millisecond)
	ctx.SetBackoffSeed(42)
	// Across many partitions failing at the same retry, the waits must not
	// all collapse onto one value (no retry lockstep).
	seen := map[time.Duration]bool{}
	for p := 0; p < 32; p++ {
		seen[ctx.backoffFor("stage", p, 4)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("32 partitions share only %d distinct backoff values — lockstep retries", len(seen))
	}
	// Same seed → identical schedule; the schedule is reproducible.
	other := NewContext(1)
	other.SetBackoff(time.Millisecond, 64*time.Millisecond)
	other.SetBackoffSeed(42)
	for p := 0; p < 32; p++ {
		for retry := 1; retry <= 4; retry++ {
			if a, b := ctx.backoffFor("stage", p, retry), other.backoffFor("stage", p, retry); a != b {
				t.Fatalf("same seed diverged at p=%d retry=%d: %v vs %v", p, retry, a, b)
			}
		}
	}
	// A different seed shifts the schedule (with overwhelming likelihood
	// across 32 samples).
	other.SetBackoffSeed(7)
	diff := false
	for p := 0; p < 32 && !diff; p++ {
		diff = ctx.backoffFor("stage", p, 4) != other.backoffFor("stage", p, 4)
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Satellite: an injected map-output (shuffle fetch) failure retries the map
// task and loses no data.
func TestShuffleFetchFailureRetried(t *testing.T) {
	ctx := NewContext(4)
	ctx.SetBackoff(time.Microsecond, 10*time.Microsecond)
	pairs := make([]Pair[string, int], 100)
	for i := range pairs {
		pairs[i] = Pair[string, int]{Key: string(rune('a' + i%5)), Value: 1}
	}
	src := Generate(ctx, "mapside", 4, func(p int) []Pair[string, int] {
		lo, hi := 100*p/4, 100*(p+1)/4
		return pairs[lo:hi]
	})
	var injected atomic.Int64
	ctx.SetFailureHook(func(name string, partition, attempt int) error {
		// Fail the first fetch of one map task feeding the shuffle.
		if name == "mapside" && partition == 2 && attempt == 1 {
			injected.Add(1)
			return errors.New("injected map output lost")
		}
		return nil
	})
	reduced := ReduceByKey(src, func(a, b int) int { return a + b }, 3)
	got := map[string]int{}
	for _, kv := range collect(t, reduced) {
		got[kv.Key] += kv.Value
	}
	if injected.Load() == 0 {
		t.Fatal("fault was never injected")
	}
	if ctx.TaskRetries() == 0 {
		t.Fatal("map task should have been retried")
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for k, v := range got {
		if v != 20 {
			t.Fatalf("data lost across retry: %q = %d, want 20", k, v)
		}
	}
}

// Tentpole: a straggling task gets a speculative backup attempt; the backup
// finishes first and the result is unchanged.
func TestSpeculationMitigatesStraggler(t *testing.T) {
	ctx := NewContext(8)
	ctx.SetSpeculation(true, 2.0, 5*time.Millisecond)
	r := Generate(ctx, "straggly", 8, func(p int) []int { return []int{p} })
	ctx.SetLatencyHook(func(name string, partition, attempt int) time.Duration {
		// Attempt 1 of partition 0 hangs far beyond the median; the backup
		// attempt (numbered > maxTaskAttempts) runs at full speed.
		if partition == 0 && attempt == 1 {
			return 10 * time.Second
		}
		return 0
	})
	done := make(chan struct{})
	var got []int
	var err error
	go func() {
		got, err = r.Collect()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(8 * time.Second):
		t.Fatal("speculation did not rescue the straggler")
	}
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("result = %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result wrong at %d: %v", i, got)
		}
	}
	if ctx.SpeculativeLaunches() == 0 {
		t.Fatal("no speculative attempt launched")
	}
	if ctx.SpeculativeWins() == 0 {
		t.Fatal("backup attempt should have won")
	}
}

func TestBroadcast(t *testing.T) {
	b := NewBroadcast(map[string]int{"x": 1})
	if b.Value()["x"] != 1 {
		t.Fatal("broadcast value")
	}
}

func TestPartitionByHashCoLocation(t *testing.T) {
	ctx := NewContext(4)
	data := intsUpTo(200)
	r := Parallelize(ctx, data, 8)
	hashed := PartitionByHash(r, 4, func(x int) uint64 { return uint64(x % 10) })
	// Values with equal hash must land in the same partition.
	partOf := map[int]int{}
	foreachPartition(t, hashed, func(p int, xs []int) {
		for _, x := range xs {
			partOf[x] = p
		}
	})
	for _, x := range data {
		if partOf[x] != partOf[x%10] {
			t.Fatalf("co-location violated for %d", x)
		}
	}
	if count(t, hashed) != 200 {
		t.Fatal("shuffle must preserve all records")
	}
}

// Regression: the generic hashKey fallback used to send every non-int,
// non-string key to bucket 0, collapsing such shuffles onto one reducer.
func TestHashKeySpreadForGenericKeys(t *testing.T) {
	type point struct{ X, Y int }
	const buckets = 8
	seen := map[int]int{}
	for i := 0; i < 400; i++ {
		seen[hashKey(point{X: i, Y: i * 31}, buckets)]++
	}
	if len(seen) < buckets/2 {
		t.Fatalf("generic keys hit only %d/%d buckets: %v", len(seen), buckets, seen)
	}
	if seen[0] == 400 {
		t.Fatal("all generic keys collapsed onto bucket 0")
	}
	for b := range seen {
		if b < 0 || b >= buckets {
			t.Fatalf("bucket %d out of range", b)
		}
	}
}

func TestPartitionByKeyGenericKeysSpread(t *testing.T) {
	type point struct{ X, Y int }
	ctx := NewContext(4)
	pairs := make([]Pair[point, int], 300)
	for i := range pairs {
		pairs[i] = Pair[point, int]{Key: point{X: i, Y: -i}, Value: i}
	}
	shuffled := PartitionByKey(Parallelize(ctx, pairs, 6), 4)
	nonEmpty := 0
	total := 0
	foreachPartition(t, shuffled, func(p int, kvs []Pair[point, int]) {
		if len(kvs) > 0 {
			nonEmpty++
		}
		total += len(kvs)
	})
	if total != len(pairs) {
		t.Fatalf("shuffle lost records: %d of %d", total, len(pairs))
	}
	if nonEmpty < 2 {
		t.Fatalf("struct keys landed on %d reducer(s); want spread", nonEmpty)
	}
}

// The parallel map side must produce exactly the ordering of a sequential
// pass: per reducer, records appear in map-partition order, then input order.
func TestParallelBucketingDeterministicOrder(t *testing.T) {
	ctx := NewContext(8)
	const n, reducers = 1000, 5
	pairs := make([]Pair[string, int], n)
	for i := range pairs {
		pairs[i] = Pair[string, int]{Key: "k" + string(rune('a'+i%26)), Value: i}
	}
	parent := Parallelize(ctx, pairs, 7)

	// Reference: sequential bucketing over the same partition split.
	want := make([][]Pair[string, int], reducers)
	for p := 0; p < 7; p++ {
		lo, hi := n*p/7, n*(p+1)/7
		for _, kv := range pairs[lo:hi] {
			b := hashKey(kv.Key, reducers)
			want[b] = append(want[b], kv)
		}
	}

	shuffled := PartitionByKey(parent, reducers)
	foreachPartition(t, shuffled, func(p int, got []Pair[string, int]) {
		if len(got) != len(want[p]) {
			t.Fatalf("reducer %d: %d records, want %d", p, len(got), len(want[p]))
		}
		for i := range got {
			if got[i] != want[p][i] {
				t.Fatalf("reducer %d record %d: %v, want %v (order must be deterministic)",
					p, i, got[i], want[p][i])
			}
		}
	})
}

// A panic on the shuffle map side surfaces as a job error, not a panic.
func TestParallelBucketingPanicBecomesError(t *testing.T) {
	ctx := NewContext(4)
	ctx.SetBackoff(time.Microsecond, 10*time.Microsecond)
	r := Map(Parallelize(ctx, intsUpTo(100), 4), func(x int) Pair[int, int] {
		if x == 57 {
			panic("boom in map side")
		}
		return Pair[int, int]{Key: x, Value: x}
	})
	_, err := PartitionByKey(r, 3).Collect()
	if err == nil {
		t.Fatal("expected shuffle map-side panic to surface as an error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "boom in map side") {
		t.Fatalf("root cause lost: %v", err)
	}
}
