package rdd

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

// fakeRunner scripts a RemoteRunner for executor-semantics tests.
type fakeRunner struct {
	mu        sync.Mutex
	available bool
	calls     int
	run       func(call, partition int) ([]byte, string, error)
}

func (f *fakeRunner) Available() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.available
}

func (f *fakeRunner) RunTask(jc context.Context, kind string, partition int, payload []byte) ([]byte, string, error) {
	f.mu.Lock()
	f.calls++
	call := f.calls
	f.mu.Unlock()
	return f.run(call, partition)
}

func remoteWrap(ctx *Context, data []int) *RDD[int] {
	local := Parallelize(ctx, data, 2)
	return RemoteOrLocal(local, "test.kind",
		func(p int) []byte { return []byte{byte(p)} },
		func(b []byte) ([]int, error) {
			var out []int
			for _, s := range strings.Split(string(b), ",") {
				v, err := strconv.Atoi(s)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			return out, nil
		})
}

func TestRemoteOrLocalNoRunnerIsLocal(t *testing.T) {
	ctx := NewContext(2)
	r := remoteWrap(ctx, []int{1, 2, 3, 4})
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("got %v", got)
	}
}

func TestRemoteOrLocalDispatchesAndTagsWorker(t *testing.T) {
	ctx := NewContext(2)
	runner := &fakeRunner{available: true}
	runner.run = func(call, p int) ([]byte, string, error) {
		if p == 0 {
			return []byte("10,20"), "w0", nil
		}
		return []byte("30,40"), "w1", nil
	}
	ctx.SetRemoteRunner(runner)
	r := remoteWrap(ctx, []int{1, 2, 3, 4})
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[10 20 30 40]" {
		t.Fatalf("got %v", got)
	}
	// Task spans carry the worker identity.
	workers := map[string]bool{}
	for _, sp := range ctx.Trace().Snapshot() {
		if sp.Kind == metrics.SpanTask && sp.Worker != "" {
			workers[sp.Worker] = true
		}
	}
	if !workers["w0"] || !workers["w1"] {
		t.Fatalf("span workers = %v, want w0 and w1", workers)
	}
}

func TestRemoteOrLocalFallbackSignals(t *testing.T) {
	for _, sentinel := range []error{ErrNoWorkers, ErrRemoteFallback} {
		ctx := NewContext(2)
		runner := &fakeRunner{available: true}
		runner.run = func(call, p int) ([]byte, string, error) {
			return nil, "", fmt.Errorf("wrapped: %w", sentinel)
		}
		ctx.SetRemoteRunner(runner)
		r := remoteWrap(ctx, []int{5, 6, 7, 8})
		got, err := r.Collect()
		if err != nil {
			t.Fatalf("%v: %v", sentinel, err)
		}
		if fmt.Sprint(got) != "[5 6 7 8]" {
			t.Fatalf("%v: got %v", sentinel, got)
		}
		// ErrRemoteFallback counts as a surfaced fallback (the worker
		// refused the task); ErrNoWorkers is just an idle cluster and
		// must not inflate the counter.
		want := int64(0)
		if sentinel == ErrRemoteFallback {
			want = int64(r.NumPartitions())
		}
		if got := ctx.RemoteFallbacks(); got != want {
			t.Fatalf("%v: RemoteFallbacks = %d, want %d", sentinel, got, want)
		}
		if got := ctx.Metrics().Counter("cluster.fallback").Load(); got != want {
			t.Fatalf("%v: cluster.fallback counter = %d, want %d", sentinel, got, want)
		}
	}
}

func TestRemoteOrLocalRetriesWorkerLoss(t *testing.T) {
	ctx := NewContext(2)
	ctx.SetBackoff(1, 2) // nanoseconds; keep the test fast
	var firstAttempts atomic.Int64
	runner := &fakeRunner{available: true}
	runner.run = func(call, p int) ([]byte, string, error) {
		if firstAttempts.Add(1) == 1 {
			return nil, "w-dead", errors.New("worker lost mid-task")
		}
		return []byte("1"), "w-alive", nil
	}
	ctx.SetRemoteRunner(runner)
	r := remoteWrap(ctx, []int{0, 0})
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	if ctx.TaskRetries() == 0 {
		t.Fatal("worker loss did not register as a retried task attempt")
	}
}

func TestRemoteOrLocalExhaustionCarriesWorker(t *testing.T) {
	ctx := NewContext(1)
	ctx.SetBackoff(1, 2)
	runner := &fakeRunner{available: true}
	runner.run = func(call, p int) ([]byte, string, error) {
		return nil, "w3", errors.New("persistent failure")
	}
	ctx.SetRemoteRunner(runner)
	r := remoteWrap(ctx, []int{1})
	_, err := r.Collect()
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v, want JobError", err)
	}
	if je.Worker != "w3" {
		t.Fatalf("JobError.Worker = %q, want w3", je.Worker)
	}
	if !strings.Contains(je.Error(), "on w3") {
		t.Fatalf("JobError text lacks worker: %q", je.Error())
	}
}

// shuffle service fakes: an in-memory bucket map shared by "workers".
type fakeShuffle struct {
	mu      sync.Mutex
	buckets map[string][][]byte
	fetches int
	hits    int
}

func (f *fakeShuffle) Publish(jc context.Context, shuffleID string, buckets [][]byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.buckets == nil {
		f.buckets = make(map[string][][]byte)
	}
	f.buckets[shuffleID] = buckets
	return nil
}

func (f *fakeShuffle) FetchBucket(jc context.Context, shuffleID string, bucket int) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetches++
	bs, ok := f.buckets[shuffleID]
	if !ok || bucket >= len(bs) || bs[bucket] == nil {
		return nil, false, nil
	}
	f.hits++
	return bs[bucket], true, nil
}

var intCodec = &Codec[int]{
	Encode: func(vs []int) ([]byte, error) {
		ss := make([]string, len(vs))
		for i, v := range vs {
			ss[i] = strconv.Itoa(v)
		}
		return []byte(strings.Join(ss, ",")), nil
	},
	Decode: func(b []byte) ([]int, error) {
		if len(b) == 0 {
			return nil, nil
		}
		parts := strings.Split(string(b), ",")
		out := make([]int, len(parts))
		for i, s := range parts {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	},
}

func sortedInts(t *testing.T, r *RDD[int]) []int {
	t.Helper()
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	out := append([]int(nil), got...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestCodecShufflePublishesAndServes(t *testing.T) {
	svc := &fakeShuffle{}

	build := func() (*Context, *RDD[int]) {
		ctx := NewContext(2)
		ctx.SetShuffleService(svc)
		ctx.SetShuffleScope("q1")
		src := Parallelize(ctx, []int{5, 1, 4, 2, 3, 0}, 3)
		return ctx, PartitionByHashCodec(src, 2, func(v int) uint64 { return uint64(v) }, intCodec)
	}

	// First "worker": computes the map side locally, publishes buckets.
	_, r1 := build()
	want := fmt.Sprint([]int{0, 1, 2, 3, 4, 5})
	if got := sortedInts(t, r1); fmt.Sprint(got) != want {
		t.Fatalf("got %v", got)
	}
	svc.mu.Lock()
	published := len(svc.buckets)
	svc.mu.Unlock()
	if published != 1 {
		t.Fatalf("published %d shuffles, want 1", published)
	}

	// Second "worker" with the same scope: identical shuffle id, so its
	// reduce tasks are served from the published buckets.
	_, r2 := build()
	if got := sortedInts(t, r2); fmt.Sprint(got) != want {
		t.Fatalf("fetched results differ: %v", got)
	}
	svc.mu.Lock()
	hits := svc.hits
	svc.mu.Unlock()
	if hits == 0 {
		t.Fatal("second context never fetched a published bucket")
	}
}

func TestCodecShuffleMissRecomputes(t *testing.T) {
	// A service that never has anything (every owner died): results must
	// still be correct via local recompute.
	svc := &fakeShuffle{}
	ctx := NewContext(2)
	ctx.SetShuffleService(svc)
	ctx.SetShuffleScope("q-lost")
	src := Parallelize(ctx, []int{9, 8, 7, 6}, 2)
	r := PartitionByHashCodec(src, 2, func(v int) uint64 { return uint64(v) }, intCodec)
	if got := sortedInts(t, r); fmt.Sprint(got) != fmt.Sprint([]int{6, 7, 8, 9}) {
		t.Fatalf("got %v", got)
	}
	svc.mu.Lock()
	fetches := svc.fetches
	svc.mu.Unlock()
	if fetches == 0 {
		t.Fatal("no fetch was even attempted")
	}
}

func TestCodecShuffleWithoutScopeStaysLocal(t *testing.T) {
	svc := &fakeShuffle{}
	ctx := NewContext(2)
	ctx.SetShuffleService(svc)
	// No scope set: nothing may be published or fetched.
	src := Parallelize(ctx, []int{1, 2, 3}, 2)
	r := PartitionByHashCodec(src, 2, func(v int) uint64 { return uint64(v) }, intCodec)
	if got := sortedInts(t, r); fmt.Sprint(got) != fmt.Sprint([]int{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.fetches != 0 || len(svc.buckets) != 0 {
		t.Fatalf("scope-less shuffle touched the service: fetches=%d published=%d", svc.fetches, len(svc.buckets))
	}
}
