package rdd

// Transformations are package-level functions because Go methods cannot
// introduce new type parameters. All are lazy: they build a new RDD whose
// compute function pulls from the parent (a narrow dependency), except the
// shuffle-based operations in shuffle.go.

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return newRDD(r.ctx, r.name+".map", r.numPart, func(p int) []U {
		in := r.partition(p)
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out
	})
}

// Filter keeps elements satisfying pred.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return newRDD(r.ctx, r.name+".filter", r.numPart, func(p int) []T {
		in := r.partition(p)
		out := make([]T, 0, len(in)/2)
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out
	})
}

// FlatMap applies f and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return newRDD(r.ctx, r.name+".flatMap", r.numPart, func(p int) []U {
		in := r.partition(p)
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		return out
	})
}

// MapPartitions transforms whole partitions at once — the pipelining
// primitive: a fused project+filter chain becomes one MapPartitions
// (paper §4.3.3, "pipelining projections or filters into one Spark map
// operation").
func MapPartitions[T, U any](r *RDD[T], f func(p int, in []T) []U) *RDD[U] {
	return newRDD(r.ctx, r.name+".mapPartitions", r.numPart, func(p int) []U {
		return f(p, r.partition(p))
	})
}

// Union concatenates the partitions of two RDDs.
func Union[T any](a, b *RDD[T]) *RDD[T] {
	return newRDD(a.ctx, "union", a.numPart+b.numPart, func(p int) []T {
		if p < a.numPart {
			return a.partition(p)
		}
		return b.partition(p - a.numPart)
	})
}

// Coalesce reduces the partition count without a shuffle by concatenating
// ranges of parent partitions.
func Coalesce[T any](r *RDD[T], numPartitions int) *RDD[T] {
	if numPartitions >= r.numPart {
		return r
	}
	return newRDD(r.ctx, r.name+".coalesce", numPartitions, func(p int) []T {
		lo := r.numPart * p / numPartitions
		hi := r.numPart * (p + 1) / numPartitions
		var out []T
		for q := lo; q < hi; q++ {
			out = append(out, r.partition(q)...)
		}
		return out
	})
}

// Reduce folds all elements with f; ok is false for an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (result T, ok bool) {
	parts := r.computeAll()
	for _, part := range parts {
		for _, v := range part {
			if !ok {
				result, ok = v, true
			} else {
				result = f(result, v)
			}
		}
	}
	return result, ok
}

// Take returns up to n leading elements without computing later partitions
// once enough rows are found (partitions are still computed whole).
func Take[T any](r *RDD[T], n int) []T {
	out := make([]T, 0, n)
	for p := 0; p < r.numPart && len(out) < n; p++ {
		for _, v := range r.partition(p) {
			out = append(out, v)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// ZipPartitions combines the corresponding partitions of two RDDs with
// equal partition counts — the primitive under shuffled hash joins (both
// sides are hash-partitioned the same way, then joined partition-by-
// partition).
func ZipPartitions[A, B, C any](a *RDD[A], b *RDD[B], f func(p int, left []A, right []B) []C) *RDD[C] {
	if a.numPart != b.numPart {
		panic("rdd: ZipPartitions requires equal partition counts")
	}
	return newRDD(a.ctx, "zipPartitions", a.numPart, func(p int) []C {
		return f(p, a.partition(p), b.partition(p))
	})
}

// Broadcast is a value shipped once to all tasks (paper §4.3.3's
// peer-to-peer broadcast facility; in-process it is a shared pointer, but
// keeping the explicit type preserves the programming model).
type Broadcast[T any] struct{ value T }

// NewBroadcast wraps a value for broadcast.
func NewBroadcast[T any](v T) *Broadcast[T] { return &Broadcast[T]{value: v} }

// Value returns the broadcast value.
func (b *Broadcast[T]) Value() T { return b.value }
