package rdd

import (
	"context"
	"fmt"
)

// Transformations are package-level functions because Go methods cannot
// introduce new type parameters. All are lazy: they build a new RDD whose
// compute function pulls from the parent (a narrow dependency), except the
// shuffle-based operations in shuffle.go.

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return newRDD(r.ctx, r.name+".map", r.numPart, func(jc context.Context, p int) ([]U, error) {
		in, err := r.partition(jc, p)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out, nil
	})
}

// Filter keeps elements satisfying pred.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return newRDD(r.ctx, r.name+".filter", r.numPart, func(jc context.Context, p int) ([]T, error) {
		in, err := r.partition(jc, p)
		if err != nil {
			return nil, err
		}
		out := make([]T, 0, len(in)/2)
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// FlatMap applies f and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return newRDD(r.ctx, r.name+".flatMap", r.numPart, func(jc context.Context, p int) ([]U, error) {
		in, err := r.partition(jc, p)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		return out, nil
	})
}

// MapPartitions transforms whole partitions at once — the pipelining
// primitive: a fused project+filter chain becomes one MapPartitions
// (paper §4.3.3, "pipelining projections or filters into one Spark map
// operation").
func MapPartitions[T, U any](r *RDD[T], f func(p int, in []T) []U) *RDD[U] {
	return newRDD(r.ctx, r.name+".mapPartitions", r.numPart, func(jc context.Context, p int) ([]U, error) {
		in, err := r.partition(jc, p)
		if err != nil {
			return nil, err
		}
		return f(p, in), nil
	})
}

// MapPartitionsCtx is MapPartitions for partition functions that observe
// the job context or fail with an error — operators that run nested jobs
// inside a task (a broadcast build side, a limit's scan) use it so nested
// failures and cancellation propagate instead of panicking.
func MapPartitionsCtx[T, U any](r *RDD[T], f func(jc context.Context, p int, in []T) ([]U, error)) *RDD[U] {
	return newRDD(r.ctx, r.name+".mapPartitions", r.numPart, func(jc context.Context, p int) ([]U, error) {
		in, err := r.partition(jc, p)
		if err != nil {
			return nil, err
		}
		return f(jc, p, in)
	})
}

// Union concatenates the partitions of two RDDs.
func Union[T any](a, b *RDD[T]) *RDD[T] {
	return newRDD(a.ctx, "union", a.numPart+b.numPart, func(jc context.Context, p int) ([]T, error) {
		if p < a.numPart {
			return a.partition(jc, p)
		}
		return b.partition(jc, p-a.numPart)
	})
}

// Coalesce reduces the partition count without a shuffle by concatenating
// ranges of parent partitions.
func Coalesce[T any](r *RDD[T], numPartitions int) *RDD[T] {
	if numPartitions >= r.numPart {
		return r
	}
	return newRDD(r.ctx, r.name+".coalesce", numPartitions, func(jc context.Context, p int) ([]T, error) {
		lo := r.numPart * p / numPartitions
		hi := r.numPart * (p + 1) / numPartitions
		var out []T
		for q := lo; q < hi; q++ {
			part, err := r.partition(jc, q)
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil
	})
}

// Reduce folds all elements with f; ok is false for an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (result T, ok bool, err error) {
	parts, err := r.computeAll(context.Background())
	if err != nil {
		var zero T
		return zero, false, err
	}
	for _, part := range parts {
		for _, v := range part {
			if !ok {
				result, ok = v, true
			} else {
				result = f(result, v)
			}
		}
	}
	return result, ok, nil
}

// Take returns up to n leading elements without computing later partitions
// once enough rows are found (partitions are still computed whole).
func Take[T any](r *RDD[T], n int) ([]T, error) {
	return TakeContext(context.Background(), r, n)
}

// TakeContext is Take under a job context.
func TakeContext[T any](jc context.Context, r *RDD[T], n int) ([]T, error) {
	out := make([]T, 0, n)
	for p := 0; p < r.numPart && len(out) < n; p++ {
		part, err := r.partition(jc, p)
		if err != nil {
			return nil, err
		}
		for _, v := range part {
			out = append(out, v)
			if len(out) == n {
				break
			}
		}
	}
	return out, nil
}

// ZipPartitions combines the corresponding partitions of two RDDs with
// equal partition counts — the primitive under shuffled hash joins (both
// sides are hash-partitioned the same way, then joined partition-by-
// partition). Unequal partition counts are a construction error.
func ZipPartitions[A, B, C any](a *RDD[A], b *RDD[B], f func(p int, left []A, right []B) []C) (*RDD[C], error) {
	if a.numPart != b.numPart {
		return nil, fmt.Errorf("rdd: ZipPartitions requires equal partition counts (%d vs %d)",
			a.numPart, b.numPart)
	}
	return newRDD(a.ctx, "zipPartitions", a.numPart, func(jc context.Context, p int) ([]C, error) {
		left, err := a.partition(jc, p)
		if err != nil {
			return nil, err
		}
		right, err := b.partition(jc, p)
		if err != nil {
			return nil, err
		}
		return f(p, left, right), nil
	}), nil
}

// ZipPartitionsCtx is ZipPartitions for partition functions that observe
// the job context or fail with an error — the sort-merge join uses it so
// spill-file write failures inside a task surface as retryable task errors.
func ZipPartitionsCtx[A, B, C any](a *RDD[A], b *RDD[B], f func(jc context.Context, p int, left []A, right []B) ([]C, error)) (*RDD[C], error) {
	if a.numPart != b.numPart {
		return nil, fmt.Errorf("rdd: ZipPartitions requires equal partition counts (%d vs %d)",
			a.numPart, b.numPart)
	}
	return newRDD(a.ctx, "zipPartitions", a.numPart, func(jc context.Context, p int) ([]C, error) {
		left, err := a.partition(jc, p)
		if err != nil {
			return nil, err
		}
		right, err := b.partition(jc, p)
		if err != nil {
			return nil, err
		}
		return f(jc, p, left, right)
	}), nil
}

// Broadcast is a value shipped once to all tasks (paper §4.3.3's
// peer-to-peer broadcast facility; in-process it is a shared pointer, but
// keeping the explicit type preserves the programming model).
type Broadcast[T any] struct{ value T }

// NewBroadcast wraps a value for broadcast.
func NewBroadcast[T any](v T) *Broadcast[T] { return &Broadcast[T]{value: v} }

// Value returns the broadcast value.
func (b *Broadcast[T]) Value() T { return b.value }
