// Package rdd is a from-scratch, in-process reproduction of Spark's
// Resilient Distributed Dataset engine (paper §2.1 and [39]): lazily
// evaluated, partitioned collections with functional transformations,
// lineage-based fault recovery, hash shuffles for wide dependencies,
// explicit caching, broadcast values, and a structured, cancellable task
// executor with capped exponential-backoff retries and speculative
// execution of stragglers. Partitions run on goroutines instead of cluster
// nodes; everything else — laziness, lineage, narrow-vs-wide dependencies,
// shuffle materialization, the DAGScheduler's fail-fast job abort — follows
// the Spark model.
//
// Failure semantics: a compute panic or error is one failed task attempt,
// retried up to maxTaskAttempts with deterministic exponential backoff.
// The first terminal failure cancels all in-flight and pending sibling
// tasks and surfaces from actions as a *JobError; no panic crosses the
// package boundary. A job context (CollectContext and friends) threads
// into every task, so jobs can be cancelled or time out.
package rdd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Context owns the executor and engine-wide metrics — the SparkContext of
// this mini engine.
type Context struct {
	parallelism int

	// registry holds every engine counter under the "rdd." scope; trace is
	// the in-memory event log of job/stage/task/shuffle spans (nil when
	// tracing is off — all append paths are nil-safe). jobSeq numbers
	// top-level actions so all spans of one action share a job id.
	registry *metrics.Registry
	trace    atomic.Pointer[metrics.TraceBuffer]
	jobSeq   atomic.Int64

	// executor counters, held as resolved registry handles so the hot path
	// stays a single atomic add; the accessor methods below preserve the
	// pre-registry API.
	tasksRun            *metrics.Counter
	taskRetries         *metrics.Counter
	recomputes          *metrics.Counter
	shuffleRecords      *metrics.Counter
	shuffleBytes        *metrics.Counter
	speculativeLaunches *metrics.Counter
	speculativeWins     *metrics.Counter
	// remoteFallbacks counts tasks a remote runner refused with
	// ErrRemoteFallback and that were computed locally instead; registered
	// under the "cluster." scope because it measures the cluster layer.
	remoteFallbacks *metrics.Counter
	// traceDropped counts spans the fixed-capacity trace ring evicted
	// unexported ("trace.dropped") so truncation is observable.
	traceDropped *metrics.Counter

	mu sync.Mutex
	// failureHook, when set, lets tests inject task failures: return an
	// error to fail the given attempt of a task. The executor retries up
	// to maxTaskAttempts.
	failureHook func(rddName string, partition, attempt int) error
	// latencyHook, when set, injects a per-attempt latency (a simulated
	// slow node); the sleep honors the job context, so cancelled jobs do
	// not wait it out.
	latencyHook func(rddName string, partition, attempt int) time.Duration

	// retry backoff: retry n waits min(backoffBase << (n-1), backoffMax),
	// scaled by a deterministic per-task jitter derived from backoffSeed so
	// simultaneous failures (a dead worker's whole task batch) do not retry
	// in lockstep.
	backoffBase time.Duration
	backoffMax  time.Duration
	backoffSeed uint64

	// remote execution hooks (see remote.go); nil = pure local execution.
	remoteRunner RemoteRunner
	shuffleSvc   ShuffleService
	shuffleScope string
	shuffleSeq   int

	// speculation: when a partition has run longer than specMultiplier
	// times the median completed-task time of its job (and longer than
	// specMin), a backup attempt is launched and the first finisher wins.
	specEnabled    bool
	specMultiplier float64
	specMin        time.Duration
}

const (
	maxTaskAttempts    = 4
	defaultBackoffBase = time.Millisecond
	defaultBackoffMax  = 50 * time.Millisecond
	defaultSpecMult    = 3.0
	defaultSpecMin     = 20 * time.Millisecond
	specCheckInterval  = time.Millisecond
)

// NewContext creates an execution context running at most parallelism
// concurrent tasks.
func NewContext(parallelism int) *Context {
	if parallelism < 1 {
		parallelism = 1
	}
	reg := metrics.NewRegistry()
	s := reg.Scoped("rdd")
	c := &Context{
		parallelism:         parallelism,
		registry:            reg,
		tasksRun:            s.Counter("tasks.run"),
		taskRetries:         s.Counter("tasks.retries"),
		recomputes:          s.Counter("cache.recomputes"),
		shuffleRecords:      s.Counter("shuffle.records"),
		shuffleBytes:        s.Counter("shuffle.bytes"),
		speculativeLaunches: s.Counter("speculation.launches"),
		speculativeWins:     s.Counter("speculation.wins"),
		remoteFallbacks:     reg.Scoped("cluster").Counter("fallback"),
		backoffBase:         defaultBackoffBase,
		backoffMax:          defaultBackoffMax,
		specMultiplier:      defaultSpecMult,
		specMin:             defaultSpecMin,
	}
	c.traceDropped = reg.Scoped("trace").Counter("dropped")
	tb := metrics.NewTraceBuffer(0)
	tb.SetDropCounter(c.traceDropped)
	c.trace.Store(tb)
	return c
}

// Parallelism returns the task concurrency.
func (c *Context) Parallelism() int { return c.parallelism }

// Metrics returns the engine-wide metrics registry shared by every
// subsystem that hangs off this context.
func (c *Context) Metrics() *metrics.Registry { return c.registry }

// Trace returns the span buffer — the in-memory event log — or nil when
// tracing is disabled.
func (c *Context) Trace() *metrics.TraceBuffer { return c.trace.Load() }

// SetTracing enables or disables span collection. Disabling drops the
// buffered spans; counters are unaffected.
func (c *Context) SetTracing(enabled bool) {
	if enabled {
		if c.trace.Load() == nil {
			tb := metrics.NewTraceBuffer(0)
			tb.SetDropCounter(c.traceDropped)
			c.trace.Store(tb)
		}
	} else {
		c.trace.Store(nil)
	}
}

// jobIDKey carries the action's job id through job contexts so nested
// stages (shuffle map sides, broadcast builds) trace under the same job.
type jobIDKey struct{}

func jobIDFrom(jc context.Context) (int64, bool) {
	id, ok := jc.Value(jobIDKey{}).(int64)
	return id, ok
}

// beginJob tags jc with a fresh job id when it does not already carry one.
// The bool reports whether this call opened the job (i.e. is the top-level
// action and should emit the job span).
func (c *Context) beginJob(jc context.Context) (context.Context, int64, bool) {
	if jc == nil {
		jc = context.Background()
	}
	if id, ok := jobIDFrom(jc); ok {
		return jc, id, false
	}
	id := c.jobSeq.Add(1)
	return context.WithValue(jc, jobIDKey{}, id), id, true
}

// TasksRun returns the number of task executions (including retries).
func (c *Context) TasksRun() int64 { return c.tasksRun.Load() }

// TaskRetries returns how many task attempts failed and were retried.
func (c *Context) TaskRetries() int64 { return c.taskRetries.Load() }

// RemoteFallbacks returns how many tasks fell back to local compute after
// a remote runner refused them with ErrRemoteFallback.
func (c *Context) RemoteFallbacks() int64 { return c.remoteFallbacks.Load() }

// Recomputes returns how many cached partitions were rebuilt from lineage
// after being dropped.
func (c *Context) Recomputes() int64 { return c.recomputes.Load() }

// ShuffleRecords returns the number of records moved through shuffles.
func (c *Context) ShuffleRecords() int64 { return c.shuffleRecords.Load() }

// ShuffleBytes returns the estimated (sampled) bytes moved through
// shuffles; zero when the record type cannot report sizes.
func (c *Context) ShuffleBytes() int64 { return c.shuffleBytes.Load() }

// SpeculativeLaunches returns how many backup task attempts were started
// for suspected stragglers.
func (c *Context) SpeculativeLaunches() int64 { return c.speculativeLaunches.Load() }

// SpeculativeWins returns how many backup attempts finished before their
// straggling primary.
func (c *Context) SpeculativeWins() int64 { return c.speculativeWins.Load() }

// SetFailureHook installs (or clears, with nil) the fault-injection hook.
func (c *Context) SetFailureHook(hook func(rddName string, partition, attempt int) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failureHook = hook
}

// SetLatencyHook installs (or clears, with nil) the latency-injection hook
// used to simulate slow nodes for straggler/speculation studies.
func (c *Context) SetLatencyHook(hook func(rddName string, partition, attempt int) time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latencyHook = hook
}

// SetBackoff overrides the retry backoff schedule: retry n waits
// min(base << (n-1), max). Non-positive arguments keep the defaults.
func (c *Context) SetBackoff(base, max time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if base > 0 {
		c.backoffBase = base
	}
	if max > 0 {
		c.backoffMax = max
	}
}

// SetSpeculation configures straggler mitigation: when enabled, a
// partition running longer than multiplier × the job's median completed
// task time (and longer than min) gets a backup attempt; the first
// finisher wins. Non-positive multiplier/min keep the defaults.
func (c *Context) SetSpeculation(enabled bool, multiplier float64, min time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.specEnabled = enabled
	if multiplier > 0 {
		c.specMultiplier = multiplier
	}
	if min > 0 {
		c.specMin = min
	}
}

func (c *Context) checkFailure(name string, partition, attempt int) error {
	c.mu.Lock()
	hook := c.failureHook
	c.mu.Unlock()
	if hook == nil {
		return nil
	}
	return hook(name, partition, attempt)
}

func (c *Context) checkLatency(name string, partition, attempt int) time.Duration {
	c.mu.Lock()
	hook := c.latencyHook
	c.mu.Unlock()
	if hook == nil {
		return 0
	}
	return hook(name, partition, attempt)
}

// backoffFor returns the wait before retry n (1-based) of one task: the
// capped exponential min(base << (n-1), max), jittered into [d/2, d] by a
// hash of (seed, task identity, retry). The jitter is fully deterministic
// — the same seed reproduces the same schedule — but decorrelates tasks
// that fail at the same instant, so a worker death failing a whole batch
// does not hammer the survivors with synchronized retries.
func (c *Context) backoffFor(name string, partition, retry int) time.Duration {
	c.mu.Lock()
	base, max, seed := c.backoffBase, c.backoffMax, c.backoffSeed
	c.mu.Unlock()
	d := base
	for i := 1; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if half := d / 2; half > 0 {
		h := fnvHash(fmt.Sprintf("%d|%s|%d|%d", seed, name, partition, retry))
		d = half + time.Duration(h%uint64(half+1))
	}
	return d
}

func (c *Context) speculation() (bool, float64, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.specEnabled, c.specMultiplier, c.specMin
}

// RDD is a lazily evaluated, partitioned collection. Each RDD is defined by
// a compute function that rebuilds any partition from its lineage, so a
// lost (dropped) cached partition is recoverable by recomputation — the
// fault-tolerance story of the paper's §2.1.
type RDD[T any] struct {
	ctx     *Context
	name    string
	numPart int
	// compute rebuilds partition p from lineage under a job context.
	compute func(jc context.Context, p int) ([]T, error)

	// cache state; nil when not cached.
	cacheMu   sync.Mutex
	cached    bool
	cacheData []*[]T // per-partition; nil entry = not yet materialized
	dropped   []bool // per-partition; true = lost after materialization
}

// Ctx returns the owning context.
func (r *RDD[T]) Ctx() *Context { return r.ctx }

// Name returns the debug name.
func (r *RDD[T]) Name() string { return r.name }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.numPart }

func newRDD[T any](ctx *Context, name string, numPart int, compute func(jc context.Context, p int) ([]T, error)) *RDD[T] {
	return &RDD[T]{ctx: ctx, name: name, numPart: numPart, compute: compute}
}

// Parallelize distributes a slice across numPartitions partitions.
func Parallelize[T any](ctx *Context, data []T, numPartitions int) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = ctx.parallelism
	}
	n := len(data)
	return newRDD(ctx, "parallelize", numPartitions, func(_ context.Context, p int) ([]T, error) {
		lo := n * p / numPartitions
		hi := n * (p + 1) / numPartitions
		out := make([]T, hi-lo)
		copy(out, data[lo:hi])
		return out, nil
	})
}

// FromPartitions builds an RDD from pre-partitioned data.
func FromPartitions[T any](ctx *Context, parts [][]T) *RDD[T] {
	return newRDD(ctx, "fromPartitions", len(parts), func(_ context.Context, p int) ([]T, error) {
		return parts[p], nil
	})
}

// Generate builds an RDD whose partitions are produced on demand by gen —
// the hook data sources and synthetic workload generators use, so large
// inputs need not exist in memory up front. A panic in gen is one failed
// task attempt (retried); use GenerateCtx for generators that should
// observe cancellation or report errors directly.
func Generate[T any](ctx *Context, name string, numPartitions int, gen func(p int) []T) *RDD[T] {
	return newRDD(ctx, name, numPartitions, func(_ context.Context, p int) ([]T, error) {
		return gen(p), nil
	})
}

// GenerateCtx builds an RDD whose generator receives the job context and
// may return an error — the constructor for sources that do I/O (and so
// can fail transiently or block) or that must stop promptly when the job
// is cancelled. Returned errors count as failed task attempts and are
// retried like any other task failure.
func GenerateCtx[T any](ctx *Context, name string, numPartitions int, gen func(jc context.Context, p int) ([]T, error)) *RDD[T] {
	return newRDD(ctx, name, numPartitions, gen)
}

// partition computes (or serves from cache) one partition.
func (r *RDD[T]) partition(jc context.Context, p int) ([]T, error) {
	return r.partitionAttempt(jc, p, 1)
}

// partitionAttempt is partition with an explicit first-attempt number —
// speculative backups run with attempts numbered from maxTaskAttempts+1 so
// fault-injection hooks can tell primary and backup attempts apart.
func (r *RDD[T]) partitionAttempt(jc context.Context, p, firstAttempt int) ([]T, error) {
	if r.isCached() {
		r.cacheMu.Lock()
		if r.cacheData != nil && r.cacheData[p] != nil {
			data := *r.cacheData[p]
			r.cacheMu.Unlock()
			return data, nil
		}
		wasDropped := r.dropped != nil && r.dropped[p]
		r.cacheMu.Unlock()
		if wasDropped {
			// Lineage recovery: the partition existed and was lost.
			r.ctx.recomputes.Add(1)
		}
		data, err := r.runTask(jc, p, firstAttempt)
		if err != nil {
			return nil, err
		}
		r.cacheMu.Lock()
		if r.cached {
			if r.cacheData == nil {
				r.cacheData = make([]*[]T, r.numPart)
				r.dropped = make([]bool, r.numPart)
			}
			r.cacheData[p] = &data
			r.dropped[p] = false
		}
		r.cacheMu.Unlock()
		return data, nil
	}
	return r.runTask(jc, p, firstAttempt)
}

func (r *RDD[T]) isCached() bool {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	return r.cached
}

// runTask executes the compute function as a retryable task: each failed
// attempt (error or recovered panic) waits a deterministic, capped
// exponential backoff and retries, up to maxTaskAttempts. Cancellation and
// nested terminal JobErrors short-circuit the retry loop.
func (r *RDD[T]) runTask(jc context.Context, p, firstAttempt int) ([]T, error) {
	jobID, _ := jobIDFrom(jc)
	tb := r.ctx.Trace()
	var lastErr error
	var lastWorker string
	for retry := 0; retry < maxTaskAttempts; retry++ {
		attempt := firstAttempt + retry
		if retry > 0 {
			if err := sleepCtx(jc, r.ctx.backoffFor(r.name, p, retry)); err != nil {
				return nil, err
			}
		} else if err := jc.Err(); err != nil {
			return nil, err
		}
		r.ctx.tasksRun.Add(1)
		attemptCtx, info := withTaskInfo(jc)
		start := time.Now()
		out, err := r.attemptOnce(attemptCtx, p, attempt)
		worker := info.get()
		if worker == "" {
			var we *WorkerError
			if errors.As(err, &we) {
				worker = we.Worker
			}
		}
		if tb != nil || traceSink(jc) != nil {
			span := metrics.Span{
				Kind:        metrics.SpanTask,
				Name:        r.name,
				Job:         jobID,
				Partition:   p,
				Attempt:     attempt,
				Speculative: firstAttempt > maxTaskAttempts,
				Worker:      worker,
				Start:       metrics.Since(start),
				DurNS:       time.Since(start).Nanoseconds(),
				Records:     int64(len(out)),
			}
			if err != nil {
				span.Err = err.Error()
			}
			r.ctx.emitSpan(jc, span)
		}
		if err == nil {
			return out, nil
		}
		if terminalErr(err) {
			return nil, err
		}
		lastErr = &TaskError{RDDName: r.name, Partition: p, Attempt: attempt, Worker: worker, Cause: err}
		lastWorker = worker
		r.ctx.taskRetries.Add(1)
	}
	return nil, &JobError{RDDName: r.name, Partition: p, Attempts: maxTaskAttempts, Worker: lastWorker, Cause: lastErr}
}

// attemptOnce runs one attempt of a task, converting compute panics into
// errors so a panicking user function is retried instead of unwinding the
// whole job.
func (r *RDD[T]) attemptOnce(jc context.Context, p, attempt int) (out []T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic in compute: %v", rec)
		}
	}()
	if err := r.ctx.checkFailure(r.name, p, attempt); err != nil {
		return nil, err
	}
	if d := r.ctx.checkLatency(r.name, p, attempt); d > 0 {
		if err := sleepCtx(jc, d); err != nil {
			return nil, err
		}
	}
	return r.compute(jc, p)
}

// Cache marks the RDD for in-memory materialization; partitions are stored
// on first computation and reused afterwards.
func (r *RDD[T]) Cache() *RDD[T] {
	r.cacheMu.Lock()
	r.cached = true
	r.cacheMu.Unlock()
	return r
}

// Unpersist drops all cached partitions.
func (r *RDD[T]) Unpersist() {
	r.cacheMu.Lock()
	r.cacheData = nil
	r.dropped = nil
	r.cached = false
	r.cacheMu.Unlock()
}

// DropCachedPartition simulates losing a cached partition (an executor
// death); a later access recomputes it from lineage.
func (r *RDD[T]) DropCachedPartition(p int) {
	r.cacheMu.Lock()
	if r.cacheData != nil && r.cacheData[p] != nil {
		r.cacheData[p] = nil
		r.dropped[p] = true
	}
	r.cacheMu.Unlock()
}

// runRecorder tracks completed-task durations for one job, feeding the
// speculation heuristic's median.
type runRecorder struct {
	mu   sync.Mutex
	durs []time.Duration
}

func (rec *runRecorder) record(d time.Duration) {
	rec.mu.Lock()
	rec.durs = append(rec.durs, d)
	rec.mu.Unlock()
}

// median returns the median completed duration; ok is false with fewer
// than two samples (no basis to call anything a straggler yet).
func (rec *runRecorder) median() (time.Duration, bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.durs) < 2 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), rec.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2], true
}

// computeAll materializes all partitions in parallel under the context's
// parallelism bound, fail-fast: the first terminal task failure cancels
// all in-flight tasks (via the derived run context) and stops admitting
// pending partitions, and the error is returned to the caller. With
// speculation enabled, partitions running far beyond the median completed
// time get a backup attempt, first finisher wins.
func (r *RDD[T]) computeAll(jc context.Context) ([][]T, error) {
	jc, jobID, _ := r.ctx.beginJob(jc)
	runCtx, cancel := context.WithCancel(jc)
	defer cancel()

	stageStart := time.Now()
	var queuedNS atomic.Int64 // total time partitions waited for a slot
	out := make([][]T, r.numPart)
	sem := make(chan struct{}, r.ctx.parallelism)
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var firstErr error
	rec := &runRecorder{}

	fail := func(err error) {
		failMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		failMu.Unlock()
		cancel() // fail fast: tear down siblings, stop admissions
	}

	for p := 0; p < r.numPart; p++ {
		// Stop admitting pending partitions once the job is doomed.
		if runCtx.Err() != nil {
			break
		}
		semWait := time.Now()
		select {
		case sem <- struct{}{}:
		case <-runCtx.Done():
		}
		queuedNS.Add(time.Since(semWait).Nanoseconds())
		if runCtx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			data, err := r.runPartition(runCtx, p, rec)
			if err != nil {
				fail(err)
				return
			}
			out[p] = data
		}(p)
	}
	wg.Wait()

	failMu.Lock()
	err := firstErr
	failMu.Unlock()
	if err == nil {
		err = jc.Err()
	}
	if r.ctx.Trace() != nil || traceSink(jc) != nil {
		span := metrics.Span{
			Kind:     metrics.SpanStage,
			Name:     r.name,
			Job:      jobID,
			Start:    metrics.Since(stageStart),
			QueuedNS: queuedNS.Load(),
			DurNS:    time.Since(stageStart).Nanoseconds(),
		}
		if err != nil {
			span.Err = err.Error()
		} else {
			for _, part := range out {
				span.Records += int64(len(part))
			}
		}
		r.ctx.emitSpan(jc, span)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runPartition runs one partition of a job, with straggler speculation
// when enabled.
func (r *RDD[T]) runPartition(jc context.Context, p int, rec *runRecorder) ([]T, error) {
	enabled, mult, min := r.ctx.speculation()
	start := time.Now()
	if !enabled {
		data, err := r.partition(jc, p)
		if err == nil {
			rec.record(time.Since(start))
		}
		return data, err
	}

	type result struct {
		data   []T
		err    error
		backup bool
	}
	results := make(chan result, 2)
	launch := func(firstAttempt int, backup bool) {
		go func() {
			data, err := r.partitionAttempt(jc, p, firstAttempt)
			results <- result{data: data, err: err, backup: backup}
		}()
	}
	launch(1, false)
	pending := 1
	backupLaunched := false
	ticker := time.NewTicker(specCheckInterval)
	defer ticker.Stop()
	var firstFailure error
	for {
		select {
		case res := <-results:
			if res.err == nil {
				if res.backup {
					r.ctx.speculativeWins.Add(1)
				}
				rec.record(time.Since(start))
				return res.data, nil
			}
			pending--
			if firstFailure == nil {
				firstFailure = res.err
			}
			if pending == 0 {
				return nil, firstFailure
			}
		case <-ticker.C:
			if backupLaunched {
				continue
			}
			med, ok := rec.median()
			if !ok {
				continue
			}
			elapsed := time.Since(start)
			if elapsed >= min && float64(elapsed) >= mult*float64(med) {
				backupLaunched = true
				pending++
				r.ctx.speculativeLaunches.Add(1)
				// Backup attempts are numbered from maxTaskAttempts+1 so
				// hooks can distinguish them from the primary's attempts.
				launch(maxTaskAttempts+1, true)
			}
		}
	}
}

// Collect returns all elements, concatenated in partition order.
func (r *RDD[T]) Collect() ([]T, error) {
	return r.CollectContext(context.Background())
}

// emitJobSpan records the end-to-end span of one top-level action.
func (r *RDD[T]) emitJobSpan(jc context.Context, job int64, action string, start time.Time, parts [][]T, err error) {
	if r.ctx.Trace() == nil && traceSink(jc) == nil {
		return
	}
	span := metrics.Span{
		Kind:  metrics.SpanJob,
		Name:  action + ":" + r.name,
		Job:   job,
		Start: metrics.Since(start),
		DurNS: time.Since(start).Nanoseconds(),
	}
	for _, p := range parts {
		span.Records += int64(len(p))
	}
	if err != nil {
		span.Err = err.Error()
	}
	r.ctx.emitSpan(jc, span)
}

// CollectContext is Collect under a job context: cancelling jc (or its
// deadline expiring) cancels the job's pending and in-flight tasks and
// returns the context's error.
func (r *RDD[T]) CollectContext(jc context.Context) ([]T, error) {
	jc, jobID, top := r.ctx.beginJob(jc)
	start := time.Now()
	parts, err := r.computeAll(jc)
	if top {
		r.emitJobSpan(jc, jobID, "collect", start, parts, err)
	}
	if err != nil {
		return nil, err
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// CollectPartitionsContext materializes the RDD preserving partition
// boundaries — the adaptive executor's stage action. It shares
// CollectContext's retry, cancellation and tracing semantics; only the
// shape of the result differs.
func (r *RDD[T]) CollectPartitionsContext(jc context.Context) ([][]T, error) {
	jc, jobID, top := r.ctx.beginJob(jc)
	start := time.Now()
	parts, err := r.computeAll(jc)
	if top {
		r.emitJobSpan(jc, jobID, "stage", start, parts, err)
	}
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// Count returns the number of elements.
func (r *RDD[T]) Count() (int64, error) {
	return r.CountContext(context.Background())
}

// CountContext is Count under a job context.
func (r *RDD[T]) CountContext(jc context.Context) (int64, error) {
	jc, jobID, top := r.ctx.beginJob(jc)
	start := time.Now()
	parts, err := r.computeAll(jc)
	if top {
		r.emitJobSpan(jc, jobID, "count", start, parts, err)
	}
	if err != nil {
		return 0, err
	}
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n, nil
}

// ForeachPartition runs f over each computed partition (computed in
// parallel, f applied in partition order).
func (r *RDD[T]) ForeachPartition(f func(p int, data []T)) error {
	return r.ForeachPartitionContext(context.Background(), f)
}

// ForeachPartitionContext is ForeachPartition under a job context.
func (r *RDD[T]) ForeachPartitionContext(jc context.Context, f func(p int, data []T)) error {
	jc, jobID, top := r.ctx.beginJob(jc)
	start := time.Now()
	parts, err := r.computeAll(jc)
	if top {
		r.emitJobSpan(jc, jobID, "foreach", start, parts, err)
	}
	if err != nil {
		return err
	}
	for p, data := range parts {
		f(p, data)
	}
	return nil
}
