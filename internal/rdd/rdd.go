// Package rdd is a from-scratch, in-process reproduction of Spark's
// Resilient Distributed Dataset engine (paper §2.1 and [39]): lazily
// evaluated, partitioned collections with functional transformations,
// lineage-based fault recovery, hash shuffles for wide dependencies,
// explicit caching, broadcast values, and a parallel task executor with
// retry. Partitions run on goroutines instead of cluster nodes; everything
// else — laziness, lineage, narrow-vs-wide dependencies, shuffle
// materialization — follows the Spark model.
package rdd

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Context owns the executor and engine-wide metrics — the SparkContext of
// this mini engine.
type Context struct {
	parallelism int

	// metrics
	tasksRun       atomic.Int64
	taskRetries    atomic.Int64
	recomputes     atomic.Int64
	shuffleRecords atomic.Int64

	// failureHook, when set, lets tests inject task failures: return an
	// error to fail the given attempt of a task. The executor retries up
	// to maxTaskAttempts.
	mu          sync.Mutex
	failureHook func(rddName string, partition, attempt int) error
}

const maxTaskAttempts = 4

// NewContext creates an execution context running at most parallelism
// concurrent tasks.
func NewContext(parallelism int) *Context {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Context{parallelism: parallelism}
}

// Parallelism returns the task concurrency.
func (c *Context) Parallelism() int { return c.parallelism }

// TasksRun returns the number of task executions (including retries).
func (c *Context) TasksRun() int64 { return c.tasksRun.Load() }

// TaskRetries returns how many task attempts failed and were retried.
func (c *Context) TaskRetries() int64 { return c.taskRetries.Load() }

// Recomputes returns how many cached partitions were rebuilt from lineage
// after being dropped.
func (c *Context) Recomputes() int64 { return c.recomputes.Load() }

// ShuffleRecords returns the number of records moved through shuffles.
func (c *Context) ShuffleRecords() int64 { return c.shuffleRecords.Load() }

// SetFailureHook installs (or clears, with nil) the fault-injection hook.
func (c *Context) SetFailureHook(hook func(rddName string, partition, attempt int) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failureHook = hook
}

func (c *Context) checkFailure(name string, partition, attempt int) error {
	c.mu.Lock()
	hook := c.failureHook
	c.mu.Unlock()
	if hook == nil {
		return nil
	}
	return hook(name, partition, attempt)
}

// RDD is a lazily evaluated, partitioned collection. Each RDD is defined by
// a compute function that rebuilds any partition from its lineage, so a
// lost (dropped) cached partition is recoverable by recomputation — the
// fault-tolerance story of the paper's §2.1.
type RDD[T any] struct {
	ctx     *Context
	name    string
	numPart int
	// compute rebuilds partition p from lineage.
	compute func(p int) []T

	// cache state; nil when not cached.
	cacheMu   sync.Mutex
	cached    bool
	cacheData []*[]T // per-partition; nil entry = not yet materialized
	dropped   []bool // per-partition; true = lost after materialization
}

// Ctx returns the owning context.
func (r *RDD[T]) Ctx() *Context { return r.ctx }

// Name returns the debug name.
func (r *RDD[T]) Name() string { return r.name }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.numPart }

func newRDD[T any](ctx *Context, name string, numPart int, compute func(p int) []T) *RDD[T] {
	return &RDD[T]{ctx: ctx, name: name, numPart: numPart, compute: compute}
}

// Parallelize distributes a slice across numPartitions partitions.
func Parallelize[T any](ctx *Context, data []T, numPartitions int) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = ctx.parallelism
	}
	n := len(data)
	return newRDD(ctx, "parallelize", numPartitions, func(p int) []T {
		lo := n * p / numPartitions
		hi := n * (p + 1) / numPartitions
		out := make([]T, hi-lo)
		copy(out, data[lo:hi])
		return out
	})
}

// FromPartitions builds an RDD from pre-partitioned data.
func FromPartitions[T any](ctx *Context, parts [][]T) *RDD[T] {
	return newRDD(ctx, "fromPartitions", len(parts), func(p int) []T {
		return parts[p]
	})
}

// Generate builds an RDD whose partitions are produced on demand by gen —
// the hook data sources and synthetic workload generators use, so large
// inputs need not exist in memory up front.
func Generate[T any](ctx *Context, name string, numPartitions int, gen func(p int) []T) *RDD[T] {
	return newRDD(ctx, name, numPartitions, gen)
}

// partition computes (or serves from cache) one partition, honoring the
// fault-injection hook with retries.
func (r *RDD[T]) partition(p int) []T {
	if r.cached {
		r.cacheMu.Lock()
		if r.cacheData != nil && r.cacheData[p] != nil {
			data := *r.cacheData[p]
			r.cacheMu.Unlock()
			return data
		}
		wasDropped := r.dropped != nil && r.dropped[p]
		r.cacheMu.Unlock()
		if wasDropped {
			// Lineage recovery: the partition existed and was lost.
			r.ctx.recomputes.Add(1)
		}
		data := r.runTask(p)
		r.cacheMu.Lock()
		if r.cacheData == nil {
			r.cacheData = make([]*[]T, r.numPart)
			r.dropped = make([]bool, r.numPart)
		}
		r.cacheData[p] = &data
		r.dropped[p] = false
		r.cacheMu.Unlock()
		return data
	}
	return r.runTask(p)
}

// runTask executes the compute function as a retryable task.
func (r *RDD[T]) runTask(p int) []T {
	var lastErr error
	for attempt := 1; attempt <= maxTaskAttempts; attempt++ {
		r.ctx.tasksRun.Add(1)
		if err := r.ctx.checkFailure(r.name, p, attempt); err != nil {
			lastErr = err
			r.ctx.taskRetries.Add(1)
			continue
		}
		return r.compute(p)
	}
	panic(fmt.Sprintf("rdd: task %s[%d] failed after %d attempts: %v",
		r.name, p, maxTaskAttempts, lastErr))
}

// Cache marks the RDD for in-memory materialization; partitions are stored
// on first computation and reused afterwards.
func (r *RDD[T]) Cache() *RDD[T] {
	r.cacheMu.Lock()
	r.cached = true
	r.cacheMu.Unlock()
	return r
}

// Unpersist drops all cached partitions.
func (r *RDD[T]) Unpersist() {
	r.cacheMu.Lock()
	r.cacheData = nil
	r.dropped = nil
	r.cached = false
	r.cacheMu.Unlock()
}

// DropCachedPartition simulates losing a cached partition (an executor
// death); a later access recomputes it from lineage.
func (r *RDD[T]) DropCachedPartition(p int) {
	r.cacheMu.Lock()
	if r.cacheData != nil && r.cacheData[p] != nil {
		r.cacheData[p] = nil
		r.dropped[p] = true
	}
	r.cacheMu.Unlock()
}

// computeAll materializes all partitions in parallel under the context's
// parallelism bound. A panicking task fails the whole job: the panic is
// captured in the worker goroutine and re-raised in the caller, so actions
// (Collect/Count) can surface it as an error.
func (r *RDD[T]) computeAll() [][]T {
	out := make([][]T, r.numPart)
	sem := make(chan struct{}, r.ctx.parallelism)
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failure any
	for p := 0; p < r.numPart; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if rec := recover(); rec != nil {
					failMu.Lock()
					if failure == nil {
						failure = rec
					}
					failMu.Unlock()
				}
			}()
			out[p] = r.partition(p)
		}(p)
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
	return out
}

// Collect returns all elements, concatenated in partition order.
func (r *RDD[T]) Collect() []T {
	parts := r.computeAll()
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the number of elements.
func (r *RDD[T]) Count() int64 {
	parts := r.computeAll()
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n
}

// ForeachPartition runs f over each computed partition (parallel).
func (r *RDD[T]) ForeachPartition(f func(p int, data []T)) {
	parts := r.computeAll()
	for p, data := range parts {
		f(p, data)
	}
}
