package rdd

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Remote execution hooks. The rdd package stays transport-agnostic: the
// cluster layer (internal/cluster, adapted by internal/core) plugs in
// behind two small interfaces, and with neither installed every code path
// below is byte-identical to local execution.

// ErrNoWorkers is returned (or wrapped) by a RemoteRunner when no healthy
// worker is available; RemoteOrLocal RDDs degrade to local compute.
var ErrNoWorkers = errors.New("rdd: no remote workers available")

// ErrRemoteFallback is returned (or wrapped) by a RemoteRunner when the
// remote side cannot execute the task at all (unknown task kind, plan
// mismatch); the task runs locally instead of retrying.
var ErrRemoteFallback = errors.New("rdd: remote execution not possible")

// RemoteRunner dispatches one task to a remote worker. Implementations
// return the id of the worker that ran (or died running) the task so
// failures and trace spans carry worker identity.
type RemoteRunner interface {
	// Available reports whether at least one healthy worker is registered.
	Available() bool
	// RunTask executes one task remotely. partition is a placement-affinity
	// hint. The worker id is returned even on failure when known.
	RunTask(jc context.Context, kind string, partition int, payload []byte) (result []byte, worker string, err error)
}

// ShuffleService stores and serves encoded shuffle buckets across workers.
// Map sides Publish their buckets; reduce sides FetchBucket from whichever
// peer produced them. ok=false (nil error) means the bucket is nowhere to
// be found — the caller recomputes it from lineage.
type ShuffleService interface {
	Publish(jc context.Context, shuffleID string, buckets [][]byte) error
	FetchBucket(jc context.Context, shuffleID string, bucket int) (data []byte, ok bool, err error)
}

// SetRemoteRunner installs (or clears, with nil) the remote dispatcher.
func (c *Context) SetRemoteRunner(r RemoteRunner) {
	c.mu.Lock()
	c.remoteRunner = r
	c.mu.Unlock()
}

func (c *Context) remote() RemoteRunner {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remoteRunner
}

// SetShuffleService installs (or clears, with nil) the cross-worker
// shuffle block service used by codec-enabled shuffles.
func (c *Context) SetShuffleService(s ShuffleService) {
	c.mu.Lock()
	c.shuffleSvc = s
	c.mu.Unlock()
}

func (c *Context) shuffleService() ShuffleService {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shuffleSvc
}

// SetShuffleScope names the current shuffle id namespace and resets the
// per-scope sequence. Workers executing the same query set the same scope
// (session, epoch and query hash) before building its RDD graph, so the
// deterministic build order assigns every shuffle the same id on every
// worker — the property cross-worker bucket fetches rest on. An empty
// scope (the default) disables shuffle publishing entirely.
func (c *Context) SetShuffleScope(scope string) {
	c.mu.Lock()
	c.shuffleScope = scope
	c.shuffleSeq = 0
	c.mu.Unlock()
}

// nextShuffleID allocates the next shuffle id in the current scope, or ""
// when no scope is set (local-only shuffle).
func (c *Context) nextShuffleID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shuffleScope == "" {
		return ""
	}
	id := fmt.Sprintf("%s/s%d", c.shuffleScope, c.shuffleSeq)
	c.shuffleSeq++
	return id
}

// SetBackoffSeed seeds the deterministic retry-backoff jitter. Two tasks
// that fail simultaneously back off for different (but reproducible)
// durations, so a mass failure — a worker death failing a whole batch of
// tasks — does not retry in lockstep against the surviving workers.
func (c *Context) SetBackoffSeed(seed uint64) {
	c.mu.Lock()
	c.backoffSeed = seed
	c.mu.Unlock()
}

// WorkerError tags a task-attempt failure with the remote worker it ran
// on; the executor lifts the identity into TaskError/JobError and spans.
type WorkerError struct {
	Worker string
	Cause  error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("worker %s: %v", e.Worker, e.Cause)
}

func (e *WorkerError) Unwrap() error { return e.Cause }

// taskInfo is the per-attempt mailbox a compute function reports its
// executing worker through; runTask installs one per attempt and reads it
// back for spans and errors.
type taskInfo struct {
	mu     sync.Mutex
	worker string
}

func (ti *taskInfo) set(w string) {
	ti.mu.Lock()
	ti.worker = w
	ti.mu.Unlock()
}

func (ti *taskInfo) get() string {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	return ti.worker
}

type taskInfoKey struct{}

func withTaskInfo(jc context.Context) (context.Context, *taskInfo) {
	ti := &taskInfo{}
	return context.WithValue(jc, taskInfoKey{}, ti), ti
}

// SetTaskWorker records which remote worker executed the current task
// attempt; compute functions that dispatch remotely call it on success so
// the task span carries worker identity.
func SetTaskWorker(jc context.Context, worker string) {
	if ti, ok := jc.Value(taskInfoKey{}).(*taskInfo); ok {
		ti.set(worker)
	}
}

// RemoteOrLocal wraps an RDD so each partition is dispatched to a remote
// worker when a runner is installed and available, and computed locally
// otherwise. Remote failures flow through the executor's ordinary
// retry/backoff loop (each retry re-picks a worker, so a dead worker's
// tasks drain onto survivors); fallback signals (no workers, un-runnable
// task) switch that partition to local lineage compute. The wrapper has
// the same partition count and, by construction, the same contents as the
// local RDD — distribution is an execution detail, not a semantic one.
func RemoteOrLocal[T any](local *RDD[T], kind string, payload func(p int) []byte, decode func(data []byte) ([]T, error)) *RDD[T] {
	ctx := local.ctx
	return newRDD(ctx, local.name+".remote", local.numPart, func(jc context.Context, p int) ([]T, error) {
		runner := ctx.remote()
		if runner == nil || !runner.Available() {
			return local.partition(jc, p)
		}
		res, worker, err := runner.RunTask(jc, kind, p, payload(p))
		if err == nil {
			SetTaskWorker(jc, worker)
			out, derr := decode(res)
			if derr != nil {
				// A result that does not decode is a failed attempt of this
				// worker, not a local-fallback signal.
				return nil, &WorkerError{Worker: worker, Cause: derr}
			}
			return out, nil
		}
		if errors.Is(err, ErrRemoteFallback) {
			// An un-runnable task (unshippable plan, stale session) falls
			// back to local lineage compute; count it so operators can see
			// distribution silently degrading.
			ctx.remoteFallbacks.Add(1)
			return local.partition(jc, p)
		}
		if errors.Is(err, ErrNoWorkers) {
			return local.partition(jc, p)
		}
		if jc.Err() != nil {
			return nil, jc.Err()
		}
		if worker == "" {
			return nil, err
		}
		return nil, &WorkerError{Worker: worker, Cause: err}
	})
}

// PartitionContext computes one partition of the RDD under a job context,
// serving caches and retrying failures exactly like a full action — the
// entry point worker processes use to execute a single assigned partition
// of a distributed query.
func (r *RDD[T]) PartitionContext(jc context.Context, p int) ([]T, error) {
	if p < 0 || p >= r.numPart {
		return nil, fmt.Errorf("rdd: partition %d out of range [0,%d)", p, r.numPart)
	}
	jc, _, _ = r.ctx.beginJob(jc)
	return r.partition(jc, p)
}
