package expr

import (
	"fmt"
	"sort"

	"repro/internal/row"
	"repro/internal/types"
)

// AggregateFunc is an aggregate expression (count/sum/avg/min/max/first).
// Aggregates evaluate in two phases matching the physical plan's
// partial+final hash aggregation: Update folds input rows into a buffer on
// each partition, Merge combines partition buffers after the shuffle, and
// Result extracts the final value. Eval on an aggregate panics — aggregates
// only ever run through buffers.
type AggregateFunc interface {
	Expression
	// NewBuffer allocates an empty aggregation buffer.
	NewBuffer() any
	// Update folds one input row into the buffer and returns it.
	Update(buf any, r row.Row) any
	// Merge combines two buffers (partial aggregation across partitions).
	Merge(a, b any) any
	// Result extracts the aggregate value from a buffer.
	Result(buf any) any
}

// ContainsAggregate reports whether e has an AggregateFunc anywhere in its
// tree (used by the analyzer to turn projections into Aggregate plans).
func ContainsAggregate(e Expression) bool {
	if _, ok := e.(AggregateFunc); ok {
		return true
	}
	for _, c := range e.Children() {
		if ContainsAggregate(c) {
			return true
		}
	}
	return false
}

func aggEvalPanic(e Expression) any {
	panic(fmt.Sprintf("expr: aggregate %s evaluated as a row expression; use buffers", e))
}

// SpillableAggregate is implemented by aggregates whose buffers round-trip
// through the row spill codec: EncodeBuffer flattens a buffer into a Row of
// codec-supported values and DecodeBuffer rebuilds an equivalent buffer.
// The spillable hash aggregation requires every aggregate in the query to
// implement it (all built-ins do); a custom aggregate without it simply
// keeps that query on the unbounded in-memory path.
type SpillableAggregate interface {
	AggregateFunc
	EncodeBuffer(buf any) row.Row
	DecodeBuffer(r row.Row) any
}

// ---------------------------------------------------------------------------
// COUNT

// Count is COUNT(child), counting non-NULL values; IsStar marks COUNT(*)
// (child is the literal 1, which is never NULL).
type Count struct {
	Child  Expression
	IsStar bool
}

// NewCountStar builds COUNT(*).
func NewCountStar() *Count { return &Count{Child: Lit(int64(1)), IsStar: true} }

func (c *Count) Children() []Expression { return []Expression{c.Child} }
func (c *Count) WithNewChildren(children []Expression) Expression {
	return &Count{Child: children[0], IsStar: c.IsStar}
}
func (c *Count) DataType() types.DataType { return types.Long }
func (c *Count) Nullable() bool           { return false }
func (c *Count) Resolved() bool           { return childrenResolved(c) }
func (c *Count) String() string {
	if c.IsStar {
		return "count(*)"
	}
	return fmt.Sprintf("count(%s)", c.Child)
}
func (c *Count) Eval(r row.Row) any { return aggEvalPanic(c) }
func (c *Count) NewBuffer() any     { return int64(0) }
func (c *Count) Update(buf any, r row.Row) any {
	if c.Child.Eval(r) != nil {
		return buf.(int64) + 1
	}
	return buf
}
func (c *Count) Merge(a, b any) any { return a.(int64) + b.(int64) }
func (c *Count) Result(buf any) any { return buf.(int64) }

func (c *Count) EncodeBuffer(buf any) row.Row { return row.New(buf.(int64)) }
func (c *Count) DecodeBuffer(r row.Row) any   { return r[0].(int64) }

// ---------------------------------------------------------------------------
// SUM

// Sum is SUM(child). Integer inputs widen to BIGINT, floats to DOUBLE, and
// DECIMAL(p,s) to DECIMAL(p+10,s) — the widening the DecimalAggregates
// optimization (paper §4.3.2) rewrites into unscaled LONG arithmetic.
type Sum struct {
	Child Expression
}

func (s *Sum) Children() []Expression { return []Expression{s.Child} }
func (s *Sum) WithNewChildren(children []Expression) Expression {
	return &Sum{Child: children[0]}
}
func (s *Sum) DataType() types.DataType {
	switch t := s.Child.DataType().(type) {
	case types.DecimalType:
		return types.DecimalType{Precision: t.Precision + 10, Scale: t.Scale}
	default:
		if types.IsIntegral(t) {
			return types.Long
		}
		return types.Double
	}
}
func (s *Sum) Nullable() bool { return true } // empty group sums to NULL
func (s *Sum) Resolved() bool {
	return childrenResolved(s) && types.IsNumeric(s.Child.DataType())
}
func (s *Sum) String() string     { return fmt.Sprintf("sum(%s)", s.Child) }
func (s *Sum) Eval(r row.Row) any { return aggEvalPanic(s) }

type sumBuffer struct {
	seen bool
	i    int64
	f    float64
	d    types.Decimal
}

func (s *Sum) kind() int {
	switch s.Child.DataType().(type) {
	case types.DecimalType:
		return 2
	}
	if types.IsIntegral(s.Child.DataType()) {
		return 0
	}
	return 1
}

func (s *Sum) NewBuffer() any { return &sumBuffer{} }
func (s *Sum) Update(buf any, r row.Row) any {
	v := s.Child.Eval(r)
	if v == nil {
		return buf
	}
	b := buf.(*sumBuffer)
	b.seen = true
	switch s.kind() {
	case 0:
		b.i += asInt64(v)
	case 1:
		f, _ := toFloat(v)
		b.f += f
	case 2:
		b.d = b.d.Add(v.(types.Decimal))
	}
	return b
}
func (s *Sum) Merge(a, b any) any {
	x, y := a.(*sumBuffer), b.(*sumBuffer)
	if !y.seen {
		return x
	}
	x.seen = true
	x.i += y.i
	x.f += y.f
	x.d = x.d.Add(y.d)
	return x
}
func (s *Sum) Result(buf any) any {
	b := buf.(*sumBuffer)
	if !b.seen {
		return nil
	}
	switch s.kind() {
	case 0:
		return b.i
	case 1:
		return b.f
	default:
		scale := s.Child.DataType().(types.DecimalType).Scale
		return b.d.Rescale(scale)
	}
}

func (s *Sum) EncodeBuffer(buf any) row.Row {
	b := buf.(*sumBuffer)
	return row.New(b.seen, b.i, b.f, b.d)
}
func (s *Sum) DecodeBuffer(r row.Row) any {
	return &sumBuffer{seen: r[0].(bool), i: r[1].(int64), f: r[2].(float64), d: r[3].(types.Decimal)}
}

// ---------------------------------------------------------------------------
// AVG

// Avg is AVG(child); the result is DOUBLE for every numeric input (decimal
// inputs are converted), keeping the buffer a simple (sum, count) pair.
type Avg struct {
	Child Expression
}

func (a *Avg) Children() []Expression { return []Expression{a.Child} }
func (a *Avg) WithNewChildren(children []Expression) Expression {
	return &Avg{Child: children[0]}
}
func (a *Avg) DataType() types.DataType { return types.Double }
func (a *Avg) Nullable() bool           { return true }
func (a *Avg) Resolved() bool {
	return childrenResolved(a) && types.IsNumeric(a.Child.DataType())
}
func (a *Avg) String() string     { return fmt.Sprintf("avg(%s)", a.Child) }
func (a *Avg) Eval(r row.Row) any { return aggEvalPanic(a) }

type avgBuffer struct {
	sum   float64
	count int64
}

func (a *Avg) NewBuffer() any { return &avgBuffer{} }
func (a *Avg) Update(buf any, r row.Row) any {
	v := a.Child.Eval(r)
	if v == nil {
		return buf
	}
	b := buf.(*avgBuffer)
	f, _ := toFloat(v)
	b.sum += f
	b.count++
	return b
}
func (a *Avg) Merge(x, y any) any {
	bx, by := x.(*avgBuffer), y.(*avgBuffer)
	bx.sum += by.sum
	bx.count += by.count
	return bx
}
func (a *Avg) Result(buf any) any {
	b := buf.(*avgBuffer)
	if b.count == 0 {
		return nil
	}
	return b.sum / float64(b.count)
}

func (a *Avg) EncodeBuffer(buf any) row.Row {
	b := buf.(*avgBuffer)
	return row.New(b.sum, b.count)
}
func (a *Avg) DecodeBuffer(r row.Row) any {
	return &avgBuffer{sum: r[0].(float64), count: r[1].(int64)}
}

// ---------------------------------------------------------------------------
// MIN / MAX

// MinMax is MIN or MAX over any ordered type.
type MinMax struct {
	Child Expression
	IsMax bool
}

// NewMin builds MIN(child).
func NewMin(child Expression) *MinMax { return &MinMax{Child: child} }

// NewMax builds MAX(child).
func NewMax(child Expression) *MinMax { return &MinMax{Child: child, IsMax: true} }

func (m *MinMax) Children() []Expression { return []Expression{m.Child} }
func (m *MinMax) WithNewChildren(children []Expression) Expression {
	return &MinMax{Child: children[0], IsMax: m.IsMax}
}
func (m *MinMax) DataType() types.DataType { return m.Child.DataType() }
func (m *MinMax) Nullable() bool           { return true }
func (m *MinMax) Resolved() bool {
	return childrenResolved(m) && types.IsOrdered(m.Child.DataType())
}
func (m *MinMax) String() string {
	if m.IsMax {
		return fmt.Sprintf("max(%s)", m.Child)
	}
	return fmt.Sprintf("min(%s)", m.Child)
}
func (m *MinMax) Eval(r row.Row) any { return aggEvalPanic(m) }

type minmaxBuffer struct{ v any }

func (m *MinMax) NewBuffer() any { return &minmaxBuffer{} }
func (m *MinMax) Update(buf any, r row.Row) any {
	v := m.Child.Eval(r)
	if v == nil {
		return buf
	}
	b := buf.(*minmaxBuffer)
	b.v = m.pick(b.v, v)
	return b
}
func (m *MinMax) Merge(a, b any) any {
	x, y := a.(*minmaxBuffer), b.(*minmaxBuffer)
	if y.v != nil {
		x.v = m.pick(x.v, y.v)
	}
	return x
}
func (m *MinMax) Result(buf any) any { return buf.(*minmaxBuffer).v }

func (m *MinMax) EncodeBuffer(buf any) row.Row { return row.New(buf.(*minmaxBuffer).v) }
func (m *MinMax) DecodeBuffer(r row.Row) any   { return &minmaxBuffer{v: r[0]} }
func (m *MinMax) pick(cur, v any) any {
	if cur == nil {
		return v
	}
	c := row.Compare(v, cur)
	if (m.IsMax && c > 0) || (!m.IsMax && c < 0) {
		return v
	}
	return cur
}

// ---------------------------------------------------------------------------
// FIRST

// First returns the first non-NULL value seen (order-dependent; useful for
// carrying grouped-by-function columns through an aggregate).
type First struct {
	Child Expression
}

func (f *First) Children() []Expression { return []Expression{f.Child} }
func (f *First) WithNewChildren(children []Expression) Expression {
	return &First{Child: children[0]}
}
func (f *First) DataType() types.DataType { return f.Child.DataType() }
func (f *First) Nullable() bool           { return true }
func (f *First) Resolved() bool           { return childrenResolved(f) }
func (f *First) String() string           { return fmt.Sprintf("first(%s)", f.Child) }
func (f *First) Eval(r row.Row) any       { return aggEvalPanic(f) }

type firstBuffer struct{ v any }

func (f *First) NewBuffer() any { return &firstBuffer{} }
func (f *First) Update(buf any, r row.Row) any {
	b := buf.(*firstBuffer)
	if b.v == nil {
		b.v = f.Child.Eval(r)
	}
	return b
}
func (f *First) Merge(a, b any) any {
	x, y := a.(*firstBuffer), b.(*firstBuffer)
	if x.v == nil {
		x.v = y.v
	}
	return x
}
func (f *First) Result(buf any) any { return buf.(*firstBuffer).v }

func (f *First) EncodeBuffer(buf any) row.Row { return row.New(buf.(*firstBuffer).v) }
func (f *First) DecodeBuffer(r row.Row) any   { return &firstBuffer{v: r[0]} }

// ---------------------------------------------------------------------------
// COUNT(DISTINCT)

// CountDistinct counts distinct non-NULL values of its child.
type CountDistinct struct {
	Child Expression
}

func (c *CountDistinct) Children() []Expression { return []Expression{c.Child} }
func (c *CountDistinct) WithNewChildren(children []Expression) Expression {
	return &CountDistinct{Child: children[0]}
}
func (c *CountDistinct) DataType() types.DataType { return types.Long }
func (c *CountDistinct) Nullable() bool           { return false }
func (c *CountDistinct) Resolved() bool           { return childrenResolved(c) }
func (c *CountDistinct) String() string           { return fmt.Sprintf("count(DISTINCT %s)", c.Child) }
func (c *CountDistinct) Eval(r row.Row) any       { return aggEvalPanic(c) }

type distinctBuffer struct{ seen map[string]struct{} }

func (c *CountDistinct) NewBuffer() any { return &distinctBuffer{seen: map[string]struct{}{}} }
func (c *CountDistinct) Update(buf any, r row.Row) any {
	v := c.Child.Eval(r)
	if v == nil {
		return buf
	}
	b := buf.(*distinctBuffer)
	b.seen[row.GroupKey(row.New(v), []int{0})] = struct{}{}
	return b
}
func (c *CountDistinct) Merge(a, b any) any {
	x, y := a.(*distinctBuffer), b.(*distinctBuffer)
	for k := range y.seen {
		x.seen[k] = struct{}{}
	}
	return x
}
func (c *CountDistinct) Result(buf any) any {
	return int64(len(buf.(*distinctBuffer).seen))
}

func (c *CountDistinct) EncodeBuffer(buf any) row.Row {
	b := buf.(*distinctBuffer)
	keys := make([]string, 0, len(b.seen))
	for k := range b.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic spill bytes
	vals := make([]any, len(keys))
	for i, k := range keys {
		vals[i] = k
	}
	return row.New(any(vals))
}
func (c *CountDistinct) DecodeBuffer(r row.Row) any {
	vals := r[0].([]any)
	seen := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		seen[v.(string)] = struct{}{}
	}
	return &distinctBuffer{seen: seen}
}
