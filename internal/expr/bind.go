package expr

import (
	"fmt"

	"repro/internal/row"
	"repro/internal/types"
)

// SortOrder pairs an expression with a sort direction. It participates in
// the expression tree so analysis and optimization rules see through it.
type SortOrder struct {
	Child      Expression
	Descending bool
}

// Asc builds an ascending order on child.
func Asc(child Expression) *SortOrder { return &SortOrder{Child: child} }

// Desc builds a descending order on child.
func Desc(child Expression) *SortOrder { return &SortOrder{Child: child, Descending: true} }

func (s *SortOrder) Children() []Expression { return []Expression{s.Child} }
func (s *SortOrder) WithNewChildren(children []Expression) Expression {
	return &SortOrder{Child: children[0], Descending: s.Descending}
}
func (s *SortOrder) DataType() types.DataType { return s.Child.DataType() }
func (s *SortOrder) Nullable() bool           { return s.Child.Nullable() }
func (s *SortOrder) Resolved() bool {
	return childrenResolved(s) && types.IsOrdered(s.Child.DataType())
}
func (s *SortOrder) String() string {
	if s.Descending {
		return fmt.Sprintf("%s DESC", s.Child)
	}
	return fmt.Sprintf("%s ASC", s.Child)
}
func (s *SortOrder) Eval(r row.Row) any { return s.Child.Eval(r) }

// Bind rewrites every AttributeReference in e into a BoundReference against
// the given input attribute order. Binding happens in the physical layer,
// immediately before interpretation or compilation.
func Bind(e Expression, input []*AttributeReference) (Expression, error) {
	var bindErr error
	out := TransformUp(e, func(x Expression) (Expression, bool) {
		a, ok := x.(*AttributeReference)
		if !ok {
			return nil, false
		}
		for i, in := range input {
			if in.ID_ == a.ID_ {
				return &BoundReference{Ordinal: i, Type: a.Type, Null: a.Null}, true
			}
		}
		if bindErr == nil {
			bindErr = fmt.Errorf("expr: attribute %s not found in input %v", a, input)
		}
		return nil, false
	})
	if bindErr != nil {
		return nil, bindErr
	}
	return out, nil
}

// MustBind is Bind for callers that have already validated references.
func MustBind(e Expression, input []*AttributeReference) Expression {
	out, err := Bind(e, input)
	if err != nil {
		panic(err)
	}
	return out
}

// BindAll binds a slice of expressions.
func BindAll(exprs []Expression, input []*AttributeReference) ([]Expression, error) {
	out := make([]Expression, len(exprs))
	for i, e := range exprs {
		b, err := Bind(e, input)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
