package expr

import (
	"fmt"
	"strings"

	"repro/internal/row"
	"repro/internal/types"
)

// CaseWhen is the SQL searched CASE expression:
// CASE WHEN c1 THEN v1 WHEN c2 THEN v2 ... ELSE e END.
// Children are stored flat (cond1, val1, cond2, val2, ..., [else]) so the
// generic tree machinery can rewrite them.
type CaseWhen struct {
	// kids is the flattened (cond, value)* [else] list.
	kids    []Expression
	hasElse bool
}

// NewCaseWhen builds a CASE expression from branch pairs and an optional
// else (nil for none).
func NewCaseWhen(branches [][2]Expression, elseValue Expression) *CaseWhen {
	kids := make([]Expression, 0, len(branches)*2+1)
	for _, b := range branches {
		kids = append(kids, b[0], b[1])
	}
	hasElse := elseValue != nil
	if hasElse {
		kids = append(kids, elseValue)
	}
	return &CaseWhen{kids: kids, hasElse: hasElse}
}

// Branches returns the (condition, value) pairs.
func (c *CaseWhen) Branches() [][2]Expression {
	n := len(c.kids)
	if c.hasElse {
		n--
	}
	out := make([][2]Expression, 0, n/2)
	for i := 0; i+1 < n; i += 2 {
		out = append(out, [2]Expression{c.kids[i], c.kids[i+1]})
	}
	return out
}

// ElseValue returns the ELSE expression, or nil.
func (c *CaseWhen) ElseValue() Expression {
	if c.hasElse {
		return c.kids[len(c.kids)-1]
	}
	return nil
}

func (c *CaseWhen) Children() []Expression { return c.kids }
func (c *CaseWhen) WithNewChildren(children []Expression) Expression {
	return &CaseWhen{kids: children, hasElse: c.hasElse}
}
func (c *CaseWhen) DataType() types.DataType { return c.kids[1].DataType() }
func (c *CaseWhen) Nullable() bool {
	if !c.hasElse {
		return true // falling through every branch yields NULL
	}
	for i := 1; i < len(c.kids); i += 2 {
		if c.kids[i].Nullable() {
			return true
		}
	}
	return c.ElseValue().Nullable()
}
func (c *CaseWhen) Resolved() bool {
	if !childrenResolved(c) {
		return false
	}
	vt := c.kids[1].DataType()
	for _, b := range c.Branches() {
		if !b[0].DataType().Equals(types.Boolean) || !b[1].DataType().Equals(vt) {
			return false
		}
	}
	if e := c.ElseValue(); e != nil && !e.DataType().Equals(vt) {
		return false
	}
	return true
}
func (c *CaseWhen) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, b := range c.Branches() {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", b[0], b[1])
	}
	if e := c.ElseValue(); e != nil {
		fmt.Fprintf(&sb, " ELSE %s", e)
	}
	sb.WriteString(" END")
	return sb.String()
}
func (c *CaseWhen) Eval(r row.Row) any {
	for _, b := range c.Branches() {
		if b[0].Eval(r) == true {
			return b[1].Eval(r)
		}
	}
	if e := c.ElseValue(); e != nil {
		return e.Eval(r)
	}
	return nil
}

// Coalesce returns its first non-NULL argument.
type Coalesce struct {
	Args []Expression
}

func (c *Coalesce) Children() []Expression { return c.Args }
func (c *Coalesce) WithNewChildren(children []Expression) Expression {
	return &Coalesce{Args: children}
}
func (c *Coalesce) DataType() types.DataType { return c.Args[0].DataType() }
func (c *Coalesce) Nullable() bool {
	for _, a := range c.Args {
		if !a.Nullable() {
			return false
		}
	}
	return true
}
func (c *Coalesce) Resolved() bool {
	if !childrenResolved(c) || len(c.Args) == 0 {
		return false
	}
	t := c.Args[0].DataType()
	for _, a := range c.Args[1:] {
		if !a.DataType().Equals(t) {
			return false
		}
	}
	return true
}
func (c *Coalesce) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return "coalesce(" + strings.Join(parts, ", ") + ")"
}
func (c *Coalesce) Eval(r row.Row) any {
	for _, a := range c.Args {
		if v := a.Eval(r); v != nil {
			return v
		}
	}
	return nil
}

// GetField extracts a named field from a STRUCT value, supporting the
// nested-path queries of §5.1 (e.g. loc.lat on inferred JSON schemas).
type GetField struct {
	Child     Expression
	FieldName string
}

func (g *GetField) Children() []Expression { return []Expression{g.Child} }
func (g *GetField) WithNewChildren(children []Expression) Expression {
	return &GetField{Child: children[0], FieldName: g.FieldName}
}
func (g *GetField) structType() (types.StructType, bool) {
	st, ok := g.Child.DataType().(types.StructType)
	return st, ok
}
func (g *GetField) DataType() types.DataType {
	st, ok := g.structType()
	if !ok {
		panic(fmt.Sprintf("expr: GetField on non-struct %s", g.Child.DataType().Name()))
	}
	i := st.FieldIndex(g.FieldName)
	if i < 0 {
		panic(fmt.Sprintf("expr: struct has no field %q", g.FieldName))
	}
	return st.Fields[i].Type
}
func (g *GetField) Nullable() bool {
	st, ok := g.structType()
	if !ok {
		return true
	}
	i := st.FieldIndex(g.FieldName)
	return i < 0 || st.Fields[i].Nullable || g.Child.Nullable()
}
func (g *GetField) Resolved() bool {
	if !childrenResolved(g) {
		return false
	}
	st, ok := g.structType()
	return ok && st.FieldIndex(g.FieldName) >= 0
}
func (g *GetField) String() string { return fmt.Sprintf("%s.%s", g.Child, g.FieldName) }
func (g *GetField) Eval(r row.Row) any {
	v := g.Child.Eval(r)
	if v == nil {
		return nil
	}
	st, _ := g.structType()
	return v.(row.Row)[st.FieldIndex(g.FieldName)]
}

// GetArrayItem indexes an ARRAY value (0-based); out-of-range yields NULL.
type GetArrayItem struct {
	Child Expression
	Index Expression
}

func (g *GetArrayItem) Children() []Expression { return []Expression{g.Child, g.Index} }
func (g *GetArrayItem) WithNewChildren(children []Expression) Expression {
	return &GetArrayItem{Child: children[0], Index: children[1]}
}
func (g *GetArrayItem) DataType() types.DataType {
	return g.Child.DataType().(types.ArrayType).Elem
}
func (g *GetArrayItem) Nullable() bool { return true }
func (g *GetArrayItem) Resolved() bool {
	if !childrenResolved(g) {
		return false
	}
	_, isArr := g.Child.DataType().(types.ArrayType)
	return isArr && types.IsIntegral(g.Index.DataType())
}
func (g *GetArrayItem) String() string { return fmt.Sprintf("%s[%s]", g.Child, g.Index) }
func (g *GetArrayItem) Eval(r row.Row) any {
	v := g.Child.Eval(r)
	if v == nil {
		return nil
	}
	iv := g.Index.Eval(r)
	if iv == nil {
		return nil
	}
	arr := v.([]any)
	i := int(asInt64(iv))
	if i < 0 || i >= len(arr) {
		return nil
	}
	return arr[i]
}

// ArraySize returns the number of elements of an ARRAY value.
type ArraySize struct {
	Child Expression
}

func (a *ArraySize) Children() []Expression { return []Expression{a.Child} }
func (a *ArraySize) WithNewChildren(children []Expression) Expression {
	return &ArraySize{Child: children[0]}
}
func (a *ArraySize) DataType() types.DataType { return types.Int }
func (a *ArraySize) Nullable() bool           { return a.Child.Nullable() }
func (a *ArraySize) Resolved() bool {
	if !childrenResolved(a) {
		return false
	}
	_, isArr := a.Child.DataType().(types.ArrayType)
	return isArr
}
func (a *ArraySize) String() string { return fmt.Sprintf("size(%s)", a.Child) }
func (a *ArraySize) Eval(r row.Row) any {
	v := a.Child.Eval(r)
	if v == nil {
		return nil
	}
	return int32(len(v.([]any)))
}
