package expr

import (
	"strings"

	"repro/internal/columnar"
	"repro/internal/row"
	"repro/internal/types"
)

// This file is the vectorized analogue of compile.go: instead of fusing an
// expression tree into a per-row closure, CompileVec and CompileVecPredicate
// fuse it into BATCH kernels that run tight typed loops over decoded column
// vectors (columnar.Vector) with selection vectors, deferring all boxing to
// the pipeline boundary. Exactly like the scalar compiler, coverage is never
// lost: any node the vector compiler does not know compiles to a per-row
// fallback that boxes the selected rows and calls the scalar compiled
// closure, so a single exotic expression does not force a whole pipeline
// off the vectorized path.

// VecBatch is the kernel input: one decoded vector per input-schema column.
// Entries no kernel references may be nil (they are never decoded).
type VecBatch struct {
	Cols []*columnar.Vector
	// N is the number of rows in the batch.
	N int
}

// Row boxes row i of the batch for scalar-fallback evaluation; nil vectors
// contribute NULL (they are unreferenced by the expression being evaluated).
func (b *VecBatch) Row(i int) row.Row {
	return b.RowInto(i, make(row.Row, len(b.Cols)))
}

// RowInto boxes row i of the batch into a caller-owned scratch row, so hot
// fallback loops reuse one allocation per batch instead of one per row. The
// scratch must not be retained past the next RowInto call.
func (b *VecBatch) RowInto(i int, r row.Row) row.Row {
	for j, v := range b.Cols {
		if v != nil {
			r[j] = v.Get(i)
		} else {
			r[j] = nil
		}
	}
	return r
}

// VecEval computes a value vector for the selected positions of a batch.
// Output vectors use absolute indexing: position i of the result aligns
// with row i of the batch, and only selected positions are defined.
type VecEval func(b *VecBatch, sel []int32) *columnar.Vector

// VecPred filters a selection vector, returning the surviving positions in
// order. Implementations must NOT mutate the input selection (OR kernels
// evaluate both branches over the same input).
type VecPred func(b *VecBatch, sel []int32) []int32

// value classes the typed kernels specialize on.
const (
	classNone = iota
	classI64  // INT, BIGINT, DATE, TIMESTAMP — widened to int64
	classF64  // DOUBLE (FLOAT keeps float32 row semantics: fallback)
	classStr  // STRING
)

func vecClass(t types.DataType) int {
	switch {
	case t.Equals(types.Int), t.Equals(types.Long), t.Equals(types.Date), t.Equals(types.Timestamp):
		return classI64
	case t.Equals(types.Double):
		return classF64
	case t.Equals(types.String):
		return classStr
	default:
		return classNone
	}
}

// Exported value-class codes so the physical layer can make fusion
// decisions (which specialized hash table a group key or join key fits).
const (
	VecClassNone = classNone
	VecClassI64  = classI64
	VecClassF64  = classF64
	VecClassStr  = classStr
)

// VecClassOf reports the kernel value class of a data type: VecClassI64
// for the int64-widened types, VecClassF64 for DOUBLE, VecClassStr for
// STRING, VecClassNone otherwise.
func VecClassOf(t types.DataType) int { return vecClass(t) }

// ---------------------------------------------------------------------------
// Value kernels

// CompileVec compiles a bound expression into a batch kernel. The boolean
// reports whether the kernel is natively vectorized: when false, the
// returned kernel is the per-row scalar fallback (still correct, and its
// output vector stores the scalar path's boxed values verbatim).
func CompileVec(e Expression) (VecEval, bool) {
	switch x := e.(type) {
	case *BoundReference:
		ord := x.Ordinal
		return func(b *VecBatch, sel []int32) *columnar.Vector {
			return b.Cols[ord]
		}, true

	case *Literal:
		t, v := x.Type, x.Value
		return func(b *VecBatch, sel []int32) *columnar.Vector {
			return columnar.NewConstVector(t, v, b.N)
		}, true

	case *Alias:
		return CompileVec(x.Child)

	case *BinaryArith:
		return compileVecArith(x)

	case *DatePart:
		return compileVecDatePart(x)
	}
	return vecFallbackEval(e), false
}

// vecFallbackEval boxes each selected row and evaluates the scalar compiled
// closure — the "call into the interpreter" escape hatch of §4.3.4, one
// level up.
func vecFallbackEval(e Expression) VecEval {
	ev := Compile(e)
	t := e.DataType()
	return func(b *VecBatch, sel []int32) *columnar.Vector {
		// KindAny storage keeps the scalar path's boxed representation
		// exactly, whatever the declared type says.
		out := columnar.NewAnyVector(t, b.N)
		// One scratch row per batch, reused across rows: the scalar closure
		// reads its inputs before returning, so nothing retains the slice.
		scratch := make(row.Row, len(b.Cols))
		for _, i := range sel {
			ii := int(i)
			if val := ev(b.RowInto(ii, scratch)); val == nil {
				out.SetNull(ii)
			} else {
				out.Any[ii] = val
			}
		}
		return out
	}
}

// compileVecDatePart extracts year/month/day from a DATE vector without
// boxing: days-since-epoch come out of the decoded int64 lane and the civil
// split runs once per selected row.
func compileVecDatePart(x *DatePart) (VecEval, bool) {
	if !x.Child.DataType().Equals(types.Date) {
		return vecFallbackEval(x), false
	}
	child, ok := CompileVec(x.Child)
	if !ok {
		return vecFallbackEval(x), false
	}
	part := x.Part
	return func(b *VecBatch, sel []int32) *columnar.Vector {
		v := child(b, sel)
		out := columnar.NewVector(types.Int, b.N)
		m := v.Mask()
		for _, i := range sel {
			ii := int(i)
			if v.IsNull(ii) {
				out.SetNull(ii)
				continue
			}
			y, mo, d := DaysToCivil(int32(v.I64[ii&m]))
			switch part {
			case 0:
				out.I64[ii] = int64(int32(y))
			case 1:
				out.I64[ii] = int64(int32(mo))
			default:
				out.I64[ii] = int64(int32(d))
			}
		}
		return out
	}, true
}

// compileVecArith builds typed arithmetic kernels for the int64 and float64
// classes, mirroring the scalar interpreter exactly (INT truncates to 32
// bits per node; x/0 and x%0 are NULL for integers; float division follows
// IEEE). Anything else — decimals, FLOAT, mixed classes — falls back.
func compileVecArith(x *BinaryArith) (VecEval, bool) {
	t := x.DataType()
	cls := vecClass(t)
	if cls != classI64 && cls != classF64 ||
		vecClass(x.Left.DataType()) != cls || vecClass(x.Right.DataType()) != cls {
		return vecFallbackEval(x), false
	}
	l, lok := CompileVec(x.Left)
	r, rok := CompileVec(x.Right)
	if !lok || !rok {
		return vecFallbackEval(x), false
	}
	op := x.Op
	if cls == classI64 {
		narrow := t.Equals(types.Int) || t.Equals(types.Date)
		return func(b *VecBatch, sel []int32) *columnar.Vector {
			lv, rv := l(b, sel), r(b, sel)
			out := columnar.NewVector(t, b.N)
			lm, rm := lv.Mask(), rv.Mask()
			ld, rd := lv.I64, rv.I64
			if !lv.HasNulls() && !rv.HasNulls() && op != OpDiv && op != OpMod {
				switch op {
				case OpAdd:
					for _, i := range sel {
						ii := int(i)
						out.I64[ii] = ld[ii&lm] + rd[ii&rm]
					}
				case OpSub:
					for _, i := range sel {
						ii := int(i)
						out.I64[ii] = ld[ii&lm] - rd[ii&rm]
					}
				default: // OpMul
					for _, i := range sel {
						ii := int(i)
						out.I64[ii] = ld[ii&lm] * rd[ii&rm]
					}
				}
				if narrow {
					for _, i := range sel {
						ii := int(i)
						out.I64[ii] = int64(int32(out.I64[ii]))
					}
				}
				return out
			}
			for _, i := range sel {
				ii := int(i)
				if lv.IsNull(ii) || rv.IsNull(ii) {
					out.SetNull(ii)
					continue
				}
				v, ok := i64Arith(op, ld[ii&lm], rd[ii&rm])
				if !ok {
					out.SetNull(ii)
					continue
				}
				if narrow {
					v = int64(int32(v))
				}
				out.I64[ii] = v
			}
			return out
		}, true
	}
	return func(b *VecBatch, sel []int32) *columnar.Vector {
		lv, rv := l(b, sel), r(b, sel)
		out := columnar.NewVector(t, b.N)
		lm, rm := lv.Mask(), rv.Mask()
		ld, rd := lv.F64, rv.F64
		if !lv.HasNulls() && !rv.HasNulls() {
			switch op {
			case OpAdd:
				for _, i := range sel {
					ii := int(i)
					out.F64[ii] = ld[ii&lm] + rd[ii&rm]
				}
			case OpSub:
				for _, i := range sel {
					ii := int(i)
					out.F64[ii] = ld[ii&lm] - rd[ii&rm]
				}
			case OpMul:
				for _, i := range sel {
					ii := int(i)
					out.F64[ii] = ld[ii&lm] * rd[ii&rm]
				}
			default:
				for _, i := range sel {
					ii := int(i)
					out.F64[ii] = floatArith(op, ld[ii&lm], rd[ii&rm])
				}
			}
			return out
		}
		for _, i := range sel {
			ii := int(i)
			if lv.IsNull(ii) || rv.IsNull(ii) {
				out.SetNull(ii)
				continue
			}
			out.F64[ii] = floatArith(op, ld[ii&lm], rd[ii&rm])
		}
		return out
	}, true
}

// i64Arith mirrors intArith without boxing; ok=false means SQL NULL.
func i64Arith(op ArithOp, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	default: // OpMod
		if b == 0 {
			return 0, false
		}
		return a % b, true
	}
}

// ---------------------------------------------------------------------------
// Predicate kernels

// CompileVecPredicate compiles a bound boolean expression into a selection
// kernel (WHERE semantics: NULL does not match). The boolean reports
// whether any part of the predicate is natively vectorized.
func CompileVecPredicate(e Expression) (VecPred, bool) {
	switch x := e.(type) {
	case *Comparison:
		return compileVecCmp(x)

	case *And:
		l, lok := CompileVecPredicate(x.Left)
		r, rok := CompileVecPredicate(x.Right)
		return func(b *VecBatch, sel []int32) []int32 {
			sel = l(b, sel)
			if len(sel) == 0 {
				return sel
			}
			return r(b, sel)
		}, lok || rok

	case *Or:
		// a OR b is true exactly when a is true or b is true, so the result
		// selection is the ordered union of the branch selections (NULL
		// branches simply do not contribute — matching 3-valued logic).
		l, lok := CompileVecPredicate(x.Left)
		r, rok := CompileVecPredicate(x.Right)
		return func(b *VecBatch, sel []int32) []int32 {
			return unionSel(l(b, sel), r(b, sel))
		}, lok || rok

	case *IsNull:
		child, ok := CompileVec(x.Child)
		if !ok {
			return vecFallbackPred(x), false
		}
		return func(b *VecBatch, sel []int32) []int32 {
			v := child(b, sel)
			if !v.HasNulls() {
				return nil
			}
			out := make([]int32, 0, len(sel))
			for _, i := range sel {
				if v.IsNull(int(i)) {
					out = append(out, i)
				}
			}
			return out
		}, true

	case *IsNotNull:
		child, ok := CompileVec(x.Child)
		if !ok {
			return vecFallbackPred(x), false
		}
		return func(b *VecBatch, sel []int32) []int32 {
			v := child(b, sel)
			if !v.HasNulls() {
				return sel
			}
			out := make([]int32, 0, len(sel))
			for _, i := range sel {
				if !v.IsNull(int(i)) {
					out = append(out, i)
				}
			}
			return out
		}, true

	case *In:
		return compileVecIn(x)

	case *StringMatch:
		return compileVecStrMatch(x)

	case *Like:
		return compileVecLike(x)

	case *Literal:
		if x.Value == true {
			return func(b *VecBatch, sel []int32) []int32 { return sel }, true
		}
		return func(b *VecBatch, sel []int32) []int32 { return nil }, true

	case *BoundReference:
		if x.Type.Equals(types.Boolean) {
			ord := x.Ordinal
			return func(b *VecBatch, sel []int32) []int32 {
				v := b.Cols[ord]
				out := make([]int32, 0, len(sel))
				for _, i := range sel {
					ii := int(i)
					if !v.IsNull(ii) && v.Bool[ii] {
						out = append(out, i)
					}
				}
				return out
			}, true
		}
	}
	return vecFallbackPred(e), false
}

// vecFallbackPred boxes each selected row and runs the scalar predicate.
func vecFallbackPred(e Expression) VecPred {
	pred := CompilePredicate(e)
	return func(b *VecBatch, sel []int32) []int32 {
		out := make([]int32, 0, len(sel))
		scratch := make(row.Row, len(b.Cols))
		for _, i := range sel {
			if pred(b.RowInto(int(i), scratch)) {
				out = append(out, i)
			}
		}
		return out
	}
}

// compileVecStrMatch vectorizes StartsWith/EndsWith/Contains — the targets
// the SimplifyLike rule lowers prefix/suffix/substring LIKE patterns into —
// as direct loops over the string lanes (no boxing, no per-row dispatch).
func compileVecStrMatch(x *StringMatch) (VecPred, bool) {
	if vecClass(x.Left.DataType()) != classStr || vecClass(x.Right.DataType()) != classStr {
		return vecFallbackPred(x), false
	}
	l, lok := CompileVec(x.Left)
	r, rok := CompileVec(x.Right)
	if !lok || !rok {
		return vecFallbackPred(x), false
	}
	kind := x.Kind
	return func(b *VecBatch, sel []int32) []int32 {
		lv, rv := l(b, sel), r(b, sel)
		out := make([]int32, 0, len(sel))
		lm, rm := lv.Mask(), rv.Mask()
		ld, rd := lv.Str, rv.Str
		for _, i := range sel {
			ii := int(i)
			if lv.IsNull(ii) || rv.IsNull(ii) {
				continue
			}
			s, sub := ld[ii&lm], rd[ii&rm]
			var hit bool
			switch kind {
			case matchStartsWith:
				hit = strings.HasPrefix(s, sub)
			case matchEndsWith:
				hit = strings.HasSuffix(s, sub)
			default:
				hit = strings.Contains(s, sub)
			}
			if hit {
				out = append(out, i)
			}
		}
		return out
	}, true
}

// compileVecLike vectorizes general LIKE: the backtracking matcher still
// runs per row, but the operands come straight off the string lanes.
func compileVecLike(x *Like) (VecPred, bool) {
	if vecClass(x.Left.DataType()) != classStr || vecClass(x.Pattern.DataType()) != classStr {
		return vecFallbackPred(x), false
	}
	l, lok := CompileVec(x.Left)
	p, pok := CompileVec(x.Pattern)
	if !lok || !pok {
		return vecFallbackPred(x), false
	}
	return func(b *VecBatch, sel []int32) []int32 {
		lv, pv := l(b, sel), p(b, sel)
		out := make([]int32, 0, len(sel))
		lm, pm := lv.Mask(), pv.Mask()
		ld, pd := lv.Str, pv.Str
		for _, i := range sel {
			ii := int(i)
			if lv.IsNull(ii) || pv.IsNull(ii) {
				continue
			}
			if LikeMatch(ld[ii&lm], pd[ii&pm]) {
				out = append(out, i)
			}
		}
		return out
	}, true
}

// unionSel merges two ordered selections (each a subsequence of the same
// input selection) preserving row order.
func unionSel(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// compileVecCmp specializes comparisons on the operand class with direct
// typed loops; the hot (column ⋈ constant) int64 shape gets fully unrolled
// per-operator loops.
func compileVecCmp(x *Comparison) (VecPred, bool) {
	cls := vecClass(x.Left.DataType())
	if cls == classNone || vecClass(x.Right.DataType()) != cls {
		return vecFallbackPred(x), false
	}
	l, lok := CompileVec(x.Left)
	r, rok := CompileVec(x.Right)
	if !lok || !rok {
		return vecFallbackPred(x), false
	}
	op := x.Op
	return func(b *VecBatch, sel []int32) []int32 {
		lv, rv := l(b, sel), r(b, sel)
		if cls == classI64 && !lv.IsConst() && !lv.HasNulls() && rv.IsConst() && !rv.HasNulls() {
			return i64FilterConst(op, lv.I64, rv.I64[0], sel)
		}
		out := make([]int32, 0, len(sel))
		lm, rm := lv.Mask(), rv.Mask()
		switch cls {
		case classI64:
			ld, rd := lv.I64, rv.I64
			for _, i := range sel {
				ii := int(i)
				if lv.IsNull(ii) || rv.IsNull(ii) {
					continue
				}
				if cmpResult(op, ld[ii&lm], rd[ii&rm]) {
					out = append(out, i)
				}
			}
		case classF64:
			ld, rd := lv.F64, rv.F64
			for _, i := range sel {
				ii := int(i)
				if lv.IsNull(ii) || rv.IsNull(ii) {
					continue
				}
				if cmpFloat(op, ld[ii&lm], rd[ii&rm]) {
					out = append(out, i)
				}
			}
		default: // classStr
			ld, rd := lv.Str, rv.Str
			for _, i := range sel {
				ii := int(i)
				if lv.IsNull(ii) || rv.IsNull(ii) {
					continue
				}
				if cmpString(op, ld[ii&lm], rd[ii&rm]) {
					out = append(out, i)
				}
			}
		}
		return out
	}, true
}

// i64FilterConst is the fully unrolled hot path: a null-free int64 column
// against a constant — one branch per row, no calls, no boxing.
func i64FilterConst(op CmpOp, data []int64, c int64, sel []int32) []int32 {
	out := make([]int32, 0, len(sel))
	switch op {
	case OpEQ:
		for _, i := range sel {
			if data[i] == c {
				out = append(out, i)
			}
		}
	case OpNEQ:
		for _, i := range sel {
			if data[i] != c {
				out = append(out, i)
			}
		}
	case OpLT:
		for _, i := range sel {
			if data[i] < c {
				out = append(out, i)
			}
		}
	case OpLE:
		for _, i := range sel {
			if data[i] <= c {
				out = append(out, i)
			}
		}
	case OpGT:
		for _, i := range sel {
			if data[i] > c {
				out = append(out, i)
			}
		}
	default: // OpGE
		for _, i := range sel {
			if data[i] >= c {
				out = append(out, i)
			}
		}
	}
	return out
}

// compileVecIn vectorizes constant IN lists over the int64 and string
// classes as hash-set membership (rows matching NULL list entries yield
// NULL, which a predicate drops — so only concrete members matter).
func compileVecIn(x *In) (VecPred, bool) {
	cls := vecClass(x.Value.DataType())
	if cls != classI64 && cls != classStr {
		return vecFallbackPred(x), false
	}
	val, ok := CompileVec(x.Value)
	if !ok {
		return vecFallbackPred(x), false
	}
	i64Set := make(map[int64]struct{}, len(x.List))
	strSet := make(map[string]struct{}, len(x.List))
	for _, e := range x.List {
		lit, isLit := e.(*Literal)
		if !isLit {
			return vecFallbackPred(x), false
		}
		if lit.Value == nil {
			continue
		}
		switch v := lit.Value.(type) {
		case int32:
			i64Set[int64(v)] = struct{}{}
		case int64:
			i64Set[v] = struct{}{}
		case string:
			strSet[v] = struct{}{}
		default:
			return vecFallbackPred(x), false
		}
	}
	return func(b *VecBatch, sel []int32) []int32 {
		v := val(b, sel)
		out := make([]int32, 0, len(sel))
		m := v.Mask()
		if cls == classI64 {
			for _, i := range sel {
				ii := int(i)
				if v.IsNull(ii) {
					continue
				}
				if _, hit := i64Set[v.I64[ii&m]]; hit {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			ii := int(i)
			if v.IsNull(ii) {
				continue
			}
			if _, hit := strSet[v.Str[ii&m]]; hit {
				out = append(out, i)
			}
		}
		return out
	}, true
}
