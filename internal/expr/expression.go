// Package expr implements Catalyst expression trees (paper §4.1): literals,
// attributes, arithmetic, predicates, string operations, casts,
// conditionals, aggregate functions and user-defined functions — plus the
// two evaluation strategies the paper compares in Figure 4: a tree-walking
// interpreter (Eval) and runtime "code generation" (Compile), which in this
// Go reproduction produces closures instead of JVM bytecode.
package expr

import (
	"fmt"
	"sync/atomic"

	"repro/internal/row"
	"repro/internal/types"
)

// Expression is a Catalyst expression tree node. All implementations are
// pointer types (required by the catalyst transform machinery).
type Expression interface {
	// Children returns direct sub-expressions.
	Children() []Expression
	// WithNewChildren rebuilds the node with replacement children.
	WithNewChildren(children []Expression) Expression
	// String renders the whole subtree.
	String() string
	// DataType is the result type; calling it on an unresolved expression
	// panics (the analyzer must run first).
	DataType() types.DataType
	// Nullable reports whether evaluation may produce SQL NULL.
	Nullable() bool
	// Resolved reports whether the expression and all children have been
	// bound to input attributes and typed (paper §4.3.1).
	Resolved() bool
	// Eval interprets the expression against an input row. NULL is nil.
	Eval(r row.Row) any
}

// Named is implemented by expressions that produce a named output column:
// attributes and aliases.
type Named interface {
	Expression
	// OutName is the output column name.
	OutName() string
	// ExprID is the unique identity of the produced attribute.
	ExprID() ID
	// ToAttribute returns the attribute this expression produces, for use
	// in the schema of the operator above.
	ToAttribute() *AttributeReference
}

// ID uniquely identifies a resolved attribute across the whole query plan,
// letting the optimizer distinguish same-named columns from different
// relations (paper §4.3.1: "determining which attributes refer to the same
// value to give them a unique ID").
type ID int64

var idCounter atomic.Int64

// NewID allocates a fresh attribute ID.
func NewID() ID { return ID(idCounter.Add(1)) }

// unresolvedPanic is used by unresolved nodes for DataType/Eval.
func unresolvedPanic(e Expression) string {
	return fmt.Sprintf("expr: invalid call on unresolved expression %s", e.String())
}

// ---------------------------------------------------------------------------
// Literal

// Literal is a constant value of a known type.
type Literal struct {
	Value any
	Type  types.DataType
}

// Lit builds a literal, inferring the SQL type from the Go value.
func Lit(v any) *Literal {
	switch x := v.(type) {
	case nil:
		return &Literal{Value: nil, Type: types.Null}
	case bool:
		return &Literal{Value: x, Type: types.Boolean}
	case int:
		return &Literal{Value: int32(x), Type: types.Int}
	case int32:
		return &Literal{Value: x, Type: types.Int}
	case int64:
		return &Literal{Value: x, Type: types.Long}
	case float32:
		return &Literal{Value: x, Type: types.Float}
	case float64:
		return &Literal{Value: x, Type: types.Double}
	case string:
		return &Literal{Value: x, Type: types.String}
	case types.Decimal:
		return &Literal{Value: x, Type: types.DecimalType{Precision: types.MaxLongDigits, Scale: x.Scale}}
	default:
		panic(fmt.Sprintf("expr: unsupported literal type %T", v))
	}
}

func (l *Literal) Children() []Expression { return nil }
func (l *Literal) WithNewChildren(children []Expression) Expression {
	return l
}
func (l *Literal) DataType() types.DataType { return l.Type }
func (l *Literal) Nullable() bool           { return l.Value == nil }
func (l *Literal) Resolved() bool           { return true }
func (l *Literal) Eval(r row.Row) any       { return l.Value }
func (l *Literal) String() string {
	if s, ok := l.Value.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	if l.Value == nil {
		return "NULL"
	}
	return fmt.Sprint(l.Value)
}

// ---------------------------------------------------------------------------
// Attributes

// UnresolvedAttribute is a by-name column reference produced by the parser
// or the DataFrame DSL, before analysis. Parts holds the dotted path, e.g.
// ["users", "age"] or ["loc", "lat"]; resolution decides which prefix names
// a relation and which suffix drills into struct fields.
type UnresolvedAttribute struct {
	Parts []string
}

// UnresolvedAttr builds an unresolved attribute from a dotted name.
func UnresolvedAttr(parts ...string) *UnresolvedAttribute {
	return &UnresolvedAttribute{Parts: parts}
}

func (u *UnresolvedAttribute) Children() []Expression { return nil }
func (u *UnresolvedAttribute) WithNewChildren(children []Expression) Expression {
	return u
}
func (u *UnresolvedAttribute) DataType() types.DataType { panic(unresolvedPanic(u)) }
func (u *UnresolvedAttribute) Nullable() bool           { panic(unresolvedPanic(u)) }
func (u *UnresolvedAttribute) Resolved() bool           { return false }
func (u *UnresolvedAttribute) Eval(r row.Row) any       { panic(unresolvedPanic(u)) }
func (u *UnresolvedAttribute) String() string {
	s := ""
	for i, p := range u.Parts {
		if i > 0 {
			s += "."
		}
		s += p
	}
	return "'" + s
}
func (u *UnresolvedAttribute) OutName() string { return u.Parts[len(u.Parts)-1] }
func (u *UnresolvedAttribute) ExprID() ID      { panic(unresolvedPanic(u)) }
func (u *UnresolvedAttribute) ToAttribute() *AttributeReference {
	panic(unresolvedPanic(u))
}

// Star is the `*` in SELECT * or df.Select("*"); the analyzer expands it to
// the child's output attributes. Qualifier restricts expansion to one
// relation (e.g. `t.*`).
type Star struct {
	Qualifier string
}

func (s *Star) Children() []Expression                           { return nil }
func (s *Star) WithNewChildren(children []Expression) Expression { return s }
func (s *Star) DataType() types.DataType                         { panic(unresolvedPanic(s)) }
func (s *Star) Nullable() bool                                   { panic(unresolvedPanic(s)) }
func (s *Star) Resolved() bool                                   { return false }
func (s *Star) Eval(r row.Row) any                               { panic(unresolvedPanic(s)) }
func (s *Star) String() string {
	if s.Qualifier != "" {
		return s.Qualifier + ".*"
	}
	return "*"
}

// AttributeReference is a resolved reference to an output column of some
// operator, carrying its type, nullability, unique ID and optional relation
// qualifier.
type AttributeReference struct {
	Name      string
	Type      types.DataType
	Null      bool
	ID_       ID
	Qualifier string
}

// NewAttribute allocates a resolved attribute with a fresh ID.
func NewAttribute(name string, t types.DataType, nullable bool) *AttributeReference {
	return &AttributeReference{Name: name, Type: t, Null: nullable, ID_: NewID()}
}

// WithQualifier returns a copy carrying the given relation qualifier (same ID).
func (a *AttributeReference) WithQualifier(q string) *AttributeReference {
	c := *a
	c.Qualifier = q
	return &c
}

// WithFreshID returns a copy with a newly allocated ID (used when
// self-joining a relation so the two sides' attributes stay distinct).
func (a *AttributeReference) WithFreshID() *AttributeReference {
	c := *a
	c.ID_ = NewID()
	return &c
}

// WithNullable returns a copy with the given nullability (outer joins make
// one side's attributes nullable).
func (a *AttributeReference) WithNullable(n bool) *AttributeReference {
	c := *a
	c.Null = n
	return &c
}

func (a *AttributeReference) Children() []Expression { return nil }
func (a *AttributeReference) WithNewChildren(children []Expression) Expression {
	return a
}
func (a *AttributeReference) DataType() types.DataType { return a.Type }
func (a *AttributeReference) Nullable() bool           { return a.Null }
func (a *AttributeReference) Resolved() bool           { return true }
func (a *AttributeReference) Eval(r row.Row) any {
	panic(fmt.Sprintf("expr: evaluating unbound attribute %s; bind to the input schema first", a))
}
func (a *AttributeReference) String() string {
	return fmt.Sprintf("%s#%d", a.Name, a.ID_)
}
func (a *AttributeReference) OutName() string                  { return a.Name }
func (a *AttributeReference) ExprID() ID                       { return a.ID_ }
func (a *AttributeReference) ToAttribute() *AttributeReference { return a }

// ---------------------------------------------------------------------------
// Alias

// Alias names the result of an expression, e.g. `expr AS name`. It carries
// its own attribute ID so operators above can reference the aliased column.
type Alias struct {
	Child Expression
	Name  string
	ID_   ID
}

// NewAlias wraps child under a name with a fresh ID.
func NewAlias(child Expression, name string) *Alias {
	return &Alias{Child: child, Name: name, ID_: NewID()}
}

func (a *Alias) Children() []Expression { return []Expression{a.Child} }
func (a *Alias) WithNewChildren(children []Expression) Expression {
	return &Alias{Child: children[0], Name: a.Name, ID_: a.ID_}
}
func (a *Alias) DataType() types.DataType { return a.Child.DataType() }
func (a *Alias) Nullable() bool           { return a.Child.Nullable() }
func (a *Alias) Resolved() bool           { return a.Child.Resolved() }
func (a *Alias) Eval(r row.Row) any       { return a.Child.Eval(r) }
func (a *Alias) String() string           { return fmt.Sprintf("%s AS %s#%d", a.Child, a.Name, a.ID_) }
func (a *Alias) OutName() string          { return a.Name }
func (a *Alias) ExprID() ID               { return a.ID_ }
func (a *Alias) ToAttribute() *AttributeReference {
	return &AttributeReference{Name: a.Name, Type: a.DataType(), Null: a.Nullable(), ID_: a.ID_}
}

// ---------------------------------------------------------------------------
// BoundReference

// BoundReference is an attribute bound to an ordinal of the physical input
// row; the physical planner rewrites AttributeReferences into these before
// execution (and before compilation).
type BoundReference struct {
	Ordinal int
	Type    types.DataType
	Null    bool
}

func (b *BoundReference) Children() []Expression { return nil }
func (b *BoundReference) WithNewChildren(children []Expression) Expression {
	return b
}
func (b *BoundReference) DataType() types.DataType { return b.Type }
func (b *BoundReference) Nullable() bool           { return b.Null }
func (b *BoundReference) Resolved() bool           { return true }
func (b *BoundReference) Eval(r row.Row) any       { return r[b.Ordinal] }
func (b *BoundReference) String() string           { return fmt.Sprintf("input[%d]", b.Ordinal) }

// ---------------------------------------------------------------------------
// Helpers shared across the package

// Resolved reports whether all expressions in the slice are resolved.
func AllResolved(exprs []Expression) bool {
	for _, e := range exprs {
		if !e.Resolved() {
			return false
		}
	}
	return true
}

func childrenResolved(e Expression) bool {
	for _, c := range e.Children() {
		if !c.Resolved() {
			return false
		}
	}
	return true
}

func anyNullable(exprs ...Expression) bool {
	for _, e := range exprs {
		if e.Nullable() {
			return true
		}
	}
	return false
}
