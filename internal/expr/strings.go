package expr

import (
	"fmt"
	"strings"

	"repro/internal/row"
	"repro/internal/types"
)

// Like is the SQL LIKE predicate with % (any run) and _ (any one char)
// wildcards. The optimizer's SimplifyLike rule rewrites simple patterns
// into StartsWith / EndsWith / Contains / EQ (paper §4.3.2: "a 12-line rule
// optimizes LIKE expressions with simple regular expressions into
// String.startsWith or String.contains calls").
type Like struct {
	Left    Expression
	Pattern Expression
}

func (l *Like) Children() []Expression { return []Expression{l.Left, l.Pattern} }
func (l *Like) WithNewChildren(children []Expression) Expression {
	return &Like{Left: children[0], Pattern: children[1]}
}
func (l *Like) DataType() types.DataType { return types.Boolean }
func (l *Like) Nullable() bool           { return anyNullable(l.Left, l.Pattern) }
func (l *Like) Resolved() bool {
	return childrenResolved(l) && l.Left.DataType().Equals(types.String) &&
		l.Pattern.DataType().Equals(types.String)
}
func (l *Like) String() string { return fmt.Sprintf("(%s LIKE %s)", l.Left, l.Pattern) }
func (l *Like) Eval(r row.Row) any {
	s := l.Left.Eval(r)
	if s == nil {
		return nil
	}
	p := l.Pattern.Eval(r)
	if p == nil {
		return nil
	}
	return LikeMatch(s.(string), p.(string))
}

// LikeMatch implements LIKE pattern matching with a two-pointer
// backtracking scan (no regexp compilation per row).
func LikeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// stringUnaryOp factors the boilerplate of one-string-argument functions.
type stringFnKind int

const (
	fnUpper stringFnKind = iota
	fnLower
	fnLength
	fnTrim
)

// StringFn is upper/lower/length/trim over one string operand.
type StringFn struct {
	Kind  stringFnKind
	Child Expression
}

// Upper builds UPPER(child).
func Upper(child Expression) *StringFn { return &StringFn{Kind: fnUpper, Child: child} }

// Lower builds LOWER(child).
func Lower(child Expression) *StringFn { return &StringFn{Kind: fnLower, Child: child} }

// Length builds LENGTH(child).
func Length(child Expression) *StringFn { return &StringFn{Kind: fnLength, Child: child} }

// Trim builds TRIM(child).
func Trim(child Expression) *StringFn { return &StringFn{Kind: fnTrim, Child: child} }

func (f *StringFn) name() string {
	switch f.Kind {
	case fnUpper:
		return "upper"
	case fnLower:
		return "lower"
	case fnLength:
		return "length"
	case fnTrim:
		return "trim"
	}
	return "?"
}

func (f *StringFn) Children() []Expression { return []Expression{f.Child} }
func (f *StringFn) WithNewChildren(children []Expression) Expression {
	return &StringFn{Kind: f.Kind, Child: children[0]}
}
func (f *StringFn) DataType() types.DataType {
	if f.Kind == fnLength {
		return types.Int
	}
	return types.String
}
func (f *StringFn) Nullable() bool { return f.Child.Nullable() }
func (f *StringFn) Resolved() bool {
	return childrenResolved(f) && f.Child.DataType().Equals(types.String)
}
func (f *StringFn) String() string { return fmt.Sprintf("%s(%s)", f.name(), f.Child) }
func (f *StringFn) Eval(r row.Row) any {
	v := f.Child.Eval(r)
	if v == nil {
		return nil
	}
	s := v.(string)
	switch f.Kind {
	case fnUpper:
		return strings.ToUpper(s)
	case fnLower:
		return strings.ToLower(s)
	case fnLength:
		return int32(len(s))
	case fnTrim:
		return strings.TrimSpace(s)
	}
	panic("expr: unknown string function")
}

// strMatchKind selects the fast string predicate the LIKE simplification
// produces.
type strMatchKind int

const (
	matchStartsWith strMatchKind = iota
	matchEndsWith
	matchContains
)

// StringMatch is StartsWith / EndsWith / Contains — the compiled-friendly
// targets of the SimplifyLike rule.
type StringMatch struct {
	Kind        strMatchKind
	Left, Right Expression
}

// StartsWith builds startswith(left, right).
func StartsWith(l, r Expression) *StringMatch {
	return &StringMatch{Kind: matchStartsWith, Left: l, Right: r}
}

// EndsWith builds endswith(left, right).
func EndsWith(l, r Expression) *StringMatch {
	return &StringMatch{Kind: matchEndsWith, Left: l, Right: r}
}

// Contains builds contains(left, right).
func Contains(l, r Expression) *StringMatch {
	return &StringMatch{Kind: matchContains, Left: l, Right: r}
}

// IsStartsWith reports whether this match is a prefix test (used by the
// optimizer when deciding pushdown eligibility).
func (m *StringMatch) IsStartsWith() bool { return m.Kind == matchStartsWith }

// IsEndsWith reports whether this match is a suffix test.
func (m *StringMatch) IsEndsWith() bool { return m.Kind == matchEndsWith }

// IsContains reports whether this match is a substring test.
func (m *StringMatch) IsContains() bool { return m.Kind == matchContains }

func (m *StringMatch) name() string {
	switch m.Kind {
	case matchStartsWith:
		return "startswith"
	case matchEndsWith:
		return "endswith"
	case matchContains:
		return "contains"
	}
	return "?"
}

func (m *StringMatch) Children() []Expression { return []Expression{m.Left, m.Right} }
func (m *StringMatch) WithNewChildren(children []Expression) Expression {
	return &StringMatch{Kind: m.Kind, Left: children[0], Right: children[1]}
}
func (m *StringMatch) DataType() types.DataType { return types.Boolean }
func (m *StringMatch) Nullable() bool           { return anyNullable(m.Left, m.Right) }
func (m *StringMatch) Resolved() bool {
	return childrenResolved(m) && m.Left.DataType().Equals(types.String) &&
		m.Right.DataType().Equals(types.String)
}
func (m *StringMatch) String() string { return fmt.Sprintf("%s(%s, %s)", m.name(), m.Left, m.Right) }
func (m *StringMatch) Eval(r row.Row) any {
	l := m.Left.Eval(r)
	if l == nil {
		return nil
	}
	rv := m.Right.Eval(r)
	if rv == nil {
		return nil
	}
	s, sub := l.(string), rv.(string)
	switch m.Kind {
	case matchStartsWith:
		return strings.HasPrefix(s, sub)
	case matchEndsWith:
		return strings.HasSuffix(s, sub)
	case matchContains:
		return strings.Contains(s, sub)
	}
	panic("expr: unknown string match kind")
}

// Substring is SUBSTR(str, pos, len) with SQL 1-based positions.
type Substring struct {
	Str, Pos, Len Expression
}

func (s *Substring) Children() []Expression { return []Expression{s.Str, s.Pos, s.Len} }
func (s *Substring) WithNewChildren(children []Expression) Expression {
	return &Substring{Str: children[0], Pos: children[1], Len: children[2]}
}
func (s *Substring) DataType() types.DataType { return types.String }
func (s *Substring) Nullable() bool           { return anyNullable(s.Str, s.Pos, s.Len) }
func (s *Substring) Resolved() bool {
	return childrenResolved(s) && s.Str.DataType().Equals(types.String) &&
		types.IsIntegral(s.Pos.DataType()) && types.IsIntegral(s.Len.DataType())
}
func (s *Substring) String() string {
	return fmt.Sprintf("substr(%s, %s, %s)", s.Str, s.Pos, s.Len)
}
func (s *Substring) Eval(r row.Row) any {
	sv := s.Str.Eval(r)
	if sv == nil {
		return nil
	}
	pv := s.Pos.Eval(r)
	lv := s.Len.Eval(r)
	if pv == nil || lv == nil {
		return nil
	}
	str := sv.(string)
	pos := int(asInt64(pv))
	n := int(asInt64(lv))
	if pos < 1 {
		pos = 1
	}
	start := pos - 1
	if start >= len(str) || n <= 0 {
		return ""
	}
	end := start + n
	if end > len(str) {
		end = len(str)
	}
	return str[start:end]
}

// Concat concatenates string operands; NULL in, NULL out.
type Concat struct {
	Args []Expression
}

func (c *Concat) Children() []Expression { return c.Args }
func (c *Concat) WithNewChildren(children []Expression) Expression {
	return &Concat{Args: children}
}
func (c *Concat) DataType() types.DataType { return types.String }
func (c *Concat) Nullable() bool           { return anyNullable(c.Args...) }
func (c *Concat) Resolved() bool {
	if !childrenResolved(c) {
		return false
	}
	for _, a := range c.Args {
		if !a.DataType().Equals(types.String) {
			return false
		}
	}
	return true
}
func (c *Concat) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return "concat(" + strings.Join(parts, ", ") + ")"
}
func (c *Concat) Eval(r row.Row) any {
	var sb strings.Builder
	for _, a := range c.Args {
		v := a.Eval(r)
		if v == nil {
			return nil
		}
		sb.WriteString(v.(string))
	}
	return sb.String()
}

func asInt64(v any) int64 {
	switch x := v.(type) {
	case int32:
		return int64(x)
	case int64:
		return x
	}
	panic(fmt.Sprintf("expr: expected integral value, got %T", v))
}
