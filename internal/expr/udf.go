package expr

import (
	"fmt"
	"strings"

	"repro/internal/row"
	"repro/internal/types"
)

// UnresolvedFunction is a by-name function call from the parser or DSL; the
// analyzer resolves it to a built-in (count/sum/...) or a registered UDF
// (paper §3.7).
type UnresolvedFunction struct {
	Name string
	Args []Expression
	// Star marks count(*) style calls.
	Star bool
	// Distinct marks count(DISTINCT x) style calls.
	Distinct bool
}

func (u *UnresolvedFunction) Children() []Expression { return u.Args }
func (u *UnresolvedFunction) WithNewChildren(children []Expression) Expression {
	return &UnresolvedFunction{Name: u.Name, Args: children, Star: u.Star, Distinct: u.Distinct}
}
func (u *UnresolvedFunction) DataType() types.DataType { panic(unresolvedPanic(u)) }
func (u *UnresolvedFunction) Nullable() bool           { panic(unresolvedPanic(u)) }
func (u *UnresolvedFunction) Resolved() bool           { return false }
func (u *UnresolvedFunction) Eval(r row.Row) any       { panic(unresolvedPanic(u)) }
func (u *UnresolvedFunction) String() string {
	if u.Star {
		return fmt.Sprintf("'%s(*)", u.Name)
	}
	args := make([]string, len(u.Args))
	for i, a := range u.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("'%s(%s)", u.Name, strings.Join(args, ", "))
}

// ScalarUDF is a registered user-defined scalar function (paper §3.7): an
// ordinary Go function invoked per row. Unlike traditional database UDFs,
// it is defined inline in the host language — the key usability point the
// paper makes — and is equally callable from SQL and the DataFrame DSL.
type ScalarUDF struct {
	Name string
	// Fn receives the evaluated arguments (NULL as nil) and returns the
	// result value.
	Fn func(args []any) any
	// In are the declared parameter types; the analyzer inserts casts to
	// them. Ret is the declared result type.
	In  []types.DataType
	Ret types.DataType
	// Args are the actual argument expressions.
	Args []Expression
}

func (u *ScalarUDF) Children() []Expression { return u.Args }
func (u *ScalarUDF) WithNewChildren(children []Expression) Expression {
	return &ScalarUDF{Name: u.Name, Fn: u.Fn, In: u.In, Ret: u.Ret, Args: children}
}
func (u *ScalarUDF) DataType() types.DataType { return u.Ret }
func (u *ScalarUDF) Nullable() bool           { return true }
func (u *ScalarUDF) Resolved() bool {
	if !childrenResolved(u) || len(u.Args) != len(u.In) {
		return false
	}
	for i, a := range u.Args {
		if !a.DataType().Equals(u.In[i]) {
			return false
		}
	}
	return true
}
func (u *ScalarUDF) String() string {
	args := make([]string, len(u.Args))
	for i, a := range u.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("udf:%s(%s)", u.Name, strings.Join(args, ", "))
}
func (u *ScalarUDF) Eval(r row.Row) any {
	args := make([]any, len(u.Args))
	for i, a := range u.Args {
		args[i] = a.Eval(r)
	}
	return u.Fn(args)
}

// ---------------------------------------------------------------------------
// Decimal helper expressions for the DecimalAggregates rule (paper §4.3.2).

// UnscaledValue extracts the unscaled LONG from a DECIMAL value.
type UnscaledValue struct {
	Child Expression
}

func (u *UnscaledValue) Children() []Expression { return []Expression{u.Child} }
func (u *UnscaledValue) WithNewChildren(children []Expression) Expression {
	return &UnscaledValue{Child: children[0]}
}
func (u *UnscaledValue) DataType() types.DataType { return types.Long }
func (u *UnscaledValue) Nullable() bool           { return u.Child.Nullable() }
func (u *UnscaledValue) Resolved() bool {
	if !childrenResolved(u) {
		return false
	}
	_, ok := u.Child.DataType().(types.DecimalType)
	return ok
}
func (u *UnscaledValue) String() string { return fmt.Sprintf("unscaled(%s)", u.Child) }
func (u *UnscaledValue) Eval(r row.Row) any {
	v := u.Child.Eval(r)
	if v == nil {
		return nil
	}
	return v.(types.Decimal).Unscaled
}

// MakeDecimal reinterprets a LONG as a DECIMAL(precision, scale) unscaled
// value — the inverse of UnscaledValue.
type MakeDecimal struct {
	Child     Expression
	Precision int
	Scale     int
}

func (m *MakeDecimal) Children() []Expression { return []Expression{m.Child} }
func (m *MakeDecimal) WithNewChildren(children []Expression) Expression {
	return &MakeDecimal{Child: children[0], Precision: m.Precision, Scale: m.Scale}
}
func (m *MakeDecimal) DataType() types.DataType {
	return types.DecimalType{Precision: m.Precision, Scale: m.Scale}
}
func (m *MakeDecimal) Nullable() bool { return m.Child.Nullable() }
func (m *MakeDecimal) Resolved() bool {
	return childrenResolved(m) && m.Child.DataType().Equals(types.Long)
}
func (m *MakeDecimal) String() string {
	return fmt.Sprintf("makedecimal(%s, %d, %d)", m.Child, m.Precision, m.Scale)
}
func (m *MakeDecimal) Eval(r row.Row) any {
	v := m.Child.Eval(r)
	if v == nil {
		return nil
	}
	return types.Decimal{Unscaled: v.(int64), Scale: m.Scale}
}

// ---------------------------------------------------------------------------
// UDT bridging (paper §4.4.2)

// SerializeUDT converts a user-object column to its SQL representation; the
// engine inserts it when a UDT-typed value crosses into relational
// processing (columnar cache, data source writes).
type SerializeUDT struct {
	Child Expression
	UDT   types.UserDefinedType
}

func (s *SerializeUDT) Children() []Expression { return []Expression{s.Child} }
func (s *SerializeUDT) WithNewChildren(children []Expression) Expression {
	return &SerializeUDT{Child: children[0], UDT: s.UDT}
}
func (s *SerializeUDT) DataType() types.DataType { return s.UDT.SQLType() }
func (s *SerializeUDT) Nullable() bool           { return s.Child.Nullable() }
func (s *SerializeUDT) Resolved() bool           { return childrenResolved(s) }
func (s *SerializeUDT) String() string {
	return fmt.Sprintf("serialize_%s(%s)", s.UDT.TypeName(), s.Child)
}
func (s *SerializeUDT) Eval(r row.Row) any {
	v := s.Child.Eval(r)
	if v == nil {
		return nil
	}
	out, err := s.UDT.Serialize(v)
	if err != nil {
		panic(fmt.Sprintf("expr: UDT %s serialize: %v", s.UDT.TypeName(), err))
	}
	return out
}

// DeserializeUDT converts a SQL representation back into the user object.
type DeserializeUDT struct {
	Child Expression
	UDT   types.UserDefinedType
}

func (d *DeserializeUDT) Children() []Expression { return []Expression{d.Child} }
func (d *DeserializeUDT) WithNewChildren(children []Expression) Expression {
	return &DeserializeUDT{Child: children[0], UDT: d.UDT}
}
func (d *DeserializeUDT) DataType() types.DataType { return types.UDTType{UDT: d.UDT} }
func (d *DeserializeUDT) Nullable() bool           { return d.Child.Nullable() }
func (d *DeserializeUDT) Resolved() bool           { return childrenResolved(d) }
func (d *DeserializeUDT) String() string {
	return fmt.Sprintf("deserialize_%s(%s)", d.UDT.TypeName(), d.Child)
}
func (d *DeserializeUDT) Eval(r row.Row) any {
	v := d.Child.Eval(r)
	if v == nil {
		return nil
	}
	out, err := d.UDT.Deserialize(v)
	if err != nil {
		panic(fmt.Sprintf("expr: UDT %s deserialize: %v", d.UDT.TypeName(), err))
	}
	return out
}
