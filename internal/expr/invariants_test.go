package expr

import (
	"testing"

	"repro/internal/types"
)

// everyExpr builds one instance of every expression node (resolved where
// the node supports it).
func everyExpr() []Expression {
	i := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	l := &BoundReference{Ordinal: 1, Type: types.Long, Null: true}
	s := &BoundReference{Ordinal: 2, Type: types.String, Null: true}
	d := &BoundReference{Ordinal: 3, Type: types.Double, Null: false}
	b := &BoundReference{Ordinal: 4, Type: types.Boolean, Null: true}
	dec := &BoundReference{Ordinal: 5, Type: types.DecimalType{Precision: 5, Scale: 2}, Null: true}
	st := &BoundReference{Ordinal: 6, Type: types.StructType{}.Add("f", types.Int, false), Null: true}
	arr := &BoundReference{Ordinal: 7, Type: types.ArrayType{Elem: types.Int}, Null: true}
	attr := NewAttribute("col", types.Int, true)

	return []Expression{
		Lit(int32(1)), Lit(nil), Lit("x"), Lit(true),
		attr, attr.WithQualifier("t"),
		UnresolvedAttr("a", "b"),
		&Star{}, &Star{Qualifier: "t"},
		NewAlias(i, "al"),
		Add(i, i), Sub(l, l), Mul(d, d), Div(i, i), Mod(l, l),
		&Negate{Child: i}, &Abs{Child: d},
		EQ(i, i), NEQ(s, s), LT(l, l), LE(d, d), GT(i, i), GE(i, i),
		&And{b, b}, &Or{b, b}, &Not{b},
		&IsNull{i}, &IsNotNull{s},
		&In{Value: i, List: []Expression{Lit(int32(1)), Lit(int32(2))}},
		&Like{Left: s, Pattern: Lit("%x%")},
		StartsWith(s, Lit("a")), EndsWith(s, Lit("b")), Contains(s, Lit("c")),
		Upper(s), Lower(s), Length(s), Trim(s),
		&Substring{Str: s, Pos: Lit(1), Len: Lit(2)},
		&Concat{Args: []Expression{s, Lit("!")}},
		NewCast(i, types.Long),
		NewCaseWhen([][2]Expression{{b, i}, {b, i}}, i),
		NewCaseWhen([][2]Expression{{b, i}}, nil),
		&Coalesce{Args: []Expression{i, Lit(int32(0))}},
		&GetField{Child: st, FieldName: "f"},
		&GetArrayItem{Child: arr, Index: Lit(0)},
		&ArraySize{Child: arr},
		&Count{Child: i}, NewCountStar(),
		&Sum{Child: i}, &Sum{Child: dec}, &Avg{Child: d},
		NewMin(i), NewMax(s), &First{Child: i},
		&UnscaledValue{Child: dec},
		&MakeDecimal{Child: l, Precision: 12, Scale: 2},
		&ScalarUDF{Name: "u", Fn: func([]any) any { return nil },
			In: []types.DataType{types.Int}, Ret: types.Int, Args: []Expression{i}},
		&UnresolvedFunction{Name: "f", Args: []Expression{i}},
		Asc(i), Desc(s),
	}
}

// The transform contract: WithNewChildren(Children()) reproduces an
// equivalent node.
func TestExprRebuildContract(t *testing.T) {
	for _, e := range everyExpr() {
		rebuilt := e.WithNewChildren(e.Children())
		if rebuilt.String() != e.String() {
			t.Errorf("%T: rebuild changed the tree: %s vs %s", e, e, rebuilt)
		}
		if len(rebuilt.Children()) != len(e.Children()) {
			t.Errorf("%T: child count changed", e)
		}
		if e.String() == "" {
			t.Errorf("%T: empty String()", e)
		}
	}
}

// Resolved expressions must report a data type and nullability without
// panicking; unresolved ones must say so.
func TestExprResolutionMetadata(t *testing.T) {
	for _, e := range everyExpr() {
		if !e.Resolved() {
			switch e.(type) {
			case *UnresolvedAttribute, *Star, *UnresolvedFunction:
				// expectedly unresolved
			default:
				t.Errorf("%T built resolved in this fixture but reports unresolved: %s", e, e)
			}
			continue
		}
		if e.DataType() == nil {
			t.Errorf("%T: nil DataType", e)
		}
		_ = e.Nullable()
	}
}

// Identity transform reuses nodes.
func TestExprTransformIdentity(t *testing.T) {
	for _, e := range everyExpr() {
		out := TransformUp(e, func(Expression) (Expression, bool) { return nil, false })
		if out != e {
			t.Errorf("%T: identity transform copied the node", e)
		}
	}
}

// Compile must handle (or interpret-fallback) every resolved non-aggregate
// expression without panicking on construction.
func TestCompileTotality(t *testing.T) {
	for _, e := range everyExpr() {
		if !e.Resolved() {
			continue
		}
		if _, isAgg := e.(AggregateFunc); isAgg {
			continue
		}
		if _, isSort := e.(*SortOrder); isSort {
			continue
		}
		if _, isAttr := e.(*AttributeReference); isAttr {
			continue // attributes must be bound before compilation
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Compile(%T) panicked: %v", e, r)
				}
			}()
			_ = Compile(e)
		}()
	}
}
