package expr

import (
	"math"

	"repro/internal/row"
	"repro/internal/types"
)

// This file holds the batch-native aggregation updaters behind the fused
// pipeline sink (physical.FusedAggregateExec): one VecAggregator per
// aggregate function accumulates directly out of decoded column vectors
// into dense per-group typed state, deferring all boxing to the partial
// flush. The state converts into the exact buffers the scalar
// AggregateFunc implementations use, so the shuffle, the final merge, and
// the grace-partitioned spill path downstream are shared bit-for-bit with
// the row-at-a-time phase 1.

// VecAggregator accumulates one aggregate over selected batch rows into
// dense per-group state.
type VecAggregator interface {
	// Update folds a batch into the group state: sel lists the selected
	// batch positions, gidx[k] is the dense group index of sel[k], and n is
	// the current total group count (state grows to n).
	Update(b *VecBatch, sel []int32, gidx []int32, n int)
	// Buffer returns group g's state as a standard aggregation buffer —
	// exactly what fn.Merge and fn.Result accept.
	Buffer(g int) any
}

// NewVecAggregator builds a batch-native updater for a bound aggregate.
// The boolean reports whether the child expression compiled to a native
// vector kernel; even when false the updater is correct (it reads boxed
// values back out of the fallback vector), and unknown aggregate types get
// a per-row scalar escape hatch.
func NewVecAggregator(fn AggregateFunc) (VecAggregator, bool) {
	switch x := fn.(type) {
	case *Count:
		child, native := CompileVec(x.Child)
		return &vecCount{child: child}, native
	case *Sum:
		child, native := CompileVec(x.Child)
		cls := classNone
		if native {
			cls = vecClass(x.Child.DataType())
		}
		return &vecSum{kind: x.kind(), child: child, cls: cls}, native
	case *Avg:
		child, native := CompileVec(x.Child)
		cls := classNone
		if native {
			cls = vecClass(x.Child.DataType())
		}
		return &vecAvg{child: child, cls: cls}, native
	case *MinMax:
		child, native := CompileVec(x.Child)
		cls := classNone
		if native {
			cls = vecClass(x.Child.DataType())
		}
		return &vecMinMax{child: child, cls: cls, isMax: x.IsMax, t: x.Child.DataType()}, native
	case *First:
		child, native := CompileVec(x.Child)
		return &vecFirst{child: child}, native
	case *CountDistinct:
		child, native := CompileVec(x.Child)
		return &vecDistinct{child: child}, native
	}
	return &vecRowAgg{fn: fn}, false
}

func growI64(s []int64, n int) []int64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growF64(s []float64, n int) []float64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growBool(s []bool, n int) []bool {
	for len(s) < n {
		s = append(s, false)
	}
	return s
}

func growAny(s []any, n int) []any {
	for len(s) < n {
		s = append(s, nil)
	}
	return s
}

// vecCount counts non-NULL child values per group (COUNT(*)'s child is a
// non-null literal, so it takes the same loop).
type vecCount struct {
	child  VecEval
	counts []int64
}

func (a *vecCount) Update(b *VecBatch, sel []int32, gidx []int32, n int) {
	a.counts = growI64(a.counts, n)
	v := a.child(b, sel)
	if !v.HasNulls() {
		for k := range sel {
			a.counts[gidx[k]]++
		}
		return
	}
	for k, i := range sel {
		if !v.IsNull(int(i)) {
			a.counts[gidx[k]]++
		}
	}
}
func (a *vecCount) Buffer(g int) any { return a.counts[g] }

// vecSum accumulates integral sums in int64, float sums in float64, and
// decimal sums through boxed Decimal addition.
type vecSum struct {
	kind  int // Sum.kind(): 0 integral, 1 float, 2 decimal
	child VecEval
	cls   int
	seen  []bool
	i     []int64
	f     []float64
	d     []types.Decimal
}

func (a *vecSum) Update(b *VecBatch, sel []int32, gidx []int32, n int) {
	a.seen = growBool(a.seen, n)
	v := a.child(b, sel)
	switch a.kind {
	case 0:
		a.i = growI64(a.i, n)
		if a.cls == classI64 {
			m := v.Mask()
			for k, i := range sel {
				ii := int(i)
				if v.IsNull(ii) {
					continue
				}
				g := gidx[k]
				a.seen[g] = true
				a.i[g] += v.I64[ii&m]
			}
			return
		}
		for k, i := range sel {
			val := v.Get(int(i))
			if val == nil {
				continue
			}
			g := gidx[k]
			a.seen[g] = true
			a.i[g] += asInt64(val)
		}
	case 1:
		a.f = growF64(a.f, n)
		if a.cls == classF64 {
			m := v.Mask()
			for k, i := range sel {
				ii := int(i)
				if v.IsNull(ii) {
					continue
				}
				g := gidx[k]
				a.seen[g] = true
				a.f[g] += v.F64[ii&m]
			}
			return
		}
		for k, i := range sel {
			val := v.Get(int(i))
			if val == nil {
				continue
			}
			g := gidx[k]
			a.seen[g] = true
			f, _ := toFloat(val)
			a.f[g] += f
		}
	default:
		for len(a.d) < n {
			a.d = append(a.d, types.Decimal{})
		}
		for k, i := range sel {
			val := v.Get(int(i))
			if val == nil {
				continue
			}
			g := gidx[k]
			a.seen[g] = true
			a.d[g] = a.d[g].Add(val.(types.Decimal))
		}
	}
}

func (a *vecSum) Buffer(g int) any {
	buf := &sumBuffer{seen: a.seen[g]}
	switch a.kind {
	case 0:
		buf.i = a.i[g]
	case 1:
		buf.f = a.f[g]
	default:
		buf.d = a.d[g]
	}
	return buf
}

// vecAvg keeps (sum, count) pairs, reading the numeric lanes directly when
// the child vectorized.
type vecAvg struct {
	child  VecEval
	cls    int
	sums   []float64
	counts []int64
}

func (a *vecAvg) Update(b *VecBatch, sel []int32, gidx []int32, n int) {
	a.sums = growF64(a.sums, n)
	a.counts = growI64(a.counts, n)
	v := a.child(b, sel)
	m := v.Mask()
	switch a.cls {
	case classF64:
		for k, i := range sel {
			ii := int(i)
			if v.IsNull(ii) {
				continue
			}
			g := gidx[k]
			a.sums[g] += v.F64[ii&m]
			a.counts[g]++
		}
	case classI64:
		for k, i := range sel {
			ii := int(i)
			if v.IsNull(ii) {
				continue
			}
			g := gidx[k]
			a.sums[g] += float64(v.I64[ii&m])
			a.counts[g]++
		}
	default:
		for k, i := range sel {
			val := v.Get(int(i))
			if val == nil {
				continue
			}
			g := gidx[k]
			f, _ := toFloat(val)
			a.sums[g] += f
			a.counts[g]++
		}
	}
}

func (a *vecAvg) Buffer(g int) any {
	return &avgBuffer{sum: a.sums[g], count: a.counts[g]}
}

// f64Less orders float64 the way row.Compare does: NaN sorts greatest.
func f64Less(a, b float64) bool {
	switch {
	case math.IsNaN(a):
		return false
	case math.IsNaN(b):
		return true
	default:
		return a < b
	}
}

// vecMinMax keeps typed extrema for the int64/float64/string classes and
// boxes once per group at flush; other child types fold boxed values with
// the interpreter's own comparison.
type vecMinMax struct {
	child VecEval
	cls   int
	isMax bool
	t     types.DataType
	has   []bool
	vi    []int64
	vf    []float64
	vs    []string
	va    []any // classNone fallback state
}

func (a *vecMinMax) Update(b *VecBatch, sel []int32, gidx []int32, n int) {
	a.has = growBool(a.has, n)
	v := a.child(b, sel)
	m := v.Mask()
	switch a.cls {
	case classI64:
		a.vi = growI64(a.vi, n)
		for k, i := range sel {
			ii := int(i)
			if v.IsNull(ii) {
				continue
			}
			g := gidx[k]
			x := v.I64[ii&m]
			if !a.has[g] || (a.isMax && x > a.vi[g]) || (!a.isMax && x < a.vi[g]) {
				a.vi[g] = x
			}
			a.has[g] = true
		}
	case classF64:
		a.vf = growF64(a.vf, n)
		for k, i := range sel {
			ii := int(i)
			if v.IsNull(ii) {
				continue
			}
			g := gidx[k]
			x := v.F64[ii&m]
			if !a.has[g] || (a.isMax && f64Less(a.vf[g], x)) || (!a.isMax && f64Less(x, a.vf[g])) {
				a.vf[g] = x
			}
			a.has[g] = true
		}
	case classStr:
		for len(a.vs) < n {
			a.vs = append(a.vs, "")
		}
		for k, i := range sel {
			ii := int(i)
			if v.IsNull(ii) {
				continue
			}
			g := gidx[k]
			x := v.Str[ii&m]
			if !a.has[g] || (a.isMax && x > a.vs[g]) || (!a.isMax && x < a.vs[g]) {
				a.vs[g] = x
			}
			a.has[g] = true
		}
	default:
		a.va = growAny(a.va, n)
		mm := MinMax{IsMax: a.isMax}
		for k, i := range sel {
			val := v.Get(int(i))
			if val == nil {
				continue
			}
			g := gidx[k]
			a.va[g] = mm.pick(a.va[g], val)
			a.has[g] = true
		}
	}
}

func (a *vecMinMax) Buffer(g int) any {
	if !a.has[g] {
		return &minmaxBuffer{}
	}
	switch a.cls {
	case classI64:
		if a.t.Equals(types.Int) || a.t.Equals(types.Date) {
			return &minmaxBuffer{v: int32(a.vi[g])}
		}
		return &minmaxBuffer{v: a.vi[g]}
	case classF64:
		return &minmaxBuffer{v: a.vf[g]}
	case classStr:
		return &minmaxBuffer{v: a.vs[g]}
	default:
		return &minmaxBuffer{v: a.va[g]}
	}
}

// vecFirst boxes at most once per group: the first non-NULL child value in
// batch order, matching the scalar First exactly.
type vecFirst struct {
	child VecEval
	vals  []any
}

func (a *vecFirst) Update(b *VecBatch, sel []int32, gidx []int32, n int) {
	a.vals = growAny(a.vals, n)
	v := a.child(b, sel)
	for k, i := range sel {
		g := gidx[k]
		if a.vals[g] != nil {
			continue
		}
		ii := int(i)
		if !v.IsNull(ii) {
			a.vals[g] = v.Get(ii)
		}
	}
}
func (a *vecFirst) Buffer(g int) any { return &firstBuffer{v: a.vals[g]} }

// vecDistinct mirrors CountDistinct's per-group key sets (values box to
// compute the injective GroupKey encoding, exactly as the scalar path does).
type vecDistinct struct {
	child VecEval
	sets  []map[string]struct{}
}

var ord0 = []int{0}

func (a *vecDistinct) Update(b *VecBatch, sel []int32, gidx []int32, n int) {
	for len(a.sets) < n {
		a.sets = append(a.sets, map[string]struct{}{})
	}
	v := a.child(b, sel)
	for k, i := range sel {
		ii := int(i)
		if v.IsNull(ii) {
			continue
		}
		a.sets[gidx[k]][row.GroupKey(row.New(v.Get(ii)), ord0)] = struct{}{}
	}
}
func (a *vecDistinct) Buffer(g int) any { return &distinctBuffer{seen: a.sets[g]} }

// vecRowAgg is the escape hatch for aggregate types this file does not
// know: it boxes each selected row into a reused scratch and runs the
// scalar Update — correct for any AggregateFunc, never fast.
type vecRowAgg struct {
	fn      AggregateFunc
	bufs    []any
	scratch row.Row
}

func (a *vecRowAgg) Update(b *VecBatch, sel []int32, gidx []int32, n int) {
	for len(a.bufs) < n {
		a.bufs = append(a.bufs, a.fn.NewBuffer())
	}
	if len(a.scratch) != len(b.Cols) {
		a.scratch = make(row.Row, len(b.Cols))
	}
	for k, i := range sel {
		g := gidx[k]
		a.bufs[g] = a.fn.Update(a.bufs[g], b.RowInto(int(i), a.scratch))
	}
}
func (a *vecRowAgg) Buffer(g int) any { return a.bufs[g] }
