package expr

import (
	"fmt"

	"repro/internal/row"
	"repro/internal/types"
)

// ArithOp identifies a binary arithmetic operator.
type ArithOp int

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return "?"
}

// BinaryArith is +, -, *, / or % over two numeric operands. The analyzer's
// type-coercion rules guarantee both operands share a type before
// evaluation. NULL propagates: if either side is NULL the result is NULL;
// division and modulo by zero also yield NULL (Spark SQL non-ANSI
// semantics).
type BinaryArith struct {
	Op          ArithOp
	Left, Right Expression
}

// Add builds left + right.
func Add(left, right Expression) *BinaryArith {
	return &BinaryArith{Op: OpAdd, Left: left, Right: right}
}

// Sub builds left - right.
func Sub(left, right Expression) *BinaryArith {
	return &BinaryArith{Op: OpSub, Left: left, Right: right}
}

// Mul builds left * right.
func Mul(left, right Expression) *BinaryArith {
	return &BinaryArith{Op: OpMul, Left: left, Right: right}
}

// Div builds left / right.
func Div(left, right Expression) *BinaryArith {
	return &BinaryArith{Op: OpDiv, Left: left, Right: right}
}

// Mod builds left % right.
func Mod(left, right Expression) *BinaryArith {
	return &BinaryArith{Op: OpMod, Left: left, Right: right}
}

func (b *BinaryArith) Children() []Expression { return []Expression{b.Left, b.Right} }
func (b *BinaryArith) WithNewChildren(children []Expression) Expression {
	return &BinaryArith{Op: b.Op, Left: children[0], Right: children[1]}
}
func (b *BinaryArith) DataType() types.DataType { return b.Left.DataType() }
func (b *BinaryArith) Nullable() bool {
	// Division/modulo can produce NULL on zero divisors.
	return anyNullable(b.Left, b.Right) || b.Op == OpDiv || b.Op == OpMod
}
func (b *BinaryArith) Resolved() bool {
	if !childrenResolved(b) {
		return false
	}
	return types.IsNumeric(b.Left.DataType()) && b.Left.DataType().Equals(b.Right.DataType())
}
func (b *BinaryArith) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}

func (b *BinaryArith) Eval(r row.Row) any {
	l := b.Left.Eval(r)
	if l == nil {
		return nil
	}
	rt := b.Right.Eval(r)
	if rt == nil {
		return nil
	}
	return arith(b.Op, l, rt)
}

// arith applies op to two same-typed numeric values.
func arith(op ArithOp, l, r any) any {
	switch x := l.(type) {
	case int32:
		return intArith(op, int64(x), int64(r.(int32)), func(v int64) any { return int32(v) })
	case int64:
		return intArith(op, x, r.(int64), func(v int64) any { return v })
	case float32:
		return float32(floatArith(op, float64(x), float64(r.(float32))))
	case float64:
		return floatArith(op, x, r.(float64))
	case types.Decimal:
		return decArith(op, x, r.(types.Decimal))
	default:
		panic(fmt.Sprintf("expr: arithmetic on non-numeric value %T", l))
	}
}

func intArith(op ArithOp, a, b int64, wrap func(int64) any) any {
	switch op {
	case OpAdd:
		return wrap(a + b)
	case OpSub:
		return wrap(a - b)
	case OpMul:
		return wrap(a * b)
	case OpDiv:
		if b == 0 {
			return nil
		}
		return wrap(a / b)
	case OpMod:
		if b == 0 {
			return nil
		}
		return wrap(a % b)
	}
	panic("expr: unknown arithmetic op")
}

func floatArith(op ArithOp, a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	case OpMod:
		return float64(int64(a) % int64(b))
	}
	panic("expr: unknown arithmetic op")
}

func decArith(op ArithOp, a, b types.Decimal) any {
	switch op {
	case OpAdd:
		return a.Add(b)
	case OpSub:
		return a.Sub(b)
	case OpMul:
		return a.Mul(b)
	case OpDiv:
		if b.IsZero() {
			return nil
		}
		return a.Div(b)
	case OpMod:
		panic("expr: modulo is not defined on DECIMAL")
	}
	panic("expr: unknown arithmetic op")
}

// Negate is unary minus.
type Negate struct {
	Child Expression
}

func (n *Negate) Children() []Expression { return []Expression{n.Child} }
func (n *Negate) WithNewChildren(children []Expression) Expression {
	return &Negate{Child: children[0]}
}
func (n *Negate) DataType() types.DataType { return n.Child.DataType() }
func (n *Negate) Nullable() bool           { return n.Child.Nullable() }
func (n *Negate) Resolved() bool {
	return childrenResolved(n) && types.IsNumeric(n.Child.DataType())
}
func (n *Negate) String() string { return fmt.Sprintf("(-%s)", n.Child) }
func (n *Negate) Eval(r row.Row) any {
	v := n.Child.Eval(r)
	if v == nil {
		return nil
	}
	switch x := v.(type) {
	case int32:
		return -x
	case int64:
		return -x
	case float32:
		return -x
	case float64:
		return -x
	case types.Decimal:
		return types.Decimal{Unscaled: -x.Unscaled, Scale: x.Scale}
	}
	panic(fmt.Sprintf("expr: negate on non-numeric value %T", v))
}

// Abs is the absolute-value function.
type Abs struct {
	Child Expression
}

func (a *Abs) Children() []Expression { return []Expression{a.Child} }
func (a *Abs) WithNewChildren(children []Expression) Expression {
	return &Abs{Child: children[0]}
}
func (a *Abs) DataType() types.DataType { return a.Child.DataType() }
func (a *Abs) Nullable() bool           { return a.Child.Nullable() }
func (a *Abs) Resolved() bool {
	return childrenResolved(a) && types.IsNumeric(a.Child.DataType())
}
func (a *Abs) String() string { return fmt.Sprintf("abs(%s)", a.Child) }
func (a *Abs) Eval(r row.Row) any {
	v := a.Child.Eval(r)
	if v == nil {
		return nil
	}
	switch x := v.(type) {
	case int32:
		if x < 0 {
			return -x
		}
		return x
	case int64:
		if x < 0 {
			return -x
		}
		return x
	case float32:
		if x < 0 {
			return -x
		}
		return x
	case float64:
		if x < 0 {
			return -x
		}
		return x
	case types.Decimal:
		if x.Unscaled < 0 {
			return types.Decimal{Unscaled: -x.Unscaled, Scale: x.Scale}
		}
		return x
	}
	panic(fmt.Sprintf("expr: abs on non-numeric value %T", v))
}
