package expr

import (
	"math"
	"strings"

	"repro/internal/row"
	"repro/internal/types"
)

// This file is the reproduction's stand-in for Catalyst's quasiquote-based
// code generation (paper §4.3.4). Scala Catalyst transforms an expression
// tree into a Scala AST, compiles it to JVM bytecode and runs it, removing
// the per-row tree walk with its branches and virtual calls. Go has no
// runtime compiler, so Compile instead walks the tree ONCE and fuses it
// into nested closures: per row, evaluation is a chain of direct calls with
// no type dispatch on the tree. Exactly like the paper's design, compiled
// evaluation composes with interpretation — any node the compiler does not
// know falls back to a closure that calls the interpreter for that subtree
// ("the Scala code we compile can directly call into our expression
// interpreter").

// Evaluator is a compiled row evaluator.
type Evaluator func(r row.Row) any

// Predicate is a compiled boolean filter; SQL NULL counts as not matching.
type Predicate func(r row.Row) bool

// Compile fuses a bound expression tree into a single closure. The
// expression must contain no AttributeReferences (Bind first).
func Compile(e Expression) Evaluator {
	switch x := e.(type) {
	case *Literal:
		v := x.Value
		return func(row.Row) any { return v }

	case *BoundReference:
		i := x.Ordinal
		return func(r row.Row) any { return r[i] }

	case *Alias:
		return Compile(x.Child)

	case *SortOrder:
		return Compile(x.Child)

	case *BinaryArith:
		return compileArith(x)

	case *Negate:
		c := Compile(x.Child)
		return func(r row.Row) any {
			v := c(r)
			if v == nil {
				return nil
			}
			return arith(OpSub, zeroOf(v), v)
		}

	case *Comparison:
		return compileComparison(x)

	case *And:
		l, r := Compile(x.Left), Compile(x.Right)
		return func(in row.Row) any {
			lv := l(in)
			if lv == false {
				return false
			}
			rv := r(in)
			if rv == false {
				return false
			}
			if lv == nil || rv == nil {
				return nil
			}
			return true
		}

	case *Or:
		l, r := Compile(x.Left), Compile(x.Right)
		return func(in row.Row) any {
			lv := l(in)
			if lv == true {
				return true
			}
			rv := r(in)
			if rv == true {
				return true
			}
			if lv == nil || rv == nil {
				return nil
			}
			return false
		}

	case *Not:
		c := Compile(x.Child)
		return func(r row.Row) any {
			v := c(r)
			if v == nil {
				return nil
			}
			return !v.(bool)
		}

	case *IsNull:
		c := Compile(x.Child)
		return func(r row.Row) any { return c(r) == nil }

	case *IsNotNull:
		c := Compile(x.Child)
		return func(r row.Row) any { return c(r) != nil }

	case *StringMatch:
		return compileStringMatch(x)

	case *Like:
		l, p := Compile(x.Left), Compile(x.Pattern)
		return func(r row.Row) any {
			lv := l(r)
			if lv == nil {
				return nil
			}
			pv := p(r)
			if pv == nil {
				return nil
			}
			return LikeMatch(lv.(string), pv.(string))
		}

	case *Cast:
		c := Compile(x.Child)
		to := x.To
		return func(r row.Row) any {
			v := c(r)
			if v == nil {
				return nil
			}
			return CastValue(v, to)
		}

	case *Substring:
		return compileViaInterp(x) // three-child; interpreter path is fine

	case *In:
		return compileIn(x)

	case *ScalarUDF:
		args := make([]Evaluator, len(x.Args))
		for i, a := range x.Args {
			args[i] = Compile(a)
		}
		fn := x.Fn
		return func(r row.Row) any {
			vals := make([]any, len(args))
			for i, a := range args {
				vals[i] = a(r)
			}
			return fn(vals)
		}

	case *GetField:
		st, _ := x.Child.DataType().(types.StructType)
		idx := st.FieldIndex(x.FieldName)
		c := Compile(x.Child)
		return func(r row.Row) any {
			v := c(r)
			if v == nil {
				return nil
			}
			return v.(row.Row)[idx]
		}

	case *CaseWhen:
		branches := x.Branches()
		conds := make([]Evaluator, len(branches))
		vals := make([]Evaluator, len(branches))
		for i, b := range branches {
			conds[i] = Compile(b[0])
			vals[i] = Compile(b[1])
		}
		var elseEval Evaluator
		if e := x.ElseValue(); e != nil {
			elseEval = Compile(e)
		}
		return func(r row.Row) any {
			for i := range conds {
				if conds[i](r) == true {
					return vals[i](r)
				}
			}
			if elseEval != nil {
				return elseEval(r)
			}
			return nil
		}

	case *Coalesce:
		args := make([]Evaluator, len(x.Args))
		for i, a := range x.Args {
			args[i] = Compile(a)
		}
		return func(r row.Row) any {
			for _, a := range args {
				if v := a(r); v != nil {
					return v
				}
			}
			return nil
		}

	default:
		// Fall back to interpreted evaluation for this subtree, mirroring
		// the paper's combination of generated and interpreted code.
		return compileViaInterp(e)
	}
}

func compileViaInterp(e Expression) Evaluator {
	return func(r row.Row) any { return e.Eval(r) }
}

func zeroOf(v any) any {
	switch v.(type) {
	case int32:
		return int32(0)
	case int64:
		return int64(0)
	case float32:
		return float32(0)
	case float64:
		return float64(0)
	case types.Decimal:
		return types.Decimal{}
	}
	return nil
}

// compileArith specializes on the statically known operand type so the
// per-row path has no type switch — the analogue of generating typed
// bytecode for `a + b`.
func compileArith(x *BinaryArith) Evaluator {
	l, r := Compile(x.Left), Compile(x.Right)
	op := x.Op
	switch {
	case x.Left.DataType().Equals(types.Long):
		return func(in row.Row) any {
			lv := l(in)
			if lv == nil {
				return nil
			}
			rv := r(in)
			if rv == nil {
				return nil
			}
			return intArith(op, lv.(int64), rv.(int64), func(v int64) any { return v })
		}
	case x.Left.DataType().Equals(types.Int):
		return func(in row.Row) any {
			lv := l(in)
			if lv == nil {
				return nil
			}
			rv := r(in)
			if rv == nil {
				return nil
			}
			return intArith(op, int64(lv.(int32)), int64(rv.(int32)), func(v int64) any { return int32(v) })
		}
	case x.Left.DataType().Equals(types.Double):
		switch op {
		case OpAdd:
			return func(in row.Row) any {
				lv := l(in)
				if lv == nil {
					return nil
				}
				rv := r(in)
				if rv == nil {
					return nil
				}
				return lv.(float64) + rv.(float64)
			}
		case OpMul:
			return func(in row.Row) any {
				lv := l(in)
				if lv == nil {
					return nil
				}
				rv := r(in)
				if rv == nil {
					return nil
				}
				return lv.(float64) * rv.(float64)
			}
		default:
			return func(in row.Row) any {
				lv := l(in)
				if lv == nil {
					return nil
				}
				rv := r(in)
				if rv == nil {
					return nil
				}
				return floatArith(op, lv.(float64), rv.(float64))
			}
		}
	default:
		return func(in row.Row) any {
			lv := l(in)
			if lv == nil {
				return nil
			}
			rv := r(in)
			if rv == nil {
				return nil
			}
			return arith(op, lv, rv)
		}
	}
}

// compileComparison specializes equality/order tests on the operand type.
func compileComparison(x *Comparison) Evaluator {
	l, r := Compile(x.Left), Compile(x.Right)
	op := x.Op
	t := x.Left.DataType()
	switch {
	case t.Equals(types.Int):
		return func(in row.Row) any {
			lv := l(in)
			if lv == nil {
				return nil
			}
			rv := r(in)
			if rv == nil {
				return nil
			}
			return cmpResult(op, int64(lv.(int32)), int64(rv.(int32)))
		}
	case t.Equals(types.Long):
		return func(in row.Row) any {
			lv := l(in)
			if lv == nil {
				return nil
			}
			rv := r(in)
			if rv == nil {
				return nil
			}
			return cmpResult(op, lv.(int64), rv.(int64))
		}
	case t.Equals(types.Double):
		return func(in row.Row) any {
			lv := l(in)
			if lv == nil {
				return nil
			}
			rv := r(in)
			if rv == nil {
				return nil
			}
			return cmpFloat(op, lv.(float64), rv.(float64))
		}
	case t.Equals(types.String):
		return func(in row.Row) any {
			lv := l(in)
			if lv == nil {
				return nil
			}
			rv := r(in)
			if rv == nil {
				return nil
			}
			return cmpString(op, lv.(string), rv.(string))
		}
	default:
		return func(in row.Row) any {
			lv := l(in)
			if lv == nil {
				return nil
			}
			rv := r(in)
			if rv == nil {
				return nil
			}
			return compare(op, lv, rv)
		}
	}
}

func cmpResult(op CmpOp, a, b int64) bool {
	switch op {
	case OpEQ:
		return a == b
	case OpNEQ:
		return a != b
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	default:
		return a >= b
	}
}

// cmpFloat matches the interpreter's Spark-style NaN semantics: NaN equals
// NaN and sorts greater than every other value.
func cmpFloat(op CmpOp, a, b float64) bool {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	if an || bn {
		var c int
		switch {
		case an && bn:
			c = 0
		case an:
			c = 1
		default:
			c = -1
		}
		switch op {
		case OpEQ:
			return c == 0
		case OpNEQ:
			return c != 0
		case OpLT:
			return c < 0
		case OpLE:
			return c <= 0
		case OpGT:
			return c > 0
		default:
			return c >= 0
		}
	}
	switch op {
	case OpEQ:
		return a == b
	case OpNEQ:
		return a != b
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	default:
		return a >= b
	}
}

func cmpString(op CmpOp, a, b string) bool {
	switch op {
	case OpEQ:
		return a == b
	case OpNEQ:
		return a != b
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	default:
		return a >= b
	}
}

func compileStringMatch(x *StringMatch) Evaluator {
	l, r := Compile(x.Left), Compile(x.Right)
	kind := x.Kind
	return func(in row.Row) any {
		lv := l(in)
		if lv == nil {
			return nil
		}
		rv := r(in)
		if rv == nil {
			return nil
		}
		s, sub := lv.(string), rv.(string)
		switch kind {
		case matchStartsWith:
			return strings.HasPrefix(s, sub)
		case matchEndsWith:
			return strings.HasSuffix(s, sub)
		default:
			return strings.Contains(s, sub)
		}
	}
}

func compileIn(x *In) Evaluator {
	v := Compile(x.Value)
	// Constant IN lists compile to a hash-set membership test.
	allConst := true
	set := make(map[string]struct{}, len(x.List))
	for _, e := range x.List {
		lit, ok := e.(*Literal)
		if !ok || lit.Value == nil {
			allConst = false
			break
		}
		set[row.GroupKey(row.New(lit.Value), []int{0})] = struct{}{}
	}
	if allConst {
		return func(r row.Row) any {
			val := v(r)
			if val == nil {
				return nil
			}
			_, ok := set[row.GroupKey(row.New(val), []int{0})]
			return ok
		}
	}
	list := make([]Evaluator, len(x.List))
	for i, e := range x.List {
		list[i] = Compile(e)
	}
	return func(r row.Row) any {
		val := v(r)
		if val == nil {
			return nil
		}
		sawNull := false
		for _, e := range list {
			ev := e(r)
			if ev == nil {
				sawNull = true
				continue
			}
			if row.Equal(val, ev) {
				return true
			}
		}
		if sawNull {
			return nil
		}
		return false
	}
}

// CompilePredicate compiles a boolean expression into a filter where NULL
// is treated as false (WHERE semantics).
func CompilePredicate(e Expression) Predicate {
	ev := Compile(e)
	return func(r row.Row) bool { return ev(r) == true }
}

// CompileLong compiles an expression over non-null BIGINT inputs into an
// unboxed closure. This is the fully specialized path used by the Figure 4
// benchmark: like generated bytecode, it avoids boxing entirely. It
// supports literals, bound references and arithmetic; other nodes are
// rejected.
func CompileLong(e Expression) (func(r []int64) int64, bool) {
	switch x := e.(type) {
	case *Literal:
		if v, ok := x.Value.(int64); ok {
			return func([]int64) int64 { return v }, true
		}
		if v, ok := x.Value.(int32); ok {
			v64 := int64(v)
			return func([]int64) int64 { return v64 }, true
		}
	case *BoundReference:
		i := x.Ordinal
		return func(r []int64) int64 { return r[i] }, true
	case *Alias:
		return CompileLong(x.Child)
	case *BinaryArith:
		l, okL := CompileLong(x.Left)
		r, okR := CompileLong(x.Right)
		if !okL || !okR {
			return nil, false
		}
		switch x.Op {
		case OpAdd:
			return func(in []int64) int64 { return l(in) + r(in) }, true
		case OpSub:
			return func(in []int64) int64 { return l(in) - r(in) }, true
		case OpMul:
			return func(in []int64) int64 { return l(in) * r(in) }, true
		}
	}
	return nil, false
}
