package expr

import (
	"repro/internal/catalyst"
)

// This file specializes the catalyst tree machinery to expressions and adds
// attribute bookkeeping helpers used by the analyzer and optimizer.

// TransformUp rewrites the expression bottom-up with the partial function f.
func TransformUp(e Expression, f catalyst.PartialFunc[Expression]) Expression {
	return catalyst.TransformUp(e, f)
}

// TransformDown rewrites the expression top-down.
func TransformDown(e Expression, f catalyst.PartialFunc[Expression]) Expression {
	return catalyst.TransformDown(e, f)
}

// AttributeSet is a set of attribute IDs.
type AttributeSet map[ID]struct{}

// NewAttributeSet builds a set from attributes.
func NewAttributeSet(attrs ...*AttributeReference) AttributeSet {
	s := make(AttributeSet, len(attrs))
	for _, a := range attrs {
		s[a.ID_] = struct{}{}
	}
	return s
}

// Add inserts an ID.
func (s AttributeSet) Add(id ID) { s[id] = struct{}{} }

// Contains reports membership.
func (s AttributeSet) Contains(id ID) bool {
	_, ok := s[id]
	return ok
}

// ContainsAll reports whether every ID in other is in s.
func (s AttributeSet) ContainsAll(other AttributeSet) bool {
	for id := range other {
		if !s.Contains(id) {
			return false
		}
	}
	return true
}

// Union returns a new set with the contents of both.
func (s AttributeSet) Union(other AttributeSet) AttributeSet {
	out := make(AttributeSet, len(s)+len(other))
	for id := range s {
		out.Add(id)
	}
	for id := range other {
		out.Add(id)
	}
	return out
}

// References collects the set of attribute IDs an expression references.
func References(e Expression) AttributeSet {
	s := make(AttributeSet)
	collectRefs(e, s)
	return s
}

func collectRefs(e Expression, s AttributeSet) {
	if a, ok := e.(*AttributeReference); ok {
		s.Add(a.ID_)
		return
	}
	for _, c := range e.Children() {
		collectRefs(c, s)
	}
}

// ReferencesAll collects references across several expressions.
func ReferencesAll(exprs []Expression) AttributeSet {
	s := make(AttributeSet)
	for _, e := range exprs {
		collectRefs(e, s)
	}
	return s
}

// Attributes collects the distinct AttributeReferences in an expression, in
// first-appearance order.
func Attributes(e Expression) []*AttributeReference {
	var out []*AttributeReference
	seen := make(AttributeSet)
	var walk func(Expression)
	walk = func(x Expression) {
		if a, ok := x.(*AttributeReference); ok {
			if !seen.Contains(a.ID_) {
				seen.Add(a.ID_)
				out = append(out, a)
			}
			return
		}
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(e)
	return out
}

// IsDeterministic reports whether e always produces the same output for the
// same input (UDFs are assumed deterministic in this reproduction; rand-like
// builtins would return false here). Pushdown rules only move deterministic
// predicates.
func IsDeterministic(e Expression) bool {
	return true
}

// SplitConjuncts flattens a tree of ANDs into its conjunct list — the
// working form for predicate pushdown.
func SplitConjuncts(e Expression) []Expression {
	if and, ok := e.(*And); ok {
		return append(SplitConjuncts(and.Left), SplitConjuncts(and.Right)...)
	}
	return []Expression{e}
}

// JoinConjuncts rebuilds a conjunction from a list; it returns nil for an
// empty list.
func JoinConjuncts(conjuncts []Expression) Expression {
	if len(conjuncts) == 0 {
		return nil
	}
	out := conjuncts[0]
	for _, c := range conjuncts[1:] {
		out = &And{Left: out, Right: c}
	}
	return out
}

// Equivalent reports whether two expressions render identically — the cheap
// structural-equality test used by rules (attribute IDs make it precise).
func Equivalent(a, b Expression) bool {
	return a.String() == b.String()
}
