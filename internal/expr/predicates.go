package expr

import (
	"fmt"
	"strings"

	"repro/internal/row"
	"repro/internal/types"
)

// CmpOp identifies a comparison operator.
type CmpOp int

const (
	OpEQ CmpOp = iota
	OpNEQ
	OpLT
	OpLE
	OpGT
	OpGE
)

func (op CmpOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNEQ:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	}
	return "?"
}

// Comparison compares two same-typed operands with SQL three-valued logic:
// NULL operands produce NULL.
type Comparison struct {
	Op          CmpOp
	Left, Right Expression
}

// EQ builds left = right.
func EQ(l, r Expression) *Comparison { return &Comparison{Op: OpEQ, Left: l, Right: r} }

// NEQ builds left != right.
func NEQ(l, r Expression) *Comparison { return &Comparison{Op: OpNEQ, Left: l, Right: r} }

// LT builds left < right.
func LT(l, r Expression) *Comparison { return &Comparison{Op: OpLT, Left: l, Right: r} }

// LE builds left <= right.
func LE(l, r Expression) *Comparison { return &Comparison{Op: OpLE, Left: l, Right: r} }

// GT builds left > right.
func GT(l, r Expression) *Comparison { return &Comparison{Op: OpGT, Left: l, Right: r} }

// GE builds left >= right.
func GE(l, r Expression) *Comparison { return &Comparison{Op: OpGE, Left: l, Right: r} }

func (c *Comparison) Children() []Expression { return []Expression{c.Left, c.Right} }
func (c *Comparison) WithNewChildren(children []Expression) Expression {
	return &Comparison{Op: c.Op, Left: children[0], Right: children[1]}
}
func (c *Comparison) DataType() types.DataType { return types.Boolean }
func (c *Comparison) Nullable() bool           { return anyNullable(c.Left, c.Right) }
func (c *Comparison) Resolved() bool {
	return childrenResolved(c) && c.Left.DataType().Equals(c.Right.DataType())
}
func (c *Comparison) String() string {
	return fmt.Sprintf("(%s %s %s)", c.Left, c.Op, c.Right)
}
func (c *Comparison) Eval(r row.Row) any {
	l := c.Left.Eval(r)
	if l == nil {
		return nil
	}
	rv := c.Right.Eval(r)
	if rv == nil {
		return nil
	}
	return compare(c.Op, l, rv)
}

func compare(op CmpOp, l, r any) bool {
	switch op {
	case OpEQ:
		return row.Equal(l, r)
	case OpNEQ:
		return !row.Equal(l, r)
	case OpLT:
		return row.Compare(l, r) < 0
	case OpLE:
		return row.Compare(l, r) <= 0
	case OpGT:
		return row.Compare(l, r) > 0
	case OpGE:
		return row.Compare(l, r) >= 0
	}
	panic("expr: unknown comparison op")
}

// And is SQL conjunction with three-valued logic: false && NULL = false.
type And struct {
	Left, Right Expression
}

func (a *And) Children() []Expression { return []Expression{a.Left, a.Right} }
func (a *And) WithNewChildren(children []Expression) Expression {
	return &And{Left: children[0], Right: children[1]}
}
func (a *And) DataType() types.DataType { return types.Boolean }
func (a *And) Nullable() bool           { return anyNullable(a.Left, a.Right) }
func (a *And) Resolved() bool {
	return childrenResolved(a) && a.Left.DataType().Equals(types.Boolean) &&
		a.Right.DataType().Equals(types.Boolean)
}
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.Left, a.Right) }
func (a *And) Eval(r row.Row) any {
	l := a.Left.Eval(r)
	if l == false {
		return false
	}
	rv := a.Right.Eval(r)
	if rv == false {
		return false
	}
	if l == nil || rv == nil {
		return nil
	}
	return true
}

// Or is SQL disjunction with three-valued logic: true || NULL = true.
type Or struct {
	Left, Right Expression
}

func (o *Or) Children() []Expression { return []Expression{o.Left, o.Right} }
func (o *Or) WithNewChildren(children []Expression) Expression {
	return &Or{Left: children[0], Right: children[1]}
}
func (o *Or) DataType() types.DataType { return types.Boolean }
func (o *Or) Nullable() bool           { return anyNullable(o.Left, o.Right) }
func (o *Or) Resolved() bool {
	return childrenResolved(o) && o.Left.DataType().Equals(types.Boolean) &&
		o.Right.DataType().Equals(types.Boolean)
}
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.Left, o.Right) }
func (o *Or) Eval(r row.Row) any {
	l := o.Left.Eval(r)
	if l == true {
		return true
	}
	rv := o.Right.Eval(r)
	if rv == true {
		return true
	}
	if l == nil || rv == nil {
		return nil
	}
	return false
}

// Not is SQL negation; NOT NULL = NULL.
type Not struct {
	Child Expression
}

func (n *Not) Children() []Expression { return []Expression{n.Child} }
func (n *Not) WithNewChildren(children []Expression) Expression {
	return &Not{Child: children[0]}
}
func (n *Not) DataType() types.DataType { return types.Boolean }
func (n *Not) Nullable() bool           { return n.Child.Nullable() }
func (n *Not) Resolved() bool {
	return childrenResolved(n) && n.Child.DataType().Equals(types.Boolean)
}
func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.Child) }
func (n *Not) Eval(r row.Row) any {
	v := n.Child.Eval(r)
	if v == nil {
		return nil
	}
	return !v.(bool)
}

// IsNull tests for SQL NULL; never returns NULL itself.
type IsNull struct {
	Child Expression
}

func (i *IsNull) Children() []Expression { return []Expression{i.Child} }
func (i *IsNull) WithNewChildren(children []Expression) Expression {
	return &IsNull{Child: children[0]}
}
func (i *IsNull) DataType() types.DataType { return types.Boolean }
func (i *IsNull) Nullable() bool           { return false }
func (i *IsNull) Resolved() bool           { return childrenResolved(i) }
func (i *IsNull) String() string           { return fmt.Sprintf("(%s IS NULL)", i.Child) }
func (i *IsNull) Eval(r row.Row) any       { return i.Child.Eval(r) == nil }

// IsNotNull tests for non-NULL.
type IsNotNull struct {
	Child Expression
}

func (i *IsNotNull) Children() []Expression { return []Expression{i.Child} }
func (i *IsNotNull) WithNewChildren(children []Expression) Expression {
	return &IsNotNull{Child: children[0]}
}
func (i *IsNotNull) DataType() types.DataType { return types.Boolean }
func (i *IsNotNull) Nullable() bool           { return false }
func (i *IsNotNull) Resolved() bool           { return childrenResolved(i) }
func (i *IsNotNull) String() string           { return fmt.Sprintf("(%s IS NOT NULL)", i.Child) }
func (i *IsNotNull) Eval(r row.Row) any       { return i.Child.Eval(r) != nil }

// In tests membership of Value in List, with SQL NULL semantics: NULL value
// yields NULL; a non-matching list containing NULL yields NULL.
type In struct {
	Value Expression
	List  []Expression
}

func (in *In) Children() []Expression {
	cs := make([]Expression, 0, len(in.List)+1)
	cs = append(cs, in.Value)
	return append(cs, in.List...)
}
func (in *In) WithNewChildren(children []Expression) Expression {
	return &In{Value: children[0], List: children[1:]}
}
func (in *In) DataType() types.DataType { return types.Boolean }
func (in *In) Nullable() bool           { return true }
func (in *In) Resolved() bool {
	if !childrenResolved(in) {
		return false
	}
	for _, e := range in.List {
		if !e.DataType().Equals(in.Value.DataType()) {
			return false
		}
	}
	return true
}
func (in *In) String() string {
	items := make([]string, len(in.List))
	for i, e := range in.List {
		items[i] = e.String()
	}
	return fmt.Sprintf("(%s IN (%s))", in.Value, strings.Join(items, ", "))
}
func (in *In) Eval(r row.Row) any {
	v := in.Value.Eval(r)
	if v == nil {
		return nil
	}
	sawNull := false
	for _, e := range in.List {
		ev := e.Eval(r)
		if ev == nil {
			sawNull = true
			continue
		}
		if row.Equal(v, ev) {
			return true
		}
	}
	if sawNull {
		return nil
	}
	return false
}
