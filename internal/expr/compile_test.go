package expr

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/row"
	"repro/internal/types"
)

// randomExpr builds a random boolean- or value-typed expression over the
// schema (a INT nullable, b BIGINT nullable, s STRING nullable, d DOUBLE).
// Used by the compile-vs-interpret equivalence property.
func randomExpr(rng *rand.Rand, depth int, want types.DataType) Expression {
	a := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	b := &BoundReference{Ordinal: 1, Type: types.Long, Null: true}
	s := &BoundReference{Ordinal: 2, Type: types.String, Null: true}
	d := &BoundReference{Ordinal: 3, Type: types.Double, Null: false}

	leaf := func(t types.DataType) Expression {
		switch {
		case t.Equals(types.Int):
			if rng.Intn(2) == 0 {
				return a
			}
			return Lit(int32(rng.Intn(20) - 10))
		case t.Equals(types.Long):
			if rng.Intn(2) == 0 {
				return b
			}
			return Lit(int64(rng.Intn(20) - 10))
		case t.Equals(types.Double):
			if rng.Intn(2) == 0 {
				return d
			}
			return Lit(float64(rng.Intn(10)))
		case t.Equals(types.String):
			if rng.Intn(2) == 0 {
				return s
			}
			return Lit([]string{"foo", "bar", "spark", ""}[rng.Intn(4)])
		default: // boolean leaf
			return Lit(rng.Intn(2) == 0)
		}
	}
	if depth <= 0 {
		return leaf(want)
	}
	sub := func(t types.DataType) Expression { return randomExpr(rng, depth-1, t) }
	switch {
	case want.Equals(types.Boolean):
		switch rng.Intn(8) {
		case 0:
			return &And{sub(types.Boolean), sub(types.Boolean)}
		case 1:
			return &Or{sub(types.Boolean), sub(types.Boolean)}
		case 2:
			return &Not{sub(types.Boolean)}
		case 3:
			t := []types.DataType{types.Int, types.Long, types.Double, types.String}[rng.Intn(4)]
			op := []CmpOp{OpEQ, OpNEQ, OpLT, OpLE, OpGT, OpGE}[rng.Intn(6)]
			return &Comparison{Op: op, Left: sub(t), Right: sub(t)}
		case 4:
			return &IsNull{sub(types.Int)}
		case 5:
			return &IsNotNull{sub(types.String)}
		case 6:
			return &In{Value: sub(types.Int), List: []Expression{Lit(int32(1)), Lit(int32(2)), Lit(int32(3))}}
		default:
			return &StringMatch{Kind: strMatchKind(rng.Intn(3)), Left: sub(types.String), Right: Lit("a")}
		}
	case want.Equals(types.Int), want.Equals(types.Long), want.Equals(types.Double):
		switch rng.Intn(6) {
		case 0, 1:
			op := []ArithOp{OpAdd, OpSub, OpMul}[rng.Intn(3)]
			return &BinaryArith{Op: op, Left: sub(want), Right: sub(want)}
		case 2:
			return &BinaryArith{Op: OpDiv, Left: sub(want), Right: sub(want)}
		case 3:
			return NewCaseWhen([][2]Expression{{sub(types.Boolean), sub(want)}}, sub(want))
		case 4:
			return &Coalesce{Args: []Expression{sub(want), sub(want)}}
		default:
			return leaf(want)
		}
	case want.Equals(types.String):
		switch rng.Intn(4) {
		case 0:
			return &Concat{Args: []Expression{sub(types.String), sub(types.String)}}
		case 1:
			return Upper(sub(types.String))
		case 2:
			return &Substring{Str: sub(types.String), Pos: Lit(1), Len: Lit(2)}
		default:
			return leaf(want)
		}
	}
	return leaf(want)
}

func randomRow(rng *rand.Rand) row.Row {
	r := row.Row{int32(rng.Intn(10) - 5), int64(rng.Intn(10) - 5), "spark", float64(rng.Intn(5))}
	if rng.Intn(4) == 0 {
		r[0] = nil
	}
	if rng.Intn(4) == 0 {
		r[1] = nil
	}
	if rng.Intn(4) == 0 {
		r[2] = nil
	}
	return r
}

// Property: for any expression, compiled evaluation matches interpreted
// evaluation on any row — the correctness contract of §4.3.4's codegen.
func TestCompileMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		want := []types.DataType{types.Boolean, types.Int, types.Long, types.Double, types.String}[rng.Intn(5)]
		e := randomExpr(rng, 4, want)
		compiled := Compile(e)
		for i := 0; i < 5; i++ {
			r := randomRow(rng)
			interp := e.Eval(r)
			gen := compiled(r)
			if !row.Equal(interp, gen) {
				t.Fatalf("trial %d: %s\nrow %v\ninterpreted=%v compiled=%v",
					trial, e, r, interp, gen)
			}
		}
	}
}

// Property: CompilePredicate treats NULL as non-matching (WHERE semantics).
func TestCompilePredicateNullIsFalse(t *testing.T) {
	a := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	pred := CompilePredicate(GT(a, Lit(int32(0))))
	if pred(row.Row{nil}) {
		t.Error("NULL predicate must not match")
	}
	if !pred(row.Row{int32(1)}) || pred(row.Row{int32(-1)}) {
		t.Error("predicate values wrong")
	}
}

func TestCompileLongPaths(t *testing.T) {
	x := &BoundReference{Ordinal: 0, Type: types.Long, Null: false}
	e := Add(Mul(x, Lit(int64(3))), Sub(x, Lit(int64(1))))
	fn, ok := CompileLong(e)
	if !ok {
		t.Fatal("CompileLong should handle +-* over longs")
	}
	if got := fn([]int64{5}); got != 19 {
		t.Errorf("compiled long = %d, want 19", got)
	}
	// Unsupported shapes are rejected, not miscompiled.
	if _, ok := CompileLong(Div(x, Lit(int64(2)))); ok {
		t.Error("division must fall back (NULL semantics need boxing)")
	}
	if _, ok := CompileLong(Upper(Lit("x"))); ok {
		t.Error("strings are not CompileLong-able")
	}
}

// Property: LikeMatch agrees with regexp-based matching for random
// patterns built from literals, % and _.
func TestLikeMatchAgainstRegexp(t *testing.T) {
	f := func(sRaw, pRaw []byte) bool {
		alphabet := "ab%_"
		var sb, pb strings.Builder
		for _, c := range sRaw {
			sb.WriteByte("ab"[int(c)%2])
		}
		for _, c := range pRaw {
			pb.WriteByte(alphabet[int(c)%4])
		}
		s, p := sb.String(), pb.String()
		re := "^" + strings.ReplaceAll(strings.ReplaceAll(regexp.QuoteMeta(p), "%", ".*"), "_", ".") + "$"
		want := regexp.MustCompile(re).MatchString(s)
		return LikeMatch(s, p) == want
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: compiled IN over constant lists matches interpreted IN.
func TestCompileInConstantList(t *testing.T) {
	a := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	in := &In{Value: a, List: []Expression{Lit(int32(1)), Lit(int32(3)), Lit(int32(5))}}
	compiled := Compile(in)
	for _, v := range []any{int32(1), int32(2), int32(5), nil} {
		r := row.Row{v}
		if !row.Equal(compiled(r), in.Eval(r)) {
			t.Errorf("IN mismatch at %v: compiled=%v interp=%v", v, compiled(r), in.Eval(r))
		}
	}
}

// Aggregate buffers: Update-then-Merge must equal aggregating everything in
// one buffer, for any split point (the partial/final contract).
func TestAggregateMergeConsistency(t *testing.T) {
	x := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	aggs := []AggregateFunc{
		&Count{Child: x},
		NewCountStar(),
		&Sum{Child: x},
		&Avg{Child: x},
		NewMin(x),
		NewMax(x),
		&First{Child: x},
	}
	rows := []row.Row{{int32(3)}, {nil}, {int32(-1)}, {int32(7)}, {int32(7)}, {nil}, {int32(0)}}
	for _, agg := range aggs {
		whole := agg.NewBuffer()
		for _, r := range rows {
			whole = agg.Update(whole, r)
		}
		want := agg.Result(whole)
		for split := 0; split <= len(rows); split++ {
			b1, b2 := agg.NewBuffer(), agg.NewBuffer()
			for _, r := range rows[:split] {
				b1 = agg.Update(b1, r)
			}
			for _, r := range rows[split:] {
				b2 = agg.Update(b2, r)
			}
			got := agg.Result(agg.Merge(b1, b2))
			if !row.Equal(got, want) {
				t.Errorf("%s split %d: %v != %v", agg, split, got, want)
			}
		}
	}
}

func TestAggregateEmptyGroups(t *testing.T) {
	x := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	if got := (&Count{Child: x}).Result((&Count{Child: x}).NewBuffer()); got != int64(0) {
		t.Errorf("empty count = %v", got)
	}
	s := &Sum{Child: x}
	if got := s.Result(s.NewBuffer()); got != nil {
		t.Errorf("empty sum = %v, want NULL", got)
	}
	av := &Avg{Child: x}
	if got := av.Result(av.NewBuffer()); got != nil {
		t.Errorf("empty avg = %v, want NULL", got)
	}
}

func TestSumTypeWidening(t *testing.T) {
	intSum := &Sum{Child: &BoundReference{Ordinal: 0, Type: types.Int, Null: true}}
	if !intSum.DataType().Equals(types.Long) {
		t.Error("SUM(INT) widens to BIGINT")
	}
	decSum := &Sum{Child: &BoundReference{Ordinal: 0, Type: types.DecimalType{Precision: 5, Scale: 2}, Null: true}}
	if !decSum.DataType().Equals(types.DecimalType{Precision: 15, Scale: 2}) {
		t.Error("SUM(DECIMAL(5,2)) widens to DECIMAL(15,2)")
	}
	dblSum := &Sum{Child: &BoundReference{Ordinal: 0, Type: types.Double, Null: true}}
	if !dblSum.DataType().Equals(types.Double) {
		t.Error("SUM(DOUBLE) stays DOUBLE")
	}
}

func TestDecimalSumBuffers(t *testing.T) {
	x := &BoundReference{Ordinal: 0, Type: types.DecimalType{Precision: 5, Scale: 2}, Null: true}
	s := &Sum{Child: x}
	buf := s.NewBuffer()
	for _, d := range []types.Decimal{types.NewDecimal(150, 2), types.NewDecimal(250, 2)} {
		buf = s.Update(buf, row.Row{d})
	}
	got := s.Result(buf).(types.Decimal)
	if got.String() != "4.00" {
		t.Errorf("decimal sum = %s", got)
	}
}
