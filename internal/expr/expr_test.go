package expr

import (
	"testing"

	"repro/internal/row"
	"repro/internal/types"
)

func boundInt(ord int) *BoundReference {
	return &BoundReference{Ordinal: ord, Type: types.Int, Null: true}
}

func boundLong(ord int) *BoundReference {
	return &BoundReference{Ordinal: ord, Type: types.Long, Null: true}
}

func boundStr(ord int) *BoundReference {
	return &BoundReference{Ordinal: ord, Type: types.String, Null: true}
}

func TestLiteralInference(t *testing.T) {
	cases := []struct {
		v    any
		want types.DataType
	}{
		{nil, types.Null},
		{true, types.Boolean},
		{7, types.Int},
		{int32(7), types.Int},
		{int64(7), types.Long},
		{2.5, types.Double},
		{"x", types.String},
	}
	for _, c := range cases {
		l := Lit(c.v)
		if !l.DataType().Equals(c.want) {
			t.Errorf("Lit(%v) type = %s, want %s", c.v, l.DataType().Name(), c.want.Name())
		}
		if !l.Resolved() {
			t.Errorf("literals are always resolved")
		}
	}
}

func TestArithmeticEvalAllTypes(t *testing.T) {
	r := row.Row{int32(6), int32(3)}
	cases := []struct {
		e    Expression
		want any
	}{
		{Add(boundInt(0), boundInt(1)), int32(9)},
		{Sub(boundInt(0), boundInt(1)), int32(3)},
		{Mul(boundInt(0), boundInt(1)), int32(18)},
		{Div(boundInt(0), boundInt(1)), int32(2)},
		{Mod(boundInt(0), boundInt(1)), int32(0)},
	}
	for _, c := range cases {
		if got := c.e.Eval(r); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	// Long / double / decimal paths.
	if got := Add(Lit(int64(1)), Lit(int64(2))).Eval(nil); got != int64(3) {
		t.Errorf("long add = %v", got)
	}
	if got := Mul(Lit(1.5), Lit(2.0)).Eval(nil); got != 3.0 {
		t.Errorf("double mul = %v", got)
	}
	d1 := Lit(types.NewDecimal(150, 2))
	d2 := Lit(types.NewDecimal(50, 2))
	if got := Add(d1, d2).Eval(nil).(types.Decimal); got.String() != "2.00" {
		t.Errorf("decimal add = %v", got)
	}
}

func TestArithmeticNullSemantics(t *testing.T) {
	r := row.Row{nil, int32(3)}
	if got := Add(boundInt(0), boundInt(1)).Eval(r); got != nil {
		t.Errorf("NULL + x = %v, want NULL", got)
	}
	// Division / modulo by zero yield NULL.
	zero := row.Row{int32(5), int32(0)}
	if got := Div(boundInt(0), boundInt(1)).Eval(zero); got != nil {
		t.Errorf("x/0 = %v, want NULL", got)
	}
	if got := Mod(boundInt(0), boundInt(1)).Eval(zero); got != nil {
		t.Errorf("x%%0 = %v, want NULL", got)
	}
}

func TestComparisons(t *testing.T) {
	r := row.Row{int32(1), int32(2)}
	cases := []struct {
		e    Expression
		want any
	}{
		{EQ(boundInt(0), boundInt(1)), false},
		{NEQ(boundInt(0), boundInt(1)), true},
		{LT(boundInt(0), boundInt(1)), true},
		{LE(boundInt(0), boundInt(0)), true},
		{GT(boundInt(0), boundInt(1)), false},
		{GE(boundInt(1), boundInt(0)), true},
	}
	for _, c := range cases {
		if got := c.e.Eval(r); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	// NULL comparisons are NULL.
	if got := EQ(boundInt(0), boundInt(1)).Eval(row.Row{nil, int32(2)}); got != nil {
		t.Errorf("NULL = x should be NULL, got %v", got)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tr, fa, nu := Lit(true), Lit(false), &Literal{Value: nil, Type: types.Boolean}
	cases := []struct {
		e    Expression
		want any
	}{
		{&And{tr, tr}, true},
		{&And{tr, fa}, false},
		{&And{fa, nu}, false}, // false AND NULL = false
		{&And{nu, fa}, false},
		{&And{tr, nu}, nil},
		{&Or{fa, fa}, false},
		{&Or{tr, nu}, true}, // true OR NULL = true
		{&Or{nu, tr}, true},
		{&Or{fa, nu}, nil},
		{&Not{tr}, false},
		{&Not{nu}, nil},
	}
	for _, c := range cases {
		got := c.e.Eval(nil)
		if !row.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestIsNullAndIn(t *testing.T) {
	r := row.Row{nil, int32(5)}
	if got := (&IsNull{boundInt(0)}).Eval(r); got != true {
		t.Error("IS NULL on nil")
	}
	if got := (&IsNotNull{boundInt(1)}).Eval(r); got != true {
		t.Error("IS NOT NULL on value")
	}
	in := &In{Value: boundInt(1), List: []Expression{Lit(int32(1)), Lit(int32(5))}}
	if got := in.Eval(r); got != true {
		t.Error("IN should match")
	}
	// Non-matching with NULL in list => NULL.
	inNull := &In{Value: boundInt(1), List: []Expression{Lit(int32(1)), &Literal{Value: nil, Type: types.Int}}}
	if got := inNull.Eval(r); got != nil {
		t.Errorf("IN with NULL list = %v, want NULL", got)
	}
	// NULL value => NULL.
	if got := in.WithNewChildren(append([]Expression{boundInt(0)}, in.List...)).Eval(r); got != nil {
		t.Errorf("NULL IN (...) = %v, want NULL", got)
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%izz%pi", false},
		{"mississippi", "%iss%ppi", true},
	}
	for _, c := range cases {
		if got := LikeMatch(c.s, c.p); got != c.want {
			t.Errorf("LikeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	r := row.Row{"Hello World"}
	if got := Upper(boundStr(0)).Eval(r); got != "HELLO WORLD" {
		t.Errorf("upper = %v", got)
	}
	if got := Lower(boundStr(0)).Eval(r); got != "hello world" {
		t.Errorf("lower = %v", got)
	}
	if got := Length(boundStr(0)).Eval(r); got != int32(11) {
		t.Errorf("length = %v", got)
	}
	sub := &Substring{Str: boundStr(0), Pos: Lit(1), Len: Lit(5)}
	if got := sub.Eval(r); got != "Hello" {
		t.Errorf("substr = %v", got)
	}
	// Out-of-range substring clamps.
	sub2 := &Substring{Str: boundStr(0), Pos: Lit(10), Len: Lit(99)}
	if got := sub2.Eval(r); got != "ld" {
		t.Errorf("substr clamp = %q", got)
	}
	cat := &Concat{Args: []Expression{Lit("a"), Lit("b"), Lit("c")}}
	if got := cat.Eval(nil); got != "abc" {
		t.Errorf("concat = %v", got)
	}
	if got := StartsWith(boundStr(0), Lit("Hell")).Eval(r); got != true {
		t.Error("startswith")
	}
	if got := EndsWith(boundStr(0), Lit("rld")).Eval(r); got != true {
		t.Error("endswith")
	}
	if got := Contains(boundStr(0), Lit("o W")).Eval(r); got != true {
		t.Error("contains")
	}
}

func TestCaseWhenAndCoalesce(t *testing.T) {
	c := NewCaseWhen([][2]Expression{
		{LT(boundInt(0), Lit(int32(10))), Lit("small")},
		{LT(boundInt(0), Lit(int32(100))), Lit("medium")},
	}, Lit("large"))
	cases := []struct {
		in   int32
		want string
	}{{5, "small"}, {50, "medium"}, {500, "large"}}
	for _, tc := range cases {
		if got := c.Eval(row.Row{tc.in}); got != tc.want {
			t.Errorf("case(%d) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Without ELSE, unmatched is NULL.
	noElse := NewCaseWhen([][2]Expression{{Lit(false), Lit("x")}}, nil)
	if got := noElse.Eval(nil); got != nil {
		t.Errorf("no-else case = %v", got)
	}
	co := &Coalesce{Args: []Expression{&Literal{Value: nil, Type: types.Int}, Lit(int32(7))}}
	if got := co.Eval(nil); got != int32(7) {
		t.Errorf("coalesce = %v", got)
	}
}

func TestCastMatrix(t *testing.T) {
	cases := []struct {
		v    any
		to   types.DataType
		want any
	}{
		{int32(5), types.Long, int64(5)},
		{int64(5), types.Int, int32(5)},
		{int32(5), types.Double, 5.0},
		{2.9, types.Int, int32(2)}, // truncation
		{"42", types.Int, int32(42)},
		{"2.5", types.Double, 2.5},
		{"abc", types.Int, nil}, // invalid -> NULL
		{int32(1), types.String, "1"},
		{2.5, types.String, "2.5"},
		{"true", types.Boolean, true},
		{"no", types.Boolean, false},
		{"maybe", types.Boolean, nil},
		{"2015-01-01", types.Date, int32(16436)},
		{"1970-01-01", types.Date, int32(0)},
		{"1969-12-31", types.Date, int32(-1)},
	}
	for _, c := range cases {
		got := CastValue(c.v, c.to)
		if !row.Equal(got, c.want) {
			t.Errorf("CAST(%v AS %s) = %v, want %v", c.v, c.to.Name(), got, c.want)
		}
	}
	// Decimal casts.
	if got := CastValue("12.345", types.DecimalType{Precision: 10, Scale: 2}); got.(types.Decimal).String() != "12.34" {
		t.Errorf("string->decimal = %v", got)
	}
	if got := CastValue(int32(3), types.DecimalType{Precision: 10, Scale: 2}); got.(types.Decimal).String() != "3.00" {
		t.Errorf("int->decimal = %v", got)
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, days := range []int32{0, 1, -1, 16436, 3653, -719162, 2932896} {
		y, m, d := DaysToCivil(days)
		s := FormatDate(days)
		back := CastValue(s, types.Date)
		if back != days {
			t.Errorf("date %d (%04d-%02d-%02d) round-trip = %v", days, y, m, d, back)
		}
	}
}

func TestAttributesAndAliases(t *testing.T) {
	a := NewAttribute("x", types.Int, false)
	b := NewAttribute("x", types.Int, false)
	if a.ID_ == b.ID_ {
		t.Error("fresh attributes must have distinct IDs")
	}
	if a.WithQualifier("t").ID_ != a.ID_ {
		t.Error("qualifying preserves identity")
	}
	if a.WithFreshID().ID_ == a.ID_ {
		t.Error("WithFreshID must change identity")
	}
	al := NewAlias(Add(a, Lit(int32(1))), "y")
	if al.OutName() != "y" || !al.DataType().Equals(types.Int) {
		t.Errorf("alias metadata wrong")
	}
	if al.ToAttribute().ID_ != al.ID_ {
		t.Error("alias attribute shares the alias ID")
	}
}

func TestReferencesAndConjuncts(t *testing.T) {
	a := NewAttribute("a", types.Int, false)
	b := NewAttribute("b", types.Int, false)
	e := &And{Left: GT(a, Lit(int32(1))), Right: LT(b, Lit(int32(5)))}
	refs := References(e)
	if !refs.Contains(a.ID_) || !refs.Contains(b.ID_) || len(refs) != 2 {
		t.Errorf("references = %v", refs)
	}
	conj := SplitConjuncts(e)
	if len(conj) != 2 {
		t.Errorf("conjuncts = %v", conj)
	}
	if JoinConjuncts(conj).String() != e.String() {
		t.Error("JoinConjuncts should rebuild the conjunction")
	}
	if JoinConjuncts(nil) != nil {
		t.Error("empty conjunct list is nil")
	}
}

func TestBind(t *testing.T) {
	a := NewAttribute("a", types.Int, false)
	b := NewAttribute("b", types.Int, true)
	e := Add(a, b)
	bound, err := Bind(e, []*AttributeReference{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := bound.Eval(row.Row{int32(2), int32(3)}); got != int32(5) {
		t.Errorf("bound eval = %v", got)
	}
	// Missing attribute fails.
	c := NewAttribute("c", types.Int, false)
	if _, err := Bind(Add(a, c), []*AttributeReference{a, b}); err == nil {
		t.Error("binding unknown attribute should fail")
	}
}

func TestUDFEval(t *testing.T) {
	udf := &ScalarUDF{
		Name: "twice",
		Fn:   func(args []any) any { return args[0].(int32) * 2 },
		In:   []types.DataType{types.Int},
		Ret:  types.Int,
		Args: []Expression{boundInt(0)},
	}
	if got := udf.Eval(row.Row{int32(21)}); got != int32(42) {
		t.Errorf("udf = %v", got)
	}
	if !udf.Resolved() {
		t.Error("typed udf should be resolved")
	}
}

func TestDecimalHelpers(t *testing.T) {
	d := Lit(types.NewDecimal(12345, 2))
	u := &UnscaledValue{Child: d}
	if got := u.Eval(nil); got != int64(12345) {
		t.Errorf("unscaled = %v", got)
	}
	m := &MakeDecimal{Child: Lit(int64(999)), Precision: 10, Scale: 2}
	if got := m.Eval(nil).(types.Decimal); got.String() != "9.99" {
		t.Errorf("makedecimal = %v", got)
	}
	if !m.DataType().Equals(types.DecimalType{Precision: 10, Scale: 2}) {
		t.Error("makedecimal type")
	}
}

func TestGetFieldAndArray(t *testing.T) {
	st := types.StructType{}.Add("x", types.Double, false).Add("y", types.Double, false)
	structRef := &BoundReference{Ordinal: 0, Type: st, Null: true}
	gf := &GetField{Child: structRef, FieldName: "y"}
	r := row.Row{row.Row{1.5, 2.5}}
	if got := gf.Eval(r); got != 2.5 {
		t.Errorf("getfield = %v", got)
	}
	if gf.Eval(row.Row{nil}) != nil {
		t.Error("getfield on NULL struct is NULL")
	}

	arrRef := &BoundReference{Ordinal: 0, Type: types.ArrayType{Elem: types.Int}, Null: true}
	gi := &GetArrayItem{Child: arrRef, Index: Lit(1)}
	ar := row.Row{[]any{int32(10), int32(20)}}
	if got := gi.Eval(ar); got != int32(20) {
		t.Errorf("getitem = %v", got)
	}
	oob := &GetArrayItem{Child: arrRef, Index: Lit(9)}
	if oob.Eval(ar) != nil {
		t.Error("out-of-range index is NULL")
	}
	sz := &ArraySize{Child: arrRef}
	if got := sz.Eval(ar); got != int32(2) {
		t.Errorf("size = %v", got)
	}
}

func TestTreeStringIncludesIDs(t *testing.T) {
	a := NewAttribute("col", types.Int, false)
	s := GT(a, Lit(int32(3))).String()
	if s == "" || s == "(col > 3)" {
		t.Errorf("attribute IDs must render (got %q) so fixed-point detection is precise", s)
	}
}
