package expr

import (
	"math/rand"
	"testing"

	"repro/internal/columnar"
	"repro/internal/row"
	"repro/internal/types"
)

// vecSchema matches randomExpr's schema: a INT, b BIGINT, s STRING, d DOUBLE.
var vecSchema = []types.DataType{types.Int, types.Long, types.String, types.Double}

func rowsToBatch(rows []row.Row) *VecBatch {
	cols := make([]*columnar.Vector, len(vecSchema))
	for j, dt := range vecSchema {
		v := columnar.NewVector(dt, len(rows))
		for i, r := range rows {
			v.Set(i, r[j])
		}
		cols[j] = v
	}
	return &VecBatch{Cols: cols, N: len(rows)}
}

func randomVecRows(rng *rand.Rand, n int) []row.Row {
	words := []string{"foo", "bar", "spark", "", "a"}
	out := make([]row.Row, n)
	for i := range out {
		r := row.Row{int32(rng.Intn(10) - 5), int64(rng.Intn(10) - 5), words[rng.Intn(len(words))], float64(rng.Intn(5))}
		for j := 0; j < 3; j++ {
			if rng.Intn(4) == 0 {
				r[j] = nil
			}
		}
		out[i] = r
	}
	return out
}

func randomSel(rng *rand.Rand, n int) []int32 {
	sel := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) != 0 {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// Property: for any predicate the vector kernel (native or fallback) selects
// exactly the rows the scalar predicate keeps, without mutating the input
// selection.
func TestVecPredicateMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 800; trial++ {
		e := randomExpr(rng, 3, types.Boolean)
		rows := randomVecRows(rng, rng.Intn(120))
		batch := rowsToBatch(rows)
		sel := randomSel(rng, len(rows))
		selCopy := append([]int32(nil), sel...)

		pred, _ := CompileVecPredicate(e)
		got := pred(batch, sel)

		var want []int32
		for _, i := range selCopy {
			if e.Eval(rows[i]) == true {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %s\nselected %d rows, want %d", trial, e, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("trial %d: %s\nposition %d: got row %d, want %d", trial, e, k, got[k], want[k])
			}
		}
		for k := range sel {
			if sel[k] != selCopy[k] {
				t.Fatalf("trial %d: %s mutated the input selection", trial, e)
			}
		}
	}
}

// Property: for any value expression the vector kernel produces, at every
// selected position, exactly the boxed value the interpreter produces.
func TestVecEvalMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	wants := []types.DataType{types.Int, types.Long, types.Double, types.String}
	for trial := 0; trial < 800; trial++ {
		e := randomExpr(rng, 3, wants[rng.Intn(len(wants))])
		rows := randomVecRows(rng, rng.Intn(120))
		batch := rowsToBatch(rows)
		sel := randomSel(rng, len(rows))

		ev, _ := CompileVec(e)
		v := ev(batch, sel)
		for _, i := range sel {
			want := e.Eval(rows[i])
			got := v.Get(int(i))
			if !row.Equal(got, want) {
				t.Fatalf("trial %d: %s\nrow %d: vector=%v (%T), interpreter=%v (%T)",
					trial, e, i, got, got, want, want)
			}
		}
	}
}

// The kernels the issue names must compile natively; exotic nodes must
// report fallback (still correct, exercised by the properties above).
func TestVecNativeCoverage(t *testing.T) {
	a := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	b := &BoundReference{Ordinal: 1, Type: types.Long, Null: true}
	s := &BoundReference{Ordinal: 2, Type: types.String, Null: true}
	d := &BoundReference{Ordinal: 3, Type: types.Double, Null: false}

	nativePreds := []Expression{
		GT(a, Lit(int32(3))),
		&Comparison{Op: OpLE, Left: d, Right: Lit(2.5)},
		&Comparison{Op: OpEQ, Left: s, Right: Lit("foo")},
		&And{GT(a, Lit(int32(0))), &Comparison{Op: OpLT, Left: b, Right: Lit(int64(9))}},
		&Or{GT(a, Lit(int32(7))), &IsNull{Child: s}},
		&IsNotNull{Child: a},
		&In{Value: b, List: []Expression{Lit(int64(1)), Lit(int64(2))}},
		&In{Value: s, List: []Expression{Lit("foo"), Lit("bar")}},
		&StringMatch{Kind: matchStartsWith, Left: s, Right: Lit("f")},
		&StringMatch{Kind: matchEndsWith, Left: s, Right: Lit("o")},
		&StringMatch{Kind: matchContains, Left: s, Right: Lit("o")},
		&Like{Left: s, Pattern: Lit("f%o_")},
	}
	for _, e := range nativePreds {
		if _, ok := CompileVecPredicate(e); !ok {
			t.Errorf("predicate %s should compile natively", e)
		}
	}
	fallbackPreds := []Expression{
		&Not{Child: GT(a, Lit(int32(3)))},
		&StringMatch{Kind: matchContains, Left: Upper(s), Right: Lit("o")},
	}
	for _, e := range fallbackPreds {
		if _, ok := CompileVecPredicate(e); ok {
			t.Errorf("predicate %s should report fallback", e)
		}
	}

	dcol := &BoundReference{Ordinal: 0, Type: types.Date, Null: true}
	nativeEvals := []Expression{
		a,
		Add(b, Lit(int64(2))),
		Mul(d, d),
		&Alias{Child: Sub(a, a), Name: "z"},
		Year(dcol),
		Month(dcol),
		Day(dcol),
	}
	for _, e := range nativeEvals {
		if _, ok := CompileVec(e); !ok {
			t.Errorf("eval %s should compile natively", e)
		}
	}
	if _, ok := CompileVec(Upper(s)); ok {
		t.Error("Upper should report fallback")
	}
}

// Integer division and modulo by zero are NULL; INT arithmetic wraps through
// int32 per node — both must match the scalar path exactly.
func TestVecArithEdgeCases(t *testing.T) {
	a := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	b := &BoundReference{Ordinal: 1, Type: types.Long, Null: true}
	rows := []row.Row{
		{int32(10), int64(0), nil, 0.0},
		{int32(2147483647), int64(3), nil, 0.0},
		{int32(-5), int64(-2), nil, 0.0},
		{nil, int64(7), nil, 0.0},
	}
	batch := rowsToBatch(rows)
	sel := []int32{0, 1, 2, 3}
	exprs := []Expression{
		Div(a, Lit(int32(0))),           // NULL
		&BinaryArith{Op: OpMod, Left: b, Right: b}, // 0%0 -> NULL at row 0
		Add(a, Lit(int32(1))),           // int32 wraparound at row 1
		Mul(a, a),                       // wraps through int32
		Div(b, Lit(int64(2))),
	}
	for _, e := range exprs {
		ev, ok := CompileVec(e)
		if !ok {
			t.Fatalf("%s should be native", e)
		}
		v := ev(batch, sel)
		for _, i := range sel {
			want := e.Eval(rows[i])
			got := v.Get(int(i))
			if !row.Equal(got, want) {
				t.Errorf("%s row %d: vector=%v, scalar=%v", e, i, got, want)
			}
		}
	}
}

// OR keeps rows in input order even when both branches match disjoint and
// overlapping subsets.
func TestVecOrUnionOrder(t *testing.T) {
	a := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	rows := make([]row.Row, 50)
	for i := range rows {
		rows[i] = row.Row{int32(i), int64(0), "", 0.0}
	}
	batch := rowsToBatch(rows)
	sel := make([]int32, len(rows))
	for i := range sel {
		sel[i] = int32(i)
	}
	// i < 20 OR i%2-ish overlap via i > 10.
	e := &Or{&Comparison{Op: OpLT, Left: a, Right: Lit(int32(20))}, GT(a, Lit(int32(10)))}
	pred, ok := CompileVecPredicate(e)
	if !ok {
		t.Fatal("OR of native comparisons should be native")
	}
	got := pred(batch, sel)
	if len(got) != len(rows) {
		t.Fatalf("union selected %d rows, want all %d", len(got), len(rows))
	}
	for i := range got {
		if got[i] != int32(i) {
			t.Fatalf("union out of order at %d: %d", i, got[i])
		}
	}
}

// Constant vectors: literal-only predicates and nil literals.
func TestVecConstants(t *testing.T) {
	rows := randomVecRows(rand.New(rand.NewSource(3)), 40)
	batch := rowsToBatch(rows)
	sel := make([]int32, len(rows))
	for i := range sel {
		sel[i] = int32(i)
	}
	if pred, _ := CompileVecPredicate(Lit(true)); len(pred(batch, sel)) != len(sel) {
		t.Error("TRUE literal must keep everything")
	}
	if pred, _ := CompileVecPredicate(Lit(false)); len(pred(batch, sel)) != 0 {
		t.Error("FALSE literal must drop everything")
	}
	// x > NULL never matches.
	a := &BoundReference{Ordinal: 0, Type: types.Int, Null: true}
	nullLit := &Literal{Value: nil, Type: types.Int}
	if pred, _ := CompileVecPredicate(GT(a, nullLit)); len(pred(batch, sel)) != 0 {
		t.Error("comparison against NULL literal must select nothing")
	}
}

// Date kernels: year/month/day extraction over a DATE vector must match the
// interpreter row for row, including NULLs and pre-epoch dates.
func TestVecDatePartMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 300
	rows := make([]row.Row, n)
	v := columnar.NewVector(types.Date, n)
	for i := range rows {
		if rng.Intn(5) == 0 {
			rows[i] = row.Row{nil}
			v.Set(i, nil)
			continue
		}
		d := int32(rng.Intn(40000) - 10000) // ~1942..2079
		rows[i] = row.Row{d}
		v.Set(i, d)
	}
	batch := &VecBatch{Cols: []*columnar.Vector{v}, N: n}
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	dcol := &BoundReference{Ordinal: 0, Type: types.Date, Null: true}
	for part, e := range []Expression{Year(dcol), Month(dcol), Day(dcol)} {
		ev, ok := CompileVec(e)
		if !ok {
			t.Fatalf("%s should compile natively", e)
		}
		out := ev(batch, sel)
		for _, i := range sel {
			want := e.Eval(rows[i])
			if got := out.Get(int(i)); !row.Equal(got, want) {
				t.Fatalf("part %d row %d: vector=%v, interpreter=%v", part, i, got, want)
			}
		}
	}
}

// LIKE kernel vs interpreter across wildcard shapes, empty strings, and NULLs.
func TestVecLikeMatchesInterpreter(t *testing.T) {
	patterns := []string{"f%", "%o", "%ar%", "f_o", "", "%", "spark", "s%k"}
	rows := randomVecRows(rand.New(rand.NewSource(19)), 200)
	batch := rowsToBatch(rows)
	sel := make([]int32, len(rows))
	for i := range sel {
		sel[i] = int32(i)
	}
	s := &BoundReference{Ordinal: 2, Type: types.String, Null: true}
	for _, p := range patterns {
		e := &Like{Left: s, Pattern: Lit(p)}
		pred, ok := CompileVecPredicate(e)
		if !ok {
			t.Fatalf("LIKE %q should compile natively", p)
		}
		got := pred(batch, sel)
		var want []int32
		for _, i := range sel {
			if e.Eval(rows[i]) == true {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("LIKE %q: got %d rows, want %d", p, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("LIKE %q: position %d got row %d, want %d", p, k, got[k], want[k])
			}
		}
	}
}

// The scalar-fallback bridge boxes rows to call the interpreter; these
// benchmarks (run with -benchmem) pin its allocation behavior — one scratch
// row per BATCH, not one per row.
func fallbackBenchBatch(n int) (*VecBatch, []int32) {
	rng := rand.New(rand.NewSource(7))
	batch := rowsToBatch(randomVecRows(rng, n))
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return batch, sel
}

func BenchmarkVecFallbackEval(b *testing.B) {
	batch, sel := fallbackBenchBatch(1024)
	// A comparison in value position has no native eval kernel, so this is
	// the pure fallback path.
	ev := vecFallbackEval(GT(
		&BoundReference{Ordinal: 0, Type: types.Int, Null: true}, Lit(int32(0))))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev(batch, sel)
	}
}

func BenchmarkVecFallbackPred(b *testing.B) {
	batch, sel := fallbackBenchBatch(1024)
	// NOT has no native predicate kernel.
	pred := vecFallbackPred(&Not{Child: GT(
		&BoundReference{Ordinal: 0, Type: types.Int, Null: true}, Lit(int32(0)))})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pred(batch, sel)
	}
}
