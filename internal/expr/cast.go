package expr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/row"
	"repro/internal/types"
)

// Cast converts a value to a target type. The analyzer inserts casts during
// type coercion (paper §4.3.1: "propagating and coercing types through
// expressions"); users can also cast explicitly. Invalid string-to-number
// casts produce NULL (Spark SQL non-ANSI behaviour).
type Cast struct {
	Child Expression
	To    types.DataType
}

// NewCast builds CAST(child AS to).
func NewCast(child Expression, to types.DataType) *Cast {
	return &Cast{Child: child, To: to}
}

func (c *Cast) Children() []Expression { return []Expression{c.Child} }
func (c *Cast) WithNewChildren(children []Expression) Expression {
	return &Cast{Child: children[0], To: c.To}
}
func (c *Cast) DataType() types.DataType { return c.To }
func (c *Cast) Nullable() bool {
	// String→number casts can fail to NULL.
	if c.Resolved() && c.Child.DataType().Equals(types.String) && !c.To.Equals(types.String) {
		return true
	}
	return c.Child.Nullable()
}
func (c *Cast) Resolved() bool { return childrenResolved(c) }
func (c *Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.Child, c.To.Name()) }
func (c *Cast) Eval(r row.Row) any {
	v := c.Child.Eval(r)
	if v == nil {
		return nil
	}
	return CastValue(v, c.To)
}

// CastValue converts a single non-NULL value to the target type, returning
// nil when the conversion is impossible (e.g. non-numeric string to INT).
func CastValue(v any, to types.DataType) any {
	switch {
	case to.Equals(types.String):
		return toStringValue(v)
	case to.Equals(types.Int):
		if f, ok := toFloat(v); ok {
			return int32(f)
		}
	case to.Equals(types.Long):
		if f, ok := toFloat(v); ok {
			return int64(f)
		}
	case to.Equals(types.Float):
		if f, ok := toFloat(v); ok {
			return float32(f)
		}
	case to.Equals(types.Double):
		if f, ok := toFloat(v); ok {
			return f
		}
	case to.Equals(types.Boolean):
		switch x := v.(type) {
		case bool:
			return x
		case string:
			switch strings.ToLower(strings.TrimSpace(x)) {
			case "true", "1", "t", "yes":
				return true
			case "false", "0", "f", "no":
				return false
			}
			return nil
		}
	case to.Equals(types.Date):
		switch x := v.(type) {
		case int32:
			return x
		case string:
			if d, ok := parseDateDays(x); ok {
				return d
			}
			return nil
		}
	case to.Equals(types.Timestamp):
		switch x := v.(type) {
		case int64:
			return x
		case int32: // date → timestamp at midnight UTC
			return int64(x) * 86400 * 1e6
		}
	default:
		if dt, ok := to.(types.DecimalType); ok {
			return toDecimal(v, dt)
		}
	}
	return nil
}

func toStringValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case types.Decimal:
		return x.String()
	default:
		return fmt.Sprint(v)
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case float32:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case types.Decimal:
		return x.Float64(), true
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

func toDecimal(v any, dt types.DecimalType) any {
	switch x := v.(type) {
	case types.Decimal:
		return x.Rescale(dt.Scale)
	case int32:
		return types.Decimal{Unscaled: int64(x), Scale: 0}.Rescale(dt.Scale)
	case int64:
		return types.Decimal{Unscaled: x, Scale: 0}.Rescale(dt.Scale)
	case float32:
		return floatToDecimal(float64(x), dt.Scale)
	case float64:
		return floatToDecimal(x, dt.Scale)
	case string:
		d, err := types.ParseDecimal(strings.TrimSpace(x))
		if err != nil {
			return nil
		}
		return d.Rescale(dt.Scale)
	}
	return nil
}

func floatToDecimal(f float64, scale int) types.Decimal {
	p := 1.0
	for i := 0; i < scale; i++ {
		p *= 10
	}
	u := int64(f*p + copysignHalf(f))
	return types.Decimal{Unscaled: u, Scale: scale}
}

func copysignHalf(f float64) float64 {
	if f < 0 {
		return -0.5
	}
	return 0.5
}

// parseDateDays parses "YYYY-MM-DD" into days since the Unix epoch.
func parseDateDays(s string) (int32, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 3 {
		return 0, false
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, false
	}
	return int32(civilToDays(y, m, d)), true
}

// civilToDays converts a proleptic Gregorian date to days since 1970-01-01
// (Howard Hinnant's algorithm).
func civilToDays(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400
	var mp int
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int64(era)*146097 + int64(doe) - 719468
}

// DaysToCivil converts days since the Unix epoch back to (year, month, day).
func DaysToCivil(days int32) (y, m, d int) {
	z := int64(days) + 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// FormatDate renders days-since-epoch as "YYYY-MM-DD".
func FormatDate(days int32) string {
	y, m, d := DaysToCivil(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// DatePart extracts year/month/day from a DATE value.
type DatePart struct {
	// Part is 0=year, 1=month, 2=day.
	Part  int
	Child Expression
}

// Year builds YEAR(child).
func Year(child Expression) *DatePart { return &DatePart{Part: 0, Child: child} }

// Month builds MONTH(child).
func Month(child Expression) *DatePart { return &DatePart{Part: 1, Child: child} }

// Day builds DAY(child).
func Day(child Expression) *DatePart { return &DatePart{Part: 2, Child: child} }

func (d *DatePart) name() string { return [...]string{"year", "month", "day"}[d.Part] }

func (d *DatePart) Children() []Expression { return []Expression{d.Child} }
func (d *DatePart) WithNewChildren(children []Expression) Expression {
	return &DatePart{Part: d.Part, Child: children[0]}
}
func (d *DatePart) DataType() types.DataType { return types.Int }
func (d *DatePart) Nullable() bool           { return d.Child.Nullable() }
func (d *DatePart) Resolved() bool {
	return childrenResolved(d) && d.Child.DataType().Equals(types.Date)
}
func (d *DatePart) String() string { return fmt.Sprintf("%s(%s)", d.name(), d.Child) }
func (d *DatePart) Eval(r row.Row) any {
	v := d.Child.Eval(r)
	if v == nil {
		return nil
	}
	y, m, day := DaysToCivil(v.(int32))
	switch d.Part {
	case 0:
		return int32(y)
	case 1:
		return int32(m)
	default:
		return int32(day)
	}
}
