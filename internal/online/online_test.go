package online

import (
	"math"
	"testing"

	sparksql "repro"
	"repro/internal/datagen"
	"repro/internal/rdd"
	"repro/internal/row"
)

func pairFrame(t *testing.T, n int64) (*sparksql.Context, *sparksql.DataFrame) {
	t.Helper()
	ctx := sparksql.NewContext()
	parts := ctx.RDDContext().Parallelism()
	rows := rdd.Generate(ctx.RDDContext(), "pairs", parts, func(p int) []row.Row {
		lo := n * int64(p) / int64(parts)
		hi := n * int64(p+1) / int64(parts)
		out := make([]row.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, datagen.PairRow(99, i, 4))
		}
		return out
	})
	df, err := ctx.CreateDataFrameFromRDD(datagen.PairSchema(), rows)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, df
}

func TestBatchesArePartitionAndExhaustive(t *testing.T) {
	ctx, df := pairFrame(t, 5000)
	ctx.Engine().AddStrategy(Strategy())
	total := int64(0)
	const batches = 7
	for b := 0; b < batches; b++ {
		bdf, err := ctx.FromPlan(&BatchScan{Index: b, NumBatches: batches, Child: df.AnalyzedPlan()})
		if err != nil {
			t.Fatal(err)
		}
		n, err := bdf.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("batch %d empty", b)
		}
		total += n
	}
	if total != 5000 {
		t.Fatalf("batches must partition the data: %d", total)
	}
}

func TestOnlineAvgConvergesWithTighteningCI(t *testing.T) {
	ctx, df := pairFrame(t, 20000)
	progress, err := Avg(ctx, df, "a", "b", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) != 5 {
		t.Fatalf("progress entries = %d", len(progress))
	}
	// Exact answer for comparison.
	exact := map[string]float64{}
	full, err := df.GroupBy("a").Avg("b")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := full.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		exact[row.FormatValue(r[0])] = r[1].(float64)
	}

	first := progress[0]
	last := progress[len(progress)-1]
	if len(last.Estimates) != len(exact) {
		t.Fatalf("final estimates cover %d groups, want %d", len(last.Estimates), len(exact))
	}
	for g, est := range last.Estimates {
		want := exact[string(g)]
		// After all batches the estimate IS the exact average.
		if math.Abs(est.Avg-want) > 1e-9 {
			t.Errorf("group %s: final %f vs exact %f", g, est.Avg, want)
		}
		// Every intermediate estimate is within its own CI of the truth
		// (a soft statistical property; allow 3x slack).
		if fe, ok := first.Estimates[g]; ok && fe.CI > 0 {
			if math.Abs(fe.Avg-want) > 3*fe.CI+1 {
				t.Errorf("group %s: first estimate %f ± %f too far from %f",
					g, fe.Avg, fe.CI, want)
			}
		}
	}
	// Confidence intervals tighten as data accumulates.
	for g, fe := range first.Estimates {
		le := last.Estimates[g]
		if le.CI >= fe.CI {
			t.Errorf("group %s: CI did not tighten (%f -> %f)", g, fe.CI, le.CI)
		}
	}
	// Fractions ascend to 1.
	if progress[0].Fraction >= progress[4].Fraction || progress[4].Fraction != 1.0 {
		t.Errorf("fractions = %v..%v", progress[0].Fraction, progress[4].Fraction)
	}
}

func TestWelfordMergeMatchesDirect(t *testing.T) {
	// state.add must match a single-pass computation.
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	var whole state
	for _, v := range vals {
		whole.add(1, v, 0)
	}
	var a, b state
	for _, v := range vals[:4] {
		a.add(1, v, 0)
	}
	for _, v := range vals[4:] {
		b.add(1, v, 0)
	}
	a.add(b.n, b.mean, b.m2)
	if math.Abs(a.mean-whole.mean) > 1e-9 || math.Abs(a.m2-whole.m2) > 1e-6 {
		t.Fatalf("merged (%f, %f) vs whole (%f, %f)", a.mean, a.m2, whole.mean, whole.m2)
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if math.Abs(whole.mean-mean) > 1e-9 {
		t.Fatalf("mean = %f, want %f", whole.mean, mean)
	}
}
