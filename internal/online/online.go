// Package online reproduces the generalized online aggregation of paper
// §7.1 (Zeng et al.'s G-OLA built on Catalyst): the input relation is
// broken into sampled batches by a plan transform, standard aggregation is
// replaced with stateful counterparts that fold each batch into running
// state, and every batch emits partial results with accuracy measures so
// the user can stop when the estimate is good enough.
package online

import (
	"fmt"
	"math"

	sparksql "repro"
	"repro/internal/catalyst"
	"repro/internal/expr"
	"repro/internal/physical"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
)

// BatchScan is a logical operator produced by the batch-splitting
// transform: it passes through only the rows of its child that fall into
// batch Index of NumBatches (a deterministic hash split, so batches are
// disjoint and exhaustive). It is defined OUTSIDE the plan package and
// planned by a custom Strategy — demonstrating the §7.1 claim that
// extensions add operators without touching the core.
type BatchScan struct {
	Index, NumBatches int
	Child             plan.LogicalPlan
}

// Children implements plan.LogicalPlan.
func (b *BatchScan) Children() []plan.LogicalPlan { return []plan.LogicalPlan{b.Child} }

// WithNewChildren implements plan.LogicalPlan.
func (b *BatchScan) WithNewChildren(children []plan.LogicalPlan) plan.LogicalPlan {
	return &BatchScan{Index: b.Index, NumBatches: b.NumBatches, Child: children[0]}
}

// Output implements plan.LogicalPlan.
func (b *BatchScan) Output() []*expr.AttributeReference { return b.Child.Output() }

// Expressions implements plan.LogicalPlan.
func (b *BatchScan) Expressions() []expr.Expression { return nil }

// WithNewExpressions implements plan.LogicalPlan.
func (b *BatchScan) WithNewExpressions(exprs []expr.Expression) plan.LogicalPlan { return b }

// Resolved implements plan.LogicalPlan.
func (b *BatchScan) Resolved() bool { return b.Child.Resolved() }

// SimpleString implements plan.LogicalPlan.
func (b *BatchScan) SimpleString() string {
	return fmt.Sprintf("BatchScan %d/%d", b.Index, b.NumBatches)
}

// String implements plan.LogicalPlan.
func (b *BatchScan) String() string { return plan.Format(b) }

// batchScanExec executes BatchScan by hashing a per-partition row counter.
type batchScanExec struct {
	index, numBatches int
	child             physical.SparkPlan
}

func (e *batchScanExec) Children() []physical.SparkPlan { return []physical.SparkPlan{e.child} }
func (e *batchScanExec) WithNewChildren(children []physical.SparkPlan) physical.SparkPlan {
	return &batchScanExec{index: e.index, numBatches: e.numBatches, child: children[0]}
}
func (e *batchScanExec) Output() []*expr.AttributeReference { return e.child.Output() }
func (e *batchScanExec) SimpleString() string {
	return fmt.Sprintf("BatchScan %d/%d", e.index, e.numBatches)
}
func (e *batchScanExec) String() string { return physical.Format(e) }
func (e *batchScanExec) Execute(ctx *physical.ExecContext) *rdd.RDD[row.Row] {
	idx, n := e.index, e.numBatches
	return rdd.MapPartitions(e.child.Execute(ctx), func(p int, in []row.Row) []row.Row {
		out := make([]row.Row, 0, len(in)/n+1)
		for i, r := range in {
			if int(splitmix(uint64(p)<<32|uint64(i)))%n == idx {
				out = append(out, r)
			}
		}
		return out
	})
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return (x ^ (x >> 31)) & 0x7fffffff
}

// Strategy plans BatchScan nodes; install with engine.AddStrategy.
func Strategy() physical.Strategy {
	return func(pl *physical.Planner, lp plan.LogicalPlan) (physical.SparkPlan, bool, error) {
		b, ok := lp.(*BatchScan)
		if !ok {
			return nil, false, nil
		}
		child, err := pl.Plan(b.Child)
		if err != nil {
			return nil, false, err
		}
		return &batchScanExec{index: b.Index, numBatches: b.NumBatches, child: child}, true, nil
	}
}

// Estimate is one group's running average with a confidence interval.
type Estimate struct {
	Group Group
	Avg   float64
	// CI is the 95 % confidence half-width (1.96 σ/√n).
	CI float64
	N  int64
}

// Group is the rendered group key.
type Group string

// Progress is the partial result after a batch.
type Progress struct {
	BatchesSeen int
	Fraction    float64
	Estimates   map[Group]Estimate
}

// state is the stateful counterpart of AVG: count, mean and M2 (Welford).
type state struct {
	n    int64
	mean float64
	m2   float64
}

func (s *state) add(n2 int64, mean2, m2two float64) {
	if n2 == 0 {
		return
	}
	if s.n == 0 {
		s.n, s.mean, s.m2 = n2, mean2, m2two
		return
	}
	delta := mean2 - s.mean
	total := s.n + n2
	s.m2 += m2two + delta*delta*float64(s.n)*float64(n2)/float64(total)
	s.mean += delta * float64(n2) / float64(total)
	s.n = total
}

// Avg runs an online grouped average of valueCol by groupCol: the query is
// executed once per batch against a sampled subset (via a transform that
// splices BatchScan over the base relation), and running state folds each
// batch in, emitting an estimate with an accuracy measure after every
// batch.
func Avg(ctx *sparksql.Context, df *sparksql.DataFrame, groupCol, valueCol string, batches int) ([]Progress, error) {
	if batches < 1 {
		batches = 10
	}
	ctx.Engine().AddStrategy(Strategy())

	base := df.LogicalPlan()
	states := map[Group]*state{}
	var out []Progress

	for b := 0; b < batches; b++ {
		// "During query planning a call to transform is used to replace
		// the original full query with several queries, each of which
		// operates on a successive sample of the data" (§7.1).
		batchPlan := catalyst.TransformUp[plan.LogicalPlan](base, func(n plan.LogicalPlan) (plan.LogicalPlan, bool) {
			if len(n.Children()) == 0 && n.Resolved() {
				return &BatchScan{Index: b, NumBatches: batches, Child: n}, true
			}
			return nil, false
		})
		bdf, err := ctx.FromPlan(batchPlan)
		if err != nil {
			return nil, err
		}
		// Per-batch partial aggregation: count, sum, sum of squares.
		val := sparksql.Col(valueCol).Cast(sparksql.DoubleType)
		agg, err := bdf.GroupBy(sparksql.Col(groupCol)).Agg(
			sparksql.Count(sparksql.Col(valueCol)).As("n"),
			sparksql.Sum(val).As("s"),
			sparksql.Sum(val.Times(val)).As("ss"),
		)
		if err != nil {
			return nil, err
		}
		rows, err := agg.Collect()
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			key := Group(row.FormatValue(r[0]))
			n := r[1].(int64)
			if n == 0 {
				continue
			}
			sum := asF(r[2])
			ss := asF(r[3])
			mean := sum / float64(n)
			m2 := ss - sum*sum/float64(n)
			st, ok := states[key]
			if !ok {
				st = &state{}
				states[key] = st
			}
			st.add(n, mean, m2)
		}
		prog := Progress{
			BatchesSeen: b + 1,
			Fraction:    float64(b+1) / float64(batches),
			Estimates:   map[Group]Estimate{},
		}
		for g, st := range states {
			est := Estimate{Group: g, Avg: st.mean, N: st.n}
			if st.n > 1 {
				variance := st.m2 / float64(st.n-1)
				est.CI = 1.96 * math.Sqrt(variance/float64(st.n))
			}
			prog.Estimates[g] = est
		}
		out = append(out, prog)
	}
	return out, nil
}

func asF(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}
