// Tables and MVCC versions. A table's data is a list of immutable columnar
// segments; every committed transaction publishes a fresh version — a new
// segment list and a new InMemoryRelation over it — and swaps it into the
// catalog. Versions already pinned by planned queries keep their old
// segment lists untouched, which is the whole snapshot-isolation story:
// readers never lock, writers never wait for readers, and a query planned
// before a concurrent UPDATE/DELETE reads byte-identical pre-write data.
package store

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/row"
	"repro/internal/stats"
	"repro/internal/types"
)

// Segment is an immutable run of rows stored as columnar batches — the
// unit of copy-on-write. INSERT appends one; DELETE/UPDATE rewrite only
// the segments holding affected rows and share the rest with the previous
// version.
type Segment struct {
	ID      int64
	Batches []*columnar.Batch
	Rows    int64
	Bytes   int64
}

// newSegment encodes rows into a segment (empty rows yield a segment with
// no batches; callers avoid creating those).
func newSegment(id int64, schema types.StructType, rows []row.Row) *Segment {
	ct := columnar.BuildTable(schema, [][]row.Row{rows}, 0)
	return &Segment{ID: id, Batches: ct.Partitions[0], Rows: int64(len(rows)), Bytes: ct.SizeBytes()}
}

// decode materializes the segment's rows in order.
func (g *Segment) decode() []row.Row {
	out := make([]row.Row, 0, g.Rows)
	for _, b := range g.Batches {
		for i := 0; i < b.NumRows; i++ {
			out = append(out, b.Row(i))
		}
	}
	return out
}

// Table is one persistent table's mutable head state; all fields are
// guarded by the store mutex except rel, which is immutable once built.
type Table struct {
	Name   string
	Schema types.StructType

	ver     int64 // bumps on every committed transaction
	segs    []*Segment
	nextSeg int64

	// rel is the current version's scan plan — what the catalog registers
	// and queries pin. relStats/relRows/relBytes are its optimizer-visible
	// statistics, refreshed only when the row delta since the last refresh
	// crosses the store's threshold (or on ANALYZE), so the CBO's view can
	// lag the data by design.
	rel       *plan.InMemoryRelation
	relStats  *stats.Table
	relRows   int64
	relBytes  int64
	statsRows int64 // live row count at the last stats refresh
}

// liveCounts returns the actual (not stats-epoch) row and byte totals.
func (t *Table) liveCounts() (rows, bytes int64) {
	for _, g := range t.segs {
		rows += g.Rows
		bytes += g.Bytes
	}
	return
}

// allRows decodes every live row in segment order.
func (t *Table) allRows() []row.Row {
	rows, _ := t.liveCounts()
	out := make([]row.Row, 0, rows)
	for _, g := range t.segs {
		out = append(out, g.decode()...)
	}
	return out
}

// buildRel constructs the version's InMemoryRelation: one cached-table
// partition per segment, fresh attribute IDs (each version is a distinct
// plan leaf), and the stats-epoch statistics.
func (t *Table) buildRel() *plan.InMemoryRelation {
	parts := make([][]*columnar.Batch, len(t.segs))
	for i, g := range t.segs {
		parts[i] = g.Batches
	}
	attrs := make([]*expr.AttributeReference, len(t.Schema.Fields))
	for i, f := range t.Schema.Fields {
		attrs[i] = expr.NewAttribute(f.Name, f.Type, f.Nullable)
	}
	return &plan.InMemoryRelation{
		Attrs:       attrs,
		Table:       &columnar.CachedTable{Schema: t.Schema, Partitions: parts, Stats: t.relStats},
		SizeInBytes: t.relBytes,
		RowCount:    t.relRows,
		TableStats:  t.relStats,
		Origin:      t.Name,
	}
}

// validateRow type-checks one row against the schema: arity, NOT NULL
// constraints and Go representation per column. The SQL path casts values
// into shape before they get here; this guards direct API callers.
func validateRow(schema types.StructType, r row.Row) error {
	if len(r) != len(schema.Fields) {
		return fmt.Errorf("store: row has %d values, table has %d columns", len(r), len(schema.Fields))
	}
	for i, f := range schema.Fields {
		v := r[i]
		if v == nil {
			if !f.Nullable {
				return fmt.Errorf("store: NULL in non-nullable column %q", f.Name)
			}
			continue
		}
		if !valueFits(v, f.Type) {
			return fmt.Errorf("store: column %q: value %v (%T) does not fit %s", f.Name, v, v, f.Type.Name())
		}
	}
	return nil
}

func valueFits(v any, t types.DataType) bool {
	switch t {
	case types.Int, types.Date:
		_, ok := v.(int32)
		return ok
	case types.Long, types.Timestamp:
		_, ok := v.(int64)
		return ok
	case types.Float:
		_, ok := v.(float32)
		return ok
	case types.Double:
		_, ok := v.(float64)
		return ok
	case types.String:
		_, ok := v.(string)
		return ok
	case types.Boolean:
		_, ok := v.(bool)
		return ok
	}
	if _, ok := t.(types.DecimalType); ok {
		_, ok := v.(types.Decimal)
		return ok
	}
	return false
}

// ---------------------------------------------------------------------------
// Schema and payload (de)serialization. WAL payloads and the manifest carry
// schemas as (name, type-name, nullable) triples using the row codec; type
// names are the SQL spellings DESCRIBE prints.

// parseTypeName inverts DataType.Name() for the storable column types.
func parseTypeName(name string) (types.DataType, error) {
	switch name {
	case "INT":
		return types.Int, nil
	case "BIGINT":
		return types.Long, nil
	case "FLOAT":
		return types.Float, nil
	case "DOUBLE":
		return types.Double, nil
	case "STRING":
		return types.String, nil
	case "BOOLEAN":
		return types.Boolean, nil
	case "DATE":
		return types.Date, nil
	case "TIMESTAMP":
		return types.Timestamp, nil
	}
	if rest, ok := strings.CutPrefix(name, "DECIMAL("); ok {
		body, ok := strings.CutSuffix(rest, ")")
		if !ok {
			return nil, fmt.Errorf("store: bad type name %q", name)
		}
		ps, ss, ok := strings.Cut(body, ",")
		if !ok {
			return nil, fmt.Errorf("store: bad type name %q", name)
		}
		p, err1 := strconv.Atoi(ps)
		s, err2 := strconv.Atoi(ss)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("store: bad type name %q", name)
		}
		return types.DecimalType{Precision: p, Scale: s}, nil
	}
	return nil, fmt.Errorf("store: unsupported column type %q", name)
}

func encodeCreate(name string, schema types.StructType) ([]byte, error) {
	rows := make([]row.Row, 0, 1+len(schema.Fields))
	rows = append(rows, row.Row{name})
	for _, f := range schema.Fields {
		rows = append(rows, row.Row{f.Name, f.Type.Name(), f.Nullable})
	}
	return row.EncodeRows(rows)
}

func decodeCreate(payload []byte) (string, types.StructType, error) {
	rows, err := row.DecodeRows(payload)
	if err != nil || len(rows) < 1 || len(rows[0]) < 1 {
		return "", types.StructType{}, fmt.Errorf("store: bad create payload: %v", err)
	}
	name, _ := rows[0][0].(string)
	fields := make([]types.StructField, 0, len(rows)-1)
	for _, r := range rows[1:] {
		if len(r) != 3 {
			return "", types.StructType{}, fmt.Errorf("store: bad create column row")
		}
		cn, _ := r[0].(string)
		tn, _ := r[1].(string)
		nullable, _ := r[2].(bool)
		dt, err := parseTypeName(tn)
		if err != nil {
			return "", types.StructType{}, err
		}
		fields = append(fields, types.StructField{Name: cn, Type: dt, Nullable: nullable})
	}
	return name, types.StructType{Fields: fields}, nil
}

func encodeDrop(name string) ([]byte, error) {
	return row.EncodeRows([]row.Row{{name}})
}

func decodeDrop(payload []byte) (string, error) {
	rows, err := row.DecodeRows(payload)
	if err != nil || len(rows) != 1 || len(rows[0]) < 1 {
		return "", fmt.Errorf("store: bad drop payload: %v", err)
	}
	name, _ := rows[0][0].(string)
	return name, nil
}

func encodeInsert(name string, segID int64, data []row.Row) ([]byte, error) {
	rows := make([]row.Row, 0, 1+len(data))
	rows = append(rows, row.Row{name, segID})
	rows = append(rows, data...)
	return row.EncodeRows(rows)
}

func decodeInsert(payload []byte) (string, int64, []row.Row, error) {
	rows, err := row.DecodeRows(payload)
	if err != nil || len(rows) < 1 || len(rows[0]) < 2 {
		return "", 0, nil, fmt.Errorf("store: bad insert payload: %v", err)
	}
	name, _ := rows[0][0].(string)
	segID, _ := rows[0][1].(int64)
	return name, segID, rows[1:], nil
}

// encodeDelete logs one segment rewrite: drop the rows at offsets from
// segment oldID; the survivors become segment newID (-1 = none survive).
func encodeDelete(name string, oldID, newID int64, offsets []int) ([]byte, error) {
	offs := make([]any, len(offsets))
	for i, o := range offsets {
		offs[i] = int64(o)
	}
	return row.EncodeRows([]row.Row{{name, oldID, newID, offs}})
}

func decodeDelete(payload []byte) (name string, oldID, newID int64, offsets []int, err error) {
	rows, derr := row.DecodeRows(payload)
	if derr != nil || len(rows) != 1 || len(rows[0]) != 4 {
		return "", 0, 0, nil, fmt.Errorf("store: bad delete payload: %v", derr)
	}
	name, _ = rows[0][0].(string)
	oldID, _ = rows[0][1].(int64)
	newID, _ = rows[0][2].(int64)
	raw, _ := rows[0][3].([]any)
	offsets = make([]int, len(raw))
	for i, v := range raw {
		o, ok := v.(int64)
		if !ok {
			return "", 0, 0, nil, fmt.Errorf("store: bad delete offset %T", v)
		}
		offsets[i] = int(o)
	}
	return name, oldID, newID, offsets, nil
}
