package store

import (
	"testing"
)

// FuzzWALDecode drives the WAL record decoder with arbitrary byte streams.
// Invariants, whatever the input: no panic, and any records that do decode
// re-encode byte-identically to a prefix of the input (so a valid prefix is
// never reinterpreted, and recovery lands exactly on the last valid LSN).
// The seed corpus (which plain `go test` runs) covers valid streams,
// truncations at every interesting boundary and flipped CRCs.
func FuzzWALDecode(f *testing.F) {
	var valid []byte
	valid = encodeRecord(valid, record{lsn: 1, typ: recCreate, payload: []byte("t")})
	valid = encodeRecord(valid, record{lsn: 2, typ: recInsert, payload: []byte("some rows")})
	valid = encodeRecord(valid, record{lsn: 3, typ: recCommit})

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])       // torn tail
	f.Add(valid[:recHeaderLen-2])     // torn header
	f.Add(append(append([]byte(nil), valid...), 0xDE, 0xAD)) // trailing garbage
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xFF // bad CRC on the last record
	f.Add(flipped)
	huge := append([]byte(nil), valid...)
	huge[13] = 0xFF // claim a 4GB payload in record 1's length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := decodeStream(data)
		// Re-encode: must reproduce a prefix of the input exactly.
		var re []byte
		for _, r := range recs {
			re = encodeRecord(re, r)
		}
		if len(re) > len(data) {
			t.Fatalf("re-encoded %d bytes from a %d-byte input", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encoded stream diverges at byte %d", i)
			}
		}
		// LSNs of decoded records must be exactly those of the valid prefix:
		// decode the prefix again and compare.
		again := decodeStream(data[:len(re)])
		if len(again) != len(recs) {
			t.Fatalf("prefix re-decode found %d records, first pass found %d", len(again), len(recs))
		}
	})
}

// TestFuzzSeedTornTails pins the recovery-to-last-valid-LSN property the
// fuzz target asserts: for every truncation point of a valid 3-record
// stream, decoding returns precisely the records whose bytes fully fit.
func TestFuzzSeedTornTails(t *testing.T) {
	var stream []byte
	var ends []int
	for lsn := uint64(1); lsn <= 3; lsn++ {
		stream = encodeRecord(stream, record{lsn: lsn, typ: recInsert, payload: []byte("abc")})
		ends = append(ends, len(stream))
	}
	for cut := 0; cut <= len(stream); cut++ {
		want := 0
		for _, e := range ends {
			if cut >= e {
				want++
			}
		}
		got := decodeStream(stream[:cut])
		if len(got) != want {
			t.Fatalf("cut at %d: got %d records, want %d", cut, len(got), want)
		}
		if want > 0 && got[want-1].lsn != uint64(want) {
			t.Fatalf("cut at %d: last valid lsn = %d, want %d", cut, got[want-1].lsn, want)
		}
	}
}
