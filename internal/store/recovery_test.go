package store

import (
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/row"
)

func counterValue(reg *metrics.Registry, name string) int64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

func openDurable(t *testing.T, dir string) *dfs.FileSystem {
	t.Helper()
	fs, err := dfs.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// reopen closes a store's file system and opens a brand-new store on a
// fresh file system over the same host directory — a process restart.
func reopen(t *testing.T, s *Store, dir string, opts Options) *Store {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return openStore(t, openDurable(t, dir), opts)
}

func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, openDurable(t, dir), Options{CheckpointBytes: -1})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}, {int64(2), "b"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("kv", func(r row.Row) (bool, error) { return r[0].(int64) == 1, nil }); err != nil {
		t.Fatal(err)
	}
	liveRows := collect(t, s, "kv")
	liveInfo, _ := s.Info("kv")

	reg := metrics.NewRegistry()
	s2 := reopen(t, s, dir, Options{CheckpointBytes: -1, Metrics: reg})
	if got := collect(t, s2, "kv"); !reflect.DeepEqual(got, liveRows) {
		t.Fatalf("recovered rows = %v, want %v", got, liveRows)
	}
	info, ok := s2.Info("kv")
	if !ok || info.Version != liveInfo.Version || info.Rows != liveInfo.Rows {
		t.Fatalf("recovered info = %+v, live was %+v", info, liveInfo)
	}
	if got := counterValue(reg, "store.recovery.replayed_txns"); got != 3 {
		t.Fatalf("replayed_txns = %d, want 3", got)
	}
	// Post-recovery writes must keep working (LSNs and segment IDs advance
	// past everything replayed).
	if _, err := s2.Insert("kv", []row.Row{{int64(3), "c"}}); err != nil {
		t.Fatal(err)
	}
	want := append(append([]row.Row(nil), liveRows...), row.Row{int64(3), "c"})
	if got := collect(t, s2, "kv"); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery rows = %v, want %v", got, want)
	}
	s2.Close()
}

func TestRecoverCheckpointPlusWAL(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, openDurable(t, dir), Options{CheckpointBytes: -1})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint DML lands in a fresh WAL segment.
	if _, err := s.Insert("kv", []row.Row{{int64(2), "b"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update("kv", func(r row.Row) (row.Row, bool, error) {
		if r[0].(int64) == 1 {
			return row.Row{int64(1), "A"}, true, nil
		}
		return nil, false, nil
	}); err != nil {
		t.Fatal(err)
	}
	liveRows := collect(t, s, "kv")

	s2 := reopen(t, s, dir, Options{CheckpointBytes: -1})
	if got := collect(t, s2, "kv"); !reflect.DeepEqual(got, liveRows) {
		t.Fatalf("recovered rows = %v, want %v", got, liveRows)
	}
	// Recover → checkpoint → recover again: the manifest path round-trips.
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s3 := reopen(t, s2, dir, Options{CheckpointBytes: -1})
	if got := collect(t, s3, "kv"); !reflect.DeepEqual(got, liveRows) {
		t.Fatalf("second recovery rows = %v, want %v", got, liveRows)
	}
	s3.Close()
}

// TestRecoverDropsUncommitted: records appended without a commit marker —
// a transaction in flight when the process died — must not replay.
func TestRecoverDropsUncommitted(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, openDurable(t, dir), Options{CheckpointBytes: -1})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-transaction: an insert record reaches the log
	// but its commit marker never does.
	payload, err := encodeInsert("kv", 99, []row.Row{{int64(666), "ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	rec := record{lsn: s.wal.nextLSN, typ: recInsert, payload: payload}
	if err := s.fs.AppendBlock(walPath(s.root, s.wal.seg), encodeRecord(nil, rec)); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	s2 := reopen(t, s, dir, Options{CheckpointBytes: -1, Metrics: reg})
	if got := collect(t, s2, "kv"); !reflect.DeepEqual(got, []row.Row{{int64(1), "a"}}) {
		t.Fatalf("uncommitted insert replayed: %v", got)
	}
	if got := counterValue(reg, "store.recovery.torn_records"); got != 1 {
		t.Fatalf("torn_records = %d, want 1", got)
	}
	s2.Close()
}

// TestRecoverTornTail: a record physically torn mid-write (truncated OS
// file) is dropped along with everything after it; the committed prefix
// survives exactly.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, openDurable(t, dir), Options{CheckpointBytes: -1})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(2), "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the WAL file's tail: the second insert's commit marker
	// becomes a torn frame, so that whole transaction must be discarded.
	osPath := filepath.Join(dir, url.PathEscape(walPath(s.root, 0)))
	data, err := os.ReadFile(osPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(osPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, openDurable(t, dir), Options{CheckpointBytes: -1})
	if got := collect(t, s2, "kv"); !reflect.DeepEqual(got, []row.Row{{int64(1), "a"}}) {
		t.Fatalf("rows after torn tail = %v, want just row 1", got)
	}
	// The store keeps accepting writes after truncation-recovery.
	if _, err := s2.Insert("kv", []row.Row{{int64(3), "c"}}); err != nil {
		t.Fatal(err)
	}
	s3 := reopen(t, s2, dir, Options{CheckpointBytes: -1})
	want := []row.Row{{int64(1), "a"}, {int64(3), "c"}}
	if got := collect(t, s3, "kv"); !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	s3.Close()
}

// TestRecoverDeterministicSegmentIDs: replaying a DELETE must reproduce
// the exact segment structure the live path built, so later WAL records
// that reference those segment IDs resolve.
func TestRecoverDeterministicSegmentIDs(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, openDurable(t, dir), Options{CheckpointBytes: -1})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Insert("kv", []row.Row{{int64(2 * i), "x"}, {int64(2*i + 1), "y"}}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete across two segments → two rewrites with fresh IDs; then delete
	// again targeting rows that now live in those rewritten segments.
	if _, err := s.Delete("kv", func(r row.Row) (bool, error) { return r[0].(int64)%2 == 0, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("kv", func(r row.Row) (bool, error) { return r[0].(int64) == 3, nil }); err != nil {
		t.Fatal(err)
	}
	liveRows := collect(t, s, "kv")
	liveSegs := make([]int64, 0, len(s.tables["kv"].segs))
	for _, g := range s.tables["kv"].segs {
		liveSegs = append(liveSegs, g.ID)
	}

	s2 := reopen(t, s, dir, Options{CheckpointBytes: -1})
	if got := collect(t, s2, "kv"); !reflect.DeepEqual(got, liveRows) {
		t.Fatalf("recovered rows = %v, want %v", got, liveRows)
	}
	recSegs := make([]int64, 0, len(s2.tables["kv"].segs))
	for _, g := range s2.tables["kv"].segs {
		recSegs = append(recSegs, g.ID)
	}
	if !reflect.DeepEqual(recSegs, liveSegs) {
		t.Fatalf("recovered segment IDs %v, live were %v", recSegs, liveSegs)
	}
	s2.Close()
}

// TestRecoverDroppedTable: a DROP in the log erases the table for good.
func TestRecoverDroppedTable(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, openDurable(t, dir), Options{CheckpointBytes: -1})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("kv", false); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s, dir, Options{CheckpointBytes: -1})
	if s2.Has("kv") {
		t.Fatal("dropped table came back after recovery")
	}
	s2.Close()
}

// TestCheckpointTruncatesWAL: after a checkpoint the old WAL files are
// gone and recovery does not replay pre-checkpoint transactions.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, openDurable(t, dir), Options{CheckpointBytes: -1})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if wals := s.walSegments(); len(wals) != 0 {
		t.Fatalf("WAL files after checkpoint: %v", wals)
	}
	reg := metrics.NewRegistry()
	s2 := reopen(t, s, dir, Options{CheckpointBytes: -1, Metrics: reg})
	if got := counterValue(reg, "store.recovery.replayed_txns"); got != 0 {
		t.Fatalf("replayed %d txns from a checkpointed log", got)
	}
	if got := collect(t, s2, "kv"); !reflect.DeepEqual(got, []row.Row{{int64(1), "a"}}) {
		t.Fatalf("rows = %v", got)
	}
	s2.Close()
}

// TestCheckpointAutoTrigger: crossing CheckpointBytes checkpoints without
// an explicit call.
func TestCheckpointAutoTrigger(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s := openStore(t, openDurable(t, dir), Options{CheckpointBytes: 1, Metrics: reg})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(reg, "store.checkpoints"); got == 0 {
		t.Fatal("no automatic checkpoint despite 1-byte threshold")
	}
	s2 := reopen(t, s, dir, Options{})
	if got := collect(t, s2, "kv"); !reflect.DeepEqual(got, []row.Row{{int64(1), "a"}}) {
		t.Fatalf("rows = %v", got)
	}
	s2.Close()
}
