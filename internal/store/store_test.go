package store

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dfs"
	"repro/internal/row"
	"repro/internal/types"
)

func kvSchema() types.StructType {
	return types.NewStruct(
		types.StructField{Name: "k", Type: types.Long, Nullable: false},
		types.StructField{Name: "v", Type: types.String, Nullable: true},
	)
}

func memFS(t *testing.T) *dfs.FileSystem {
	t.Helper()
	fs := dfs.New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	return fs
}

func openStore(t *testing.T, fs *dfs.FileSystem, opts Options) *Store {
	t.Helper()
	s, err := Open(fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// collect reads a relation's rows back through its cached table, sorted by
// the first column for deterministic comparison.
func collect(t *testing.T, s *Store, name string) []row.Row {
	t.Helper()
	rel := s.Snapshot(name)
	if rel == nil {
		t.Fatalf("no snapshot for %q", name)
	}
	var out []row.Row
	for p := range rel.Table.Partitions {
		out = append(out, rel.Table.ScanPartition(p, nil, nil)...)
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i][0]) < fmt.Sprint(out[j][0])
	})
	return out
}

func TestCreateInsertDeleteUpdate(t *testing.T) {
	s := openStore(t, memFS(t), Options{})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("kv", kvSchema(), false); err == nil {
		t.Fatal("duplicate CREATE TABLE succeeded")
	}
	if err := s.CreateTable("kv", kvSchema(), true); err != nil {
		t.Fatalf("IF NOT EXISTS: %v", err)
	}

	n, err := s.Insert("kv", []row.Row{{int64(1), "a"}, {int64(2), "b"}, {int64(3), "c"}})
	if err != nil || n != 3 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	// Type and NOT NULL validation.
	if _, err := s.Insert("kv", []row.Row{{nil, "x"}}); err == nil {
		t.Fatal("NULL into non-nullable column accepted")
	}
	if _, err := s.Insert("kv", []row.Row{{int32(1), "x"}}); err == nil {
		t.Fatal("int32 into BIGINT column accepted")
	}

	n, err = s.Delete("kv", func(r row.Row) (bool, error) { return r[0].(int64) == 2, nil })
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	n, err = s.Update("kv", func(r row.Row) (row.Row, bool, error) {
		if r[0].(int64) == 3 {
			return row.Row{int64(3), "C"}, true, nil
		}
		return nil, false, nil
	})
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}

	got := collect(t, s, "kv")
	want := []row.Row{{int64(1), "a"}, {int64(3), "C"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	info, ok := s.Info("kv")
	if !ok || info.Rows != 2 || info.Version != 4 {
		t.Fatalf("info = %+v", info)
	}

	if err := s.DropTable("kv", false); err != nil {
		t.Fatal(err)
	}
	if s.Has("kv") {
		t.Fatal("table survives DROP")
	}
	if err := s.DropTable("kv", false); err == nil {
		t.Fatal("double DROP succeeded")
	}
	if err := s.DropTable("kv", true); err != nil {
		t.Fatalf("IF EXISTS: %v", err)
	}
}

// TestSnapshotIsolation: a relation pinned before concurrent DML returns
// byte-identical pre-write rows, while new snapshots see the writes.
func TestSnapshotIsolation(t *testing.T) {
	s := openStore(t, memFS(t), Options{})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}, {int64(2), "b"}}); err != nil {
		t.Fatal(err)
	}

	pinned := s.Snapshot("kv")
	before := collect(t, s, "kv")

	if _, err := s.Delete("kv", func(r row.Row) (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(9), "z"}}); err != nil {
		t.Fatal(err)
	}

	// The pinned version still reads the pre-write table, row for row.
	var pinnedRows []row.Row
	for p := range pinned.Table.Partitions {
		pinnedRows = append(pinnedRows, pinned.Table.ScanPartition(p, nil, nil)...)
	}
	sort.Slice(pinnedRows, func(i, j int) bool {
		return fmt.Sprint(pinnedRows[i][0]) < fmt.Sprint(pinnedRows[j][0])
	})
	if !reflect.DeepEqual(pinnedRows, before) {
		t.Fatalf("pinned snapshot changed: %v vs %v", pinnedRows, before)
	}
	// A fresh snapshot sees the new state.
	if got := collect(t, s, "kv"); !reflect.DeepEqual(got, []row.Row{{int64(9), "z"}}) {
		t.Fatalf("current rows = %v", got)
	}
}

// TestCopyOnWriteSharesSegments: a delete touching one segment must not
// rebuild the others — their batch slices stay pointer-identical.
func TestCopyOnWriteSharesSegments(t *testing.T) {
	s := openStore(t, memFS(t), Options{})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(1), "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("kv", []row.Row{{int64(2), "b"}}); err != nil {
		t.Fatal(err)
	}
	beforeParts := s.Snapshot("kv").Table.Partitions
	if _, err := s.Delete("kv", func(r row.Row) (bool, error) { return r[0].(int64) == 2, nil }); err != nil {
		t.Fatal(err)
	}
	afterParts := s.Snapshot("kv").Table.Partitions
	if len(afterParts) != 1 {
		t.Fatalf("partitions after delete = %d, want 1", len(afterParts))
	}
	if &beforeParts[0][0] == nil || beforeParts[0][0] != afterParts[0][0] {
		t.Fatal("untouched segment was rebuilt, not shared")
	}
}

// TestStatsRefreshThreshold: optimizer stats lag until the row delta
// crosses the threshold, then refresh.
func TestStatsRefreshThreshold(t *testing.T) {
	s := openStore(t, memFS(t), Options{StatsRefreshRows: 100})
	if err := s.CreateTable("kv", kvSchema(), false); err != nil {
		t.Fatal(err)
	}
	small := []row.Row{}
	for i := 0; i < 10; i++ {
		small = append(small, row.Row{int64(i), "x"})
	}
	if _, err := s.Insert("kv", small); err != nil {
		t.Fatal(err)
	}
	rel := s.Snapshot("kv")
	if rel.RowCount != 0 || rel.TableStats.RowCount != 0 {
		t.Fatalf("stats refreshed below threshold: RowCount=%d", rel.RowCount)
	}

	big := []row.Row{}
	for i := 0; i < 120; i++ {
		big = append(big, row.Row{int64(100 + i), "y"})
	}
	if _, err := s.Insert("kv", big); err != nil {
		t.Fatal(err)
	}
	rel = s.Snapshot("kv")
	if rel.RowCount != 130 || rel.TableStats.RowCount != 130 {
		t.Fatalf("stats not refreshed above threshold: RowCount=%d stats=%d", rel.RowCount, rel.TableStats.RowCount)
	}

	// Explicit ANALYZE refreshes immediately.
	if _, err := s.Insert("kv", []row.Row{{int64(999), "z"}}); err != nil {
		t.Fatal(err)
	}
	if rel = s.Snapshot("kv"); rel.RowCount != 130 {
		t.Fatalf("small insert refreshed stats: %d", rel.RowCount)
	}
	if err := s.Analyze("kv"); err != nil {
		t.Fatal(err)
	}
	if rel = s.Snapshot("kv"); rel.RowCount != 131 {
		t.Fatalf("ANALYZE did not refresh stats: %d", rel.RowCount)
	}
}
