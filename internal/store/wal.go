// Write-ahead log: every DML transaction appends its mutation records plus
// a commit marker to the log and syncs before the store's in-memory state
// (and the catalog) advance — the redo log that makes tables durable
// across crashes. Records are self-delimiting and CRC-checked:
//
//	[magic u32][lsn u64][type u8][payload len u32][payload][crc32 u32]
//
// all fixed fields big-endian, the CRC covering everything before it. One
// record occupies one dfs block, so a crash tears at most the final
// record, and recovery (see recovery.go) replays committed transactions in
// LSN order, stopping at the first torn or corrupt record.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/dfs"
)

type recType uint8

const (
	recCreate recType = iota + 1 // payload: table name + column defs
	recDrop                      // payload: table name
	recInsert                    // payload: table name, segment id, rows
	recDelete                    // payload: table name, old seg, new seg, offsets
	recCommit                    // transaction boundary: earlier records are durable
)

func (t recType) String() string {
	switch t {
	case recCreate:
		return "create"
	case recDrop:
		return "drop"
	case recInsert:
		return "insert"
	case recDelete:
		return "delete"
	case recCommit:
		return "commit"
	}
	return fmt.Sprintf("rec(%d)", uint8(t))
}

// walMagic opens every record ("SWAL").
const walMagic uint32 = 0x5357414C

// recHeaderLen is magic + lsn + type + payload length.
const recHeaderLen = 4 + 8 + 1 + 4

type record struct {
	lsn     uint64
	typ     recType
	payload []byte
}

// encodeRecord appends the wire form of r to dst.
func encodeRecord(dst []byte, r record) []byte {
	start := len(dst)
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], walMagic)
	binary.BigEndian.PutUint64(hdr[4:12], r.lsn)
	hdr[12] = byte(r.typ)
	binary.BigEndian.PutUint32(hdr[13:17], uint32(len(r.payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...)
}

// decodeRecord parses one record from the head of b, returning the record
// and the bytes consumed. Truncation, a bad magic, an unknown type and a
// CRC mismatch are all errors — recovery treats any of them as the end of
// the valid log.
func decodeRecord(b []byte) (record, int, error) {
	if len(b) < recHeaderLen+4 {
		return record{}, 0, fmt.Errorf("store: wal record truncated (%d bytes)", len(b))
	}
	if m := binary.BigEndian.Uint32(b[0:4]); m != walMagic {
		return record{}, 0, fmt.Errorf("store: wal record bad magic %#x", m)
	}
	typ := recType(b[12])
	if typ < recCreate || typ > recCommit {
		return record{}, 0, fmt.Errorf("store: wal record unknown type %d", b[12])
	}
	n := binary.BigEndian.Uint32(b[13:17])
	total := recHeaderLen + int(n) + 4
	if uint64(len(b)) < uint64(recHeaderLen)+uint64(n)+4 {
		return record{}, 0, fmt.Errorf("store: wal record payload truncated")
	}
	want := binary.BigEndian.Uint32(b[total-4 : total])
	if got := crc32.ChecksumIEEE(b[:total-4]); got != want {
		return record{}, 0, fmt.Errorf("store: wal record crc mismatch (got %#x want %#x)", got, want)
	}
	return record{
		lsn:     binary.BigEndian.Uint64(b[4:12]),
		typ:     typ,
		payload: append([]byte(nil), b[recHeaderLen:total-4]...),
	}, total, nil
}

// decodeStream parses consecutive records from a byte stream, returning
// every record before the first torn or corrupt one — the recovery
// contract the fuzz test exercises: a valid prefix always decodes intact,
// whatever garbage follows.
func decodeStream(b []byte) []record {
	var recs []record
	for len(b) > 0 {
		r, n, err := decodeRecord(b)
		if err != nil {
			break
		}
		recs = append(recs, r)
		b = b[n:]
	}
	return recs
}

// wal is the log writer: an append-only sequence of records over dfs
// blocks, one record per block, in numbered segment files under
// <root>/wal-NNNNNN.
type wal struct {
	fs      *dfs.FileSystem
	root    string
	seg     int64 // current segment number
	bytes   int64 // bytes appended to the current segment
	nextLSN uint64
}

func walPath(root string, seg int64) string {
	return fmt.Sprintf("%s/wal-%06d", root, seg)
}

// appendTxn assigns LSNs to the transaction's records, appends each as one
// block and syncs the segment — the fsync-on-commit point. It returns the
// encoded byte count. On any error the transaction is not committed (a
// partial append without a commit record is discarded by recovery).
func (w *wal) appendTxn(recs []record) (int64, error) {
	path := walPath(w.root, w.seg)
	var total int64
	for i := range recs {
		recs[i].lsn = w.nextLSN
		w.nextLSN++
		b := encodeRecord(nil, recs[i])
		if err := w.fs.AppendBlock(path, b); err != nil {
			return total, fmt.Errorf("store: wal append: %w", err)
		}
		total += int64(len(b))
	}
	if err := w.fs.Sync(path); err != nil {
		return total, fmt.Errorf("store: wal sync: %w", err)
	}
	w.bytes += total
	return total, nil
}

// rotate abandons the current segment for a fresh one — called after a
// checkpoint has made the old segment's records redundant and deleted it.
func (w *wal) rotate() {
	w.seg++
	w.bytes = 0
}
