// Package store is the persistent table subsystem: a columnar table store
// on the simulated DFS with a write-ahead log, MVCC row versioning and
// crash recovery — the reproduction's stand-in for the writable data
// sources and Hive metastore the Spark SQL paper assumes around its
// catalog. CREATE/DROP TABLE, INSERT, UPDATE and DELETE commit through the
// WAL (fsync-on-commit); every commit publishes an immutable new table
// version whose InMemoryRelation plugs straight into the catalog, the
// vectorized/fused scan pipelines, the cost-based optimizer and the
// cluster session wire. Recovery replays committed transactions up to the
// last valid LSN; periodic checkpoints bound replay work by materializing
// segments and truncating the log.
package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/row"
	"repro/internal/stats"
	"repro/internal/types"
)

// Options tunes a store.
type Options struct {
	// Root is the dfs namespace prefix (default "store"); it is Protect-ed
	// so spill/temp sweeps can never collect WAL or checkpoint files.
	Root string
	// StatsRefreshRows is the minimum DML row-delta before a commit
	// recomputes optimizer statistics (0 = default 256; negative = never).
	// The effective threshold is max(StatsRefreshRows, liveRows/8): a
	// recompute scans the whole table, so it only fires once the table has
	// drifted proportionally, keeping sustained ingest linear.
	StatsRefreshRows int64
	// CheckpointBytes triggers a checkpoint once the WAL segment exceeds
	// this size (0 = default 4 MB; negative = only explicit Checkpoint).
	CheckpointBytes int64
	// Metrics receives store.* counters (nil = unregistered registry).
	Metrics *metrics.Registry
	// Trace receives WAL commit/checkpoint/recovery spans (nil = none).
	Trace *metrics.TraceBuffer
	// OnChange is the catalog hook: called with the new current version's
	// relation after every commit, and with a nil relation on DROP. Open
	// calls it once per recovered table.
	OnChange func(name string, rel *plan.InMemoryRelation)
}

// TableInfo is the SHOW TABLES / DESCRIBE view of one table: live (not
// stats-epoch) row and byte counts, plus the MVCC version number.
type TableInfo struct {
	Name    string
	Schema  types.StructType
	Version int64
	Rows    int64
	Bytes   int64
}

// Store manages the persistent tables of one engine.
type Store struct {
	// The store mutex serializes writers and catalog publication; readers
	// never take it — they hold immutable version relations.
	mu     sync.Mutex
	fs     *dfs.FileSystem
	root   string
	opts   Options
	wal    *wal
	tables map[string]*Table

	// counters (always non-nil; a fresh registry when Options.Metrics nil)
	commits, aborts, walRecords, walBytes  *metrics.Counter
	checkpoints, replayedTxns, tornRecords *metrics.Counter
	rowsIn, rowsDel, rowsUpd, statsRefresh *metrics.Counter
}

// Open opens (or initializes) a store on fs under opts.Root, running crash
// recovery: load the last checkpoint manifest, then redo-replay committed
// WAL transactions in LSN order up to the last valid record. Uncommitted
// or torn tails are discarded. OnChange fires once per recovered table.
func Open(fs *dfs.FileSystem, opts Options) (*Store, error) {
	if opts.Root == "" {
		opts.Root = "store"
	}
	if opts.StatsRefreshRows == 0 {
		opts.StatsRefreshRows = 256
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = 4 << 20
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	scope := reg.Scoped("store")
	s := &Store{
		fs:           fs,
		root:         opts.Root,
		opts:         opts,
		tables:       map[string]*Table{},
		commits:      scope.Counter("txn.commits"),
		aborts:       scope.Counter("txn.aborts"),
		walRecords:   scope.Counter("wal.records"),
		walBytes:     scope.Counter("wal.bytes"),
		checkpoints:  scope.Counter("checkpoints"),
		replayedTxns: scope.Counter("recovery.replayed_txns"),
		tornRecords:  scope.Counter("recovery.torn_records"),
		rowsIn:       scope.Counter("rows.inserted"),
		rowsDel:      scope.Counter("rows.deleted"),
		rowsUpd:      scope.Counter("rows.updated"),
		statsRefresh: scope.Counter("stats.refreshes"),
	}
	fs.Protect(opts.Root + "/")
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) span(name string, start time.Time, records, bytes int64) {
	if s.opts.Trace == nil {
		return
	}
	s.opts.Trace.Append(metrics.Span{
		Kind:    metrics.SpanWAL,
		Name:    name,
		Start:   metrics.Since(start),
		DurNS:   time.Since(start).Nanoseconds(),
		Records: records,
		Bytes:   bytes,
	})
}

// notify publishes a table's current relation (or its disappearance) to
// the catalog hook. Called with the store mutex held; the hook must not
// call back into the store.
func (s *Store) notify(name string, rel *plan.InMemoryRelation) {
	if s.opts.OnChange != nil {
		s.opts.OnChange(name, rel)
	}
}

// publish builds and installs a new version for t after a committed
// mutation, refreshing optimizer statistics when the row delta since the
// last refresh crosses the threshold.
func (s *Store) publish(t *Table) {
	rows, bytes := t.liveCounts()
	delta := rows - t.statsRows
	if delta < 0 {
		delta = -delta
	}
	// The effective threshold scales with the table: a recompute scans
	// every live row, so refreshing on a fixed delta would make steady
	// ingest quadratic. Requiring ~12.5% drift keeps total stats work
	// linear in rows written while small tables still refresh eagerly.
	threshold := s.opts.StatsRefreshRows
	if prop := rows / 8; prop > threshold {
		threshold = prop
	}
	if t.rel == nil || (s.opts.StatsRefreshRows > 0 && delta >= threshold) {
		s.refreshStatsLocked(t)
	} else {
		// Carry the stats-epoch view forward: the CBO keeps planning with
		// the last collected statistics until the table drifts far enough.
		// ANALYZE TABLE mutations on the previous relation are preserved
		// because relStats is read back from it.
		t.relStats = t.rel.TableStats
		t.relRows = t.rel.RowCount
		t.relBytes = t.rel.SizeInBytes
	}
	_ = bytes
	t.ver++
	t.rel = t.buildRel()
	s.notify(t.Name, t.rel)
}

// refreshStatsLocked recomputes t's optimizer statistics from its live
// rows and resets the drift baseline.
func (s *Store) refreshStatsLocked(t *Table) {
	all := t.allRows()
	st := stats.FromRows(t.Schema, all)
	_, bytes := t.liveCounts()
	st.SizeInBytes = bytes
	t.relStats = st
	t.relRows = int64(len(all))
	t.relBytes = bytes
	t.statsRows = int64(len(all))
	s.statsRefresh.Add(1)
}

// Analyze recomputes a table's statistics immediately (the ANALYZE TABLE
// path) and republishes its relation so queries planned afterwards see
// them.
func (s *Store) Analyze(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("store: unknown table %q", name)
	}
	s.refreshStatsLocked(t)
	t.rel = t.buildRel()
	s.notify(t.Name, t.rel)
	return nil
}

// commit appends the transaction's records plus a commit marker to the
// WAL and syncs — the durability point. It then bumps metrics and, when
// the WAL has grown past the threshold, checkpoints.
func (s *Store) commit(recs []record) error {
	start := time.Now()
	recs = append(recs, record{typ: recCommit})
	n, err := s.wal.appendTxn(recs)
	s.walBytes.Add(n)
	if err != nil {
		s.aborts.Add(1)
		return err
	}
	s.walRecords.Add(int64(len(recs)))
	s.commits.Add(1)
	s.span("wal.commit", start, int64(len(recs)), n)
	return nil
}

// maybeCheckpoint runs a checkpoint when the WAL is past its threshold.
// Called with the mutex held, after the commit has been applied.
func (s *Store) maybeCheckpoint() {
	if s.opts.CheckpointBytes > 0 && s.wal.bytes >= s.opts.CheckpointBytes {
		_ = s.checkpointLocked() // best-effort: the WAL alone is still correct
	}
}

// CreateTable creates a persistent table.
func (s *Store) CreateTable(name string, schema types.StructType, ifNotExists bool) error {
	if len(schema.Fields) == 0 {
		return fmt.Errorf("store: CREATE TABLE %q: no columns", name)
	}
	for _, f := range schema.Fields {
		if _, err := parseTypeName(f.Type.Name()); err != nil {
			return fmt.Errorf("store: CREATE TABLE %q: column %q: %w", name, f.Name, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("store: table %q already exists", name)
	}
	payload, err := encodeCreate(name, schema)
	if err != nil {
		return err
	}
	if err := s.commit([]record{{typ: recCreate, payload: payload}}); err != nil {
		return err
	}
	t := &Table{Name: name, Schema: schema}
	s.tables[name] = t
	s.publish(t)
	s.maybeCheckpoint()
	return nil
}

// DropTable removes a persistent table.
func (s *Store) DropTable(name string, ifExists bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("store: unknown table %q", name)
	}
	payload, err := encodeDrop(name)
	if err != nil {
		return err
	}
	if err := s.commit([]record{{typ: recDrop, payload: payload}}); err != nil {
		return err
	}
	delete(s.tables, name)
	s.notify(name, nil)
	s.maybeCheckpoint()
	return nil
}

// Insert appends rows as one committed transaction and returns the count.
func (s *Store) Insert(name string, data []row.Row) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return 0, fmt.Errorf("store: unknown table %q", name)
	}
	for _, r := range data {
		if err := validateRow(t.Schema, r); err != nil {
			s.aborts.Add(1)
			return 0, err
		}
	}
	if len(data) == 0 {
		return 0, nil
	}
	segID := t.nextSeg
	payload, err := encodeInsert(name, segID, data)
	if err != nil {
		return 0, err
	}
	if err := s.commit([]record{{typ: recInsert, payload: payload}}); err != nil {
		return 0, err
	}
	t.nextSeg++
	t.segs = append(append([]*Segment(nil), t.segs...), newSegment(segID, t.Schema, data))
	s.rowsIn.Add(int64(len(data)))
	s.publish(t)
	s.maybeCheckpoint()
	return int64(len(data)), nil
}

// Delete removes the rows matching pred as one committed transaction and
// returns how many were removed. Affected segments are rewritten
// copy-on-write; untouched segments are shared with the previous version.
func (s *Store) Delete(name string, pred func(row.Row) (bool, error)) (int64, error) {
	return s.mutate(name, func(r row.Row) (row.Row, bool, error) {
		hit, err := pred(r)
		return nil, hit, err
	}, s.rowsDel)
}

// Update rewrites rows through upd, which returns the replacement row and
// whether the row matched, as one committed transaction. Matched rows move
// to a fresh tail segment (a delete+insert in the log), preserving the
// copy-on-write sharing of untouched segments.
func (s *Store) Update(name string, upd func(row.Row) (row.Row, bool, error)) (int64, error) {
	return s.mutate(name, upd, s.rowsUpd)
}

// mutate is the shared DELETE/UPDATE engine: scan every segment, collect
// matched offsets (and, for updates, replacement rows), log one delete
// record per affected segment plus one insert record for replacements,
// commit, then apply the same rewrite in memory.
func (s *Store) mutate(name string, fn func(row.Row) (row.Row, bool, error), counter *metrics.Counter) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return 0, fmt.Errorf("store: unknown table %q", name)
	}

	type rewrite struct {
		seg     *Segment
		offsets []int
		kept    []row.Row
	}
	var rewrites []rewrite
	var replacements []row.Row
	for _, g := range t.segs {
		rows := g.decode()
		var offs []int
		var kept []row.Row
		for i, r := range rows {
			repl, hit, err := fn(r)
			if err != nil {
				s.aborts.Add(1)
				return 0, err
			}
			if !hit {
				kept = append(kept, r)
				continue
			}
			offs = append(offs, i)
			if repl != nil {
				if err := validateRow(t.Schema, repl); err != nil {
					s.aborts.Add(1)
					return 0, err
				}
				replacements = append(replacements, repl)
			}
		}
		if len(offs) > 0 {
			rewrites = append(rewrites, rewrite{seg: g, offsets: offs, kept: kept})
		}
	}
	if len(rewrites) == 0 {
		return 0, nil
	}

	// Build the transaction: segment rewrites, then the replacement-row
	// insert, with new segment IDs assigned in scan order (recovery replay
	// reassigns identically).
	nextSeg := t.nextSeg
	var recs []record
	newIDs := make(map[*Segment]int64, len(rewrites))
	var matched int64
	for _, rw := range rewrites {
		matched += int64(len(rw.offsets))
		newID := int64(-1)
		if len(rw.kept) > 0 {
			newID = nextSeg
			nextSeg++
		}
		newIDs[rw.seg] = newID
		payload, err := encodeDelete(name, rw.seg.ID, newID, rw.offsets)
		if err != nil {
			return 0, err
		}
		recs = append(recs, record{typ: recDelete, payload: payload})
	}
	var replSeg int64 = -1
	if len(replacements) > 0 {
		replSeg = nextSeg
		nextSeg++
		payload, err := encodeInsert(name, replSeg, replacements)
		if err != nil {
			return 0, err
		}
		recs = append(recs, record{typ: recInsert, payload: payload})
	}
	if err := s.commit(recs); err != nil {
		return 0, err
	}

	// Apply copy-on-write: rebuild the segment list sharing untouched
	// segments, rewriting affected ones, appending replacements.
	segs := make([]*Segment, 0, len(t.segs)+1)
	byID := make(map[int64]rewrite, len(rewrites))
	for _, rw := range rewrites {
		byID[rw.seg.ID] = rw
	}
	for _, g := range t.segs {
		rw, hit := byID[g.ID]
		if !hit {
			segs = append(segs, g)
			continue
		}
		if id := newIDs[rw.seg]; id >= 0 {
			segs = append(segs, newSegment(id, t.Schema, rw.kept))
		}
	}
	if replSeg >= 0 {
		segs = append(segs, newSegment(replSeg, t.Schema, replacements))
	}
	t.segs = segs
	t.nextSeg = nextSeg
	counter.Add(matched)
	s.publish(t)
	s.maybeCheckpoint()
	return matched, nil
}

// Snapshot returns the current version's relation — the immutable plan
// leaf a query pins — or nil for unknown tables.
func (s *Store) Snapshot(name string) *plan.InMemoryRelation {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[name]; ok {
		return t.rel
	}
	return nil
}

// Has reports whether name is a persistent table.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.tables[name]
	return ok
}

// Info returns one table's SHOW TABLES/DESCRIBE view.
func (s *Store) Info(name string) (TableInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return TableInfo{}, false
	}
	return s.infoLocked(t), true
}

func (s *Store) infoLocked(t *Table) TableInfo {
	rows, bytes := t.liveCounts()
	return TableInfo{Name: t.Name, Schema: t.Schema, Version: t.ver, Rows: rows, Bytes: bytes}
}

// Tables lists every persistent table, sorted by name.
func (s *Store) Tables() []TableInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TableInfo, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, s.infoLocked(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Checkpoint materializes every table's segments, writes a new manifest,
// swaps CURRENT and truncates the WAL — bounding recovery replay.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// Close syncs durable state. The store needs no explicit shutdown beyond
// the file system's own Close; this is a convenience for symmetric defers.
func (s *Store) Close() error { return s.fs.Close() }

// ---------------------------------------------------------------------------
// Checkpoint + manifest

// manifest is the JSON checkpoint descriptor; CURRENT points at the live
// one. Statistics are not persisted — recovery recomputes them, which it
// can afford because it has just decoded every row anyway.
type manifest struct {
	Ckpt    int64           `json:"ckpt"`
	LastLSN uint64          `json:"last_lsn"`
	WALSeg  int64           `json:"wal_seg"`
	Tables  []manifestTable `json:"tables"`
}

type manifestTable struct {
	Name    string        `json:"name"`
	Version int64         `json:"version"`
	NextSeg int64         `json:"next_seg"`
	Cols    []manifestCol `json:"cols"`
	Segs    []manifestSeg `json:"segs"`
}

type manifestCol struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Nullable bool   `json:"nullable"`
}

type manifestSeg struct {
	ID   int64  `json:"id"`
	File string `json:"file"`
	Rows int64  `json:"rows"`
}

func (s *Store) ckptDir(ckpt int64) string  { return fmt.Sprintf("%s/ckpt-%06d", s.root, ckpt) }
func (s *Store) manifestPath(n int64) string { return fmt.Sprintf("%s/manifest-%06d", s.root, n) }
func (s *Store) currentPath() string         { return s.root + "/CURRENT" }

// checkpointLocked writes segments and manifest for a new checkpoint id,
// atomically swaps CURRENT, then deletes the previous checkpoint and the
// now-redundant WAL segments. A crash at any step leaves either the old or
// the new checkpoint fully intact.
func (s *Store) checkpointLocked() error {
	start := time.Now()
	ckpt := s.wal.seg + 1 // monotonically unique: one checkpoint per WAL rotation
	m := manifest{Ckpt: ckpt, LastLSN: s.wal.nextLSN - 1, WALSeg: ckpt}
	var bytes int64
	for _, name := range s.tableNamesLocked() {
		t := s.tables[name]
		mt := manifestTable{Name: t.Name, Version: t.ver, NextSeg: t.nextSeg}
		for _, f := range t.Schema.Fields {
			mt.Cols = append(mt.Cols, manifestCol{Name: f.Name, Type: f.Type.Name(), Nullable: f.Nullable})
		}
		for _, g := range t.segs {
			file := fmt.Sprintf("%s/%s/seg-%06d", s.ckptDir(ckpt), t.Name, g.ID)
			var blocks [][]byte
			for _, b := range g.Batches {
				rows := make([]row.Row, 0, b.NumRows)
				for i := 0; i < b.NumRows; i++ {
					rows = append(rows, b.Row(i))
				}
				enc, err := row.EncodeRows(rows)
				if err != nil {
					return fmt.Errorf("store: checkpoint %q: %w", t.Name, err)
				}
				blocks = append(blocks, enc)
				bytes += int64(len(enc))
			}
			if err := s.fs.Write(file, blocks); err != nil {
				return fmt.Errorf("store: checkpoint %q: %w", t.Name, err)
			}
			mt.Segs = append(mt.Segs, manifestSeg{ID: g.ID, File: file, Rows: g.Rows})
		}
		m.Tables = append(m.Tables, mt)
	}
	enc, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := s.fs.Write(s.manifestPath(ckpt), [][]byte{enc}); err != nil {
		return err
	}
	// The commit point: CURRENT now names the new manifest.
	if err := s.fs.Write(s.currentPath(), [][]byte{[]byte(s.manifestPath(ckpt))}); err != nil {
		return err
	}
	// Garbage-collect superseded state. These sweeps are rooted inside the
	// protected namespace, so they are allowed; a crash before them only
	// leaves dead files that the next checkpoint's sweep removes.
	for _, p := range s.fs.List(s.root + "/ckpt-") {
		if len(p) >= len(s.ckptDir(ckpt)) && p[:len(s.ckptDir(ckpt))] == s.ckptDir(ckpt) {
			continue
		}
		s.fs.Delete(p)
	}
	for _, p := range s.fs.List(s.root + "/manifest-") {
		if p != s.manifestPath(ckpt) {
			s.fs.Delete(p)
		}
	}
	for _, p := range s.fs.List(s.root + "/wal-") {
		s.fs.Delete(p)
	}
	s.wal.seg = ckpt
	s.wal.bytes = 0
	s.checkpoints.Add(1)
	s.span("wal.checkpoint", start, int64(len(m.Tables)), bytes)
	return nil
}

func (s *Store) tableNamesLocked() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
