// Crash recovery: rebuild the store from its last checkpoint plus a redo
// replay of the WAL. Replay applies only transactions whose commit record
// made it to the log intact, in LSN order, and stops at the first torn or
// corrupt record — everything after it is by definition uncommitted.
// Replay runs the same apply functions live commits use, so a recovered
// store is bit-for-bit the state a clean shutdown would have left.
package store

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/row"
	"repro/internal/types"
)

// recover loads the checkpoint named by CURRENT (if any), replays the WAL
// past the checkpoint's LSN, and publishes every surviving table.
func (s *Store) recover() error {
	start := time.Now()
	var last manifest
	if s.fs.Exists(s.currentPath()) {
		blocks, err := s.fs.Read(s.currentPath())
		if err != nil || len(blocks) == 0 {
			return fmt.Errorf("store: reading CURRENT: %w", err)
		}
		mblocks, err := s.fs.Read(string(blocks[0]))
		if err != nil || len(mblocks) == 0 {
			return fmt.Errorf("store: reading manifest %q: %w", blocks[0], err)
		}
		if err := json.Unmarshal(mblocks[0], &last); err != nil {
			return fmt.Errorf("store: decoding manifest: %w", err)
		}
		if err := s.loadCheckpoint(last); err != nil {
			return err
		}
	}
	s.wal = &wal{fs: s.fs, root: s.root, seg: last.WALSeg, nextLSN: last.LastLSN + 1}
	if s.wal.nextLSN == 0 {
		s.wal.nextLSN = 1
	}

	replayed, torn, err := s.replayWAL(last.LastLSN)
	if err != nil {
		return err
	}
	s.replayedTxns.Add(int64(replayed))
	s.tornRecords.Add(int64(torn))

	// Publish recovered tables: fresh statistics (the rows were just
	// decoded anyway) and one catalog notification each.
	for _, name := range s.tableNamesLocked() {
		t := s.tables[name]
		s.refreshStatsLocked(t)
		t.rel = t.buildRel()
		s.notify(t.Name, t.rel)
	}
	s.span("wal.recover", start, int64(replayed), 0)
	return nil
}

// loadCheckpoint rebuilds tables and segments from manifest files.
func (s *Store) loadCheckpoint(m manifest) error {
	for _, mt := range m.Tables {
		fields := make([]types.StructField, 0, len(mt.Cols))
		for _, c := range mt.Cols {
			dt, err := parseTypeName(c.Type)
			if err != nil {
				return fmt.Errorf("store: manifest table %q: %w", mt.Name, err)
			}
			fields = append(fields, types.StructField{Name: c.Name, Type: dt, Nullable: c.Nullable})
		}
		t := &Table{
			Name:    mt.Name,
			Schema:  types.StructType{Fields: fields},
			ver:     mt.Version,
			nextSeg: mt.NextSeg,
		}
		for _, ms := range mt.Segs {
			blocks, err := s.fs.Read(ms.File)
			if err != nil {
				return fmt.Errorf("store: segment %q: %w", ms.File, err)
			}
			var rows []row.Row
			for _, b := range blocks {
				rs, err := row.DecodeRows(b)
				if err != nil {
					return fmt.Errorf("store: segment %q: %w", ms.File, err)
				}
				rows = append(rows, rs...)
			}
			if int64(len(rows)) != ms.Rows {
				return fmt.Errorf("store: segment %q: %d rows, manifest says %d", ms.File, len(rows), ms.Rows)
			}
			t.segs = append(t.segs, newSegment(ms.ID, t.Schema, rows))
		}
		s.tables[mt.Name] = t
	}
	return nil
}

// walSegments lists WAL files in segment order (names embed a zero-padded
// number, but parse it anyway rather than trusting lexicographic order).
func (s *Store) walSegments() []string {
	paths := s.fs.List(s.root + "/wal-")
	type numbered struct {
		path string
		n    int64
	}
	var segs []numbered
	for _, p := range paths {
		num := p[strings.LastIndex(p, "-")+1:]
		n, err := strconv.ParseInt(num, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, numbered{p, n})
	}
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].n < segs[j-1].n; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	out := make([]string, len(segs))
	for i, g := range segs {
		out[i] = g.path
	}
	return out
}

// replayWAL redoes committed transactions with LSN > afterLSN. It returns
// the replayed-transaction count and how many trailing records were
// dropped as torn/uncommitted. Scanning stops at the first invalid record:
// the log's contract is that nothing after it was acknowledged.
func (s *Store) replayWAL(afterLSN uint64) (replayed, dropped int, err error) {
	var pending []record // records of the current (uncommitted) transaction
	var lastLSN uint64
	segs := s.walSegments()
	// Position just past the last valid commit record; everything after it
	// is torn or uncommitted and must be truncated away, or a future
	// transaction's commit marker would resurrect the dead records.
	cutSeg, cutBlk := -1, 0
	scan := true
	for si, path := range segs {
		if !scan {
			break
		}
		blocks, rerr := s.fs.Read(path)
		if rerr != nil {
			return replayed, dropped, fmt.Errorf("store: replay %q: %w", path, rerr)
		}
		for bi, b := range blocks {
			rec, n, derr := decodeRecord(b)
			if derr != nil || n != len(b) {
				dropped++
				scan = false
				break
			}
			if rec.lsn > lastLSN {
				lastLSN = rec.lsn
			}
			if rec.typ == recCommit {
				cutSeg, cutBlk = si, bi+1
			}
			if rec.lsn <= afterLSN {
				continue // already in the checkpoint
			}
			if rec.typ != recCommit {
				pending = append(pending, rec)
				continue
			}
			if aerr := s.applyTxn(pending); aerr != nil {
				return replayed, dropped, aerr
			}
			replayed++
			pending = pending[:0]
		}
	}
	dropped += len(pending) // trailing records with no commit: uncommitted
	// Truncate the dead tail: whole segments past the cut, then the cut
	// segment's trailing blocks (an atomic rewrite in durable mode).
	for si := len(segs) - 1; si > cutSeg; si-- {
		s.fs.Delete(segs[si])
	}
	if cutSeg >= 0 {
		blocks, rerr := s.fs.Read(segs[cutSeg])
		if rerr == nil && cutBlk < len(blocks) {
			if werr := s.fs.Write(segs[cutSeg], blocks[:cutBlk]); werr != nil {
				return replayed, dropped, fmt.Errorf("store: truncating %q: %w", segs[cutSeg], werr)
			}
		}
	}
	if lastLSN >= s.wal.nextLSN {
		s.wal.nextLSN = lastLSN + 1
	}
	return replayed, dropped, nil
}

// applyTxn redoes one committed transaction's records against the
// in-memory state — the same mutations the live commit paths perform,
// including identical new-segment ID assignment. Each surviving table a
// transaction touched gets one version bump, mirroring the live publish.
func (s *Store) applyTxn(recs []record) error {
	touched := map[string]bool{}
	for _, rec := range recs {
		switch rec.typ {
		case recCreate:
			name, schema, err := decodeCreate(rec.payload)
			if err != nil {
				return err
			}
			s.tables[name] = &Table{Name: name, Schema: schema}
			touched[name] = true
		case recDrop:
			name, err := decodeDrop(rec.payload)
			if err != nil {
				return err
			}
			delete(s.tables, name)
		case recInsert:
			name, segID, rows, err := decodeInsert(rec.payload)
			if err != nil {
				return err
			}
			t, ok := s.tables[name]
			if !ok {
				return fmt.Errorf("store: replay insert into unknown table %q", name)
			}
			t.segs = append(t.segs, newSegment(segID, t.Schema, rows))
			if segID >= t.nextSeg {
				t.nextSeg = segID + 1
			}
			touched[name] = true
		case recDelete:
			name, oldID, newID, offsets, err := decodeDelete(rec.payload)
			if err != nil {
				return err
			}
			t, ok := s.tables[name]
			if !ok {
				return fmt.Errorf("store: replay delete on unknown table %q", name)
			}
			if err := t.applyDelete(oldID, newID, offsets); err != nil {
				return err
			}
			if newID >= t.nextSeg {
				t.nextSeg = newID + 1
			}
			touched[name] = true
		}
	}
	for name := range touched {
		if t, ok := s.tables[name]; ok {
			t.ver++
		}
	}
	return nil
}

// applyDelete rewrites segment oldID without the rows at offsets; the
// survivors become segment newID (none survive when newID is -1).
func (t *Table) applyDelete(oldID, newID int64, offsets []int) error {
	for i, g := range t.segs {
		if g.ID != oldID {
			continue
		}
		rows := g.decode()
		drop := make(map[int]bool, len(offsets))
		for _, o := range offsets {
			if o < 0 || o >= len(rows) {
				return fmt.Errorf("store: replay delete offset %d out of range (segment %d has %d rows)", o, oldID, len(rows))
			}
			drop[o] = true
		}
		var kept []row.Row
		for j, r := range rows {
			if !drop[j] {
				kept = append(kept, r)
			}
		}
		if newID < 0 {
			t.segs = append(append([]*Segment(nil), t.segs[:i]...), t.segs[i+1:]...)
		} else {
			segs := append([]*Segment(nil), t.segs...)
			segs[i] = newSegment(newID, t.Schema, kept)
			t.segs = segs
		}
		return nil
	}
	return fmt.Errorf("store: replay delete: unknown segment %d", oldID)
}
