package store

import (
	"bytes"
	"testing"

	"repro/internal/dfs"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []record{
		{lsn: 1, typ: recCreate, payload: []byte("create")},
		{lsn: 2, typ: recInsert, payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{lsn: 3, typ: recCommit, payload: nil},
	}
	var stream []byte
	for _, r := range recs {
		stream = encodeRecord(stream, r)
	}
	got := decodeStream(stream)
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.lsn != recs[i].lsn || r.typ != recs[i].typ || !bytes.Equal(r.payload, recs[i].payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, recs[i])
		}
	}
}

// TestDecodeStreamStopsAtCorruption: the valid prefix always survives,
// whatever happens to the tail — truncation, bit flips, garbage.
func TestDecodeStreamStopsAtCorruption(t *testing.T) {
	var stream []byte
	for lsn := uint64(1); lsn <= 5; lsn++ {
		stream = encodeRecord(stream, record{lsn: lsn, typ: recInsert, payload: []byte("payload")})
	}
	recLen := len(stream) / 5

	// Truncate at every byte boundary of the last record: records 1..4 always decode.
	for cut := len(stream) - recLen + 1; cut < len(stream); cut++ {
		got := decodeStream(stream[:cut])
		if len(got) != 4 {
			t.Fatalf("truncated at %d: decoded %d records, want 4", cut, len(got))
		}
	}
	// Flip one byte in the middle record: records 1..2 survive, nothing after.
	for off := 2 * recLen; off < 3*recLen; off += 3 {
		mut := append([]byte(nil), stream...)
		mut[off] ^= 0x01
		got := decodeStream(mut)
		if len(got) > 2 {
			t.Fatalf("flip at %d: decoded %d records past the corruption", off, len(got))
		}
	}
}

func TestWALAppendAssignsLSNs(t *testing.T) {
	fs := dfs.New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	w := &wal{fs: fs, root: "store", nextLSN: 1}
	if _, err := w.appendTxn([]record{{typ: recCreate}, {typ: recCommit}}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.appendTxn([]record{{typ: recInsert}, {typ: recCommit}}); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Read(walPath("store", 0))
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1)
	for _, b := range blocks {
		rec, n, err := decodeRecord(b)
		if err != nil || n != len(b) {
			t.Fatalf("block decode: %v", err)
		}
		if rec.lsn != want {
			t.Fatalf("lsn = %d, want %d", rec.lsn, want)
		}
		want++
	}
	if w.nextLSN != 5 {
		t.Fatalf("nextLSN = %d, want 5", w.nextLSN)
	}
}
