package memdb

import (
	"strings"
	"testing"

	"repro/internal/datasource"
	"repro/internal/row"
	"repro/internal/types"
)

func testDB() *Database {
	db := New()
	schema := types.StructType{}.
		Add("id", types.Long, false).
		Add("name", types.String, false).
		Add("score", types.Int, false)
	db.CreateTable("people", schema, []row.Row{
		{int64(1), "alice", int32(90)},
		{int64(2), "bob", int32(40)},
		{int64(3), "carol", int32(75)},
	})
	return db
}

func TestQueryProjectionAndFilters(t *testing.T) {
	db := testDB()
	rows, err := db.Query("people", []string{"name"}, []datasource.Filter{
		datasource.GreaterThan{Col: "score", Value: int32(50)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if db.QueriesRun() != 1 {
		t.Fatalf("queries = %d", db.QueriesRun())
	}
	if got := db.QueryLog()[0]; !strings.Contains(got, "WHERE score > 50") {
		t.Fatalf("query log = %q", got)
	}
}

func TestTransferMetering(t *testing.T) {
	db := testDB()
	db.Query("people", []string{"id", "name", "score"}, nil)
	all := db.BytesTransferred()
	db.ResetMeter()
	db.Query("people", []string{"id"}, nil)
	narrow := db.BytesTransferred()
	if narrow >= all {
		t.Fatalf("projection should shrink transfer: %d vs %d", narrow, all)
	}
	db.ResetMeter()
	db.Query("people", []string{"id"}, []datasource.Filter{
		datasource.EqualTo{Col: "id", Value: int64(1)},
	})
	if filtered := db.BytesTransferred(); filtered >= narrow {
		t.Fatalf("filters should shrink transfer further: %d vs %d", filtered, narrow)
	}
}

func TestQueryErrors(t *testing.T) {
	db := testDB()
	if _, err := db.Query("nope", []string{"id"}, nil); err == nil {
		t.Fatal("missing table must fail")
	}
	if _, err := db.Query("people", []string{"zzz"}, nil); err == nil {
		t.Fatal("missing column must fail")
	}
}

func TestRelationAdapter(t *testing.T) {
	db := testDB()
	rel, err := NewRelation(db, "people", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Schema().Fields) != 3 {
		t.Fatalf("schema = %v", rel.Schema().FieldNames())
	}
	if rel.SizeInBytes() <= 0 {
		t.Fatal("size estimate required (broadcast cost model)")
	}
	filters := []datasource.Filter{datasource.GreaterThan{Col: "score", Value: int32(50)}}
	scan, err := rel.ScanPrunedFiltered([]string{"name"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	rows := scan.Partition(0)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if len(rel.HandledFilters(filters)) != 1 {
		t.Fatal("pushdown-enabled relation handles filters exactly")
	}

	// Pushdown disabled: filters are not shipped and not handled.
	noPush, _ := NewRelation(db, "people", false)
	if len(noPush.HandledFilters(filters)) != 0 {
		t.Fatal("pushdown-disabled relation handles nothing")
	}
	scan, _ = noPush.ScanPrunedFiltered([]string{"name"}, filters)
	if got := scan.Partition(0); len(got) != 3 {
		t.Fatalf("without pushdown all rows cross the link: %v", got)
	}
}

func TestProvider(t *testing.T) {
	db := testDB()
	p := Provider(db)
	if _, err := p.CreateRelation(map[string]string{}); err == nil {
		t.Fatal("missing table option must fail")
	}
	rel, err := p.CreateRelation(map[string]string{"table": "people"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Schema().Fields) != 3 {
		t.Fatal("provider wiring broken")
	}
}

func TestShardedScan(t *testing.T) {
	db := New()
	schema := types.StructType{}.
		Add("id", types.Long, false).
		Add("v", types.Int, false)
	rows := make([]row.Row, 100)
	for i := range rows {
		rows[i] = row.Row{int64(i), int32(i % 10)}
	}
	db.CreateTable("big", schema, rows)

	rel, err := Provider(db).CreateRelation(map[string]string{
		"table": "big", "shardcolumn": "id", "numshards": "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := rel.(*Relation).ScanPrunedFiltered([]string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scan.NumPartitions != 4 {
		t.Fatalf("shards = %d", scan.NumPartitions)
	}
	seen := map[int64]bool{}
	for p := 0; p < 4; p++ {
		part := scan.Partition(p)
		if len(part) == 0 {
			t.Fatalf("shard %d empty", p)
		}
		for _, r := range part {
			id := r[0].(int64)
			if seen[id] {
				t.Fatalf("row %d served by two shards", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("shards cover %d rows", len(seen))
	}
	// One range query per shard reached the database.
	if db.QueriesRun() != 4 {
		t.Fatalf("remote queries = %d", db.QueriesRun())
	}
	// Shard ranges combine with user filters.
	scan, _ = rel.(*Relation).ScanPrunedFiltered([]string{"id"}, []datasource.Filter{
		datasource.EqualTo{Col: "v", Value: int32(3)},
	})
	total := 0
	for p := 0; p < scan.NumPartitions; p++ {
		total += len(scan.Partition(p))
	}
	if total != 10 {
		t.Fatalf("filtered sharded rows = %d", total)
	}
	// Invalid shard configuration errors.
	if _, err := Provider(db).CreateRelation(map[string]string{
		"table": "big", "shardcolumn": "id", "numshards": "zero",
	}); err == nil {
		t.Fatal("bad numshards must fail")
	}
	if rel, _ := NewRelation(db, "big", true); rel != nil {
		rel.ShardColumn = "nope"
		rel.NumShards = 2
		if _, err := rel.ScanPrunedFiltered([]string{"id"}, nil); err == nil {
			t.Fatal("unknown shard column must fail")
		}
	}
}
