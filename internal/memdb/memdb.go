// Package memdb is an embedded miniature RDBMS standing in for the MySQL
// behind the paper's JDBC federation example (§5.3). It owns its tables,
// evaluates pushed-down column lists and predicates with its own scan
// engine, and meters every byte that crosses the simulated network link —
// so the federation experiments can show how predicate pushdown reduces
// the data transferred, exactly the effect the paper describes.
package memdb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/datasource"
	"repro/internal/row"
	"repro/internal/types"
)

// Database is a named collection of tables plus a transfer meter.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table

	bytesTransferred atomic.Int64
	queriesRun       atomic.Int64
	queryLog         []string
	logMu            sync.Mutex
}

// Table is schema + rows.
type Table struct {
	Schema types.StructType
	Rows   []row.Row
}

// New creates an empty database.
func New() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// CreateTable registers a table.
func (db *Database) CreateTable(name string, schema types.StructType, rows []row.Row) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[strings.ToLower(name)] = &Table{Schema: schema, Rows: rows}
}

// BytesTransferred reports bytes shipped over the simulated link.
func (db *Database) BytesTransferred() int64 { return db.bytesTransferred.Load() }

// ResetMeter zeroes the transfer meter.
func (db *Database) ResetMeter() { db.bytesTransferred.Store(0) }

// QueriesRun reports remote queries executed.
func (db *Database) QueriesRun() int64 { return db.queriesRun.Load() }

// QueryLog returns the remote queries the database served — the analogue
// of the paper's "the JDBC data source will run the following query on
// MySQL" illustration.
func (db *Database) QueryLog() []string {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	return append([]string(nil), db.queryLog...)
}

// Query is the wire-protocol entry point: it projects columns, applies
// filters server-side with the database's own engine, and meters the
// result bytes as they cross the link.
func (db *Database) Query(table string, columns []string, filters []datasource.Filter) ([]row.Row, error) {
	db.mu.RLock()
	t, ok := db.tables[strings.ToLower(table)]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("memdb: no such table %q", table)
	}
	db.queriesRun.Add(1)
	db.logQuery(table, columns, filters)

	ords := make([]int, len(columns))
	for i, c := range columns {
		j := t.Schema.FieldIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("memdb: no column %q in %q", c, table)
		}
		ords[i] = j
	}
	var out []row.Row
	var transferred int64
	for _, r := range t.Rows {
		if !datasource.ApplyFilters(filters, t.Schema, r) {
			continue
		}
		proj := make(row.Row, len(ords))
		for i, j := range ords {
			proj[i] = r[j]
		}
		out = append(out, proj)
		transferred += proj.FlatSize()
	}
	db.bytesTransferred.Add(transferred)
	return out, nil
}

func (db *Database) logQuery(table string, columns []string, filters []datasource.Filter) {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(strings.Join(columns, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(table)
	if len(filters) > 0 {
		sb.WriteString(" WHERE ")
		parts := make([]string, len(filters))
		for i, f := range filters {
			parts[i] = f.String()
		}
		sb.WriteString(strings.Join(parts, " AND "))
	}
	db.logMu.Lock()
	db.queryLog = append(db.queryLog, sb.String())
	db.logMu.Unlock()
}

// ---------------------------------------------------------------------------
// Data source adapter (the "JDBC data source" of §5.3)

// Relation adapts one memdb table to the Spark SQL data source API using
// PrunedFilteredScan: both requested columns and simple predicates are
// shipped to the database. Filters are exact (the database evaluates them
// fully), so the engine drops residual predicates.
type Relation struct {
	DB    *Database
	Table string
	// Pushdown disables filter shipping when false — the federation
	// ablation's baseline (all rows cross the link).
	Pushdown bool
	// ShardColumn/NumShards enable the paper's footnote-8 sharding: the
	// source table is split by ranges of a column and read over parallel
	// connections, one remote query per shard.
	ShardColumn string
	NumShards   int
	schema      types.StructType
}

var (
	_ datasource.PrunedFilteredScan = (*Relation)(nil)
	_ datasource.SizedRelation      = (*Relation)(nil)
	_ datasource.InsertableRelation = (*Relation)(nil)
)

// NewRelation builds an adapter for a table.
func NewRelation(db *Database, table string, pushdown bool) (*Relation, error) {
	db.mu.RLock()
	t, ok := db.tables[strings.ToLower(table)]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("memdb: no such table %q", table)
	}
	return &Relation{DB: db, Table: table, Pushdown: pushdown, schema: t.Schema}, nil
}

// Provider exposes memdb tables under USING jdbc semantics. Options:
//
//	table       (required) remote table name
//	pushdown    "false" to disable predicate pushdown (default true)
//	shardcolumn optional numeric column to shard ranges of (footnote 8)
//	numshards   shard/connection count (default 4 when sharding)
func Provider(db *Database) datasource.Provider {
	return datasource.ProviderFunc(func(options map[string]string) (datasource.Relation, error) {
		table := options["table"]
		if table == "" {
			return nil, fmt.Errorf("memdb: missing required option 'table'")
		}
		rel, err := NewRelation(db, table, options["pushdown"] != "false")
		if err != nil {
			return nil, err
		}
		if col := options["shardcolumn"]; col != "" {
			rel.ShardColumn = col
			rel.NumShards = 4
			if n := options["numshards"]; n != "" {
				if _, err := fmt.Sscanf(n, "%d", &rel.NumShards); err != nil || rel.NumShards < 1 {
					return nil, fmt.Errorf("memdb: invalid numshards %q", n)
				}
			}
		}
		return rel, nil
	})
}

// Schema implements datasource.Relation.
func (r *Relation) Schema() types.StructType { return r.schema }

// SizeInBytes implements datasource.SizedRelation: ask the remote database
// for an estimate (paper §4.4.1: "a data source representing MySQL may ...
// ask MySQL for an estimate of the table size").
func (r *Relation) SizeInBytes() int64 {
	r.DB.mu.RLock()
	defer r.DB.mu.RUnlock()
	t := r.DB.tables[strings.ToLower(r.Table)]
	var n int64
	for _, rr := range t.Rows {
		n += rr.FlatSize()
	}
	return n
}

// HandledFilters implements datasource.ExactFilterScan when pushdown is on.
func (r *Relation) HandledFilters(filters []datasource.Filter) []datasource.Filter {
	if !r.Pushdown {
		return nil
	}
	return filters
}

// Insert implements datasource.InsertableRelation: partitioned rows are
// appended to the remote table over the metered link (paper §4.4.1:
// "similar interfaces exist for writing data to an existing or new table").
func (r *Relation) Insert(partitions [][]row.Row) error {
	db := r.DB
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(r.Table)]
	if !ok {
		return fmt.Errorf("memdb: no such table %q", r.Table)
	}
	var transferred int64
	for _, part := range partitions {
		for _, rr := range part {
			if len(rr) != len(t.Schema.Fields) {
				return fmt.Errorf("memdb: row arity %d does not match table %q (%d columns)",
					len(rr), r.Table, len(t.Schema.Fields))
			}
			t.Rows = append(t.Rows, rr.Copy())
			transferred += rr.FlatSize()
		}
	}
	db.bytesTransferred.Add(transferred)
	return nil
}

// ScanPrunedFiltered implements datasource.PrunedFilteredScan. Without
// sharding, one remote connection fetches everything; with sharding, each
// partition issues a range query on the shard column over its own
// connection (paper footnote 8: "reading different ranges of it in
// parallel").
func (r *Relation) ScanPrunedFiltered(columns []string, filters []datasource.Filter) (datasource.Scan, error) {
	if !r.Pushdown {
		filters = nil
	}
	table, cols, db := r.Table, columns, r.DB
	if r.ShardColumn == "" || r.NumShards <= 1 {
		return datasource.Scan{
			NumPartitions: 1, // one remote connection
			Partition: func(p int) []row.Row {
				rows, err := db.Query(table, cols, filters)
				if err != nil {
					panic(fmt.Sprintf("memdb: %v", err))
				}
				return rows
			},
		}, nil
	}
	lo, hi, err := db.columnRange(table, r.ShardColumn)
	if err != nil {
		return datasource.Scan{}, err
	}
	shardCol := r.ShardColumn
	n := r.NumShards
	span := hi - lo + 1
	return datasource.Scan{
		NumPartitions: n,
		Partition: func(p int) []row.Row {
			from := lo + span*int64(p)/int64(n)
			to := lo + span*int64(p+1)/int64(n)
			shardFilters := append([]datasource.Filter{
				datasource.GreaterOrEqual{Col: shardCol, Value: from},
				datasource.LessThan{Col: shardCol, Value: to},
			}, filters...)
			rows, err := db.Query(table, cols, shardFilters)
			if err != nil {
				panic(fmt.Sprintf("memdb: %v", err))
			}
			return rows
		},
	}, nil
}

// columnRange asks the database for min/max of a BIGINT column — the
// range-discovery query a sharding JDBC source issues.
func (db *Database) columnRange(table, col string) (lo, hi int64, err error) {
	db.mu.RLock()
	t, ok := db.tables[strings.ToLower(table)]
	db.mu.RUnlock()
	if !ok {
		return 0, 0, fmt.Errorf("memdb: no such table %q", table)
	}
	j := t.Schema.FieldIndex(col)
	if j < 0 {
		return 0, 0, fmt.Errorf("memdb: no column %q to shard by", col)
	}
	first := true
	for _, r := range t.Rows {
		v, ok := r[j].(int64)
		if !ok {
			return 0, 0, fmt.Errorf("memdb: shard column %q must be BIGINT", col)
		}
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	return lo, hi, nil
}
