package dfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestProtectSurvivesSpillSweep is the regression test for the namespace
// split between spill scratch and durable store paths: a broad spill/temp
// cleanup sweep must not collect WAL segments under a protected prefix,
// while the store's own maintenance sweeps inside the namespace still work.
func TestProtectSurvivesSpillSweep(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	fs.Protect("store/")

	mustAppend := func(path string) {
		t.Helper()
		if err := fs.AppendBlock(path, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend("store/wal-1")
	mustAppend("store/data/kv/seg-1")
	mustAppend("/spill/sort-1/run-0")
	mustAppend("/tmp/scratch-1")

	// Sweeps rooted outside the store namespace — including the broadest
	// possible ones — must leave store files alone.
	for _, sweep := range []string{"/spill/", "/tmp/", "/", ""} {
		fs.DeletePrefix(sweep)
	}
	for _, p := range []string{"store/wal-1", "store/data/kv/seg-1"} {
		if !fs.Exists(p) {
			t.Fatalf("protected file %q deleted by spill/temp sweep", p)
		}
	}
	if fs.Exists("/spill/sort-1/run-0") || fs.Exists("/tmp/scratch-1") {
		t.Fatal("scratch files survived their own sweep")
	}

	// The store's own maintenance is rooted inside the namespace and works.
	if n := fs.DeletePrefix("store/wal"); n != 1 {
		t.Fatalf("store-rooted sweep removed %d files, want 1", n)
	}
	// Exact-path deletes are deliberate and always honored.
	fs.Delete("store/data/kv/seg-1")
	if fs.Exists("store/data/kv/seg-1") {
		t.Fatal("exact Delete did not remove protected file")
	}
}

// TestTempPathSkipsExisting: the temp sequence restarts with the process,
// so TempPath must skip paths already present rather than hand out a name
// that collides with a survivor.
func TestTempPathSkipsExisting(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	if err := fs.AppendBlock("/tmp/run-1", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendBlock("/tmp/run-2", []byte("old")); err != nil {
		t.Fatal(err)
	}
	p := fs.TempPath("run")
	if p == "/tmp/run-1" || p == "/tmp/run-2" {
		t.Fatalf("TempPath returned existing path %q", p)
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendBlock("store/wal-1", []byte("rec1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendBlock("store/wal-1", []byte("rec2")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("store/CURRENT", [][]byte{[]byte("manifest-1")}); err != nil {
		t.Fatal(err)
	}
	// Scratch namespaces never reach the disk.
	if err := fs.AppendBlock("/tmp/scratch-1", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendBlock("/spill/agg-1/p0", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync("store/wal-1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := re.Read("store/wal-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || !bytes.Equal(blocks[0], []byte("rec1")) || !bytes.Equal(blocks[1], []byte("rec2")) {
		t.Fatalf("reopened WAL blocks = %q", blocks)
	}
	cur, err := re.Read("store/CURRENT")
	if err != nil {
		t.Fatal(err)
	}
	if string(cur[0]) != "manifest-1" {
		t.Fatalf("CURRENT = %q", cur[0])
	}
	if re.Exists("/tmp/scratch-1") || re.Exists("/spill/agg-1/p0") {
		t.Fatal("memory-only namespace leaked to disk")
	}
}

// TestDurableTornTail: a crash mid-append leaves a partial frame at the
// tail of a mirrored file; reopening must keep every complete block and
// drop only the torn one.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"alpha", "beta", "gamma"} {
		if err := fs.AppendBlock("store/wal-1", []byte(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last 3 bytes of the OS file, leaving a
	// complete prefix plus a truncated frame.
	osPath := filepath.Join(dir, "store%2Fwal-1")
	data, err := os.ReadFile(osPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(osPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := re.Read("store/wal-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || string(blocks[0]) != "alpha" || string(blocks[1]) != "beta" {
		t.Fatalf("after torn tail, blocks = %q", blocks)
	}

	// Deleting and re-adding under protection still mirrors correctly.
	re.Protect("store/")
	re.DeletePrefix("") // broad sweep: store files survive
	if !re.Exists("store/wal-1") {
		t.Fatal("broad sweep deleted protected durable file")
	}
}
