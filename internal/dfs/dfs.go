// Package dfs simulates a distributed file system (the HDFS of the paper's
// cluster) for experiments that materialize intermediate datasets between
// jobs — the cost Figure 10's separate-engines pipeline pays and the
// integrated DataFrame pipeline avoids. Files are stored in memory as
// partitioned byte blocks; reads and writes are metered and charged a
// configurable per-byte cost so the serialization + replication + I/O
// penalty of crossing an engine boundary is represented.
package dfs

import (
	"fmt"
	"sync"
	"time"
)

// FileSystem is an in-memory partitioned blob store with I/O accounting.
type FileSystem struct {
	mu    sync.Mutex
	files map[string][][]byte

	// WriteNanosPerByte and ReadNanosPerByte simulate disk+network cost;
	// defaults model a ~50 MB/s effective write path (HDFS pipeline
	// replication over the cluster network) and ~200 MB/s read path.
	WriteNanosPerByte float64
	ReadNanosPerByte  float64

	bytesWritten int64
	bytesRead    int64

	// Fault injection (chaos testing): readAttempts counts Reads per path
	// (1-based), so hooks can fail or slow only the first k reads and let a
	// retry succeed — modelling a flaky datanode rather than a lost file.
	readAttempts  map[string]int
	readFaultHook func(path string, attempt int) error
	readLatency   func(path string, attempt int) time.Duration
}

// New creates an empty file system with default cost parameters.
func New() *FileSystem {
	return &FileSystem{
		files:             make(map[string][][]byte),
		readAttempts:      make(map[string]int),
		WriteNanosPerByte: 20.0, // ≈50 MB/s
		ReadNanosPerByte:  5.0,  // ≈200 MB/s
	}
}

// SetReadFaultHook installs a hook consulted before every Read with the
// path and the 1-based attempt number for that path; a non-nil return
// fails that read. nil clears the hook.
func (fs *FileSystem) SetReadFaultHook(hook func(path string, attempt int) error) {
	fs.mu.Lock()
	fs.readFaultHook = hook
	fs.mu.Unlock()
}

// SetReadLatencyHook installs a hook that adds a latency spike to a read
// (on top of the simulated per-byte cost). nil clears the hook.
func (fs *FileSystem) SetReadLatencyHook(hook func(path string, attempt int) time.Duration) {
	fs.mu.Lock()
	fs.readLatency = hook
	fs.mu.Unlock()
}

// ReadAttempts returns how many Reads (successful or injected-failed) have
// been issued against path.
func (fs *FileSystem) ReadAttempts(path string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.readAttempts[path]
}

// Write stores a file as partitioned blocks, charging the write cost.
func (fs *FileSystem) Write(path string, partitions [][]byte) {
	var n int64
	for _, p := range partitions {
		n += int64(len(p))
	}
	fs.charge(float64(n) * fs.WriteNanosPerByte)
	cp := make([][]byte, len(partitions))
	for i, p := range partitions {
		cp[i] = append([]byte(nil), p...)
	}
	fs.mu.Lock()
	fs.files[path] = cp
	fs.bytesWritten += n
	fs.mu.Unlock()
}

// Read returns a file's blocks, charging the read cost. Injected faults
// and latency spikes (see SetReadFaultHook / SetReadLatencyHook) apply
// before the data is served.
func (fs *FileSystem) Read(path string) ([][]byte, error) {
	fs.mu.Lock()
	fs.readAttempts[path]++
	attempt := fs.readAttempts[path]
	fault := fs.readFaultHook
	latency := fs.readLatency
	parts, ok := fs.files[path]
	fs.mu.Unlock()
	if latency != nil {
		if d := latency(path, attempt); d > 0 {
			time.Sleep(d)
		}
	}
	if fault != nil {
		if err := fault(path, attempt); err != nil {
			return nil, fmt.Errorf("dfs: read %q (attempt %d): %w", path, attempt, err)
		}
	}
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	fs.charge(float64(n) * fs.ReadNanosPerByte)
	fs.mu.Lock()
	fs.bytesRead += n
	fs.mu.Unlock()
	return parts, nil
}

// Delete removes a file.
func (fs *FileSystem) Delete(path string) {
	fs.mu.Lock()
	delete(fs.files, path)
	fs.mu.Unlock()
}

// Exists reports whether a path is stored.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// BytesWritten returns total bytes written.
func (fs *FileSystem) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesWritten
}

// BytesRead returns total bytes read.
func (fs *FileSystem) BytesRead() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesRead
}

// charge sleeps for the simulated I/O duration.
func (fs *FileSystem) charge(nanos float64) {
	if nanos <= 0 {
		return
	}
	time.Sleep(time.Duration(nanos))
}
