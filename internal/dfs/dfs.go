// Package dfs simulates a distributed file system (the HDFS of the paper's
// cluster) for experiments that materialize intermediate datasets between
// jobs — the cost Figure 10's separate-engines pipeline pays and the
// integrated DataFrame pipeline avoids. Files are stored in memory as
// partitioned byte blocks; reads and writes are metered and charged a
// configurable per-byte cost so the serialization + replication + I/O
// penalty of crossing an engine boundary is represented.
package dfs

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FileSystem is an in-memory partitioned blob store with I/O accounting.
// Opened with OpenDir it additionally mirrors durable paths to a directory
// on the host file system (see durable.go), which is what makes the table
// store's write-ahead log survive process restarts.
type FileSystem struct {
	mu    sync.Mutex
	files map[string][][]byte

	// dir is the host directory durable files mirror to ("" = memory only);
	// handles caches append-mode OS files so WAL appends don't reopen the
	// segment on every record.
	dir     string
	handles map[string]*os.File

	// protected holds namespace prefixes registered via Protect: files under
	// them survive DeletePrefix sweeps rooted outside the namespace, so a
	// broad spill/temp cleanup can never eat WAL segments or checkpoints.
	protected []string

	// WriteNanosPerByte and ReadNanosPerByte simulate disk+network cost;
	// defaults model a ~50 MB/s effective write path (HDFS pipeline
	// replication over the cluster network) and ~200 MB/s read path.
	WriteNanosPerByte float64
	ReadNanosPerByte  float64

	bytesWritten int64
	bytesRead    int64

	// Fault injection (chaos testing): readAttempts counts Reads per path
	// (1-based), so hooks can fail or slow only the first k reads and let a
	// retry succeed — modelling a flaky datanode rather than a lost file.
	// writeAttempts and the write-fault hook mirror the read side so spill
	// writes are chaos-testable too.
	readAttempts   map[string]int
	readFaultHook  func(path string, attempt int) error
	readLatency    func(path string, attempt int) time.Duration
	writeAttempts  map[string]int
	writeFaultHook func(path string, attempt int) error

	tempSeq atomic.Int64
}

// New creates an empty file system with default cost parameters.
func New() *FileSystem {
	return &FileSystem{
		files:             make(map[string][][]byte),
		readAttempts:      make(map[string]int),
		writeAttempts:     make(map[string]int),
		WriteNanosPerByte: 20.0, // ≈50 MB/s
		ReadNanosPerByte:  5.0,  // ≈200 MB/s
	}
}

// SetReadFaultHook installs a hook consulted before every Read with the
// path and the 1-based attempt number for that path; a non-nil return
// fails that read. nil clears the hook.
func (fs *FileSystem) SetReadFaultHook(hook func(path string, attempt int) error) {
	fs.mu.Lock()
	fs.readFaultHook = hook
	fs.mu.Unlock()
}

// SetReadLatencyHook installs a hook that adds a latency spike to a read
// (on top of the simulated per-byte cost). nil clears the hook.
func (fs *FileSystem) SetReadLatencyHook(hook func(path string, attempt int) time.Duration) {
	fs.mu.Lock()
	fs.readLatency = hook
	fs.mu.Unlock()
}

// ReadAttempts returns how many Reads (successful or injected-failed) have
// been issued against path.
func (fs *FileSystem) ReadAttempts(path string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.readAttempts[path]
}

// SetWriteFaultHook installs a hook consulted before every Write and
// AppendBlock with the path and the 1-based attempt number for that path;
// a non-nil return fails that write before any state changes, modelling a
// failed HDFS pipeline. nil clears the hook.
func (fs *FileSystem) SetWriteFaultHook(hook func(path string, attempt int) error) {
	fs.mu.Lock()
	fs.writeFaultHook = hook
	fs.mu.Unlock()
}

// WriteAttempts returns how many Writes (successful or injected-failed)
// have been issued against path.
func (fs *FileSystem) WriteAttempts(path string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeAttempts[path]
}

// beginWrite counts the attempt and applies the write-fault hook.
func (fs *FileSystem) beginWrite(path string) error {
	fs.mu.Lock()
	fs.writeAttempts[path]++
	attempt := fs.writeAttempts[path]
	fault := fs.writeFaultHook
	fs.mu.Unlock()
	if fault != nil {
		if err := fault(path, attempt); err != nil {
			return fmt.Errorf("dfs: write %q (attempt %d): %w", path, attempt, err)
		}
	}
	return nil
}

// Write stores a file as partitioned blocks, charging the write cost.
// Injected faults (see SetWriteFaultHook) fail the write before any state
// changes.
func (fs *FileSystem) Write(path string, partitions [][]byte) error {
	if err := fs.beginWrite(path); err != nil {
		return err
	}
	var n int64
	for _, p := range partitions {
		n += int64(len(p))
	}
	fs.charge(float64(n) * fs.WriteNanosPerByte)
	cp := make([][]byte, len(partitions))
	for i, p := range partitions {
		cp[i] = append([]byte(nil), p...)
	}
	fs.mu.Lock()
	fs.files[path] = cp
	fs.bytesWritten += n
	err := fs.mirrorWrite(path, cp)
	fs.mu.Unlock()
	return err
}

// AppendBlock appends one block to a file (creating it if absent),
// charging the write cost — the primitive spill files are built from.
func (fs *FileSystem) AppendBlock(path string, block []byte) error {
	if err := fs.beginWrite(path); err != nil {
		return err
	}
	fs.charge(float64(len(block)) * fs.WriteNanosPerByte)
	cp := append([]byte(nil), block...)
	fs.mu.Lock()
	fs.files[path] = append(fs.files[path], cp)
	fs.bytesWritten += int64(len(block))
	err := fs.mirrorAppend(path, cp)
	fs.mu.Unlock()
	return err
}

// Read returns a file's blocks, charging the read cost. Injected faults
// and latency spikes (see SetReadFaultHook / SetReadLatencyHook) apply
// before the data is served.
func (fs *FileSystem) Read(path string) ([][]byte, error) {
	fs.mu.Lock()
	fs.readAttempts[path]++
	attempt := fs.readAttempts[path]
	fault := fs.readFaultHook
	latency := fs.readLatency
	parts, ok := fs.files[path]
	fs.mu.Unlock()
	if latency != nil {
		if d := latency(path, attempt); d > 0 {
			time.Sleep(d)
		}
	}
	if fault != nil {
		if err := fault(path, attempt); err != nil {
			return nil, fmt.Errorf("dfs: read %q (attempt %d): %w", path, attempt, err)
		}
	}
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	fs.charge(float64(n) * fs.ReadNanosPerByte)
	fs.mu.Lock()
	fs.bytesRead += n
	fs.mu.Unlock()
	return parts, nil
}

// ReadBlock returns one block of a file, charging only that block's read
// cost — the streaming read under the external sort's k-way merge. The
// read-fault and latency hooks apply, sharing the path's attempt counter
// with Read.
func (fs *FileSystem) ReadBlock(path string, i int) ([]byte, error) {
	fs.mu.Lock()
	fs.readAttempts[path]++
	attempt := fs.readAttempts[path]
	fault := fs.readFaultHook
	latency := fs.readLatency
	parts, ok := fs.files[path]
	var block []byte
	if ok && i >= 0 && i < len(parts) {
		block = parts[i]
	}
	fs.mu.Unlock()
	if latency != nil {
		if d := latency(path, attempt); d > 0 {
			time.Sleep(d)
		}
	}
	if fault != nil {
		if err := fault(path, attempt); err != nil {
			return nil, fmt.Errorf("dfs: read %q block %d (attempt %d): %w", path, i, attempt, err)
		}
	}
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	if block == nil {
		return nil, fmt.Errorf("dfs: %q has no block %d", path, i)
	}
	fs.charge(float64(len(block)) * fs.ReadNanosPerByte)
	fs.mu.Lock()
	fs.bytesRead += int64(len(block))
	fs.mu.Unlock()
	return block, nil
}

// NumBlocks returns how many blocks a file holds.
func (fs *FileSystem) NumBlocks(path string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: no such file %q", path)
	}
	return len(parts), nil
}

// Delete removes a file. Exact-path deletes are always honored, protected
// namespace or not — they are deliberate, file-level operations (the store
// truncating its own WAL segment), unlike the sweep semantics of
// DeletePrefix.
func (fs *FileSystem) Delete(path string) {
	fs.mu.Lock()
	delete(fs.files, path)
	fs.mirrorDelete(path)
	fs.mu.Unlock()
}

// Protect registers a namespace prefix whose files survive DeletePrefix
// sweeps rooted outside it. The table store protects its root so WAL
// segments and checkpoints can never be collected by a query's spill/temp
// cleanup; the store's own maintenance still works because a DeletePrefix
// rooted at or inside the protected prefix is considered deliberate.
func (fs *FileSystem) Protect(prefix string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, p := range fs.protected {
		if p == prefix {
			return
		}
	}
	fs.protected = append(fs.protected, prefix)
}

// shielded reports whether path sits in a protected namespace that the
// sweep rooted at prefix is not allowed to touch.
func (fs *FileSystem) shielded(path, prefix string) bool {
	for _, prot := range fs.protected {
		if strings.HasPrefix(path, prot) && !strings.HasPrefix(prefix, prot) {
			return true
		}
	}
	return false
}

// DeletePrefix removes every file whose path starts with prefix and
// returns how many were removed — how a query drops a spill scope's temp
// files in one call at task close or query end/cancel. Files under a
// Protect-ed namespace are skipped unless the sweep itself is rooted at or
// inside that namespace.
func (fs *FileSystem) DeletePrefix(prefix string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) && !fs.shielded(p, prefix) {
			delete(fs.files, p)
			fs.mirrorDelete(p)
			n++
		}
	}
	return n
}

// List returns the sorted paths starting with prefix ("" lists everything).
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// NumFiles returns how many files are stored — the no-temp-file-leak
// assertion tests make after queries complete or cancel.
func (fs *FileSystem) NumFiles() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.files)
}

// TempPath returns a process-unique path under /tmp for scratch files
// (spill runs, experiment intermediates). /tmp is a memory-only namespace:
// even on a durable file system its files are never mirrored to disk, so
// scratch paths can never collide with — or be confused for — WAL segments.
// Existing paths are skipped: the sequence counter restarts with the
// process, but files may have survived it.
func (fs *FileSystem) TempPath(prefix string) string {
	for {
		p := fmt.Sprintf("/tmp/%s-%d", prefix, fs.tempSeq.Add(1))
		fs.mu.Lock()
		_, taken := fs.files[p]
		fs.mu.Unlock()
		if !taken {
			return p
		}
	}
}

// Exists reports whether a path is stored.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// BytesWritten returns total bytes written.
func (fs *FileSystem) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesWritten
}

// BytesRead returns total bytes read.
func (fs *FileSystem) BytesRead() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesRead
}

// charge sleeps for the simulated I/O duration.
func (fs *FileSystem) charge(nanos float64) {
	if nanos <= 0 {
		return
	}
	time.Sleep(time.Duration(nanos))
}
