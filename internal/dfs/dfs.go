// Package dfs simulates a distributed file system (the HDFS of the paper's
// cluster) for experiments that materialize intermediate datasets between
// jobs — the cost Figure 10's separate-engines pipeline pays and the
// integrated DataFrame pipeline avoids. Files are stored in memory as
// partitioned byte blocks; reads and writes are metered and charged a
// configurable per-byte cost so the serialization + replication + I/O
// penalty of crossing an engine boundary is represented.
package dfs

import (
	"fmt"
	"sync"
	"time"
)

// FileSystem is an in-memory partitioned blob store with I/O accounting.
type FileSystem struct {
	mu    sync.Mutex
	files map[string][][]byte

	// WriteNanosPerByte and ReadNanosPerByte simulate disk+network cost;
	// defaults model a ~50 MB/s effective write path (HDFS pipeline
	// replication over the cluster network) and ~200 MB/s read path.
	WriteNanosPerByte float64
	ReadNanosPerByte  float64

	bytesWritten int64
	bytesRead    int64
}

// New creates an empty file system with default cost parameters.
func New() *FileSystem {
	return &FileSystem{
		files:             make(map[string][][]byte),
		WriteNanosPerByte: 20.0, // ≈50 MB/s
		ReadNanosPerByte:  5.0,  // ≈200 MB/s
	}
}

// Write stores a file as partitioned blocks, charging the write cost.
func (fs *FileSystem) Write(path string, partitions [][]byte) {
	var n int64
	for _, p := range partitions {
		n += int64(len(p))
	}
	fs.charge(float64(n) * fs.WriteNanosPerByte)
	cp := make([][]byte, len(partitions))
	for i, p := range partitions {
		cp[i] = append([]byte(nil), p...)
	}
	fs.mu.Lock()
	fs.files[path] = cp
	fs.bytesWritten += n
	fs.mu.Unlock()
}

// Read returns a file's blocks, charging the read cost.
func (fs *FileSystem) Read(path string) ([][]byte, error) {
	fs.mu.Lock()
	parts, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	fs.charge(float64(n) * fs.ReadNanosPerByte)
	fs.mu.Lock()
	fs.bytesRead += n
	fs.mu.Unlock()
	return parts, nil
}

// Delete removes a file.
func (fs *FileSystem) Delete(path string) {
	fs.mu.Lock()
	delete(fs.files, path)
	fs.mu.Unlock()
}

// Exists reports whether a path is stored.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// BytesWritten returns total bytes written.
func (fs *FileSystem) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesWritten
}

// BytesRead returns total bytes read.
func (fs *FileSystem) BytesRead() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesRead
}

// charge sleeps for the simulated I/O duration.
func (fs *FileSystem) charge(nanos float64) {
	if nanos <= 0 {
		return
	}
	time.Sleep(time.Duration(nanos))
}
