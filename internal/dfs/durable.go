// Durable mode: a FileSystem opened with OpenDir mirrors its files to a
// host directory so state survives process restarts — the substrate the
// table store's write-ahead log and checkpoints need for crash recovery.
//
// Layout: each dfs path maps to one OS file whose name is the URL-escaped
// path, and a file's blocks are stored as length-prefixed frames
//
//	[u32 big-endian length][payload] ...
//
// Appending a block appends one frame; a crash can therefore leave at most
// one torn frame at the tail of a file, which the loader detects and drops
// (the WAL's record CRCs catch anything subtler). Scratch namespaces
// ("/tmp/", "/spill/") are never mirrored: spills are worthless after a
// crash and must not be mistaken for durable state.
package dfs

import (
	"encoding/binary"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
)

// memoryOnlyNamespaces are path prefixes that never reach the host disk.
var memoryOnlyNamespaces = []string{"/tmp/", "/spill/"}

func memoryOnly(path string) bool {
	for _, ns := range memoryOnlyNamespaces {
		if len(path) >= len(ns) && path[:len(ns)] == ns {
			return true
		}
	}
	return false
}

// OpenDir opens a file system mirrored to dir, creating the directory if
// needed and loading every file already present (dropping a torn trailing
// frame per file, the possible residue of a crash mid-append). Durable
// file systems charge no simulated I/O cost: the host disk is the cost.
func OpenDir(dir string) (*FileSystem, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: open %q: %w", dir, err)
	}
	fs := New()
	fs.dir = dir
	fs.handles = make(map[string]*os.File)
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dfs: open %q: %w", dir, err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		path, err := url.PathUnescape(ent.Name())
		if err != nil {
			continue // not one of ours
		}
		blocks, err := loadFrames(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, fmt.Errorf("dfs: load %q: %w", path, err)
		}
		fs.files[path] = blocks
	}
	return fs, nil
}

// Dir returns the host directory a durable file system mirrors to ("" for
// a memory-only file system).
func (fs *FileSystem) Dir() string { return fs.dir }

// hostPath maps a dfs path to its OS file.
func (fs *FileSystem) hostPath(path string) string {
	return filepath.Join(fs.dir, url.PathEscape(path))
}

// loadFrames reads a mirrored file's frames, dropping a truncated tail —
// and truncating the OS file back to the valid prefix, so that later
// appends land after the last intact frame rather than after crash
// garbage that would render them unreadable on the next load.
func loadFrames(osPath string) ([][]byte, error) {
	data, err := os.ReadFile(osPath)
	if err != nil {
		return nil, err
	}
	var blocks [][]byte
	valid := 0
	rest := data
	for len(rest) >= 4 {
		n := binary.BigEndian.Uint32(rest[:4])
		if uint64(len(rest)-4) < uint64(n) {
			break // torn tail from a crash mid-append
		}
		blocks = append(blocks, append([]byte(nil), rest[4:4+n]...))
		rest = rest[4+n:]
		valid = len(data) - len(rest)
	}
	if valid < len(data) {
		if err := os.Truncate(osPath, int64(valid)); err != nil {
			return nil, err
		}
	}
	return blocks, nil
}

func frame(block []byte) []byte {
	out := make([]byte, 4+len(block))
	binary.BigEndian.PutUint32(out, uint32(len(block)))
	copy(out[4:], block)
	return out
}

// mirrorWrite replaces a path's OS file with the given blocks, atomically
// via a temp file + rename so a crash leaves either the old or the new
// content, never a mix. Called with fs.mu held.
func (fs *FileSystem) mirrorWrite(path string, blocks [][]byte) error {
	if fs.dir == "" || memoryOnly(path) {
		return nil
	}
	if h, ok := fs.handles[path]; ok {
		h.Close()
		delete(fs.handles, path)
	}
	target := fs.hostPath(path)
	tmp := target + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("dfs: mirror %q: %w", path, err)
	}
	for _, b := range blocks {
		if _, err := f.Write(frame(b)); err != nil {
			f.Close()
			return fmt.Errorf("dfs: mirror %q: %w", path, err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dfs: mirror %q: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dfs: mirror %q: %w", path, err)
	}
	if err := os.Rename(tmp, target); err != nil {
		return fmt.Errorf("dfs: mirror %q: %w", path, err)
	}
	return nil
}

// mirrorAppend appends one frame to a path's OS file, caching the append
// handle so WAL appends don't reopen the segment per record. Called with
// fs.mu held.
func (fs *FileSystem) mirrorAppend(path string, block []byte) error {
	if fs.dir == "" || memoryOnly(path) {
		return nil
	}
	h, ok := fs.handles[path]
	if !ok {
		var err error
		h, err = os.OpenFile(fs.hostPath(path), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("dfs: append %q: %w", path, err)
		}
		fs.handles[path] = h
	}
	if _, err := h.Write(frame(block)); err != nil {
		return fmt.Errorf("dfs: append %q: %w", path, err)
	}
	return nil
}

// mirrorDelete removes a path's OS file. Called with fs.mu held.
func (fs *FileSystem) mirrorDelete(path string) {
	if fs.dir == "" || memoryOnly(path) {
		return
	}
	if h, ok := fs.handles[path]; ok {
		h.Close()
		delete(fs.handles, path)
	}
	os.Remove(fs.hostPath(path))
}

// Sync flushes a path's mirrored bytes to stable storage — the
// fsync-on-commit hook the write-ahead log calls before declaring a
// transaction durable. A no-op for memory-only file systems and
// namespaces, whose durability scope is the process lifetime anyway.
func (fs *FileSystem) Sync(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.dir == "" || memoryOnly(path) {
		return nil
	}
	if h, ok := fs.handles[path]; ok {
		if err := h.Sync(); err != nil {
			return fmt.Errorf("dfs: sync %q: %w", path, err)
		}
	}
	return nil
}

// Close releases cached OS handles (after syncing them). Memory-only file
// systems need no Close; it is a cheap no-op there.
func (fs *FileSystem) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var first error
	for p, h := range fs.handles {
		if err := h.Sync(); err != nil && first == nil {
			first = err
		}
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
		delete(fs.handles, p)
	}
	return first
}
