package dfs

import (
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0 // no simulated latency in unit tests
	fs.ReadNanosPerByte = 0
	parts := [][]byte{[]byte("hello"), []byte("world")}
	fs.Write("/x", parts)
	got, err := fs.Read("/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "hello" || string(got[1]) != "world" {
		t.Fatalf("got %q", got)
	}
	// Writes are copies: mutating the source must not affect storage.
	parts[0][0] = 'X'
	got, _ = fs.Read("/x")
	if string(got[0]) != "hello" {
		t.Fatal("write must copy blocks")
	}
	if !fs.Exists("/x") || fs.Exists("/y") {
		t.Fatal("Exists wrong")
	}
	fs.Delete("/x")
	if fs.Exists("/x") {
		t.Fatal("Delete failed")
	}
	if _, err := fs.Read("/x"); err == nil {
		t.Fatal("reading a deleted file must fail")
	}
}

func TestMetering(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	fs.Write("/a", [][]byte{make([]byte, 100)})
	if fs.BytesWritten() != 100 {
		t.Fatalf("written = %d", fs.BytesWritten())
	}
	fs.Read("/a")
	fs.Read("/a")
	if fs.BytesRead() != 200 {
		t.Fatalf("read = %d", fs.BytesRead())
	}
}

func TestSimulatedIOCost(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 10_000 // 10µs per byte for a measurable test
	fs.ReadNanosPerByte = 0
	start := time.Now()
	fs.Write("/slow", [][]byte{make([]byte, 1000)})
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("write should cost ~10ms, took %v", elapsed)
	}
}
