package dfs

import (
	"errors"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0 // no simulated latency in unit tests
	fs.ReadNanosPerByte = 0
	parts := [][]byte{[]byte("hello"), []byte("world")}
	fs.Write("/x", parts)
	got, err := fs.Read("/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "hello" || string(got[1]) != "world" {
		t.Fatalf("got %q", got)
	}
	// Writes are copies: mutating the source must not affect storage.
	parts[0][0] = 'X'
	got, _ = fs.Read("/x")
	if string(got[0]) != "hello" {
		t.Fatal("write must copy blocks")
	}
	if !fs.Exists("/x") || fs.Exists("/y") {
		t.Fatal("Exists wrong")
	}
	fs.Delete("/x")
	if fs.Exists("/x") {
		t.Fatal("Delete failed")
	}
	if _, err := fs.Read("/x"); err == nil {
		t.Fatal("reading a deleted file must fail")
	}
}

func TestMetering(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	fs.Write("/a", [][]byte{make([]byte, 100)})
	if fs.BytesWritten() != 100 {
		t.Fatalf("written = %d", fs.BytesWritten())
	}
	fs.Read("/a")
	fs.Read("/a")
	if fs.BytesRead() != 200 {
		t.Fatalf("read = %d", fs.BytesRead())
	}
}

func TestSimulatedIOCost(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 10_000 // 10µs per byte for a measurable test
	fs.ReadNanosPerByte = 0
	start := time.Now()
	fs.Write("/slow", [][]byte{make([]byte, 1000)})
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("write should cost ~10ms, took %v", elapsed)
	}
}

func TestReadFaultInjection(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	fs.Write("/flaky", [][]byte{[]byte("data")})
	fs.SetReadFaultHook(func(path string, attempt int) error {
		if path == "/flaky" && attempt <= 2 {
			return errors.New("injected datanode failure")
		}
		return nil
	})
	for i := 1; i <= 2; i++ {
		if _, err := fs.Read("/flaky"); err == nil {
			t.Fatalf("attempt %d should fail", i)
		}
	}
	got, err := fs.Read("/flaky")
	if err != nil {
		t.Fatalf("attempt 3 should succeed: %v", err)
	}
	if string(got[0]) != "data" {
		t.Fatalf("data corrupted across injected failures: %q", got[0])
	}
	if fs.ReadAttempts("/flaky") != 3 {
		t.Fatalf("attempts = %d", fs.ReadAttempts("/flaky"))
	}
	// Other paths are untouched by the per-path hook.
	fs.Write("/ok", [][]byte{[]byte("fine")})
	if _, err := fs.Read("/ok"); err != nil {
		t.Fatalf("unrelated path affected: %v", err)
	}
	fs.SetReadFaultHook(nil)
	if _, err := fs.Read("/flaky"); err != nil {
		t.Fatalf("cleared hook still firing: %v", err)
	}
}

func TestReadLatencySpike(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	fs.Write("/slowread", [][]byte{[]byte("x")})
	fs.SetReadLatencyHook(func(path string, attempt int) time.Duration {
		if path == "/slowread" && attempt == 1 {
			return 20 * time.Millisecond
		}
		return 0
	})
	start := time.Now()
	if _, err := fs.Read("/slowread"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("latency spike not applied: %v", elapsed)
	}
	start = time.Now()
	fs.Read("/slowread")
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("spike should only hit attempt 1: %v", elapsed)
	}
}
