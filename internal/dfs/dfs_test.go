package dfs

import (
	"errors"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0 // no simulated latency in unit tests
	fs.ReadNanosPerByte = 0
	parts := [][]byte{[]byte("hello"), []byte("world")}
	fs.Write("/x", parts)
	got, err := fs.Read("/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "hello" || string(got[1]) != "world" {
		t.Fatalf("got %q", got)
	}
	// Writes are copies: mutating the source must not affect storage.
	parts[0][0] = 'X'
	got, _ = fs.Read("/x")
	if string(got[0]) != "hello" {
		t.Fatal("write must copy blocks")
	}
	if !fs.Exists("/x") || fs.Exists("/y") {
		t.Fatal("Exists wrong")
	}
	fs.Delete("/x")
	if fs.Exists("/x") {
		t.Fatal("Delete failed")
	}
	if _, err := fs.Read("/x"); err == nil {
		t.Fatal("reading a deleted file must fail")
	}
}

func TestMetering(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	fs.Write("/a", [][]byte{make([]byte, 100)})
	if fs.BytesWritten() != 100 {
		t.Fatalf("written = %d", fs.BytesWritten())
	}
	fs.Read("/a")
	fs.Read("/a")
	if fs.BytesRead() != 200 {
		t.Fatalf("read = %d", fs.BytesRead())
	}
}

func TestSimulatedIOCost(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 10_000 // 10µs per byte for a measurable test
	fs.ReadNanosPerByte = 0
	start := time.Now()
	fs.Write("/slow", [][]byte{make([]byte, 1000)})
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("write should cost ~10ms, took %v", elapsed)
	}
}

func TestReadFaultInjection(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	fs.Write("/flaky", [][]byte{[]byte("data")})
	fs.SetReadFaultHook(func(path string, attempt int) error {
		if path == "/flaky" && attempt <= 2 {
			return errors.New("injected datanode failure")
		}
		return nil
	})
	for i := 1; i <= 2; i++ {
		if _, err := fs.Read("/flaky"); err == nil {
			t.Fatalf("attempt %d should fail", i)
		}
	}
	got, err := fs.Read("/flaky")
	if err != nil {
		t.Fatalf("attempt 3 should succeed: %v", err)
	}
	if string(got[0]) != "data" {
		t.Fatalf("data corrupted across injected failures: %q", got[0])
	}
	if fs.ReadAttempts("/flaky") != 3 {
		t.Fatalf("attempts = %d", fs.ReadAttempts("/flaky"))
	}
	// Other paths are untouched by the per-path hook.
	fs.Write("/ok", [][]byte{[]byte("fine")})
	if _, err := fs.Read("/ok"); err != nil {
		t.Fatalf("unrelated path affected: %v", err)
	}
	fs.SetReadFaultHook(nil)
	if _, err := fs.Read("/flaky"); err != nil {
		t.Fatalf("cleared hook still firing: %v", err)
	}
}

func TestReadLatencySpike(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	fs.Write("/slowread", [][]byte{[]byte("x")})
	fs.SetReadLatencyHook(func(path string, attempt int) time.Duration {
		if path == "/slowread" && attempt == 1 {
			return 20 * time.Millisecond
		}
		return 0
	})
	start := time.Now()
	if _, err := fs.Read("/slowread"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("latency spike not applied: %v", elapsed)
	}
	start = time.Now()
	fs.Read("/slowread")
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("spike should only hit attempt 1: %v", elapsed)
	}
}

func TestAppendBlockAndReadBlock(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	for i := 0; i < 3; i++ {
		if err := fs.AppendBlock("/runs/r0", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := fs.NumBlocks("/runs/r0")
	if err != nil || n != 3 {
		t.Fatalf("NumBlocks = %d, %v", n, err)
	}
	for i := 0; i < 3; i++ {
		b, err := fs.ReadBlock("/runs/r0", i)
		if err != nil || string(b) != string(byte('a'+i)) {
			t.Fatalf("block %d = %q, %v", i, b, err)
		}
	}
	if _, err := fs.ReadBlock("/runs/r0", 3); err == nil {
		t.Fatal("out-of-range block read must fail")
	}
	if _, err := fs.NumBlocks("/nope"); err == nil {
		t.Fatal("NumBlocks of a missing file must fail")
	}
}

func TestWriteFaultInjection(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	boom := errors.New("boom")
	fs.SetWriteFaultHook(func(path string, attempt int) error {
		if path == "/flaky" && attempt <= 2 {
			return boom
		}
		return nil
	})
	// A failed write must not create or modify the file.
	if err := fs.Write("/flaky", [][]byte{[]byte("x")}); !errors.Is(err, boom) {
		t.Fatalf("attempt 1: %v", err)
	}
	if fs.Exists("/flaky") {
		t.Fatal("failed write must leave no file")
	}
	if err := fs.AppendBlock("/flaky", []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("attempt 2: %v", err)
	}
	// The third attempt (past the hook's budget) succeeds, like a retried
	// task writing after a transient datanode fault.
	if err := fs.Write("/flaky", [][]byte{[]byte("x")}); err != nil {
		t.Fatalf("attempt 3: %v", err)
	}
	if fs.WriteAttempts("/flaky") != 3 {
		t.Fatalf("WriteAttempts = %d", fs.WriteAttempts("/flaky"))
	}
	// Other paths are untouched by the hook.
	if err := fs.Write("/ok", nil); err != nil {
		t.Fatal(err)
	}
	fs.SetWriteFaultHook(nil)
	if err := fs.Write("/flaky2", nil); err != nil {
		t.Fatal("cleared hook must not fire")
	}
}

func TestDeletePrefixAndList(t *testing.T) {
	fs := New()
	fs.WriteNanosPerByte = 0
	fs.ReadNanosPerByte = 0
	for _, p := range []string{"/spill/q1/a", "/spill/q1/b", "/spill/q2/a", "/data/x"} {
		fs.Write(p, [][]byte{[]byte("v")})
	}
	got := fs.List("/spill/q1/")
	if len(got) != 2 || got[0] != "/spill/q1/a" || got[1] != "/spill/q1/b" {
		t.Fatalf("List = %v", got)
	}
	if n := fs.DeletePrefix("/spill/q1/"); n != 2 {
		t.Fatalf("DeletePrefix = %d", n)
	}
	if fs.Exists("/spill/q1/a") || !fs.Exists("/spill/q2/a") || !fs.Exists("/data/x") {
		t.Fatal("DeletePrefix removed the wrong files")
	}
	if fs.NumFiles() != 2 {
		t.Fatalf("NumFiles = %d", fs.NumFiles())
	}
}

func TestTempPathUnique(t *testing.T) {
	fs := New()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		p := fs.TempPath("/spill/sort")
		if seen[p] {
			t.Fatalf("TempPath repeated %q", p)
		}
		seen[p] = true
	}
}
