// Package sqlserver exposes a Context over TCP with a simple line
// protocol — the reproduction's stand-in for the JDBC/ODBC server in the
// paper's Figure 1, through which business-intelligence tools submit SQL
// (and can call registered UDFs, §3.7).
//
// Protocol (text, newline-delimited):
//
//	client:  <one SQL statement on a single line>\n
//	server:  OK <ncols> <nrows>\n
//	         <tab-separated header>\n
//	         <tab-separated row>\n × nrows
//	         \n                      (blank terminator)
//	or:      ERR <message>\n
//
// Statements are executed sequentially per connection; connections are
// served concurrently.
package sqlserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	sparksql "repro"
	"repro/internal/metrics"
	"repro/internal/rdd"
	"repro/internal/row"
)

// Server serves SQL over a listener.
type Server struct {
	ctx *sparksql.Context
	// MaxRows caps result sizes per query (0 = unlimited).
	MaxRows int
	// QueryTimeout bounds each query's execution (0 = unlimited): on
	// expiry the query's tasks are cancelled and the client gets ERR.
	QueryTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: Close stops accepting
	// connections, lets in-flight statements finish for this long, then
	// force-closes what remains. Zero means close immediately (the old
	// behavior); statements arriving while draining get
	// "ERR server shutting down".
	DrainTimeout time.Duration
	// ConnTimeout is the per-connection idle deadline: each read of the
	// next statement and each response write must complete within it, or
	// the connection is dropped (0 = no deadline). It protects drain from
	// clients that hold connections open silently.
	ConnTimeout time.Duration
	// Logger receives one structured record per statement: query id, plan
	// hash, elapsed time, and rows returned or the error — with the failing
	// stage, partition, attempt count and root cause unwrapped from a
	// *rdd.JobError when the failure came from task execution. Defaults to
	// slog.Default().
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof and expvar under /debug/ on the
	// metrics mux. Off by default: profiling endpoints are opt-in.
	EnablePprof bool

	// querySeq numbers statements across all connections for log
	// correlation.
	querySeq atomic.Int64
	// server-scope metrics, resolved once from the engine registry.
	mQueries *metrics.Counter
	mErrors  *metrics.Counter
	mLatency *metrics.Histogram

	mu       sync.Mutex
	listener net.Listener
	httpL    net.Listener
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	inflight sync.WaitGroup
}

// New builds a server over a context.
func New(ctx *sparksql.Context) *Server {
	scope := ctx.Metrics().Scoped("server")
	return &Server{
		ctx:      ctx,
		MaxRows:  10_000,
		mQueries: scope.Counter("queries"),
		mErrors:  scope.Counter("errors"),
		mLatency: scope.Histogram("query.micros"),
		conns:    make(map[net.Conn]struct{}),
	}
}

func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves; it reports the bound address through the returned listener.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l)
	return l.Addr(), nil
}

// Close shuts the server down gracefully: it stops accepting connections
// (SQL and metrics listeners both), rejects statements that arrive on
// open connections with "ERR server shutting down", waits up to
// DrainTimeout for in-flight statements to finish, then force-closes any
// connection still open. With DrainTimeout zero everything closes
// immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	if s.httpL != nil {
		s.httpL.Close()
	}
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	drain := s.DrainTimeout
	s.mu.Unlock()

	if drain > 0 {
		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(drain):
		}
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	return err
}

// MetricsHandler serves the engine's observability surfaces over HTTP:
// GET /metrics returns the registry as plain text (one metric per line,
// histograms expanded into _count/_sum/_min/_max/_p50/_p99; ?prefix= filters
// with glob semantics), with harvested per-worker counters appended as
// `name{worker=id} value` lines when the context runs a cluster;
// GET /trace returns the span buffer — the in-memory event log — as JSONL,
// one job/stage/task/shuffle span per line; GET /history replays the
// persistent query event log as JSONL, one completed query per line. With
// EnablePprof the net/http/pprof and expvar handlers mount under /debug/.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		pattern := r.URL.Query().Get("prefix")
		s.ctx.Metrics().WriteTextFiltered(w, pattern)
		if rt := s.ctx.Cluster(); rt != nil {
			rt.WriteFederatedMetrics(w, pattern)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		s.ctx.Trace().ExportJSONL(w)
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		s.ctx.EventLog().WriteJSONL(w)
	})
	if s.EnablePprof {
		metrics.RegisterDebugHandlers(mux)
	}
	return mux
}

// ListenAndServeMetrics exposes MetricsHandler on addr ("127.0.0.1:0" for
// an ephemeral port) and reports the bound address.
func (s *Server) ListenAndServeMetrics(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.httpL = l
	s.mu.Unlock()
	go http.Serve(l, s.MetricsHandler())
	return l.Addr(), nil
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	for {
		if s.ConnTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ConnTimeout))
		}
		if !in.Scan() {
			return
		}
		query := strings.TrimSpace(in.Text())
		if query == "" {
			continue
		}
		s.mu.Lock()
		draining := s.draining
		if !draining {
			s.inflight.Add(1)
		}
		s.mu.Unlock()
		if draining {
			writeErr(out, errShuttingDown)
			out.Flush()
			return
		}
		s.execute(out, query)
		s.inflight.Done()
		if s.ConnTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.ConnTimeout))
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// errShuttingDown is the drain-phase rejection sent to statements that
// arrive after Close began.
var errShuttingDown = errors.New("server shutting down")

// execute runs one statement, writes the protocol response, updates the
// server metrics and emits one structured query-log record.
func (s *Server) execute(out *bufio.Writer, query string) {
	qid := s.querySeq.Add(1)
	start := time.Now()
	planHash, nrows, err := s.runQuery(out, query)
	elapsed := time.Since(start)
	s.mQueries.Inc()
	s.mLatency.Observe(elapsed.Microseconds())
	if err != nil {
		s.mErrors.Inc()
	}
	s.logQuery(qid, query, planHash, elapsed, nrows, err)
}

// logQuery is the structured query log — the replacement for opaque ERR
// strings: every statement gets a record with its id, plan fingerprint and
// latency, and failures additionally carry the failing stage, partition,
// attempt count and root cause when the error chain holds a *rdd.JobError.
func (s *Server) logQuery(qid int64, query string, planHash uint64, elapsed time.Duration, rows int, err error) {
	attrs := []any{
		slog.Int64("query_id", qid),
		slog.String("query", sanitize(query)),
		slog.String("plan_hash", fmt.Sprintf("%016x", planHash)),
		slog.Duration("elapsed", elapsed),
	}
	if err == nil {
		s.logger().Info("query ok", append(attrs, slog.Int("rows", rows))...)
		return
	}
	attrs = append(attrs, slog.String("error", err.Error()))
	var je *rdd.JobError
	if errors.As(err, &je) {
		attrs = append(attrs,
			slog.String("failed_stage", je.RDDName),
			slog.Int("partition", je.Partition),
			slog.Int("attempts", je.Attempts),
			slog.String("cause", fmt.Sprint(je.Cause)),
		)
		if je.Worker != "" {
			attrs = append(attrs, slog.String("worker", je.Worker))
		}
	}
	s.logger().Error("query failed", attrs...)
}

// runQuery executes one statement and writes the protocol response; the
// returned plan hash, row count and error feed the query log. A panic
// anywhere in parsing, planning or execution is confined to this query:
// the client gets an ERR line and the connection (and server) stay usable.
// Task failures arrive as ordinary errors from Collect; the recover is the
// last line of defense for non-task panics (e.g. a misbehaving UDF
// evaluated at plan time).
func (s *Server) runQuery(out *bufio.Writer, query string) (planHash uint64, nrows int, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic while executing query: %v", rec)
			writeErr(out, err)
		}
	}()
	// The /metrics line command is an alias for SHOW METRICS, so plain
	// netcat sessions can inspect the engine without SQL.
	if query == "/metrics" {
		query = "SHOW METRICS"
	}
	df, err := s.ctx.SQL(query)
	if err != nil {
		writeErr(out, err)
		return 0, 0, err
	}
	cols := df.Columns()
	if len(cols) == 0 { // DDL
		fmt.Fprintf(out, "OK 0 0\n\n")
		return 0, 0, nil
	}
	if planHash, err = df.PlanHash(); err != nil {
		writeErr(out, err)
		return 0, 0, err
	}
	if s.MaxRows > 0 {
		df, err = df.Limit(s.MaxRows)
		if err != nil {
			writeErr(out, err)
			return planHash, 0, err
		}
	}
	qc := context.Background()
	var cancel context.CancelFunc
	if s.QueryTimeout > 0 {
		qc, cancel = context.WithTimeout(qc, s.QueryTimeout)
		defer cancel()
	}
	rows, err := df.CollectContext(qc)
	if err != nil {
		writeErr(out, err)
		return planHash, 0, err
	}
	fmt.Fprintf(out, "OK %d %d\n", len(cols), len(rows))
	out.WriteString(strings.Join(cols, "\t"))
	out.WriteByte('\n')
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				out.WriteByte('\t')
			}
			out.WriteString(sanitize(row.FormatValue(v)))
		}
		out.WriteByte('\n')
	}
	out.WriteByte('\n')
	return planHash, len(rows), nil
}

func writeErr(out *bufio.Writer, err error) {
	fmt.Fprintf(out, "ERR %s\n", sanitize(err.Error()))
}

// sanitize keeps the line protocol intact.
func sanitize(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	return strings.ReplaceAll(s, "\t", " ")
}

// ---------------------------------------------------------------------------
// Client

// Client is the matching line-protocol client.
type Client struct {
	conn net.Conn
	in   *bufio.Scanner
	out  *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &Client{conn: conn, in: sc, out: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Result is a query result.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Query runs one SQL statement.
func (c *Client) Query(sql string) (*Result, error) {
	if strings.ContainsAny(sql, "\n") {
		sql = strings.ReplaceAll(sql, "\n", " ")
	}
	if _, err := c.out.WriteString(sql + "\n"); err != nil {
		return nil, err
	}
	if err := c.out.Flush(); err != nil {
		return nil, err
	}
	if !c.in.Scan() {
		return nil, fmt.Errorf("sqlserver: connection closed")
	}
	status := c.in.Text()
	if strings.HasPrefix(status, "ERR ") {
		return nil, fmt.Errorf("sqlserver: %s", strings.TrimPrefix(status, "ERR "))
	}
	var ncols, nrows int
	if _, err := fmt.Sscanf(status, "OK %d %d", &ncols, &nrows); err != nil {
		return nil, fmt.Errorf("sqlserver: bad status %q", status)
	}
	res := &Result{}
	if ncols == 0 {
		c.in.Scan() // blank terminator
		return res, nil
	}
	if !c.in.Scan() {
		return nil, fmt.Errorf("sqlserver: truncated header")
	}
	res.Columns = strings.Split(c.in.Text(), "\t")
	for i := 0; i < nrows; i++ {
		if !c.in.Scan() {
			return nil, fmt.Errorf("sqlserver: truncated results")
		}
		res.Rows = append(res.Rows, strings.Split(c.in.Text(), "\t"))
	}
	c.in.Scan() // blank terminator
	return res, nil
}
