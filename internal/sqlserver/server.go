// Package sqlserver exposes a Context over TCP with a simple line
// protocol — the reproduction's stand-in for the JDBC/ODBC server in the
// paper's Figure 1, through which business-intelligence tools submit SQL
// (and can call registered UDFs, §3.7).
//
// Protocol (text, newline-delimited):
//
//	client:  <one SQL statement on a single line>\n
//	server:  OK <ncols> <nrows>\n
//	         <tab-separated header>\n
//	         <tab-separated row>\n × nrows
//	         \n                      (blank terminator)
//	or:      ERR <message>\n
//
// Statements are executed sequentially per connection; connections are
// served concurrently.
package sqlserver

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	sparksql "repro"
	"repro/internal/row"
)

// Server serves SQL over a listener.
type Server struct {
	ctx *sparksql.Context
	// MaxRows caps result sizes per query (0 = unlimited).
	MaxRows int
	// QueryTimeout bounds each query's execution (0 = unlimited): on
	// expiry the query's tasks are cancelled and the client gets ERR.
	QueryTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	closed   bool
}

// New builds a server over a context.
func New(ctx *sparksql.Context) *Server {
	return &Server{ctx: ctx, MaxRows: 10_000}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves; it reports the bound address through the returned listener.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l)
	return l.Addr(), nil
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	for in.Scan() {
		query := strings.TrimSpace(in.Text())
		if query == "" {
			continue
		}
		s.execute(out, query)
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// execute runs one statement. A panic anywhere in parsing, planning or
// execution is confined to this query: the client gets an ERR line and the
// connection (and server) stay usable. Task failures arrive as ordinary
// errors from Collect; this recover is the last line of defense for
// non-task panics (e.g. a misbehaving UDF evaluated at plan time).
func (s *Server) execute(out *bufio.Writer, query string) {
	defer func() {
		if rec := recover(); rec != nil {
			writeErr(out, fmt.Errorf("panic while executing query: %v", rec))
		}
	}()
	df, err := s.ctx.SQL(query)
	if err != nil {
		writeErr(out, err)
		return
	}
	cols := df.Columns()
	if len(cols) == 0 { // DDL
		fmt.Fprintf(out, "OK 0 0\n\n")
		return
	}
	if s.MaxRows > 0 {
		df, err = df.Limit(s.MaxRows)
		if err != nil {
			writeErr(out, err)
			return
		}
	}
	qc := context.Background()
	var cancel context.CancelFunc
	if s.QueryTimeout > 0 {
		qc, cancel = context.WithTimeout(qc, s.QueryTimeout)
		defer cancel()
	}
	rows, err := df.CollectContext(qc)
	if err != nil {
		writeErr(out, err)
		return
	}
	fmt.Fprintf(out, "OK %d %d\n", len(cols), len(rows))
	out.WriteString(strings.Join(cols, "\t"))
	out.WriteByte('\n')
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				out.WriteByte('\t')
			}
			out.WriteString(sanitize(row.FormatValue(v)))
		}
		out.WriteByte('\n')
	}
	out.WriteByte('\n')
}

func writeErr(out *bufio.Writer, err error) {
	fmt.Fprintf(out, "ERR %s\n", sanitize(err.Error()))
}

// sanitize keeps the line protocol intact.
func sanitize(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	return strings.ReplaceAll(s, "\t", " ")
}

// ---------------------------------------------------------------------------
// Client

// Client is the matching line-protocol client.
type Client struct {
	conn net.Conn
	in   *bufio.Scanner
	out  *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &Client{conn: conn, in: sc, out: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Result is a query result.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Query runs one SQL statement.
func (c *Client) Query(sql string) (*Result, error) {
	if strings.ContainsAny(sql, "\n") {
		sql = strings.ReplaceAll(sql, "\n", " ")
	}
	if _, err := c.out.WriteString(sql + "\n"); err != nil {
		return nil, err
	}
	if err := c.out.Flush(); err != nil {
		return nil, err
	}
	if !c.in.Scan() {
		return nil, fmt.Errorf("sqlserver: connection closed")
	}
	status := c.in.Text()
	if strings.HasPrefix(status, "ERR ") {
		return nil, fmt.Errorf("sqlserver: %s", strings.TrimPrefix(status, "ERR "))
	}
	var ncols, nrows int
	if _, err := fmt.Sscanf(status, "OK %d %d", &ncols, &nrows); err != nil {
		return nil, fmt.Errorf("sqlserver: bad status %q", status)
	}
	res := &Result{}
	if ncols == 0 {
		c.in.Scan() // blank terminator
		return res, nil
	}
	if !c.in.Scan() {
		return nil, fmt.Errorf("sqlserver: truncated header")
	}
	res.Columns = strings.Split(c.in.Text(), "\t")
	for i := 0; i < nrows; i++ {
		if !c.in.Scan() {
			return nil, fmt.Errorf("sqlserver: truncated results")
		}
		res.Rows = append(res.Rows, strings.Split(c.in.Text(), "\t"))
	}
	c.in.Scan() // blank terminator
	return res, nil
}
