package sqlserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	sparksql "repro"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	ctx := sparksql.NewContext()
	df, err := ctx.CreateDataFrame(
		sparksql.StructType{}.
			Add("name", sparksql.StringType, false).
			Add("age", sparksql.IntType, false),
		[]sparksql.Row{{"Alice", int32(34)}, {"Bob", int32(19)}, {"Carol", int32(52)}})
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("people")
	if err := ctx.RegisterUDF("shout", func(s string) string { return s + "!" }); err != nil {
		t.Fatal(err)
	}
	srv := New(ctx)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestQueryOverTheWire(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Query("SELECT name, age FROM people WHERE age > 20 ORDER BY age")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "name" {
		t.Fatalf("cols = %v", res.Columns)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "Alice" || res.Rows[1][0] != "Carol" {
		t.Fatalf("rows = %v", res.Rows)
	}

	// UDFs are reachable over the wire (paper §3.7: "once registered, the
	// UDF can also be used via the JDBC/ODBC interface by business
	// intelligence tools").
	res, err = c.Query("SELECT shout(name) FROM people WHERE age = 19")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "Bob!" {
		t.Fatalf("udf over wire = %v", res.Rows)
	}

	// Multiple statements on one connection.
	if _, err := c.Query("SELECT count(*) FROM people"); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsOverTheWire(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query("SELECT nosuch FROM people")
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("err = %v", err)
	}
	// The connection survives an error.
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatalf("connection should survive: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				res, err := c.Query("SELECT count(*) FROM people")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0] != "3" {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxRowsCap(t *testing.T) {
	ctx := sparksql.NewContext()
	ctx.Range(100).RegisterTempTable("r")
	srv := New(ctx)
	srv.MaxRows = 10
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("SELECT id FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("cap not applied: %d rows", len(res.Rows))
	}
}

func TestDDLOverTheWire(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("CREATE TEMPORARY TABLE copy AS SELECT * FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 0 {
		t.Fatalf("DDL result = %v", res)
	}
	out, err := c.Query("SELECT count(*) FROM copy")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0] != "3" {
		t.Fatalf("copy rows = %v", out.Rows)
	}
}

// A query that panics (poisoned UDF) must yield ERR and leave the server —
// same connection and fresh connections — fully usable.
func TestPoisonedQueryLeavesServerUsable(t *testing.T) {
	ctx := sparksql.NewContext()
	df, err := ctx.CreateDataFrame(
		sparksql.StructType{}.Add("name", sparksql.StringType, false),
		[]sparksql.Row{{"Alice"}, {"Bob"}})
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("people")
	if err := ctx.RegisterUDF("poison", func(s string) string { panic("poisoned UDF") }); err != nil {
		t.Fatal(err)
	}
	srv := New(ctx)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT poison(name) FROM people"); err == nil {
		t.Fatal("poisoned query must return ERR")
	} else if !strings.Contains(err.Error(), "poisoned UDF") {
		t.Fatalf("ERR should carry the panic cause: %v", err)
	}
	// Same connection survives.
	res, err := c.Query("SELECT count(*) FROM people")
	if err != nil || res.Rows[0][0] != "2" {
		t.Fatalf("connection poisoned: %v %v", res, err)
	}
	// Fresh connections work too.
	c2, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Query("SELECT name FROM people WHERE name = 'Bob'"); err != nil {
		t.Fatalf("server poisoned: %v", err)
	}
}

// A query exceeding the server's QueryTimeout is cancelled and reported as
// ERR; the server keeps serving.
func TestQueryTimeout(t *testing.T) {
	ctx := sparksql.NewContext()
	df, err := ctx.CreateDataFrame(
		sparksql.StructType{}.Add("name", sparksql.StringType, false),
		[]sparksql.Row{{"a"}, {"b"}, {"c"}, {"d"}})
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("people")
	if err := ctx.RegisterUDF("slow", func(s string) string {
		time.Sleep(80 * time.Millisecond)
		return s
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(ctx)
	srv.QueryTimeout = 20 * time.Millisecond
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT slow(name) FROM people"); err == nil {
		t.Fatal("slow query should be cancelled by QueryTimeout")
	} else if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want a deadline error, got: %v", err)
	}
	// Queries under the timeout still work on the same connection.
	if res, err := c.Query("SELECT count(*) FROM people"); err != nil || res.Rows[0][0] != "4" {
		t.Fatalf("server unusable after timeout: %v %v", res, err)
	}
}

// SHOW METRICS (and its /metrics line-command alias) exposes the engine
// registry over the wire: after one query the executor's task counter and
// the server's own query counter are visible and non-zero.
func TestShowMetricsOverTheWire(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query("SELECT count(*) FROM people"); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"SHOW METRICS", "/metrics"} {
		res, err := c.Query(cmd)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if len(res.Columns) != 2 || res.Columns[0] != "metric" || res.Columns[1] != "value" {
			t.Fatalf("%s cols = %v", cmd, res.Columns)
		}
		vals := map[string]string{}
		for _, r := range res.Rows {
			vals[r[0]] = r[1]
		}
		if v := vals["rdd.tasks.run"]; v == "" || v == "0" {
			t.Fatalf("%s: rdd.tasks.run = %q after a query", cmd, v)
		}
		if v := vals["server.queries"]; v == "" || v == "0" {
			t.Fatalf("%s: server.queries = %q", cmd, v)
		}
		if v := vals["server.query.micros_count"]; v == "" || v == "0" {
			t.Fatalf("%s: latency histogram missing: %q", cmd, v)
		}
	}
}

// The HTTP side serves /metrics as plain text and /trace as a JSONL span
// log whose records round-trip as JSON.
func TestMetricsHTTPEndpoint(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT count(*) FROM people"); err != nil {
		t.Fatal(err)
	}

	haddr, err := srv.ListenAndServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + haddr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	text := get("/metrics")
	for _, want := range []string{"rdd.tasks.run ", "server.queries "} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	trace := get("/trace")
	if strings.TrimSpace(trace) == "" {
		t.Fatal("/trace is empty after a query")
	}
	sc := bufio.NewScanner(strings.NewReader(trace))
	kinds := map[string]bool{}
	for sc.Scan() {
		var span struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("trace line not JSON: %v: %s", err, sc.Text())
		}
		kinds[span.Kind] = true
	}
	for _, want := range []string{"job", "stage", "task"} {
		if !kinds[want] {
			t.Fatalf("/trace missing %q spans (have %v)", want, kinds)
		}
	}
}

// Every statement emits one structured query-log record: successes carry
// query id, plan hash and row count; task failures additionally carry the
// failing stage, partition, attempts and root cause unwrapped from the
// *rdd.JobError chain — the satellite fix for the bare ERR strings.
func TestStructuredQueryLog(t *testing.T) {
	ctx := sparksql.NewContext()
	df, err := ctx.CreateDataFrame(
		sparksql.StructType{}.Add("name", sparksql.StringType, false),
		[]sparksql.Row{{"Alice"}, {"Bob"}})
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("people")
	if err := ctx.RegisterUDF("poison", func(s string) string { panic("poisoned UDF") }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	srv := New(ctx)
	srv.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query("SELECT name FROM people"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT poison(name) FROM people"); err == nil {
		t.Fatal("poisoned query must fail")
	}

	type record struct {
		Msg         string  `json:"msg"`
		QueryID     int64   `json:"query_id"`
		PlanHash    string  `json:"plan_hash"`
		Rows        float64 `json:"rows"`
		Error       string  `json:"error"`
		FailedStage string  `json:"failed_stage"`
		Attempts    float64 `json:"attempts"`
		Cause       string  `json:"cause"`
	}
	var recs []record
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("log line not JSON: %v: %s", err, sc.Text())
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 log records, got %d", len(recs))
	}
	ok, fail := recs[0], recs[1]
	if ok.Msg != "query ok" || ok.Rows != 2 || ok.QueryID == 0 {
		t.Fatalf("success record = %+v", ok)
	}
	if ok.PlanHash == "" || ok.PlanHash == fmt.Sprintf("%016x", 0) {
		t.Fatalf("success record lacks a plan hash: %+v", ok)
	}
	if fail.Msg != "query failed" || fail.QueryID != ok.QueryID+1 {
		t.Fatalf("failure record = %+v", fail)
	}
	if fail.FailedStage == "" || fail.Attempts == 0 {
		t.Fatalf("failure record lacks JobError context: %+v", fail)
	}
	if !strings.Contains(fail.Cause, "poisoned UDF") {
		t.Fatalf("failure record lacks the root cause: %+v", fail)
	}
}

// ANALYZE TABLE and EXPLAIN work over the wire: after collecting
// statistics, EXPLAIN output carries est: annotations reflecting the
// table's real cardinality.
func TestAnalyzeAndExplainOverTheWire(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query("ANALYZE TABLE people COMPUTE STATISTICS"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("EXPLAIN SELECT name FROM people WHERE age > 20")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("cols = %v", res.Columns)
	}
	text := ""
	for _, r := range res.Rows {
		text += r[0] + "\n"
	}
	for _, want := range []string{"== Optimized Plan ==", "== Physical Plan ==", "est: "} {
		if !strings.Contains(text, want) {
			t.Fatalf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}
	// 3 rows analyzed: the scan's estimate is exact.
	if !strings.Contains(text, "est: 3 rows") {
		t.Fatalf("EXPLAIN should reflect analyzed row count:\n%s", text)
	}
}

// startServerWith is startServer with configuration applied before the
// listener starts (fields like DrainTimeout are read by handler
// goroutines and must not be written once serving).
func startServerWith(t *testing.T, configure func(*Server)) (*Server, string) {
	t.Helper()
	ctx := sparksql.NewContext()
	df, err := ctx.CreateDataFrame(
		sparksql.StructType{}.
			Add("name", sparksql.StringType, false).
			Add("age", sparksql.IntType, false),
		[]sparksql.Row{{"Alice", int32(34)}, {"Bob", int32(19)}, {"Carol", int32(52)}})
	if err != nil {
		t.Fatal(err)
	}
	df.RegisterTempTable("people")
	srv := New(ctx)
	configure(srv)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestGracefulDrain(t *testing.T) {
	srv, addr := startServerWith(t, func(s *Server) {
		s.DrainTimeout = 2 * time.Second
	})

	// A slow in-flight statement: hold it open with a UDF that blocks
	// until we release it, so Close must drain it rather than cut it off.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	if err := srv.ctx.RegisterUDF("slow", func(s string) string {
		once.Do(func() { close(started) })
		<-release
		return s
	}); err != nil {
		t.Fatal(err)
	}

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c1.Query("SELECT slow(name) FROM people")
		done <- outcome{res, err}
	}()
	<-started

	// Close in the background: it must block on the in-flight statement.
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a statement was in flight")
	case <-time.After(100 * time.Millisecond):
	}

	// A second statement on a pre-existing connection is rejected.
	c2, err := Dial(addr)
	if err == nil {
		defer c2.Close()
		if _, qerr := c2.Query("SELECT 1"); qerr == nil ||
			!strings.Contains(qerr.Error(), "shutting down") {
			t.Fatalf("draining server accepted new statement: %v", qerr)
		}
	}

	// Release the slow query: it completes normally and Close returns.
	close(release)
	out := <-done
	if out.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", out.err)
	}
	if len(out.res.Rows) != 3 {
		t.Fatalf("in-flight query returned %d rows, want 3", len(out.res.Rows))
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after drain completed")
	}
}

func TestDrainTimeoutForcesClose(t *testing.T) {
	srv, addr := startServerWith(t, func(s *Server) {
		s.DrainTimeout = 200 * time.Millisecond
	})

	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	var once sync.Once
	if err := srv.ctx.RegisterUDF("stall", func(s string) string {
		once.Do(func() { close(started) })
		<-release
		return s
	}); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Query("SELECT stall(name) FROM people")
	<-started

	doneC := make(chan struct{})
	go func() {
		srv.Close()
		close(doneC)
	}()
	select {
	case <-doneC:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung past DrainTimeout on a stuck statement")
	}
}

func TestConnTimeoutDropsIdleConnections(t *testing.T) {
	_, addr := startServerWith(t, func(s *Server) {
		s.ConnTimeout = 150 * time.Millisecond
	})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// An active statement works...
	if _, err := c.Query("SELECT name FROM people"); err != nil {
		t.Fatal(err)
	}
	// ...then the idle connection is dropped at the read deadline.
	time.Sleep(400 * time.Millisecond)
	if _, err := c.Query("SELECT name FROM people"); err == nil {
		t.Fatal("idle connection survived past ConnTimeout")
	}
}
