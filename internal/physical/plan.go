// Package physical implements physical planning and execution (paper
// §4.3.3): strategies translate an optimized logical plan into physical
// operators over the RDD engine, with a cost model selecting broadcast
// versus shuffled hash joins, rule-based physical optimizations that
// pipeline projections and filters into one map operation, and a choice
// between compiled (closure-fused) and interpreted expression evaluation
// (§4.3.4).
package physical

import (
	"strings"

	"repro/internal/expr"
	"repro/internal/rdd"
	"repro/internal/row"
)

// ExecContext carries execution-wide configuration.
type ExecContext struct {
	// RDD is the task execution context.
	RDD *rdd.Context
	// Codegen selects compiled closures (true) or the tree-walking
	// interpreter (false) for expression evaluation — the Figure 4 knob.
	Codegen bool
	// Vectorized enables batch-at-a-time execution over the columnar cache
	// (VectorizedPipelineExec); off, those nodes run the identical
	// row-at-a-time pipeline.
	Vectorized bool
	// ShufflePartitions is the reducer count for exchanges.
	ShufflePartitions int
	// Metrics enables per-operator instrumentation: each exec node attaches
	// an OperatorMetrics (via its PlanMetrics embed) and records rows,
	// batches and wall time per partition. EXPLAIN ANALYZE reads them back.
	Metrics bool
}

// evaluator builds a row evaluator for a bound expression honoring the
// codegen setting.
func (ctx *ExecContext) evaluator(e expr.Expression) func(row.Row) any {
	if ctx.Codegen {
		return expr.Compile(e)
	}
	return e.Eval
}

// predicate builds a filter (NULL = reject) honoring the codegen setting.
func (ctx *ExecContext) predicate(e expr.Expression) func(row.Row) bool {
	if ctx.Codegen {
		return expr.CompilePredicate(e)
	}
	return func(r row.Row) bool { return e.Eval(r) == true }
}

// SparkPlan is a physical operator. Execute is called once per query; the
// resulting RDD is lazy.
type SparkPlan interface {
	Children() []SparkPlan
	WithNewChildren(children []SparkPlan) SparkPlan
	// Output lists the attributes the operator produces, in row order.
	Output() []*expr.AttributeReference
	// Execute builds the operator's RDD.
	Execute(ctx *ExecContext) *rdd.RDD[row.Row]
	SimpleString() string
	String() string
}

// Format renders a physical plan subtree with indentation.
func Format(p SparkPlan) string {
	var sb strings.Builder
	writeTree(&sb, p, 0)
	return sb.String()
}

func writeTree(sb *strings.Builder, p SparkPlan, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(p.SimpleString())
	if ca, ok := p.(CostAnnotated); ok {
		if est, has := ca.Estimate(); has {
			sb.WriteString("  (")
			sb.WriteString(est.EstString())
			sb.WriteString(")")
		}
	}
	if ma, ok := p.(MetricsAnnotated); ok {
		if m := ma.Runtime(); m != nil {
			sb.WriteString("  (")
			sb.WriteString(m.ActualString())
			sb.WriteString(")")
		}
	}
	sb.WriteByte('\n')
	for _, c := range p.Children() {
		writeTree(sb, c, depth+1)
	}
}

// bind rewrites attributes in e to ordinals of the input attribute list.
func bind(e expr.Expression, input []*expr.AttributeReference) expr.Expression {
	return expr.MustBind(e, input)
}

func bindAll(exprs []expr.Expression, input []*expr.AttributeReference) []expr.Expression {
	out := make([]expr.Expression, len(exprs))
	for i, e := range exprs {
		out[i] = bind(e, input)
	}
	return out
}

func exprListString(exprs []expr.Expression) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

func attrsString(attrs []*expr.AttributeReference) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
