// Package physical implements physical planning and execution (paper
// §4.3.3): strategies translate an optimized logical plan into physical
// operators over the RDD engine, with a cost model selecting broadcast
// versus shuffled hash joins, rule-based physical optimizations that
// pipeline projections and filters into one map operation, and a choice
// between compiled (closure-fused) and interpreted expression evaluation
// (§4.3.4).
package physical

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dfs"
	"repro/internal/expr"
	"repro/internal/memory"
	"repro/internal/rdd"
	"repro/internal/row"
)

// ExecContext carries execution-wide configuration.
type ExecContext struct {
	// RDD is the task execution context.
	RDD *rdd.Context
	// Codegen selects compiled closures (true) or the tree-walking
	// interpreter (false) for expression evaluation — the Figure 4 knob.
	Codegen bool
	// Vectorized enables batch-at-a-time execution over the columnar cache
	// (VectorizedPipelineExec); off, those nodes run the identical
	// row-at-a-time pipeline.
	Vectorized bool
	// ShufflePartitions is the reducer count for exchanges.
	ShufflePartitions int
	// Metrics enables per-operator instrumentation: each exec node attaches
	// an OperatorMetrics (via its PlanMetrics embed) and records rows,
	// batches and wall time per partition. EXPLAIN ANALYZE reads them back.
	Metrics bool
	// Adaptive enables stage-graph re-planning from runtime statistics
	// (AdaptPlan); nil executes the static plan unchanged, byte-identical
	// to pre-adaptive behavior.
	Adaptive *AdaptiveConfig
	// Pool is the query's memory budget; when non-nil (and SpillFS is set)
	// the blocking operators reserve memory through it and spill sorted
	// runs / hash partitions to SpillFS instead of buffering unbounded.
	Pool *memory.Pool
	// SpillFS receives spill files; typically the engine's shared simulated
	// DFS so spill I/O is metered and chaos-testable like any other file.
	SpillFS *dfs.FileSystem

	// Spill-scope tracking: every task-local spill scope registers its path
	// prefix here so CleanupSpills can sweep stragglers at query end even
	// after cancellation (the per-task defers are the primary cleanup).
	spillSeq      atomic.Int64
	spillMu       sync.Mutex
	spillPrefixes map[string]struct{}
}

// SpillEnabled reports whether operators should run their spilling paths.
func (ctx *ExecContext) SpillEnabled() bool {
	return ctx.Pool != nil && ctx.SpillFS != nil
}

// newSpillPrefix reserves a query-unique DFS path prefix for one spill
// scope (one operator instance in one task attempt) and registers it for
// end-of-query cleanup.
func (ctx *ExecContext) newSpillPrefix(op string) string {
	prefix := fmt.Sprintf("/spill/%s-%d", op, ctx.spillSeq.Add(1))
	ctx.spillMu.Lock()
	if ctx.spillPrefixes == nil {
		ctx.spillPrefixes = make(map[string]struct{})
	}
	ctx.spillPrefixes[prefix] = struct{}{}
	ctx.spillMu.Unlock()
	return prefix
}

// releaseSpillPrefix deletes a scope's files and drops its registration.
func (ctx *ExecContext) releaseSpillPrefix(prefix string) {
	if ctx.SpillFS != nil {
		ctx.SpillFS.DeletePrefix(prefix)
	}
	ctx.spillMu.Lock()
	delete(ctx.spillPrefixes, prefix)
	ctx.spillMu.Unlock()
}

// CleanupSpills deletes every spill file still registered — the query-level
// backstop run (deferred) by Collect/Count/ExplainAnalyze so no temp files
// outlive the query, completed or cancelled. Safe to call repeatedly.
func (ctx *ExecContext) CleanupSpills() {
	if ctx.SpillFS == nil {
		return
	}
	ctx.spillMu.Lock()
	prefixes := make([]string, 0, len(ctx.spillPrefixes))
	for p := range ctx.spillPrefixes {
		prefixes = append(prefixes, p)
	}
	ctx.spillPrefixes = nil
	ctx.spillMu.Unlock()
	for _, p := range prefixes {
		ctx.SpillFS.DeletePrefix(p)
	}
}

// evaluator builds a row evaluator for a bound expression honoring the
// codegen setting.
func (ctx *ExecContext) evaluator(e expr.Expression) func(row.Row) any {
	if ctx.Codegen {
		return expr.Compile(e)
	}
	return e.Eval
}

// predicate builds a filter (NULL = reject) honoring the codegen setting.
func (ctx *ExecContext) predicate(e expr.Expression) func(row.Row) bool {
	if ctx.Codegen {
		return expr.CompilePredicate(e)
	}
	return func(r row.Row) bool { return e.Eval(r) == true }
}

// SparkPlan is a physical operator. Execute is called once per query; the
// resulting RDD is lazy.
type SparkPlan interface {
	Children() []SparkPlan
	WithNewChildren(children []SparkPlan) SparkPlan
	// Output lists the attributes the operator produces, in row order.
	Output() []*expr.AttributeReference
	// Execute builds the operator's RDD.
	Execute(ctx *ExecContext) *rdd.RDD[row.Row]
	SimpleString() string
	String() string
}

// Format renders a physical plan subtree with indentation.
func Format(p SparkPlan) string {
	var sb strings.Builder
	writeTree(&sb, p, 0)
	return sb.String()
}

func writeTree(sb *strings.Builder, p SparkPlan, depth int) {
	if qs, ok := p.(*QueryStageExec); ok {
		// Materialization barriers are an execution detail: print the
		// subtree they hold at the same depth, so a stage-materialized
		// tree and the equivalent live tree render identical strings
		// (the cluster plan-hash parity check depends on this).
		writeTree(sb, qs.Child, depth)
		return
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(p.SimpleString())
	if fa, ok := p.(FusionAnnotated); ok {
		if note := fa.Fusion(); note != "" {
			sb.WriteString("  (")
			sb.WriteString(note)
			sb.WriteString(")")
		}
	}
	if ca, ok := p.(CostAnnotated); ok {
		if est, has := ca.Estimate(); has {
			sb.WriteString("  (")
			sb.WriteString(est.EstString())
			sb.WriteString(")")
		}
	}
	if ma, ok := p.(MetricsAnnotated); ok {
		if m := ma.Runtime(); m != nil {
			sb.WriteString("  (")
			sb.WriteString(m.ActualString())
			sb.WriteString(")")
		}
	}
	if aa, ok := p.(AdaptiveAnnotated); ok {
		if note := aa.Adapted(); note != "" {
			sb.WriteString("  (")
			sb.WriteString(note)
			sb.WriteString(")")
		}
	}
	sb.WriteByte('\n')
	for _, c := range p.Children() {
		writeTree(sb, c, depth+1)
	}
}

// bind rewrites attributes in e to ordinals of the input attribute list.
func bind(e expr.Expression, input []*expr.AttributeReference) expr.Expression {
	return expr.MustBind(e, input)
}

func bindAll(exprs []expr.Expression, input []*expr.AttributeReference) []expr.Expression {
	out := make([]expr.Expression, len(exprs))
	for i, e := range exprs {
		out[i] = bind(e, input)
	}
	return out
}

func exprListString(exprs []expr.Expression) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

func attrsString(attrs []*expr.AttributeReference) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
