package physical

import (
	"fmt"
	"time"

	"repro/internal/expr"
	"repro/internal/rdd"
	"repro/internal/row"
)

// ProjectExec evaluates a projection list per row.
type ProjectExec struct {
	PlanEstimate
	PlanMetrics
	List  []expr.Expression
	Child SparkPlan
}

func (p *ProjectExec) Children() []SparkPlan { return []SparkPlan{p.Child} }
func (p *ProjectExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *p
	c.Child = children[0]
	return &c
}
func (p *ProjectExec) Output() []*expr.AttributeReference {
	out := make([]*expr.AttributeReference, len(p.List))
	for i, e := range p.List {
		out[i] = e.(expr.Named).ToAttribute()
	}
	return out
}
func (p *ProjectExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	bound := bindAll(p.List, p.Child.Output())
	evals := make([]func(row.Row) any, len(bound))
	for i, e := range bound {
		evals[i] = ctx.evaluator(e)
	}
	om := p.EnableMetrics(ctx.Metrics)
	return rdd.MapPartitions(p.Child.Execute(ctx), func(_ int, in []row.Row) []row.Row {
		start := time.Now()
		out := make([]row.Row, len(in))
		for i, r := range in {
			o := make(row.Row, len(evals))
			for j, ev := range evals {
				o[j] = ev(r)
			}
			out[i] = o
		}
		om.RecordPartition(len(out), time.Since(start))
		return out
	})
}
func (p *ProjectExec) SimpleString() string { return "Project [" + exprListString(p.List) + "]" }
func (p *ProjectExec) String() string       { return Format(p) }

// FilterExec keeps rows matching the predicate.
type FilterExec struct {
	PlanEstimate
	PlanMetrics
	Cond  expr.Expression
	Child SparkPlan
}

func (f *FilterExec) Children() []SparkPlan { return []SparkPlan{f.Child} }
func (f *FilterExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *f
	c.Child = children[0]
	return &c
}
func (f *FilterExec) Output() []*expr.AttributeReference { return f.Child.Output() }
func (f *FilterExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	pred := ctx.predicate(bind(f.Cond, f.Child.Output()))
	om := f.EnableMetrics(ctx.Metrics)
	return rdd.MapPartitions(f.Child.Execute(ctx), func(_ int, in []row.Row) []row.Row {
		start := time.Now()
		out := make([]row.Row, 0, len(in))
		for _, r := range in {
			if pred(r) {
				out = append(out, r)
			}
		}
		om.RecordPartition(len(out), time.Since(start))
		return out
	})
}
func (f *FilterExec) SimpleString() string { return fmt.Sprintf("Filter %s", f.Cond) }
func (f *FilterExec) String() string       { return Format(f) }

// stage is one step of a fused pipeline.
type stage struct {
	isFilter bool
	cond     expr.Expression   // when isFilter
	list     []expr.Expression // when !isFilter
}

// PipelineExec fuses a chain of projections and filters into a single
// MapPartitions pass — the paper's §4.3.3 rule-based physical optimization
// ("pipelining projections or filters into one Spark map operation"). The
// CollapsePipelines preparation rule builds these from adjacent
// Project/Filter operators.
type PipelineExec struct {
	PlanEstimate
	PlanMetrics
	FusionNote
	// Stages are listed bottom (first applied) to top.
	Stages []stage
	Child  SparkPlan
}

func (p *PipelineExec) Children() []SparkPlan { return []SparkPlan{p.Child} }
func (p *PipelineExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *p
	c.Child = children[0]
	return &c
}
func (p *PipelineExec) Output() []*expr.AttributeReference {
	return stagesOutput(p.Stages, p.Child.Output())
}

// compiledStage is a stage bound and compiled against its input schema.
type compiledStage struct {
	isFilter bool
	pred     func(row.Row) bool
	evals    []func(row.Row) any
}

func (p *PipelineExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	attrs := p.Child.Output()
	stages := make([]compiledStage, len(p.Stages))
	for i, st := range p.Stages {
		if st.isFilter {
			stages[i] = compiledStage{isFilter: true, pred: ctx.predicate(bind(st.cond, attrs))}
			continue
		}
		bound := bindAll(st.list, attrs)
		evals := make([]func(row.Row) any, len(bound))
		for j, e := range bound {
			evals[j] = ctx.evaluator(e)
		}
		stages[i] = compiledStage{evals: evals}
		out := make([]*expr.AttributeReference, len(st.list))
		for j, e := range st.list {
			out[j] = e.(expr.Named).ToAttribute()
		}
		attrs = out
	}
	om := p.EnableMetrics(ctx.Metrics)
	return rdd.MapPartitions(p.Child.Execute(ctx), func(_ int, in []row.Row) []row.Row {
		start := time.Now()
		out := make([]row.Row, 0, len(in))
	rows:
		for _, r := range in {
			for _, st := range stages {
				if st.isFilter {
					if !st.pred(r) {
						continue rows
					}
					continue
				}
				next := make(row.Row, len(st.evals))
				for i, ev := range st.evals {
					next[i] = ev(r)
				}
				r = next
			}
			out = append(out, r)
		}
		om.RecordPartition(len(out), time.Since(start))
		return out
	})
}
func (p *PipelineExec) SimpleString() string {
	return fmt.Sprintf("WholeStagePipeline (%d stages)", len(p.Stages))
}
func (p *PipelineExec) String() string { return Format(p) }

// Collapse is the physical preparation rule fusing adjacent Project/Filter
// operators into PipelineExec nodes, bottom-up.
func Collapse(p SparkPlan) SparkPlan {
	children := p.Children()
	if len(children) > 0 {
		newChildren := make([]SparkPlan, len(children))
		changed := false
		for i, c := range children {
			nc := Collapse(c)
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			p = p.WithNewChildren(newChildren)
		}
	}
	switch n := p.(type) {
	case *ProjectExec:
		// The fused pipeline produces the top operator's output, so it
		// inherits that operator's estimate.
		return transferEstimate(fuse(stage{list: n.List}, n.Child), n)
	case *FilterExec:
		return transferEstimate(fuse(stage{isFilter: true, cond: n.Cond}, n.Child), n)
	}
	return p
}

func fuse(top stage, child SparkPlan) SparkPlan {
	if pipe, ok := child.(*PipelineExec); ok {
		stages := make([]stage, 0, len(pipe.Stages)+1)
		stages = append(stages, pipe.Stages...)
		stages = append(stages, top)
		return &PipelineExec{Stages: stages, Child: pipe.Child}
	}
	return &PipelineExec{Stages: []stage{top}, Child: child}
}
