package physical

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
)

// rowsSize sums the approximate in-memory size of a materialized build
// side, for the joins' build-bytes metric.
func rowsSize(rows []row.Row) int64 {
	var n int64
	for _, r := range rows {
		n += r.ObjectSize()
	}
	return n
}

// lazyBuild memoizes a per-query build-side materialization (broadcast
// hash table, collected rows, interval tree, ...) that runs as a nested
// job inside the first probe task — so build-side failures and
// cancellation flow through the task path instead of panicking at
// plan-build time.
type lazyBuild[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (b *lazyBuild[T]) get(jc context.Context, build func(context.Context) (T, error)) (T, error) {
	b.once.Do(func() { b.val, b.err = build(jc) })
	return b.val, b.err
}

// Join execution. The planner extracts equi-join keys from the join
// condition; the residual (non-equi) condition is evaluated on each
// candidate pair. Broadcast-vs-shuffled selection is the planner's
// cost-based decision (paper §4.3.3).

// joinOutput computes the output attributes for a join type.
func joinOutput(t plan.JoinType, left, right []*expr.AttributeReference) []*expr.AttributeReference {
	switch t {
	case plan.LeftSemiJoin:
		return left
	case plan.LeftOuterJoin:
		return append(append([]*expr.AttributeReference{}, left...), nullable(right)...)
	case plan.RightOuterJoin:
		return append(nullable(left), right...)
	case plan.FullOuterJoin:
		return append(nullable(left), nullable(right)...)
	default:
		return append(append([]*expr.AttributeReference{}, left...), right...)
	}
}

func nullable(attrs []*expr.AttributeReference) []*expr.AttributeReference {
	out := make([]*expr.AttributeReference, len(attrs))
	for i, a := range attrs {
		out[i] = a.WithNullable(true)
	}
	return out
}

// keyFunc builds the grouping key of a row under bound key evaluators.
func keyFunc(evals []func(row.Row) any) func(row.Row) (string, bool) {
	ords := make([]int, len(evals))
	for i := range ords {
		ords[i] = i
	}
	return func(r row.Row) (string, bool) {
		kv := make(row.Row, len(evals))
		for i, ev := range evals {
			v := ev(r)
			if v == nil {
				return "", false // NULL keys never match in equi-joins
			}
			kv[i] = v
		}
		return row.GroupKey(kv, ords), true
	}
}

func bindKeys(ctx *ExecContext, keys []expr.Expression, input []*expr.AttributeReference) []func(row.Row) any {
	out := make([]func(row.Row) any, len(keys))
	for i, k := range keys {
		out[i] = ctx.evaluator(bind(k, input))
	}
	return out
}

// residualPred binds the residual condition over the concatenated
// (left ++ right) row; nil condition means always true.
func residualPred(ctx *ExecContext, cond expr.Expression, left, right []*expr.AttributeReference) func(l, r row.Row) bool {
	if cond == nil {
		return func(l, r row.Row) bool { return true }
	}
	input := append(append([]*expr.AttributeReference{}, left...), right...)
	pred := ctx.predicate(bind(cond, input))
	nl := len(left)
	return func(l, r row.Row) bool {
		joined := make(row.Row, nl+len(r))
		copy(joined, l)
		copy(joined[nl:], r)
		return pred(joined)
	}
}

func concatRows(l, r row.Row) row.Row {
	out := make(row.Row, len(l)+len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return out
}

func nullRow(n int) row.Row { return make(row.Row, n) }

// BroadcastHashJoinExec collects the build side once, broadcasts the hash
// table, and streams the probe side with no shuffle — chosen when the build
// side's estimated size is under the broadcast threshold (paper §4.3.3,
// "for relations that are known to be small, Spark SQL uses a broadcast
// join, using a peer-to-peer broadcast facility available in Spark").
type BroadcastHashJoinExec struct {
	PlanEstimate
	PlanMetrics
	FusionNote
	AdaptiveNote
	Left, Right         SparkPlan
	LeftKeys, RightKeys []expr.Expression
	Type                plan.JoinType
	Residual            expr.Expression
	// BuildRight marks which side is collected (true = right).
	BuildRight bool
}

func (j *BroadcastHashJoinExec) Children() []SparkPlan { return []SparkPlan{j.Left, j.Right} }
func (j *BroadcastHashJoinExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *j
	c.Left, c.Right = children[0], children[1]
	return &c
}
func (j *BroadcastHashJoinExec) Output() []*expr.AttributeReference {
	return joinOutput(j.Type, j.Left.Output(), j.Right.Output())
}
func (j *BroadcastHashJoinExec) SimpleString() string {
	side := "left"
	if j.BuildRight {
		side = "right"
	}
	return fmt.Sprintf("BroadcastHashJoin %s build=%s keys=[%s]=[%s]",
		j.Type, side, exprListString(j.LeftKeys), exprListString(j.RightKeys))
}
func (j *BroadcastHashJoinExec) String() string { return Format(j) }

func (j *BroadcastHashJoinExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	leftOut, rightOut := j.Left.Output(), j.Right.Output()
	match := residualPred(ctx, j.Residual, leftOut, rightOut)
	om := j.EnableMetrics(ctx.Metrics)

	if j.BuildRight {
		buildKey := keyFunc(bindKeys(ctx, j.RightKeys, rightOut))
		probeKey := keyFunc(bindKeys(ctx, j.LeftKeys, leftOut))
		build := j.Right.Execute(ctx)
		lazy := &lazyBuild[map[string][]row.Row]{}
		nRight := len(rightOut)
		return rdd.MapPartitionsCtx(j.Left.Execute(ctx), func(jc context.Context, _ int, in []row.Row) ([]row.Row, error) {
			table, err := lazy.get(jc, func(jc context.Context) (map[string][]row.Row, error) {
				rows, err := build.CollectContext(jc)
				if err != nil {
					return nil, err
				}
				if om != nil {
					om.RecordBuild(len(rows), rowsSize(rows))
				}
				return buildHashTable(rows, buildKey), nil
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			var out []row.Row
			for _, l := range in {
				out = appendProbeRight(out, l, table, probeKey, match, j.Type, nRight)
			}
			om.RecordPartition(len(out), time.Since(start))
			return out, nil
		})
	}

	// Build left, probe right (right-outer joins stream the right side).
	buildKey := keyFunc(bindKeys(ctx, j.LeftKeys, leftOut))
	probeKey := keyFunc(bindKeys(ctx, j.RightKeys, rightOut))
	build := j.Left.Execute(ctx)
	lazy := &lazyBuild[map[string][]row.Row]{}
	nLeft := len(leftOut)
	return rdd.MapPartitionsCtx(j.Right.Execute(ctx), func(jc context.Context, _ int, in []row.Row) ([]row.Row, error) {
		table, err := lazy.get(jc, func(jc context.Context) (map[string][]row.Row, error) {
			rows, err := build.CollectContext(jc)
			if err != nil {
				return nil, err
			}
			if om != nil {
				om.RecordBuild(len(rows), rowsSize(rows))
			}
			return buildHashTable(rows, buildKey), nil
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var out []row.Row
		for _, r := range in {
			out = appendProbeLeft(out, r, table, probeKey, match, j.Type, nLeft)
		}
		om.RecordPartition(len(out), time.Since(start))
		return out, nil
	})
}

func buildHashTable(rows []row.Row, key func(row.Row) (string, bool)) map[string][]row.Row {
	t := make(map[string][]row.Row, len(rows))
	for _, r := range rows {
		if k, ok := key(r); ok {
			t[k] = append(t[k], r)
		}
	}
	return t
}

// appendProbeRight joins probe row l (left) against a right-side hash table.
func appendProbeRight(out []row.Row, l row.Row, table map[string][]row.Row,
	probeKey func(row.Row) (string, bool), match func(l, r row.Row) bool,
	t plan.JoinType, nRight int) []row.Row {
	matched := false
	if k, ok := probeKey(l); ok {
		for _, r := range table[k] {
			if match(l, r) {
				matched = true
				if t == plan.LeftSemiJoin {
					return append(out, l)
				}
				out = append(out, concatRows(l, r))
			}
		}
	}
	if !matched && t == plan.LeftOuterJoin {
		out = append(out, concatRows(l, nullRow(nRight)))
	}
	return out
}

// appendProbeLeft joins probe row r (right) against a left-side hash table.
func appendProbeLeft(out []row.Row, r row.Row, table map[string][]row.Row,
	probeKey func(row.Row) (string, bool), match func(l, r row.Row) bool,
	t plan.JoinType, nLeft int) []row.Row {
	matched := false
	if k, ok := probeKey(r); ok {
		for _, l := range table[k] {
			if match(l, r) {
				matched = true
				out = append(out, concatRows(l, r))
			}
		}
	}
	if !matched && t == plan.RightOuterJoin {
		out = append(out, concatRows(nullRow(nLeft), r))
	}
	return out
}

// ShuffledHashJoinExec hash-partitions both sides on the join keys and
// joins partition-by-partition — the general path when neither side is
// small enough to broadcast.
type ShuffledHashJoinExec struct {
	PlanEstimate
	PlanMetrics
	AdaptiveNote
	Left, Right         SparkPlan
	LeftKeys, RightKeys []expr.Expression
	Type                plan.JoinType
	Residual            expr.Expression
	// Partitions, when positive, caps the exchange's reducer count below
	// the session default (chosen by the planner from the estimated input
	// size).
	Partitions int
	// SkewSplits, when set (length = the exchange's effective reducer
	// count), splits reduce partition i into SkewSplits[i] contiguous
	// probe-side chunks, each joined against that partition's full build
	// bucket as its own task. Chunk outputs concatenated in (partition,
	// chunk) order are byte-identical to the unsplit join for the probe-
	// order-preserving types (Inner/Cross/LeftOuter/LeftSemi); the
	// adaptive driver never splits the others.
	SkewSplits []int
}

func (j *ShuffledHashJoinExec) Children() []SparkPlan { return []SparkPlan{j.Left, j.Right} }
func (j *ShuffledHashJoinExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *j
	c.Left, c.Right = children[0], children[1]
	return &c
}
func (j *ShuffledHashJoinExec) Output() []*expr.AttributeReference {
	return joinOutput(j.Type, j.Left.Output(), j.Right.Output())
}
func (j *ShuffledHashJoinExec) SimpleString() string {
	s := fmt.Sprintf("ShuffledHashJoin %s keys=[%s]=[%s]",
		j.Type, exprListString(j.LeftKeys), exprListString(j.RightKeys))
	if j.Partitions > 0 {
		s += fmt.Sprintf(" parts=%d", j.Partitions)
	}
	return s
}
func (j *ShuffledHashJoinExec) String() string { return Format(j) }

func (j *ShuffledHashJoinExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	leftOut, rightOut := j.Left.Output(), j.Right.Output()
	leftKey := keyFunc(bindKeys(ctx, j.LeftKeys, leftOut))
	rightKey := keyFunc(bindKeys(ctx, j.RightKeys, rightOut))
	match := residualPred(ctx, j.Residual, leftOut, rightOut)
	n := ctx.ShufflePartitions
	if j.Partitions > 0 && j.Partitions < n {
		n = j.Partitions
	}

	leftShuf := rdd.PartitionByHashCodec(j.Left.Execute(ctx), n, func(r row.Row) uint64 {
		k, ok := leftKey(r)
		if !ok {
			return 0
		}
		return row.HashValue(k)
	}, rowShuffleCodec)
	rightShuf := rdd.PartitionByHashCodec(j.Right.Execute(ctx), n, func(r row.Row) uint64 {
		k, ok := rightKey(r)
		if !ok {
			return 0
		}
		return row.HashValue(k)
	}, rowShuffleCodec)

	nLeft, nRight := len(leftOut), len(rightOut)
	t := j.Type
	om := j.EnableMetrics(ctx.Metrics)
	probe := func(ls, rs []row.Row) []row.Row {
		start := time.Now()
		if om != nil {
			om.RecordBuild(len(rs), rowsSize(rs))
		}
		table := buildHashTable(rs, rightKey)
		var out []row.Row
		rightMatched := make(map[string][]bool)
		if t == plan.FullOuterJoin {
			for k, rows := range table {
				rightMatched[k] = make([]bool, len(rows))
			}
			// NULL-key right rows never enter the hash table but must
			// still appear null-extended in a full outer join.
			for _, r := range rs {
				if _, ok := rightKey(r); !ok {
					out = append(out, concatRows(nullRow(nLeft), r))
				}
			}
		}
		for _, l := range ls {
			matched := false
			if k, ok := leftKey(l); ok {
				for i, r := range table[k] {
					if match(l, r) {
						matched = true
						if t == plan.LeftSemiJoin {
							break
						}
						if t == plan.FullOuterJoin {
							rightMatched[k][i] = true
						}
						out = append(out, concatRows(l, r))
					}
				}
			}
			switch {
			case t == plan.LeftSemiJoin && matched:
				out = append(out, l)
			case !matched && (t == plan.LeftOuterJoin || t == plan.FullOuterJoin):
				out = append(out, concatRows(l, nullRow(nRight)))
			}
		}
		if t == plan.RightOuterJoin {
			// Re-probe from the right for unmatched right rows.
			ltable := buildHashTable(ls, leftKey)
			out = out[:0]
			for _, r := range rs {
				out = appendProbeLeft(out, r, ltable, rightKey, match, t, nLeft)
			}
		}
		if t == plan.FullOuterJoin {
			for k, rows := range table {
				for i, r := range rows {
					if !rightMatched[k][i] {
						out = append(out, concatRows(nullRow(nLeft), r))
					}
				}
			}
		}
		om.RecordPartition(len(out), time.Since(start))
		return out
	}

	if refs := skewChunks(j.SkewSplits, n, t); refs != nil {
		// Skew-split execution: each chunk of an oversized probe bucket
		// joins against that bucket's full build side as its own task, so
		// one hot key no longer serializes behind a single reducer. The
		// memoized shuffles compute their map sides once; chunks fetch.
		return rdd.GenerateCtx(ctx.RDD, "skewjoin", len(refs), func(jc context.Context, q int) ([]row.Row, error) {
			ref := refs[q]
			ls, err := leftShuf.PartitionContext(jc, ref.part)
			if err != nil {
				return nil, err
			}
			rs, err := rightShuf.PartitionContext(jc, ref.part)
			if err != nil {
				return nil, err
			}
			lo := len(ls) * ref.idx / ref.of
			hi := len(ls) * (ref.idx + 1) / ref.of
			return probe(ls[lo:hi], rs), nil
		})
	}

	zipped, err := rdd.ZipPartitions(leftShuf, rightShuf, func(_ int, ls, rs []row.Row) []row.Row {
		return probe(ls, rs)
	})
	if err != nil {
		// Both sides are hash-partitioned to n above; unequal counts here
		// are a planner bug, not a runtime task failure.
		panic(err)
	}
	return zipped
}

// chunkRef addresses one probe-side chunk of one reduce partition.
type chunkRef struct {
	part, idx, of int
}

// skewChunks expands a per-partition split vector into the ordered chunk
// list, or nil when splitting does not apply (no splits, a count mismatch
// from a diverged config, or a join type whose reduce output is not
// probe-input-ordered).
func skewChunks(splits []int, n int, t plan.JoinType) []chunkRef {
	if len(splits) != n || !skewSplittable(t) {
		return nil
	}
	any := false
	total := 0
	for _, s := range splits {
		if s < 1 {
			return nil
		}
		if s > 1 {
			any = true
		}
		total += s
	}
	if !any {
		return nil
	}
	refs := make([]chunkRef, 0, total)
	for p, s := range splits {
		for c := 0; c < s; c++ {
			refs = append(refs, chunkRef{part: p, idx: c, of: s})
		}
	}
	return refs
}

// NestedLoopJoinExec handles joins without equi-keys by collecting the
// right side and testing every pair — the fallback the paper's §7.2 range-
// join research motivates replacing.
type NestedLoopJoinExec struct {
	PlanEstimate
	PlanMetrics
	Left, Right SparkPlan
	Type        plan.JoinType
	Cond        expr.Expression
}

func (j *NestedLoopJoinExec) Children() []SparkPlan { return []SparkPlan{j.Left, j.Right} }
func (j *NestedLoopJoinExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *j
	c.Left, c.Right = children[0], children[1]
	return &c
}
func (j *NestedLoopJoinExec) Output() []*expr.AttributeReference {
	return joinOutput(j.Type, j.Left.Output(), j.Right.Output())
}
func (j *NestedLoopJoinExec) SimpleString() string {
	return fmt.Sprintf("NestedLoopJoin %s %v", j.Type, j.Cond)
}
func (j *NestedLoopJoinExec) String() string { return Format(j) }

func (j *NestedLoopJoinExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	leftOut, rightOut := j.Left.Output(), j.Right.Output()
	match := residualPred(ctx, j.Cond, leftOut, rightOut)
	build := j.Right.Execute(ctx)
	lazy := &lazyBuild[[]row.Row]{}
	nRight := len(rightOut)
	t := j.Type
	om := j.EnableMetrics(ctx.Metrics)
	return rdd.MapPartitionsCtx(j.Left.Execute(ctx), func(jc context.Context, _ int, in []row.Row) ([]row.Row, error) {
		rightRows, err := lazy.get(jc, func(jc context.Context) ([]row.Row, error) {
			rows, err := build.CollectContext(jc)
			if err != nil {
				return nil, err
			}
			if om != nil {
				om.RecordBuild(len(rows), rowsSize(rows))
			}
			return rows, nil
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var out []row.Row
		for _, l := range in {
			matched := false
			for _, r := range rightRows {
				if match(l, r) {
					matched = true
					if t == plan.LeftSemiJoin {
						break
					}
					out = append(out, concatRows(l, r))
				}
			}
			switch {
			case t == plan.LeftSemiJoin && matched:
				out = append(out, l)
			case !matched && t == plan.LeftOuterJoin:
				out = append(out, concatRows(l, nullRow(nRight)))
			}
		}
		om.RecordPartition(len(out), time.Since(start))
		return out, nil
	})
}
