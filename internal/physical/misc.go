package physical

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/expr"
	"repro/internal/rdd"
	"repro/internal/row"
)

// SortExec orders rows. A global sort range-partitions the input on
// sampled sort-key boundaries (Spark's range-partitioned sort) so every
// partition sorts in parallel and partition order is total order; a local
// sort orders within each partition. Under a memory budget each
// partition's sort is an external merge sort spilling runs to the DFS.
type SortExec struct {
	PlanEstimate
	PlanMetrics
	AdaptiveNote
	Orders []*expr.SortOrder
	Global bool
	Child  SparkPlan
	// Partitions, when positive, caps the global sort's range exchange
	// below the session default (set by adaptive coalescing from the
	// observed input size).
	Partitions int
}

func (s *SortExec) Children() []SparkPlan { return []SparkPlan{s.Child} }
func (s *SortExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *s
	c.Child = children[0]
	return &c
}
func (s *SortExec) Output() []*expr.AttributeReference { return s.Child.Output() }
func (s *SortExec) SimpleString() string {
	os := make([]expr.Expression, len(s.Orders))
	for i, o := range s.Orders {
		os[i] = o
	}
	return fmt.Sprintf("Sort [%s] global=%v", exprListString(os), s.Global)
}
func (s *SortExec) String() string { return Format(s) }

func (s *SortExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	input := s.Child.Output()
	evals := make([]func(row.Row) any, len(s.Orders))
	desc := make([]bool, len(s.Orders))
	for i, o := range s.Orders {
		evals[i] = ctx.evaluator(bind(o.Child, input))
		desc[i] = o.Descending
	}
	less := func(a, b row.Row) bool {
		for i, ev := range evals {
			c := row.Compare(ev(a), ev(b))
			if desc[i] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	}
	child := s.Child.Execute(ctx)
	if s.Global {
		child = rangePartition(ctx, child, less, s.Partitions)
	}
	om := s.EnableMetrics(ctx.Metrics)
	if !ctx.SpillEnabled() {
		return rdd.MapPartitions(child, func(_ int, in []row.Row) []row.Row {
			start := time.Now()
			out := make([]row.Row, len(in))
			copy(out, in)
			sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
			om.RecordPartition(len(out), time.Since(start))
			return out
		})
	}
	return rdd.MapPartitionsCtx(child, func(_ context.Context, _ int, in []row.Row) ([]row.Row, error) {
		start := time.Now()
		sorter := newExternalSorter(ctx, "sort", less)
		defer sorter.Close()
		for _, r := range in {
			if err := sorter.Add(r); err != nil {
				return nil, err
			}
		}
		out, err := sorter.Finish()
		if err != nil {
			return nil, err
		}
		om.RecordPartition(len(out), time.Since(start))
		om.RecordSpill(sorter.Stats())
		return out, nil
	})
}

// LimitExec keeps the first N rows, scanning partitions in order.
type LimitExec struct {
	PlanEstimate
	PlanMetrics
	N     int
	Child SparkPlan
}

func (l *LimitExec) Children() []SparkPlan { return []SparkPlan{l.Child} }
func (l *LimitExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *l
	c.Child = children[0]
	return &c
}
func (l *LimitExec) Output() []*expr.AttributeReference { return l.Child.Output() }
func (l *LimitExec) SimpleString() string               { return fmt.Sprintf("Limit %d", l.N) }
func (l *LimitExec) String() string                     { return Format(l) }

func (l *LimitExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	child := l.Child.Execute(ctx)
	n := l.N
	// Lazy: the scan runs as a nested job inside the limit's single task,
	// so child failures and cancellation propagate through the task path.
	om := l.EnableMetrics(ctx.Metrics)
	return rdd.GenerateCtx(ctx.RDD, "limit", 1, func(jc context.Context, _ int) ([]row.Row, error) {
		start := time.Now()
		out, err := rdd.TakeContext(jc, child, n)
		if err == nil {
			om.RecordPartition(len(out), time.Since(start))
		}
		return out, err
	})
}

// UnionExec concatenates children partitions.
type UnionExec struct {
	PlanEstimate
	PlanMetrics
	Kids []SparkPlan
}

func (u *UnionExec) Children() []SparkPlan { return u.Kids }
func (u *UnionExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *u
	c.Kids = children
	return &c
}
func (u *UnionExec) Output() []*expr.AttributeReference { return u.Kids[0].Output() }
func (u *UnionExec) SimpleString() string               { return "Union" }
func (u *UnionExec) String() string                     { return Format(u) }

func (u *UnionExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	out := u.Kids[0].Execute(ctx)
	for _, k := range u.Kids[1:] {
		out = rdd.Union(out, k.Execute(ctx))
	}
	om := u.EnableMetrics(ctx.Metrics)
	if om == nil {
		return out
	}
	// Union has no compute of its own; counting needs a pass-through stage.
	return rdd.MapPartitions(out, func(_ int, in []row.Row) []row.Row {
		om.RecordPartition(len(in), 0)
		return in
	})
}

// SampleExec keeps a deterministic pseudo-random fraction of rows using a
// splittable hash of (seed, partition, index).
type SampleExec struct {
	PlanEstimate
	PlanMetrics
	Fraction float64
	Seed     int64
	Child    SparkPlan
}

func (s *SampleExec) Children() []SparkPlan { return []SparkPlan{s.Child} }
func (s *SampleExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *s
	c.Child = children[0]
	return &c
}
func (s *SampleExec) Output() []*expr.AttributeReference { return s.Child.Output() }
func (s *SampleExec) SimpleString() string {
	return fmt.Sprintf("Sample %.3f seed=%d", s.Fraction, s.Seed)
}
func (s *SampleExec) String() string { return Format(s) }

func (s *SampleExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	frac := s.Fraction
	seed := uint64(s.Seed)
	om := s.EnableMetrics(ctx.Metrics)
	return rdd.MapPartitions(s.Child.Execute(ctx), func(p int, in []row.Row) []row.Row {
		start := time.Now()
		out := make([]row.Row, 0, int(float64(len(in))*frac)+1)
		for i, r := range in {
			if splitmix(seed^uint64(p)<<32^uint64(i)) < uint64(float64(^uint64(0))*frac) {
				out = append(out, r)
			}
		}
		om.RecordPartition(len(out), time.Since(start))
		return out
	})
}

// splitmix is SplitMix64 — a cheap, deterministic, well-distributed hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
