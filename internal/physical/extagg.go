package physical

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/expr"
	"repro/internal/memory"
	"repro/internal/row"
)

// Grace hash aggregation: the disk-backed final-merge state under
// HashAggregateExec and DistinctExec. Groups accumulate in an in-memory
// map whose bytes are reserved from the query's memory pool; when a
// reservation fails (or the pool picks this map as its largest victim)
// every group record is encoded and appended to one of aggSpillFanout
// hash-partitioned spill files, and the reservation is released. Finish
// re-reads each disk partition — a bounded ~1/fanout slice of the spilled
// state — merging buffers for keys flushed more than once, and returns all
// groups ordered by their first-seen sequence number: exactly the
// insertion order the in-memory path emits, so results are byte-identical
// at any budget.

// aggSpillFanout is the number of hash partitions a spilled aggregation
// map fans out to; each Finish-side merge holds ~1/fanout of the state.
const aggSpillFanout = 16

// aggState is one group's accumulated state: its first-seen sequence (the
// emission-order key), the grouping values and one buffer per aggregate.
type aggState struct {
	seq       int64
	groupVals row.Row
	buffers   []any
}

// spillableGroups is a key → aggState map that degrades to grace hash
// partitioning on disk under memory pressure. fns may be empty (Distinct:
// groups with no aggregation buffers). All methods are called by the
// owning task; the pool's spill callback may fire concurrently from any
// goroutine and is serialized through mu.
type spillableGroups struct {
	ctx  *ExecContext
	op   string
	fns  []expr.SpillableAggregate
	cons *memory.Consumer

	mu       sync.Mutex
	groups   map[string]*aggState
	seq      int64 // next first-seen sequence
	memBytes int64 // bytes reserved for the current map
	prefix   string
	blocks   [aggSpillFanout]int // blocks appended per spill partition
	spillErr error

	spilledBytes int64
	spillRuns    int64
}

func newSpillableGroups(ctx *ExecContext, op string, fns []expr.SpillableAggregate) *spillableGroups {
	g := &spillableGroups{ctx: ctx, op: op, fns: fns, groups: make(map[string]*aggState)}
	if ctx.SpillEnabled() {
		g.cons = ctx.Pool.NewConsumer(op, g.poolSpill)
	}
	return g
}

// stateKey is the canonical grouping key of a group-values row — the same
// key the aggregation phases compute, recomputed on disk reads so spilled
// records need not carry the string.
func stateKey(gv row.Row) string {
	ords := make([]int, len(gv))
	for i := range ords {
		ords[i] = i
	}
	return row.GroupKey(gv, ords)
}

// groupSize approximates one group's in-memory footprint: the grouping
// values plus a flat allowance per aggregation buffer. Buffer growth after
// insertion (COUNT DISTINCT sets) is not re-measured — the allowance keeps
// accounting cheap and the grace partitioning keeps merges bounded anyway.
func groupSize(gv row.Row, numFns int) int64 {
	return gv.ObjectSize() + 48*int64(numFns) + 64
}

// upsert folds one occurrence of (key, gv) into the map: apply runs under
// the internal mutex with the group's state, freshly created (NewBuffer
// per aggregate) if the key is absent. The key must equal stateKey(gv).
func (g *spillableGroups) upsert(key string, gv row.Row, apply func(st *aggState)) error {
	g.mu.Lock()
	if g.spillErr != nil {
		err := g.spillErr
		g.mu.Unlock()
		return err
	}
	if st, ok := g.groups[key]; ok {
		apply(st)
		g.mu.Unlock()
		return nil
	}
	g.mu.Unlock()

	// New group: reserve before inserting. Acquire runs outside mu (it may
	// spill other consumers, which take their own mutexes); an exhausted
	// pool triggers a self-spill of the whole map, then the irreducible
	// one-group working set is forced through Grow.
	var n int64
	if g.cons != nil {
		n = groupSize(gv, len(g.fns))
		if err := g.cons.Acquire(n); err != nil {
			if !errors.Is(err, memory.ErrNoMemory) {
				return err
			}
			g.mu.Lock()
			err = g.spillLocked()
			g.mu.Unlock()
			if err != nil {
				return err
			}
			g.cons.Grow(n)
		}
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.spillErr != nil {
		return g.spillErr
	}
	// Only the owning task inserts; a concurrent pool spill can only have
	// emptied the map, so the key is still absent here.
	st := &aggState{seq: g.seq, groupVals: gv}
	g.seq++
	if len(g.fns) > 0 {
		st.buffers = make([]any, len(g.fns))
		for i, fn := range g.fns {
			st.buffers[i] = fn.NewBuffer()
		}
	}
	g.groups[key] = st
	g.memBytes += n
	apply(st)
	return nil
}

// poolSpill is the memory pool's victim callback.
func (g *spillableGroups) poolSpill() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	freed := g.memBytes
	if err := g.spillLocked(); err != nil {
		if g.spillErr == nil {
			g.spillErr = err
		}
		return 0
	}
	return freed
}

// spillLocked flushes every group to its hash partition's spill file and
// releases the map's reservation. Caller holds g.mu.
func (g *spillableGroups) spillLocked() error {
	if len(g.groups) == 0 {
		return nil
	}
	if g.prefix == "" {
		g.prefix = g.ctx.newSpillPrefix(g.op)
	}
	parts := make([][]row.Row, aggSpillFanout)
	for key, st := range g.groups {
		p := int(row.HashValue(key) % aggSpillFanout)
		parts[p] = append(parts[p], g.encodeState(st))
	}
	var runBytes int64
	for p, recs := range parts {
		if len(recs) == 0 {
			continue
		}
		path := fmt.Sprintf("%s/part%d", g.prefix, p)
		for off := 0; off < len(recs); off += spillBlockRows {
			end := off + spillBlockRows
			if end > len(recs) {
				end = len(recs)
			}
			enc, err := row.EncodeRows(recs[off:end])
			if err != nil {
				return err
			}
			if err := g.ctx.SpillFS.AppendBlock(path, enc); err != nil {
				return err
			}
			runBytes += int64(len(enc))
			g.blocks[p]++
		}
	}
	g.spillRuns++
	g.spilledBytes += runBytes
	g.ctx.Pool.RecordSpill(runBytes)
	g.groups = make(map[string]*aggState)
	freed := g.memBytes
	g.memBytes = 0
	g.cons.Release(freed)
	return nil
}

// encodeState flattens a group into a codec row:
// {seq, groupVals, {encoded buffer rows...}}.
func (g *spillableGroups) encodeState(st *aggState) row.Row {
	bufs := make(row.Row, len(g.fns))
	for i, fn := range g.fns {
		bufs[i] = fn.EncodeBuffer(st.buffers[i])
	}
	return row.Row{st.seq, st.groupVals, bufs}
}

func (g *spillableGroups) decodeState(rec row.Row) (*aggState, error) {
	if len(rec) != 3 {
		return nil, fmt.Errorf("physical: malformed spilled group record (%d fields)", len(rec))
	}
	st := &aggState{seq: rec[0].(int64), groupVals: rec[1].(row.Row)}
	bufs := rec[2].(row.Row)
	if len(bufs) != len(g.fns) {
		return nil, fmt.Errorf("physical: spilled group has %d buffers, want %d", len(bufs), len(g.fns))
	}
	if len(g.fns) > 0 {
		st.buffers = make([]any, len(g.fns))
		for i, fn := range g.fns {
			st.buffers[i] = fn.DecodeBuffer(bufs[i].(row.Row))
		}
	}
	return st, nil
}

// Stats returns the bytes spilled and the number of map flushes.
func (g *spillableGroups) Stats() (bytes int64, runs int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spilledBytes, g.spillRuns
}

// Finish returns every group in first-seen order. With nothing spilled the
// in-memory map is sorted by sequence; otherwise the remainder is flushed
// and each disk partition is merged independently. Same-key records are
// merged in run order — the order their updates were applied — so
// order-sensitive buffers (FIRST) resolve exactly as in memory, and the
// minimum sequence restores each group's original first-seen position.
func (g *spillableGroups) Finish() ([]*aggState, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.spillErr != nil {
		return nil, g.spillErr
	}
	if g.prefix == "" {
		out := make([]*aggState, 0, len(g.groups))
		for _, st := range g.groups {
			out = append(out, st)
		}
		g.groups = nil
		sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
		return out, nil
	}
	if err := g.spillLocked(); err != nil {
		return nil, err
	}
	var out []*aggState
	for p := 0; p < aggSpillFanout; p++ {
		if g.blocks[p] == 0 {
			continue
		}
		path := fmt.Sprintf("%s/part%d", g.prefix, p)
		merged := make(map[string]*aggState)
		for b := 0; b < g.blocks[p]; b++ {
			enc, err := g.ctx.SpillFS.ReadBlock(path, b)
			if err != nil {
				return nil, err
			}
			recs, err := row.DecodeRows(enc)
			if err != nil {
				return nil, err
			}
			for _, rec := range recs {
				st, err := g.decodeState(rec)
				if err != nil {
					return nil, err
				}
				key := stateKey(st.groupVals)
				ex, ok := merged[key]
				if !ok {
					merged[key] = st
					continue
				}
				if st.seq < ex.seq {
					ex.seq = st.seq
				}
				for i, fn := range g.fns {
					ex.buffers[i] = fn.Merge(ex.buffers[i], st.buffers[i])
				}
			}
		}
		for _, st := range merged {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// Close releases the memory reservation and deletes the spill files; tasks
// defer it so retries, panics and cancellation all clean up.
func (g *spillableGroups) Close() {
	g.mu.Lock()
	prefix := g.prefix
	g.prefix = ""
	g.groups = nil
	g.memBytes = 0
	g.mu.Unlock()
	if g.cons != nil {
		g.cons.Free()
	}
	if prefix != "" {
		g.ctx.releaseSpillPrefix(prefix)
	}
}

// spillableFns returns the aggregates as SpillableAggregate implementations,
// or nil if any aggregate cannot spill (keeping that query in memory).
func spillableFns(fns []expr.AggregateFunc) []expr.SpillableAggregate {
	out := make([]expr.SpillableAggregate, len(fns))
	for i, fn := range fns {
		s, ok := fn.(expr.SpillableAggregate)
		if !ok {
			return nil
		}
		out[i] = s
	}
	return out
}
