package physical

import "repro/internal/plan"

// PlanEstimate carries the optimizer's cost estimate onto a physical
// operator so EXPLAIN can annotate the physical tree with the same
// `est: N rows, M B` figures the logical plan shows. Physical operators
// embed it; the planner stamps each translated node with the statistics
// of the logical operator it came from.
//
// WithNewChildren implementations copy the receiver (c := *n), so the
// estimate survives the preparation rules that rewrite the tree.
type PlanEstimate struct {
	est    plan.Statistics
	hasEst bool
}

// SetEstimate records the estimate.
func (p *PlanEstimate) SetEstimate(s plan.Statistics) { p.est = s; p.hasEst = true }

// Estimate returns the recorded estimate, if any.
func (p *PlanEstimate) Estimate() (plan.Statistics, bool) { return p.est, p.hasEst }

// CostAnnotated is implemented by physical operators that carry a cost
// estimate (all built-in operators, via PlanEstimate).
type CostAnnotated interface {
	SetEstimate(plan.Statistics)
	Estimate() (plan.Statistics, bool)
}

// transferEstimate copies src's estimate onto dst (when dst lacks one) and
// returns dst — used by preparation rules that replace an operator with a
// fused equivalent producing the same output.
func transferEstimate(dst, src SparkPlan) SparkPlan {
	sa, ok := src.(CostAnnotated)
	if !ok {
		return dst
	}
	da, ok := dst.(CostAnnotated)
	if !ok {
		return dst
	}
	if est, has := sa.Estimate(); has {
		if _, already := da.Estimate(); !already {
			da.SetEstimate(est)
		}
	}
	return dst
}
