package physical

import (
	"fmt"

	"repro/internal/columnar"
	"repro/internal/datasource"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/row"
)

// PlannerConfig carries the knobs of physical planning.
type PlannerConfig struct {
	// BroadcastThreshold is the maximum estimated size in bytes for a join
	// side to be broadcast (paper §4.3.3; Spark's default is 10 MB).
	BroadcastThreshold int64
	// CollapsePipelines enables the Project/Filter fusion preparation rule.
	CollapsePipelines bool
	// Vectorize enables the preparation rule swapping fused pipelines over
	// the columnar cache for batch-at-a-time execution.
	Vectorize bool
	// Fuse enables whole-stage fusion: aggregation updates and broadcast
	// join probes are absorbed into the vectorized pipeline feeding them
	// (requires Vectorize). Every candidate operator is annotated with the
	// decision for EXPLAIN.
	Fuse bool
	// TargetPartitionBytes sizes shuffle exchanges from statistics: when an
	// exchange's estimated input is known, the planner asks for
	// ceil(size/target) reducers instead of the fixed session default
	// (never more than the default — only small inputs shrink). Zero
	// disables stats-based partition sizing.
	TargetPartitionBytes int64
	// MemoryBudget is the query execution-memory budget in bytes (zero =
	// unlimited). When set, shuffled joins whose build side is unknown or
	// too large to hash within the budget plan as sort-merge joins, whose
	// state spills gracefully instead of holding a full hash table.
	MemoryBudget int64
}

// DefaultPlannerConfig mirrors Spark's defaults.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		BroadcastThreshold:   10 << 20,
		CollapsePipelines:    true,
		Vectorize:            true,
		Fuse:                 true,
		TargetPartitionBytes: 4 << 20,
	}
}

// Strategy is a planner extension point: it may claim a logical node and
// produce a physical plan for it. Research extensions like the §7.2 range
// join plug in here.
type Strategy func(pl *Planner, lp plan.LogicalPlan) (SparkPlan, bool, error)

// Planner translates optimized logical plans to physical plans, choosing
// join algorithms by cost (paper §4.3.3: "it then selects a plan using a
// cost model ... cost-based optimization is only used to select join
// algorithms").
type Planner struct {
	Cfg PlannerConfig
	// Strategies are consulted before the built-in translation.
	Strategies []Strategy
	// TranslateFilter converts a predicate into the data source filter
	// algebra (wired to the optimizer's translator; kept as a function
	// value to avoid an import cycle).
	TranslateFilter func(expr.Expression) (datasource.Filter, bool)
}

// NewPlanner builds a planner with the given config.
func NewPlanner(cfg PlannerConfig) *Planner {
	return &Planner{Cfg: cfg}
}

// Plan translates and prepares the physical plan.
func (pl *Planner) Plan(lp plan.LogicalPlan) (SparkPlan, error) {
	p, err := pl.translate(lp)
	if err != nil {
		return nil, err
	}
	if pl.Cfg.CollapsePipelines {
		p = Collapse(p)
	}
	if pl.Cfg.Vectorize {
		p = Vectorize(p)
		if pl.Cfg.Fuse {
			p = Fuse(p)
		}
	}
	return p, nil
}

// translate converts one logical node (recursively) and stamps the result
// with the logical operator's statistics estimate so EXPLAIN can annotate
// the physical tree.
func (pl *Planner) translate(lp plan.LogicalPlan) (SparkPlan, error) {
	p, err := pl.translateNode(lp)
	if err != nil {
		return nil, err
	}
	if ca, ok := p.(CostAnnotated); ok {
		if _, has := ca.Estimate(); !has {
			ca.SetEstimate(plan.Stats(lp))
		}
	}
	return p, nil
}

func (pl *Planner) translateNode(lp plan.LogicalPlan) (SparkPlan, error) {
	for _, s := range pl.Strategies {
		p, claimed, err := s(pl, lp)
		if err != nil {
			return nil, err
		}
		if claimed {
			return p, nil
		}
	}
	switch n := lp.(type) {
	case *plan.LocalRelation:
		return NewLocalScan(n.Attrs, n.Rows), nil
	case *plan.OneRowRelation:
		return NewLocalScan(nil, []row.Row{{}}), nil
	case *plan.LogicalRDD:
		return NewRDDScan(n.Attrs, n.RDD), nil
	case *plan.Range:
		return NewRangeScan(n.Attr, n.Start, n.End, n.Step, n.Partitions), nil
	case *plan.DataSourceRelation:
		return NewSourceScan(n.Name, n.Attrs, n.Rel, n.PushedColumns, n.PushedFilters, n.PushedPredicates), nil
	case *plan.InMemoryRelation:
		return NewInMemoryScan(n.Attrs, n.Table, n.PrunedOrdinals, nil), nil
	case *plan.SubqueryAlias:
		return pl.translate(n.Child)
	case *plan.Project:
		child, err := pl.translate(n.Child)
		if err != nil {
			return nil, err
		}
		return &ProjectExec{List: n.List, Child: child}, nil
	case *plan.Filter:
		return pl.planFilter(n)
	case *plan.Join:
		return pl.planJoin(n)
	case *plan.Aggregate:
		child, err := pl.translate(n.Child)
		if err != nil {
			return nil, err
		}
		return &HashAggregateExec{
			Grouping: n.Grouping, Aggs: n.Aggs, Child: child,
			Partitions: pl.partitionsFor(plan.Stats(n.Child).SizeInBytes),
		}, nil
	case *plan.Sort:
		child, err := pl.translate(n.Child)
		if err != nil {
			return nil, err
		}
		return &SortExec{Orders: n.Orders, Global: n.Global, Child: child}, nil
	case *plan.Limit:
		child, err := pl.translate(n.Child)
		if err != nil {
			return nil, err
		}
		return &LimitExec{N: n.N, Child: child}, nil
	case *plan.Union:
		kids := make([]SparkPlan, len(n.Kids))
		for i, k := range n.Kids {
			c, err := pl.translate(k)
			if err != nil {
				return nil, err
			}
			kids[i] = c
		}
		return &UnionExec{Kids: kids}, nil
	case *plan.Distinct:
		child, err := pl.translate(n.Child)
		if err != nil {
			return nil, err
		}
		return &DistinctExec{Child: child, Partitions: pl.partitionsFor(plan.Stats(n.Child).SizeInBytes)}, nil
	case *plan.Sample:
		child, err := pl.translate(n.Child)
		if err != nil {
			return nil, err
		}
		return &SampleExec{Fraction: n.Fraction, Seed: n.Seed, Child: child}, nil
	default:
		return nil, fmt.Errorf("physical: no strategy for logical operator %T (%s)", lp, lp.SimpleString())
	}
}

// planFilter builds a FilterExec; filters directly over the columnar cache
// additionally install a batch-skipping predicate from min/max stats.
func (pl *Planner) planFilter(f *plan.Filter) (SparkPlan, error) {
	if mem, ok := f.Child.(*plan.InMemoryRelation); ok && pl.TranslateFilter != nil {
		keep := pl.batchPredicate(f.Cond, mem)
		scan := NewInMemoryScan(mem.Attrs, mem.Table, mem.PrunedOrdinals, keep)
		scan.SetEstimate(plan.Stats(mem))
		return &FilterExec{Cond: f.Cond, Child: scan}, nil
	}
	child, err := pl.translate(f.Child)
	if err != nil {
		return nil, err
	}
	return &FilterExec{Cond: f.Cond, Child: child}, nil
}

// batchPredicate compiles translatable conjuncts into a min/max stats test
// over cached batches.
func (pl *Planner) batchPredicate(cond expr.Expression, mem *plan.InMemoryRelation) columnar.BatchPredicate {
	type check struct {
		ord int
		f   datasource.Filter
	}
	var checks []check
	for _, c := range expr.SplitConjuncts(cond) {
		df, ok := pl.TranslateFilter(c)
		if !ok {
			continue
		}
		ord := mem.Table.Schema.FieldIndex(df.Attribute())
		if ord < 0 {
			continue
		}
		checks = append(checks, check{ord: ord, f: df})
	}
	if len(checks) == 0 {
		return nil
	}
	return func(stats []columnar.ColStats) bool {
		for _, c := range checks {
			if !batchMayMatch(stats[c.ord], c.f) {
				return false
			}
		}
		return true
	}
}

// batchMayMatch tests a simple filter against a column's min/max range.
func batchMayMatch(s columnar.ColStats, f datasource.Filter) bool {
	if s.Min == nil || s.Max == nil {
		// No range tracked (all NULL or unordered type): only IS NOT NULL
		// can prune an all-NULL batch.
		if _, isNotNull := f.(datasource.IsNotNull); isNotNull {
			return s.Min != nil
		}
		return true
	}
	switch x := f.(type) {
	case datasource.EqualTo:
		return row.Compare(x.Value, s.Min) >= 0 && row.Compare(x.Value, s.Max) <= 0
	case datasource.GreaterThan:
		return row.Compare(s.Max, x.Value) > 0
	case datasource.GreaterOrEqual:
		return row.Compare(s.Max, x.Value) >= 0
	case datasource.LessThan:
		return row.Compare(s.Min, x.Value) < 0
	case datasource.LessOrEqual:
		return row.Compare(s.Min, x.Value) <= 0
	case datasource.In:
		for _, v := range x.Values {
			if row.Compare(v, s.Min) >= 0 && row.Compare(v, s.Max) <= 0 {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// planJoin extracts equi-join keys and selects the join algorithm by the
// cost model: a side whose estimated size is below the broadcast threshold
// is broadcast; otherwise both sides shuffle.
func (pl *Planner) planJoin(j *plan.Join) (SparkPlan, error) {
	left, err := pl.translate(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := pl.translate(j.Right)
	if err != nil {
		return nil, err
	}

	leftKeys, rightKeys, residual := ExtractEquiKeys(j)

	if len(leftKeys) == 0 {
		switch j.Type {
		case plan.InnerJoin, plan.CrossJoin, plan.LeftOuterJoin, plan.LeftSemiJoin:
			return &NestedLoopJoinExec{Left: left, Right: right, Type: j.Type, Cond: j.Cond}, nil
		default:
			return nil, fmt.Errorf("physical: %s join without equi-keys is not supported", j.Type)
		}
	}

	leftSize := plan.Stats(j.Left).SizeInBytes
	rightSize := plan.Stats(j.Right).SizeInBytes
	canBuildRight, canBuildLeft := canBuildSides(j.Type)
	bcast := BroadcastLimit(pl.Cfg.BroadcastThreshold, pl.Cfg.MemoryBudget)

	switch {
	case canBuildRight && rightSize <= bcast &&
		(rightSize <= leftSize || !canBuildLeft || leftSize > bcast):
		return &BroadcastHashJoinExec{
			Left: left, Right: right,
			LeftKeys: leftKeys, RightKeys: rightKeys,
			Type: j.Type, Residual: residual, BuildRight: true,
		}, nil
	case canBuildLeft && leftSize <= bcast:
		return &BroadcastHashJoinExec{
			Left: left, Right: right,
			LeftKeys: leftKeys, RightKeys: rightKeys,
			Type: j.Type, Residual: residual, BuildRight: false,
		}, nil
	default:
		parts := pl.partitionsFor(addKnownSizes(leftSize, rightSize))
		// Under a memory budget, a shuffled hash join whose build side
		// (the right) is unknown or cannot hash within half the budget
		// plans as a sort-merge join: sorts degrade to spilled runs, hash
		// tables cannot.
		if b := pl.Cfg.MemoryBudget; b > 0 &&
			(rightSize >= plan.UnknownSizeInBytes || rightSize > b/2) {
			return &SortMergeJoinExec{
				Left: left, Right: right,
				LeftKeys: leftKeys, RightKeys: rightKeys,
				Type: j.Type, Residual: residual,
				Partitions: parts,
			}, nil
		}
		return &ShuffledHashJoinExec{
			Left: left, Right: right,
			LeftKeys: leftKeys, RightKeys: rightKeys,
			Type: j.Type, Residual: residual,
			Partitions: parts,
		}, nil
	}
}

// addKnownSizes sums two size estimates, propagating "unknown".
func addKnownSizes(a, b int64) int64 {
	if a >= plan.UnknownSizeInBytes || b >= plan.UnknownSizeInBytes {
		return plan.UnknownSizeInBytes
	}
	return a + b
}

// canBuildSides reports which join sides may be the hash-build side for a
// join type — the legality half of the broadcast/shuffle cost rule,
// shared by static planning and adaptive promotion.
func canBuildSides(t plan.JoinType) (canRight, canLeft bool) {
	canRight = t == plan.InnerJoin || t == plan.CrossJoin ||
		t == plan.LeftOuterJoin || t == plan.LeftSemiJoin
	canLeft = t == plan.InnerJoin || t == plan.CrossJoin ||
		t == plan.RightOuterJoin
	return canRight, canLeft
}

// BroadcastLimit is the size cap for broadcasting a join side: the
// configured threshold, halved-budget-capped. A broadcast hash table is
// unbounded memory too — under a memory budget, only sides expected to
// hash within half of it broadcast. The same rule prices broadcasts from
// estimates (static planning) and from observed bytes (adaptive
// promotion), so the two can never disagree about legality.
func BroadcastLimit(threshold, memoryBudget int64) int64 {
	if memoryBudget > 0 && memoryBudget/2 < threshold {
		return memoryBudget / 2
	}
	return threshold
}

// PartitionsForSize derives a reducer count from an exchange's input
// size: ceil(size/target), at least 1. Returns 0 (keep the session
// default) when sizing is disabled or the size is unknown. This is the
// re-entrant costing entry point: the static planner feeds it estimates,
// the adaptive driver feeds it per-stage observed bytes.
func PartitionsForSize(target, sizeInBytes int64) int {
	if target <= 0 || sizeInBytes <= 0 || sizeInBytes >= plan.UnknownSizeInBytes {
		return 0
	}
	n := (sizeInBytes + target - 1) / target
	if n < 1 {
		n = 1
	}
	return int(n)
}

// partitionsFor sizes an exchange from an estimate.
func (pl *Planner) partitionsFor(sizeInBytes int64) int {
	return PartitionsForSize(pl.Cfg.TargetPartitionBytes, sizeInBytes)
}

// ExtractEquiKeys splits a join condition into equi-key pairs (left key
// expression = right key expression) and a residual condition.
func ExtractEquiKeys(j *plan.Join) (leftKeys, rightKeys []expr.Expression, residual expr.Expression) {
	if j.Cond == nil {
		return nil, nil, nil
	}
	leftSet := plan.OutputSet(j.Left)
	rightSet := plan.OutputSet(j.Right)
	var rest []expr.Expression
	for _, c := range expr.SplitConjuncts(j.Cond) {
		eq, ok := c.(*expr.Comparison)
		if !ok || eq.Op != expr.OpEQ {
			rest = append(rest, c)
			continue
		}
		lRefs, rRefs := expr.References(eq.Left), expr.References(eq.Right)
		switch {
		case len(lRefs) > 0 && len(rRefs) > 0 && leftSet.ContainsAll(lRefs) && rightSet.ContainsAll(rRefs):
			leftKeys = append(leftKeys, eq.Left)
			rightKeys = append(rightKeys, eq.Right)
		case len(lRefs) > 0 && len(rRefs) > 0 && rightSet.ContainsAll(lRefs) && leftSet.ContainsAll(rRefs):
			leftKeys = append(leftKeys, eq.Right)
			rightKeys = append(rightKeys, eq.Left)
		default:
			rest = append(rest, c)
		}
	}
	return leftKeys, rightKeys, expr.JoinConjuncts(rest)
}
