package physical

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/plan"
)

// Whole-stage fusion (the Flare/Tungsten lesson, translated to Go): past
// basic vectorization, the next win is running an entire pipeline —
// scan → filter → project → aggregate-update or join-probe — as ONE loop
// over columnar batches, with no row materialization at the operator
// boundary. The Fuse preparation rule below rewrites the plan tree to the
// fused operators and records its decision on every candidate node so
// EXPLAIN can show exactly what got fused and why the rest did not.

// FusionNote records the Fuse rule's decision on a physical operator
// ("fused: true" or "fallback: <reason>"). Operators embed it; EXPLAIN and
// EXPLAIN ANALYZE print it through the FusionAnnotated interface.
type FusionNote struct{ note string }

// SetFusion records the fusion decision.
func (f *FusionNote) SetFusion(note string) { f.note = note }

// Fusion returns the recorded decision, or "" when the node was never a
// fusion candidate (fusion disabled, or an operator class fusion ignores).
func (f *FusionNote) Fusion() string { return f.note }

// FusionAnnotated is implemented by operators that carry a fusion decision.
type FusionAnnotated interface{ Fusion() string }

// Fuse is the preparation rule, run after Vectorize, that absorbs an
// aggregation or a broadcast-hash-join probe into the vectorized pipeline
// feeding it. Aggregations always fuse over a vectorized (or bare cached)
// input — the generic group table and the per-row aggregate escape hatch
// cover every key and function shape. Join probes fuse only for the shapes
// the batch probe loop reproduces byte-identically (build right; inner or
// left-outer; no residual; 1×int64, 1×string, or 2×int64 keys with native
// probe kernels); everything else keeps the row operator and says why.
func Fuse(p SparkPlan) SparkPlan {
	children := p.Children()
	if len(children) > 0 {
		newChildren := make([]SparkPlan, len(children))
		changed := false
		for i, c := range children {
			nc := Fuse(c)
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			p = p.WithNewChildren(newChildren)
		}
	}
	switch n := p.(type) {
	case *HashAggregateExec:
		vp := fusablePipe(n.Child)
		if vp == nil {
			n.SetFusion("fallback: input not vectorized")
			return p
		}
		f := &FusedAggregateExec{Agg: n, Pipe: vp}
		f.SetFusion("fused: true")
		return transferEstimate(f, n)
	case *BroadcastHashJoinExec:
		if reason := joinFuseBlocker(n); reason != "" {
			n.SetFusion("fallback: " + reason)
			return p
		}
		f := &FusedBroadcastJoinExec{Join: n, Pipe: fusablePipe(n.Left)}
		f.SetFusion("fused: true")
		return transferEstimate(f, n)
	case *VectorizedPipelineExec:
		n.SetFusion("fused: true")
	case *PipelineExec:
		if _, ok := n.Child.(*InMemoryScanExec); ok {
			n.SetFusion("fallback: no native kernels")
		} else {
			n.SetFusion("fallback: scan not columnar")
		}
	}
	return p
}

// fusablePipe returns the vectorized pipeline a sink can absorb: the child
// itself when it already vectorized, or a synthesized zero-stage pipeline
// when the sink sits directly on a cached scan (a bare GROUP BY with no
// filter still deserves the batch-native update loop).
func fusablePipe(p SparkPlan) *VectorizedPipelineExec {
	switch c := p.(type) {
	case *VectorizedPipelineExec:
		return c
	case *InMemoryScanExec:
		vp := &VectorizedPipelineExec{Scan: c}
		vp.SetFusion("fused: true")
		transferEstimate(vp, c)
		return vp
	}
	return nil
}

// joinFuseBlocker reports why a broadcast join cannot take the fused probe
// path ("" = fusable). The conditions mirror exactly what
// FusedBroadcastJoinExec.Execute handles.
func joinFuseBlocker(j *BroadcastHashJoinExec) string {
	if !j.BuildRight {
		return "build side not right"
	}
	if j.Type != plan.InnerJoin && j.Type != plan.LeftOuterJoin {
		return fmt.Sprintf("join type %s", j.Type)
	}
	if j.Residual != nil {
		return "residual predicate"
	}
	vp := fusablePipe(j.Left)
	if vp == nil {
		return "probe side not vectorized"
	}
	if r := keyShapeBlocker(j.LeftKeys, j.RightKeys); r != "" {
		return r
	}
	for _, k := range bindAll(j.LeftKeys, vp.Output()) {
		if _, ok := expr.CompileVec(k); !ok {
			return "probe key not native"
		}
	}
	return ""
}

// keyShapeBlocker admits the key shapes the specialized build tables cover:
// a single int64-class key, a single string key, or an (int64, int64) pair
// — with matching classes on both sides.
func keyShapeBlocker(l, r []expr.Expression) string {
	cls := func(e expr.Expression) int { return expr.VecClassOf(e.DataType()) }
	switch len(l) {
	case 1:
		c := cls(l[0])
		if (c == expr.VecClassI64 || c == expr.VecClassStr) && cls(r[0]) == c {
			return ""
		}
	case 2:
		if cls(l[0]) == expr.VecClassI64 && cls(l[1]) == expr.VecClassI64 &&
			cls(r[0]) == expr.VecClassI64 && cls(r[1]) == expr.VecClassI64 {
			return ""
		}
	}
	return "key shape"
}
