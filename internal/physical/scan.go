package physical

import (
	"fmt"
	"time"

	"repro/internal/columnar"
	"repro/internal/datasource"
	"repro/internal/expr"
	"repro/internal/rdd"
	"repro/internal/row"
)

// ScanExec is the generic leaf: it wraps a partition-producing function for
// local relations, RDDs, ranges, data sources and the columnar cache.
type ScanExec struct {
	PlanEstimate
	PlanMetrics
	Name  string
	Attrs []*expr.AttributeReference
	// Build produces the RDD when executed.
	Build func(ctx *ExecContext) *rdd.RDD[row.Row]
	// Detail annotates EXPLAIN output (pushed filters/columns).
	Detail string
}

func (s *ScanExec) Children() []SparkPlan { return nil }
func (s *ScanExec) WithNewChildren(children []SparkPlan) SparkPlan {
	return s
}
func (s *ScanExec) Output() []*expr.AttributeReference { return s.Attrs }
func (s *ScanExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	return s.Build(ctx)
}
func (s *ScanExec) SimpleString() string {
	if s.Detail != "" {
		return fmt.Sprintf("Scan %s %s %s", s.Name, attrsString(s.Attrs), s.Detail)
	}
	return fmt.Sprintf("Scan %s %s", s.Name, attrsString(s.Attrs))
}
func (s *ScanExec) String() string { return Format(s) }

// NewLocalScan scans in-memory rows, splitting them across the default
// parallelism.
func NewLocalScan(attrs []*expr.AttributeReference, rows []row.Row) *ScanExec {
	s := &ScanExec{Name: "LocalRelation", Attrs: attrs}
	s.Build = func(ctx *ExecContext) *rdd.RDD[row.Row] {
		om := s.EnableMetrics(ctx.Metrics)
		n := ctx.RDD.Parallelism()
		total := len(rows)
		return rdd.Generate(ctx.RDD, "parallelize", n, func(p int) []row.Row {
			start := time.Now()
			lo := total * p / n
			hi := total * (p + 1) / n
			out := make([]row.Row, hi-lo)
			copy(out, rows[lo:hi])
			om.RecordPartition(len(out), time.Since(start))
			return out
		})
	}
	return s
}

// NewRDDScan scans an existing row RDD (paper §3.5: the logical data scan
// operator pointing to a native RDD).
func NewRDDScan(attrs []*expr.AttributeReference, r *rdd.RDD[row.Row]) *ScanExec {
	s := &ScanExec{Name: "ExistingRDD", Attrs: attrs}
	s.Build = func(ctx *ExecContext) *rdd.RDD[row.Row] {
		om := s.EnableMetrics(ctx.Metrics)
		if om == nil {
			return r
		}
		// The RDD pre-exists the scan; counting needs a pass-through stage.
		return rdd.MapPartitions(r, func(_ int, in []row.Row) []row.Row {
			om.RecordPartition(len(in), 0)
			return in
		})
	}
	return s
}

// NewRangeScan produces [start,end) by step across partitions.
func NewRangeScan(attr *expr.AttributeReference, start, end, step int64, partitions int) *ScanExec {
	s := &ScanExec{Name: "Range", Attrs: []*expr.AttributeReference{attr}}
	s.Build = func(ctx *ExecContext) *rdd.RDD[row.Row] {
		om := s.EnableMetrics(ctx.Metrics)
		n := partitions
		if n <= 0 {
			n = ctx.RDD.Parallelism()
		}
		total := (end - start + step - 1) / step
		if total < 0 {
			total = 0
		}
		return rdd.Generate(ctx.RDD, "range", n, func(p int) []row.Row {
			t0 := time.Now()
			lo := total * int64(p) / int64(n)
			hi := total * int64(p+1) / int64(n)
			out := make([]row.Row, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, row.Row{start + i*step})
			}
			om.RecordPartition(len(out), time.Since(t0))
			return out
		})
	}
	return s
}

// NewSourceScan scans a data source relation through the smartest interface
// it offers, passing pushed columns and filters (paper §4.4.1).
func NewSourceScan(name string, attrs []*expr.AttributeReference, rel datasource.Relation,
	cols []string, filters []datasource.Filter, predicates []expr.Expression) *ScanExec {
	detail := ""
	if len(cols) > 0 {
		detail += fmt.Sprintf("columns=%v ", cols)
	}
	if len(filters) > 0 {
		detail += fmt.Sprintf("pushed=%v", filters)
	}
	if len(predicates) > 0 {
		detail += fmt.Sprintf("pushedExprs=%v", predicates)
	}
	s := &ScanExec{Name: "Source " + name, Attrs: attrs, Detail: detail}
	s.Build = func(ctx *ExecContext) *rdd.RDD[row.Row] {
		om := s.EnableMetrics(ctx.Metrics)
		scan, err := openScan(rel, attrs, cols, filters, predicates)
		if err != nil {
			panic(fmt.Sprintf("physical: opening scan of %s: %v", name, err))
		}
		return rdd.Generate(ctx.RDD, "scan:"+name, scan.NumPartitions, func(p int) []row.Row {
			t0 := time.Now()
			out := scan.Partition(p)
			om.RecordPartition(len(out), time.Since(t0))
			return out
		})
	}
	return s
}

// openScan picks the best scan interface available for the pushdown set.
func openScan(rel datasource.Relation, attrs []*expr.AttributeReference,
	cols []string, filters []datasource.Filter, predicates []expr.Expression) (datasource.Scan, error) {
	if len(cols) == 0 {
		// No pruning was pushed; scan all declared columns.
		cols = make([]string, len(attrs))
		for i, a := range attrs {
			cols[i] = a.Name
		}
	}
	switch r := rel.(type) {
	case datasource.CatalystScan:
		return r.ScanCatalyst(cols, predicates)
	case datasource.PrunedFilteredScan:
		return r.ScanPrunedFiltered(cols, filters)
	case datasource.PrunedScan:
		return r.ScanPruned(cols)
	case datasource.TableScan:
		return r.ScanAll()
	}
	return datasource.Scan{}, fmt.Errorf("relation %T implements no scan interface", rel)
}

// InMemoryScanExec scans the columnar cache with optional column pruning
// and batch skipping (paper §3.6). Unlike the other leaves it is a concrete
// struct rather than a closure-configured ScanExec: the Vectorize
// preparation rule needs access to the table and pruning to swap in the
// batch-at-a-time path.
type InMemoryScanExec struct {
	PlanEstimate
	PlanMetrics
	Attrs []*expr.AttributeReference
	Table *columnar.CachedTable
	// Ordinals maps each output position to its cached column (nil = all
	// columns in schema order).
	Ordinals []int
	// Keep skips batches by min/max statistics (nil = keep all).
	Keep columnar.BatchPredicate
}

// NewInMemoryScan builds a columnar cache scan.
func NewInMemoryScan(attrs []*expr.AttributeReference, table *columnar.CachedTable,
	ordinals []int, keep columnar.BatchPredicate) *InMemoryScanExec {
	return &InMemoryScanExec{Attrs: attrs, Table: table, Ordinals: ordinals, Keep: keep}
}

func (s *InMemoryScanExec) Children() []SparkPlan { return nil }
func (s *InMemoryScanExec) WithNewChildren(children []SparkPlan) SparkPlan {
	return s
}
func (s *InMemoryScanExec) Output() []*expr.AttributeReference { return s.Attrs }
func (s *InMemoryScanExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	table, ordinals, keep := s.Table, s.Ordinals, s.Keep
	om := s.EnableMetrics(ctx.Metrics)
	return rdd.Generate(ctx.RDD, "cacheScan", len(table.Partitions), func(p int) []row.Row {
		t0 := time.Now()
		out := table.ScanPartition(p, ordinals, keep)
		om.RecordPartition(len(out), time.Since(t0))
		return out
	})
}
func (s *InMemoryScanExec) SimpleString() string {
	if s.Ordinals != nil {
		return fmt.Sprintf("Scan InMemoryColumnar %s ordinals=%v", attrsString(s.Attrs), s.Ordinals)
	}
	return fmt.Sprintf("Scan InMemoryColumnar %s", attrsString(s.Attrs))
}
func (s *InMemoryScanExec) String() string { return Format(s) }
