package physical

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dfs"
	"repro/internal/memory"
	"repro/internal/rdd"
	"repro/internal/row"
)

// External merge sort: the disk-backed sort under SortExec and
// SortMergeJoinExec. Rows accumulate in an in-memory buffer whose bytes are
// reserved from the query's memory pool; when a reservation fails (or the
// pool picks this sorter as its largest victim) the buffer is stable-sorted
// and written to the spill DFS as one encoded run, and the reservation is
// released. Finishing k-way merges the spilled runs with the final
// in-memory run through a loser heap that breaks comparison ties by run
// index — runs are created in input order, so the merged output is exactly
// the stable sort of the input: byte-identical to the in-memory path.

// spillBlockRows is how many rows one spill block holds; blocks are the
// unit of streaming reads during the merge phase.
const spillBlockRows = 256

type externalSorter struct {
	ctx  *ExecContext
	less func(a, b row.Row) bool
	cons *memory.Consumer

	mu       sync.Mutex
	buf      []row.Row
	bufBytes int64
	prefix   string // lazily reserved on first spill
	runs     []spillRun
	spillErr error // first spill failure (surfaced on the next Add/Finish)

	spilledBytes int64
}

type spillRun struct {
	path   string
	blocks int
}

// newExternalSorter creates a sorter; with spilling disabled on ctx it
// degrades to an in-memory stable sort with zero overhead beyond the
// buffer append.
func newExternalSorter(ctx *ExecContext, op string, less func(a, b row.Row) bool) *externalSorter {
	s := &externalSorter{ctx: ctx, less: less}
	if ctx.SpillEnabled() {
		s.cons = ctx.Pool.NewConsumer(op, s.poolSpill)
	}
	return s
}

// poolSpill is the memory pool's victim callback; it may run on any
// goroutine while the owning task is between Adds.
func (s *externalSorter) poolSpill() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	freed := s.bufBytes
	if err := s.spillLocked(); err != nil {
		if s.spillErr == nil {
			s.spillErr = err
		}
		return 0
	}
	return freed
}

// spillLocked sorts and writes the current buffer as one run, releasing its
// reservation. Caller holds s.mu.
func (s *externalSorter) spillLocked() error {
	if len(s.buf) == 0 {
		return nil
	}
	if s.prefix == "" {
		s.prefix = s.ctx.newSpillPrefix("sort")
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	path := fmt.Sprintf("%s/run%d", s.prefix, len(s.runs))
	blocks := 0
	var runBytes int64
	for off := 0; off < len(s.buf); off += spillBlockRows {
		end := off + spillBlockRows
		if end > len(s.buf) {
			end = len(s.buf)
		}
		enc, err := row.EncodeRows(s.buf[off:end])
		if err != nil {
			return err
		}
		if err := s.ctx.SpillFS.AppendBlock(path, enc); err != nil {
			return err
		}
		runBytes += int64(len(enc))
		blocks++
	}
	s.runs = append(s.runs, spillRun{path: path, blocks: blocks})
	s.spilledBytes += runBytes
	s.ctx.Pool.RecordSpill(runBytes)
	s.buf = nil
	freed := s.bufBytes
	s.bufBytes = 0
	s.cons.Release(freed)
	return nil
}

// Add appends one row, reserving its bytes first; an exhausted pool
// triggers a self-spill of the current buffer.
func (s *externalSorter) Add(r row.Row) error {
	var n int64
	if s.cons != nil {
		n = r.ObjectSize()
		if err := s.cons.Acquire(n); err != nil {
			if !errors.Is(err, memory.ErrNoMemory) {
				return err
			}
			s.mu.Lock()
			err = s.spillLocked()
			s.mu.Unlock()
			if err != nil {
				return err
			}
			s.cons.Grow(n)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spillErr != nil {
		return s.spillErr
	}
	s.buf = append(s.buf, r)
	s.bufBytes += n
	return nil
}

// Stats returns the bytes spilled and the number of runs written.
func (s *externalSorter) Stats() (bytes int64, runs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilledBytes, int64(len(s.runs))
}

// Finish returns the fully sorted input. With no spilled runs this is the
// stable in-memory sort; otherwise the spilled runs and the final
// in-memory run are k-way merged.
func (s *externalSorter) Finish() ([]row.Row, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spillErr != nil {
		return nil, s.spillErr
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	if len(s.runs) == 0 {
		out := s.buf
		s.buf = nil
		return out, nil
	}
	total := len(s.buf)
	cursors := make([]*runCursor, 0, len(s.runs)+1)
	for i, run := range s.runs {
		cursors = append(cursors, &runCursor{fs: s.ctx.SpillFS, run: run, idx: i})
	}
	// The in-memory leftover is the newest run: highest tie-break index.
	cursors = append(cursors, &runCursor{rows: s.buf, idx: len(s.runs)})
	s.buf = nil

	h := &mergeHeap{less: s.less}
	for _, c := range cursors {
		ok, err := c.prime()
		if err != nil {
			return nil, err
		}
		if ok {
			h.items = append(h.items, c)
		}
	}
	heap.Init(h)
	out := make([]row.Row, 0, total)
	for h.Len() > 0 {
		c := h.items[0]
		out = append(out, c.head)
		ok, err := c.advance()
		if err != nil {
			return nil, err
		}
		if ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out, nil
}

// Close releases the memory reservation and deletes this sorter's spill
// files; tasks defer it so retries, panics and cancellation all clean up.
func (s *externalSorter) Close() {
	s.mu.Lock()
	prefix := s.prefix
	s.prefix = ""
	s.buf = nil
	s.bufBytes = 0
	s.mu.Unlock()
	if s.cons != nil {
		s.cons.Free()
	}
	if prefix != "" {
		s.ctx.releaseSpillPrefix(prefix)
	}
}

// runCursor streams one run: block-by-block from the spill DFS, or directly
// over the final in-memory run.
type runCursor struct {
	fs   *dfs.FileSystem
	run  spillRun
	idx  int // run index: the k-way merge's stability tie-break
	head row.Row

	rows  []row.Row // current decoded block (or the whole in-memory run)
	pos   int
	block int // next block to read
}

func (c *runCursor) prime() (bool, error) { return c.advance() }

func (c *runCursor) advance() (bool, error) {
	for c.pos >= len(c.rows) {
		if c.fs == nil || c.block >= c.run.blocks {
			return false, nil
		}
		enc, err := c.fs.ReadBlock(c.run.path, c.block)
		if err != nil {
			return false, err
		}
		c.block++
		if c.rows, err = row.DecodeRows(enc); err != nil {
			return false, err
		}
		c.pos = 0
	}
	c.head = c.rows[c.pos]
	c.pos++
	return true, nil
}

// mergeHeap orders cursors by their head row, breaking ties by run index so
// rows from earlier runs (earlier input) win — the invariant that makes the
// merged order equal the stable in-memory sort.
type mergeHeap struct {
	items []*runCursor
	less  func(a, b row.Row) bool
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.less(a.head, b.head) {
		return true
	}
	if h.less(b.head, a.head) {
		return false
	}
	return a.idx < b.idx
}
func (h *mergeHeap) Swap(i, j int)   { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)      { h.items = append(h.items, x.(*runCursor)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// rangePartition replaces the old Coalesce(child, 1) under global sorts:
// it samples sort keys from the materialized map side to pick numPartitions-1
// boundary rows and range-partitions every row by binary search, so bucket i
// holds only rows ordering before every row of bucket i+1. Sorting each
// bucket then yields a total order across partitions in partition order.
func rangePartition(ctx *ExecContext, child *rdd.RDD[row.Row], less func(a, b row.Row) bool, partitions int) *rdd.RDD[row.Row] {
	n := ctx.ShufflePartitions
	if partitions > 0 && partitions < n {
		n = partitions
	}
	if n <= 1 {
		return rdd.Coalesce(child, 1)
	}
	return rdd.PartitionByFuncCodec(child, n, func(parts [][]row.Row) func(row.Row) int {
		bounds := sampleBounds(parts, n, less)
		if len(bounds) == 0 {
			return func(row.Row) int { return 0 }
		}
		return func(r row.Row) int {
			// First boundary strictly greater than r; equal rows share a
			// bucket, preserving stability within it.
			return sort.Search(len(bounds), func(i int) bool { return less(r, bounds[i]) })
		}
	}, rowShuffleCodec)
}

// sampleBounds picks numPartitions-1 boundary rows from a deterministic
// stride sample of the input (Spark's RangePartitioner sampling, made
// exact-deterministic for reproducibility).
func sampleBounds(parts [][]row.Row, numPartitions int, less func(a, b row.Row) bool) []row.Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	step := total / (numPartitions * 32)
	if step < 1 {
		step = 1
	}
	sample := make([]row.Row, 0, total/step+1)
	i := 0
	for _, p := range parts {
		for _, r := range p {
			if i%step == 0 {
				sample = append(sample, r)
			}
			i++
		}
	}
	sort.SliceStable(sample, func(i, j int) bool { return less(sample[i], sample[j]) })
	bounds := make([]row.Row, 0, numPartitions-1)
	for k := 1; k < numPartitions; k++ {
		b := sample[k*len(sample)/numPartitions]
		bounds = append(bounds, b)
	}
	return bounds
}
