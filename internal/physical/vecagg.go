package physical

import (
	"fmt"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/rdd"
	"repro/internal/row"
)

// FusedAggregateExec is the whole-stage fusion of a vectorized pipeline
// with its aggregation sink: batches flow scan → filter → project →
// hash-aggregate update without ever materializing intermediate rows. The
// phase-1 group tables are type-specialized on the common key shapes
// (single int64, single string, (int64, int64)) so grouping never boxes or
// builds key strings on the hot path; everything after the partial flush —
// the shuffle, the final merge, and the grace-partitioned spill path — is
// HashAggregateExec's own phase 2, shared verbatim.
type FusedAggregateExec struct {
	PlanEstimate
	PlanMetrics
	FusionNote
	Agg  *HashAggregateExec // grouping/aggs/partition cap; Child is unused here
	Pipe *VectorizedPipelineExec
}

func (f *FusedAggregateExec) Children() []SparkPlan { return []SparkPlan{f.Pipe} }
func (f *FusedAggregateExec) WithNewChildren(children []SparkPlan) SparkPlan {
	if vp, ok := children[0].(*VectorizedPipelineExec); ok {
		c := *f
		c.Pipe = vp
		return &c
	}
	// The pipeline degraded (e.g. the leaf stopped being a cache scan):
	// fall back to the plain two-phase aggregate.
	agg := *f.Agg
	agg.Child = children[0]
	return transferEstimate(&agg, f)
}
func (f *FusedAggregateExec) Output() []*expr.AttributeReference { return f.Agg.Output() }
func (f *FusedAggregateExec) SimpleString() string {
	return fmt.Sprintf("FusedHashAggregate keys=[%s] results=[%s]",
		exprListString(f.Agg.Grouping), exprListString(f.Agg.Aggs))
}
func (f *FusedAggregateExec) String() string { return Format(f) }

func (f *FusedAggregateExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	h := f.Agg
	om := f.EnableMetrics(ctx.Metrics)
	if !ctx.Vectorized {
		// Runtime knob off: run the identical row-at-a-time plan, sharing
		// this node's metrics so EXPLAIN ANALYZE annotates the printed tree.
		agg := *h
		agg.Child = f.Pipe
		agg.PlanMetrics.m = om
		return agg.Execute(ctx)
	}

	input := f.Pipe.Output()
	groupBound := bindAll(h.Grouping, input)
	fns, resultExprs := h.splitAggregates(input)
	resultEvals := make([]func(row.Row) any, len(resultExprs))
	for i, e := range resultExprs {
		resultEvals[i] = ctx.evaluator(e)
	}
	keyOrdinals := make([]int, len(h.Grouping))
	for i := range keyOrdinals {
		keyOrdinals[i] = i
	}

	scan := f.Pipe.Scan
	scanOM := scan.EnableMetrics(ctx.Metrics)
	stages, used, _ := compileVecStages(f.Pipe.Stages, scan.Attrs)
	// Without a projection stage the pipeline's own decode set is "every
	// column" (rows would materialize in full); fused, the only consumers
	// are the filters, the group keys, and the aggregate children — so
	// narrow the decode set to exactly those.
	if !stagesProject(f.Pipe.Stages) {
		for j := range used {
			used[j] = false
		}
		for _, st := range f.Pipe.Stages {
			if st.isFilter {
				markBoundRefs(bind(st.cond, scan.Attrs), used)
			}
		}
		for _, g := range groupBound {
			markBoundRefs(g, used)
		}
		for _, fn := range fns {
			markBoundRefs(fn, used)
		}
	}

	groupVecs := make([]expr.VecEval, len(groupBound))
	groupNative := make([]bool, len(groupBound))
	for i, g := range groupBound {
		groupVecs[i], groupNative[i] = expr.CompileVec(g)
	}

	eff, colTypes := scanDecodePlan(scan, used)

	table, keep := scan.Table, scan.Keep
	partials := rdd.Generate(ctx.RDD, "fusedAgg", len(table.Partitions), func(p int) []aggPartial {
		// Per-partition mutable state: the group index table and one typed
		// accumulator per aggregate.
		groups := newGroupIndexer(groupBound, groupNative)
		ups := make([]expr.VecAggregator, len(fns))
		for i, fn := range fns {
			ups[i], _ = expr.NewVecAggregator(fn)
		}
		var gidx []int32
		var gvecs []*columnar.Vector
		for _, b := range table.Partitions[p] {
			if keep != nil && !keep(b.Stats) {
				continue
			}
			scanOM.RecordBatch(b.NumRows)
			if om != nil {
				om.Batches.Add(1)
			}
			batch := &expr.VecBatch{Cols: b.DecodeBatch(colTypes, eff), N: b.NumRows}
			live := make([]int32, b.NumRows)
			for i := range live {
				live[i] = int32(i)
			}
			for _, st := range stages {
				if st.isFilter {
					live = st.pred(batch, live)
					if len(live) == 0 {
						break
					}
					continue
				}
				cols := make([]*columnar.Vector, len(st.evals))
				for j, ev := range st.evals {
					cols[j] = ev(batch, live)
				}
				batch = &expr.VecBatch{Cols: cols, N: b.NumRows}
			}
			if len(live) == 0 {
				continue
			}
			gvecs = gvecs[:0]
			for _, gv := range groupVecs {
				gvecs = append(gvecs, gv(batch, live))
			}
			gidx = groups.indexBatch(gvecs, live, gidx[:0])
			n := groups.count()
			for _, up := range ups {
				up.Update(batch, live, gidx, n)
			}
		}
		rows := groups.groupRows()
		out := make([]aggPartial, len(rows))
		for g, gv := range rows {
			bufs := make([]any, len(ups))
			for i, up := range ups {
				bufs[i] = up.Buffer(g)
			}
			out[g] = aggPartial{key: row.GroupKey(gv, keyOrdinals), groupVals: gv, buffers: bufs}
		}
		return out
	})

	return h.finalMerge(ctx, om, partials, fns, resultEvals)
}

// stagesProject reports whether any stage is a projection (which resets the
// batch schema and therefore the decode set).
func stagesProject(stages []stage) bool {
	for _, st := range stages {
		if !st.isFilter {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Group index tables

// groupIndexer maps each live row's group-key values (read out of the key
// vectors) to a dense group index, creating — and boxing, exactly once — the
// group's value row on first sight. indexBatch appends one index per live
// row to gidx; the per-implementation loop keeps the map access monomorphic
// instead of paying an interface dispatch per row. First-seen order is
// preserved so the partial stream matches the row path's per-partition
// semantics.
type groupIndexer interface {
	indexBatch(vecs []*columnar.Vector, live, gidx []int32) []int32
	count() int
	groupRows() []row.Row
}

// newGroupIndexer picks the specialization for the bound grouping
// expressions: single int64-class key, single string key, or an
// (int64, int64) pair run without boxing or key-string building; anything
// else — or keys whose kernels fell back — uses the generic boxed table.
func newGroupIndexer(bound []expr.Expression, native []bool) groupIndexer {
	cls := func(i int) int {
		if !native[i] {
			return -1
		}
		return expr.VecClassOf(bound[i].DataType())
	}
	switch {
	case len(bound) == 0:
		return &globalGroups{}
	case len(bound) == 1 && cls(0) == expr.VecClassI64:
		return &i64Groups{m: make(map[int64]int32, 64), nullIdx: -1}
	case len(bound) == 1 && cls(0) == expr.VecClassStr:
		return &strGroups{m: make(map[string]int32, 64), nullIdx: -1}
	case len(bound) == 2 && cls(0) == expr.VecClassI64 && cls(1) == expr.VecClassI64:
		return &pairGroups{m: make(map[[3]int64]int32, 64)}
	default:
		return &genericGroups{m: make(map[string]int32, 64), kv: make(row.Row, len(bound)), ords: ordinalsUpTo(len(bound))}
	}
}

func ordinalsUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// globalGroups is the degenerate no-GROUP-BY table: one group, created on
// the first row (an empty partition emits no partial, like the row path).
type globalGroups struct {
	rows []row.Row
}

func (t *globalGroups) indexBatch(vecs []*columnar.Vector, live, gidx []int32) []int32 {
	if len(live) > 0 && len(t.rows) == 0 {
		t.rows = append(t.rows, row.Row{})
	}
	for range live {
		gidx = append(gidx, 0)
	}
	return gidx
}
func (t *globalGroups) count() int           { return len(t.rows) }
func (t *globalGroups) groupRows() []row.Row { return t.rows }

// i64Groups hashes raw int64 keys (INT/BIGINT/DATE/TIMESTAMP group-bys).
type i64Groups struct {
	m       map[int64]int32
	nullIdx int32
	rows    []row.Row
}

func (t *i64Groups) indexBatch(vecs []*columnar.Vector, live, gidx []int32) []int32 {
	v := vecs[0]
	mask := v.Mask()
	for _, i := range live {
		ii := int(i)
		if v.IsNull(ii) {
			if t.nullIdx < 0 {
				t.nullIdx = int32(len(t.rows))
				t.rows = append(t.rows, row.Row{nil})
			}
			gidx = append(gidx, t.nullIdx)
			continue
		}
		k := v.I64[ii&mask]
		g, ok := t.m[k]
		if !ok {
			g = int32(len(t.rows))
			t.m[k] = g
			t.rows = append(t.rows, row.Row{v.Get(ii)})
		}
		gidx = append(gidx, g)
	}
	return gidx
}
func (t *i64Groups) count() int           { return len(t.rows) }
func (t *i64Groups) groupRows() []row.Row { return t.rows }

// strGroups hashes string keys without re-encoding them per row.
type strGroups struct {
	m       map[string]int32
	nullIdx int32
	rows    []row.Row
}

func (t *strGroups) indexBatch(vecs []*columnar.Vector, live, gidx []int32) []int32 {
	v := vecs[0]
	mask := v.Mask()
	for _, i := range live {
		ii := int(i)
		if v.IsNull(ii) {
			if t.nullIdx < 0 {
				t.nullIdx = int32(len(t.rows))
				t.rows = append(t.rows, row.Row{nil})
			}
			gidx = append(gidx, t.nullIdx)
			continue
		}
		k := v.Str[ii&mask]
		g, ok := t.m[k]
		if !ok {
			g = int32(len(t.rows))
			t.m[k] = g
			t.rows = append(t.rows, row.Row{k})
		}
		gidx = append(gidx, g)
	}
	return gidx
}
func (t *strGroups) count() int           { return len(t.rows) }
func (t *strGroups) groupRows() []row.Row { return t.rows }

// pairGroups hashes (int64, int64) key pairs; the third array slot packs
// the NULL bits so (NULL, 0) and (0, NULL) and (0, 0) stay distinct.
type pairGroups struct {
	m    map[[3]int64]int32
	rows []row.Row
}

func (t *pairGroups) indexBatch(vecs []*columnar.Vector, live, gidx []int32) []int32 {
	v0, v1 := vecs[0], vecs[1]
	m0, m1 := v0.Mask(), v1.Mask()
	for _, i := range live {
		ii := int(i)
		var k [3]int64
		if v0.IsNull(ii) {
			k[2] |= 1
		} else {
			k[0] = v0.I64[ii&m0]
		}
		if v1.IsNull(ii) {
			k[2] |= 2
		} else {
			k[1] = v1.I64[ii&m1]
		}
		g, ok := t.m[k]
		if !ok {
			g = int32(len(t.rows))
			t.m[k] = g
			t.rows = append(t.rows, row.Row{v0.Get(ii), v1.Get(ii)})
		}
		gidx = append(gidx, g)
	}
	return gidx
}
func (t *pairGroups) count() int           { return len(t.rows) }
func (t *pairGroups) groupRows() []row.Row { return t.rows }

// genericGroups boxes the key values and hashes their injective GroupKey
// encoding — the shape-agnostic fallback, still batch-native (no full-row
// materialization, one boxed key row per NEW group).
type genericGroups struct {
	m    map[string]int32
	kv   row.Row
	ords []int
	rows []row.Row
}

func (t *genericGroups) indexBatch(vecs []*columnar.Vector, live, gidx []int32) []int32 {
	for _, i := range live {
		ii := int(i)
		for j, v := range vecs {
			t.kv[j] = v.Get(ii)
		}
		key := row.GroupKey(t.kv, t.ords)
		g, ok := t.m[key]
		if !ok {
			g = int32(len(t.rows))
			t.m[key] = g
			t.rows = append(t.rows, append(row.Row(nil), t.kv...))
		}
		gidx = append(gidx, g)
	}
	return gidx
}
func (t *genericGroups) count() int           { return len(t.rows) }
func (t *genericGroups) groupRows() []row.Row { return t.rows }
