package physical

// Adaptive query execution (ROADMAP item 5, Spark 3.x AQE): instead of
// executing the statically planned operator tree in one shot, the plan is
// split at its exchanges into a stage DAG. Stages execute bottom-up; each
// completed stage's observed output (rows and bytes, measured from the
// materialized partitions) feeds a re-planning step that re-enters the
// planner's cost rules over actuals instead of estimates:
//
//   - exchange partition counts coalesce to ceil(observedBytes/target)
//     when that is below the statically chosen count,
//   - a broadcast hash join whose build side blows past the broadcast
//     limit demotes to a sort-merge join, and a shuffled join whose input
//     turns out tiny promotes to a broadcast hash join,
//   - a shuffled hash join reduce partition whose observed input exceeds
//     SkewFactor x the mean bucket size splits into chunks that join
//     independently against the full build bucket (order-preserving, so
//     results are byte-identical to the unsplit plan).
//
// Every decision is a pure rewrite of the static tree addressed by a
// child-index path, so the coordinator can ship its decisions in the task
// spec and workers derive the identical adapted plan without re-adapting
// (keeping the cluster plan-hash parity check sound). EXPLAIN ANALYZE
// records each decision as `adapted: <from> -> <to> (<reason>)`.

import (
	"context"
	"fmt"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
)

// AdaptiveConfig carries the runtime re-planning knobs onto the
// ExecContext; nil disables adaptation entirely (plans and results are
// byte-identical to static execution).
type AdaptiveConfig struct {
	// BroadcastThreshold mirrors the planner's broadcast size cap.
	BroadcastThreshold int64
	// TargetPartitionBytes sizes coalesced exchanges from observed bytes.
	TargetPartitionBytes int64
	// MemoryBudget mirrors the query memory budget: the broadcast limit is
	// min(BroadcastThreshold, MemoryBudget/2), exactly as in static
	// planning, so promotion never builds a hash table the budget forbids.
	MemoryBudget int64
	// SkewFactor is the multiple of the mean reduce-bucket size above
	// which a bucket is split (0 = DefaultSkewFactor).
	SkewFactor float64
}

// DefaultSkewFactor splits a reduce partition observed at more than 4x the
// mean bucket size — Spark's skewedPartitionFactor default.
const DefaultSkewFactor = 4.0

// maxSkewSplits bounds how many chunks one skewed bucket splits into.
const maxSkewSplits = 16

func (c *AdaptiveConfig) skewFactor() float64 {
	if c.SkewFactor > 0 {
		return c.SkewFactor
	}
	return DefaultSkewFactor
}

func (c *AdaptiveConfig) broadcastLimit() int64 {
	return BroadcastLimit(c.BroadcastThreshold, c.MemoryBudget)
}

func (c *AdaptiveConfig) partitionsFor(sizeInBytes int64) int {
	return PartitionsForSize(c.TargetPartitionBytes, sizeInBytes)
}

// AdaptiveNote carries the `adapted: ...` annotation onto a physical
// operator; WithNewChildren copy semantics (c := *n) preserve it across
// rewrites, like PlanEstimate.
type AdaptiveNote struct {
	adapted string
}

// SetAdapted records the decision annotation.
func (a *AdaptiveNote) SetAdapted(note string) { a.adapted = note }

// Adapted returns the decision annotation ("" = none).
func (a *AdaptiveNote) Adapted() string { return a.adapted }

// AdaptiveAnnotated is implemented by operators that can carry an adaptive
// decision annotation (via AdaptiveNote).
type AdaptiveAnnotated interface {
	SetAdapted(string)
	Adapted() string
}

// Decision is one adaptive re-planning step, expressed as a pure rewrite
// of the statically planned tree so the coordinator and every worker
// derive the identical adapted plan from (static plan, decisions).
type Decision struct {
	// Path addresses the rewritten node by child indexes from the root of
	// the static plan (empty = root). Every rewrite kind preserves tree
	// shape and child counts, so later paths stay valid.
	Path []int
	// Kind is "coalesce", "demote", "promote" or "skew".
	Kind string
	// Parts is the new exchange partition count (0 = keep current).
	Parts int
	// BuildRight selects the broadcast build side for "promote".
	BuildRight bool
	// Splits is the per-reduce-partition chunk count for "skew" (length =
	// the exchange's effective partition count).
	Splits []int
	// Note is the EXPLAIN annotation: `adapted: <from> -> <to> (<reason>)`.
	Note string
}

// QueryStageExec is a materialization barrier: the subtree below an
// exchange, already executed by the adaptive driver, held as its computed
// partitions. It prints as its child — the barrier is an execution
// detail, which keeps plan strings (and so the cluster plan-hash parity
// check) identical between the coordinator's stage-materialized tree and
// a worker's decision-applied live tree — and executes as a partition
// leaf, so downstream operators never recompute stage output.
type QueryStageExec struct {
	PlanEstimate
	Child SparkPlan
	// Rows and Bytes are the stage's observed output statistics.
	Rows, Bytes int64
	parts       [][]row.Row
}

func (q *QueryStageExec) Children() []SparkPlan { return []SparkPlan{q.Child} }
func (q *QueryStageExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *q
	c.Child = children[0]
	return &c
}
func (q *QueryStageExec) Output() []*expr.AttributeReference { return q.Child.Output() }

// ApplyDecisions replays a decision list over the static plan; applying
// the decisions AdaptPlan returned reproduces its adapted tree exactly —
// the worker-side half of the coordinator/worker parity contract.
func ApplyDecisions(p SparkPlan, ds []Decision) (SparkPlan, error) {
	var err error
	for _, d := range ds {
		p, err = rewriteAt(p, d.Path, func(node SparkPlan) (SparkPlan, error) {
			return applyDecision(node, d)
		})
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// rewriteAt replaces the node at path with f(node), copying spine nodes.
func rewriteAt(p SparkPlan, path []int, f func(SparkPlan) (SparkPlan, error)) (SparkPlan, error) {
	if len(path) == 0 {
		return f(p)
	}
	kids := p.Children()
	i := path[0]
	if i < 0 || i >= len(kids) {
		return nil, fmt.Errorf("physical: adaptive path index %d out of range on %T", i, p)
	}
	nk, err := rewriteAt(kids[i], path[1:], f)
	if err != nil {
		return nil, err
	}
	out := make([]SparkPlan, len(kids))
	copy(out, kids)
	out[i] = nk
	return p.WithNewChildren(out), nil
}

// applyDecision rewrites one node under one decision.
func applyDecision(p SparkPlan, d Decision) (SparkPlan, error) {
	switch d.Kind {
	case "coalesce":
		switch n := p.(type) {
		case *ShuffledHashJoinExec:
			c := *n
			c.Partitions = d.Parts
			c.SetAdapted(d.Note)
			return &c, nil
		case *SortMergeJoinExec:
			c := *n
			c.Partitions = d.Parts
			c.SetAdapted(d.Note)
			return &c, nil
		case *HashAggregateExec:
			c := *n
			c.Partitions = d.Parts
			c.SetAdapted(d.Note)
			return &c, nil
		case *DistinctExec:
			c := *n
			c.Partitions = d.Parts
			c.SetAdapted(d.Note)
			return &c, nil
		case *SortExec:
			c := *n
			c.Partitions = d.Parts
			c.SetAdapted(d.Note)
			return &c, nil
		}
		return nil, fmt.Errorf("physical: coalesce decision on %T", p)
	case "skew":
		n, ok := p.(*ShuffledHashJoinExec)
		if !ok {
			return nil, fmt.Errorf("physical: skew decision on %T", p)
		}
		c := *n
		if d.Parts > 0 {
			c.Partitions = d.Parts
		}
		c.SkewSplits = d.Splits
		c.SetAdapted(d.Note)
		return &c, nil
	case "demote":
		n, ok := p.(*BroadcastHashJoinExec)
		if !ok {
			return nil, fmt.Errorf("physical: demote decision on %T", p)
		}
		smj := &SortMergeJoinExec{
			Left: n.Left, Right: n.Right,
			LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
			Type: n.Type, Residual: n.Residual,
			Partitions: d.Parts,
		}
		transferEstimate(smj, n)
		smj.SetAdapted(d.Note)
		return smj, nil
	case "promote":
		var bhj *BroadcastHashJoinExec
		switch n := p.(type) {
		case *ShuffledHashJoinExec:
			bhj = &BroadcastHashJoinExec{
				Left: n.Left, Right: n.Right,
				LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
				Type: n.Type, Residual: n.Residual,
				BuildRight: d.BuildRight,
			}
		case *SortMergeJoinExec:
			bhj = &BroadcastHashJoinExec{
				Left: n.Left, Right: n.Right,
				LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
				Type: n.Type, Residual: n.Residual,
				BuildRight: d.BuildRight,
			}
		default:
			return nil, fmt.Errorf("physical: promote decision on %T", p)
		}
		transferEstimate(bhj, p)
		bhj.SetAdapted(d.Note)
		return bhj, nil
	}
	return nil, fmt.Errorf("physical: unknown decision kind %q", d.Kind)
}

// AdaptPlan is the stage-graph driver: it walks the static plan bottom-up,
// materializes each exchange input as a QueryStageExec (through the rdd
// layer's ordinary job path, so retry, speculation and cancellation apply
// to stage execution exactly as to final execution), and re-plans each
// exchange from the observed statistics. It returns the executed tree
// (stage leaves in place, zero recompute) and the decision list to ship
// to workers. With ctx.Adaptive == nil the plan is returned untouched.
func AdaptPlan(jc context.Context, ctx *ExecContext, p SparkPlan) (SparkPlan, []Decision, error) {
	if ctx.Adaptive == nil {
		return p, nil, nil
	}
	d := &adaptiveDriver{jc: jc, ctx: ctx, cfg: ctx.Adaptive}
	out, err := d.adapt(p, nil)
	if err != nil {
		return nil, nil, err
	}
	return out, d.decisions, nil
}

type adaptiveDriver struct {
	jc        context.Context
	ctx       *ExecContext
	cfg       *AdaptiveConfig
	decisions []Decision
}

// transparent reports whether the driver may rewrite p's children. Fused
// and vectorized operators are opaque: their children feed batch-native
// pipelines that a row-partition stage leaf cannot stand in for, so
// adaptation treats them as leaves (they still materialize fine as stage
// *inputs* above them).
func transparent(p SparkPlan) bool {
	switch p.(type) {
	case *ProjectExec, *FilterExec, *SortExec, *LimitExec, *UnionExec, *SampleExec,
		*DistinctExec, *HashAggregateExec, *ShuffledHashJoinExec, *SortMergeJoinExec,
		*BroadcastHashJoinExec, *NestedLoopJoinExec:
		return true
	}
	return false
}

// effectiveParts is the reducer count an exchange will actually use.
func effectiveParts(session, override int) int {
	if override > 0 && override < session {
		return override
	}
	return session
}

func (d *adaptiveDriver) adapt(p SparkPlan, path []int) (SparkPlan, error) {
	if !transparent(p) {
		return p, nil
	}
	kids := p.Children()
	if len(kids) > 0 {
		nk := make([]SparkPlan, len(kids))
		for i, k := range kids {
			childPath := append(append([]int(nil), path...), i)
			a, err := d.adapt(k, childPath)
			if err != nil {
				return nil, err
			}
			nk[i] = a
		}
		p = p.WithNewChildren(nk)
	}
	return d.adaptNode(p, path)
}

// materialize executes one exchange input as a stage and wraps the result.
func (d *adaptiveDriver) materialize(child SparkPlan) (*QueryStageExec, error) {
	if qs, ok := child.(*QueryStageExec); ok {
		return qs, nil
	}
	parts, err := child.Execute(d.ctx).CollectPartitionsContext(d.jc)
	if err != nil {
		return nil, err
	}
	var rows, bytes int64
	for _, pr := range parts {
		rows += int64(len(pr))
		for _, r := range pr {
			bytes += r.ObjectSize()
		}
	}
	qs := &QueryStageExec{Child: child, Rows: rows, Bytes: bytes, parts: parts}
	transferEstimate(qs, child)
	return qs, nil
}

// record applies a decision to the node, logs it for shipping, and returns
// the rewritten node.
func (d *adaptiveDriver) record(p SparkPlan, dec Decision) (SparkPlan, error) {
	d.decisions = append(d.decisions, dec)
	return applyDecision(p, dec)
}

func (d *adaptiveDriver) adaptNode(p SparkPlan, path []int) (SparkPlan, error) {
	switch n := p.(type) {
	case *ShuffledHashJoinExec:
		return d.adaptShuffledJoin(n, path)
	case *SortMergeJoinExec:
		return d.adaptSortMergeJoin(n, path)
	case *HashAggregateExec:
		if len(n.Grouping) == 0 {
			// A global aggregate always reduces to one partition; nothing
			// to re-plan, and materializing its input buys nothing.
			return p, nil
		}
		return d.adaptCoalesceOnly(p, path, n.Child, n.Partitions,
			func(q SparkPlan, stage *QueryStageExec) SparkPlan {
				return q.WithNewChildren([]SparkPlan{stage})
			})
	case *DistinctExec:
		return d.adaptCoalesceOnly(p, path, n.Child, n.Partitions,
			func(q SparkPlan, stage *QueryStageExec) SparkPlan {
				return q.WithNewChildren([]SparkPlan{stage})
			})
	case *SortExec:
		if !n.Global {
			return p, nil
		}
		return d.adaptCoalesceOnly(p, path, n.Child, n.Partitions,
			func(q SparkPlan, stage *QueryStageExec) SparkPlan {
				return q.WithNewChildren([]SparkPlan{stage})
			})
	case *BroadcastHashJoinExec:
		return d.adaptBroadcastJoin(n, path)
	}
	return p, nil
}

// adaptCoalesceOnly materializes a single exchange input and re-sizes the
// downstream partition count from observed bytes. Coalescing is strictly
// conservative: it only ever shrinks below the statically chosen count,
// so accurate estimates see zero adaptations.
func (d *adaptiveDriver) adaptCoalesceOnly(p SparkPlan, path []int, child SparkPlan,
	current int, rewrap func(SparkPlan, *QueryStageExec) SparkPlan) (SparkPlan, error) {
	stage, err := d.materialize(child)
	if err != nil {
		return nil, err
	}
	eff := effectiveParts(d.ctx.ShufflePartitions, current)
	if parts := d.cfg.partitionsFor(stage.Bytes); parts > 0 && parts < eff {
		dec := Decision{
			Path: path, Kind: "coalesce", Parts: parts,
			Note: coalesceNote(parts, stage.Bytes),
		}
		p, err = d.record(p, dec)
		if err != nil {
			return nil, err
		}
	}
	return rewrap(p, stage), nil
}

func coalesceNote(parts int, bytes int64) string {
	return fmt.Sprintf("adapted: shuffle exchange -> %d partitions (observed %d B)", parts, bytes)
}

// adaptShuffledJoin materializes both shuffle inputs and re-plans: promote
// to broadcast when a buildable side turns out tiny, otherwise coalesce
// the reducer count from observed bytes and split skewed reduce buckets.
func (d *adaptiveDriver) adaptShuffledJoin(n *ShuffledHashJoinExec, path []int) (SparkPlan, error) {
	ls, err := d.materialize(n.Left)
	if err != nil {
		return nil, err
	}
	rs, err := d.materialize(n.Right)
	if err != nil {
		return nil, err
	}
	if dec, ok := d.promotion("ShuffledHashJoin", n.Type, path, ls.Bytes, rs.Bytes); ok {
		p, err := d.record(n, dec)
		if err != nil {
			return nil, err
		}
		return p.WithNewChildren([]SparkPlan{ls, rs}), nil
	}

	eff := effectiveParts(d.ctx.ShufflePartitions, n.Partitions)
	newParts := 0
	if parts := d.cfg.partitionsFor(ls.Bytes + rs.Bytes); parts > 0 && parts < eff {
		newParts = parts
		eff = parts
	}
	splits, maxBytes, meanBytes := d.detectSkew(n, ls, eff)

	var p SparkPlan = n
	switch {
	case splits != nil:
		note := fmt.Sprintf("adapted: uniform reduce -> skew-split buckets (max bucket %d B over %.1fx mean %d B)",
			maxBytes, d.cfg.skewFactor(), meanBytes)
		if newParts > 0 {
			note += "  " + coalesceNote(newParts, ls.Bytes+rs.Bytes)
		}
		dec := Decision{Path: path, Kind: "skew", Parts: newParts, Splits: splits, Note: note}
		if p, err = d.record(n, dec); err != nil {
			return nil, err
		}
	case newParts > 0:
		dec := Decision{Path: path, Kind: "coalesce", Parts: newParts,
			Note: coalesceNote(newParts, ls.Bytes+rs.Bytes)}
		if p, err = d.record(n, dec); err != nil {
			return nil, err
		}
	}
	return p.WithNewChildren([]SparkPlan{ls, rs}), nil
}

// adaptSortMergeJoin: promotion and coalescing only — sort-merge output is
// key-ordered, so skew splits (which reorder nothing but chunk by input
// position) do not apply.
func (d *adaptiveDriver) adaptSortMergeJoin(n *SortMergeJoinExec, path []int) (SparkPlan, error) {
	ls, err := d.materialize(n.Left)
	if err != nil {
		return nil, err
	}
	rs, err := d.materialize(n.Right)
	if err != nil {
		return nil, err
	}
	if dec, ok := d.promotion("SortMergeJoin", n.Type, path, ls.Bytes, rs.Bytes); ok {
		p, err := d.record(n, dec)
		if err != nil {
			return nil, err
		}
		return p.WithNewChildren([]SparkPlan{ls, rs}), nil
	}
	var p SparkPlan = n
	eff := effectiveParts(d.ctx.ShufflePartitions, n.Partitions)
	if parts := d.cfg.partitionsFor(ls.Bytes + rs.Bytes); parts > 0 && parts < eff {
		dec := Decision{Path: path, Kind: "coalesce", Parts: parts,
			Note: coalesceNote(parts, ls.Bytes+rs.Bytes)}
		if p, err = d.record(n, dec); err != nil {
			return nil, err
		}
	}
	return p.WithNewChildren([]SparkPlan{ls, rs}), nil
}

// promotion decides a shuffled-to-broadcast join switch, mirroring the
// static planner's side preference and build-legality rules over observed
// bytes instead of estimates.
func (d *adaptiveDriver) promotion(from string, t plan.JoinType, path []int, leftBytes, rightBytes int64) (Decision, bool) {
	canRight, canLeft := canBuildSides(t)
	bcast := d.cfg.broadcastLimit()
	if bcast <= 0 {
		return Decision{}, false
	}
	switch {
	case canRight && rightBytes <= bcast &&
		(rightBytes <= leftBytes || !canLeft || leftBytes > bcast):
		return Decision{
			Path: path, Kind: "promote", BuildRight: true,
			Note: fmt.Sprintf("adapted: %s -> BroadcastHashJoin (build side %d B observed under %d B limit)",
				from, rightBytes, bcast),
		}, true
	case canLeft && leftBytes <= bcast:
		return Decision{
			Path: path, Kind: "promote", BuildRight: false,
			Note: fmt.Sprintf("adapted: %s -> BroadcastHashJoin (build side %d B observed under %d B limit)",
				from, leftBytes, bcast),
		}, true
	}
	return Decision{}, false
}

// adaptBroadcastJoin materializes the build side and demotes to sort-merge
// when the observed build blows past the broadcast limit the static
// planner believed it fit under.
func (d *adaptiveDriver) adaptBroadcastJoin(n *BroadcastHashJoinExec, path []int) (SparkPlan, error) {
	buildChild := n.Right
	if !n.BuildRight {
		buildChild = n.Left
	}
	stage, err := d.materialize(buildChild)
	if err != nil {
		return nil, err
	}
	var p SparkPlan = n
	if bcast := d.cfg.broadcastLimit(); stage.Bytes > bcast {
		dec := Decision{
			Path: path, Kind: "demote",
			Parts: d.cfg.partitionsFor(stage.Bytes),
			Note: fmt.Sprintf("adapted: BroadcastHashJoin -> SortMergeJoin (build side %d B observed over %d B limit)",
				stage.Bytes, bcast),
		}
		if p, err = d.record(n, dec); err != nil {
			return nil, err
		}
	}
	kids := []SparkPlan{p.Children()[0], p.Children()[1]}
	if n.BuildRight {
		kids[1] = stage
	} else {
		kids[0] = stage
	}
	return p.WithNewChildren(kids), nil
}

// detectSkew simulates the exchange's exact bucketing (hash % n, the same
// formula PartitionByHashCodec uses) over the materialized probe side and
// proposes per-bucket splits when the largest bucket exceeds
// skewFactor x mean. Only join types whose reduce output is exactly
// probe-input order are splittable (Inner/LeftOuter/LeftSemi): chunked
// probes concatenated in (partition, chunk) order are then byte-identical
// to the unsplit plan.
func (d *adaptiveDriver) detectSkew(n *ShuffledHashJoinExec, left *QueryStageExec, eff int) (splits []int, maxBytes, meanBytes int64) {
	if eff <= 1 || !skewSplittable(n.Type) {
		return nil, 0, 0
	}
	leftKey := keyFunc(bindKeys(d.ctx, n.LeftKeys, n.Left.Output()))
	bytes := make([]int64, eff)
	var total int64
	for _, part := range left.stagePartitions() {
		for _, r := range part {
			var h uint64
			if k, ok := leftKey(r); ok {
				h = row.HashValue(k)
			}
			sz := r.ObjectSize()
			bytes[int(h%uint64(eff))] += sz
			total += sz
		}
	}
	mean := total / int64(eff)
	if mean <= 0 {
		return nil, 0, 0
	}
	factor := d.cfg.skewFactor()
	threshold := int64(factor * float64(mean))
	splits = make([]int, eff)
	var max int64
	any := false
	for i, b := range bytes {
		if b > max {
			max = b
		}
		splits[i] = 1
		if b > threshold {
			s := int((b + mean - 1) / mean)
			if s > maxSkewSplits {
				s = maxSkewSplits
			}
			if s > 1 {
				splits[i] = s
				any = true
			}
		}
	}
	if !any {
		return nil, 0, 0
	}
	return splits, max, mean
}

// skewSplittable reports whether a join type's shuffled-hash reduce output
// is exactly probe-side input order, making contiguous chunk splits
// order-preserving. RightOuter re-probes from the right side and FullOuter
// appends map-ordered unmatched rows — never split those.
func skewSplittable(t plan.JoinType) bool {
	switch t {
	case plan.InnerJoin, plan.CrossJoin, plan.LeftOuterJoin, plan.LeftSemiJoin:
		return true
	}
	return false
}

// stagePartitions exposes the materialized partitions to the driver.
func (q *QueryStageExec) stagePartitions() [][]row.Row { return q.parts }

// Execute serves the already-computed stage output as a partition leaf.
func (q *QueryStageExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	return rdd.FromPartitions(ctx.RDD, q.parts)
}

func (q *QueryStageExec) SimpleString() string {
	return fmt.Sprintf("QueryStage (%d rows, %d B)", q.Rows, q.Bytes)
}
func (q *QueryStageExec) String() string { return Format(q) }
