package physical

import (
	"math/rand"
	"testing"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/row"
	"repro/internal/types"
)

func cachedTableForTest(rng *rand.Rand, nRows, parts, batchSize int) (*columnar.CachedTable, []*expr.AttributeReference) {
	schema := types.StructType{}.
		Add("id", types.Long, true).
		Add("score", types.Int, true).
		Add("name", types.String, true).
		Add("weight", types.Double, true)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	partitions := make([][]row.Row, parts)
	for i := 0; i < nRows; i++ {
		r := row.Row{int64(i), int32(rng.Intn(1000)), words[rng.Intn(len(words))], rng.Float64() * 100}
		if rng.Intn(11) == 0 {
			r[rng.Intn(4)] = nil
		}
		partitions[i%parts] = append(partitions[i%parts], r)
	}
	table := columnar.BuildTable(schema, partitions, batchSize)
	attrs := make([]*expr.AttributeReference, len(schema.Fields))
	for i, f := range schema.Fields {
		attrs[i] = expr.NewAttribute(f.Name, f.Type, f.Nullable)
	}
	return table, attrs
}

// runBoth executes the plan with the vectorized knob off and on and asserts
// the results are identical including row order — the byte-identical
// contract of the acceptance criteria.
func runBoth(t *testing.T, p SparkPlan, label string) {
	t.Helper()
	rowCtx := execCtx(true)
	vecCtx := execCtx(true)
	vecCtx.Vectorized = true
	rowRes := collect(t, p, rowCtx)
	vecRes := collect(t, p, vecCtx)
	if len(rowRes) != len(vecRes) {
		t.Fatalf("%s: row path %d rows, vectorized %d", label, len(rowRes), len(vecRes))
	}
	for i := range rowRes {
		if len(rowRes[i]) != len(vecRes[i]) {
			t.Fatalf("%s row %d: arity %d vs %d", label, i, len(rowRes[i]), len(vecRes[i]))
		}
		for j := range rowRes[i] {
			if !row.Equal(rowRes[i][j], vecRes[i][j]) {
				t.Fatalf("%s row %d col %d: row-path=%v (%T), vectorized=%v (%T)",
					label, i, j, rowRes[i][j], rowRes[i][j], vecRes[i][j], vecRes[i][j])
			}
		}
	}
}

func TestVectorizeRuleSwapsCachePipelines(t *testing.T) {
	table, attrs := cachedTableForTest(rand.New(rand.NewSource(1)), 500, 3, 64)
	scan := NewInMemoryScan(attrs, table, nil, nil)
	pipe := Collapse(&ProjectExec{
		List:  []expr.Expression{attrs[0], attrs[1]},
		Child: &FilterExec{Cond: expr.GT(attrs[1], expr.Lit(int32(500))), Child: scan},
	})
	p := Vectorize(pipe)
	v, ok := p.(*VectorizedPipelineExec)
	if !ok {
		t.Fatalf("Vectorize did not swap: %T", p)
	}
	if v.Native != 2 {
		t.Errorf("native stages = %d, want 2", v.Native)
	}
	if len(v.Output()) != 2 {
		t.Errorf("output arity = %d", len(v.Output()))
	}
}

func TestVectorizeRuleSkipsNonNativePipelines(t *testing.T) {
	table, attrs := cachedTableForTest(rand.New(rand.NewSource(2)), 100, 2, 32)
	scan := NewInMemoryScan(attrs, table, nil, nil)
	// NOT requires 3-valued logic: scalar fallback only, so no native stage.
	pipe := Collapse(&FilterExec{
		Cond:  &expr.Not{Child: expr.GT(attrs[1], expr.Lit(int32(10)))},
		Child: scan,
	})
	if _, ok := Vectorize(pipe).(*VectorizedPipelineExec); ok {
		t.Fatal("pipeline with zero native stages must stay row-at-a-time")
	}
	// Non-cache leaves are never vectorized.
	local := NewLocalScan(attrs, []row.Row{{int64(1), int32(2), "x", 3.0}})
	pipe2 := Collapse(&FilterExec{Cond: expr.GT(attrs[1], expr.Lit(int32(0))), Child: local})
	if _, ok := Vectorize(pipe2).(*VectorizedPipelineExec); ok {
		t.Fatal("non-cache pipelines must not be vectorized")
	}
}

func TestVectorizedExecMatchesRowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	table, attrs := cachedTableForTest(rng, 2000, 4, 128)
	newScan := func() SparkPlan { return NewInMemoryScan(attrs, table, nil, nil) }
	id, score, name, weight := attrs[0], attrs[1], attrs[2], attrs[3]

	cases := []struct {
		label string
		build func() SparkPlan
	}{
		{"filter-project", func() SparkPlan {
			return &ProjectExec{
				List:  []expr.Expression{name, expr.NewAlias(expr.Add(score, expr.Lit(int32(5))), "s5")},
				Child: &FilterExec{Cond: expr.GT(score, expr.Lit(int32(300))), Child: newScan()},
			}
		}},
		{"filter-only-keeps-all-columns", func() SparkPlan {
			return &FilterExec{Cond: expr.GT(score, expr.Lit(int32(700))), Child: newScan()}
		}},
		{"and-or-mix", func() SparkPlan {
			cond := &expr.Or{
				Left:  &expr.And{Left: expr.GT(score, expr.Lit(int32(100))), Right: &expr.Comparison{Op: expr.OpLT, Left: score, Right: expr.Lit(int32(200))}},
				Right: &expr.Comparison{Op: expr.OpEQ, Left: name, Right: expr.Lit("gamma")},
			}
			return &FilterExec{Cond: cond, Child: newScan()}
		}},
		{"null-handling", func() SparkPlan {
			return &ProjectExec{
				List:  []expr.Expression{id, score},
				Child: &FilterExec{Cond: &expr.IsNotNull{Child: name}, Child: newScan()},
			}
		}},
		{"is-null", func() SparkPlan {
			return &FilterExec{Cond: &expr.IsNull{Child: score}, Child: newScan()}
		}},
		{"in-list", func() SparkPlan {
			return &FilterExec{
				Cond:  &expr.In{Value: name, List: []expr.Expression{expr.Lit("alpha"), expr.Lit("delta")}},
				Child: newScan(),
			}
		}},
		{"double-arith", func() SparkPlan {
			return &ProjectExec{
				List:  []expr.Expression{expr.NewAlias(expr.Mul(weight, expr.Lit(2.0)), "w2")},
				Child: &FilterExec{Cond: &expr.Comparison{Op: expr.OpGE, Left: weight, Right: expr.Lit(50.0)}, Child: newScan()},
			}
		}},
		{"scalar-fallback-stage", func() SparkPlan {
			// Upper is not kernel-compilable: its stage falls back per-row
			// inside the batch loop, the filter stays native.
			return &ProjectExec{
				List:  []expr.Expression{expr.NewAlias(expr.Upper(name), "u"), score},
				Child: &FilterExec{Cond: expr.GT(score, expr.Lit(int32(250))), Child: newScan()},
			}
		}},
		{"multi-stage", func() SparkPlan {
			inner := &ProjectExec{
				List: []expr.Expression{
					name,
					expr.NewAlias(expr.Mul(score, expr.Lit(int32(3))), "s3"),
				},
				Child: &FilterExec{Cond: expr.GT(score, expr.Lit(int32(100))), Child: newScan()},
			}
			s3 := inner.Output()[1]
			return &FilterExec{Cond: &expr.Comparison{Op: expr.OpLT, Left: s3, Right: expr.Lit(int32(2000))}, Child: inner}
		}},
		{"mod-by-zero-null", func() SparkPlan {
			mod := &expr.BinaryArith{Op: expr.OpMod, Left: score, Right: &expr.BinaryArith{Op: expr.OpMod, Left: score, Right: expr.Lit(int32(7))}}
			return &ProjectExec{List: []expr.Expression{expr.NewAlias(mod, "m")}, Child: newScan()}
		}},
	}
	for _, tc := range cases {
		p := Vectorize(Collapse(tc.build()))
		runBoth(t, p, tc.label)
	}
}

func TestVectorizedExecWithPrunedOrdinalsAndBatchSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	table, attrs := cachedTableForTest(rng, 1000, 2, 50)
	// Prune to (score, name), as the optimizer would for this query.
	pruned := []*expr.AttributeReference{attrs[1], attrs[2]}
	ordinals := []int{1, 2}
	keep := func(stats []columnar.ColStats) bool {
		// Skip batches whose score max is below the predicate constant.
		if stats[1].Max == nil {
			return true
		}
		return row.Compare(stats[1].Max, int32(400)) >= 0
	}
	scan := NewInMemoryScan(pruned, table, ordinals, keep)
	p := Vectorize(Collapse(&ProjectExec{
		List:  []expr.Expression{pruned[1]},
		Child: &FilterExec{Cond: expr.GT(pruned[0], expr.Lit(int32(400))), Child: scan},
	}))
	if _, ok := p.(*VectorizedPipelineExec); !ok {
		t.Fatalf("expected vectorized plan, got %T", p)
	}
	runBoth(t, p, "pruned+batchskip")
}

func TestVectorizedExecEmptyTable(t *testing.T) {
	schema := types.StructType{}.Add("x", types.Int, true)
	table := columnar.BuildTable(schema, [][]row.Row{nil, {}}, 16)
	attrs := []*expr.AttributeReference{expr.NewAttribute("x", types.Int, true)}
	p := Vectorize(Collapse(&FilterExec{
		Cond:  expr.GT(attrs[0], expr.Lit(int32(0))),
		Child: NewInMemoryScan(attrs, table, nil, nil),
	}))
	runBoth(t, p, "empty")
}
