package physical

import (
	"fmt"
	"time"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/types"
)

// VectorizedPipelineExec runs a fused filter/project pipeline batch-at-a-time
// directly over the columnar cache: each batch's referenced columns are
// decoded ONCE into typed vectors, predicates narrow a selection vector, and
// rows are materialized only at the pipeline boundary for the surviving
// positions. This removes the per-row boxing and interface dispatch that the
// row-at-a-time path pays between the cache and the first operator — the gap
// EXPERIMENTS.md measures against the native baseline.
//
// The Vectorize preparation rule swaps it in for PipelineExec over an
// InMemoryColumnar scan when at least one stage compiles to native kernels;
// ExecContext.Vectorized gates execution at runtime (off = identical
// row-at-a-time semantics through PipelineExec).
type VectorizedPipelineExec struct {
	PlanEstimate
	PlanMetrics
	FusionNote
	// Stages are listed bottom (first applied) to top, as in PipelineExec.
	Stages []stage
	Scan   *InMemoryScanExec
	// Native counts stages that compiled to native batch kernels (the rest
	// run through the per-row scalar fallback inside the batch loop).
	Native int
}

func (v *VectorizedPipelineExec) Children() []SparkPlan { return []SparkPlan{v.Scan} }
func (v *VectorizedPipelineExec) WithNewChildren(children []SparkPlan) SparkPlan {
	if scan, ok := children[0].(*InMemoryScanExec); ok {
		c := *v
		c.Scan = scan
		return &c
	}
	// The leaf is no longer a cache scan: degrade to the row pipeline.
	return transferEstimate(&PipelineExec{Stages: v.Stages, Child: children[0]}, v)
}
func (v *VectorizedPipelineExec) Output() []*expr.AttributeReference {
	return stagesOutput(v.Stages, v.Scan.Output())
}
func (v *VectorizedPipelineExec) SimpleString() string {
	return fmt.Sprintf("VectorizedPipeline (%d stages, %d native)", len(v.Stages), v.Native)
}
func (v *VectorizedPipelineExec) String() string { return Format(v) }

// vecStage is a stage compiled to batch kernels.
type vecStage struct {
	isFilter bool
	pred     expr.VecPred
	evals    []expr.VecEval
	native   bool
}

// compileVecStages binds and compiles the stage chain against the scan
// output. It returns the compiled stages, which scan output positions the
// first batch must decode (everything a stage references before the first
// projection replaces the batch — or every column when no projection exists,
// since all of them survive to materialization), and how many stages
// compiled natively.
func compileVecStages(stages []stage, attrs []*expr.AttributeReference) ([]vecStage, []bool, int) {
	used := make([]bool, len(attrs))
	out := make([]vecStage, len(stages))
	native := 0
	projected := false
	cur := attrs
	for i, st := range stages {
		if st.isFilter {
			cond := bind(st.cond, cur)
			if !projected {
				markBoundRefs(cond, used)
			}
			pred, ok := expr.CompileVecPredicate(cond)
			out[i] = vecStage{isFilter: true, pred: pred, native: ok}
			if ok {
				native++
			}
			continue
		}
		bound := bindAll(st.list, cur)
		evals := make([]expr.VecEval, len(bound))
		allNative := true
		for j, e := range bound {
			if !projected {
				markBoundRefs(e, used)
			}
			ev, ok := expr.CompileVec(e)
			evals[j] = ev
			allNative = allNative && ok
		}
		out[i] = vecStage{evals: evals, native: allNative}
		if allNative {
			native++
		}
		projected = true
		cur = stageAttrs(st)
	}
	if !projected {
		for j := range used {
			used[j] = true
		}
	}
	return out, used, native
}

// markBoundRefs records which input ordinals a bound expression touches.
func markBoundRefs(e expr.Expression, used []bool) {
	if b, ok := e.(*expr.BoundReference); ok {
		used[b.Ordinal] = true
		return
	}
	for _, c := range e.Children() {
		markBoundRefs(c, used)
	}
}

func (v *VectorizedPipelineExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	if !ctx.Vectorized {
		// The knob is off: run the exact row-at-a-time pipeline, sharing
		// this node's metrics so EXPLAIN ANALYZE annotates the tree it
		// printed rather than the transient fallback node.
		pipe := &PipelineExec{Stages: v.Stages, Child: v.Scan}
		pipe.PlanMetrics.m = v.EnableMetrics(ctx.Metrics)
		return pipe.Execute(ctx)
	}
	scan := v.Scan
	om := v.EnableMetrics(ctx.Metrics)
	scanOM := scan.EnableMetrics(ctx.Metrics)
	stages, used, _ := compileVecStages(v.Stages, scan.Attrs)
	eff, colTypes := scanDecodePlan(scan, used)

	table, keep := scan.Table, scan.Keep
	return rdd.Generate(ctx.RDD, "cacheScanVec", len(table.Partitions), func(p int) []row.Row {
		start := time.Now()
		var out []row.Row
		for _, b := range table.Partitions[p] {
			if keep != nil && !keep(b.Stats) {
				continue
			}
			// The scan's rows are never materialized on this path; credit it
			// with the batches and decoded row counts it fed the pipeline.
			scanOM.RecordBatch(b.NumRows)
			if om != nil {
				om.Batches.Add(1)
			}
			batch := &expr.VecBatch{Cols: b.DecodeBatch(colTypes, eff), N: b.NumRows}
			live := make([]int32, b.NumRows)
			for i := range live {
				live[i] = int32(i)
			}
			for _, st := range stages {
				if st.isFilter {
					live = st.pred(batch, live)
					if len(live) == 0 {
						break
					}
					continue
				}
				cols := make([]*columnar.Vector, len(st.evals))
				for j, ev := range st.evals {
					cols[j] = ev(batch, live)
				}
				batch = &expr.VecBatch{Cols: cols, N: b.NumRows}
			}
			for _, i := range live {
				r := make(row.Row, len(batch.Cols))
				for j, c := range batch.Cols {
					r[j] = c.Get(int(i))
				}
				out = append(out, r)
			}
		}
		om.RecordPartition(len(out), time.Since(start))
		return out
	})
}

// scanDecodePlan maps each scan output position to the cached column
// ordinal to decode (-1 when no consumer references it) and its type.
func scanDecodePlan(scan *InMemoryScanExec, used []bool) ([]int, []types.DataType) {
	eff := make([]int, len(scan.Attrs))
	colTypes := make([]types.DataType, len(scan.Attrs))
	for j := range scan.Attrs {
		ord := j
		if scan.Ordinals != nil {
			ord = scan.Ordinals[j]
		}
		colTypes[j] = scan.Table.Schema.Fields[ord].Type
		if used[j] {
			eff[j] = ord
		} else {
			eff[j] = -1
		}
	}
	return eff, colTypes
}

// stageAttrs is the output schema of a projection stage.
func stageAttrs(st stage) []*expr.AttributeReference {
	out := make([]*expr.AttributeReference, len(st.list))
	for i, e := range st.list {
		out[i] = e.(expr.Named).ToAttribute()
	}
	return out
}

// stagesOutput threads a schema through a stage chain.
func stagesOutput(stages []stage, attrs []*expr.AttributeReference) []*expr.AttributeReference {
	for _, st := range stages {
		if !st.isFilter {
			attrs = stageAttrs(st)
		}
	}
	return attrs
}

// Vectorize is the preparation rule (run after Collapse) that swaps
// PipelineExec for VectorizedPipelineExec wherever the pipeline sits
// directly on an InMemoryColumnar scan and at least one fused stage
// compiles to native batch kernels — otherwise vectorization is pure
// decode overhead and the row pipeline is kept.
func Vectorize(p SparkPlan) SparkPlan {
	children := p.Children()
	if len(children) > 0 {
		newChildren := make([]SparkPlan, len(children))
		changed := false
		for i, c := range children {
			nc := Vectorize(c)
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			p = p.WithNewChildren(newChildren)
		}
	}
	pipe, ok := p.(*PipelineExec)
	if !ok {
		return p
	}
	scan, ok := pipe.Child.(*InMemoryScanExec)
	if !ok {
		return p
	}
	_, _, native := compileVecStages(pipe.Stages, scan.Attrs)
	if native == 0 {
		return p
	}
	return transferEstimate(&VectorizedPipelineExec{Stages: pipe.Stages, Scan: scan, Native: native}, pipe)
}
