package physical

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
	"repro/internal/types"
)

func execCtx(codegen bool) *ExecContext {
	return &ExecContext{RDD: rdd.NewContext(4), Codegen: codegen, ShufflePartitions: 3}
}

func attrsOf(names []string, ts []types.DataType) []*expr.AttributeReference {
	out := make([]*expr.AttributeReference, len(names))
	for i := range names {
		out[i] = expr.NewAttribute(names[i], ts[i], true)
	}
	return out
}

func collect(t *testing.T, p SparkPlan, ctx *ExecContext) []row.Row {
	t.Helper()
	rows, err := p.Execute(ctx).Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return rows
}

func sortRows(rows []row.Row) {
	sort.Slice(rows, func(i, j int) bool {
		return row.Compare(rows[i], rows[j]) < 0
	})
}

func rowsEqual(a, b []row.Row) bool {
	if len(a) != len(b) {
		return false
	}
	sortRows(a)
	sortRows(b)
	for i := range a {
		if row.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func TestProjectAndFilterExec(t *testing.T) {
	attrs := attrsOf([]string{"a"}, []types.DataType{types.Int})
	scan := NewLocalScan(attrs, []row.Row{{int32(1)}, {int32(2)}, {int32(3)}, {nil}})
	p := &ProjectExec{
		List:  []expr.Expression{expr.NewAlias(expr.Add(attrs[0], expr.Lit(int32(10))), "a10")},
		Child: &FilterExec{Cond: expr.GT(attrs[0], expr.Lit(int32(1))), Child: scan},
	}
	for _, codegen := range []bool{true, false} {
		got := collect(t, p, execCtx(codegen))
		if len(got) != 2 {
			t.Fatalf("codegen=%v rows=%v", codegen, got)
		}
	}
}

func TestPipelineCollapseEquivalence(t *testing.T) {
	attrs := attrsOf([]string{"a", "b"}, []types.DataType{types.Int, types.Int})
	var rows []row.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, row.Row{int32(i), int32(i % 7)})
	}
	scan := NewLocalScan(attrs, rows)
	f1 := &FilterExec{Cond: expr.GT(attrs[0], expr.Lit(int32(10))), Child: scan}
	p1 := &ProjectExec{
		List: []expr.Expression{
			attrs[0],
			expr.NewAlias(expr.Mul(attrs[1], expr.Lit(int32(2))), "b2"),
		},
		Child: f1,
	}
	var plain SparkPlan = &FilterExec{Cond: expr.LT(p1.Output()[1], expr.Lit(int32(10))), Child: p1}
	// Collapse builds a new tree (operators are immutable), so the same
	// plan can execute both ways.
	collapsed := Collapse(plain)
	if _, isPipe := collapsed.(*PipelineExec); !isPipe {
		t.Fatalf("chain should fuse into a pipeline, got %T", collapsed)
	}
	if got := len(collapsed.(*PipelineExec).Stages); got != 3 {
		t.Fatalf("fused stages = %d, want 3", got)
	}
	a := collect(t, plain, execCtx(true))
	b := collect(t, collapsed, execCtx(true))
	if !rowsEqual(a, b) {
		t.Fatalf("collapse changed results: %v vs %v", a, b)
	}
	// Output schema matches too.
	if attrsString(plain.Output()) != attrsString(collapsed.Output()) {
		t.Fatalf("output mismatch: %v vs %v", plain.Output(), collapsed.Output())
	}
}

func TestHashAggregateGroupedAndGlobal(t *testing.T) {
	attrs := attrsOf([]string{"k", "v"}, []types.DataType{types.Int, types.Int})
	rows := []row.Row{
		{int32(1), int32(10)},
		{int32(2), int32(20)},
		{int32(1), int32(30)},
		{int32(2), nil},
	}
	scan := NewLocalScan(attrs, rows)
	agg := &HashAggregateExec{
		Grouping: []expr.Expression{attrs[0]},
		Aggs: []expr.Expression{
			attrs[0],
			expr.NewAlias(&expr.Sum{Child: attrs[1]}, "s"),
			expr.NewAlias(&expr.Count{Child: attrs[1]}, "c"),
			expr.NewAlias(&expr.Avg{Child: attrs[1]}, "a"),
		},
		Child: scan,
	}
	for _, codegen := range []bool{true, false} { // covers fast + generic paths
		got := collect(t, agg, execCtx(codegen))
		if len(got) != 2 {
			t.Fatalf("groups = %v", got)
		}
		byKey := map[int32]row.Row{}
		for _, r := range got {
			byKey[r[0].(int32)] = r
		}
		if byKey[1][1] != int64(40) || byKey[1][2] != int64(2) || byKey[1][3] != 20.0 {
			t.Fatalf("codegen=%v group1 = %v", codegen, byKey[1])
		}
		if byKey[2][1] != int64(20) || byKey[2][2] != int64(1) {
			t.Fatalf("codegen=%v group2 = %v", codegen, byKey[2])
		}
	}

	// Global aggregate over empty input yields a single row.
	empty := NewLocalScan(attrs, nil)
	global := &HashAggregateExec{
		Aggs: []expr.Expression{
			expr.NewAlias(expr.NewCountStar(), "n"),
			expr.NewAlias(&expr.Sum{Child: attrs[1]}, "s"),
		},
		Child: empty,
	}
	got := collect(t, global, execCtx(true))
	if len(got) != 1 || got[0][0] != int64(0) || got[0][1] != nil {
		t.Fatalf("empty global agg = %v", got)
	}
}

func TestAggregateWithExpressionOverAggs(t *testing.T) {
	// avg(v) embedded in an arithmetic expression + grouping expr reuse:
	// the splitAggregates machinery.
	attrs := attrsOf([]string{"k", "v"}, []types.DataType{types.Int, types.Int})
	rows := []row.Row{{int32(1), int32(10)}, {int32(1), int32(20)}}
	agg := &HashAggregateExec{
		Grouping: []expr.Expression{attrs[0]},
		Aggs: []expr.Expression{
			expr.NewAlias(expr.Add(expr.NewCast(attrs[0], types.Double), &expr.Avg{Child: attrs[1]}), "kPlusAvg"),
		},
		Child: NewLocalScan(attrs, rows),
	}
	got := collect(t, agg, execCtx(true))
	if len(got) != 1 || got[0][0] != 16.0 { // 1 + 15
		t.Fatalf("got %v", got)
	}
}

// referenceJoin is a straightforward nested-loop implementation used as the
// oracle for the hash join property tests.
func referenceJoin(left, right []row.Row, jt plan.JoinType, key func(row.Row) any, match func(l, r row.Row) bool) []row.Row {
	var out []row.Row
	rightMatched := make([]bool, len(right))
	for _, l := range left {
		matched := false
		for ri, r := range right {
			lk, rk := key(l), key(r)
			if lk == nil || rk == nil || !row.Equal(lk, rk) || !match(l, r) {
				continue
			}
			matched = true
			rightMatched[ri] = true
			if jt != plan.LeftSemiJoin {
				joined := append(append(row.Row{}, l...), r...)
				out = append(out, joined)
			}
		}
		switch {
		case jt == plan.LeftSemiJoin && matched:
			out = append(out, l)
		case !matched && (jt == plan.LeftOuterJoin || jt == plan.FullOuterJoin):
			out = append(out, append(append(row.Row{}, l...), make(row.Row, len(right[0]))...))
		}
	}
	if jt == plan.RightOuterJoin || jt == plan.FullOuterJoin {
		for ri, r := range right {
			if !rightMatched[ri] {
				out = append(out, append(make(row.Row, len(left[0])), r...))
			}
		}
	}
	if jt == plan.RightOuterJoin {
		// inner pairs plus unmatched right; rebuild inner pairs.
		out = nil
		for _, l := range left {
			for _, r := range right {
				lk, rk := key(l), key(r)
				if lk != nil && rk != nil && row.Equal(lk, rk) && match(l, r) {
					out = append(out, append(append(row.Row{}, l...), r...))
				}
			}
		}
		for ri, r := range right {
			if !rightMatched[ri] {
				out = append(out, append(make(row.Row, len(left[0])), r...))
			}
		}
	}
	return out
}

func randomJoinData(rng *rand.Rand, n int) []row.Row {
	out := make([]row.Row, n)
	for i := range out {
		var k any
		if rng.Intn(8) == 0 {
			k = nil // NULL keys never match
		} else {
			k = int32(rng.Intn(6))
		}
		out[i] = row.Row{k, int32(i)}
	}
	return out
}

// Property: broadcast and shuffled hash joins agree with the nested-loop
// oracle for every join type, including NULL keys.
func TestHashJoinsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	joinTypes := []plan.JoinType{
		plan.InnerJoin, plan.LeftOuterJoin, plan.RightOuterJoin,
		plan.FullOuterJoin, plan.LeftSemiJoin,
	}
	for trial := 0; trial < 20; trial++ {
		leftRows := randomJoinData(rng, 1+rng.Intn(30))
		rightRows := randomJoinData(rng, 1+rng.Intn(30))
		leftAttrs := attrsOf([]string{"lk", "lv"}, []types.DataType{types.Int, types.Int})
		rightAttrs := attrsOf([]string{"rk", "rv"}, []types.DataType{types.Int, types.Int})
		leftScan := NewLocalScan(leftAttrs, leftRows)
		rightScan := NewLocalScan(rightAttrs, rightRows)

		for _, jt := range joinTypes {
			want := referenceJoin(leftRows, rightRows, jt,
				func(r row.Row) any { return r[0] },
				func(l, r row.Row) bool { return true })

			shuffled := &ShuffledHashJoinExec{
				Left: leftScan, Right: rightScan,
				LeftKeys:  []expr.Expression{leftAttrs[0]},
				RightKeys: []expr.Expression{rightAttrs[0]},
				Type:      jt,
			}
			got := collect(t, shuffled, execCtx(true))
			if !rowsEqual(got, append([]row.Row{}, want...)) {
				t.Fatalf("trial %d %s shuffled: got %d rows, want %d\n%v\n%v",
					trial, jt, len(got), len(want), got, want)
			}

			// Broadcast variants where supported.
			if jt == plan.InnerJoin || jt == plan.LeftOuterJoin || jt == plan.LeftSemiJoin {
				bc := &BroadcastHashJoinExec{
					Left: leftScan, Right: rightScan,
					LeftKeys:  []expr.Expression{leftAttrs[0]},
					RightKeys: []expr.Expression{rightAttrs[0]},
					Type:      jt, BuildRight: true,
				}
				got := collect(t, bc, execCtx(true))
				if !rowsEqual(got, append([]row.Row{}, want...)) {
					t.Fatalf("trial %d %s broadcast-right mismatch", trial, jt)
				}
			}
			if jt == plan.InnerJoin || jt == plan.RightOuterJoin {
				bc := &BroadcastHashJoinExec{
					Left: leftScan, Right: rightScan,
					LeftKeys:  []expr.Expression{leftAttrs[0]},
					RightKeys: []expr.Expression{rightAttrs[0]},
					Type:      jt, BuildRight: false,
				}
				got := collect(t, bc, execCtx(true))
				if !rowsEqual(got, append([]row.Row{}, want...)) {
					t.Fatalf("trial %d %s broadcast-left mismatch", trial, jt)
				}
			}
		}
	}
}

func TestJoinResidualCondition(t *testing.T) {
	leftAttrs := attrsOf([]string{"lk", "lv"}, []types.DataType{types.Int, types.Int})
	rightAttrs := attrsOf([]string{"rk", "rv"}, []types.DataType{types.Int, types.Int})
	leftRows := []row.Row{{int32(1), int32(5)}, {int32(1), int32(50)}}
	rightRows := []row.Row{{int32(1), int32(10)}}
	j := &ShuffledHashJoinExec{
		Left:      NewLocalScan(leftAttrs, leftRows),
		Right:     NewLocalScan(rightAttrs, rightRows),
		LeftKeys:  []expr.Expression{leftAttrs[0]},
		RightKeys: []expr.Expression{rightAttrs[0]},
		Type:      plan.InnerJoin,
		Residual:  expr.LT(leftAttrs[1], rightAttrs[1]), // lv < rv
	}
	got := collect(t, j, execCtx(true))
	if len(got) != 1 || got[0][1] != int32(5) {
		t.Fatalf("residual filter wrong: %v", got)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	leftAttrs := attrsOf([]string{"a"}, []types.DataType{types.Int})
	rightAttrs := attrsOf([]string{"b"}, []types.DataType{types.Int})
	left := NewLocalScan(leftAttrs, []row.Row{{int32(1)}, {int32(5)}})
	right := NewLocalScan(rightAttrs, []row.Row{{int32(3)}, {int32(7)}})
	j := &NestedLoopJoinExec{
		Left: left, Right: right,
		Type: plan.InnerJoin,
		Cond: expr.LT(leftAttrs[0], rightAttrs[0]),
	}
	got := collect(t, j, execCtx(true))
	// pairs with a<b: (1,3), (1,7), (5,7)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSortExec(t *testing.T) {
	attrs := attrsOf([]string{"a", "b"}, []types.DataType{types.Int, types.String})
	rows := []row.Row{
		{int32(3), "c"}, {int32(1), "a"}, {nil, "n"}, {int32(2), "b"}, {int32(1), "z"},
	}
	s := &SortExec{
		Orders: []*expr.SortOrder{expr.Asc(attrs[0]), expr.Desc(attrs[1])},
		Global: true,
		Child:  NewLocalScan(attrs, rows),
	}
	got := collect(t, s, execCtx(true))
	// NULLS FIRST ascending; ties broken by b DESC.
	if got[0][0] != nil || got[1][1] != "z" || got[2][1] != "a" || got[4][0] != int32(3) {
		t.Fatalf("sorted = %v", got)
	}
}

func TestLimitAndUnionExec(t *testing.T) {
	attrs := attrsOf([]string{"a"}, []types.DataType{types.Int})
	rows := make([]row.Row, 10)
	for i := range rows {
		rows[i] = row.Row{int32(i)}
	}
	scan := NewLocalScan(attrs, rows)
	l := &LimitExec{N: 4, Child: scan}
	if got := collect(t, l, execCtx(true)); len(got) != 4 {
		t.Fatalf("limit = %v", got)
	}
	u := &UnionExec{Kids: []SparkPlan{scan, scan}}
	if got := collect(t, u, execCtx(true)); len(got) != 20 {
		t.Fatalf("union = %d rows", len(got))
	}
}

func TestDistinctExec(t *testing.T) {
	attrs := attrsOf([]string{"a", "b"}, []types.DataType{types.Int, types.String})
	rows := []row.Row{
		{int32(1), "x"}, {int32(1), "x"}, {int32(1), "y"}, {nil, "x"}, {nil, "x"},
	}
	d := &DistinctExec{Child: NewLocalScan(attrs, rows)}
	got := collect(t, d, execCtx(true))
	if len(got) != 3 {
		t.Fatalf("distinct = %v", got)
	}
}

func TestSampleExecDeterministic(t *testing.T) {
	attrs := attrsOf([]string{"a"}, []types.DataType{types.Int})
	rows := make([]row.Row, 1000)
	for i := range rows {
		rows[i] = row.Row{int32(i)}
	}
	s := &SampleExec{Fraction: 0.3, Seed: 11, Child: NewLocalScan(attrs, rows)}
	a := collect(t, s, execCtx(true))
	b := collect(t, s, execCtx(true))
	if !rowsEqual(a, b) {
		t.Fatal("sampling must be deterministic for a fixed seed")
	}
	if len(a) < 200 || len(a) > 400 {
		t.Fatalf("sample size %d far from 300", len(a))
	}
}

func TestRangeScanExec(t *testing.T) {
	attr := expr.NewAttribute("id", types.Long, false)
	r := NewRangeScan(attr, 0, 10, 1, 3)
	got := collect(t, r, execCtx(true))
	if len(got) != 10 || got[0][0] != int64(0) || got[9][0] != int64(9) {
		t.Fatalf("range = %v", got)
	}
}

// Planner-level tests.

func plannerFor(threshold int64) *Planner {
	cfg := DefaultPlannerConfig()
	cfg.BroadcastThreshold = threshold
	return NewPlanner(cfg)
}

func TestPlannerJoinSelection(t *testing.T) {
	left := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "a", Type: types.Int, Nullable: false},
	), []row.Row{{int32(1)}})
	right := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "b", Type: types.Int, Nullable: false},
	), []row.Row{{int32(1)}})
	j := &plan.Join{
		Left: left, Right: right, Type: plan.InnerJoin,
		Cond: expr.EQ(left.Attrs[0], right.Attrs[0]),
	}
	// Tiny tables broadcast.
	p, err := plannerFor(1 << 20).Plan(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*BroadcastHashJoinExec); !ok {
		t.Fatalf("small table should broadcast, got %T", p)
	}
	// Threshold 0: everything shuffles.
	p, err = plannerFor(0).Plan(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*ShuffledHashJoinExec); !ok {
		t.Fatalf("expected shuffled join, got %T", p)
	}
	// No equi keys: nested loop.
	nl := &plan.Join{
		Left: left, Right: right, Type: plan.InnerJoin,
		Cond: expr.LT(left.Attrs[0], right.Attrs[0]),
	}
	p, err = plannerFor(1 << 20).Plan(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*NestedLoopJoinExec); !ok {
		t.Fatalf("expected nested loop, got %T", p)
	}
}

func TestExtractEquiKeys(t *testing.T) {
	left := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "a", Type: types.Int, Nullable: false},
	), nil)
	right := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "b", Type: types.Int, Nullable: false},
	), nil)
	j := &plan.Join{
		Left: left, Right: right, Type: plan.InnerJoin,
		Cond: &expr.And{
			Left:  expr.EQ(right.Attrs[0], left.Attrs[0]), // flipped sides
			Right: expr.LT(left.Attrs[0], expr.Lit(int32(9))),
		},
	}
	lk, rk, residual := ExtractEquiKeys(j)
	if len(lk) != 1 || len(rk) != 1 {
		t.Fatalf("keys = %v %v", lk, rk)
	}
	if lk[0].(*expr.AttributeReference).ID_ != left.Attrs[0].ID_ {
		t.Error("flipped equi-key should normalize to left side")
	}
	if residual == nil || !strings.Contains(residual.String(), "< 9") {
		t.Errorf("residual = %v", residual)
	}
}

func TestPlannerStrategyExtension(t *testing.T) {
	rel := plan.NewLocalRelation(types.NewStruct(
		types.StructField{Name: "a", Type: types.Int, Nullable: false},
	), nil)
	pl := plannerFor(1 << 20)
	claimed := false
	pl.Strategies = append(pl.Strategies, func(p *Planner, lp plan.LogicalPlan) (SparkPlan, bool, error) {
		if _, ok := lp.(*plan.LocalRelation); ok {
			claimed = true
		}
		return nil, false, nil // observe but decline
	})
	if _, err := pl.Plan(rel); err != nil {
		t.Fatal(err)
	}
	if !claimed {
		t.Error("custom strategies must be consulted")
	}
}
