package physical

import (
	"context"
	"fmt"
	"time"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
)

// FusedBroadcastJoinExec is the whole-stage fusion of a vectorized pipeline
// with a broadcast-hash-join probe: the build side is loaded once into a
// type-specialized hash table (int64, string, or (int64, int64) keys — the
// shapes the Fuse rule admits), and the probe loop reads join keys straight
// off the decoded column vectors, boxing a probe row only when it actually
// matches (or needs null-extension under LEFT OUTER). The emitted row order
// is byte-identical to BroadcastHashJoinExec: probe rows in pipeline order,
// matches in build-collect order.
type FusedBroadcastJoinExec struct {
	PlanEstimate
	PlanMetrics
	FusionNote
	Join *BroadcastHashJoinExec // key/type config; its Left is unused here
	Pipe *VectorizedPipelineExec
}

func (f *FusedBroadcastJoinExec) Children() []SparkPlan { return []SparkPlan{f.Pipe, f.Join.Right} }
func (f *FusedBroadcastJoinExec) WithNewChildren(children []SparkPlan) SparkPlan {
	j := *f.Join
	j.Right = children[1]
	if vp, ok := children[0].(*VectorizedPipelineExec); ok {
		c := *f
		c.Join = &j
		c.Pipe = vp
		return &c
	}
	// The probe pipeline degraded: fall back to the row join.
	j.Left = children[0]
	return transferEstimate(&j, f)
}
func (f *FusedBroadcastJoinExec) Output() []*expr.AttributeReference {
	return joinOutput(f.Join.Type, f.Pipe.Output(), f.Join.Right.Output())
}
func (f *FusedBroadcastJoinExec) SimpleString() string {
	j := f.Join
	return fmt.Sprintf("FusedBroadcastHashJoin %s build=right keys=[%s]=[%s]",
		j.Type, exprListString(j.LeftKeys), exprListString(j.RightKeys))
}
func (f *FusedBroadcastJoinExec) String() string { return Format(f) }

func (f *FusedBroadcastJoinExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	j := f.Join
	om := f.EnableMetrics(ctx.Metrics)
	if !ctx.Vectorized {
		// Runtime knob off: run the identical row join, sharing this node's
		// metrics so EXPLAIN ANALYZE annotates the printed tree.
		jr := *j
		jr.Left = f.Pipe
		jr.PlanMetrics.m = om
		return jr.Execute(ctx)
	}

	leftOut, rightOut := f.Pipe.Output(), j.Right.Output()
	buildEvals := bindKeys(ctx, j.RightKeys, rightOut)
	probeVecs := make([]expr.VecEval, len(j.LeftKeys))
	for i, k := range bindAll(j.LeftKeys, leftOut) {
		// The Fuse rule only admits keys that compile natively.
		probeVecs[i], _ = expr.CompileVec(k)
	}
	nRight := len(rightOut)
	leftOuter := j.Type == plan.LeftOuterJoin

	scan := f.Pipe.Scan
	scanOM := scan.EnableMetrics(ctx.Metrics)
	stages, used, _ := compileVecStages(f.Pipe.Stages, scan.Attrs)
	eff, colTypes := scanDecodePlan(scan, used)

	build := j.Right.Execute(ctx)
	lazy := &lazyBuild[probeTable]{}
	strKey := len(j.LeftKeys) == 1 && expr.VecClassOf(j.LeftKeys[0].DataType()) == expr.VecClassStr
	table, keep := scan.Table, scan.Keep
	return rdd.GenerateCtx(ctx.RDD, "fusedJoinProbe", len(table.Partitions), func(jc context.Context, p int) ([]row.Row, error) {
		ht, err := lazy.get(jc, func(jc context.Context) (probeTable, error) {
			rows, err := build.CollectContext(jc)
			if err != nil {
				return nil, err
			}
			if om != nil {
				om.RecordBuild(len(rows), rowsSize(rows))
			}
			return buildProbeTable(rows, buildEvals, strKey), nil
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var out []row.Row
		kvecs := make([]*columnar.Vector, len(probeVecs))
		for _, b := range table.Partitions[p] {
			if keep != nil && !keep(b.Stats) {
				continue
			}
			scanOM.RecordBatch(b.NumRows)
			if om != nil {
				om.Batches.Add(1)
			}
			batch := &expr.VecBatch{Cols: b.DecodeBatch(colTypes, eff), N: b.NumRows}
			live := make([]int32, b.NumRows)
			for i := range live {
				live[i] = int32(i)
			}
			for _, st := range stages {
				if st.isFilter {
					live = st.pred(batch, live)
					if len(live) == 0 {
						break
					}
					continue
				}
				cols := make([]*columnar.Vector, len(st.evals))
				for jj, ev := range st.evals {
					cols[jj] = ev(batch, live)
				}
				batch = &expr.VecBatch{Cols: cols, N: b.NumRows}
			}
			if len(live) == 0 {
				continue
			}
			for i, kv := range probeVecs {
				kvecs[i] = kv(batch, live)
			}
			for _, i := range live {
				ii := int(i)
				bucket, keyOK := ht.bucket(kvecs, ii)
				if !keyOK || len(bucket) == 0 {
					if leftOuter {
						out = append(out, concatRows(boxBatchRow(batch, ii), nullRow(nRight)))
					}
					continue
				}
				l := boxBatchRow(batch, ii)
				for _, r := range bucket {
					out = append(out, concatRows(l, r))
				}
			}
		}
		om.RecordPartition(len(out), time.Since(start))
		return out, nil
	})
}

// boxBatchRow materializes one probe row from the pipeline's final batch.
func boxBatchRow(b *expr.VecBatch, i int) row.Row {
	r := make(row.Row, len(b.Cols))
	for j, c := range b.Cols {
		r[j] = c.Get(i)
	}
	return r
}

// ---------------------------------------------------------------------------
// Specialized build-side tables

// probeTable buckets build rows by join key. bucket returns the rows whose
// key equals probe row i's key (in build-collect order, matching the row
// path) and whether the probe key was non-NULL — a NULL key never matches.
type probeTable interface {
	bucket(keys []*columnar.Vector, i int) ([]row.Row, bool)
}

// buildProbeTable loads the collected build side into the specialized table
// for the plan's key shape. Build keys evaluate through the scalar path —
// the build side is small (it broadcast) and arbitrary expressions stay
// supported — and normalize to the probe lanes' representation.
func buildProbeTable(rows []row.Row, keyEvals []func(row.Row) any, strKey bool) probeTable {
	switch {
	case strKey:
		t := &strTable{m: make(map[string][]row.Row, len(rows))}
		for _, r := range rows {
			v := keyEvals[0](r)
			if v == nil {
				continue
			}
			k := v.(string)
			t.m[k] = append(t.m[k], r)
		}
		return t
	case len(keyEvals) == 1:
		t := &i64Table{m: make(map[int64][]row.Row, len(rows))}
		for _, r := range rows {
			v := keyEvals[0](r)
			if v == nil {
				continue
			}
			k := normI64(v)
			t.m[k] = append(t.m[k], r)
		}
		return t
	default:
		t := &pairTable{m: make(map[[2]int64][]row.Row, len(rows))}
		for _, r := range rows {
			v0, v1 := keyEvals[0](r), keyEvals[1](r)
			if v0 == nil || v1 == nil {
				continue
			}
			k := [2]int64{normI64(v0), normI64(v1)}
			t.m[k] = append(t.m[k], r)
		}
		return t
	}
}

// normI64 widens a boxed int64-class value (INT/DATE box as int32,
// BIGINT/TIMESTAMP as int64) to the vector lane representation.
func normI64(v any) int64 {
	switch x := v.(type) {
	case int32:
		return int64(x)
	case int64:
		return x
	}
	panic(fmt.Sprintf("physical: non-integral build key %T escaped the fusion gate", v))
}

type i64Table struct{ m map[int64][]row.Row }

func (t *i64Table) bucket(keys []*columnar.Vector, i int) ([]row.Row, bool) {
	v := keys[0]
	if v.IsNull(i) {
		return nil, false
	}
	return t.m[v.I64[i&v.Mask()]], true
}

type strTable struct{ m map[string][]row.Row }

func (t *strTable) bucket(keys []*columnar.Vector, i int) ([]row.Row, bool) {
	v := keys[0]
	if v.IsNull(i) {
		return nil, false
	}
	return t.m[v.Str[i&v.Mask()]], true
}

type pairTable struct{ m map[[2]int64][]row.Row }

func (t *pairTable) bucket(keys []*columnar.Vector, i int) ([]row.Row, bool) {
	v0, v1 := keys[0], keys[1]
	if v0.IsNull(i) || v1.IsNull(i) {
		return nil, false
	}
	return t.m[[2]int64{v0.I64[i&v0.Mask()], v1.I64[i&v1.Mask()]}], true
}
