package physical

import (
	"context"
	"fmt"
	"time"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/rdd"
	"repro/internal/row"
)

// SortMergeJoinExec hash-partitions both sides on the join keys, sorts
// each partition pair by the key tuple with the external merge sort, and
// merges the sorted streams group-by-group — Spark SQL's default shuffle
// join once build sides can outgrow memory. The planner selects it in
// place of ShuffledHashJoinExec when a memory budget is set and the
// build side's estimated size is unknown or too large to hash within it:
// sort state degrades gracefully to spilled runs, while a hash table
// cannot shrink below its full build side.
type SortMergeJoinExec struct {
	PlanEstimate
	PlanMetrics
	AdaptiveNote
	Left, Right         SparkPlan
	LeftKeys, RightKeys []expr.Expression
	Type                plan.JoinType
	Residual            expr.Expression
	// Partitions, when positive, caps the exchange's reducer count below
	// the session default.
	Partitions int
}

func (j *SortMergeJoinExec) Children() []SparkPlan { return []SparkPlan{j.Left, j.Right} }
func (j *SortMergeJoinExec) WithNewChildren(children []SparkPlan) SparkPlan {
	c := *j
	c.Left, c.Right = children[0], children[1]
	return &c
}
func (j *SortMergeJoinExec) Output() []*expr.AttributeReference {
	return joinOutput(j.Type, j.Left.Output(), j.Right.Output())
}
func (j *SortMergeJoinExec) SimpleString() string {
	s := fmt.Sprintf("SortMergeJoin %s keys=[%s]=[%s]",
		j.Type, exprListString(j.LeftKeys), exprListString(j.RightKeys))
	if j.Partitions > 0 {
		s += fmt.Sprintf(" parts=%d", j.Partitions)
	}
	return s
}
func (j *SortMergeJoinExec) String() string { return Format(j) }

// keyRowFunc evaluates the join keys into a comparable tuple; ok=false
// marks a NULL key (never equal to anything in an equi-join).
func keyRowFunc(evals []func(row.Row) any) func(row.Row) (row.Row, bool) {
	return func(r row.Row) (row.Row, bool) {
		kv := make(row.Row, len(evals))
		for i, ev := range evals {
			v := ev(r)
			if v == nil {
				return nil, false
			}
			kv[i] = v
		}
		return kv, true
	}
}

// compositeLess orders key-prefixed composite rows lexicographically on
// the first k fields.
func compositeLess(k int) func(a, b row.Row) bool {
	return func(a, b row.Row) bool {
		for x := 0; x < k; x++ {
			if c := row.Compare(a[x], b[x]); c != 0 {
				return c < 0
			}
		}
		return false
	}
}

func sameKeyPrefix(a, b row.Row, k int) bool {
	for x := 0; x < k; x++ {
		if row.Compare(a[x], b[x]) != 0 {
			return false
		}
	}
	return true
}

func (j *SortMergeJoinExec) Execute(ctx *ExecContext) *rdd.RDD[row.Row] {
	leftOut, rightOut := j.Left.Output(), j.Right.Output()
	leftKey := keyFunc(bindKeys(ctx, j.LeftKeys, leftOut))
	rightKey := keyFunc(bindKeys(ctx, j.RightKeys, rightOut))
	leftKeyRow := keyRowFunc(bindKeys(ctx, j.LeftKeys, leftOut))
	rightKeyRow := keyRowFunc(bindKeys(ctx, j.RightKeys, rightOut))
	match := residualPred(ctx, j.Residual, leftOut, rightOut)
	n := ctx.ShufflePartitions
	if j.Partitions > 0 && j.Partitions < n {
		n = j.Partitions
	}

	leftShuf := rdd.PartitionByHashCodec(j.Left.Execute(ctx), n, func(r row.Row) uint64 {
		k, ok := leftKey(r)
		if !ok {
			return 0
		}
		return row.HashValue(k)
	}, rowShuffleCodec)
	rightShuf := rdd.PartitionByHashCodec(j.Right.Execute(ctx), n, func(r row.Row) uint64 {
		k, ok := rightKey(r)
		if !ok {
			return 0
		}
		return row.HashValue(k)
	}, rowShuffleCodec)

	nLeft, nRight := len(leftOut), len(rightOut)
	k := len(j.LeftKeys)
	t := j.Type
	om := j.EnableMetrics(ctx.Metrics)
	less := compositeLess(k)
	zipped, err := rdd.ZipPartitionsCtx(leftShuf, rightShuf, func(_ context.Context, _ int, ls, rs []row.Row) ([]row.Row, error) {
		start := time.Now()
		var out []row.Row

		// NULL-keyed rows never merge: outer sides null-extend them up
		// front (in input order), inner/semi sides drop them.
		sortRows := func(op string, in []row.Row, keyRow func(row.Row) (row.Row, bool),
			keep func(row.Row)) ([]row.Row, int64, int64, error) {
			sorter := newExternalSorter(ctx, op, less)
			defer sorter.Close()
			for _, r := range in {
				kv, ok := keyRow(r)
				if !ok {
					if keep != nil {
						keep(r)
					}
					continue
				}
				comp := make(row.Row, k+len(r))
				copy(comp, kv)
				copy(comp[k:], r)
				if err := sorter.Add(comp); err != nil {
					return nil, 0, 0, err
				}
			}
			sorted, err := sorter.Finish()
			if err != nil {
				return nil, 0, 0, err
			}
			bytes, runs := sorter.Stats()
			return sorted, bytes, runs, nil
		}

		var keepL, keepR func(row.Row)
		if t == plan.LeftOuterJoin || t == plan.FullOuterJoin {
			keepL = func(l row.Row) { out = append(out, concatRows(l, nullRow(nRight))) }
		}
		if t == plan.RightOuterJoin || t == plan.FullOuterJoin {
			keepR = func(r row.Row) { out = append(out, concatRows(nullRow(nLeft), r)) }
		}
		sortedL, bL, rL, err := sortRows("smj.left", ls, leftKeyRow, keepL)
		if err != nil {
			return nil, err
		}
		sortedR, bR, rR, err := sortRows("smj.right", rs, rightKeyRow, keepR)
		if err != nil {
			return nil, err
		}
		om.RecordSpill(bL+bR, rL+rR)

		out = mergeJoin(out, sortedL, sortedR, k, nLeft, nRight, t, match)
		om.RecordPartition(len(out), time.Since(start))
		return out, nil
	})
	if err != nil {
		// Both sides are hash-partitioned to n above; unequal counts here
		// are a planner bug, not a runtime task failure.
		panic(err)
	}
	return zipped
}

// mergeJoin merges two key-sorted composite-row streams, emitting joined
// rows group by group. Composite rows carry the k-field key tuple before
// the original row; originals are sliced back out on emission.
func mergeJoin(out []row.Row, ls, rs []row.Row, k, nLeft, nRight int,
	t plan.JoinType, match func(l, r row.Row) bool) []row.Row {
	leftOuter := t == plan.LeftOuterJoin || t == plan.FullOuterJoin
	rightOuter := t == plan.RightOuterJoin || t == plan.FullOuterJoin
	semi := t == plan.LeftSemiJoin

	i, jj := 0, 0
	for i < len(ls) && jj < len(rs) {
		c := 0
		for x := 0; x < k; x++ {
			if c = row.Compare(ls[i][x], rs[jj][x]); c != 0 {
				break
			}
		}
		switch {
		case c < 0:
			if leftOuter {
				out = append(out, concatRows(ls[i][k:], nullRow(nRight)))
			}
			i++
		case c > 0:
			if rightOuter {
				out = append(out, concatRows(nullRow(nLeft), rs[jj][k:]))
			}
			jj++
		default:
			i2 := i + 1
			for i2 < len(ls) && sameKeyPrefix(ls[i2], ls[i], k) {
				i2++
			}
			j2 := jj + 1
			for j2 < len(rs) && sameKeyPrefix(rs[j2], rs[jj], k) {
				j2++
			}
			var rightMatched []bool
			if rightOuter {
				rightMatched = make([]bool, j2-jj)
			}
			for li := i; li < i2; li++ {
				l := ls[li][k:]
				matched := false
				for rj := jj; rj < j2; rj++ {
					r := rs[rj][k:]
					if !match(l, r) {
						continue
					}
					matched = true
					if semi {
						break
					}
					if rightMatched != nil {
						rightMatched[rj-jj] = true
					}
					out = append(out, concatRows(l, r))
				}
				switch {
				case semi && matched:
					out = append(out, l)
				case !matched && leftOuter:
					out = append(out, concatRows(l, nullRow(nRight)))
				}
			}
			if rightOuter {
				for rj := jj; rj < j2; rj++ {
					if !rightMatched[rj-jj] {
						out = append(out, concatRows(nullRow(nLeft), rs[rj][k:]))
					}
				}
			}
			i, jj = i2, j2
		}
	}
	if leftOuter {
		for ; i < len(ls); i++ {
			out = append(out, concatRows(ls[i][k:], nullRow(nRight)))
		}
	}
	if rightOuter {
		for ; jj < len(rs); jj++ {
			out = append(out, concatRows(nullRow(nLeft), rs[jj][k:]))
		}
	}
	return out
}
