package physical

import (
	"repro/internal/rdd"
	"repro/internal/row"
)

// rowShuffleCodec lets shuffle exchanges advertise map output to the
// cluster's shuffle service: reduce tasks running on other workers fetch
// encoded buckets instead of recomputing the map side from lineage.
var rowShuffleCodec = &rdd.Codec[row.Row]{
	Encode: row.EncodeRows,
	Decode: row.DecodeRows,
}
