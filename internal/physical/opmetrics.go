package physical

import (
	"fmt"
	"sync/atomic"
	"time"
)

// OperatorMetrics accumulates the runtime counters of one physical operator
// while its tasks execute: rows and batches produced, wall time spent inside
// the operator's partition closures, and build-side size for joins. All
// fields are atomics because partitions run concurrently; all methods are
// nil-safe so call sites stay unconditional when instrumentation is off.
//
// Operators record per partition (or per batch), never per row, which keeps
// the cost to a handful of atomic adds per task — cheap enough to leave on
// by default (see BenchmarkMetricsOverhead).
type OperatorMetrics struct {
	OutputRows atomic.Int64 // rows the operator produced
	Partitions atomic.Int64 // partition closures observed
	Batches    atomic.Int64 // columnar batches scanned (vectorized path)
	WallNanos  atomic.Int64 // summed wall time inside the operator's closures
	BuildRows  atomic.Int64 // build-side rows collected (joins)
	BuildBytes atomic.Int64 // estimated build-side bytes (joins)
	SpillBytes atomic.Int64 // bytes written to spill files
	SpillRuns  atomic.Int64 // spill events (sorted runs / hash-partition flushes)
}

// RecordPartition records one partition's output and elapsed wall time.
func (m *OperatorMetrics) RecordPartition(rows int, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.OutputRows.Add(int64(rows))
	m.Partitions.Add(1)
	m.WallNanos.Add(elapsed.Nanoseconds())
}

// RecordBatch records one columnar batch scanned with its decoded row count.
func (m *OperatorMetrics) RecordBatch(rows int) {
	if m == nil {
		return
	}
	m.Batches.Add(1)
	m.OutputRows.Add(int64(rows))
}

// RecordBuild records a join's materialized build side.
func (m *OperatorMetrics) RecordBuild(rows int, bytes int64) {
	if m == nil {
		return
	}
	m.BuildRows.Add(int64(rows))
	m.BuildBytes.Add(bytes)
}

// RecordSpill records bytes written to spill files over some number of
// spill events (sorted runs or aggregation partition flushes).
func (m *OperatorMetrics) RecordSpill(bytes int64, runs int64) {
	if m == nil || runs == 0 {
		return
	}
	m.SpillBytes.Add(bytes)
	m.SpillRuns.Add(runs)
}

// ActualString renders the EXPLAIN ANALYZE annotation, the runtime
// counterpart of plan.Statistics.EstString.
func (m *OperatorMetrics) ActualString() string {
	s := fmt.Sprintf("actual: %d rows, %.1f ms",
		m.OutputRows.Load(), float64(m.WallNanos.Load())/1e6)
	if b := m.BuildRows.Load(); b > 0 {
		s += fmt.Sprintf(", build=%d rows", b)
	}
	if n := m.Batches.Load(); n > 0 {
		s += fmt.Sprintf(", %d batches", n)
	}
	if r := m.SpillRuns.Load(); r > 0 {
		s += fmt.Sprintf(", spilled: %d B, %d runs", m.SpillBytes.Load(), r)
	}
	return s
}

// PlanMetrics carries runtime metrics on a physical operator, mirroring
// PlanEstimate: operators embed it, Execute lazily attaches an
// OperatorMetrics when the ExecContext has metrics enabled, and EXPLAIN
// ANALYZE reads it back through Runtime after the query ran.
//
// The embed holds a plain pointer (not the atomics themselves) so the
// WithNewChildren copy idiom (c := *n) stays vet-clean, and so copies made
// after Execute share the same counters as the executed tree. Execute runs
// single-threaded during plan building, which is what makes the lazy
// allocation below safe without locking.
type PlanMetrics struct {
	m *OperatorMetrics
}

// EnableMetrics returns the operator's metrics, allocating them on first
// use, or nil when enabled is false (every OperatorMetrics method accepts
// a nil receiver). Operators call this at the top of Execute.
func (p *PlanMetrics) EnableMetrics(enabled bool) *OperatorMetrics {
	if !enabled {
		return nil
	}
	if p.m == nil {
		p.m = &OperatorMetrics{}
	}
	return p.m
}

// Runtime returns the recorded metrics, or nil if the operator never ran
// with instrumentation enabled.
func (p *PlanMetrics) Runtime() *OperatorMetrics { return p.m }

// MetricsAnnotated is implemented by physical operators that carry runtime
// metrics (all built-in operators, via PlanMetrics).
type MetricsAnnotated interface {
	Runtime() *OperatorMetrics
}
